// Prompt-mode: the alternative policy model the paper sketches in §IV-A
// — Overhaul's trusted output path renders an *unforgeable* permission
// prompt (overlay + visual shared secret), and its trusted input path
// guarantees only real hardware clicks can answer it. Malware can
// neither draw a convincing prompt (no secret) nor click through a real
// one (synthetic input is rejected).
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
	"overhaul/internal/prompt"
	"overhaul/internal/xserver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prompt-mode:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, _, _, err := overhaul.NewProtected("tabby-cat")
	if err != nil {
		return err
	}
	pm, err := prompt.NewManager(sys.Clock, "tabby-cat", 30*time.Second)
	if err != nil {
		return err
	}

	app, err := sys.Launch("webcam-app")
	if err != nil {
		return err
	}
	sys.Settle(2 * time.Second)

	// The app requests the camera; the system renders the prompt.
	p, err := pm.Ask(app.Proc.PID(), overhaul.OpCam)
	if err != nil {
		return err
	}
	fmt.Printf("prompt    : %q (secret %q, authentic=%v)\n", p.Message, p.Secret, pm.Authentic(p))

	// Malware tries to click "Allow" with synthetic input: rejected.
	forged := xserver.Event{Type: xserver.ButtonPress, Provenance: xserver.FromXTest}
	if _, err := pm.AnswerWith(forged, true); err != nil {
		fmt.Println("xtest click:", err)
	}
	forged2 := xserver.Event{Type: xserver.ButtonPress, Provenance: xserver.FromSendEvent, Synthetic: true}
	if _, err := pm.AnswerWith(forged2, true); err != nil {
		fmt.Println("send-event :", err)
	}

	// The real user clicks: the hardware event resolves the prompt.
	real := xserver.Event{Type: xserver.ButtonPress, Provenance: xserver.FromHardware}
	ans, err := pm.AnswerWith(real, true)
	if err != nil {
		return err
	}
	fmt.Println("user click :", ans)

	for _, r := range pm.History() {
		fmt.Printf("history    : pid=%d op=%s -> %s\n", r.Prompt.PID, r.Prompt.Op, r.Answer)
	}
	fmt.Println("\n(the paper measures that prompts have severe usability costs — Motiee et")
	fmt.Println("al. — and ships the transparent alert model instead; this mode is the")
	fmt.Println("optional extension §IV-A describes.)")
	return nil
}
