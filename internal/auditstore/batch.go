package auditstore

import (
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
)

// Group commit. Concurrent Append callers enqueue their records under
// the store mutex; the first-comer becomes the commit leader, drains
// the queue into batches bounded by Options.BatchRecords/BatchBytes
// (optionally lingering FlushInterval on the store clock to fill a
// batch), and issues one framed segment write per batch. Followers
// wait on the condition variable until their sequence number is
// durable. The crash contract is exactly the serial store's: a record
// is acknowledged only after the write carrying it returned, so the
// recovered prefix always contains every acknowledged record and
// never an unsubmitted one. Two new fault windows extend the crash
// matrix (PointStoreBatch): a torn mid-batch write, and a crash
// between the write and the acknowledgements — the batch is durable
// but its appenders all see the failure.

// BatchStats aggregates what the group-commit leader did: how many
// batches were committed, how many records they carried, and a
// power-of-two histogram of batch sizes. Read it via
// FileStore.BatchStats.
type BatchStats struct {
	// Batches and Records count durable commits and the records they
	// carried; MaxBatch is the largest single batch.
	Batches  uint64
	Records  uint64
	MaxBatch int
	// SizeHist buckets batch sizes as 1, 2, ≤4, ≤8, …, ≤128, >128.
	SizeHist [9]uint64
}

// BatchBucketLabel names SizeHist bucket i.
func BatchBucketLabel(i int) string {
	switch {
	case i <= 0:
		return "1"
	case i == 1:
		return "2"
	case i < len(BatchStats{}.SizeHist)-1:
		return fmt.Sprintf("le%d", 1<<i)
	default:
		return fmt.Sprintf("gt%d", 1<<(len(BatchStats{}.SizeHist)-2))
	}
}

// record tallies one committed batch of n records.
func (s *BatchStats) record(n int) {
	s.Batches++
	s.Records += uint64(n)
	if n > s.MaxBatch {
		s.MaxBatch = n
	}
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3..4→2, 5..8→3, …
	if n <= 0 {
		b = 0
	}
	if b >= len(s.SizeHist) {
		b = len(s.SizeHist) - 1
	}
	s.SizeHist[b]++
}

// BatchStats returns a snapshot of the group-commit statistics.
func (fs *FileStore) BatchStats() BatchStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// estimateSize approximates a record's encoded v2 frame size without
// encoding it, for the BatchBytes bound.
func estimateSize(r *Record) int {
	return 40 + len(r.Op) + len(r.Verdict) + len(r.Reason)
}

// validateRecord rejects records the binary codec cannot represent
// before a sequence number is burned on them, so an oversized or
// out-of-range record fails its own Append without failing the store.
func validateRecord(r *Record) error {
	if _, _, err := timeNanos(r.Time); err != nil {
		return err
	}
	if _, _, err := timeNanos(r.Stamp); err != nil {
		return err
	}
	if sz := len(r.Op) + len(r.Verdict) + len(r.Reason); sz+64 > MaxPayload {
		return fmt.Errorf("auditstore: record strings %d bytes exceed payload bound %d", sz, MaxPayload)
	}
	return nil
}

// Append implements Store: the record joins the commit queue and the
// call returns once the batch carrying it is durable — either because
// this caller became the commit leader and wrote it, or because a
// concurrent leader did. A full active segment rotates *before* the
// batch write, so a crash mid-rotation never loses an acknowledged
// record.
func (fs *FileStore) Append(r Record) (uint64, error) {
	fs.mu.Lock()
	if err := fs.checkLocked(); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	seq := fs.lastSeq + 1
	if r.Seq != 0 && r.Seq != seq {
		fs.mu.Unlock()
		return 0, ErrSeqMismatch
	}
	if err := validateRecord(&r); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	r.Seq = seq
	fs.lastSeq = seq
	fs.queue = append(fs.queue, r)
	fs.queueBytes += estimateSize(&r)
	fs.wakeLingerLocked()
	//overhaul:allow lockordercheck group-commit leader handoff: awaitDurableLocked either waits on the condvar (which releases mu) or leads via runCommitsLocked, which explicitly unlocks before the segment write and relocks to acknowledge — mu is never acquired while held
	if err := fs.awaitDurableLocked(seq); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	fs.mu.Unlock()
	return seq, nil
}

// AppendBatch appends a slice of records as one atomic enqueue: the
// records receive contiguous sequence numbers and the call returns the
// last one once all are durable. Records carrying a non-zero Seq must
// match their assigned position, like Append. An empty batch is a
// no-op returning the current last durable sequence.
func (fs *FileStore) AppendBatch(recs []Record) (uint64, error) {
	fs.mu.Lock()
	if err := fs.checkLocked(); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	if len(recs) == 0 {
		seq := fs.durableSeq
		fs.mu.Unlock()
		return seq, nil
	}
	for i := range recs {
		if recs[i].Seq != 0 && recs[i].Seq != fs.lastSeq+1+uint64(i) {
			fs.mu.Unlock()
			return 0, ErrSeqMismatch
		}
		if err := validateRecord(&recs[i]); err != nil {
			fs.mu.Unlock()
			return 0, err
		}
	}
	var last uint64
	for i := range recs {
		r := recs[i]
		fs.lastSeq++
		r.Seq = fs.lastSeq
		last = r.Seq
		fs.queue = append(fs.queue, r)
		fs.queueBytes += estimateSize(&r)
	}
	fs.wakeLingerLocked()
	if err := fs.awaitDurableLocked(last); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	fs.mu.Unlock()
	return last, nil
}

// awaitDurableLocked blocks until sequence seq is durable, becoming
// the commit leader whenever none is active. Leadership is re-checked
// on every wake-up: an exclusive op (Compact, a finished leader) may
// release the committing flag with this record still queued, and a
// follower that only ever waited would then block forever — so a
// woken follower that finds no leader promotes itself and commits the
// queue. Called and returns with mu held.
func (fs *FileStore) awaitDurableLocked(seq uint64) error {
	for fs.durableSeq < seq && fs.failed == nil && !fs.closed {
		if !fs.committing {
			if len(fs.queue) == 0 {
				// Nothing queued yet seq is not durable: a failure
				// path drained without recording — impossible by
				// construction, but fail closed below rather than
				// spin claiming empty leadership.
				break
			}
			fs.committing = true
			fs.runCommitsLocked()
			continue
		}
		fs.commitDone.Wait()
	}
	if fs.durableSeq >= seq {
		return nil
	}
	if fs.failed != nil {
		return fs.failed
	}
	if fs.closed {
		return ErrClosed
	}
	// Leadership ended with the queue drained by a failure path that
	// did not record one — impossible by construction, but fail closed.
	return ErrStoreFailed
}

// runCommitsLocked drains the queue as the commit leader: cut a batch,
// release mu for the write, reacquire to acknowledge. Called with mu
// held and committing freshly claimed; returns with mu held and
// leadership released.
func (fs *FileStore) runCommitsLocked() {
	for len(fs.queue) > 0 && fs.failed == nil && !fs.closed {
		fs.lingerLocked()
		n, bytes := fs.cutLocked()
		fs.batch = append(fs.batch[:0], fs.queue[:n]...)
		rest := copy(fs.queue, fs.queue[n:])
		fs.queue = fs.queue[:rest]
		fs.queueBytes -= bytes
		fs.mu.Unlock()

		err := fs.commitBatch(fs.batch)

		fs.mu.Lock()
		if err != nil {
			fs.failLocked(err) //overhaul:allow errdrop the failure is recorded in fs.failed; every waiter observes it
		} else {
			fs.durableSeq = fs.batch[len(fs.batch)-1].Seq
			fs.stats.record(len(fs.batch))
		}
		fs.commitDone.Broadcast()
	}
	fs.committing = false
	fs.commitDone.Broadcast()
}

// lingerLocked waits up to FlushInterval on the store clock for the
// queue to fill a whole batch. On the system clock the leader sleeps
// on a real timer and is woken early by an enqueue or Close (via
// wakeLingerLocked), so a sparse appender costs no CPU during the
// linger window. A virtual clock has no timer to sleep on, so that
// path keeps the yield-poll: simulated-clock tests advance the clock
// from another goroutine, and the yield lets it run. mu is held on
// entry and exit, released while sleeping or yielding.
func (fs *FileStore) lingerLocked() {
	if fs.opts.FlushInterval <= 0 {
		return
	}
	full := func() bool {
		return len(fs.queue) >= fs.opts.BatchRecords || fs.queueBytes >= fs.opts.BatchBytes
	}
	if full() {
		return
	}
	_, timed := fs.opts.Clock.(clock.System)
	deadline := fs.opts.Clock.Now().Add(fs.opts.FlushInterval)
	for !full() && fs.failed == nil && !fs.closed {
		remain := deadline.Sub(fs.opts.Clock.Now())
		if remain <= 0 {
			return
		}
		if timed {
			select {
			case <-fs.lingerWake: // drain a stale token from a prior round
			default:
			}
			fs.lingering = true
			fs.mu.Unlock()
			t := time.NewTimer(remain) //overhaul:allow clockcheck the linger deadline is measured on the injected store clock; the timer only bounds the real-time sleep when that clock IS the system clock
			select {
			case <-fs.lingerWake:
			case <-t.C:
			}
			t.Stop()
			fs.mu.Lock()
			fs.lingering = false
		} else {
			fs.mu.Unlock()
			runtime.Gosched()
			fs.mu.Lock()
		}
	}
}

// wakeLingerLocked pokes a leader sleeping in lingerLocked so it
// re-examines the queue (or the closed flag) immediately. Called with
// mu held; the buffered send never blocks.
func (fs *FileStore) wakeLingerLocked() {
	if fs.lingering {
		select {
		case fs.lingerWake <- struct{}{}:
		default:
		}
	}
}

// cutLocked sizes the next batch: at least one record, at most
// BatchRecords, stopping before a record that would push the encoded
// estimate past BatchBytes.
func (fs *FileStore) cutLocked() (n, bytes int) {
	for n < len(fs.queue) && n < fs.opts.BatchRecords {
		sz := estimateSize(&fs.queue[n])
		if n > 0 && bytes+sz > fs.opts.BatchBytes {
			break
		}
		bytes += sz
		n++
	}
	return n, bytes
}

// commitBatch writes one batch to the active segment and indexes it.
// Called by the leader with mu released; owns the file state. The
// fault windows preserve the serial crash matrix exactly: each record
// still evaluates PointStoreAppend once (a torn write leaves prior
// frames plus half the failing frame; a crash leaves nothing), and the
// two PointStoreBatch windows bracket the batch write itself.
func (fs *FileStore) commitBatch(batch []Record) error {
	if fs.curRecs >= fs.opts.SegmentRecords && fs.cur != nil {
		if err := fs.rotateSeg(); err != nil {
			return err
		}
	}
	if fs.cur == nil {
		if err := fs.openActive(); err != nil {
			return err
		}
	}
	fs.wbuf = fs.wbuf[:0]
	fs.frameOffs = fs.frameOffs[:0]
	for i := range batch {
		start := len(fs.wbuf)
		fs.frameOffs = append(fs.frameOffs, start)
		var err error
		fs.wbuf, err = fs.enc.AppendRecord(fs.wbuf, &batch[i])
		if err != nil {
			return fmt.Errorf("append encode: %w", err)
		}
		if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreAppend); f.Injected() {
			if f.Kind == faultinject.KindError {
				// Torn write: the process died (or the disk lied)
				// mid-frame. Everything up to half of this record's
				// frame reaches the log; recovery must cut it.
				frameLen := len(fs.wbuf) - start
				if _, werr := fs.cur.Write(fs.wbuf[:start+frameLen/2]); werr != nil {
					return fmt.Errorf("append (torn): %w", werr)
				}
				return fmt.Errorf("append (torn): %w", f.Err)
			}
			return fmt.Errorf("append: %w", f.Err)
		}
	}
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreBatch); f.Injected() {
		if f.Kind == faultinject.KindError {
			// Torn mid-batch write: half the batch buffer lands,
			// tearing some frame in the middle.
			if _, werr := fs.cur.Write(fs.wbuf[:len(fs.wbuf)/2]); werr != nil {
				return fmt.Errorf("batch (torn): %w", werr)
			}
			return fmt.Errorf("batch (torn): %w", f.Err)
		}
		return fmt.Errorf("batch (pre-write): %w", f.Err)
	}
	if _, err := fs.cur.Write(fs.wbuf); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreBatch); f.Injected() {
		// The write is durable but the acknowledgements are lost: every
		// appender in the batch sees the failure, and recovery may
		// legitimately return these unacknowledged records.
		return fmt.Errorf("batch (pre-ack): %w", f.Err)
	}
	for i := range batch {
		if fs.curRecs%indexEvery == 0 {
			fs.curIdx = append(fs.curIdx, blockEntry{
				seq:       batch[i].Seq,
				off:       fs.curOff + uint64(fs.frameOffs[i]),
				maxBefore: fs.curMax,
			})
		}
		if tn, ok, err := timeNanos(batch[i].Time); ok && err == nil && tn > fs.curMax {
			fs.curMax = tn
		}
		if _, err := fs.mem.Append(batch[i]); err != nil {
			return fmt.Errorf("append index: %w", err)
		}
		fs.curRecs++
	}
	fs.curOff += uint64(len(fs.wbuf))
	return nil
}
