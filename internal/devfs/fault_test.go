package devfs

import (
	"errors"
	"testing"

	"overhaul/internal/faultinject"
	"overhaul/internal/fs"
)

// crashAfter returns a hook that crashes the helper on the n-th
// evaluation of the crash point.
func crashAfter(n int) faultinject.Hook {
	seen := 0
	return func(p faultinject.Point) faultinject.Fault {
		if p != faultinject.PointDevfsCrash {
			return faultinject.Fault{Point: p}
		}
		seen++
		if seen == n {
			return faultinject.Fault{Point: p, Kind: faultinject.KindCrash}
		}
		return faultinject.Fault{Point: p}
	}
}

// TestHelperCrashMidAttachRestart walks every crash window of the
// attach protocol: whichever instant the helper dies, a Restart must
// reconcile journal, filesystem and kernel map to a consistent state —
// and previously attached devices keep their class mapping.
func TestHelperCrashMidAttachRestart(t *testing.T) {
	// Crash windows inside Attach, in evaluation order.
	for _, tc := range []struct {
		name       string
		crashEval  int
		wantMapped bool // is the new camera attached after Restart?
	}{
		{name: "before mknod", crashEval: 1, wantMapped: false},
		{name: "after mknod before push", crashEval: 2, wantMapped: false},
		{name: "after push before journal", crashEval: 3, wantMapped: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, fsys, sink := newTestHelper(t)
			mic, err := h.Attach(ClassMicrophone)
			if err != nil {
				t.Fatalf("Attach mic: %v", err)
			}
			h.SetFaultHook(crashAfter(tc.crashEval))

			_, err = h.Attach(ClassCamera)
			if !errors.Is(err, ErrHelperDown) {
				t.Fatalf("Attach during crash = %v, want ErrHelperDown", err)
			}
			if !h.Down() {
				t.Fatal("helper not marked down after crash")
			}
			// Down helper refuses all work.
			if _, err := h.Attach(ClassScanner); !errors.Is(err, ErrHelperDown) {
				t.Fatalf("Attach while down = %v, want ErrHelperDown", err)
			}

			if err := h.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if h.Down() {
				t.Fatal("helper still down after Restart")
			}

			// The microphone's mapping survived the crash+restart.
			if c, ok := sink.classOf(mic); !ok || c != ClassMicrophone {
				t.Fatalf("mic mapping after restart = (%q,%v), want microphone", c, ok)
			}
			// The half-attached camera is fully rolled back: no stray
			// unmapped node (fail closed — an unmapped sensitive node
			// would dodge mediation) and no stray mapping.
			if c, ok := sink.classOf("/dev/video0"); ok && tc.wantMapped == false {
				t.Fatalf("half-attached camera still mapped as %q", c)
			}
			if _, err := fsys.Stat("/dev/video0"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("half-attached camera node still present (err=%v)", err)
			}

			// The helper is fully operational again and does not reuse
			// a stale name for the rolled-back node.
			cam, err := h.Attach(ClassCamera)
			if err != nil {
				t.Fatalf("Attach after restart: %v", err)
			}
			if c, ok := sink.classOf(cam); !ok || c != ClassCamera {
				t.Fatalf("camera mapping after re-attach = (%q,%v)", c, ok)
			}
		})
	}
}

// TestHelperCrashMidDetachRestart crashes the helper between the
// kernel unmap and the node unlink; Restart must restore the
// journal-vouched mapping so the still-present node stays mediated.
func TestHelperCrashMidDetachRestart(t *testing.T) {
	h, fsys, sink := newTestHelper(t)
	mic, err := h.Attach(ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// Detach evaluates the crash point twice: before unmap, then
	// between unmap and unlink. Crash at the second window.
	h.SetFaultHook(crashAfter(2))
	if err := h.Detach(mic); !errors.Is(err, ErrHelperDown) {
		t.Fatalf("Detach = %v, want ErrHelperDown", err)
	}
	// The dangerous interim state: node exists but kernel no longer
	// maps it.
	if _, err := fsys.Stat(mic); err != nil {
		t.Fatalf("node vanished during crash window: %v", err)
	}
	if _, ok := sink.classOf(mic); ok {
		t.Fatal("mapping should be gone mid-detach")
	}

	if err := h.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// The journal still vouches for the node, so the mapping is back.
	if c, ok := sink.classOf(mic); !ok || c != ClassMicrophone {
		t.Fatalf("mapping after restart = (%q,%v), want microphone restored", c, ok)
	}
	// And a clean detach now completes.
	if err := h.Detach(mic); err != nil {
		t.Fatalf("Detach after restart: %v", err)
	}
	if _, ok := sink.classOf(mic); ok {
		t.Fatal("mapping survived clean detach")
	}
}

// TestRestartRemovesOrphanNodes: a sensitive-looking device node that
// the journal does not vouch for is removed on restart and its
// (possibly stale) kernel mapping dropped — fail closed: better no
// device than an unmediated one.
func TestRestartRemovesOrphanNodes(t *testing.T) {
	h, fsys, sink := newTestHelper(t)
	if _, err := h.Attach(ClassMicrophone); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// Plant an orphan camera node behind the helper's back.
	if err := fsys.Mknod("/dev/video7", "camera", 0o666, fs.Root); err != nil {
		t.Fatalf("Mknod: %v", err)
	}
	h.Crash()
	if err := h.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if _, err := fsys.Stat("/dev/video7"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("orphan node survived restart (err=%v)", err)
	}
	if c, ok := sink.classOf("/dev/snd/pcmC0D0c"); !ok || c != ClassMicrophone {
		t.Fatalf("journaled mic lost in restart: (%q,%v)", c, ok)
	}
}

// TestPushFaultFailsAttachCleanly: an injected push failure (the
// helper→kernel message dropped) aborts the attach with full rollback
// rather than leaving an unmediated node.
func TestPushFaultFailsAttachCleanly(t *testing.T) {
	h, fsys, sink := newTestHelper(t)
	h.SetFaultHook(func(p faultinject.Point) faultinject.Fault {
		if p == faultinject.PointDevfsPush {
			return faultinject.Fault{Point: p, Kind: faultinject.KindError}
		}
		return faultinject.Fault{Point: p}
	})
	if _, err := h.Attach(ClassCamera); err == nil {
		t.Fatal("Attach with dropped push should fail")
	}
	if h.Down() {
		t.Fatal("push fault is not a crash; helper must stay up")
	}
	if _, err := fsys.Stat("/dev/video0"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("node left behind after failed push (err=%v)", err)
	}
	if _, ok := sink.classOf("/dev/video0"); ok {
		t.Fatal("mapping left behind after failed push")
	}
}
