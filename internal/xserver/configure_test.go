package xserver

import (
	"errors"
	"testing"

	"overhaul/internal/clock"
)

func TestConfigureWindowMovesClickTarget(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "app")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)

	if got := e.srv.HardwareClick(50, 50); got != win {
		t.Fatalf("click at old position = %d", got)
	}
	if err := c.ConfigureWindow(win, Geometry{X: 500, Y: 500, W: 100, H: 100}); err != nil {
		t.Fatalf("ConfigureWindow: %v", err)
	}
	if got := e.srv.HardwareClick(50, 50); got != Root {
		t.Fatalf("click at vacated position = %d, want root", got)
	}
	if got := e.srv.HardwareClick(550, 550); got != win {
		t.Fatalf("click at new position = %d, want %d", got, win)
	}
	g, err := c.WindowGeometry(win)
	if err != nil || g != (Geometry{X: 500, Y: 500, W: 100, H: 100}) {
		t.Fatalf("geometry = %+v, %v", g, err)
	}
}

func TestConfigureMovePreservesVisibilityClock(t *testing.T) {
	// Moving a long-visible window keeps it trusted: the defence keys
	// on visible time, not position.
	e := newXEnv(t, true)
	c := e.connect(t, 1, "app")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if err := c.ConfigureWindow(win, Geometry{X: 300, Y: 0, W: 100, H: 100}); err != nil {
		t.Fatalf("ConfigureWindow: %v", err)
	}
	e.srv.HardwareClick(310, 10)
	if e.pol.notificationCount() != 1 {
		t.Fatalf("notifications = %d, want 1 (moved window stays trusted)", e.pol.notificationCount())
	}
}

func TestConfigureWindowValidation(t *testing.T) {
	e := newXEnv(t, true)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	win := e.mapVisibleWindow(t, a, 0, 0, 100, 100)
	if err := b.ConfigureWindow(win, Geometry{X: 0, Y: 0, W: 10, H: 10}); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign configure = %v", err)
	}
	if err := a.ConfigureWindow(win, Geometry{W: 0, H: 10}); !errors.Is(err, ErrBadMatch) {
		t.Fatalf("zero-size configure = %v", err)
	}
	if err := a.ConfigureWindow(999, Geometry{W: 1, H: 1}); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("bad window configure = %v", err)
	}
}

func TestMotionDeliversButNeverNotifies(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "app")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if got := e.srv.HardwareMotion(10, 10); got != win {
		t.Fatalf("motion to %d", got)
	}
	ev, ok := c.NextEvent()
	if !ok || ev.Type != MotionNotify || ev.Provenance != FromHardware {
		t.Fatalf("event = %+v", ev)
	}
	if e.pol.notificationCount() != 0 {
		t.Fatal("motion produced an interaction notification; hovering is not intent")
	}
	if got := e.srv.HardwareMotion(1900, 1000); got != Root {
		t.Fatalf("motion on empty screen = %d", got)
	}
}

func TestKeyReleasePairsWithPress(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "app")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if err := c.SetFocus(win); err != nil {
		t.Fatalf("SetFocus: %v", err)
	}
	e.srv.HardwareKey("a")
	e.srv.HardwareKeyRelease("a")
	press, _ := c.NextEvent()
	release, ok := c.NextEvent()
	if !ok || press.Type != KeyPress || release.Type != KeyRelease {
		t.Fatalf("events = %+v, %+v", press, release)
	}
	// Only the press notified.
	if e.pol.notificationCount() != 1 {
		t.Fatalf("notifications = %d, want 1", e.pol.notificationCount())
	}
	// No focus: release goes nowhere.
	if err := c.UnmapWindow(win); err != nil {
		t.Fatalf("UnmapWindow: %v", err)
	}
	if got := e.srv.HardwareKeyRelease("a"); got != Root {
		t.Fatalf("release without focus = %d", got)
	}
}

func TestObscuredFocusWindowMintsNoInteraction(t *testing.T) {
	// S3 refinement: keyboard events keep flowing to the focus window,
	// but if it is fully covered by another window, typing "into" it is
	// not a sighted interaction and earns no stamp.
	e := newXEnv(t, true)
	app := e.connect(t, 1, "app")
	overlay := e.connect(t, 2, "overlay")
	appWin := e.mapVisibleWindow(t, app, 100, 100, 100, 100)
	if err := app.SetFocus(appWin); err != nil {
		t.Fatalf("SetFocus: %v", err)
	}
	// Sanity: uncovered typing notifies.
	e.srv.HardwareKey("a")
	if e.pol.notificationCount() != 1 {
		t.Fatalf("notifications = %d, want 1", e.pol.notificationCount())
	}
	// Cover the app completely with a long-visible overlay.
	ovWin := e.mapVisibleWindow(t, overlay, 50, 50, 300, 300)
	_ = ovWin
	e.srv.HardwareKey("b")
	ev2, ok := drainToKey(app, "b")
	if !ok {
		t.Fatalf("key not delivered to focus window: %+v", ev2)
	}
	if e.pol.notificationCount() != 1 {
		t.Fatalf("notifications = %d after covered typing, want still 1", e.pol.notificationCount())
	}
	// Raising the app back on top restores trust.
	if err := app.RaiseWindow(appWin); err != nil {
		t.Fatalf("RaiseWindow: %v", err)
	}
	e.srv.HardwareKey("c")
	if e.pol.notificationCount() != 2 {
		t.Fatalf("notifications = %d after raise, want 2", e.pol.notificationCount())
	}
}

// drainToKey pops events until a KeyPress with the given key.
func drainToKey(c *Client, key string) (Event, bool) {
	for {
		ev, ok := c.NextEvent()
		if !ok {
			return Event{}, false
		}
		if ev.Type == KeyPress && ev.Key == key {
			return ev, true
		}
	}
}

func TestDisableXTestRejectsInjection(t *testing.T) {
	clk := clock.NewSimulated()
	pol := newFakePolicy()
	srv, err := NewServer(clk, pol, Config{DisableXTest: true})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	c, err := srv.Connect(1, "robot")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := c.XTestFakeInput(Event{Type: ButtonPress, X: 1, Y: 1}); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("XTest with extension disabled = %v, want ErrBadAccess", err)
	}
}
