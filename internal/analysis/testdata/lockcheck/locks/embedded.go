package locks

import "sync"

// Registry embeds its mutex; Lock/Unlock are promoted methods of the
// receiver itself.
type Registry struct {
	sync.Mutex
	items map[string]bool
}

// Put locks through the embedded mutex.
func (r *Registry) Put(k string) {
	r.Lock()
	defer r.Unlock()
	r.items[k] = true
}

// Has reads the guarded map without the embedded lock.
func (r *Registry) Has(k string) bool {
	return r.items[k] // want "embedded Mutex"
}
