package monitor

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"overhaul/internal/clock"
)

// fakeTasks is a minimal TaskStore.
type fakeTasks struct {
	mu       sync.Mutex
	stamps   map[int]time.Time
	disabled map[int]bool
}

func newFakeTasks() *fakeTasks {
	return &fakeTasks{stamps: make(map[int]time.Time), disabled: make(map[int]bool)}
}

func (f *fakeTasks) InteractionStamp(pid int) (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.stamps[pid]
	return t, ok
}

func (f *fakeTasks) SetInteractionStamp(pid int, t time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur, ok := f.stamps[pid]
	if !ok {
		return ErrNoSuchProcess
	}
	if t.After(cur) {
		f.stamps[pid] = t
	}
	return nil
}

func (f *fakeTasks) PermissionsDisabled(pid int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.disabled[pid]
}

func (f *fakeTasks) add(pid int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stamps[pid] = time.Time{}
}

func newTestMonitor(t *testing.T, cfg Config) (*Monitor, *fakeTasks, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated()
	tasks := newFakeTasks()
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	m, err := New(clk, tasks, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m, tasks, clk
}

func TestDecideTemporalProximity(t *testing.T) {
	tests := []struct {
		name  string
		delay time.Duration // op time minus interaction time
		want  Verdict
	}{
		{name: "immediate", delay: 0, want: VerdictGrant},
		{name: "within window", delay: 500 * time.Millisecond, want: VerdictGrant},
		{name: "just inside", delay: 2*time.Second - time.Nanosecond, want: VerdictGrant},
		{name: "exactly at threshold", delay: 2 * time.Second, want: VerdictDeny},
		{name: "stale", delay: time.Minute, want: VerdictDeny},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
			tasks.add(7)
			interaction := clk.Now()
			if err := m.Notify(7, interaction); err != nil {
				t.Fatalf("Notify: %v", err)
			}
			opTime := interaction.Add(tt.delay)
			if got := m.Decide(7, OpMic, opTime); got != tt.want {
				t.Fatalf("Decide(+%v) = %v, want %v", tt.delay, got, tt.want)
			}
		})
	}
}

func TestDecideNoInteraction(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(7)
	if got := m.Decide(7, OpCam, clk.Now()); got != VerdictDeny {
		t.Fatalf("Decide with no interaction = %v, want deny", got)
	}
}

func TestDecideUnknownProcess(t *testing.T) {
	m, _, clk := newTestMonitor(t, Config{Enforce: true})
	if got := m.Decide(999, OpCam, clk.Now()); got != VerdictDeny {
		t.Fatalf("Decide unknown pid = %v, want deny", got)
	}
}

func TestDecidePtraceGuard(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(7)
	if err := m.Notify(7, clk.Now()); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	tasks.disabled[7] = true
	if got := m.Decide(7, OpMic, clk.Now()); got != VerdictDeny {
		t.Fatalf("Decide for traced process = %v, want deny", got)
	}
}

func TestForceGrantMode(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true, ForceGrant: true})
	tasks.add(7)
	// No interaction at all, yet granted: benchmark mode exercises the
	// full grant path.
	if got := m.Decide(7, OpMic, clk.Now()); got != VerdictGrant {
		t.Fatalf("force-grant Decide = %v, want grant", got)
	}
}

func TestObserveOnlyMode(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: false})
	tasks.add(7)
	if got := m.Decide(7, OpScreen, clk.Now()); got != VerdictGrant {
		t.Fatalf("observe-only Decide = %v, want grant", got)
	}
	// But the audit trail still records the query.
	if audit := m.Audit(); len(audit) != 1 || audit[0].Reason != "observe-only mode" {
		t.Fatalf("audit = %+v", audit)
	}
}

func TestNotifyKeepsNewestStamp(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(7)
	t1 := clk.Now()
	clk.Advance(time.Second)
	t2 := clk.Now()
	if err := m.Notify(7, t2); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	// An older notification must not regress the stamp.
	if err := m.Notify(7, t1); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	stamp, ok := tasks.InteractionStamp(7)
	if !ok || !stamp.Equal(t2) {
		t.Fatalf("stamp = %v, want %v", stamp, t2)
	}
}

func TestNotifyUnknownPID(t *testing.T) {
	m, _, clk := newTestMonitor(t, Config{Enforce: true})
	if err := m.Notify(404, clk.Now()); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("Notify unknown = %v, want ErrNoSuchProcess", err)
	}
}

func TestAlertsSentOnlyForAlertOps(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(7)
	var (
		mu     sync.Mutex
		alerts []AlertRequest
	)
	m.SetAlertFunc(func(a AlertRequest) {
		mu.Lock()
		defer mu.Unlock()
		alerts = append(alerts, a)
	})
	if err := m.Notify(7, clk.Now()); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	now := clk.Now()
	m.Decide(7, OpMic, now)    // kernel-side alert
	m.Decide(7, OpPaste, now)  // silent per paper §V-C
	m.Decide(7, OpCopy, now)   // silent
	m.Decide(7, OpScreen, now) // alerted by the display manager, not here
	m.Decide(7, OpOther, now)  // kernel-side alert (generic sensor)

	mu.Lock()
	defer mu.Unlock()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want 2 (mic, dev)", alerts)
	}
	if alerts[0].Op != OpMic || alerts[1].Op != OpOther {
		t.Fatalf("alert ops = %v, %v", alerts[0].Op, alerts[1].Op)
	}
}

func TestBlockedAlertOnDeny(t *testing.T) {
	// §V-B: a blocked camera access is alerted too, marked Blocked.
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(7)
	var got []AlertRequest
	m.SetAlertFunc(func(a AlertRequest) { got = append(got, a) })
	m.Decide(7, OpMic, clk.Now()) // no interaction -> deny
	if len(got) != 1 || !got[0].Blocked {
		t.Fatalf("alerts = %+v, want one blocked alert", got)
	}
	// Clipboard denials stay silent.
	m.Decide(7, OpPaste, clk.Now())
	if len(got) != 1 {
		t.Fatalf("alerts = %+v, want clipboard denial silent", got)
	}
}

func TestAuditLogRecordsEverything(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(1)
	tasks.add(2)
	if err := m.Notify(1, clk.Now()); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	now := clk.Now()
	m.Decide(1, OpMic, now)
	m.Decide(2, OpCam, now)
	audit := m.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit length = %d, want 2", len(audit))
	}
	if audit[0].Verdict != VerdictGrant || audit[1].Verdict != VerdictDeny {
		t.Fatalf("audit verdicts = %v, %v", audit[0].Verdict, audit[1].Verdict)
	}
}

func TestAuditCapacityBounded(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true, AuditCapacity: 10})
	tasks.add(1)
	for i := 0; i < 25; i++ {
		m.Decide(1, OpCopy, clk.Now())
	}
	if got := len(m.Audit()); got != 10 {
		t.Fatalf("audit length = %d, want 10", got)
	}
}

func TestStats(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(1)
	if err := m.Notify(1, clk.Now()); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	m.SetAlertFunc(func(AlertRequest) {})
	m.Decide(1, OpMic, clk.Now())
	clk.Advance(time.Minute)
	m.Decide(1, OpMic, clk.Now())
	s := m.StatsSnapshot()
	want := Stats{Notifications: 1, Queries: 2, Grants: 1, Denials: 1, AlertsSent: 2}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
}

func TestCustomThreshold(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true, Threshold: 500 * time.Millisecond})
	tasks.add(1)
	start := clk.Now()
	if err := m.Notify(1, start); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	if got := m.Decide(1, OpMic, start.Add(400*time.Millisecond)); got != VerdictGrant {
		t.Fatalf("within custom δ = %v, want grant", got)
	}
	if got := m.Decide(1, OpMic, start.Add(600*time.Millisecond)); got != VerdictDeny {
		t.Fatalf("beyond custom δ = %v, want deny", got)
	}
}

func TestNewValidation(t *testing.T) {
	clk := clock.NewSimulated()
	tasks := newFakeTasks()
	if _, err := New(nil, tasks, Config{}); err == nil {
		t.Fatal("New(nil clock) succeeded")
	}
	if _, err := New(clk, nil, Config{}); err == nil {
		t.Fatal("New(nil tasks) succeeded")
	}
	if _, err := New(clk, tasks, Config{Threshold: -time.Second}); err == nil {
		t.Fatal("New(negative threshold) succeeded")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictGrant.String() != "grant" || VerdictDeny.String() != "deny" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(0).String() != "Verdict(0)" {
		t.Fatalf("zero verdict string = %q", Verdict(0).String())
	}
}

// Property: for any interaction/operation offset pair, the verdict is
// grant iff the operation falls in [stamp, stamp+δ). This is the paper's
// core invariant (S1).
func TestTemporalProximityProperty(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(1)
	base := clk.Now()
	f := func(stampOffMs, opOffMs uint32) bool {
		stamp := base.Add(time.Duration(stampOffMs) * time.Millisecond)
		op := base.Add(time.Duration(opOffMs) * time.Millisecond)
		tasks.mu.Lock()
		tasks.stamps[1] = stamp // bypass newest-wins for arbitrary pairs
		tasks.mu.Unlock()
		got := m.Decide(1, OpMic, op)
		within := !op.After(stamp) || op.Sub(stamp) < m.Threshold()
		return (got == VerdictGrant) == within
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetAudit(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	tasks.add(1)
	m.Decide(1, OpCopy, clk.Now())
	m.ResetAudit()
	if len(m.Audit()) != 0 {
		t.Fatal("audit not cleared")
	}
}

func TestAuditForAndDropped(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true, AuditCapacity: 5})
	// Capacity is per shard; pids p1 and p2 collide on the same shard,
	// so their records compete for the same 5 ring slots.
	p1, p2 := 1, 1+auditShards
	tasks.add(p1)
	tasks.add(p2)
	for i := 0; i < 4; i++ {
		m.Decide(p1, OpCopy, clk.Now())
	}
	m.Decide(p2, OpPaste, clk.Now())
	if got := len(m.AuditFor(p1)); got != 4 {
		t.Fatalf("AuditFor(p1) = %d, want 4", got)
	}
	if got := len(m.AuditFor(p2)); got != 1 {
		t.Fatalf("AuditFor(p2) = %d, want 1", got)
	}
	if m.DroppedAudit() != 0 {
		t.Fatalf("dropped = %d, want 0", m.DroppedAudit())
	}
	// Overflow the shared shard ring: two oldest records evicted.
	m.Decide(p2, OpPaste, clk.Now())
	m.Decide(p2, OpPaste, clk.Now())
	if m.DroppedAudit() != 2 {
		t.Fatalf("dropped = %d, want 2", m.DroppedAudit())
	}
	if got := len(m.AuditFor(p1)); got != 2 {
		t.Fatalf("AuditFor(p1) after eviction = %d, want 2", got)
	}
}

func TestAuditShardIsolation(t *testing.T) {
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true, AuditCapacity: 3})
	// pids 1 and 2 land on different shards: overflowing one must not
	// evict the other's records.
	tasks.add(1)
	tasks.add(2)
	m.Decide(1, OpCopy, clk.Now())
	for i := 0; i < 10; i++ {
		m.Decide(2, OpPaste, clk.Now())
	}
	if got := len(m.AuditFor(1)); got != 1 {
		t.Fatalf("AuditFor(1) = %d, want 1 (cross-shard eviction)", got)
	}
	if got := len(m.AuditFor(2)); got != 3 {
		t.Fatalf("AuditFor(2) = %d, want 3", got)
	}
	if m.DroppedAudit() != 7 {
		t.Fatalf("dropped = %d, want 7", m.DroppedAudit())
	}
	// The merged log preserves global decision order.
	all := m.Audit()
	if len(all) != 4 {
		t.Fatalf("Audit() = %d records, want 4", len(all))
	}
	if all[0].PID != 1 {
		t.Fatalf("oldest merged record PID = %d, want 1", all[0].PID)
	}
}
