module overhaul

go 1.22
