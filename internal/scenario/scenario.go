// Package scenario provides a small scripted-desktop engine: a scenario
// is a sequence of steps (launch, click, type, open a device, copy,
// paste, capture, advance time) with expectations (grant, deny, alert),
// executed against a freshly booted Overhaul system. It powers
// table-driven end-to-end tests and the overhaul-sim timeline tool.
package scenario

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/xserver"
)

// Kind enumerates step kinds.
type Kind int

// Step kinds.
const (
	StepLaunch Kind = iota + 1
	StepLaunchHeadless
	StepAdvance
	StepClick
	StepType
	StepOpenDevice
	StepCapture
	StepCopy
	StepPaste
	StepExpectAlerts
)

// Expect states the expected outcome of an access step.
type Expect int

// Expectations.
const (
	ExpectNothing Expect = iota
	ExpectGrant
	ExpectDeny
)

// Step is one scripted action. App names refer to earlier Launch steps.
type Step struct {
	Kind   Kind
	App    string        // acting application
	Peer   string        // counterpart (paste source)
	Device devfs.Class   // for StepOpenDevice
	Key    string        // for StepType
	D      time.Duration // for StepAdvance
	Expect Expect
	Alerts int // for StepExpectAlerts: expected active alert count
}

// Event is one line of the executed timeline.
type Event struct {
	At      time.Time
	Text    string
	Outcome string
}

// Result is the executed scenario.
type Result struct {
	Timeline []Event
	Grants   int
	Denials  int
}

// Errors.
var (
	ErrUnknownApp  = errors.New("scenario: unknown app")
	ErrExpectation = errors.New("scenario: expectation failed")
)

// Runner executes scenarios.
type Runner struct {
	sys     *core.System
	devices map[devfs.Class]string
	apps    map[string]*core.App
	result  Result
}

// NewRunner boots an enforcing system with all sensitive device classes
// attached.
func NewRunner() (*Runner, error) {
	sys, err := core.Boot(core.Options{Enforce: true, AlertSecret: "scenario"})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	devices := make(map[devfs.Class]string)
	for _, class := range devfs.SensitiveClasses() {
		p, err := sys.AttachDevice(class)
		if err != nil {
			return nil, fmt.Errorf("scenario: attach %s: %w", class, err)
		}
		devices[class] = p
	}
	return &Runner{sys: sys, devices: devices, apps: make(map[string]*core.App)}, nil
}

// System exposes the underlying system for assertions.
func (r *Runner) System() *core.System { return r.sys }

// log appends a timeline event.
func (r *Runner) log(text, outcome string) {
	r.result.Timeline = append(r.result.Timeline, Event{At: r.sys.Clock.Now(), Text: text, Outcome: outcome})
}

// check validates an expectation against an error outcome.
func (r *Runner) check(step Step, what string, err error) error {
	outcome := "granted"
	if err != nil {
		outcome = "denied"
		r.result.Denials++
	} else {
		r.result.Grants++
	}
	r.log(what, outcome)
	switch step.Expect {
	case ExpectGrant:
		if err != nil {
			return fmt.Errorf("%w: %s: want grant, got %v", ErrExpectation, what, err)
		}
	case ExpectDeny:
		if err == nil {
			return fmt.Errorf("%w: %s: want deny, got grant", ErrExpectation, what)
		}
	}
	return nil
}

// app resolves an app name.
func (r *Runner) app(name string) (*core.App, error) {
	a, ok := r.apps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownApp, name)
	}
	return a, nil
}

// Run executes the steps in order, failing fast on an unmet expectation.
func (r *Runner) Run(steps []Step) (Result, error) {
	for i, step := range steps {
		if err := r.runStep(step); err != nil {
			return r.result, fmt.Errorf("step %d: %w", i+1, err)
		}
	}
	return r.result, nil
}

func (r *Runner) runStep(step Step) error {
	switch step.Kind {
	case StepLaunch:
		app, err := r.sys.Launch(step.App)
		if err != nil {
			return err
		}
		r.apps[step.App] = app
		r.log("launch "+step.App, fmt.Sprintf("pid %d", app.Proc.PID()))

	case StepLaunchHeadless:
		proc, err := r.sys.LaunchHeadless(step.App)
		if err != nil {
			return err
		}
		r.apps[step.App] = r.sys.WrapApp(proc, nil, 0, 0, 0, 0, 0)
		r.log("launch headless "+step.App, fmt.Sprintf("pid %d", proc.PID()))

	case StepAdvance:
		r.sys.Settle(step.D)
		r.log(fmt.Sprintf("advance %v", step.D), "")

	case StepClick:
		app, err := r.app(step.App)
		if err != nil {
			return err
		}
		if err := app.Click(); err != nil {
			return err
		}
		r.log("click "+step.App, "hardware input")

	case StepType:
		app, err := r.app(step.App)
		if err != nil {
			return err
		}
		if err := app.Type(step.Key); err != nil {
			return err
		}
		r.log(fmt.Sprintf("type %q into %s", step.Key, step.App), "hardware input")

	case StepOpenDevice:
		app, err := r.app(step.App)
		if err != nil {
			return err
		}
		path, ok := r.devices[step.Device]
		if !ok {
			return fmt.Errorf("scenario: unknown device class %q", step.Device)
		}
		var openErr error
		if app.Client != nil {
			_, openErr = app.OpenDevice(path)
		} else {
			_, openErr = r.sys.Kernel.Open(app.Proc, path, fs.AccessRead)
		}
		return r.check(step, fmt.Sprintf("%s opens %s", step.App, step.Device), openErr)

	case StepCapture:
		app, err := r.app(step.App)
		if err != nil {
			return err
		}
		_, capErr := app.Client.GetImage(xserver.Root)
		return r.check(step, step.App+" captures the screen", capErr)

	case StepCopy:
		app, err := r.app(step.App)
		if err != nil {
			return err
		}
		copyErr := app.Client.SetSelection("CLIPBOARD", app.Win)
		return r.check(step, step.App+" copies", copyErr)

	case StepPaste:
		app, err := r.app(step.App)
		if err != nil {
			return err
		}
		pasteErr := app.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "SEL", app.Win)
		return r.check(step, step.App+" pastes", pasteErr)

	case StepExpectAlerts:
		got := len(r.sys.ActiveAlerts())
		r.log("expect alerts", fmt.Sprintf("%d active", got))
		if got != step.Alerts {
			return fmt.Errorf("%w: active alerts = %d, want %d", ErrExpectation, got, step.Alerts)
		}

	default:
		return fmt.Errorf("scenario: unknown step kind %d", step.Kind)
	}
	return nil
}

// FormatTimeline renders the executed timeline.
func FormatTimeline(res Result) string {
	var b strings.Builder
	for _, e := range res.Timeline {
		out := ""
		if e.Outcome != "" {
			out = " -> " + e.Outcome
		}
		fmt.Fprintf(&b, "[%s] %s%s\n", e.At.Format("15:04:05.000"), e.Text, out)
	}
	fmt.Fprintf(&b, "grants=%d denials=%d\n", res.Grants, res.Denials)
	return b.String()
}
