package trace

import (
	"strings"
	"testing"
)

func TestAllFiguresRegenerate(t *testing.T) {
	traces, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(traces) != 6 {
		t.Fatalf("traces = %d, want 6", len(traces))
	}
	for i, tr := range traces {
		if tr.Figure != i+1 {
			t.Fatalf("figure %d out of order", tr.Figure)
		}
		if len(tr.Steps) == 0 || tr.Outcome == "" {
			t.Fatalf("figure %d empty: %+v", tr.Figure, tr)
		}
		for j, s := range tr.Steps {
			if s.Seq != j+1 {
				t.Fatalf("figure %d step %d misnumbered: %d", tr.Figure, j+1, s.Seq)
			}
		}
	}
}

func TestFigure6HasThirteenStepsWithPaperModifications(t *testing.T) {
	tr, err := Figure6()
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(tr.Steps) != 13 {
		t.Fatalf("steps = %d, want 13 (the paper's full protocol)", len(tr.Steps))
	}
	// The paper bolds steps 1, 2, 5, 6 (input verification + queries);
	// our reproduction additionally marks the two hardening changes
	// (SendEvent screening, in-flight property restriction).
	for _, mustMod := range []int{1, 2, 5, 6} {
		if !tr.Steps[mustMod-1].Modified {
			t.Fatalf("step %d not marked modified: %+v", mustMod, tr.Steps[mustMod-1])
		}
	}
	for _, unmod := range []int{3, 4, 7, 8, 10, 12, 13} {
		if tr.Steps[unmod-1].Modified {
			t.Fatalf("step %d wrongly marked modified", unmod)
		}
	}
}

func TestFigure1MentionsDeltaAndAlert(t *testing.T) {
	tr, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	text := tr.Render()
	for _, want := range []string{"N_{A,t}", "mic_{t+n}", "δ", "alert", "netlink"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestRenderMarksModifiedSteps(t *testing.T) {
	tr := &Trace{Figure: 9, Title: "t", Scenario: "s", Outcome: "o"}
	tr.add("a", "b", "plain", false)
	tr.add("b", "c", "changed", true)
	out := tr.Render()
	lines := strings.Split(out, "\n")
	var plainLine, modLine string
	for _, l := range lines {
		if strings.Contains(l, "plain") {
			plainLine = l
		}
		if strings.Contains(l, "changed") {
			modLine = l
		}
	}
	if !strings.HasPrefix(modLine, " *") {
		t.Fatalf("modified line not starred: %q", modLine)
	}
	if strings.HasPrefix(plainLine, " *") {
		t.Fatalf("plain line starred: %q", plainLine)
	}
}

func TestFigure5BothAlertKinds(t *testing.T) {
	tr, err := Figure5()
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	text := tr.Render()
	if !strings.Contains(text, "is recording from the microphone") {
		t.Fatalf("granted alert missing:\n%s", text)
	}
	if !strings.Contains(text, "was blocked from recording the microphone") {
		t.Fatalf("blocked alert missing:\n%s", text)
	}
}
