// Package analysistest runs an analyzer over a fixture tree and
// compares its findings against expectations annotated in the
// fixtures themselves, in the style of golang.org/x/tools'
// analysistest but built on the stdlib-only framework.
//
// A fixture line that should be flagged carries a trailing comment
//
//	// want "substring"
//
// (several quoted substrings allowed; each must be matched by a
// distinct diagnostic on that line). The harness fails the test on
// any diagnostic without a want, and any want without a diagnostic.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"overhaul/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want annotation.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the fixture tree rooted at dir, applies the analyzer, and
// reports mismatches through t. It returns the diagnostics for any
// further assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	mod, err := analysis.Load(dir)
	if err != nil {
		t.Fatalf("load fixtures at %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, group := range f.AST.Comments {
				for _, c := range group.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := mod.Fset.Position(c.Pos()).Line
					for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
						wants = append(wants, &expectation{
							file:   f.Name,
							line:   line,
							substr: strings.ReplaceAll(q[1], `\"`, `"`),
						})
					}
				}
			}
		}
	}

	diags := analysis.Run(mod, []*analysis.Analyzer{a})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a %s diagnostic containing %q, got none", w.file, w.line, a.Name, w.substr)
		}
	}
	return diags
}
