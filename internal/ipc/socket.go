package ipc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrPeerClosed is returned when operating on a socket whose peer has
// closed.
var ErrPeerClosed = errors.New("ipc: peer endpoint closed")

// DefaultSocketBacklog bounds the number of queued datagrams per
// direction on a UNIX domain socket pair.
const DefaultSocketBacklog = 256

// SocketPair is a connected pair of UNIX domain socket endpoints
// (datagram-preserving, like SOCK_SEQPACKET). Higher-level IPC such as
// D-Bus rides on these, so stamp propagation here covers those too.
type SocketPair struct {
	a, b *SocketEndpoint
}

// SocketEndpoint is one end of a SocketPair.
type SocketEndpoint struct {
	st   Stamps
	name string

	// ts is shared with the peer (the socket is one kernel object) and
	// synchronizes itself with atomics; it is not guarded by mu.
	ts *carrier

	mu     sync.Mutex
	inbox  [][]byte
	peer   *SocketEndpoint
	closed bool
}

// NewSocketPair creates a connected pair. The embedded timestamp is a
// property of the socket (the kernel data structure), shared by both
// directions, as in the paper's per-resource protocol.
func NewSocketPair(st Stamps) *SocketPair {
	ts := &carrier{}
	a := &SocketEndpoint{st: st, ts: ts, name: "a"}
	b := &SocketEndpoint{st: st, ts: ts, name: "b"}
	a.peer, b.peer = b, a
	return &SocketPair{a: a, b: b}
}

// Ends returns the two endpoints.
func (sp *SocketPair) Ends() (*SocketEndpoint, *SocketEndpoint) { return sp.a, sp.b }

// Send queues a datagram to the peer on behalf of pid.
func (e *SocketEndpoint) Send(pid int, data []byte) error {
	e.mu.Lock()
	closed := e.closed
	peer := e.peer
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("socket send: %w", ErrClosedPipe)
	}

	peer.mu.Lock()
	defer peer.mu.Unlock()
	if peer.closed {
		return fmt.Errorf("socket send: %w", ErrPeerClosed)
	}
	if len(peer.inbox) >= DefaultSocketBacklog {
		return fmt.Errorf("socket send: %w", ErrFull)
	}
	e.ts.onSend(e.st, pid)
	msg := make([]byte, len(data))
	copy(msg, data)
	peer.inbox = append(peer.inbox, msg)
	return nil
}

// Recv dequeues the next datagram on behalf of pid.
func (e *SocketEndpoint) Recv(pid int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.inbox) == 0 {
		if e.closed {
			return nil, fmt.Errorf("socket recv: %w", ErrClosedPipe)
		}
		return nil, fmt.Errorf("socket recv: %w", ErrEmpty)
	}
	msg := e.inbox[0]
	e.inbox = e.inbox[1:]
	e.ts.onRecv(e.st, pid)
	return msg, nil
}

// Pending returns the number of queued datagrams.
func (e *SocketEndpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}

// Close shuts this endpoint down. Queued datagrams remain readable by
// this endpoint's owner until drained.
func (e *SocketEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosedPipe
	}
	e.closed = true
	return nil
}

// EmbeddedStamp exposes the socket's carried timestamp.
func (e *SocketEndpoint) EmbeddedStamp() time.Time { return e.ts.stampValue() }
