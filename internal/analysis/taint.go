package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the module's interprocedural fact tables: the
// taint lattice behind flowcheck, the fail-closed reachability facts
// behind failclosedcheck, and the lock-acquisition facts behind
// lockordercheck. Packages are processed in dependency order; inside
// a package the propagation iterates to a fixpoint (the lattice is
// finite and all tables grow monotonically, so it terminates).
//
// The taint roots are deliberate and narrow:
//
//   - TaintClock enters at calls to a method named Now on a type
//     declared in a package named "clock" — the single injectable
//     time source (clockcheck already bans time.Now everywhere else).
//   - TaintStamp enters at calls to the interaction-stamp store's
//     read API (stampGetterNames): by *definition* those return
//     hardware-input evidence. The write half of the invariant is
//     checked separately by flowcheck's mint rule, so the two rules
//     compose into "grant ⇒ fresh hardware stamp" without a global
//     (non-dependency-ordered) fixpoint.
//
// Everything else is propagation: assignments, field stores (plain,
// keyed composite literals, and atomic Store/Swap/CompareAndSwap),
// derivation through calls whose receiver or arguments are tainted,
// summaries of module functions (result taint), and name-keyed
// parameter facts for interface dispatch.

// stampGetterNames is the interaction-stamp store's read API. A call
// to a method with one of these names yields TaintStamp on its
// time-typed results.
var stampGetterNames = map[string]bool{
	"InteractionStamp": true,
	"InteractionView":  true,
	"Stamp":            true,
}

// stampSetterNames is the store's write API — the mint sites checked
// by flowcheck's rule B and the seams the stamp fields behind them are
// identified by.
var stampSetterNames = map[string]bool{
	"SetInteractionStamp":     true,
	"SetInteractionStampSpan": true,
	"Notify":                  true,
	"NotifyCtx":               true,
	"NotifyInteraction":       true,
	"Adopt":                   true,
	"AdoptSpan":               true,
}

// failClosedNames are the base fail-closed handlers: calling one of
// these records a denial or flips degraded mode, so an error path that
// reaches one is audited. Decide/DecideCtx are deliberately *not*
// base handlers — a decision function's own mediation call must not
// cover its error returns — but a Decide that transitively records
// denials earns the FailsClosed fact like any other function.
var failClosedNames = map[string]bool{
	"RecordDenial":    true,
	"RecordDenialCtx": true,
	"SetDegraded":     true,
}

// atomicStoreNames are methods that write through to their receiver
// (sync/atomic values): a tainted argument taints the receiver field.
var atomicStoreNames = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
	"Add":            true,
	"Or":             true,
	"And":            true,
}

// lockClass identifies one lock-order class: a named struct type that
// carries a mutex. Sharded classes are element types of an array or
// slice field somewhere in the module (the kernel's 16 process-table
// shards, the monitor's 8 audit-ring shards).
type lockClass struct {
	key     string // pkgpath.TypeName
	sharded bool
}

// taintState is the module-wide mutable state of fact computation.
type taintState struct {
	m     *Module
	graph *CallGraph
	mf    *moduleFacts

	// varTaint covers locals, parameters, and package-level vars,
	// keyed by their types.Object. Retained after computation so
	// flowcheck can re-evaluate expression taint.
	varTaint map[types.Object]Taint

	// classes maps a named type's key to its lock class; shardedOwner
	// marks element types of mutex-bearing arrays/slices.
	classes map[string]*lockClass

	// edgePos remembers a representative position for every lock edge
	// (held→acquired), for lockordercheck reporting.
	edgePos map[LockEdge]reportSite

	changed bool // set when any table grows during a fixpoint sweep
}

// reportSite ties a fact back to a package and position.
type reportSite struct {
	pkg *Package
	pos token.Pos
}

// computeFacts builds the module's fact tables. Returns nil when no
// package type-checked at all.
func computeFacts(m *Module) *moduleFacts {
	anyTyped := false
	for _, pkg := range m.Packages {
		if ti := m.TypeInfoFor(pkg); ti != nil && ti.Pkg != nil {
			anyTyped = true
			break
		}
	}
	if !anyTyped {
		return nil
	}

	mf := &moduleFacts{
		byDir:  make(map[string]*FactSet),
		funcs:  make(map[string]*FuncFact),
		fields: make(map[string]*FieldFact),
		params: make(map[string]*ParamFact),
	}
	st := &taintState{
		m:        m,
		graph:    buildCallGraph(m),
		mf:       mf,
		varTaint: make(map[types.Object]Taint),
		classes:  make(map[string]*lockClass),
		edgePos:  make(map[LockEdge]reportSite),
	}
	mf.graph = st.graph
	mf.state = st

	st.collectLockClasses()

	for _, pkg := range m.PackagesInDependencyOrder() {
		ti := m.TypeInfoFor(pkg)
		if ti == nil || ti.Info == nil || ti.Pkg == nil {
			mf.byDir[pkg.Dir] = NewFactSet()
			continue
		}
		set := NewFactSet()
		mf.byDir[pkg.Dir] = set
		st.analyzePackage(pkg, ti, set)
	}
	return mf
}

// analyzePackage iterates the package's functions to a fixpoint.
func (st *taintState) analyzePackage(pkg *Package, ti *TypeInfo, set *FactSet) {
	var fns []*ast.FuncDecl
	for _, f := range pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}
	for {
		st.changed = false
		for _, fn := range fns {
			st.analyzeFunc(pkg, ti, set, fn)
		}
		if !st.changed {
			return
		}
	}
}

// funcFactFor returns (creating on demand) the fact entry for key,
// registering it in both the package set and the merged view.
func (st *taintState) funcFactFor(set *FactSet, key string) *FuncFact {
	if f, ok := st.mf.funcs[key]; ok {
		if set != nil {
			set.Funcs[key] = f
		}
		return f
	}
	f := &FuncFact{}
	st.mf.funcs[key] = f
	if set != nil {
		set.Funcs[key] = f
	}
	return f
}

// taintField joins t into the field's fact.
func (st *taintState) taintField(set *FactSet, obj types.Object, t Taint) {
	if obj == nil || t == TaintNone {
		return
	}
	key := objectKey(obj)
	f := st.mf.fields[key]
	if f == nil {
		f = &FieldFact{}
		st.mf.fields[key] = f
	}
	if set != nil {
		set.Fields[key] = f
	}
	if joined := f.Taint.join(t); joined != f.Taint {
		f.Taint = joined
		st.changed = true
	}
}

// taintParamFact joins t into the name-keyed parameter fact.
func (st *taintState) taintParamFact(set *FactSet, method string, index int, t Taint) {
	if t == TaintNone {
		return
	}
	key := paramKey(method, index)
	f := st.mf.params[key]
	if f == nil {
		f = &ParamFact{}
		st.mf.params[key] = f
	}
	if set != nil {
		set.Params[key] = f
	}
	if joined := f.Taint.join(t); joined != f.Taint {
		f.Taint = joined
		st.changed = true
	}
}

// taintVar joins t into a variable object's taint.
func (st *taintState) taintVar(obj types.Object, t Taint) {
	if obj == nil || t == TaintNone {
		return
	}
	if joined := st.varTaint[obj].join(t); joined != st.varTaint[obj] {
		st.varTaint[obj] = joined
		st.changed = true
	}
}

// isTimeType reports whether t is time.Time or time.Duration
// (possibly named aliases thereof resolve structurally: Duration's
// underlying is int64, so Duration is matched by name).
func isTimeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			return obj.Name() == "Time" || obj.Name() == "Duration"
		}
	}
	return false
}

// pkgBase is the last path element of a package path.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isClockNow reports whether the call is the hardware-clock read: a
// method named Now whose defining package is named "clock".
func isClockNow(info *types.Info, call *ast.CallExpr) bool {
	fn, _, ok := calleeObject(info, call)
	if !ok || fn.Name() != "Now" || fn.Pkg() == nil {
		return false
	}
	return pkgBase(fn.Pkg().Path()) == "clock"
}

// callResultTaints returns the taint of each result of a call, joining
// summaries of all resolved targets, the stamp-getter fiat, the clock
// seed, and derivation from tainted receiver/arguments.
func (st *taintState) callResultTaints(info *types.Info, call *ast.CallExpr) []Taint {
	nres := 1
	if tv, ok := info.Types[call]; ok {
		if tuple, isTuple := tv.Type.(*types.Tuple); isTuple {
			nres = tuple.Len()
		}
	}
	out := make([]Taint, nres)

	if isClockNow(info, call) {
		for i := range out {
			out[i] = TaintClock
		}
		return out
	}

	fn, _, resolved := calleeObject(info, call)

	// Stamp-getter fiat: time-typed results of the store's read API
	// are stamp evidence by definition.
	if resolved && stampGetterNames[fn.Name()] {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil {
			for i := 0; i < sig.Results().Len() && i < nres; i++ {
				if isTimeType(sig.Results().At(i).Type()) {
					out[i] = TaintStamp
				}
			}
		}
	}

	// Summaries of module targets (static or by-name dispatch).
	for _, key := range st.graph.resolveCall(info, call) {
		if f := st.mf.funcs[key]; f != nil {
			for i, t := range f.Results {
				if i < nres {
					out[i] = out[i].join(t)
				}
			}
		}
	}

	// Derivation: a call over tainted inputs stays tainted (t.Add(d),
	// time.Unix(0, nanos), stampTime(n), x.Load()). Joined into every
	// result — over-approximate, which only widens taint.
	derived := TaintNone
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		derived = derived.join(st.exprTaint(info, sel.X))
	}
	for _, arg := range call.Args {
		derived = derived.join(st.exprTaint(info, arg))
	}
	if derived != TaintNone {
		for i := range out {
			out[i] = out[i].join(derived)
		}
	}
	return out
}

// exprTaint evaluates the taint of a single-valued expression.
func (st *taintState) exprTaint(info *types.Info, e ast.Expr) Taint {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		t := st.varTaint[obj]
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			if f := st.mf.fields[objectKey(v)]; f != nil {
				t = t.join(f.Taint)
			}
		}
		return t
	case *ast.SelectorExpr:
		t := st.exprTaint(info, e.X)
		obj := info.Uses[e.Sel]
		if sel, ok := info.Selections[e]; ok {
			obj = sel.Obj()
		}
		if obj != nil {
			t = t.join(st.varTaint[obj])
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				if f := st.mf.fields[objectKey(v)]; f != nil {
					t = t.join(f.Taint)
				}
			}
		}
		return t
	case *ast.CallExpr:
		res := st.callResultTaints(info, e)
		if len(res) == 1 {
			return res[0]
		}
		// Multi-valued call in single-value position cannot happen;
		// join defensively.
		t := TaintNone
		for _, r := range res {
			t = t.join(r)
		}
		return t
	case *ast.BinaryExpr:
		return st.exprTaint(info, e.X).join(st.exprTaint(info, e.Y))
	case *ast.UnaryExpr:
		return st.exprTaint(info, e.X)
	case *ast.ParenExpr:
		return st.exprTaint(info, e.X)
	case *ast.StarExpr:
		return st.exprTaint(info, e.X)
	case *ast.IndexExpr:
		return st.exprTaint(info, e.X).join(st.exprTaint(info, e.Index))
	case *ast.TypeAssertExpr:
		return st.exprTaint(info, e.X)
	case *ast.CompositeLit:
		t := TaintNone
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.join(st.exprTaint(info, kv.Value))
			} else {
				t = t.join(st.exprTaint(info, el))
			}
		}
		return t
	case *ast.SliceExpr:
		return st.exprTaint(info, e.X)
	}
	return TaintNone
}

// lvalueAssign records taint flowing into an assignable expression.
func (st *taintState) lvalueAssign(set *FactSet, info *types.Info, lhs ast.Expr, t Taint) {
	if t == TaintNone {
		return
	}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := info.Defs[lhs]
		if obj == nil {
			obj = info.Uses[lhs]
		}
		st.taintVar(obj, t)
	case *ast.SelectorExpr:
		var obj types.Object
		if sel, ok := info.Selections[lhs]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[lhs.Sel]
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			st.taintField(set, v, t)
		} else {
			st.taintVar(obj, t)
		}
	case *ast.StarExpr:
		st.lvalueAssign(set, info, lhs.X, t)
	case *ast.IndexExpr:
		st.lvalueAssign(set, info, lhs.X, t)
	case *ast.ParenExpr:
		st.lvalueAssign(set, info, lhs.X, t)
	}
}

// fieldObjOf resolves e to a struct-field object when e is a field
// selection, else nil.
func fieldObjOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	if s, found := info.Selections[sel]; found {
		obj = s.Obj()
	} else {
		obj = info.Uses[sel.Sel]
	}
	if v, isVar := obj.(*types.Var); isVar && v.IsField() {
		return v
	}
	return nil
}

// analyzeFunc propagates taint through one function body and updates
// the function's summary, parameter facts at its call sites, keyed
// composite-literal field taints, atomic-store field taints, the
// fail-closed fact, and the lock facts.
func (st *taintState) analyzeFunc(pkg *Package, ti *TypeInfo, set *FactSet, fn *ast.FuncDecl) {
	info := ti.Info
	obj := info.Defs[fn.Name]
	if obj == nil {
		return
	}
	key := objectKey(obj)
	fact := st.funcFactFor(set, key)

	// Seed parameters from name-keyed call-site facts (interface
	// dispatch: implementations adopt what any caller passed).
	if fn.Type.Params != nil {
		idx := 0
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if pf := st.mf.params[paramKey(fn.Name.Name, idx)]; pf != nil {
					st.taintVar(info.Defs[name], pf.Taint)
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}

	sig, _ := obj.Type().(*types.Signature)
	nres := 0
	if sig != nil {
		nres = sig.Results().Len()
	}
	if len(fact.Results) < nres {
		fact.Results = append(fact.Results, make([]Taint, nres-len(fact.Results))...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.walkAssign(set, info, n)
		case *ast.RangeStmt:
			t := st.exprTaint(info, n.X)
			if t != TaintNone {
				if n.Key != nil {
					st.lvalueAssign(set, info, n.Key, t)
				}
				if n.Value != nil {
					st.lvalueAssign(set, info, n.Value, t)
				}
			}
		case *ast.ReturnStmt:
			st.walkReturn(info, fact, n, nres)
		case *ast.CallExpr:
			st.walkCallSite(set, info, n)
		case *ast.CompositeLit:
			st.walkCompositeLit(set, info, n)
		case *ast.GenDecl:
			// var x = expr inside a body.
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						st.taintVar(info.Defs[name], st.exprTaint(info, vs.Values[i]))
					}
				}
			}
		}
		return true
	})

	// Fail-closed: the function reaches a base handler, directly or
	// through a module callee that does.
	if !fact.FailsClosed && st.reachesFailClosed(key) {
		fact.FailsClosed = true
		st.changed = true
	}

	st.scanLocks(pkg, info, set, fact, fn)
}

// walkAssign propagates one assignment statement.
func (st *taintState) walkAssign(set *FactSet, info *types.Info, n *ast.AssignStmt) {
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		// Tuple assignment from a call (or type assertion / map read).
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			res := st.callResultTaints(info, call)
			for i, lhs := range n.Lhs {
				if i < len(res) {
					st.lvalueAssign(set, info, lhs, res[i])
				}
			}
			return
		}
		t := st.exprTaint(info, n.Rhs[0])
		for _, lhs := range n.Lhs {
			st.lvalueAssign(set, info, lhs, t)
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			st.lvalueAssign(set, info, lhs, st.exprTaint(info, n.Rhs[i]))
		}
	}
}

// walkReturn joins returned expression taints into the summary.
func (st *taintState) walkReturn(info *types.Info, fact *FuncFact, n *ast.ReturnStmt, nres int) {
	if len(n.Results) == 1 && nres > 1 {
		// return f() forwarding a tuple.
		if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
			res := st.callResultTaints(info, call)
			for i := 0; i < nres && i < len(res); i++ {
				if joined := fact.Results[i].join(res[i]); joined != fact.Results[i] {
					fact.Results[i] = joined
					st.changed = true
				}
			}
		}
		return
	}
	for i, e := range n.Results {
		if i >= len(fact.Results) {
			break
		}
		if joined := fact.Results[i].join(st.exprTaint(info, e)); joined != fact.Results[i] {
			fact.Results[i] = joined
			st.changed = true
		}
	}
}

// walkCallSite records parameter facts for the callee(s) and handles
// atomic write-through methods taining their receiver field.
func (st *taintState) walkCallSite(set *FactSet, info *types.Info, call *ast.CallExpr) {
	// Atomic store to a field: p.stamp.Store(v) taints Process.stamp.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && atomicStoreNames[sel.Sel.Name] {
		if field := fieldObjOf(info, sel.X); field != nil {
			t := TaintNone
			for _, arg := range call.Args {
				t = t.join(st.exprTaint(info, arg))
			}
			st.taintField(set, field, t)
		}
	}

	fn, _, ok := calleeObject(info, call)
	if !ok {
		return
	}
	// Name-keyed parameter facts for every argument with taint, plus
	// direct seeding of same-module static targets' parameter objects
	// (exact, no name aliasing) — the latter covers ordinary
	// function-call chains inside a package precisely.
	for i, arg := range call.Args {
		t := st.exprTaint(info, arg)
		if t == TaintNone {
			continue
		}
		st.taintParamFact(set, fn.Name(), i, t)
		if sig, isSig := fn.Type().(*types.Signature); isSig && i < sig.Params().Len() {
			st.taintVar(sig.Params().At(i), t)
		}
	}
}

// walkCompositeLit taints keyed struct-literal fields:
// Msg{Time: t} taints Msg.Time.
func (st *taintState) walkCompositeLit(set *FactSet, info *types.Info, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if field, isVar := info.Uses[key].(*types.Var); isVar && field.IsField() {
			st.taintField(set, field, st.exprTaint(info, kv.Value))
		}
	}
}

// reachesFailClosed reports whether key's function calls (transitively
// through module code) a base fail-closed handler.
func (st *taintState) reachesFailClosed(key string) bool {
	for callee := range st.graph.calls[key] {
		if failClosedNames[baseName(callee)] {
			return true
		}
		if f := st.mf.funcs[callee]; f != nil && f.FailsClosed {
			return true
		}
	}
	return false
}

// baseName strips an objectKey down to its final name segment.
func baseName(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}
