package core

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/devfs"
	"overhaul/internal/kernel"
	"overhaul/internal/xserver"
)

// bootBatched boots an enforcing system in batched-notify mode with a
// microphone attached.
func bootBatched(t *testing.T, batch int) (*System, string) {
	t.Helper()
	sys, err := Boot(Options{Enforce: true, AlertSecret: "tabby-cat", NotifyBatch: batch})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("attach mic: %v", err)
	}
	return sys, mic
}

func TestNotifyBatchBuffersUntilFlush(t *testing.T) {
	sys, mic := bootBatched(t, 8)
	app := launchSettled(t, sys, "skype")

	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(100 * time.Millisecond)

	// The notification is still buffered, so kernel-side device
	// mediation has no stamp yet and must deny.
	if _, err := app.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("OpenDevice before flush = %v, want ErrAccessDenied", err)
	}

	if err := sys.FlushNotifications(); err != nil {
		t.Fatalf("FlushNotifications: %v", err)
	}
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice after flush: %v", err)
	}
}

func TestNotifyBatchAutoFlushesWhenFull(t *testing.T) {
	sys, mic := bootBatched(t, 2)
	a := launchSettled(t, sys, "skype")
	b := launchSettled(t, sys, "zoom")

	// Two clicks on distinct pids fill the batch of two, which flushes
	// it without any explicit FlushNotifications call.
	if err := a.Click(); err != nil {
		t.Fatalf("Click a: %v", err)
	}
	if err := b.Click(); err != nil {
		t.Fatalf("Click b: %v", err)
	}
	sys.Settle(100 * time.Millisecond)
	if _, err := a.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice a: %v", err)
	}
	if _, err := b.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice b: %v", err)
	}
}

func TestNotifyBatchCoalescesPerPID(t *testing.T) {
	sys, _ := bootBatched(t, 64)
	app := launchSettled(t, sys, "editor")

	before := sys.Hub().StatsSnapshot().UserToKernel
	// A burst of interactions on one pid coalesces to a single pending
	// item: nothing crosses the channel while buffering...
	for i := 0; i < 10; i++ {
		if err := app.Click(); err != nil {
			t.Fatalf("Click %d: %v", i, err)
		}
		sys.Settle(10 * time.Millisecond)
	}
	if got := sys.Hub().StatsSnapshot().UserToKernel; got != before {
		t.Fatalf("user→kernel messages while buffering = %d, want %d", got, before)
	}
	// ...and the flush ships exactly one message carrying the newest
	// stamp.
	if err := sys.FlushNotifications(); err != nil {
		t.Fatalf("FlushNotifications: %v", err)
	}
	if got := sys.Hub().StatsSnapshot().UserToKernel; got != before+1 {
		t.Fatalf("user→kernel messages after flush = %d, want %d", got, before+1)
	}
	if stamp := app.Proc.InteractionStamp(); stamp.IsZero() {
		t.Fatal("stamp not installed after flush")
	}
}

func TestNotifyBatchQueryFlushesFirst(t *testing.T) {
	// A permission query must not outrun buffered notifications: the
	// clipboard flow works in batched mode without any explicit flush,
	// because Query drains the batch before deciding.
	sys, _ := bootBatched(t, 64)
	src := launchSettled(t, sys, "editor")
	dst := launchSettled(t, sys, "terminal")

	if err := src.Type("ctrl+c"); err != nil {
		t.Fatalf("Type: %v", err)
	}
	if err := src.Client.SetSelection("CLIPBOARD", src.Win); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	if err := dst.Type("ctrl+v"); err != nil {
		t.Fatalf("Type: %v", err)
	}
	if err := dst.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "SEL", dst.Win); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	// A background sniffer still gets refused in batched mode.
	sniffer := launchSettled(t, sys, "sniffer")
	err := sniffer.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "X", sniffer.Win)
	if !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("sniffer ConvertSelection = %v, want ErrBadAccess", err)
	}
}
