# Local workflow mirroring .github/workflows/ci.yml: `make ci` is the
# full tier-1 gate a PR must pass.

GO ?= go

.PHONY: all build fmt vet lint test race bench fuzz chaos ci

all: build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Domain-invariant static analysis (clockcheck, lockcheck, stampcheck,
# printcheck, errdrop). See DESIGN.md "Invariants & static analysis".
lint:
	$(GO) run ./cmd/overhaul-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Benchmarks, recorded machine-readably: the run and the conversion
# are separate steps so a bench failure is not masked by a pipe.
bench:
	$(GO) test -bench=. -benchtime=100x -benchmem -run='^$$' ./... > bench.out
	@cat bench.out
	$(GO) run ./cmd/overhaul-benchjson -in bench.out -out BENCH_overhaul.json
	@rm -f bench.out

# Short fuzz pass over the stamp-propagation invariants and the devfs
# helper protocol codec.
fuzz:
	$(GO) test ./internal/ipc -run='^$$' -fuzz='^FuzzMsgQueueStampPropagation$$' -fuzztime=10s
	$(GO) test ./internal/ipc -run='^$$' -fuzz='^FuzzShmStampPropagation$$' -fuzztime=10s
	$(GO) test ./internal/devfs -run='^$$' -fuzz='^FuzzMappingCodec$$' -fuzztime=10s

# Seeded chaos campaigns: all fault kinds armed, plus the mid-session
# channel-kill scenario. Deterministic — a failure reproduces from the
# seed printed in the output.
chaos:
	$(GO) run ./cmd/overhaul-chaos -seed 42 -steps 250 -faults default
	$(GO) run ./cmd/overhaul-chaos -seed 42 -steps 160 -faults default -kill 80
	$(GO) run ./cmd/overhaul-chaos -seed 7 -steps 160 -faults default -kill 40 -reconnect 90

ci: fmt build vet lint race bench fuzz chaos
	$(GO) run ./cmd/overhaul-benchjson -check BENCH_overhaul.json
