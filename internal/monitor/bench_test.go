package monitor

// Telemetry-overhead benchmarks: the issue's acceptance criterion is
// that a nil recorder adds ZERO allocations to the Decide hot path.
// Run with `make bench`, which records ns/op and allocs/op for every
// benchmark into BENCH_overhaul.json at the repo root.

import (
	"sync/atomic"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/telemetry"
)

// fastBenchTasks is the benchmark task store: a FastTaskStore whose
// InteractionView is served from an atomic, exactly as the kernel's
// sharded process table serves it. Using it (rather than the mutexed
// fakeTasks) makes the benchmark measure the decision path the system
// actually runs — the slow interface fallback is covered by the
// monitor unit tests.
type fastBenchTasks struct {
	pid        int
	stampNanos atomic.Int64
}

func (f *fastBenchTasks) InteractionStamp(pid int) (time.Time, bool) {
	if pid != f.pid {
		return time.Time{}, false
	}
	return time.Unix(0, f.stampNanos.Load()).UTC(), true
}

func (f *fastBenchTasks) SetInteractionStamp(pid int, t time.Time) error {
	if pid != f.pid {
		return ErrNoSuchProcess
	}
	for {
		cur := f.stampNanos.Load()
		n := t.UnixNano()
		if n <= cur || f.stampNanos.CompareAndSwap(cur, n) {
			return nil
		}
	}
}

func (f *fastBenchTasks) PermissionsDisabled(pid int) bool { return false }

func (f *fastBenchTasks) InteractionView(pid int) (time.Time, telemetry.SpanContext, bool, bool) {
	if pid != f.pid {
		return time.Time{}, telemetry.SpanContext{}, false, false
	}
	return time.Unix(0, f.stampNanos.Load()).UTC(), telemetry.SpanContext{}, false, true
}

// benchMonitor builds a standalone enforcing monitor with one stamped
// process whose stamp stays inside δ, so every Decide grants.
func benchMonitor(b *testing.B, tel *telemetry.Recorder) (*Monitor, time.Time) {
	b.Helper()
	clk := clock.NewSimulated()
	tasks := &fastBenchTasks{pid: 7}
	tasks.stampNanos.Store(clk.Now().UnixNano())
	m, err := New(clk, tasks, Config{Enforce: true, Telemetry: tel})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return m, clk.Now().Add(time.Millisecond)
}

// benchWarmup cycles the lazily allocated bounded stores — the audit
// shard ring, the span ring and its free list, the flight ring — past
// their capacities so the timed loop measures the steady state rather
// than the one-time ring fill. Capacities are ~1k; 3000 covers them
// with margin.
const benchWarmup = 3000

func BenchmarkDecideTelemetryDisabled(b *testing.B) {
	m, opTime := benchMonitor(b, nil)
	for i := 0; i < benchWarmup; i++ {
		m.Decide(7, OpMic, opTime)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(7, OpMic, opTime)
	}
}

func BenchmarkDecideTelemetryEnabled(b *testing.B) {
	m, opTime := benchMonitor(b, telemetry.New(clock.NewSimulated()))
	for i := 0; i < benchWarmup; i++ {
		m.Decide(7, OpMic, opTime)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(7, OpMic, opTime)
	}
}

// TestDecideTelemetryEnabledZeroAlloc hard-asserts that the fully
// instrumented Decide path allocates NOTHING per op in steady state:
// counters, histograms, span attributes, the structured
// flight-recorder append, and the span itself (served from the span
// ring's free list once it has cycled) must all reuse pre-interned
// handles and fixed-size buffers. The warmup cycles the lazily
// allocated bounded stores past their capacities first, exactly like
// the benchmarks do.
func TestDecideTelemetryEnabledZeroAlloc(t *testing.T) {
	m, opTime := benchMonitorT(t, telemetry.New(clock.NewSimulated()))
	for i := 0; i < benchWarmup; i++ {
		m.Decide(7, OpMic, opTime)
	}
	if avg := testing.AllocsPerRun(200, func() {
		m.Decide(7, OpMic, opTime)
	}); avg != 0 {
		t.Errorf("Decide with telemetry allocates %.1f times per op, want 0", avg)
	}
}

// benchMonitorT is benchMonitor for tests.
func benchMonitorT(t *testing.T, tel *telemetry.Recorder) (*Monitor, time.Time) {
	t.Helper()
	clk := clock.NewSimulated()
	tasks := &fastBenchTasks{pid: 7}
	tasks.stampNanos.Store(clk.Now().UnixNano())
	m, err := New(clk, tasks, Config{Enforce: true, Telemetry: tel})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m, clk.Now().Add(time.Millisecond)
}

// TestDecideTelemetryDisabledZeroAlloc hard-asserts the benchmark's
// claim so a regression fails `go test`, not just a human reading
// BENCH_overhaul.json.
func TestDecideTelemetryDisabledZeroAlloc(t *testing.T) {
	clk := clock.NewSimulated()
	tasks := newFakeTasks()
	tasks.add(7)
	tasks.stamps[7] = clk.Now()
	m, err := New(clk, tasks, Config{Enforce: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opTime := clk.Now().Add(time.Millisecond)
	m.Decide(7, OpMic, opTime) // allocate the audit ring
	if avg := testing.AllocsPerRun(200, func() {
		m.Decide(7, OpMic, opTime)
	}); avg != 0 {
		t.Errorf("Decide with nil recorder allocates %.1f times per op, want 0", avg)
	}
}
