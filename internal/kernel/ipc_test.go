package kernel

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/devfs"
	"overhaul/internal/fs"
)

func TestShmGetSharesSegmentByKey(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "writer")
	b := e.spawnUser(t, "reader")
	e.interact(t, a)

	segA, err := e.k.ShmGet(0x1234, 2)
	if err != nil {
		t.Fatalf("ShmGet: %v", err)
	}
	segB, err := e.k.ShmGet(0x1234, 2)
	if err != nil {
		t.Fatalf("ShmGet: %v", err)
	}
	if segA != segB {
		t.Fatal("same key returned different segments")
	}
	// Stamp crosses the keyed segment between unrelated processes.
	wm := segA.Map(a.PID())
	rm := segB.Map(b.PID())
	if err := wm.Write(0, []byte("cmd")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := rm.Read(0, 3); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if b.InteractionStamp().IsZero() {
		t.Fatal("stamp did not propagate through keyed segment")
	}
}

func TestShmRemove(t *testing.T) {
	e := newEnv(t, enforcing())
	seg, err := e.k.ShmGet(7, 1)
	if err != nil {
		t.Fatalf("ShmGet: %v", err)
	}
	if err := e.k.ShmRemove(7); err != nil {
		t.Fatalf("ShmRemove: %v", err)
	}
	p := e.spawnUser(t, "p")
	if err := seg.Map(p.PID()).Write(0, []byte{1}); err == nil {
		t.Fatal("write to removed segment succeeded")
	}
	if err := e.k.ShmRemove(7); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("double remove = %v", err)
	}
	// The key is free again.
	if _, err := e.k.ShmGet(7, 1); err != nil {
		t.Fatalf("ShmGet after remove: %v", err)
	}
}

func TestMqOpenSharesQueueByName(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "producer")
	b := e.spawnUser(t, "consumer")
	e.interact(t, a)

	qa, err := e.k.MqOpen("/jobs", 0)
	if err != nil {
		t.Fatalf("MqOpen: %v", err)
	}
	qb, err := e.k.MqOpen("/jobs", 0)
	if err != nil {
		t.Fatalf("MqOpen: %v", err)
	}
	if qa != qb {
		t.Fatal("same name returned different queues")
	}
	if err := qa.Send(a.PID(), 1, []byte("job")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, _, err := qb.Recv(b.PID(), 0); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if b.InteractionStamp().IsZero() {
		t.Fatal("stamp did not propagate through named queue")
	}
}

func TestMqNameValidation(t *testing.T) {
	e := newEnv(t, enforcing())
	for _, bad := range []string{"", "jobs", "relative/name"} {
		if _, err := e.k.MqOpen(bad, 0); err == nil {
			t.Fatalf("MqOpen(%q) accepted", bad)
		}
	}
}

func TestMqUnlink(t *testing.T) {
	e := newEnv(t, enforcing())
	q, err := e.k.MqOpen("/gone", 0)
	if err != nil {
		t.Fatalf("MqOpen: %v", err)
	}
	if err := e.k.MqUnlink("/gone"); err != nil {
		t.Fatalf("MqUnlink: %v", err)
	}
	p := e.spawnUser(t, "p")
	if err := q.Send(p.PID(), 1, nil); err == nil {
		t.Fatal("send to unlinked queue succeeded")
	}
	if err := e.k.MqUnlink("/gone"); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("double unlink = %v", err)
	}
}

func TestSysVMsgQueueThroughKernel(t *testing.T) {
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	gui := e.spawnUser(t, "gui")
	worker := e.spawnUser(t, "worker")
	e.interact(t, gui)

	q := e.k.NewMsgQueue(2, 0) // SysV flavor
	if err := q.Send(gui.PID(), 42, []byte("record")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, _, err := q.Recv(worker.PID(), 42); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	e.clk.Advance(100 * time.Millisecond)
	if _, err := e.k.Open(worker, mic, fs.AccessRead); err != nil {
		t.Fatalf("worker open after SysV queue = %v, want grant", err)
	}
}

func TestSocketPairThroughKernel(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "a")
	b := e.spawnUser(t, "b")
	e.interact(t, a)
	sa, sb := e.k.NewSocketPair().Ends()
	if err := sa.Send(a.PID(), []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := sb.Recv(b.PID()); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if b.InteractionStamp().IsZero() {
		t.Fatal("stamp did not propagate through kernel socket pair")
	}
}
