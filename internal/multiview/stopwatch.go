package multiview

import "time"

// stopwatch is the one sanctioned wall-clock reader in the multiview
// harness. The overhead report measures real elapsed time — the whole
// point is what the probe layer costs on actual hardware — so it
// cannot run on the injectable clock.Clock like the rest of the
// repository. Every wall-clock read is confined to this file so
// clockcheck can keep the rest of the module deterministic.
type stopwatch struct {
	start time.Time
}

// startWall begins a wall-clock measurement.
func startWall() stopwatch {
	return stopwatch{start: time.Now()} //overhaul:allow clockcheck multiview measures real elapsed time
}

// lap returns the elapsed wall time and restarts the stopwatch.
func (s *stopwatch) lap() time.Duration {
	now := time.Now() //overhaul:allow clockcheck multiview measures real elapsed time
	d := now.Sub(s.start)
	s.start = now
	return d
}
