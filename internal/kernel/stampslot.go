package kernel

import (
	"sync/atomic"
	"time"

	"overhaul/internal/telemetry"
)

// StampSlot is one interaction-stamp cell: the Overhaul task_struct
// field (paper §IV-B) as a free-standing value. The stamp is unix
// nanoseconds in an atomic, written only through Adopt's CAS-max loop
// so it is monotonically non-decreasing; 0 is the "no interaction"
// sentinel (unambiguous because every clock in this tree reports
// instants at or after clock.Epoch, 2016). The span pointer travels
// with the stamp: the CAS winner stores it, so stamp and minting span
// stay a unit on the uncontended path. Under a CAS race the span may
// briefly describe a different write than the stamp; both are then
// authentic near-simultaneous interactions, and the skew only affects
// trace linkage, never the verdict.
//
// It is exported because the kernel's Process and a fleet Session
// (internal/fleet) must be the *same* stamp store semantics: fleet
// sessions keep a StampSlot per tracked pid instead of a full task
// struct, and the equivalence property in internal/fleet leans on the
// two paths sharing this one implementation.
type StampSlot struct {
	nanos atomic.Int64
	span  atomic.Pointer[telemetry.SpanContext]
}

// Adopt installs t (and the span that delivered it) iff t is newer than
// the current stamp — the newest-wins rule as a lock-free CAS-max. A
// zero t never installs.
func (s *StampSlot) Adopt(t time.Time, ctx telemetry.SpanContext) {
	n := stampNanos(t)
	if n == 0 {
		return
	}
	for {
		cur := s.nanos.Load()
		if n <= cur {
			return
		}
		if s.nanos.CompareAndSwap(cur, n) {
			if ctx == (telemetry.SpanContext{}) {
				s.span.Store(nil)
			} else {
				c := ctx
				s.span.Store(&c)
			}
			return
		}
	}
}

// Time returns the stamp (zero time when no interaction is recorded).
func (s *StampSlot) Time() time.Time {
	return stampTime(s.nanos.Load())
}

// Span returns the trace span that minted the current stamp (zero when
// unknown).
func (s *StampSlot) Span() telemetry.SpanContext {
	if c := s.span.Load(); c != nil {
		return *c
	}
	return telemetry.SpanContext{}
}

// Reset clears the slot back to "no interaction". Only for slot reuse
// while no concurrent adopter can reach the slot (process-table
// recycle, fleet session teardown); it is not a newest-wins write.
func (s *StampSlot) Reset() {
	s.nanos.Store(0)
	s.span.Store(nil)
}

// inherit copies src's stamp and span into s wholesale — fork-time P1
// inheritance onto a fresh child slot. Not newest-wins: the child has
// no prior stamp to defend.
func (s *StampSlot) inherit(src *StampSlot) {
	s.nanos.Store(src.nanos.Load())
	s.span.Store(src.span.Load())
}
