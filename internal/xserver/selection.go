package xserver

import (
	"fmt"
	"strconv"
	"time"

	"overhaul/internal/telemetry"
)

// query runs a permission query against the kernel monitor. Requires
// s.mu held. With no policy (vanilla server) everything is granted.
func (s *Server) query(pid int, op Op, now time.Time) bool {
	if s.policy == nil {
		return true
	}
	s.stats.Queries++
	// The query span roots its own trace: display-manager-mediated
	// operations begin at the request, and the kernel-side decide span
	// nests under this one via the context carried across the channel.
	span := s.tel.StartSpan(telemetry.SpanContext{}, "xserver", "query")
	defer span.End()
	if s.tel.Enabled() {
		span.Annotate("pid", strconv.Itoa(pid))
		span.Annotate("op", string(op))
		s.tel.Add("xserver", "queries", "op="+string(op), 1)
	}
	verdict, err := s.policy.Query(span.Context(), pid, op, now)
	if err != nil {
		// Fail closed, and flag the degraded episode: a channel that
		// cannot answer queries means nothing sensitive proceeds.
		if s.tel.Enabled() {
			span.Annotate("error", err.Error())
		}
		s.degradeLocked("kernel channel unreachable")
		return false
	}
	if s.tel.Enabled() {
		span.Annotate("verdict", verdict.String())
	}
	if s.degraded != "" {
		// The channel answered again: the episode is over.
		s.degraded = ""
	}
	return verdict == VerdictGrant
}

// SetSelection asserts ownership of a selection atom (step 2 of the
// Figure 6 protocol). Under Overhaul the server first confirms with the
// permission monitor that the request is preceded by user interaction
// (the copy keystroke); otherwise the client gets BadAccess.
func (c *Client) SetSelection(name string, win WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	if name == "" {
		return fmt.Errorf("set selection: empty atom: %w", ErrBadAtom)
	}
	s := c.srv
	s.wire()
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	w, err := s.lookupWindow(win)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("set selection %s: window %d: %w", name, win, ErrBadAccess)
	}
	if !s.query(c.pid, OpCopy, now) {
		return fmt.Errorf("set selection %s: %w", name, ErrBadAccess)
	}

	sel := s.selections[name]
	if sel == nil {
		sel = &selection{}
		s.selections[name] = sel
	}
	if sel.owner != nil && sel.owner != c {
		sel.owner.deliver(Event{
			Type:      SelectionClear,
			Window:    sel.ownerWindow,
			Time:      now,
			Selection: name,
		})
	}
	sel.owner = c
	sel.ownerWindow = win
	sel.pending = nil
	return nil
}

// GetSelectionOwner returns the window owning the selection (steps 3–4:
// the source confirms it acquired the selection). Root means unowned.
func (c *Client) GetSelectionOwner(name string) (WindowID, error) {
	if !c.alive() {
		return Root, ErrDisconnected
	}
	s := c.srv
	s.wire()
	s.mu.Lock()
	defer s.mu.Unlock()
	sel, ok := s.selections[name]
	if !ok || sel.owner == nil {
		return Root, nil
	}
	return sel.ownerWindow, nil
}

// ConvertSelection asks for the selection's contents to be delivered to
// property on the requestor window (step 6). Under Overhaul the server
// queries the monitor for paste permission first; on grant it relays a
// SelectionRequest event to the owner (step 7).
func (c *Client) ConvertSelection(name, target, property string, requestor WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	if name == "" || property == "" {
		return fmt.Errorf("convert selection: empty atom: %w", ErrBadAtom)
	}
	s := c.srv
	s.wire()
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	w, err := s.lookupWindow(requestor)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("convert selection %s: requestor %d: %w", name, requestor, ErrBadAccess)
	}
	if !s.query(c.pid, OpPaste, now) {
		return fmt.Errorf("convert selection %s: %w", name, ErrBadAccess)
	}

	sel, ok := s.selections[name]
	if !ok || sel.owner == nil {
		// Unowned selection: standard X answers with a SelectionNotify
		// carrying an empty property.
		c.deliver(Event{
			Type:      SelectionNotify,
			Window:    requestor,
			Time:      now,
			Selection: name,
			Target:    target,
			Property:  "",
		})
		return nil
	}
	if sel.pending != nil {
		return fmt.Errorf("convert selection %s: transfer in progress: %w", name, ErrBadMatch)
	}
	sel.pending = &pendingTransfer{
		requestor:       c,
		requestorWindow: requestor,
		property:        property,
		target:          target,
	}
	sel.owner.deliver(Event{
		Type:      SelectionRequest,
		Window:    sel.ownerWindow,
		Time:      now,
		Selection: name,
		Target:    target,
		Property:  property,
		Requestor: requestor,
	})
	return nil
}

// ChangeProperty stores data under a property on a window (step 8: the
// selection owner writes the copied data onto the requestor's window).
// PropertyNotify events fire for subscribers — except that, while the
// property carries in-flight clipboard data, Overhaul delivers them only
// to the paste target so eavesdroppers cannot race the transfer.
func (c *Client) ChangeProperty(win WindowID, property string, data []byte) error {
	if !c.alive() {
		return ErrDisconnected
	}
	if property == "" {
		return fmt.Errorf("change property: empty atom: %w", ErrBadAtom)
	}
	s := c.srv
	s.wire()
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	w, err := s.lookupWindow(win)
	if err != nil {
		return err
	}

	// Writing onto a foreign window is legitimate exactly when it
	// completes a pending transfer this client owns.
	inTransfer := s.pendingFor(c, w, property)
	if w.owner != c && !inTransfer {
		if s.policy != nil {
			return fmt.Errorf("change property %s on window %d: %w", property, win, ErrBadAccess)
		}
	}

	stored := make([]byte, len(data))
	copy(stored, data)
	w.props[property] = stored
	if inTransfer {
		w.inFlight[property] = true
	}

	ev := Event{
		Type:     PropertyNotify,
		Window:   win,
		Time:     now,
		Property: property,
	}
	for _, sub := range w.propSubscribers {
		if s.policy != nil && w.inFlight[property] && sub != w.owner {
			// In-flight clipboard data: only the paste target hears
			// about it.
			continue
		}
		sub.deliver(ev)
	}
	return nil
}

// pendingFor reports whether (w, property) is the destination of an
// in-progress transfer whose selection c owns. Requires s.mu held.
func (s *Server) pendingFor(c *Client, w *window, property string) bool {
	for _, sel := range s.selections {
		if sel.owner == c && sel.pending != nil &&
			sel.pending.requestorWindow == w.id && sel.pending.property == property {
			return true
		}
	}
	return false
}

// GetProperty reads a property (step 11–12: the paste target retrieves
// the data). Under Overhaul a property holding in-flight clipboard data
// is readable only by the paste target.
func (c *Client) GetProperty(win WindowID, property string) ([]byte, error) {
	if !c.alive() {
		return nil, ErrDisconnected
	}
	s := c.srv
	s.wire()
	s.mu.Lock()
	defer s.mu.Unlock()

	w, err := s.lookupWindow(win)
	if err != nil {
		return nil, err
	}
	if s.policy != nil && w.inFlight[property] && w.owner != c {
		return nil, fmt.Errorf("get property %s on window %d: clipboard in flight: %w",
			property, win, ErrBadAccess)
	}
	data, ok := w.props[property]
	if !ok {
		return nil, fmt.Errorf("get property %s on window %d: %w", property, win, ErrBadAtom)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// DeleteProperty removes a property (step 13). Deleting an in-flight
// clipboard property completes the transfer and clears the pending
// state.
func (c *Client) DeleteProperty(win WindowID, property string) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.wire()
	s.mu.Lock()
	defer s.mu.Unlock()

	w, err := s.lookupWindow(win)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("delete property %s on window %d: %w", property, win, ErrBadAccess)
	}
	if _, ok := w.props[property]; !ok {
		return fmt.Errorf("delete property %s on window %d: %w", property, win, ErrBadAtom)
	}
	delete(w.props, property)
	if w.inFlight[property] {
		delete(w.inFlight, property)
		for _, sel := range s.selections {
			if sel.pending != nil && sel.pending.requestorWindow == win &&
				sel.pending.property == property {
				sel.pending = nil
			}
		}
	}
	return nil
}

// SelectPropertyEvents subscribes the client to PropertyNotify events on
// the given window — any client may subscribe to any window, which is
// exactly the eavesdropping avenue the in-flight restriction closes.
func (c *Client) SelectPropertyEvents(win WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(win)
	if err != nil {
		return err
	}
	for _, sub := range w.propSubscribers {
		if sub == c {
			return nil
		}
	}
	w.propSubscribers = append(w.propSubscribers, c)
	return nil
}
