package prompt

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

func newManager(t *testing.T) (*Manager, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated()
	m, err := NewManager(clk, "tabby-cat", 0)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m, clk
}

func hardwareClick() xserver.Event {
	return xserver.Event{Type: xserver.ButtonPress, Provenance: xserver.FromHardware}
}

func TestAskAndAllow(t *testing.T) {
	m, _ := newManager(t)
	p, err := m.Ask(7, monitor.OpCam)
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if !m.Authentic(p) {
		t.Fatal("prompt lacks the shared secret")
	}
	if _, ok := m.Pending(); !ok {
		t.Fatal("no pending prompt")
	}
	ans, err := m.AnswerWith(hardwareClick(), true)
	if err != nil || ans != AnswerAllow {
		t.Fatalf("AnswerWith = %v, %v", ans, err)
	}
	if _, ok := m.Pending(); ok {
		t.Fatal("prompt still pending after answer")
	}
	h := m.History()
	if len(h) != 1 || h[0].Answer != AnswerAllow || h[0].Prompt.PID != 7 {
		t.Fatalf("history = %+v", h)
	}
}

func TestDenyAnswer(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Ask(7, monitor.OpMic); err != nil {
		t.Fatalf("Ask: %v", err)
	}
	ans, err := m.AnswerWith(hardwareClick(), false)
	if err != nil || ans != AnswerDeny {
		t.Fatalf("AnswerWith = %v, %v", ans, err)
	}
}

func TestSyntheticAnswersRejected(t *testing.T) {
	// The entire point: malware cannot answer its own prompt.
	m, _ := newManager(t)
	if _, err := m.Ask(666, monitor.OpCam); err != nil {
		t.Fatalf("Ask: %v", err)
	}
	for _, ev := range []xserver.Event{
		{Type: xserver.ButtonPress, Provenance: xserver.FromSendEvent, Synthetic: true},
		{Type: xserver.ButtonPress, Provenance: xserver.FromXTest},
	} {
		if _, err := m.AnswerWith(ev, true); !errors.Is(err, ErrSyntheticAnswer) {
			t.Fatalf("AnswerWith(%s) = %v, want ErrSyntheticAnswer", ev.Provenance, err)
		}
	}
	// The prompt survives the forged answers for the real user.
	if _, ok := m.Pending(); !ok {
		t.Fatal("forged answer consumed the prompt")
	}
	if _, err := m.AnswerWith(hardwareClick(), false); err != nil {
		t.Fatalf("real answer: %v", err)
	}
}

func TestModalOnePromptAtATime(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Ask(1, monitor.OpCam); err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if _, err := m.Ask(2, monitor.OpMic); !errors.Is(err, ErrPromptPending) {
		t.Fatalf("second Ask = %v, want ErrPromptPending", err)
	}
}

func TestExpiryDeniesByDefault(t *testing.T) {
	m, clk := newManager(t)
	if _, err := m.Ask(1, monitor.OpCam); err != nil {
		t.Fatalf("Ask: %v", err)
	}
	clk.Advance(DefaultTimeout + time.Second)
	ans, err := m.AnswerWith(hardwareClick(), true)
	if !errors.Is(err, ErrExpired) || ans != AnswerDeny {
		t.Fatalf("expired AnswerWith = %v, %v", ans, err)
	}
	// A new prompt can now be asked; expiry was recorded as a denial.
	if _, err := m.Ask(2, monitor.OpMic); err != nil {
		t.Fatalf("Ask after expiry: %v", err)
	}
	h := m.History()
	if len(h) != 1 || h[0].Answer != AnswerDeny {
		t.Fatalf("history = %+v", h)
	}
}

func TestExpiredPendingReplacedOnAsk(t *testing.T) {
	m, clk := newManager(t)
	if _, err := m.Ask(1, monitor.OpCam); err != nil {
		t.Fatalf("Ask: %v", err)
	}
	clk.Advance(time.Minute)
	if _, err := m.Ask(2, monitor.OpMic); err != nil {
		t.Fatalf("Ask after expiry = %v, want success", err)
	}
	p, ok := m.Pending()
	if !ok || p.PID != 2 {
		t.Fatalf("pending = %+v, %v", p, ok)
	}
}

func TestAnswerWithoutPrompt(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.AnswerWith(hardwareClick(), true); !errors.Is(err, ErrNoPendingPrompt) {
		t.Fatalf("AnswerWith = %v, want ErrNoPendingPrompt", err)
	}
}

func TestForgedPromptLacksSecret(t *testing.T) {
	m, _ := newManager(t)
	forged := Prompt{Message: "Allow application [pid 9] to perform \"cam\"?", Secret: "guess"}
	if m.Authentic(forged) {
		t.Fatal("forged prompt authenticated")
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, "s", 0); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestAnswerString(t *testing.T) {
	if AnswerAllow.String() != "allow" || AnswerDeny.String() != "deny" {
		t.Fatal("answer strings wrong")
	}
	if Answer(0).String() == "" {
		t.Fatal("unknown answer string empty")
	}
}
