// Package fs implements the in-memory filesystem used by the simulated
// kernel.
//
// Overhaul's device mediation lives on the open(2) syscall path: the
// kernel resolves a path, applies the normal UNIX permission checks,
// and — when the target is a privacy-sensitive device node — additionally
// consults the permission monitor. Reproducing that faithfully (and
// reproducing the Bonnie++ row of Table I, which stresses file creation
// through the modified open path) requires a real filesystem substrate
// with inodes, directories, UNIX permission bits, and device nodes. This
// package provides exactly that, with no Overhaul logic of its own; the
// kernel layers mediation on top.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"overhaul/internal/clock"
)

// NodeKind identifies what an inode represents.
type NodeKind int

// Node kinds. Enums start at one so the zero value is invalid.
const (
	KindRegular NodeKind = iota + 1
	KindDirectory
	KindDevice
	KindFIFO
)

// String returns a short human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindDirectory:
		return "directory"
	case KindDevice:
		return "device"
	case KindFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Mode holds UNIX permission bits (the low 9 bits: rwxrwxrwx).
type Mode uint16

// Permission bit masks for Mode.
const (
	PermOwnerRead  Mode = 0o400
	PermOwnerWrite Mode = 0o200
	PermOwnerExec  Mode = 0o100
	PermGroupRead  Mode = 0o040
	PermGroupWrite Mode = 0o020
	PermGroupExec  Mode = 0o010
	PermOtherRead  Mode = 0o004
	PermOtherWrite Mode = 0o002
	PermOtherExec  Mode = 0o001
)

// Cred identifies the subject performing a filesystem operation.
type Cred struct {
	UID int
	GID int
}

// Root is the superuser credential. UID 0 bypasses permission checks,
// exactly as in UNIX.
var Root = Cred{UID: 0, GID: 0}

// Access is the kind of access requested when opening a node.
type Access int

// Access modes.
const (
	AccessRead Access = iota + 1
	AccessWrite
	AccessReadWrite
)

// Sentinel errors returned by filesystem operations. Callers match them
// with errors.Is.
var (
	ErrNotExist     = errors.New("no such file or directory")
	ErrExist        = errors.New("file exists")
	ErrPermission   = errors.New("permission denied")
	ErrNotDirectory = errors.New("not a directory")
	ErrIsDirectory  = errors.New("is a directory")
	ErrInvalidPath  = errors.New("invalid path")
	ErrNotEmpty     = errors.New("directory not empty")
	ErrClosed       = errors.New("file handle closed")
	ErrReadOnly     = errors.New("handle not open for writing")
	ErrWriteOnly    = errors.New("handle not open for reading")
)

// Stat describes an inode. It is a value copy; mutating it does not
// affect the filesystem.
type Stat struct {
	Path    string
	Kind    NodeKind
	Mode    Mode
	Owner   Cred
	Size    int
	Ino     uint64
	Device  string // device class, only for KindDevice
	Created time.Time
	Mod     time.Time
}

// node is an inode plus directory linkage.
type node struct {
	kind     NodeKind
	mode     Mode
	owner    Cred
	ino      uint64
	device   string // device class for device nodes
	data     []byte
	children map[string]*node
	created  time.Time
	mod      time.Time
}

// FS is an in-memory hierarchical filesystem. It is safe for concurrent
// use. The zero value is not usable; construct with New.
type FS struct {
	clk clock.Clock

	mu      sync.RWMutex
	root    *node
	nextIno uint64
}

// New returns an empty filesystem whose root directory is owned by root
// with mode 0755. Timestamps come from clk.
func New(clk clock.Clock) *FS {
	if clk == nil {
		clk = clock.System{}
	}
	f := &FS{clk: clk, nextIno: 2} // ino 1 is the root, as on ext*
	now := clk.Now()
	f.root = &node{
		kind:     KindDirectory,
		mode:     0o755,
		owner:    Root,
		ino:      1,
		children: make(map[string]*node),
		created:  now,
		mod:      now,
	}
	return f
}

// splitPath normalises an absolute path into components. It rejects
// relative paths and empty components.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q", ErrInvalidPath, path)
	}
	trimmed := strings.Trim(path, "/")
	if trimmed == "" {
		return nil, nil // the root itself
	}
	parts := strings.Split(trimmed, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("%w: %q", ErrInvalidPath, path)
		}
	}
	return parts, nil
}

// checkPerm reports whether cred may perform the given access on n.
func checkPerm(n *node, cred Cred, access Access) bool {
	if cred.UID == 0 {
		return true
	}
	var read, write Mode
	switch {
	case cred.UID == n.owner.UID:
		read, write = PermOwnerRead, PermOwnerWrite
	case cred.GID == n.owner.GID:
		read, write = PermGroupRead, PermGroupWrite
	default:
		read, write = PermOtherRead, PermOtherWrite
	}
	switch access {
	case AccessRead:
		return n.mode&read != 0
	case AccessWrite:
		return n.mode&write != 0
	case AccessReadWrite:
		return n.mode&read != 0 && n.mode&write != 0
	default:
		return false
	}
}

// lookup walks the tree to the node at path. Requires f.mu held.
func (f *FS) lookup(path string) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := f.root
	for _, p := range parts {
		if cur.kind != KindDirectory {
			return nil, fmt.Errorf("%s: %w", path, ErrNotDirectory)
		}
		next, ok := cur.children[p]
		if !ok {
			return nil, fmt.Errorf("%s: %w", path, ErrNotExist)
		}
		cur = next
	}
	return cur, nil
}

// lookupParent resolves the parent directory of path and returns it with
// the final component name. Requires f.mu held.
func (f *FS) lookupParent(path string) (*node, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%w: %q refers to the root", ErrInvalidPath, path)
	}
	cur := f.root
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur.children[p]
		if !ok {
			return nil, "", fmt.Errorf("%s: %w", path, ErrNotExist)
		}
		if next.kind != KindDirectory {
			return nil, "", fmt.Errorf("%s: %w", path, ErrNotDirectory)
		}
		cur = next
	}
	return cur, parts[len(parts)-1], nil
}

// newNode allocates an inode. Requires f.mu held.
func (f *FS) newNode(kind NodeKind, mode Mode, owner Cred) *node {
	now := f.clk.Now()
	n := &node{
		kind:    kind,
		mode:    mode,
		owner:   owner,
		ino:     f.nextIno,
		created: now,
		mod:     now,
	}
	f.nextIno++
	if kind == KindDirectory {
		n.children = make(map[string]*node)
	}
	return n
}

// Mkdir creates a directory at path. The parent must exist and be
// writable by cred.
func (f *FS) Mkdir(path string, mode Mode, cred Cred) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	// POSIX reports EEXIST before EACCES, which MkdirAll relies on to
	// walk through existing root-owned path prefixes.
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("mkdir %s: %w", path, ErrExist)
	}
	if !checkPerm(parent, cred, AccessWrite) {
		return fmt.Errorf("mkdir %s: %w", path, ErrPermission)
	}
	parent.children[name] = f.newNode(KindDirectory, mode, cred)
	parent.mod = f.clk.Now()
	return nil
}

// MkdirAll creates a directory at path along with any missing parents.
// Existing directories along the way are accepted.
func (f *FS) MkdirAll(path string, mode Mode, cred Cred) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	prefix := ""
	for _, p := range parts {
		prefix += "/" + p
		err := f.Mkdir(prefix, mode, cred)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Mknod creates a device node at path, associated with the given device
// class (e.g. "microphone"). Only root may create device nodes.
func (f *FS) Mknod(path, deviceClass string, mode Mode, cred Cred) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	if cred.UID != 0 {
		return fmt.Errorf("mknod %s: %w", path, ErrPermission)
	}
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("mknod %s: %w", path, ErrExist)
	}
	n := f.newNode(KindDevice, mode, cred)
	n.device = deviceClass
	parent.children[name] = n
	parent.mod = f.clk.Now()
	return nil
}

// Mkfifo creates a FIFO node at path.
func (f *FS) Mkfifo(path string, mode Mode, cred Cred) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if !checkPerm(parent, cred, AccessWrite) {
		return fmt.Errorf("mkfifo %s: %w", path, ErrPermission)
	}
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("mkfifo %s: %w", path, ErrExist)
	}
	parent.children[name] = f.newNode(KindFIFO, mode, cred)
	parent.mod = f.clk.Now()
	return nil
}

// Create creates (or truncates) a regular file at path and returns a
// read-write handle. Creating requires write permission on the parent;
// truncating an existing file requires write permission on the file.
func (f *FS) Create(path string, mode Mode, cred Cred) (*Handle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	parent, name, err := f.lookupParent(path)
	if err != nil {
		return nil, err
	}
	existing, ok := parent.children[name]
	if ok {
		if existing.kind == KindDirectory {
			return nil, fmt.Errorf("create %s: %w", path, ErrIsDirectory)
		}
		if !checkPerm(existing, cred, AccessWrite) {
			return nil, fmt.Errorf("create %s: %w", path, ErrPermission)
		}
		existing.data = nil
		existing.mod = f.clk.Now()
		return &Handle{fs: f, node: existing, path: path, access: AccessReadWrite}, nil
	}
	if !checkPerm(parent, cred, AccessWrite) {
		return nil, fmt.Errorf("create %s: %w", path, ErrPermission)
	}
	n := f.newNode(KindRegular, mode, cred)
	parent.children[name] = n
	parent.mod = f.clk.Now()
	return &Handle{fs: f, node: n, path: path, access: AccessReadWrite}, nil
}

// Open opens the node at path with the requested access mode, applying
// UNIX permission checks for cred. Directories cannot be opened.
func (f *FS) Open(path string, access Access, cred Cred) (*Handle, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()

	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.kind == KindDirectory {
		return nil, fmt.Errorf("open %s: %w", path, ErrIsDirectory)
	}
	if !checkPerm(n, cred, access) {
		return nil, fmt.Errorf("open %s: %w", path, ErrPermission)
	}
	return &Handle{fs: f, node: n, path: path, access: access}, nil
}

// Stat returns metadata for the node at path. Stat performs no
// permission check, mirroring the fact that the paper's prototype does
// not interpose on stat (the Bonnie++ stat phase shows no overhead).
func (f *FS) Stat(path string) (Stat, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()

	n, err := f.lookup(path)
	if err != nil {
		return Stat{}, err
	}
	return Stat{
		Path:    path,
		Kind:    n.kind,
		Mode:    n.mode,
		Owner:   n.owner,
		Size:    len(n.data),
		Ino:     n.ino,
		Device:  n.device,
		Created: n.created,
		Mod:     n.mod,
	}, nil
}

// Unlink removes the file, device, or FIFO at path. Directories are
// removed only if empty.
func (f *FS) Unlink(path string, cred Cred) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("unlink %s: %w", path, ErrNotExist)
	}
	if !checkPerm(parent, cred, AccessWrite) {
		return fmt.Errorf("unlink %s: %w", path, ErrPermission)
	}
	if n.kind == KindDirectory && len(n.children) > 0 {
		return fmt.Errorf("unlink %s: %w", path, ErrNotEmpty)
	}
	delete(parent.children, name)
	parent.mod = f.clk.Now()
	return nil
}

// Chmod changes the permission bits of the node at path. Only the owner
// or root may do so.
func (f *FS) Chmod(path string, mode Mode, cred Cred) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if cred.UID != 0 && cred.UID != n.owner.UID {
		return fmt.Errorf("chmod %s: %w", path, ErrPermission)
	}
	n.mode = mode
	n.mod = f.clk.Now()
	return nil
}

// Chown changes the ownership of the node at path. Only root may do so.
func (f *FS) Chown(path string, owner Cred, cred Cred) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if cred.UID != 0 {
		return fmt.Errorf("chown %s: %w", path, ErrPermission)
	}
	n.owner = owner
	n.mod = f.clk.Now()
	return nil
}

// ReadDir lists the entry names in the directory at path, sorted.
func (f *FS) ReadDir(path string, cred Cred) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()

	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.kind != KindDirectory {
		return nil, fmt.Errorf("readdir %s: %w", path, ErrNotDirectory)
	}
	if !checkPerm(n, cred, AccessRead) {
		return nil, fmt.Errorf("readdir %s: %w", path, ErrPermission)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// WriteFile creates path with the given content, replacing any existing
// file, using Create semantics.
func (f *FS) WriteFile(path string, data []byte, mode Mode, cred Cred) error {
	h, err := f.Create(path, mode, cred)
	if err != nil {
		return err
	}
	if _, err := h.Write(data); err != nil {
		return err
	}
	return h.Close()
}

// ReadFile returns the full content of the file at path.
func (f *FS) ReadFile(path string, cred Cred) ([]byte, error) {
	h, err := f.Open(path, AccessRead, cred)
	if err != nil {
		return nil, err
	}
	defer func() { _ = h.Close() }()
	return h.ReadAll()
}
