package bench

import (
	"strings"
	"testing"
)

func TestTableIQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness in -short mode")
	}
	rows, err := TableI(Quick())
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	names := []string{"Device Access", "Clipboard", "Screen Capture", "Shared Memory", "Bonnie++ (create)"}
	for i, r := range rows {
		if r.Name != names[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Name, names[i])
		}
		if r.Baseline <= 0 || r.Overhaul <= 0 {
			t.Fatalf("row %q has non-positive durations: %+v", r.Name, r)
		}
		// At quick scale noise dominates; assert only that the
		// measured overhead stays within a loose sanity band that
		// would still catch a broken cost model (e.g. the pre-fix
		// 100 %+ shared-memory overhead).
		if pct := r.OverheadPct(); pct > 60 || pct < -40 {
			t.Fatalf("row %q overhead = %.1f%%, outside sanity band", r.Name, pct)
		}
	}
}

func TestPaperTableIShape(t *testing.T) {
	rows := PaperTableI()
	if len(rows) != 5 {
		t.Fatalf("paper rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverheadPct <= 0 || r.OverheadPct >= 3 {
			t.Fatalf("paper overhead out of published range: %+v", r)
		}
	}
	// Published ordering: Clipboard > Screen Capture > Device Access >
	// Shared Memory > Bonnie.
	if !(rows[1].OverheadPct > rows[2].OverheadPct &&
		rows[2].OverheadPct > rows[0].OverheadPct &&
		rows[0].OverheadPct > rows[3].OverheadPct &&
		rows[3].OverheadPct > rows[4].OverheadPct) {
		t.Fatalf("paper ordering wrong: %+v", rows)
	}
}

func TestCountsPresets(t *testing.T) {
	for _, c := range []Counts{Default(), Quick(), Paper()} {
		if c.DeviceOpens <= 0 || c.Pastes <= 0 || c.Captures <= 0 ||
			c.ShmWrites <= 0 || c.ShmPages <= 0 || c.Files <= 0 {
			t.Fatalf("preset has non-positive counts: %+v", c)
		}
	}
	if Paper().DeviceOpens != 10_000_000 {
		t.Fatalf("paper device opens = %d", Paper().DeviceOpens)
	}
}

func TestFormatIncludesPaperColumn(t *testing.T) {
	rows := []Row{{Name: "Device Access", Ops: 1, Baseline: 100, Overhaul: 102}}
	out := Format(rows)
	if !strings.Contains(out, "Paper overhead") || !strings.Contains(out, "2.17") {
		t.Fatalf("Format output missing paper column:\n%s", out)
	}
}

func TestOverheadPct(t *testing.T) {
	r := Row{Baseline: 100, Overhaul: 103}
	if pct := r.OverheadPct(); pct < 2.9 || pct > 3.1 {
		t.Fatalf("OverheadPct = %v", pct)
	}
	r.medianRatio = 1.01
	if pct := r.OverheadPct(); pct < 0.9 || pct > 1.1 {
		t.Fatalf("median-based OverheadPct = %v", pct)
	}
	if (Row{}).OverheadPct() != 0 {
		t.Fatal("zero row overhead should be 0")
	}
}
