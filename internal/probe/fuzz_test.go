package probe

import "testing"

// FuzzProbeSpec asserts the spec compiler is total (never panics) and
// that its canonical rendering is a fixed point: any spec that parses
// re-parses from its String() to the identical compiled form.
func FuzzProbeSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"op=open",
		"op=open,decide dev=mic verdict=deny",
		"hook=kernel.decide pid=1-99 session=5",
		"dev=none,copy,paste,scr,mic,cam,dev",
		"verdict=none,grant,deny",
		"pid=0-9223372036854775807",
		"session=18446744073709551615",
		"op= dev=??? pid=9-3",
		"hook=a hook=b",
		"  op=open\tdev=mic  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return // rejected inputs just must not panic
		}
		rendered := s.String()
		s2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) ok but reparse of %q failed: %v", text, rendered, err)
		}
		if s2 != s {
			t.Fatalf("round trip of %q via %q: %+v != %+v", text, rendered, s2, s)
		}
		if again := s2.String(); again != rendered {
			t.Fatalf("String not canonical for %q: %q then %q", text, rendered, again)
		}
	})
}
