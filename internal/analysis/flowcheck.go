package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Flowcheck statically proves the paper's core invariant — a grant
// verdict must rest on fresh hardware-input evidence (§III: "access is
// granted only if user input was observed within δ") — as two
// composable dataflow rules over the module-wide taint lattice
// (none < clock < stamp, facts.go):
//
// Rule A (grant gating): every site that *issues* VerdictGrant
// (assignment, return value, composite-literal value — not
// comparisons or switch cases, which merely inspect a verdict) must
// be governed by at least one freshness comparison (a comparison over
// time.Time/time.Duration operands, or a Before/After/Equal call)
// whose operands are stamp-tainted, i.e. derived from the
// interaction-stamp store. A grant whose governing freshness check
// compares untrusted values, or a grant issued with no freshness
// check at all inside a function that performs freshness checks
// elsewhere, is reported. Functions with no freshness comparison
// anywhere (constructors listing verdicts, tables of expected
// outcomes) are out of scope by construction.
//
// Rule B (mint integrity): every call site of the stamp store's write
// API (SetInteractionStamp, Notify, Adopt, …) must pass time
// arguments that are clock- or stamp-tainted. Arguments derived from
// the enclosing function's own parameters are exempt — the
// responsibility moves to the callers, whose own call sites are
// checked where the value is actually constructed. Together the two
// rules close the loop without a whole-program fixpoint: stamps can
// only be minted from the hardware clock (B), and grants can only be
// gated on values read back from the stamp store (A).
var Flowcheck = &Analyzer{
	Name:       "flowcheck",
	NeedsTypes: true,
	Doc: "grant verdicts must be gated on stamp-derived freshness comparisons, " +
		"and interaction stamps may only be minted from hardware-clock-derived time",
	Run: runFlowcheck,
}

// comparisonOps are the binary operators that compare.
var comparisonOps = map[token.Token]bool{
	token.LSS: true, token.GTR: true, token.LEQ: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

// timeCompareMethods compare two time.Time values.
var timeCompareMethods = map[string]bool{
	"Before": true, "After": true, "Equal": true,
}

func runFlowcheck(pass *Pass) {
	ti := pass.TypeInfo()
	facts := pass.Facts()
	if ti == nil || ti.Info == nil || facts == nil {
		return
	}
	info := ti.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGrantGating(pass, info, facts, fn)
			checkMintSites(pass, info, facts, fn)
		}
	}
}

// isFreshnessComparison reports whether n is a freshness comparison
// node: a comparison over time-typed operands, or a
// Before/After/Equal method call on a time.Time receiver.
func isFreshnessComparison(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		if !comparisonOps[n.Op] {
			return false
		}
		return exprIsTimeTyped(info, n.X) || exprIsTimeTyped(info, n.Y)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !ok || !timeCompareMethods[sel.Sel.Name] {
			return false
		}
		return exprIsTimeTyped(info, sel.X)
	}
	return false
}

func exprIsTimeTyped(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isTimeType(tv.Type)
}

// freshnessIn collects the freshness-comparison nodes inside expr.
func freshnessIn(info *types.Info, expr ast.Expr) []ast.Node {
	var out []ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if n != nil && isFreshnessComparison(info, n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// comparisonStampTainted reports whether any operand of the
// comparison carries stamp taint.
func comparisonStampTainted(info *types.Info, facts *ModuleFacts, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		return facts.ExprTaint(info, n.X) >= TaintStamp || facts.ExprTaint(info, n.Y) >= TaintStamp
	case *ast.CallExpr:
		if facts.ExprTaint(info, n) >= TaintStamp {
			return true
		}
	}
	return false
}

// grantSite is one issuance of VerdictGrant with its ancestor path.
type grantSite struct {
	node  ast.Node
	stack []ast.Node
}

// checkGrantGating implements rule A for one function.
func checkGrantGating(pass *Pass, info *types.Info, facts *ModuleFacts, fn *ast.FuncDecl) {
	// Does the function perform freshness checks at all?
	var allComparisons []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n != nil && isFreshnessComparison(info, n) {
			allComparisons = append(allComparisons, n)
		}
		return true
	})
	if len(allComparisons) == 0 {
		return
	}

	sites := collectGrantSites(info, fn.Body)
	for _, site := range sites {
		conds := governingConds(site.stack)
		var fresh []ast.Node
		for _, cond := range conds {
			fresh = append(fresh, freshnessIn(info, cond)...)
		}
		if len(fresh) == 0 {
			pass.Reportf(site.node.Pos(),
				"VerdictGrant issued without a governing freshness comparison, in a function that checks freshness elsewhere")
			continue
		}
		tainted := false
		for _, cmp := range fresh {
			if comparisonStampTainted(info, facts, cmp) {
				tainted = true
				break
			}
		}
		if !tainted {
			pass.Reportf(site.node.Pos(),
				"VerdictGrant is gated on a freshness comparison whose operands are not derived from the interaction-stamp store")
		}
	}
}

// collectGrantSites finds issuance sites of VerdictGrant: uses of the
// constant as an assigned/returned/composed *value*. Comparisons,
// switch-case expressions, and const/var alias declarations inspect a
// verdict rather than issue one and are skipped.
func collectGrantSites(info *types.Info, body *ast.BlockStmt) []grantSite {
	var sites []grantSite
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "VerdictGrant" {
			if c, isConst := info.Uses[id].(*types.Const); isConst && c != nil {
				node := ast.Node(id)
				path := stack
				// pkg.VerdictGrant: hoist to the selector.
				if len(path) > 0 {
					if sel, isSel := path[len(path)-1].(*ast.SelectorExpr); isSel && sel.Sel == id {
						node = sel
						path = path[:len(path)-1]
					}
				}
				if isIssuanceContext(info, path, node) {
					sites = append(sites, grantSite{node: node, stack: append([]ast.Node(nil), path...)})
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return sites
}

// isIssuanceContext decides whether the grant constant at node,
// reached through path, is being issued (true) or merely inspected
// (false). Issuance means the verdict becomes the value of something:
// an assignment, a return, or a struct-literal field. Comparisons,
// switch cases, const/var alias declarations, call arguments, and
// slice/array/map literal elements (enumerations of the verdict
// domain, e.g. telemetry label tables) inspect rather than issue.
func isIssuanceContext(info *types.Info, path []ast.Node, node ast.Node) bool {
	if len(path) == 0 {
		return false
	}
	parent := path[len(path)-1]
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == node {
				return true
			}
		}
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.KeyValueExpr:
		if p.Value != node {
			return false
		}
		// A keyed element: issuance when the enclosing literal is a
		// struct (Decision{Verdict: VerdictGrant}); enumeration when
		// it is a map/slice literal.
		if len(path) >= 2 {
			if lit, ok := path[len(path)-2].(*ast.CompositeLit); ok {
				return compositeIsStruct(info, lit)
			}
		}
		return true
	case *ast.CompositeLit:
		return compositeIsStruct(info, p)
	case *ast.BinaryExpr, *ast.CaseClause, *ast.ValueSpec, *ast.CallExpr, *ast.SwitchStmt:
		return false
	case *ast.ParenExpr:
		return isIssuanceContext(info, path[:len(path)-1], parent)
	}
	return false
}

// compositeIsStruct reports whether the literal builds a struct value.
func compositeIsStruct(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return true // unresolvable: err toward reporting
	}
	_, isStruct := tv.Type.Underlying().(*types.Struct)
	return isStruct
}

// governingConds returns the conditions that dominate a site: the
// Cond of every enclosing if, and the case expressions of enclosing
// tagless switches.
func governingConds(stack []ast.Node) []ast.Expr {
	var conds []ast.Expr
	for i, n := range stack {
		switch s := n.(type) {
		case *ast.IfStmt:
			conds = append(conds, s.Cond)
		case *ast.CaseClause:
			// Tagless switch: each case expression is a boolean guard.
			// A tagged switch compares against the tag, which is not a
			// freshness condition.
			if i > 0 {
				if sw, ok := enclosingSwitch(stack[:i]); ok && sw.Tag == nil {
					conds = append(conds, s.List...)
				}
			}
		}
	}
	return conds
}

func enclosingSwitch(stack []ast.Node) (*ast.SwitchStmt, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if sw, ok := stack[i].(*ast.SwitchStmt); ok {
			return sw, true
		}
	}
	return nil, false
}

// checkMintSites implements rule B for one function: time arguments
// at stamp-store write calls must carry clock (or stamp) taint, or
// derive from the enclosing function's parameters.
func checkMintSites(pass *Pass, info *types.Info, facts *ModuleFacts, fn *ast.FuncDecl) {
	params := paramObjects(info, fn)
	var litStack []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			// Closure parameters count as parameters too.
			litStack = append(litStack, lit)
			addParamObjects(info, lit.Type, params)
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _, resolved := calleeObject(info, call)
		if !resolved || !stampSetterNames[callee.Name()] {
			return true
		}
		for _, arg := range call.Args {
			tv, found := info.Types[arg]
			if !found || !isTimeType(tv.Type) {
				continue
			}
			if facts.ExprTaint(info, arg) >= TaintClock {
				continue
			}
			if derivesFromParams(info, arg, params) {
				continue
			}
			pass.Reportf(arg.Pos(),
				"interaction stamp minted via %s from a value not derived from the hardware clock or an enclosing parameter",
				callee.Name())
		}
		return true
	})
}

// paramObjects collects the parameter (and receiver) objects of fn.
func paramObjects(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	addParamObjects(info, fn.Type, out)
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func addParamObjects(info *types.Info, ft *ast.FuncType, out map[types.Object]bool) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
}

// derivesFromParams reports whether expr references any of the given
// parameter objects.
func derivesFromParams(info *types.Info, expr ast.Expr, params map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && params[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
