package study

import (
	"testing"
)

func TestRunMatchesPaperShape(t *testing.T) {
	got, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Participants != DefaultParticipants {
		t.Fatalf("participants = %d", got.Participants)
	}
	// Task 1: Overhaul is transparent, so every participant rates 1.
	if len(got.LikertScores) != DefaultParticipants {
		t.Fatalf("scores = %d", len(got.LikertScores))
	}
	for i, s := range got.LikertScores {
		if s != 1 {
			t.Fatalf("participant %d Likert = %d, want 1 (transparent)", i+1, s)
		}
	}
	// Task 2: counts must sum, and the *shape* must match the paper —
	// a majority interrupt, a substantial minority notice later, and
	// only a small group misses the alert.
	if got.Interrupted+got.Noticed+got.Missed != DefaultParticipants {
		t.Fatalf("outcome counts do not sum: %+v", got)
	}
	if got.Interrupted <= got.Noticed || got.Noticed <= got.Missed {
		t.Fatalf("outcome ordering broken: %+v (paper: 24 > 16 > 6)", got)
	}
	noticedAny := got.Interrupted + got.Noticed
	if noticedAny < DefaultParticipants*3/4 {
		t.Fatalf("only %d/%d noticed the alert; paper: 40/46", noticedAny, DefaultParticipants)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(Config{Seed: 7, Participants: 10})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(Config{Seed: 7, Participants: 10})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Interrupted != b.Interrupted || a.Noticed != b.Noticed || a.Missed != b.Missed {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestPaperResultInvariants(t *testing.T) {
	p := PaperResult()
	if p.Interrupted+p.Noticed+p.Missed != p.Participants {
		t.Fatalf("paper counts do not sum: %+v", p)
	}
	if p.Interrupted != 24 || p.Noticed != 16 || p.Missed != 6 {
		t.Fatalf("paper counts wrong: %+v", p)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeInterrupted, OutcomeNoticed, OutcomeMissed, Outcome(9)} {
		if o.String() == "" {
			t.Fatalf("empty string for %d", o)
		}
	}
}
