// Package tracer is a spancheck fixture: spans minted with StartSpan
// must be ended on every return path.
package tracer

// Recorder mimics the telemetry recorder's span-minting surface.
type Recorder struct{}

// Span mimics a telemetry span.
type Span struct{}

// StartSpan mints a span.
func (r *Recorder) StartSpan(subsystem, name string) *Span { return &Span{} }

// End closes a span.
func (s *Span) End() {}

func work() {}

// Deferred is the repository convention: assignment immediately
// followed by defer span.End().
func Deferred(r *Recorder) {
	span := r.StartSpan("fix", "deferred")
	defer span.End()
	work()
}

// Sequential ends the span explicitly before falling off the end.
func Sequential(r *Recorder) {
	span := r.StartSpan("fix", "sequential")
	work()
	span.End()
}

// EndBeforeEveryReturn ends on the early path and the fall-through.
func EndBeforeEveryReturn(r *Recorder, cond bool) int {
	span := r.StartSpan("fix", "branches")
	if cond {
		span.End()
		return 1
	}
	span.End()
	return 0
}

// AssignForm mints through a plain assignment inside a branch, with
// the defer in the same block — the kernel.Open shape.
func AssignForm(r *Recorder, sensitive bool) {
	var span *Span
	if sensitive {
		span = r.StartSpan("fix", "assign")
		defer span.End()
	}
	_ = span
	work()
}

// Dropped discards the span outright.
func Dropped(r *Recorder) {
	r.StartSpan("fix", "dropped") // want "result of StartSpan is dropped"
}

// Blank assigns the span to blank, which can never be ended.
func Blank(r *Recorder) {
	_ = r.StartSpan("fix", "blank") // want "assigned to blank"
}

// NeverEnded starts a span and forgets it.
func NeverEnded(r *Recorder) {
	span := r.StartSpan("fix", "leak") // want "span span is never ended"
	_ = span
	work()
}

// EarlyReturn leaks the span on the error path.
func EarlyReturn(r *Recorder, cond bool) int {
	span := r.StartSpan("fix", "early")
	if cond {
		return 1 // want "may not be ended on this return path"
	}
	span.End()
	return 0
}

// DeferTooLate installs the defer after a return has already escaped.
func DeferTooLate(r *Recorder, cond bool) int {
	span := r.StartSpan("fix", "late")
	if cond {
		return 1 // want "may not be ended on this return path"
	}
	defer span.End()
	return 0
}

// InsideLiteral checks that function literals are scanned too.
func InsideLiteral(r *Recorder) func() {
	return func() {
		span := r.StartSpan("fix", "lit") // want "span span is never ended"
		_ = span
	}
}

// Suppressed demonstrates the allow annotation.
func Suppressed(r *Recorder) {
	span := r.StartSpan("fix", "allowed") //overhaul:allow spancheck fixture demonstrates suppression
	_ = span
}
