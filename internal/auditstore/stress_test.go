package auditstore_test

import (
	"fmt"
	"sync"
	"testing"

	"overhaul/internal/auditstore"
)

// TestConcurrentAppendScan hammers one store with concurrent writers
// and readers — the shape `make race` exists for. Writers interleave
// arbitrarily but the store must still assign a contiguous sequence,
// keep every acked record, and answer scans consistently throughout.
func TestConcurrentAppendScan(t *testing.T) {
	for _, backend := range []string{"mem", "jsonl"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			var st auditstore.Store
			if backend == "mem" {
				st = auditstore.NewMemStore()
			} else {
				fs, err := auditstore.Open(t.TempDir(), auditstore.Options{SegmentRecords: 64, CompactSealed: 3})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				st = fs
			}
			defer st.Close() //overhaul:allow errdrop test cleanup

			const writers, perWriter = 4, 100
			errs := make(chan error, writers+2)
			var writerWG, readerWG sync.WaitGroup
			done := make(chan struct{})

			for w := 0; w < writers; w++ {
				w := w
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					for i := 0; i < perWriter; i++ {
						r := mkRecord(i)
						r.PID = 1000 + w
						r.Reason = fmt.Sprintf("writer %d record %d", w, i)
						if _, err := st.Append(r); err != nil {
							errs <- fmt.Errorf("writer %d append %d: %w", w, i, err)
							return
						}
					}
				}()
			}
			for rdr := 0; rdr < 2; rdr++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						// A scan mid-write must still see a gap-free
						// sequence prefix.
						prev := uint64(0)
						err := st.Scan(auditstore.Query{}, func(r auditstore.Record) bool {
							if r.Seq != prev+1 {
								errs <- fmt.Errorf("scan gap: %d after %d", r.Seq, prev)
								return false
							}
							prev = r.Seq
							return true
						})
						if err != nil {
							errs <- fmt.Errorf("concurrent scan: %w", err)
							return
						}
					}
				}()
			}

			writerWG.Wait()
			close(done)
			readerWG.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("concurrent failure: %v", err)
			}

			n, err := st.Count()
			if err != nil || n != writers*perWriter {
				t.Fatalf("count = %d err=%v, want %d", n, err, writers*perWriter)
			}
			// Every writer's every record is present exactly once.
			seen := make(map[string]bool, n)
			if err := st.Scan(auditstore.Query{}, func(r auditstore.Record) bool {
				if seen[r.Reason] {
					t.Errorf("duplicate record %q", r.Reason)
				}
				seen[r.Reason] = true
				return true
			}); err != nil {
				t.Fatalf("final scan: %v", err)
			}
			if len(seen) != writers*perWriter {
				t.Fatalf("distinct records = %d, want %d", len(seen), writers*perWriter)
			}
		})
	}
}
