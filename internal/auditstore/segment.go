package auditstore

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Segment line format. Each record is one line:
//
//	<8 hex chars: payload length><8 hex chars: CRC-32 (IEEE) of payload><payload JSON>\n
//
// The fixed-width hex header makes framing self-describing without
// being binary (segments stay greppable JSONL), the length field makes
// a torn tail detectable before the JSON parser runs, and the CRC
// catches bit rot and half-written payloads whose length happens to
// line up. Decoding stops at the first frame that fails any check —
// the CRC-verified prefix recovery replays to.
const (
	// headerLen is the fixed frame header size: 8 hex digits of payload
	// length plus 8 hex digits of CRC-32.
	headerLen = 16
	// MaxPayload bounds one record's JSON payload. A length field above
	// it is treated as corruption, not an allocation request.
	MaxPayload = 1 << 20
)

// EncodeRecord renders one record as a framed segment line.
func EncodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("auditstore: encode seq %d: %w", r.Seq, err)
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("auditstore: encode seq %d: payload %d bytes exceeds %d", r.Seq, len(payload), MaxPayload)
	}
	line := make([]byte, 0, headerLen+len(payload)+1)
	var hdr [headerLen]byte
	writeHex32(hdr[0:8], uint32(len(payload)))
	writeHex32(hdr[8:16], crc32.ChecksumIEEE(payload))
	line = append(line, hdr[:]...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// writeHex32 renders v as exactly 8 lowercase hex digits into dst.
func writeHex32(dst []byte, v uint32) {
	const digits = "0123456789abcdef"
	for i := 7; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// Truncation describes where and why a segment decode stopped before
// the end of its input: the exact truncation point recovery reports.
type Truncation struct {
	// Offset is the byte offset of the first undecodable frame.
	Offset int
	// Reason says what failed there.
	Reason string
}

// DecodeSegment decodes framed records from data until the input is
// exhausted or a frame fails a check. It returns the decoded records,
// the number of bytes consumed by them, and — when the input did not
// decode cleanly to its end — the truncation point. It never panics on
// arbitrary input (FuzzSegmentDecode pins this).
func DecodeSegment(data []byte) ([]Record, int, *Truncation) {
	var recs []Record
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < headerLen {
			return recs, off, &Truncation{Offset: off, Reason: "torn frame header"}
		}
		var hdr [8]byte
		if _, err := hex.Decode(hdr[0:4], rest[0:8]); err != nil {
			return recs, off, &Truncation{Offset: off, Reason: "malformed length field"}
		}
		if _, err := hex.Decode(hdr[4:8], rest[8:16]); err != nil {
			return recs, off, &Truncation{Offset: off, Reason: "malformed crc field"}
		}
		plen := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
		crc := uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7])
		if plen == 0 || plen > MaxPayload {
			return recs, off, &Truncation{Offset: off, Reason: fmt.Sprintf("implausible payload length %d", plen)}
		}
		if len(rest) < headerLen+plen+1 {
			return recs, off, &Truncation{Offset: off, Reason: "torn payload"}
		}
		payload := rest[headerLen : headerLen+plen]
		if rest[headerLen+plen] != '\n' {
			return recs, off, &Truncation{Offset: off, Reason: "missing record terminator"}
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, &Truncation{Offset: off, Reason: "crc mismatch"}
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, off, &Truncation{Offset: off, Reason: "malformed record json"}
		}
		recs = append(recs, r)
		off += headerLen + plen + 1
	}
	return recs, off, nil
}
