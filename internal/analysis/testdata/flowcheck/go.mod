module flowfix

go 1.22
