package core

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/devfs"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

// TestNetlinkFailureFailsClosed severs the kernel↔X channel and checks
// that every mediated path denies: a broken trusted input path must
// never widen access.
func TestNetlinkFailureFailsClosed(t *testing.T) {
	sys, mic, _ := bootDefault(t)
	app := launchSettled(t, sys, "app")

	if err := sys.DisconnectX(); err != nil {
		t.Fatalf("DisconnectX: %v", err)
	}

	// Clicks still deliver events but notifications fail: no stamp.
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	if _, err := app.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("device open with dead channel = %v, want deny", err)
	}
	// Clipboard queries fail closed too.
	if err := app.Client.SetSelection("CLIPBOARD", app.Win); !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("SetSelection with dead channel = %v, want ErrBadAccess", err)
	}
	// Screen capture likewise.
	other := launchSettled(t, sys, "other")
	if err := other.Client.Draw(other.Win, []byte("x")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	if _, err := app.Client.GetImage(xserver.Root); !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("capture with dead channel = %v, want ErrBadAccess", err)
	}
}

// TestAlertDeliveryFailureDoesNotBlockOperation: if the alert cannot be
// shown (X connection gone after the decision), the granted operation
// still proceeds — alerts are notifications, not gates.
func TestAlertDeliveryFailureDoesNotBlock(t *testing.T) {
	sys, mic, _ := bootDefault(t)
	app := launchSettled(t, sys, "app")
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	// The stamp is recorded; now kill the channel. The device open is
	// kernel-internal and must still be granted even though V_{A,op}
	// cannot be delivered.
	if err := sys.DisconnectX(); err != nil {
		t.Fatalf("DisconnectX: %v", err)
	}
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("open after channel loss = %v, want grant (stamp already in kernel)", err)
	}
	if n := len(sys.X.ActiveAlerts()); n != 0 {
		t.Fatalf("alerts = %d, want 0 (channel dead)", n)
	}
}

func TestAlertExpiryAndHistory(t *testing.T) {
	sys, mic, _ := bootDefault(t)
	app := launchSettled(t, sys, "app")
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	if len(sys.ActiveAlerts()) != 1 {
		t.Fatal("alert not active")
	}
	sys.Settle(xserver.DefaultAlertDuration + time.Second)
	if len(sys.ActiveAlerts()) != 0 {
		t.Fatal("alert did not expire")
	}
	if len(sys.X.AlertHistory()) != 1 {
		t.Fatal("history lost the alert")
	}
}

func TestAlertCoalescing(t *testing.T) {
	// Repeated grants by the same process for the same op extend one
	// overlay notification instead of stacking dozens.
	sys, mic, _ := bootDefault(t)
	app := launchSettled(t, sys, "app")
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	for i := 0; i < 10; i++ {
		sys.Settle(100 * time.Millisecond)
		if _, err := app.OpenDevice(mic); err != nil {
			// Stamp may expire mid-loop; refresh it.
			if err := app.Click(); err != nil {
				t.Fatalf("Click: %v", err)
			}
			sys.Settle(50 * time.Millisecond)
			if _, err := app.OpenDevice(mic); err != nil {
				t.Fatalf("OpenDevice: %v", err)
			}
		}
	}
	if got := len(sys.X.AlertHistory()); got != 1 {
		t.Fatalf("alert history = %d entries, want 1 coalesced", got)
	}
}

func TestMultipleDeviceClasses(t *testing.T) {
	sys, err := Boot(Options{Enforce: true, AlertSecret: "a"})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	paths := make(map[devfs.Class]string)
	for _, class := range devfs.SensitiveClasses() {
		p, err := sys.AttachDevice(class)
		if err != nil {
			t.Fatalf("Attach(%s): %v", class, err)
		}
		paths[class] = p
	}
	app := launchSettled(t, sys, "sensorhub")
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	for class, p := range paths {
		if _, err := app.OpenDevice(p); err != nil {
			t.Fatalf("open %s (%s): %v", p, class, err)
		}
	}
	// All four grants audited.
	grants := 0
	for _, d := range sys.Audit() {
		if d.Verdict == monitor.VerdictGrant {
			grants++
		}
	}
	if grants != 4 {
		t.Fatalf("grants = %d, want 4", grants)
	}
}
