// CLI-capture: the §IV-B command-line scenario — the user types
// `arecord` into a terminal emulator; the keystrokes are hardware input
// to xterm, the command line travels to bash over a pseudo-terminal
// (stamp propagation P2), bash forks and execs the tool (P1), and the
// tool's microphone open is granted. An idle shell, by contrast, has no
// interaction and stays locked out.
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
	"overhaul/internal/apps"
	"overhaul/internal/fs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cli-capture:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, mic, _, err := overhaul.NewProtected("tabby-cat")
	if err != nil {
		return err
	}

	term, err := apps.NewTerminal(sys, "xterm")
	if err != nil {
		return err
	}
	sys.Settle(2 * time.Second)

	// The idle shell has received no interaction: locked out.
	if _, err := sys.Kernel.Open(term.Shell(), mic, fs.AccessRead); err != nil {
		fmt.Println("idle shell :", err)
	}

	// The user types the command; stamps ride the pty and the fork.
	tool, err := term.RunCommand("arecord interview.wav")
	if err != nil {
		return err
	}
	fmt.Printf("launched   : %s (pid %d), stamp inherited via pty + fork\n",
		tool.Name(), tool.PID())

	h, err := sys.Kernel.Open(tool, mic, fs.AccessRead)
	if err != nil {
		return fmt.Errorf("CLI tool should record: %w", err)
	}
	fmt.Println("arecord    : microphone opened:", h.Path())
	for _, a := range sys.ActiveAlerts() {
		fmt.Printf("alert      : %q\n", a.Message)
	}
	return nil
}
