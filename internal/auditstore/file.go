package auditstore

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
)

// Segment files are named seg-<8 hex file id>.seg (binary format v2)
// or seg-<8 hex file id>.jsonl (the v1 JSONL format, still read and
// recovered transparently; new segments are always v2). The id is a
// monotonically increasing file counter, *not* a sequence number:
// compaction writes merged records into a fresh, higher id so its
// output can never collide with a source file, and recovery orders
// overlapping segments by (first sequence, id). Compaction staging
// uses a ".tmp" suffix; a leftover tmp file is a crashed compaction
// and is discarded on open. Compaction and normalization rewrite
// their v1 inputs as v2, so a mixed directory converges to v2.
const (
	segPrefix   = "seg-"
	segSuffix   = ".jsonl"
	segSuffixV2 = ".seg"
	tmpSuffix   = ".tmp"
)

// Options parameterises a FileStore.
type Options struct {
	// SegmentRecords rotates the active segment after this many
	// records. Zero selects DefaultSegmentRecords.
	SegmentRecords int
	// CompactSealed compacts the sealed segments into one once their
	// count reaches this threshold. Zero selects DefaultCompactSealed;
	// negative disables automatic compaction.
	CompactSealed int
	// BatchRecords caps how many queued appends one group commit may
	// drain into a single segment write. Zero selects
	// DefaultBatchRecords.
	BatchRecords int
	// BatchBytes caps the encoded size of one group-commit batch.
	// Zero selects DefaultBatchBytes.
	BatchBytes int
	// FlushInterval makes the commit leader linger up to this long on
	// the store clock before cutting a short batch, trading ack
	// latency for batch size under concurrent load. Zero commits as
	// soon as the queue is drained into a batch. The linger busy-yields
	// on the virtual clock, so simulated-clock tests must advance the
	// clock from another goroutine.
	FlushInterval time.Duration
	// Clock is the time source for FlushInterval. Nil selects the
	// system clock.
	Clock clock.Clock
	// Hook is the fault-injection hook consulted at every write seam
	// (append, batch commit, rotation, compaction). Nil never injects.
	// Recovery (Open) runs fault-free by construction: reopening is the
	// repair path, and a repair path that can be re-broken mid-repair
	// would turn every injected crash into an unbounded crash loop.
	Hook faultinject.Hook
	// Sync fsyncs segment data at rotation, compaction, and Close.
	Sync bool
}

// Defaults for Options.
const (
	DefaultSegmentRecords = 256
	DefaultCompactSealed  = 8
	DefaultBatchRecords   = 256
	DefaultBatchBytes     = 1 << 20
)

// Recovery reports what Open found and did. A store that came back
// with anything other than a clean, contiguous, CRC-verified stream
// says so here — never a silent gap.
type Recovery struct {
	// Segments is the number of segment files scanned; SegmentsV1 of
	// them were v1 JSONL, SegmentsV2 binary v2.
	Segments   int
	SegmentsV1 int
	SegmentsV2 int
	// Records is the size of the recovered consistent prefix.
	Records int
	// LastSeq is the last sequence number in the recovered prefix.
	LastSeq uint64
	// Clean reports a perfectly ordinary open: contiguous stream, no
	// torn bytes, no leftovers.
	Clean bool
	// Truncated reports that data present in the directory was
	// discarded to reach a consistent prefix.
	Truncated bool
	// TruncatedFile and TruncatedOffset locate the first discarded
	// byte when Truncated.
	TruncatedFile   string
	TruncatedOffset int
	// Reason says why the prefix ends where it does ("" when clean).
	Reason string
	// DroppedRecords counts decodable records discarded (beyond a
	// sequence gap); DroppedBytes counts undecodable tail bytes.
	DroppedRecords int
	DroppedBytes   int
	// RemovedFiles lists tmp leftovers and damaged or duplicate
	// segments that normalization rewrote away.
	RemovedFiles []string
}

// segmentInfo is one on-disk segment's bookkeeping.
type segmentInfo struct {
	id   uint64
	path string
	recs int
}

// FileStore is the durable backend: an append-only binary segment log
// with a MemStore in front of it as the query index. Concurrent
// appends are group-committed: callers enqueue under the store mutex,
// the first-comer becomes the commit leader and drains the queue into
// one framed segment write per batch, and an append is acknowledged
// only when its batch is durable. Writes go to the segment first and
// the index second, so the index only ever reflects durable records.
// After a torn write or an injected crash every operation fails with
// ErrStoreFailed until the directory is reopened: Open replays the
// segments to a consistent, CRC-verified prefix and reports the exact
// truncation point. It is safe for concurrent use.
type FileStore struct {
	// mu guards the queue/acknowledgement state below and the Recovery
	// report; commitDone is signalled on batch durability, failure,
	// and leadership release.
	mu         sync.Mutex
	commitDone sync.Cond
	queue      []Record
	queueBytes int
	// lingering marks a leader asleep in lingerLocked on a real timer;
	// lingerWake (buffered, capacity 1) wakes it early on enqueue or
	// Close so the linger never outlives the reason for it.
	lingering  bool
	lingerWake chan struct{}
	lastSeq    uint64 // last assigned sequence number
	durableSeq uint64 // last durably committed sequence number
	committing bool   // a commit leader (or exclusive op) owns the file state
	failed     error
	closed     bool
	stats      BatchStats

	dir      string
	opts     Options
	mem      *MemStore
	recovery Recovery

	// File state below is owned by whichever goroutine holds
	// committing (the group-commit leader, Compact, Close) and by Open
	// before the store is published — never accessed under mu alone.
	cur       *os.File
	curID     uint64
	curRecs   int
	curOff    uint64       // bytes written to the active segment
	curIdx    []blockEntry // sparse block index of the active segment
	curMax    int64        // max record-time nanos seen in the active segment
	sealed    []segmentInfo
	nextID    uint64
	enc       FrameEncoder
	wbuf      []byte // reusable batch write buffer
	frameOffs []int  // reusable per-batch frame offsets into wbuf
	batch     []Record
}

// Open opens (creating if needed) a store directory, recovering it to
// a consistent state: tmp leftovers are discarded, segments are merged
// in sequence order with compaction overlaps deduplicated, and the
// stream is cut at the first torn frame, CRC mismatch, or sequence gap.
// When anything had to be discarded, the surviving prefix is rewritten
// into a fresh segment and the damaged files removed, so a second open
// is clean; the Recovery report (FileStore.Recovery) records exactly
// what was found.
func Open(dir string, opts Options) (*FileStore, error) {
	if opts.SegmentRecords == 0 {
		opts.SegmentRecords = DefaultSegmentRecords
	}
	if opts.SegmentRecords < 0 {
		return nil, fmt.Errorf("auditstore: negative segment size %d", opts.SegmentRecords)
	}
	if opts.CompactSealed == 0 {
		opts.CompactSealed = DefaultCompactSealed
	}
	if opts.BatchRecords <= 0 {
		opts.BatchRecords = DefaultBatchRecords
	}
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = DefaultBatchBytes
	}
	if opts.Clock == nil {
		opts.Clock = clock.System{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("auditstore: open %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir, opts: opts, mem: NewMemStore(), nextID: 1, curMax: math.MinInt64,
		lingerWake: make(chan struct{}, 1)}
	fs.commitDone.L = &fs.mu
	if err := fs.recover(); err != nil {
		return nil, err
	}
	fs.lastSeq = fs.mem.LastSeq()
	fs.durableSeq = fs.lastSeq
	return fs, nil
}

// Dir returns the store directory. dir is immutable after Open, but
// taking the lock keeps the guarded-field contract uniform.
func (fs *FileStore) Dir() string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dir
}

// Recovery returns the report of the Open that produced this store.
func (fs *FileStore) Recovery() Recovery {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.recovery
}

// segPath renders the (v2) segment file path for a file id.
func (fs *FileStore) segPath(id uint64) string {
	return filepath.Join(fs.dir, fmt.Sprintf("%s%08x%s", segPrefix, id, segSuffixV2))
}

// parseSegID extracts the file id from a segment file name of either
// format; v1 reports true.
func parseSegID(name string) (id uint64, v1 bool, ok bool) {
	if !strings.HasPrefix(name, segPrefix) {
		return 0, false, false
	}
	rest := strings.TrimPrefix(name, segPrefix)
	switch {
	case strings.HasSuffix(rest, segSuffix):
		v1 = true
		rest = strings.TrimSuffix(rest, segSuffix)
	case strings.HasSuffix(rest, segSuffixV2):
		rest = strings.TrimSuffix(rest, segSuffixV2)
	default:
		return 0, false, false
	}
	if len(rest) != 8 {
		return 0, false, false
	}
	id, err := strconv.ParseUint(rest, 16, 64)
	return id, v1, err == nil
}

// loadedSegment is one decoded segment during recovery.
type loadedSegment struct {
	id     uint64
	path   string
	v1     bool
	recs   []Record
	offs   []int
	trunc  *Truncation
	footer []blockEntry // non-nil when a sealed v2 segment carries its index
	size   int
}

// recover scans the directory and rebuilds a consistent store state.
func (fs *FileStore) recover() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
	}
	rec := &fs.recovery
	var segs []loadedSegment
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crashed compaction's staging file: its contents were
			// never part of the published stream.
			path := filepath.Join(fs.dir, name)
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
			}
			rec.RemovedFiles = append(rec.RemovedFiles, name)
			continue
		}
		id, v1, ok := parseSegID(name)
		if !ok {
			continue // not ours; leave foreign files alone
		}
		data, err := os.ReadFile(filepath.Join(fs.dir, name))
		if err != nil {
			return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
		}
		seg := loadedSegment{id: id, path: filepath.Join(fs.dir, name), v1: v1, size: len(data)}
		if v1 {
			seg.recs, seg.offs, _, seg.trunc = decodeSegmentOffsets(data)
			rec.SegmentsV1++
		} else {
			seg.recs, seg.offs, _, seg.trunc = decodeBinarySegmentOffsets(data, []int{})
			seg.footer = parseFooter(data)
			rec.SegmentsV2++
		}
		segs = append(segs, seg)
		if id >= fs.nextID {
			fs.nextID = id + 1
		}
	}
	rec.Segments = len(segs)
	// Order by (first sequence, file id): compaction output overlaps
	// its sources at the same sequences but carries a higher id.
	sort.Slice(segs, func(i, j int) bool {
		si, sj := firstSeq(segs[i]), firstSeq(segs[j])
		if si != sj {
			return si < sj
		}
		if segs[i].id != segs[j].id {
			return segs[i].id < segs[j].id
		}
		return segs[i].v1 && !segs[j].v1
	})

	// Merge into the longest contiguous, verified prefix.
	anomaly := len(rec.RemovedFiles) > 0
	var next uint64
	stopped := false
	for si, seg := range segs {
		for ri, r := range seg.recs {
			if stopped {
				rec.DroppedRecords++
				continue
			}
			if next == 0 {
				next = r.Seq // the stream starts wherever retention left it
			}
			if r.Seq < next {
				// Overlap from an interrupted compaction cleanup: the
				// record is already in the prefix.
				anomaly = true
				continue
			}
			if r.Seq > next {
				stopped = true
				anomaly = true
				rec.Truncated = true
				rec.TruncatedFile = filepath.Base(seg.path)
				rec.TruncatedOffset = seg.offs[ri]
				rec.Reason = fmt.Sprintf("sequence gap: have %d, next record is %d", next-1, r.Seq)
				rec.DroppedRecords++
				continue
			}
			if err := fs.mem.adopt(r); err != nil {
				return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
			}
			next = r.Seq + 1
		}
		if seg.trunc != nil {
			anomaly = true
			torn := seg.size - seg.trunc.Offset
			rec.DroppedBytes += torn
			if !stopped {
				// The first damage defines the truncation point; frames
				// beyond it (in later segments) fall to the gap rule.
				rec.Truncated = true
				rec.TruncatedFile = filepath.Base(seg.path)
				rec.TruncatedOffset = seg.trunc.Offset
				rec.Reason = seg.trunc.Reason
				if si < len(segs)-1 {
					stopped = true
				}
			}
		}
		if len(seg.recs) == 0 && seg.trunc == nil && si < len(segs)-1 {
			// An empty segment that is not the newest: a crash window
			// between creating the active file and first writing to it,
			// later superseded. Harmless, but normalize it away.
			anomaly = true
		}
	}
	n, err := fs.mem.Count()
	if err != nil {
		return err
	}
	rec.Records = n
	rec.LastSeq = fs.mem.LastSeq()
	rec.Clean = !anomaly

	if anomaly {
		return fs.normalize(segs)
	}
	// Clean open: adopt the layout as it stands. The newest segment
	// stays active if it is v2, unsealed (no footer), and has room;
	// everything else — including every v1 segment, which the v2
	// writer never appends to — is sealed.
	for i, seg := range segs {
		if i == len(segs)-1 && !seg.v1 && seg.footer == nil && len(seg.recs) < fs.opts.SegmentRecords {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
			}
			fs.cur, fs.curID, fs.curRecs = f, seg.id, len(seg.recs)
			fs.curOff = uint64(seg.size)
			fs.rebuildActiveIndex(seg)
			continue
		}
		fs.sealed = append(fs.sealed, segmentInfo{id: seg.id, path: seg.path, recs: len(seg.recs)})
	}
	return nil
}

// rebuildActiveIndex reconstructs the in-progress block index of an
// adopted active segment from its decoded records and offsets.
func (fs *FileStore) rebuildActiveIndex(seg loadedSegment) {
	fs.curIdx = fs.curIdx[:0]
	fs.curMax = math.MinInt64
	for i, r := range seg.recs {
		if i%indexEvery == 0 {
			fs.curIdx = append(fs.curIdx, blockEntry{seq: r.Seq, off: uint64(seg.offs[i]), maxBefore: fs.curMax})
		}
		if tn, ok, err := timeNanos(r.Time); ok && err == nil && tn > fs.curMax {
			fs.curMax = tn
		}
	}
}

// firstSeq returns the segment's first sequence number, or the maximum
// value for empty segments so they sort last among equals.
func firstSeq(s loadedSegment) uint64 {
	if len(s.recs) == 0 {
		return ^uint64(0)
	}
	return s.recs[0].Seq
}

// decodeSegmentOffsets is DecodeSegment plus the byte offset of every
// decoded record, for truncation reporting.
func decodeSegmentOffsets(data []byte) ([]Record, []int, int, *Truncation) {
	recs, n, trunc := DecodeSegment(data)
	offs := make([]int, len(recs))
	off := 0
	for i, r := range recs {
		offs[i] = off
		line, err := EncodeRecord(r)
		if err != nil {
			// Unreachable: r decoded from a frame, so it re-encodes.
			break
		}
		off += len(line)
	}
	return recs, offs, n, trunc
}

// normalize rewrites the recovered prefix into one fresh segment and
// removes every older file, so the directory decodes cleanly next
// time. Runs fault-free (see Options.Hook).
func (fs *FileStore) normalize(old []loadedSegment) error {
	n, err := fs.mem.Count()
	if err != nil {
		return err
	}
	if n > 0 {
		id := fs.nextID
		fs.nextID++
		path := fs.segPath(id)
		if err := fs.writeSegment(path, 0, n); err != nil {
			return fmt.Errorf("auditstore: normalize %s: %w", fs.dir, err)
		}
		fs.sealed = append(fs.sealed, segmentInfo{id: id, path: path, recs: n})
	}
	for _, seg := range old {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("auditstore: normalize %s: %w", fs.dir, err)
		}
		fs.recovery.RemovedFiles = append(fs.recovery.RemovedFiles, filepath.Base(seg.path))
	}
	return nil
}

// encodeRange renders index records [from, to) as one complete sealed
// v2 segment (header, frames, footer with block index) in memory.
// Only the recovery and compaction paths use it; the append hot path
// streams through the reusable group-commit buffers instead.
func (fs *FileStore) encodeRange(from, to int) ([]byte, error) {
	buf := append([]byte(nil), segMagicV2...)
	var enc FrameEncoder
	var entries []blockEntry
	maxSoFar := int64(math.MinInt64)
	lastSeq := uint64(0)
	for i := from; i < to; i++ {
		r, ok, err := fs.mem.Get(fs.mem.base + uint64(i))
		if err != nil || !ok {
			return nil, fmt.Errorf("segment stage: index record %d missing (%v)", i, err)
		}
		if (i-from)%indexEvery == 0 {
			entries = append(entries, blockEntry{seq: r.Seq, off: uint64(len(buf)), maxBefore: maxSoFar})
		}
		if buf, err = enc.AppendRecord(buf, &r); err != nil {
			return nil, err
		}
		if tn, ok, err := timeNanos(r.Time); ok && err == nil && tn > maxSoFar {
			maxSoFar = tn
		}
		lastSeq = r.Seq
	}
	entries = append(entries, blockEntry{seq: lastSeq + 1, off: uint64(len(buf)), maxBefore: maxSoFar})
	return appendFooter(buf, entries), nil
}

// writeSegment stages records [from, to) of the index into path via a
// tmp file and an atomic rename.
func (fs *FileStore) writeSegment(path string, from, to int) error {
	buf, err := fs.encodeRange(from, to)
	if err != nil {
		return err
	}
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close() //overhaul:allow errdrop best-effort close before reporting the write failure
		return err
	}
	if fs.opts.Sync {
		if err := f.Sync(); err != nil {
			f.Close() //overhaul:allow errdrop best-effort close before reporting the sync failure
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// failLocked marks the store broken. Every later operation repeats the
// failure until the directory is reopened. Callers hold mu and own the
// file state (they are the commit leader or an exclusive op), so
// releasing the active handle here is race-free.
func (fs *FileStore) failLocked(cause error) error {
	fs.failed = fmt.Errorf("%w: %v", ErrStoreFailed, cause)
	if fs.cur != nil {
		fs.cur.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
		fs.cur = nil
	}
	return fs.failed
}

// checkLocked returns the standing failure, if any.
func (fs *FileStore) checkLocked() error {
	if fs.closed {
		return ErrClosed
	}
	return fs.failed
}

// openActive creates a fresh active segment file and writes its
// header. Leader-owned.
func (fs *FileStore) openActive() error {
	id := fs.nextID
	path := fs.segPath(id)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("create segment: %w", err)
	}
	if _, err := f.WriteString(segMagicV2); err != nil {
		f.Close() //overhaul:allow errdrop best-effort close before reporting the header write failure
		return fmt.Errorf("segment header: %w", err)
	}
	fs.nextID++
	fs.cur, fs.curID, fs.curRecs = f, id, 0
	fs.curOff = uint64(len(segMagicV2))
	fs.curIdx = fs.curIdx[:0]
	fs.curMax = math.MinInt64
	return nil
}

// sealActive writes the active segment's footer (block index plus
// sentinel entry) and closes it, moving it to the sealed list.
// Leader-owned.
func (fs *FileStore) sealActive() error {
	entries := append(fs.curIdx, blockEntry{seq: fs.mem.LastSeq() + 1, off: fs.curOff, maxBefore: fs.curMax})
	fs.wbuf = appendFooter(fs.wbuf[:0], entries)
	if _, err := fs.cur.Write(fs.wbuf); err != nil {
		return fmt.Errorf("seal footer: %w", err)
	}
	if fs.opts.Sync {
		if err := fs.cur.Sync(); err != nil {
			return fmt.Errorf("seal sync: %w", err)
		}
	}
	if err := fs.cur.Close(); err != nil {
		return fmt.Errorf("seal close: %w", err)
	}
	fs.sealed = append(fs.sealed, segmentInfo{id: fs.curID, path: fs.segPath(fs.curID), recs: fs.curRecs})
	fs.cur, fs.curRecs = nil, 0
	fs.curIdx = fs.curIdx[:0]
	return nil
}

// rotateSeg seals the active segment and opens a fresh one, evaluating
// the crash fault point at each protocol window (before and after the
// seal), then triggers compaction when enough sealed segments
// accumulated. Leader-owned.
func (fs *FileStore) rotateSeg() error {
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreRotate); f.Injected() {
		return fmt.Errorf("rotate (pre-seal): %w", f.Err)
	}
	if err := fs.sealActive(); err != nil {
		return fmt.Errorf("rotate: %w", err)
	}
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreRotate); f.Injected() {
		return fmt.Errorf("rotate (post-seal): %w", f.Err)
	}
	if err := fs.openActive(); err != nil {
		return err
	}
	if fs.opts.CompactSealed > 0 && len(fs.sealed) >= fs.opts.CompactSealed {
		return fs.compactSeg()
	}
	return nil
}

// Compact merges every sealed segment into one. The active segment is
// left alone. Compaction never drops records — the audit trail is the
// product — it only reduces file count and normalizes ordering; sealed
// v1 segments are rewritten in the v2 format.
func (fs *FileStore) Compact() error {
	fs.mu.Lock()
	for fs.committing {
		fs.commitDone.Wait()
	}
	if err := fs.checkLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	if len(fs.sealed) < 2 {
		fs.mu.Unlock()
		return nil
	}
	fs.committing = true
	fs.mu.Unlock()

	err := fs.compactSeg()

	fs.mu.Lock()
	if err != nil && fs.failed == nil {
		err = fs.failLocked(err)
	} else if err != nil {
		err = fs.failed
	}
	fs.committing = false
	fs.commitDone.Broadcast()
	fs.mu.Unlock()
	return err
}

// compactSeg merges the sealed segments into a fresh, higher file id
// via stage → fsync → rename → cleanup, evaluating the crash fault
// point at each window. Every window leaves a recoverable directory:
// a torn or unrenamed tmp is discarded on open, and a rename without
// cleanup leaves duplicates that recovery deduplicates by sequence.
// Leader-owned.
func (fs *FileStore) compactSeg() error {
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); f.Injected() {
		return fmt.Errorf("compact (begin): %w", f.Err)
	}
	total := 0
	for _, s := range fs.sealed {
		total += s.recs
	}
	id := fs.nextID
	path := fs.segPath(id)
	tmp := path + tmpSuffix

	buf, err := fs.encodeRange(0, total)
	if err != nil {
		return fmt.Errorf("compact stage: %w", err)
	}
	// Stage in two halves with a torn-tmp crash window between them.
	half := len(buf) / 2
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("compact stage: %w", err)
	}
	if _, err := f.Write(buf[:half]); err != nil {
		f.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
		return fmt.Errorf("compact stage: %w", err)
	}
	if fl := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); fl.Injected() {
		f.Close() //overhaul:allow errdrop the store is already failed; the torn tmp is the injected state under test
		return fmt.Errorf("compact (torn tmp): %w", fl.Err)
	}
	if _, err := f.Write(buf[half:]); err != nil {
		f.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
		return fmt.Errorf("compact stage: %w", err)
	}
	if fs.opts.Sync {
		if err := f.Sync(); err != nil {
			f.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
			return fmt.Errorf("compact sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("compact stage: %w", err)
	}
	if fl := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); fl.Injected() {
		return fmt.Errorf("compact (pre-rename): %w", fl.Err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("compact rename: %w", err)
	}
	fs.nextID++
	if fl := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); fl.Injected() {
		return fmt.Errorf("compact (pre-cleanup): %w", fl.Err)
	}
	for _, s := range fs.sealed {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("compact cleanup: %w", err)
		}
	}
	fs.sealed = []segmentInfo{{id: id, path: path, recs: total}}
	return nil
}

// SegmentCount returns (sealed, active) segment counts — observability
// for tests and the dashboard. It waits out any in-flight commit so
// the counts are a consistent snapshot.
func (fs *FileStore) SegmentCount() (sealed int, active int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for fs.committing {
		fs.commitDone.Wait()
	}
	sealed = len(fs.sealed)
	if fs.cur != nil {
		active = 1
	}
	return sealed, active
}

// Get implements Store. Reads fail too once the store failed: a store
// that cannot vouch for its tail must not answer as if it could.
func (fs *FileStore) Get(seq uint64) (Record, bool, error) {
	fs.mu.Lock()
	err := fs.checkLocked()
	fs.mu.Unlock()
	if err != nil {
		return Record{}, false, err
	}
	return fs.mem.Get(seq)
}

// Scan implements Store.
func (fs *FileStore) Scan(q Query, yield func(Record) bool) error {
	fs.mu.Lock()
	err := fs.checkLocked()
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return fs.mem.Scan(q, yield)
}

// Iter implements Iterable: a streaming scan over the durable prefix.
func (fs *FileStore) Iter(q Query) (*Iterator, error) {
	fs.mu.Lock()
	err := fs.checkLocked()
	fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return fs.mem.Iter(q)
}

// Count implements Store.
func (fs *FileStore) Count() (int, error) {
	fs.mu.Lock()
	err := fs.checkLocked()
	fs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return fs.mem.Count()
}

// Close implements Store: in-flight commits are waited out, then the
// active segment is flushed and released. Queued appends that never
// made it into a durable batch fail with ErrClosed — they were never
// acknowledged. Closing a failed store releases resources without
// clearing the failure (reopen recovers).
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	fs.closed = true
	fs.wakeLingerLocked()
	fs.commitDone.Broadcast()
	for fs.committing {
		fs.commitDone.Wait()
	}
	if fs.cur != nil {
		if fs.opts.Sync {
			if err := fs.cur.Sync(); err != nil {
				fs.cur.Close() //overhaul:allow errdrop best-effort release after the sync failure being reported
				fs.cur = nil
				return err
			}
		}
		err := fs.cur.Close()
		fs.cur = nil
		return err
	}
	return nil
}
