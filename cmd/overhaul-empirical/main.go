// Command overhaul-empirical reproduces the §V-D 21-day experiment:
// spying malware runs alongside daily legitimate use on two machines —
// one protected by Overhaul, one unmodified — with identical schedules.
//
// Usage:
//
//	overhaul-empirical [-days 21] [-seed 42]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"overhaul/internal/malware"
	"overhaul/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-empirical:", err)
		os.Exit(1)
	}
}

func printMachine(m workload.MachineReport) {
	label := "UNPROTECTED (vanilla)"
	if m.Protected {
		label = "PROTECTED (Overhaul)"
	}
	fmt.Printf("%s — %d days\n", label, m.Days)
	r := m.Malware
	show := func(name string, a malware.Attempt) {
		fmt.Printf("  spyware %-10s %4d attempts, %4d stolen\n", name, a.Tries, a.Successes)
	}
	show("clipboard:", r.Clipboard)
	show("screen:", r.Screen)
	show("audio:", r.Audio)
	fmt.Printf("  total records exfiltrated: %d (%d files found on disk)\n", r.TotalStolen(), m.DiskLootFiles)
	fmt.Printf("  legitimate apps blocked (false positives): %d\n", m.LegitDenials)
	fmt.Printf("  legitimate grants by operation: %v\n\n", m.LegitGrants)
}

func run() error {
	days := flag.Int("days", 21, "experiment duration in simulated days")
	seed := flag.Int64("seed", 42, "activity-schedule RNG seed")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	rep, err := workload.RunEmpirical(workload.EmpiricalConfig{Days: *days, Seed: *seed})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("Empirical experiment (§V-D), %d days, seed %d\n\n", *days, *seed)
	printMachine(rep.ProtectedMachine)
	printMachine(rep.UnprotectedMachine)

	fmt.Println("Paper outcome: the Overhaul machine leaked nothing in 21 days with no")
	fmt.Println("false positives; the unprotected machine leaked passwords, screenshots")
	fmt.Println("of e-banking sessions, and microphone recordings.")

	if got := rep.ProtectedMachine.Malware.TotalStolen(); got != 0 {
		return fmt.Errorf("REPRODUCTION FAILED: protected machine leaked %d records", got)
	}
	if rep.UnprotectedMachine.Malware.TotalStolen() == 0 {
		return fmt.Errorf("REPRODUCTION FAILED: unprotected machine leaked nothing")
	}
	if rep.ProtectedMachine.LegitDenials != 0 {
		return fmt.Errorf("REPRODUCTION FAILED: %d false positives on the protected machine",
			rep.ProtectedMachine.LegitDenials)
	}
	fmt.Println("\nReproduction outcome matches the paper.")
	return nil
}
