// Package kernel is the failclosedcheck fixture's mediation layer:
// decision functions whose error paths must fail closed.
package kernel

import (
	"errors"

	"failfix/monitor"
)

// Kernel mediates operations through the monitor.
type Kernel struct {
	mon *monitor.Monitor
}

// errTransient models an I/O fault surfacing mid-decision.
var errTransient = errors.New("transient fault")

// OpenGood covers every error path: the pre-mediation failure is
// exempt, the two aborts record denials before surfacing.
func (k *Kernel) OpenGood(pid int, faulty bool) error {
	if pid == 0 {
		return errors.New("no such process") // pre-mediation: exempt
	}
	ok, err := k.mon.Decide(pid)
	if err != nil {
		k.mon.RecordDenial(pid)
		return err
	}
	if faulty {
		k.mon.SetDegraded("fault during open")
		return errTransient
	}
	if !ok {
		k.mon.RecordDenial(pid)
		return monitor.ErrDenied
	}
	return nil
}

// OpenBad drops the decision error on the floor: the abort path
// surfaces without any denial record or degradation.
func (k *Kernel) OpenBad(pid int) error {
	ok, err := k.mon.Decide(pid)
	if err != nil {
		return err // want "without fail-closed handling"
	}
	if !ok {
		return monitor.ErrDenied // want "without fail-closed handling"
	}
	return nil
}

// OpenViaHelper fails closed through kernel.abort → monitor.AuditAbort
// → monitor.RecordDenial: two interprocedural hops, covered by the
// FailsClosed fact.
func (k *Kernel) OpenViaHelper(pid int) error {
	ok, err := k.mon.Decide(pid)
	if err != nil {
		k.abort(pid)
		return err
	}
	if !ok {
		k.abort(pid)
		return monitor.ErrDenied
	}
	return nil
}

// abort inherits FailsClosed from monitor.AuditAbort.
func (k *Kernel) abort(pid int) {
	k.mon.AuditAbort(pid)
}

// OpenSuppressed is the dropped-error path with a reasoned allow.
func (k *Kernel) OpenSuppressed(pid int) error {
	_, err := k.mon.Decide(pid)
	if err != nil {
		//overhaul:allow failclosedcheck decision error here means the store is empty, which later decisions deny by staleness
		return err
	}
	return nil
}

// Stat never consults the monitor: not a decision function, its error
// returns are out of scope.
func (k *Kernel) Stat(pid int) (int, error) {
	if pid < 0 {
		return 0, errors.New("bad pid")
	}
	return pid, nil
}
