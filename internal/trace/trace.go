// Package trace regenerates the paper's protocol figures as numbered
// message-sequence traces driven by live runs of the assembled system.
//
// Each FigureN function boots a fresh Overhaul machine, executes the
// exact scenario the figure depicts, verifies the outcome (the grant,
// the propagation, the alert), and returns the annotated step sequence
// with real PIDs, timestamps, and verdicts filled in. Rendering a trace
// therefore proves the protocol, rather than merely describing it.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Step is one arrow in a sequence diagram.
type Step struct {
	Seq      int
	From     string
	To       string
	Message  string
	Modified bool // bold in the paper: a step Overhaul adds or changes
}

// Trace is a regenerated figure.
type Trace struct {
	Figure   int
	Title    string
	Scenario string
	Steps    []Step
	// Outcome summarises the verified end state.
	Outcome string
}

// add appends a step with the next sequence number.
func (t *Trace) add(from, to, msg string, modified bool) {
	t.Steps = append(t.Steps, Step{
		Seq:      len(t.Steps) + 1,
		From:     from,
		To:       to,
		Message:  msg,
		Modified: modified,
	})
}

// Render pretty-prints the trace. Modified steps are marked with '*',
// matching the paper's bold highlighting.
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d — %s\n", t.Figure, t.Title)
	fmt.Fprintf(&b, "Scenario: %s\n\n", t.Scenario)
	for _, s := range t.Steps {
		mark := " "
		if s.Modified {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s (%2d) %-14s -> %-14s  %s\n", mark, s.Seq, s.From, s.To, s.Message)
	}
	fmt.Fprintf(&b, "\nOutcome: %s\n", t.Outcome)
	fmt.Fprintf(&b, "(* = step added or modified by Overhaul)\n")
	return b.String()
}

// fmtTime renders a timestamp the way the traces reference t and t+n.
func fmtTime(t time.Time) string {
	return t.Format("15:04:05.000")
}
