package kernel

import "sync/atomic"

// Device opens on a real kernel are dominated by driver initialisation —
// the paper measures ~4.6 µs per microphone open (45.20 s / 10 M opens)
// on an i7-930, against which Overhaul's added lookup-and-compare is
// 2.17 %. The simulated filesystem resolves a path in a few hundred
// nanoseconds, so without a driver-cost model the same added work would
// look like a 30–50 % overhead and the Table I shape would be lost.
// deviceInitWork models that driver cost: a deterministic checksum over
// a page-sized buffer, run a configurable number of rounds for *every*
// device-node open, baseline and Overhaul alike.

// DefaultDeviceInitRounds approximates the paper's per-open driver cost
// on contemporary hardware.
const DefaultDeviceInitRounds = 8

// deviceInitBuf is the simulated device register page.
var deviceInitBuf = func() [4096]byte {
	var b [4096]byte
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}()

// deviceInitSink defeats dead-code elimination of the checksum loop.
var deviceInitSink atomic.Uint64

// deviceInitWork burns the calibrated driver-initialisation cost.
func deviceInitWork(rounds int) {
	var sum uint64
	for r := 0; r < rounds; r++ {
		for _, b := range deviceInitBuf {
			sum = sum*131 + uint64(b)
		}
	}
	deviceInitSink.Store(sum)
}
