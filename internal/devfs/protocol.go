package devfs

import (
	"errors"
	"fmt"
	"strings"
)

// The helper→kernel mapping protocol. The paper's trusted helper pushes
// path→class updates to the kernel over an authenticated channel; this
// codec pins down the wire format of those updates so that the seam can
// be fuzzed: a malformed message must produce an error — never a panic,
// and never a mapping from an untrusted name to a device class.
//
// Wire format (single line, ASCII, space-separated):
//
//	overhaul-devd/1 map /dev/video0 camera
//	overhaul-devd/1 unmap /dev/video0
const ProtocolMagic = "overhaul-devd/1"

// Mapping message operations.
const (
	OpMap   = "map"
	OpUnmap = "unmap"
)

// maxMsgLen bounds an encoded message; anything longer is rejected
// before parsing.
const maxMsgLen = 512

// ErrBadMessage is returned for any malformed mapping message.
var ErrBadMessage = errors.New("devfs: malformed mapping message")

// MappingMsg is one helper→kernel mapping update.
type MappingMsg struct {
	Op    string // OpMap or OpUnmap
	Path  string // absolute /dev path of the device node
	Class Class  // sensitive class for OpMap; empty for OpUnmap
}

// validDevicePath reports whether p is an acceptable device-node path:
// absolute under /dev, printable ASCII with no whitespace, and free of
// empty, "." or ".." segments. The strictness is the point — the kernel
// side must never accept a name the trusted helper could not have
// produced.
func validDevicePath(p string) bool {
	if len(p) < len("/dev/x") || len(p) > 128 {
		return false
	}
	if !strings.HasPrefix(p, "/dev/") {
		return false
	}
	for i := 0; i < len(p); i++ {
		if p[i] <= ' ' || p[i] >= 0x7f {
			return false
		}
	}
	for _, seg := range strings.Split(p[1:], "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// validate checks the message against the protocol's invariants.
func (m MappingMsg) validate() error {
	switch m.Op {
	case OpMap:
		if !isSensitive(m.Class) {
			return fmt.Errorf("%w: class %q is not sensitive", ErrBadMessage, m.Class)
		}
	case OpUnmap:
		if m.Class != "" {
			return fmt.Errorf("%w: unmap carries a class", ErrBadMessage)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadMessage, m.Op)
	}
	if !validDevicePath(m.Path) {
		return fmt.Errorf("%w: bad device path %q", ErrBadMessage, m.Path)
	}
	return nil
}

// Encode serialises the message, refusing to emit anything invalid.
func (m MappingMsg) Encode() ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if m.Op == OpMap {
		return []byte(ProtocolMagic + " " + OpMap + " " + m.Path + " " + string(m.Class)), nil
	}
	return []byte(ProtocolMagic + " " + OpUnmap + " " + m.Path), nil
}

// DecodeMapping parses and validates one mapping message. Any
// deviation from the protocol — wrong magic, wrong field count,
// unknown op, non-sensitive class, suspicious path — returns
// ErrBadMessage.
func DecodeMapping(b []byte) (MappingMsg, error) {
	if len(b) > maxMsgLen {
		return MappingMsg{}, fmt.Errorf("%w: %d bytes exceeds limit", ErrBadMessage, len(b))
	}
	fields := strings.Split(string(b), " ")
	if len(fields) < 3 || fields[0] != ProtocolMagic {
		return MappingMsg{}, fmt.Errorf("%w: bad framing", ErrBadMessage)
	}
	var m MappingMsg
	switch fields[1] {
	case OpMap:
		if len(fields) != 4 {
			return MappingMsg{}, fmt.Errorf("%w: map wants 4 fields, got %d", ErrBadMessage, len(fields))
		}
		m = MappingMsg{Op: OpMap, Path: fields[2], Class: Class(fields[3])}
	case OpUnmap:
		if len(fields) != 3 {
			return MappingMsg{}, fmt.Errorf("%w: unmap wants 3 fields, got %d", ErrBadMessage, len(fields))
		}
		m = MappingMsg{Op: OpUnmap, Path: fields[2]}
	default:
		return MappingMsg{}, fmt.Errorf("%w: unknown op %q", ErrBadMessage, fields[1])
	}
	if err := m.validate(); err != nil {
		return MappingMsg{}, err
	}
	return m, nil
}
