package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file upgrades the framework from AST-only scanning to a
// type-checked, cross-package engine. The module is type-checked in
// dependency order with go/types; module-internal imports resolve to
// the packages checked here, and everything else (the standard
// library) resolves through the stdlib source importer, so go.mod
// stays dependency-free. Type information is best-effort by design:
// the linter runs after the compiler in CI, so a tree that fails to
// type-check (a fixture with unresolvable imports, say) degrades to
// the syntactic analyzers instead of aborting the run.

// TypeInfo is the type-checked view of one package: the go/types
// package object plus the expression-level annotation maps the typed
// analyzers read.
type TypeInfo struct {
	// Pkg is the checked package; non-nil even when Errors is not
	// empty (go/types returns a usable partial package).
	Pkg *types.Package
	// Info holds the annotation maps, populated for the package's
	// non-test files.
	Info *types.Info
	// Files are the files that were presented to the checker (the
	// package's non-test files, in Package.Files order).
	Files []*ast.File
	// Errors collects type-checker diagnostics. A package with errors
	// still carries partial Pkg/Info.
	Errors []error
}

// srcImporters caches stdlib source importers per GOROOT. The importer
// re-type-checks stdlib packages from source on first use (~1 s for
// the transitive closure of fmt), so sharing one instance per process
// matters for the test suite, which loads many fixture trees.
// go/importer instances are bound to a FileSet, but positions inside
// stdlib objects are never reported by this framework, so sharing one
// across modules only skews positions nobody prints.
var srcImporters struct {
	sync.Mutex
	imp types.ImporterFrom
}

func stdlibImporter() types.ImporterFrom {
	srcImporters.Lock()
	defer srcImporters.Unlock()
	if srcImporters.imp == nil {
		srcImporters.imp, _ = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	}
	return srcImporters.imp
}

// importStdlib resolves a non-module import path, serializing access
// to the shared source importer (it is not documented concurrency-safe).
func importStdlib(path, dir string) (*types.Package, error) {
	imp := stdlibImporter()
	if imp == nil {
		return nil, fmt.Errorf("no stdlib importer available")
	}
	srcImporters.Lock()
	defer srcImporters.Unlock()
	return imp.ImportFrom(path, dir, 0)
}

// ModulePath reports the module path declared by a go.mod at the scan
// root, or "" when there is none. Fixture trees under testdata declare
// their own tiny module so cross-package imports inside the fixture
// resolve; the real tree resolves through its own go.mod.
func (m *Module) ModulePath() string {
	m.typeOnce.Do(m.typeCheck)
	return m.modulePath
}

// TypeCheck type-checks the module once and returns whether full type
// information is available for every package. It is safe to call
// repeatedly and from multiple analyzers; the work happens once.
func (m *Module) TypeCheck() bool {
	m.typeOnce.Do(m.typeCheck)
	return m.typeClean
}

// TypeInfoFor returns the type-checked view of pkg, or nil when the
// package could not be checked at all.
func (m *Module) TypeInfoFor(pkg *Package) *TypeInfo {
	m.typeOnce.Do(m.typeCheck)
	return m.typeInfo[pkg.Dir]
}

// TypeErrors returns every type-checker diagnostic across the module,
// for callers that want to surface (rather than tolerate) them.
func (m *Module) TypeErrors() []error {
	m.typeOnce.Do(m.typeCheck)
	var out []error
	for _, dir := range m.typeOrder {
		if ti := m.typeInfo[dir]; ti != nil {
			out = append(out, ti.Errors...)
		}
	}
	return out
}

// PackagesInDependencyOrder returns the module's packages sorted so
// that every package appears after the module-internal packages it
// imports. Packages outside any import cycle keep their sorted-dir
// order as a tiebreak.
func (m *Module) PackagesInDependencyOrder() []*Package {
	m.typeOnce.Do(m.typeCheck)
	out := make([]*Package, 0, len(m.typeOrder))
	byDir := make(map[string]*Package, len(m.Packages))
	for _, pkg := range m.Packages {
		byDir[pkg.Dir] = pkg
	}
	for _, dir := range m.typeOrder {
		if pkg := byDir[dir]; pkg != nil {
			out = append(out, pkg)
		}
	}
	return out
}

// readModulePath extracts the module path from root/go.mod.
func readModulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`)
			}
		}
	}
	return ""
}

// importPathOf maps a package directory to its module import path.
func importPathOf(modPath, dir string) string {
	if dir == "." {
		return modPath
	}
	return modPath + "/" + dir
}

// typedFiles returns the files presented to the type checker: the
// non-test files of the directory's primary (non _test) package. Test
// files are analyzed syntactically only — they would need the test
// package variants, and no invariant the typed analyzers enforce lives
// in test code.
func typedFiles(pkg *Package) ([]*ast.File, []string) {
	var files []*ast.File
	var names []string
	pkgName := ""
	for _, f := range pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		name := f.AST.Name.Name
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			// Mixed package names in one directory (a fixture tree
			// quirk); keep the first clause's package.
			continue
		}
		files = append(files, f.AST)
		names = append(names, f.Name)
	}
	return files, names
}

// moduleImporter resolves imports while checking one package:
// module-internal paths come from the already-checked packages,
// everything else from the stdlib source importer.
type moduleImporter struct {
	m   *Module
	dir string // absolute directory of the importing package
}

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	if mi.m.modulePath != "" {
		if path == mi.m.modulePath {
			if ti := mi.m.typeInfo["."]; ti != nil && ti.Pkg != nil {
				return ti.Pkg, nil
			}
			return nil, fmt.Errorf("module package %s not checked yet", path)
		}
		if rest, ok := strings.CutPrefix(path, mi.m.modulePath+"/"); ok {
			if ti := mi.m.typeInfo[rest]; ti != nil && ti.Pkg != nil {
				return ti.Pkg, nil
			}
			return nil, fmt.Errorf("module package %s not checked yet", path)
		}
	}
	return importStdlib(path, mi.dir)
}

// typeCheck runs once behind typeOnce: order packages by dependency,
// check each, record per-package TypeInfo.
func (m *Module) typeCheck() {
	m.typeInfo = make(map[string]*TypeInfo)
	m.modulePath = readModulePath(m.Root)

	// Import graph among module packages, by directory.
	byPath := make(map[string]string) // import path -> dir
	if m.modulePath != "" {
		for _, pkg := range m.Packages {
			byPath[importPathOf(m.modulePath, pkg.Dir)] = pkg.Dir
		}
	}
	deps := make(map[string][]string) // dir -> imported module dirs
	for _, pkg := range m.Packages {
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			if isTestFile(f.Name) {
				continue
			}
			for _, imp := range f.AST.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if dir, ok := byPath[p]; ok && dir != pkg.Dir && !seen[dir] {
					seen[dir] = true
					deps[pkg.Dir] = append(deps[pkg.Dir], dir)
				}
			}
		}
		sort.Strings(deps[pkg.Dir])
	}

	// Topological order (DFS; import cycles cannot happen in
	// compilable Go, and a cycle in a broken fixture just yields a
	// "not checked yet" type error for the back edge).
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var order []string
	var visit func(dir string)
	visit = func(dir string) {
		if state[dir] != 0 {
			return
		}
		state[dir] = 1
		for _, d := range deps[dir] {
			visit(d)
		}
		state[dir] = 2
		order = append(order, dir)
	}
	for _, pkg := range m.Packages {
		visit(pkg.Dir)
	}
	m.typeOrder = order

	m.typeClean = true
	byDir := make(map[string]*Package, len(m.Packages))
	for _, pkg := range m.Packages {
		byDir[pkg.Dir] = pkg
	}
	for _, dir := range order {
		pkg := byDir[dir]
		files, _ := typedFiles(pkg)
		ti := &TypeInfo{
			Info: &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
			},
			Files: files,
		}
		m.typeInfo[dir] = ti
		if len(files) == 0 {
			continue
		}
		path := importPathOf(m.modulePath, dir)
		if m.modulePath == "" {
			// No go.mod at the root: packages still check against the
			// stdlib, they just cannot import each other.
			path = dir
		}
		conf := types.Config{
			Importer: moduleImporter{m: m, dir: filepath.Join(m.Root, filepath.FromSlash(dir))},
			Error: func(err error) {
				ti.Errors = append(ti.Errors, err)
			},
		}
		pkgObj, err := conf.Check(path, m.Fset, files, ti.Info)
		if err != nil && len(ti.Errors) == 0 {
			ti.Errors = append(ti.Errors, err)
		}
		ti.Pkg = pkgObj
		if len(ti.Errors) > 0 {
			m.typeClean = false
		}
	}
}
