package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"overhaul/internal/analysis"
)

const printcheckFixture = "../../internal/analysis/testdata/printcheck"

// golden compares got against the file, so output format changes are
// deliberate diffs.
func golden(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", printcheckFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, errb.String())
	}
	golden(t, "testdata/printcheck.json", out.Bytes())

	// The golden must round-trip as the documented machine format.
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("-json output decoded to zero diagnostics")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic in JSON output: %+v", d)
		}
	}
}

func TestHumanGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{printcheckFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	golden(t, "testdata/printcheck.txt", out.Bytes())
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	// The analysistest package has no violations and no fixtures.
	code := run([]string{"../../internal/analysis/analysistest"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run should print nothing, got: %s", out.String())
	}
}

func TestJSONCleanTreeEmitsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "../../internal/analysis/analysistest"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json run = %q, want []", out.String())
	}
}

func TestEnableDisableFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "printcheck", printcheckFixture}, &out, &errb); code != 0 {
		t.Errorf("disabling printcheck should leave the fixture clean, exit = %d: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-enable", "clockcheck", printcheckFixture}, &out, &errb); code != 0 {
		t.Errorf("enabling only clockcheck should leave the fixture clean, exit = %d: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-enable", "printcheck", printcheckFixture}, &out, &errb); code != 1 {
		t.Errorf("enabling printcheck should find the fixture violations, exit = %d", code)
	}
	if code := run([]string{"-enable", "nonesuch", printcheckFixture}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer should be a usage error, exit = %d", code)
	}
	if code := run([]string{"-disable", "nonesuch", printcheckFixture}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer in -disable should be a usage error, exit = %d", code)
	}
}

func TestMissingRootIsLoadError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/does-not-exist"}, &out, &errb); code != 2 {
		t.Errorf("missing root should exit 2, got %d", code)
	}
	if errb.Len() == 0 {
		t.Error("load error should be reported on stderr")
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}
