package monitor

// Probe-overhead benchmarks and hard contracts: an attached-but-idle
// probe must add no allocation to the Decide hot path, and the
// per-decision cost of an unattached hook is a single atomic load.
// BenchmarkDecideProbeAttached is gated by bench-compare (within 25%
// of BENCH_overhaul.json) alongside the other Decide benchmarks.

import (
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/probe"
)

// benchProbeMonitor is benchMonitor with a probe registry wired in.
func benchProbeMonitor(tb testing.TB, reg *probe.Registry) (*Monitor, time.Time) {
	tb.Helper()
	clk := clock.NewSimulated()
	tasks := &fastBenchTasks{pid: 7}
	tasks.stampNanos.Store(clk.Now().UnixNano())
	m, err := New(clk, tasks, Config{Enforce: true, Probes: reg})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return m, clk.Now().Add(time.Millisecond)
}

// BenchmarkDecideProbeUnattached measures the registry-wired-but-idle
// configuration every deployment pays once probes ship: three armed
// checks (evaluate, audit, decide), each one atomic load.
func BenchmarkDecideProbeUnattached(b *testing.B) {
	m, opTime := benchProbeMonitor(b, probe.NewRegistry())
	for i := 0; i < benchWarmup; i++ {
		m.Decide(7, OpMic, opTime)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(7, OpMic, opTime)
	}
}

// BenchmarkDecideProbeAttached measures Decide with a match-all probe
// on kernel.decide: predicate evaluation plus one ring publish per
// decision, with a batched reader draining the ring like a live
// collector.
func BenchmarkDecideProbeAttached(b *testing.B) {
	reg := probe.NewRegistry()
	ring := probe.NewRing(4096)
	if _, err := reg.AttachSpec("hook=kernel.decide", ring); err != nil {
		b.Fatal(err)
	}
	m, opTime := benchProbeMonitor(b, reg)
	for i := 0; i < benchWarmup; i++ {
		m.Decide(7, OpMic, opTime)
	}
	buf := make([]probe.Event, 512)
	ring.ReadBatch(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(7, OpMic, opTime)
		if i&255 == 255 {
			ring.ReadBatch(buf)
		}
	}
}

// TestDecideProbeAttachedZeroAlloc hard-asserts the attach points'
// cost contract on the real decision path: whether the hooks are
// unattached, attached-idle (predicate never matches), or
// attached-and-matching, Decide allocates nothing per op.
func TestDecideProbeAttachedZeroAlloc(t *testing.T) {
	reg := probe.NewRegistry()
	m, opTime := benchProbeMonitor(t, reg)
	warm := func() {
		for i := 0; i < benchWarmup; i++ {
			m.Decide(7, OpMic, opTime)
		}
	}
	warm()
	if avg := testing.AllocsPerRun(200, func() {
		m.Decide(7, OpMic, opTime)
	}); avg != 0 {
		t.Errorf("Decide with unattached hooks allocates %.1f per op, want 0", avg)
	}

	// Attached but never matching: the predicate runs, no publish.
	idleRing := probe.NewRing(64)
	if _, err := reg.AttachSpec("pid=1099511627776", idleRing); err != nil {
		t.Fatal(err)
	}
	warm()
	if avg := testing.AllocsPerRun(200, func() {
		m.Decide(7, OpMic, opTime)
	}); avg != 0 {
		t.Errorf("Decide with attached-idle probe allocates %.1f per op, want 0", avg)
	}

	// Attached and matching on all three monitor hooks.
	matchRing := probe.NewRing(4096)
	if _, err := reg.AttachSpec("", matchRing); err != nil {
		t.Fatal(err)
	}
	warm()
	buf := make([]probe.Event, 512)
	if avg := testing.AllocsPerRun(200, func() {
		m.Decide(7, OpMic, opTime)
		matchRing.ReadBatch(buf)
	}); avg != 0 {
		t.Errorf("Decide with matching probe allocates %.1f per op, want 0", avg)
	}
}
