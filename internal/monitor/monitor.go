// Package monitor implements Overhaul's kernel permission monitor.
//
// The permission monitor (paper §III-B, §IV-B) is the component that
// makes every access-control decision. It records *interaction
// notifications* — "process P received authentic hardware input at time
// T" — pushed by the display manager over the authenticated channel, and
// answers *permission queries* by correlating a privileged operation's
// timestamp with the target process's most recent interaction: the
// operation is granted iff it falls within a configurable temporal
// proximity threshold δ of the interaction (the paper empirically
// settles on δ = 2 s).
//
// Following the paper's implementation, interaction timestamps live in
// the process table itself (the task_struct analogue), so the monitor
// operates on a TaskStore interface implemented by the kernel; the
// monitor owns the decision logic, the audit log, and alert dispatch.
//
// The monitor is built to scale across cores: it holds no global lock.
// Mode flags (degraded, alert sink) and activity counters are atomics,
// the audit log is lock-striped by pid (see auditShards), and all
// telemetry on the decision path flows through pre-resolved handles, so
// concurrent Decide calls on different processes share no contended
// cache line beyond the telemetry rings.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

// DefaultThreshold is δ, the temporal proximity window. The paper found
// <1 s causes false denials while 2 s never broke legitimate programs
// over a 21-day deployment.
const DefaultThreshold = 2 * time.Second

// Op names a privileged operation class, matching the paper's
// op ∈ {copy, paste, scr, mic, cam}.
type Op string

// Privileged operations mediated by Overhaul.
const (
	OpCopy   Op = "copy"
	OpPaste  Op = "paste"
	OpScreen Op = "scr"
	OpMic    Op = "mic"
	OpCam    Op = "cam"
	OpOther  Op = "dev" // any other sensitive device class
)

// knownOps enumerates the operation classes above; the monitor
// pre-resolves telemetry handles for each so the decision path never
// builds a label string.
var knownOps = []Op{OpCopy, OpPaste, OpScreen, OpMic, OpCam, OpOther}

// Verdict is the outcome of a permission query.
type Verdict int

// Verdicts. Enums start at one so the zero value is invalid.
const (
	VerdictGrant Verdict = iota + 1
	VerdictDeny
)

// String returns "grant" or "deny".
func (v Verdict) String() string {
	switch v {
	case VerdictGrant:
		return "grant"
	case VerdictDeny:
		return "deny"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// TaskStore is the kernel-side process table view the monitor needs:
// where interaction stamps live and whether a process's permissions are
// administratively disabled (the ptrace guard).
type TaskStore interface {
	// InteractionStamp returns the most recent authentic-interaction
	// time for pid. ok is false if the process does not exist.
	InteractionStamp(pid int) (stamp time.Time, ok bool)
	// SetInteractionStamp records an interaction time for pid,
	// only if newer than the currently stored stamp.
	SetInteractionStamp(pid int, t time.Time) error
	// PermissionsDisabled reports whether pid's sensitive-resource
	// permissions are force-disabled (e.g. it is being ptraced).
	PermissionsDisabled(pid int) bool
}

// SpanTaskStore is an optional extension of TaskStore for stores that
// can remember which trace span minted each interaction stamp, so that
// a later permission query can be linked to the interaction that
// enables it. Stores that do not implement it still work; traces then
// break at the stamp boundary instead of connecting through it.
type SpanTaskStore interface {
	TaskStore
	// SetInteractionStampSpan records an interaction time for pid
	// together with the span that delivered it, only if newer than the
	// currently stored stamp (the span travels with the stamp,
	// newest-wins as one unit).
	SetInteractionStampSpan(pid int, t time.Time, ctx telemetry.SpanContext) error
	// InteractionSpan returns the span context stored alongside pid's
	// current interaction stamp. ok is false if the process does not
	// exist.
	InteractionSpan(pid int) (telemetry.SpanContext, bool)
}

// FastTaskStore is an optional extension of TaskStore for stores that
// can answer everything a decision needs in one call — stamp, stamp
// span, and the ptrace-guard flag. The sharded kernel table backs this
// with three atomic loads, so Decide against it takes no lock at all;
// plain TaskStores fall back to the interface calls.
type FastTaskStore interface {
	TaskStore
	// InteractionView returns pid's interaction stamp, the span that
	// minted it, and whether permissions are force-disabled. ok is
	// false if the process does not exist.
	InteractionView(pid int) (stamp time.Time, ctx telemetry.SpanContext, disabled bool, ok bool)
}

// AlertRequest asks the display manager to show a trusted-output visual
// alert: "process PID performed Op" (V_{A,op} in the paper), or — for
// Blocked requests — that an undesired access attempt was stopped (the
// §V-B user-study scenario: a hidden camera access is blocked *and* the
// user is alerted). Degraded requests carry the distinct
// protection-degraded wording: the denial happened because the
// mediation path itself is broken, not because the stamp was stale.
type AlertRequest struct {
	PID      int
	Op       Op
	Time     time.Time
	Blocked  bool
	Degraded bool
	// Ctx is the decision span that raised the alert; the display
	// manager parents the render span on it so one trace covers input →
	// decision → alert. Zero when telemetry is disabled.
	Ctx telemetry.SpanContext
}

// AlertFunc delivers an AlertRequest to the display manager. It is
// called synchronously from Decide; implementations route it over the
// authenticated netlink channel.
type AlertFunc func(AlertRequest)

// Decision records one permission query and its outcome.
type Decision struct {
	PID     int
	Op      Op
	OpTime  time.Time
	Stamp   time.Time // interaction stamp consulted (zero if none)
	Verdict Verdict
	Reason  string
	// Degraded marks denials issued while the monitor was in degraded
	// (fail-closed) mode rather than by the temporal-proximity rule.
	Degraded bool
}

// ErrNoSuchProcess is returned by Notify for unknown PIDs.
var ErrNoSuchProcess = errors.New("no such process")

// Config parameterises the monitor.
type Config struct {
	// Threshold is δ. Zero means DefaultThreshold.
	Threshold time.Duration
	// ForceGrant short-circuits every decision to grant while still
	// exercising the full decision path. The paper enables this mode
	// for the Table I performance measurements so that benchmarks
	// measure the complete grant path without real user input.
	ForceGrant bool
	// Enforce controls whether deny verdicts are produced at all.
	// When false the monitor runs in observe-only mode: decisions and
	// audit records are produced but everything is granted. Used by
	// the unprotected baseline machine in the §V-D experiment.
	Enforce bool
	// AlertOps lists operations whose grants raise a visual alert
	// *from the kernel side* (V_{A,op} over the netlink channel).
	// That covers kernel-mediated hardware devices; for
	// display-manager-mediated resources the display manager raises
	// the alert itself (screen capture) or stays silent by design
	// (clipboard — usability, §V-C). Nil selects that default.
	AlertOps []Op
	// AuditCapacity bounds each audit shard's ring (oldest entries are
	// dropped). Decisions are striped across auditShards rings by pid,
	// so records for one process always compete with each other — and
	// with any pid sharing its shard — for the same AuditCapacity
	// slots. Zero means 1024 per shard.
	AuditCapacity int
	// Telemetry, when non-nil, receives metrics, decision spans, and
	// flight-recorder events. Nil disables instrumentation entirely
	// (zero allocations on the Decide hot path).
	Telemetry *telemetry.Recorder
	// Probes, when non-nil, arms the monitor's probe attach points
	// (monitor.evaluate, monitor.audit, kernel.decide). Nil leaves the
	// hooks unresolved; each attach point then costs a single nil check
	// on the decision path.
	Probes *probe.Registry
}

// defaultAlertOps covers the kernel-mediated device operations. Screen
// capture alerts are raised by the display manager directly (it can
// identify the requesting process without kernel assistance, §III-C),
// and clipboard operations are silent but logged.
func defaultAlertOps() map[Op]bool {
	return map[Op]bool{OpMic: true, OpCam: true, OpOther: true}
}

// auditShards stripes the audit log. Power of two so the shard index is
// a mask; 8 shards keep contention negligible at the core counts the
// ROADMAP targets while costing 8 small rings.
const auditShards = 8

// auditEntry tags a decision with its global sequence number so a
// merged view can restore total order across shards.
type auditEntry struct {
	seq uint64
	d   Decision
}

// auditShard is one stripe of the audit log: an independent ring with
// its own lock and drop counter.
type auditShard struct {
	mu      sync.Mutex
	ring    []auditEntry // capacity auditCap, allocated lazily
	head    int          // index of the oldest record
	n       int
	dropped uint64
}

// monitorStats are the activity counters, all atomics so the decision
// path never locks to count. Queries are not counted separately:
// every query resolves to exactly one of grant or deny, so the total
// is derived at snapshot time and the hot path pays one atomic
// increment instead of two.
type monitorStats struct {
	notifications   atomic.Uint64
	grants          atomic.Uint64
	denials         atomic.Uint64
	alertsSent      atomic.Uint64
	degradedDenials atomic.Uint64
}

// opIndex maps a known op to its dense index in knownOps order, -1
// for unknown ops. The decision path indexes its pre-resolved handle
// arrays with it: a string switch compiles to a length bucket plus a
// constant compare, which profiles measurably cheaper than hashing the
// op into a map on every decision.
func opIndex(op Op) int {
	switch op {
	case OpCopy:
		return 0
	case OpPaste:
		return 1
	case OpScreen:
		return 2
	case OpMic:
		return 3
	case OpCam:
		return 4
	case OpOther:
		return 5
	}
	return -1
}

// Monitor is the kernel permission monitor. It is safe for concurrent
// use and holds no global lock: see the package comment.
type Monitor struct {
	clk       clock.Clock
	tasks     TaskStore
	spanTasks SpanTaskStore // tasks, if it implements SpanTaskStore
	fastTasks FastTaskStore // tasks, if it implements FastTaskStore
	threshold time.Duration
	force     bool
	enforce   bool
	alertOps  map[Op]bool // read-only after New (AlertOperations view)
	// alertFast mirrors alertOps indexed by opIndex: the decision path
	// tests membership without hashing the op string.
	alertFast [6]bool
	auditCap  int
	tel       *telemetry.Recorder // nil-safe; nil means disabled

	// Probe attach points, resolved once at construction. Each costs
	// one atomic load per decision while unattached (nil when the
	// monitor was built without a probe registry: one nil check).
	probeEval   *probe.Hook // monitor.evaluate
	probeAudit  *probe.Hook // monitor.audit
	probeDecide *probe.Hook // kernel.decide

	alertFn  atomic.Value           // AlertFunc (typed nil disables)
	degraded atomic.Pointer[string] // nil: healthy; else fail-closed reason
	seq      atomic.Uint64          // global audit sequence
	stats    monitorStats
	audit    [auditShards]auditShard

	// Pre-resolved telemetry handles (nil handles no-op when telemetry
	// is disabled; decisionCounters/stampAge are read-only after New).
	mNotifications   *telemetry.Counter
	mNotifyErrors    *telemetry.Counter
	mAuditAppends    *telemetry.Counter
	mDegradations    *telemetry.Counter
	mDenialsRecorded *telemetry.Counter
	// Indexed [opIndex(op)][verdict]; verdicts start at 1, so row
	// length is 3 with slot 0 unused.
	decisionCounters [][3]*telemetry.Counter
	stampAge         []*telemetry.Histogram // indexed by opIndex(op)
}

// Stats aggregates monitor activity.
type Stats struct {
	Notifications   uint64
	Queries         uint64
	Grants          uint64
	Denials         uint64
	AlertsSent      uint64
	DegradedDenials uint64
}

// New constructs a Monitor over the given task store.
func New(clk clock.Clock, tasks TaskStore, cfg Config) (*Monitor, error) {
	if clk == nil {
		return nil, errors.New("monitor: nil clock")
	}
	if tasks == nil {
		return nil, errors.New("monitor: nil task store")
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold < 0 {
		return nil, fmt.Errorf("monitor: negative threshold %v", threshold)
	}
	alertOps := defaultAlertOps()
	if cfg.AlertOps != nil {
		alertOps = make(map[Op]bool, len(cfg.AlertOps))
		for _, op := range cfg.AlertOps {
			alertOps[op] = true
		}
	}
	auditCap := cfg.AuditCapacity
	if auditCap == 0 {
		auditCap = 1024
	}
	m := &Monitor{
		clk:       clk,
		tasks:     tasks,
		threshold: threshold,
		force:     cfg.ForceGrant,
		enforce:   cfg.Enforce,
		alertOps:  alertOps,
		auditCap:  auditCap,
		tel:       cfg.Telemetry,
	}
	for op := range alertOps {
		if i := opIndex(op); i >= 0 {
			m.alertFast[i] = true
		}
	}
	m.spanTasks, _ = tasks.(SpanTaskStore)
	m.fastTasks, _ = tasks.(FastTaskStore)
	m.probeEval = cfg.Probes.Hook(probe.HookMonitorEvaluate)
	m.probeAudit = cfg.Probes.Hook(probe.HookMonitorAudit)
	m.probeDecide = cfg.Probes.Hook(probe.HookKernelDecide)
	if tel := cfg.Telemetry; tel.Enabled() {
		// Resolve every handle the decision path can hit once, here.
		// Never-updated handles stay invisible in snapshots, so this
		// does not surface zero-valued series.
		m.mNotifications = tel.Counter("monitor", "notifications", "")
		m.mNotifyErrors = tel.Counter("monitor", "notify_errors", "")
		m.mAuditAppends = tel.Counter("monitor", "audit_appends", "")
		m.mDegradations = tel.Counter("monitor", "degradations", "")
		m.mDenialsRecorded = tel.Counter("monitor", "denials_recorded", "")
		m.decisionCounters = make([][3]*telemetry.Counter, len(knownOps))
		m.stampAge = make([]*telemetry.Histogram, len(knownOps))
		for _, op := range knownOps {
			i := opIndex(op)
			for _, v := range []Verdict{VerdictGrant, VerdictDeny} {
				m.decisionCounters[i][v] =
					tel.Counter("monitor", "decisions", "op="+string(op)+" verdict="+v.String())
			}
			m.stampAge[i] = tel.Histogram("monitor", "stamp_age", "op="+string(op))
		}
	}
	return m, nil
}

// Telemetry returns the monitor's recorder (nil when disabled).
func (m *Monitor) Telemetry() *telemetry.Recorder { return m.tel }

// Threshold returns δ.
func (m *Monitor) Threshold() time.Duration { return m.threshold }

// SetAlertFunc installs the trusted-output alert sink. Passing nil
// disables alert dispatch.
func (m *Monitor) SetAlertFunc(fn AlertFunc) {
	m.alertFn.Store(fn)
}

// alertSink returns the installed alert sink, or nil.
func (m *Monitor) alertSink() AlertFunc {
	fn, _ := m.alertFn.Load().(AlertFunc)
	return fn
}

// countDecision bumps the per-(op, verdict) decision counter; unknown
// op classes fall back to the string-keyed registry.
func (m *Monitor) countDecision(op Op, v Verdict) {
	if i := opIndex(op); i >= 0 && v > 0 && int(v) < 3 && m.decisionCounters != nil {
		if c := m.decisionCounters[i][v]; c != nil {
			c.Add(1)
			return
		}
	}
	m.tel.Add("monitor", "decisions", "op="+string(op)+" verdict="+v.String(), 1)
}

// observeStampAge records the stamp-age observation for op, like
// countDecision.
func (m *Monitor) observeStampAge(op Op, age time.Duration) {
	if i := opIndex(op); i >= 0 && m.stampAge != nil {
		if h := m.stampAge[i]; h != nil {
			h.Observe(age)
			return
		}
	}
	m.tel.Observe("monitor", "stamp_age", "op="+string(op), age)
}

// Notify records an interaction notification N_{A,t}: authentic user
// input was delivered to pid at time t. Only the display manager may
// invoke this (enforced by channel authentication one layer up).
func (m *Monitor) Notify(pid int, t time.Time) error {
	return m.NotifyCtx(telemetry.SpanContext{}, pid, t)
}

// NotifyCtx is Notify carrying the trace context of the input event
// that caused the notification. The notify span is stored in the task
// struct alongside the stamp it mints (when the store supports it), so
// a later permission query within δ links back to this interaction.
//
// Against a sharded store the stamp write is a lock-free CAS-max; this
// method itself takes no lock either.
func (m *Monitor) NotifyCtx(ctx telemetry.SpanContext, pid int, t time.Time) error {
	span := m.tel.StartSpan(ctx, "monitor", "notify")
	defer span.End()
	var err error
	if m.spanTasks != nil {
		err = m.spanTasks.SetInteractionStampSpan(pid, t, span.Context())
	} else {
		err = m.tasks.SetInteractionStamp(pid, t)
	}
	if err != nil {
		if m.tel.Enabled() {
			span.Annotate("error", err.Error())
			m.mNotifyErrors.Add(1)
		}
		return fmt.Errorf("monitor notify pid %d: %w", pid, err)
	}
	m.stats.notifications.Add(1)
	if m.tel.Enabled() {
		span.AnnotateInt("pid", int64(pid))
		m.mNotifications.Add(1)
	}
	return nil
}

// SetDegraded switches the monitor into fail-closed degraded mode:
// every subsequent decision denies with a distinct
// "protection degraded" reason until ClearDegraded. The core flips
// this when a trusted component the decision path depends on — in
// practice the netlink channel — is detected dead: a monitor that
// cannot reach its sensors' user must block the sensors.
func (m *Monitor) SetDegraded(reason string) {
	if reason == "" {
		reason = "trusted component failure"
	}
	m.degraded.Store(&reason)
	if m.tel.Enabled() {
		m.mDegradations.Add(1)
		// A degradation is a flight-recorder trip: snapshot the ring so
		// the events leading up to the trusted-component failure are
		// preserved even if the ring keeps rolling afterwards.
		m.tel.TripFlight(telemetry.SpanContext{}, "monitor", "protection degraded: "+reason)
	}
}

// ClearDegraded returns the monitor to normal operation (the channel
// was re-established).
func (m *Monitor) ClearDegraded() {
	m.degraded.Store(nil)
	m.tel.RecordEvent(telemetry.SpanContext{}, "monitor", "recovery", "degraded mode cleared")
}

// DegradedReason returns the degradation reason and whether the
// monitor is currently degraded.
func (m *Monitor) DegradedReason() (string, bool) {
	if p := m.degraded.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// probeDevs maps opIndex to the probe-layer device class.
var probeDevs = [6]probe.Dev{
	probe.DevCopy, probe.DevPaste, probe.DevScreen,
	probe.DevMic, probe.DevCam, probe.DevOther,
}

// probeEvent flattens a decision into a probe event. Reasons are
// interned to codes; dynamic reason text (staleness, δ) is
// reconstructable from TimeNanos/StampNanos and the threshold, so the
// event stays fixed-size and the emission allocation-free.
func probeEvent(kind probe.Kind, d *Decision) probe.Event {
	ev := probe.Event{
		TimeNanos: d.OpTime.UnixNano(),
		PID:       int64(d.PID),
		Kind:      kind,
		Reason:    probe.ReasonOf(d.Reason),
	}
	if !d.Stamp.IsZero() {
		ev.StampNanos = d.Stamp.UnixNano()
	}
	if i := opIndex(d.Op); i >= 0 {
		ev.Dev = probeDevs[i]
	}
	switch d.Verdict {
	case VerdictGrant:
		ev.Verdict = probe.VerdictGrant
	case VerdictDeny:
		ev.Verdict = probe.VerdictDeny
	}
	return ev
}

// appendAudit appends one decision to its pid's audit shard.
func (m *Monitor) appendAudit(d *Decision) {
	if m.probeAudit.Wants(int64(d.PID)) {
		m.probeAudit.Emit(probeEvent(probe.KindAudit, d))
	}
	// Every audit append is mirrored to a telemetry counter so the
	// audit log and overhaul-top can never silently disagree.
	m.mAuditAppends.Add(1)
	seq := m.seq.Add(1)
	sh := &m.audit[uint(d.PID)&(auditShards-1)]
	sh.mu.Lock()
	if sh.ring == nil {
		// Grown lazily but allocated once per shard: the ring must not
		// churn the allocator on the hot decision path.
		sh.ring = make([]auditEntry, m.auditCap)
	}
	var e *auditEntry
	if sh.n == m.auditCap {
		e = &sh.ring[sh.head]
		sh.head = (sh.head + 1) % m.auditCap
		sh.dropped++
	} else {
		e = &sh.ring[(sh.head+sh.n)%m.auditCap]
		sh.n++
	}
	// Filled in place under the shard lock: the Decision is wide
	// enough that an extra construct-then-copy shows up in profiles.
	e.seq = seq
	e.d = *d
	sh.mu.Unlock()
}

// Decide answers a permission query Q_{A,t}: may pid perform op at
// opTime? It consults the process's interaction stamp, applies the
// temporal-proximity rule, appends an audit record, and — for granted
// operations in the alert set — dispatches a visual alert request.
// While the monitor is degraded, every query denies (fail closed) with
// the distinct protection-degraded reason.
func (m *Monitor) Decide(pid int, op Op, opTime time.Time) Verdict {
	return m.DecideCtx(telemetry.SpanContext{}, pid, op, opTime)
}

// DecideCtx is Decide carrying the trace context of the event that
// triggered the query (typically the kernel open span, itself parented
// on the interaction that minted the process's stamp). With telemetry
// disabled it is exactly the Decide hot path: zero extra allocations,
// verified by BenchmarkDecideTelemetryDisabled; with telemetry enabled
// the only allocation is the retained decision span.
func (m *Monitor) DecideCtx(ctx telemetry.SpanContext, pid int, op Op, opTime time.Time) Verdict {
	// One read of the task store up front. Fast stores answer with a
	// handful of atomic loads; plain stores cost the same interface
	// calls the single-lock implementation made.
	var (
		stamp    time.Time
		exists   bool
		disabled bool
	)
	if m.fastTasks != nil {
		var sc telemetry.SpanContext
		stamp, sc, disabled, exists = m.fastTasks.InteractionView(pid)
		if m.tel.Enabled() && !ctx.Valid() {
			// No explicit parent: join the trace of the interaction
			// that minted the process's current stamp. This is what
			// connects a bare Decide to its enabling input.
			ctx = sc
		}
	} else {
		if m.tel.Enabled() && !ctx.Valid() && m.spanTasks != nil {
			if sc, found := m.spanTasks.InteractionSpan(pid); found {
				ctx = sc
			}
		}
		stamp, exists = m.tasks.InteractionStamp(pid)
		if exists {
			disabled = m.tasks.PermissionsDisabled(pid)
		}
	}
	span := m.tel.StartSpan(ctx, "monitor", "decide")
	defer span.End()

	degraded := ""
	if p := m.degraded.Load(); p != nil {
		degraded = *p
	}

	// The verdict itself comes from the extracted Policy rule — the same
	// value a fleet session applies — so the single-desktop Monitor and
	// internal/fleet can never drift apart on decision semantics.
	pol := Policy{Threshold: m.threshold, Force: m.force, Enforce: m.enforce}
	verdict, reason := pol.Evaluate(Query{
		OpTime:   opTime,
		Stamp:    stamp,
		Degraded: degraded,
		Exists:   exists,
		Disabled: disabled,
	})

	isDegraded := pol.DegradedDenial(degraded)
	d := Decision{PID: pid, Op: op, OpTime: opTime, Stamp: stamp, Verdict: verdict, Reason: reason, Degraded: isDegraded}
	if m.probeEval.Wants(int64(pid)) {
		m.probeEval.Emit(probeEvent(probe.KindEvaluate, &d))
	}

	if verdict == VerdictGrant {
		m.stats.grants.Add(1)
	} else {
		m.stats.denials.Add(1)
		if isDegraded {
			m.stats.degradedDenials.Add(1)
		}
	}
	m.appendAudit(&d)
	if m.probeDecide.Wants(int64(pid)) {
		m.probeDecide.Emit(probeEvent(probe.KindDecide, &d))
	}
	alertFn := m.alertSink()
	oi := opIndex(op)
	sendAlert := alertFn != nil && (oi >= 0 && m.alertFast[oi] || oi < 0 && m.alertOps[op])
	if sendAlert {
		m.stats.alertsSent.Add(1)
	}

	if m.tel.Enabled() {
		span.AnnotateDecision(int64(pid), string(op), verdict.String(), reason)
		m.countDecision(op, verdict)
		if !stamp.IsZero() {
			// Distribution of stamp ages at decision time: the paper's δ
			// sweep (§V-A) in histogram form.
			m.observeStampAge(op, opTime.Sub(stamp))
		}
		m.tel.RecordDecision(span.Context(), "monitor", pid, string(op), verdict.String(), reason)
		if verdict == VerdictDeny {
			// Every denial trips the flight recorder: the dump's final
			// events carry the deny reason plus whatever preceded it
			// (injected faults, channel loss, stale stamps).
			m.tel.TripFlight(span.Context(), "monitor",
				"deny pid="+strconv.Itoa(pid)+" op="+string(op)+": "+reason)
		}
	}

	if sendAlert {
		alertFn(AlertRequest{PID: pid, Op: op, Time: opTime, Blocked: verdict == VerdictDeny, Degraded: isDegraded, Ctx: span.Context()})
	}
	return verdict
}

// RecordDenial appends an audit record for a denial decided *outside*
// the monitor — e.g. a sensitive-device open aborted by a transient
// kernel error. The fail-closed policy turns such failures into
// denials, and this method keeps them from being silent: every denial
// along the decision path leaves an audit record.
func (m *Monitor) RecordDenial(pid int, op Op, opTime time.Time, reason string) {
	m.RecordDenialCtx(telemetry.SpanContext{}, pid, op, opTime, reason)
}

// RecordDenialCtx is RecordDenial carrying the trace context of the
// failed operation.
func (m *Monitor) RecordDenialCtx(ctx telemetry.SpanContext, pid int, op Op, opTime time.Time, reason string) {
	stamp, _ := m.tasks.InteractionStamp(pid)
	d := Decision{PID: pid, Op: op, OpTime: opTime, Stamp: stamp, Verdict: VerdictDeny, Reason: reason}
	m.stats.denials.Add(1)
	m.appendAudit(&d)
	if m.probeDecide.Wants(int64(pid)) {
		m.probeDecide.Emit(probeEvent(probe.KindDecide, &d))
	}
	if m.tel.Enabled() {
		m.countDecision(op, VerdictDeny)
		m.mDenialsRecorded.Add(1)
		m.tel.TripFlight(ctx, "monitor",
			"deny pid="+strconv.Itoa(pid)+" op="+string(op)+": "+reason)
	}
}

// collectAudit gathers entries from the selected shards (all when
// pid < 0, else just pid's shard) and restores total order by sequence
// number.
func (m *Monitor) collectAudit(pid int) []auditEntry {
	var out []auditEntry
	for i := range m.audit {
		if pid >= 0 && i != int(uint(pid)&(auditShards-1)) {
			continue
		}
		sh := &m.audit[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			e := sh.ring[(sh.head+j)%m.auditCap]
			if pid < 0 || e.d.PID == pid {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Audit returns a merged copy of the audit log, oldest first.
func (m *Monitor) Audit() []Decision {
	entries := m.collectAudit(-1)
	out := make([]Decision, len(entries))
	for i, e := range entries {
		out[i] = e.d
	}
	return out
}

// AuditFor returns the audit records for one PID, oldest first.
func (m *Monitor) AuditFor(pid int) []Decision {
	if pid < 0 {
		return nil
	}
	entries := m.collectAudit(pid)
	if len(entries) == 0 {
		return nil
	}
	out := make([]Decision, len(entries))
	for i, e := range entries {
		out[i] = e.d
	}
	return out
}

// DroppedAudit reports how many audit records were evicted, summed
// across shards.
func (m *Monitor) DroppedAudit() uint64 {
	var total uint64
	for i := range m.audit {
		sh := &m.audit[i]
		sh.mu.Lock()
		total += sh.dropped
		sh.mu.Unlock()
	}
	return total
}

// StatsSnapshot returns a copy of the activity counters.
func (m *Monitor) StatsSnapshot() Stats {
	grants := m.stats.grants.Load()
	denials := m.stats.denials.Load()
	return Stats{
		Notifications:   m.stats.notifications.Load(),
		Queries:         grants + denials,
		Grants:          grants,
		Denials:         denials,
		AlertsSent:      m.stats.alertsSent.Load(),
		DegradedDenials: m.stats.degradedDenials.Load(),
	}
}

// ResetAudit clears the audit log (used between experiment phases).
func (m *Monitor) ResetAudit() {
	for i := range m.audit {
		sh := &m.audit[i]
		sh.mu.Lock()
		sh.head = 0
		sh.n = 0
		sh.dropped = 0
		sh.mu.Unlock()
	}
}
