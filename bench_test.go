package overhaul

// Table I benchmarks (testing.B form). Each paper row has a Baseline
// and an Overhaul benchmark; compare ns/op pairs to reproduce the
// overhead column. `go test -bench 'TableI' -benchmem` prints them all.
// The cmd/overhaul-bench binary runs the same workloads in the paper's
// loop form and prints the table directly.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/ipc"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

const (
	benchWireWork    = 2
	benchShmInterval = 64
)

// baselineKernel builds an unmodified kernel with a device node that is
// not registered with the permission monitor.
func baselineKernel(b *testing.B) (*kernel.Kernel, *kernel.Process, string) {
	b.Helper()
	clk := clock.System{}
	fsys := fs.New(clk)
	k, err := kernel.New(clk, fsys, kernel.Config{
		Monitor:          monitor.Config{Enforce: false},
		DeviceInitRounds: kernel.DefaultDeviceInitRounds,
		StorageRounds:    1,
	})
	if err != nil {
		b.Fatalf("kernel.New: %v", err)
	}
	if err := fsys.MkdirAll("/dev/snd", 0o755, fs.Root); err != nil {
		b.Fatalf("MkdirAll: %v", err)
	}
	const mic = "/dev/snd/pcmC0D0c"
	if err := fsys.Mknod(mic, "microphone", 0o666, fs.Root); err != nil {
		b.Fatalf("Mknod: %v", err)
	}
	if err := fsys.MkdirAll("/tmp/bonnie", 0o777, fs.Root); err != nil {
		b.Fatalf("MkdirAll: %v", err)
	}
	proc, err := k.Spawn(kernel.SpawnSpec{Name: "bench", Exe: "/usr/bin/bench", Cred: fs.Root})
	if err != nil {
		b.Fatalf("Spawn: %v", err)
	}
	return k, proc, mic
}

// overhaulSystem builds the measured force-grant system with a
// registered microphone.
func overhaulSystem(b *testing.B) (*core.System, *kernel.Process, string) {
	b.Helper()
	sys, err := core.Boot(core.Options{
		Clock:            clock.System{},
		Enforce:          true,
		ForceGrant:       true,
		AlertSecret:      "bench",
		DeviceInitRounds: kernel.DefaultDeviceInitRounds,
		WireWork:         benchWireWork,
		StorageRounds:    1,
	})
	if err != nil {
		b.Fatalf("core.Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		b.Fatalf("Attach: %v", err)
	}
	if err := sys.FS.MkdirAll("/tmp/bonnie", 0o777, fs.Root); err != nil {
		b.Fatalf("MkdirAll: %v", err)
	}
	proc, err := sys.LaunchHeadless("bench")
	if err != nil {
		b.Fatalf("LaunchHeadless: %v", err)
	}
	return sys, proc, mic
}

func BenchmarkTableIDeviceAccessBaseline(b *testing.B) {
	k, proc, mic := baselineKernel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Open(proc, mic, fs.AccessRead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIDeviceAccessOverhaul(b *testing.B) {
	sys, proc, mic := overhaulSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Kernel.Open(proc, mic, fs.AccessRead); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClipboard prepares a clipboard pair on srv and returns a per-op
// paste function.
func benchClipboard(b *testing.B, srv *xserver.Server) func() error {
	b.Helper()
	src, err := srv.Connect(9001, "src")
	if err != nil {
		b.Fatalf("Connect: %v", err)
	}
	tgt, err := srv.Connect(9002, "tgt")
	if err != nil {
		b.Fatalf("Connect: %v", err)
	}
	srcWin, err := src.CreateWindow(0, 0, 10, 10)
	if err != nil {
		b.Fatalf("CreateWindow: %v", err)
	}
	tgtWin, err := tgt.CreateWindow(20, 0, 10, 10)
	if err != nil {
		b.Fatalf("CreateWindow: %v", err)
	}
	if err := src.MapWindow(srcWin); err != nil {
		b.Fatalf("MapWindow: %v", err)
	}
	if err := tgt.MapWindow(tgtWin); err != nil {
		b.Fatalf("MapWindow: %v", err)
	}
	if err := src.SetSelection("CLIPBOARD", srcWin); err != nil {
		b.Fatalf("SetSelection: %v", err)
	}
	payload := []byte(strings.Repeat("x", 256))
	return func() error {
		if err := tgt.ConvertSelection("CLIPBOARD", "UTF8_STRING", "P", tgtWin); err != nil {
			return err
		}
		req, ok := src.NextEvent()
		for ok && req.Type != xserver.SelectionRequest {
			req, ok = src.NextEvent()
		}
		if !ok {
			return fmt.Errorf("no SelectionRequest")
		}
		if err := src.ChangeProperty(req.Requestor, req.Property, payload); err != nil {
			return err
		}
		notify := xserver.Event{Type: xserver.SelectionNotify, Selection: "CLIPBOARD", Target: req.Target, Property: req.Property}
		if err := src.SendEvent(req.Requestor, notify); err != nil {
			return err
		}
		ev, ok := tgt.NextEvent()
		for ok && ev.Type != xserver.SelectionNotify {
			ev, ok = tgt.NextEvent()
		}
		if !ok {
			return fmt.Errorf("no SelectionNotify")
		}
		if _, err := tgt.GetProperty(req.Requestor, req.Property); err != nil {
			return err
		}
		return tgt.DeleteProperty(req.Requestor, req.Property)
	}
}

func BenchmarkTableIClipboardBaseline(b *testing.B) {
	srv, err := xserver.NewServer(clock.System{}, nil, xserver.Config{WireWork: benchWireWork})
	if err != nil {
		b.Fatalf("NewServer: %v", err)
	}
	paste := benchClipboard(b, srv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := paste(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIClipboardOverhaul(b *testing.B) {
	sys, _, _ := overhaulSystem(b)
	paste := benchClipboard(b, sys.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := paste(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDesktop fills srv with window content and returns a shooter.
func benchDesktop(b *testing.B, srv *xserver.Server) *xserver.Client {
	b.Helper()
	content := []byte(strings.Repeat("p", 64*1024))
	for i := 0; i < 3; i++ {
		c, err := srv.Connect(8000+i, fmt.Sprintf("app%d", i))
		if err != nil {
			b.Fatalf("Connect: %v", err)
		}
		win, err := c.CreateWindow(i*300, 0, 200, 200)
		if err != nil {
			b.Fatalf("CreateWindow: %v", err)
		}
		if err := c.MapWindow(win); err != nil {
			b.Fatalf("MapWindow: %v", err)
		}
		if err := c.Draw(win, content); err != nil {
			b.Fatalf("Draw: %v", err)
		}
	}
	shooter, err := srv.Connect(8100, "shooter")
	if err != nil {
		b.Fatalf("Connect: %v", err)
	}
	return shooter
}

func BenchmarkTableIScreenCaptureBaseline(b *testing.B) {
	srv, err := xserver.NewServer(clock.System{}, nil, xserver.Config{WireWork: benchWireWork})
	if err != nil {
		b.Fatalf("NewServer: %v", err)
	}
	shooter := benchDesktop(b, srv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shooter.GetImage(xserver.Root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIScreenCaptureOverhaul(b *testing.B) {
	sys, _, _ := overhaulSystem(b)
	shooter := benchDesktop(b, sys.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shooter.GetImage(xserver.Root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableISharedMemoryBaseline(b *testing.B) {
	shm, err := ipc.NewSharedMem(nil, clock.System{}, 2048, 0)
	if err != nil {
		b.Fatalf("NewSharedMem: %v", err)
	}
	m := shm.Map(1)
	size := shm.Size()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write((i*64)%(size-8), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableISharedMemoryOverhaul(b *testing.B) {
	sys, proc, _ := overhaulSystem(b)
	shm, err := sys.Kernel.NewSharedMem(2048)
	if err != nil {
		b.Fatalf("NewSharedMem: %v", err)
	}
	shm.SetCheckInterval(benchShmInterval)
	m := shm.Map(proc.PID())
	size := shm.Size()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write((i*64)%(size-8), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIFilesystemBaseline(b *testing.B) {
	k, proc, _ := baselineKernel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/tmp/bonnie/f%09d", i)
		h, err := k.Create(proc, path, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := k.Unlink(proc, path); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkTableIFilesystemOverhaul(b *testing.B) {
	sys, proc, _ := overhaulSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/tmp/bonnie/f%09d", i)
		h, err := sys.Kernel.Create(proc, path, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sys.Kernel.Unlink(proc, path); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// --- micro-benchmarks on the enforcement primitives -------------------------

func BenchmarkMicroMonitorDecide(b *testing.B) {
	sys, proc, _ := overhaulSystem(b)
	mon := sys.Kernel.Monitor()
	now := time.Now() //overhaul:allow clockcheck micro-benchmark decides against the live wall clock it booted with
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Decide(proc.PID(), monitor.OpMic, now)
	}
}

func BenchmarkMicroNetlinkRoundTrip(b *testing.B) {
	sys, proc, _ := overhaulSystem(b)
	_ = proc
	hub := sys.Hub()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Kernel-to-X alert round trip, the V_{A,op} path.
		if _, err := hub.CallUser(sys.XProcess().PID(), struct{}{}); err == nil {
			b.Fatal("unexpected accept of unknown message")
		}
	}
}

func BenchmarkMicroForkInheritance(b *testing.B) {
	_, proc, _ := overhaulSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := proc.Fork()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := child.Exit(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkMicroPipePropagation(b *testing.B) {
	sys, proc, _ := overhaulSystem(b)
	pipe := sys.Kernel.NewPipe()
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Write(proc.PID(), buf); err != nil {
			b.Fatal(err)
		}
		if _, err := pipe.Read(proc.PID(), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches: the design knobs DESIGN.md calls out -----------------

// BenchmarkAblationShmWait sweeps the shared-memory wait-list duration;
// shorter waits re-arm the guard more often, raising the fault rate and
// the per-write cost (§IV-B's performance/usability trade-off).
func BenchmarkAblationShmWait(b *testing.B) {
	for _, wait := range []time.Duration{time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		b.Run(wait.String(), func(b *testing.B) {
			sys, proc, _ := overhaulSystem(b)
			sys.Kernel.SetShmWait(wait)
			shm, err := sys.Kernel.NewSharedMem(64)
			if err != nil {
				b.Fatal(err)
			}
			m := shm.Map(proc.PID())
			payload := []byte{1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Write(i%1024, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(shm.StatsSnapshot().Faults), "faults")
		})
	}
}

// BenchmarkAblationShmCheckInterval sweeps the simulation's guard
// amortization to document its effect on the fast path.
func BenchmarkAblationShmCheckInterval(b *testing.B) {
	for _, interval := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("every-%d", interval), func(b *testing.B) {
			sys, proc, _ := overhaulSystem(b)
			shm, err := sys.Kernel.NewSharedMem(64)
			if err != nil {
				b.Fatal(err)
			}
			shm.SetCheckInterval(interval)
			m := shm.Map(proc.PID())
			payload := []byte{1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Write(i%1024, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAuditCapacity sweeps the decision-log ring size:
// larger rings raise GC scan cost in allocation-heavy workloads.
func BenchmarkAblationAuditCapacity(b *testing.B) {
	for _, capacity := range []int{256, 1024, 8192} {
		b.Run(fmt.Sprintf("cap-%d", capacity), func(b *testing.B) {
			clk := clock.System{}
			fsys := fs.New(clk)
			k, err := kernel.New(clk, fsys, kernel.Config{
				Monitor: monitor.Config{Enforce: true, ForceGrant: true, AuditCapacity: capacity},
			})
			if err != nil {
				b.Fatal(err)
			}
			proc, err := k.Spawn(kernel.SpawnSpec{Name: "p", Exe: "/p", Cred: fs.Root})
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now() //overhaul:allow clockcheck micro-benchmark decides against the live wall clock it booted with
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Monitor().Decide(proc.PID(), monitor.OpMic, now)
			}
		})
	}
}
