// Package app closes the cycle: it holds the audit log while taking
// the registry lock, the reverse of registry.Register's order.
package app

import (
	"lockfix/audit"
	"lockfix/registry"
)

// Drain snapshots under the log lock, then touches the registry.
func Drain(log *audit.Log, reg *registry.Registry) {
	log.Lock()
	defer log.Unlock()
	reg.Lock() // want "lock-order cycle"
	reg.Unlock()
}
