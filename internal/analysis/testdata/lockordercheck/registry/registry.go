// Package registry holds its own lock while appending to the audit
// log: the Registry→Log edge of the cycle, discovered through
// Append's Acquires fact rather than a visible Lock call.
package registry

import (
	"sync"

	"lockfix/audit"
)

// Registry embeds its mutex.
type Registry struct {
	sync.Mutex
	names map[string]int
}

// Register writes the registry and audits while holding it.
func (r *Registry) Register(log *audit.Log, name string) {
	r.Lock()
	defer r.Unlock()
	r.names[name]++
	log.Append(name) // want "lock-order cycle"
}
