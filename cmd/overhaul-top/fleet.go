package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/fleet"
	"overhaul/internal/monitor"
	"overhaul/internal/workload"
)

// fleetBase anchors the virtual fleet timeline. Fleet sessions carry no
// clock — every event supplies its own instant — so the replay is
// byte-for-byte reproducible like the single-system dashboard.
var fleetBase = time.Date(2016, time.March, 1, 9, 0, 0, 0, time.UTC)

// runFleet boots a fleet of n sessions, replays `events` deterministic
// mix-driven events into each, and renders the fleet console: aggregate
// totals plus the busiest sessions, or one session's detail with
// -session, or the whole aggregation as JSON. With storeDir set, every
// session additionally sinks its decisions into one durable store —
// the per-session ring keeps only the last 64 decisions, the store
// keeps them all — and the -session detail reads the durable trail.
func runFleet(n int, events int, mixName string, sessionFilter uint64, jsonOut bool, storeDir string) int {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	f, err := fleet.New(fleet.Config{Policy: monitor.Policy{Enforce: true}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	var store *auditstore.FileStore
	var sinkStats auditstore.SinkStats
	if storeDir != "" {
		if store, err = auditstore.Open(storeDir, auditstore.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		defer store.Close() //overhaul:allow errdrop console exit; the replay already synced every record
	}
	for i := 0; i < n; i++ {
		s := f.CreateSession()
		if store != nil {
			s.SetAuditSink(auditstore.SessionSink(store, s.ID(), &sinkStats))
		}
		pid, err := s.Spawn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		// Session i replays its stream on the shared virtual timeline;
		// the seed is the session index, so adding sessions never
		// changes earlier sessions' traffic.
		stream := mix.Stream(int64(i))
		at := fleetBase.UnixNano()
		for e := 0; e < events; e++ {
			ev := stream.Next()
			at += int64(ev.Gap)
			if ev.Notify {
				err = s.NotifyNanos(pid, at)
			} else {
				_, err = s.DecideNanos(pid, ev.Op, at)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "overhaul-top:", err)
				return 2
			}
		}
	}

	if store != nil && sinkStats.Errors.Load() > 0 {
		fmt.Fprintf(os.Stderr, "overhaul-top: %d of %d store appends failed\n",
			sinkStats.Errors.Load(), sinkStats.Appends.Load())
		return 2
	}

	if sessionFilter != 0 {
		return fleetSessionDetail(f, sessionFilter, store, jsonOut)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fleetSnapshotJSON(f)); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		return 0
	}
	fleetDashboard(f, mix.Name, events)
	if store != nil {
		if total, err := store.Count(); err == nil {
			fmt.Printf("store: %d decisions durable across %d sessions\n", total, n)
		}
	}
	return 0
}

// sessionRow is one session's line in the fleet table.
type sessionRow struct {
	ID           uint64             `json:"id"`
	Stats        fleet.SessionStats `json:"stats"`
	Degraded     bool               `json:"degraded"`
	LiveProcs    int                `json:"live_procs"`
	AuditRecords int                `json:"audit_records"`
}

// fleetJSON is the machine-readable fleet aggregation.
type fleetJSON struct {
	Fleet    fleet.FleetStats `json:"fleet"`
	Sessions []sessionRow     `json:"sessions"`
}

// collectRows snapshots every live session, sorted by session ID.
func collectRows(f *fleet.Fleet) []sessionRow {
	var rows []sessionRow
	f.ForEachSession(func(s *fleet.Session) {
		_, degraded := s.DegradedReason()
		rows = append(rows, sessionRow{
			ID:           s.ID(),
			Stats:        s.StatsSnapshot(),
			Degraded:     degraded,
			LiveProcs:    s.PIDCount(),
			AuditRecords: len(s.Audit()),
		})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows
}

func fleetSnapshotJSON(f *fleet.Fleet) fleetJSON {
	return fleetJSON{Fleet: f.StatsSnapshot(), Sessions: collectRows(f)}
}

// fleetDashboard renders the aggregate view: fleet-wide totals and the
// busiest sessions by denial count — the tenants the operator should
// look at first, since sustained denials are the malware signature.
func fleetDashboard(f *fleet.Fleet, mixName string, events int) {
	st := f.StatsSnapshot()
	fmt.Printf("== fleet (%d sessions, mix=%s, %d events/session) ==\n", st.Sessions, mixName, events)
	fmt.Printf("totals: %d notifications, %d grants, %d denials, %d spawns, %d exits, %d audit drops\n",
		st.Notifications, st.Grants, st.Denials, st.Spawns, st.Exits, st.DroppedAudit)
	if st.Grants+st.Denials > 0 {
		fmt.Printf("deny rate: %.1f%%\n", 100*float64(st.Denials)/float64(st.Grants+st.Denials))
	}

	rows := collectRows(f)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Stats.Denials > rows[j].Stats.Denials })
	const top = 10
	fmt.Printf("== top sessions by denials ==\n")
	fmt.Printf("%8s %8s %8s %8s %8s %6s\n", "SESSION", "NOTIFY", "GRANT", "DENY", "ALERTS", "DROPS")
	for i, r := range rows {
		if i == top {
			fmt.Printf("… %d more sessions (use -json for all, -session <id> for one)\n", len(rows)-top)
			break
		}
		fmt.Printf("%8d %8d %8d %8d %8d %6d\n",
			r.ID, r.Stats.Notifications, r.Stats.Grants, r.Stats.Denials, r.Stats.Alerts, r.Stats.DroppedAudit)
	}
}

// fleetSessionDetail renders one session: its counters and audit
// trail. With a store attached, the trail is the session's durable
// record — everything the bounded ring evicted included — queried by
// session ID; without one, it is the ring's recent tail.
func fleetSessionDetail(f *fleet.Fleet, id uint64, store *auditstore.FileStore, jsonOut bool) int {
	s, ok := f.Session(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "overhaul-top: no session %d in this fleet\n", id)
		return 1
	}
	audit := s.Audit()
	var durable []auditstore.Record
	if store != nil {
		var err error
		if durable, err = auditstore.ScanAll(store, auditstore.Query{Session: id}); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Session sessionRow          `json:"session"`
			Audit   []monitor.Decision  `json:"audit"`
			Durable []auditstore.Record `json:"durable,omitempty"`
		}{
			Session: sessionRow{ID: s.ID(), Stats: s.StatsSnapshot(), LiveProcs: s.PIDCount(), AuditRecords: len(audit)},
			Audit:   audit,
			Durable: durable,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		return 0
	}
	st := s.StatsSnapshot()
	fmt.Printf("== session %d ==\n", id)
	fmt.Printf("counters: %d notifications, %d grants, %d denials, %d alerts, %d spawns, %d exits\n",
		st.Notifications, st.Grants, st.Denials, st.Alerts, st.Spawns, st.Exits)
	if store != nil {
		fmt.Printf("durable trail (%d records; ring kept %d, evicted %d):\n",
			len(durable), len(audit), st.DroppedAudit)
		for _, r := range durable {
			printRecord(r)
		}
		return 0
	}
	fmt.Printf("audit (%d records kept, %d evicted):\n", len(audit), st.DroppedAudit)
	for _, d := range audit {
		verdict := "DENY "
		if d.Verdict == monitor.VerdictGrant {
			verdict = "GRANT"
		}
		fmt.Printf("  %s %-5s pid=%d op=%-5s %s\n",
			d.OpTime.Format("15:04:05.000"), verdict, d.PID, d.Op, d.Reason)
	}
	return 0
}
