package kernel

import (
	"fmt"
	"sync"
	"time"

	"overhaul/internal/fs"
	"overhaul/internal/ipc"
	"overhaul/internal/telemetry"
)

// ipcTables tracks named IPC resources: FIFOs by filesystem path, SysV
// shared-memory segments by key, and POSIX message queues by name.
type ipcTables struct {
	mu      sync.Mutex
	fifos   map[string]*ipc.Pipe
	shmSegs map[int]*ipc.SharedMem
	mqs     map[string]*ipc.MsgQueue
	shmWait time.Duration
}

func newIPCTables() *ipcTables {
	return &ipcTables{
		fifos:   make(map[string]*ipc.Pipe),
		shmSegs: make(map[int]*ipc.SharedMem),
		mqs:     make(map[string]*ipc.MsgQueue),
	}
}

// stampStore adapts the kernel process table to ipc.Stamps.
type stampStore Kernel

var _ ipc.Stamps = (*stampStore)(nil)

// Stamp implements ipc.Stamps.
func (s *stampStore) Stamp(pid int) (time.Time, bool) {
	return (*taskStore)(s).InteractionStamp(pid)
}

// Adopt implements ipc.Stamps.
func (s *stampStore) Adopt(pid int, t time.Time) {
	// Unknown processes are ignored: the sender may have exited
	// between embedding and delivery.
	_ = (*taskStore)(s).SetInteractionStamp(pid, t)
}

var _ ipc.SpanStamps = (*stampStore)(nil)

// StampSpan implements ipc.SpanStamps over the task struct's stamp
// span field.
func (s *stampStore) StampSpan(pid int) (telemetry.SpanContext, bool) {
	return (*taskStore)(s).InteractionSpan(pid)
}

// AdoptSpan implements ipc.SpanStamps: the stamp and the span that
// minted it install together, newest-wins (P2 carries both).
func (s *stampStore) AdoptSpan(pid int, t time.Time, ctx telemetry.SpanContext) {
	_ = (*taskStore)(s).SetInteractionStampSpan(pid, t, ctx)
}

// stamps returns the kernel's ipc.Stamps view, or nil when P2
// propagation is ablated (IPC objects treat nil as "no propagation").
func (k *Kernel) stamps() ipc.Stamps {
	if k.disableP2 { // immutable after New
		return nil
	}
	// Fault-hooked writes (PointStampWrite) can only lose updates,
	// leaving stamps older than reality — errors degrade toward denial.
	return ipc.FaultyStamps((*stampStore)(k), k.faults)
}

// SetShmWait overrides the shared-memory wait-list duration for
// subsequently created segments (ablation knob; default ipc.DefaultShmWait).
func (k *Kernel) SetShmWait(d time.Duration) {
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	k.ipc.shmWait = d
}

// NewPipe creates an anonymous pipe (pipe(2)).
func (k *Kernel) NewPipe() *ipc.Pipe {
	return ipc.NewPipe(k.stamps(), 0)
}

// Mkfifo creates a FIFO special file at path and registers the backing
// pipe object.
func (k *Kernel) Mkfifo(p *Process, path string, mode fs.Mode) error {
	if p == nil || !p.alive() {
		return fmt.Errorf("mkfifo %s: %w", path, ErrDeadProcess)
	}
	if err := k.fsys.Mkfifo(path, mode, p.Cred()); err != nil {
		return err
	}
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	k.ipc.fifos[path] = ipc.NewPipe(k.stamps(), 0)
	return nil
}

// OpenFIFO opens the FIFO at path, applying UNIX permission checks, and
// returns the shared pipe object.
func (k *Kernel) OpenFIFO(p *Process, path string, access fs.Access) (*ipc.Pipe, error) {
	if p == nil || !p.alive() {
		return nil, fmt.Errorf("open fifo %s: %w", path, ErrDeadProcess)
	}
	h, err := k.fsys.Open(path, access, p.Cred())
	if err != nil {
		return nil, err
	}
	if h.Kind() != fs.KindFIFO {
		return nil, fmt.Errorf("open fifo %s: not a fifo", path)
	}
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	pipe, ok := k.ipc.fifos[path]
	if !ok {
		return nil, fmt.Errorf("open fifo %s: no backing object", path)
	}
	return pipe, nil
}

// NewSocketPair creates a connected UNIX domain socket pair
// (socketpair(2)).
func (k *Kernel) NewSocketPair() *ipc.SocketPair {
	return ipc.NewSocketPair(k.stamps())
}

// NewMsgQueue creates a POSIX (mq_open) or SysV (msgget) message queue.
func (k *Kernel) NewMsgQueue(flavor ipc.QueueFlavor, capacity int) *ipc.MsgQueue {
	return ipc.NewMsgQueue(k.stamps(), flavor, capacity)
}

// NewSharedMem creates a shared-memory segment (shm_open/shmget) of the
// given page count, guarded by the fault-interception machinery.
func (k *Kernel) NewSharedMem(pages int) (*ipc.SharedMem, error) {
	k.ipc.mu.Lock()
	wait := k.ipc.shmWait
	k.ipc.mu.Unlock()
	seg, err := ipc.NewSharedMem(k.stamps(), k.clk, pages, wait)
	if err != nil {
		return nil, err
	}
	seg.SetFaultHook(k.faults)
	return seg, nil
}

// NewPty allocates a pseudo-terminal pair (posix_openpt).
func (k *Kernel) NewPty() *ipc.Pty {
	return ipc.NewPty(k.stamps())
}

// ShmGet is the SysV shmget(2) interface: it returns the segment
// registered under key, creating it with the given page count when
// absent. Every process attaching by key shares one kernel object, so
// stamp propagation spans unrelated processes exactly as on Linux.
func (k *Kernel) ShmGet(key, pages int) (*ipc.SharedMem, error) {
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	if seg, ok := k.ipc.shmSegs[key]; ok {
		return seg, nil
	}
	seg, err := ipc.NewSharedMem(k.stamps(), k.clk, pages, k.ipc.shmWait)
	if err != nil {
		return nil, fmt.Errorf("shmget key %d: %w", key, err)
	}
	seg.SetFaultHook(k.faults)
	k.ipc.shmSegs[key] = seg
	return seg, nil
}

// ShmRemove is shmctl(IPC_RMID): it destroys the keyed segment.
func (k *Kernel) ShmRemove(key int) error {
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	seg, ok := k.ipc.shmSegs[key]
	if !ok {
		return fmt.Errorf("shmctl key %d: %w", key, ErrNoSuchProcess)
	}
	delete(k.ipc.shmSegs, key)
	return seg.Remove()
}

// MqOpen is the POSIX mq_open(3) interface: it returns the queue
// registered under name, creating it when absent.
func (k *Kernel) MqOpen(name string, capacity int) (*ipc.MsgQueue, error) {
	if name == "" || name[0] != '/' {
		return nil, fmt.Errorf("mq_open %q: name must start with '/'", name)
	}
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	if q, ok := k.ipc.mqs[name]; ok {
		return q, nil
	}
	q := ipc.NewMsgQueue(k.stamps(), ipc.FlavorPOSIX, capacity)
	k.ipc.mqs[name] = q
	return q, nil
}

// MqUnlink is mq_unlink(3): it removes the named queue.
func (k *Kernel) MqUnlink(name string) error {
	k.ipc.mu.Lock()
	defer k.ipc.mu.Unlock()
	q, ok := k.ipc.mqs[name]
	if !ok {
		return fmt.Errorf("mq_unlink %q: %w", name, ErrNoSuchProcess)
	}
	delete(k.ipc.mqs, name)
	return q.Remove()
}
