package devfs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzMappingCodec drives arbitrary bytes through the helper→kernel
// mapping-protocol decoder. The seam's contract under fuzzing:
//
//   - malformed input returns an error — never a panic;
//   - anything the decoder accepts satisfies every protocol invariant
//     (sensitive class on map, no class on unmap, strict device path);
//   - accepted messages round-trip byte-identically through Encode,
//     so the decoder cannot launder an untrusted name into a mapping
//     the trusted helper could not itself have produced.
func FuzzMappingCodec(f *testing.F) {
	f.Add([]byte(ProtocolMagic + " map /dev/video0 camera"))
	f.Add([]byte(ProtocolMagic + " unmap /dev/video0"))
	f.Add([]byte(ProtocolMagic + " map /dev/snd/pcmC0D0c microphone"))
	f.Add([]byte(ProtocolMagic + " map /dev/../etc/passwd camera"))
	f.Add([]byte(ProtocolMagic + " map /dev/video0 keyboard"))
	f.Add([]byte(ProtocolMagic + " unmap /dev/video0 camera"))
	f.Add([]byte("overhaul-devd/0 map /dev/video0 camera"))
	f.Add([]byte(ProtocolMagic + " map /dev/vid\x00eo0 camera"))
	f.Add([]byte(ProtocolMagic + "  map /dev/video0 camera"))
	f.Add([]byte(strings.Repeat("A", maxMsgLen+1)))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMapping(data)
		if err != nil {
			if m != (MappingMsg{}) {
				t.Fatalf("decode error %v but non-zero message %+v", err, m)
			}
			return
		}

		// Accepted ⇒ every invariant of the trusted protocol holds.
		switch m.Op {
		case OpMap:
			if !isSensitive(m.Class) {
				t.Fatalf("decoder accepted non-sensitive class %q from %q", m.Class, data)
			}
		case OpUnmap:
			if m.Class != "" {
				t.Fatalf("decoder accepted unmap with class %q from %q", m.Class, data)
			}
		default:
			t.Fatalf("decoder accepted unknown op %q from %q", m.Op, data)
		}
		if !validDevicePath(m.Path) {
			t.Fatalf("decoder accepted untrusted path %q from %q", m.Path, data)
		}

		// Accepted ⇒ canonical: re-encoding reproduces the input, so
		// no two distinct wire forms decode to the same mapping.
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted message %+v does not re-encode: %v", m, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip mismatch: decoded %+v, re-encoded %q from %q", m, enc, data)
		}
	})
}

// FuzzMappingEncode drives arbitrary field values through Encode: it
// must refuse anything invalid, and everything it emits must decode
// back to the identical message.
func FuzzMappingEncode(f *testing.F) {
	f.Add("map", "/dev/video0", "camera")
	f.Add("unmap", "/dev/video0", "")
	f.Add("map", "/dev/snd/pcmC0D0c", "microphone")
	f.Add("map", "/dev/a b", "camera")
	f.Add("map", "/etc/passwd", "camera")
	f.Add("format", "/dev/video0", "camera")

	f.Fuzz(func(t *testing.T, op, path, class string) {
		m := MappingMsg{Op: op, Path: path, Class: Class(class)}
		enc, err := m.Encode()
		if err != nil {
			return
		}
		back, err := DecodeMapping(enc)
		if err != nil {
			t.Fatalf("Encode emitted undecodable %q: %v", enc, err)
		}
		if back != m {
			t.Fatalf("round trip mismatch: %+v → %q → %+v", m, enc, back)
		}
	})
}
