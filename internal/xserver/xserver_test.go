package xserver

import (
	"errors"
	"sync"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/monitor"
	"overhaul/internal/telemetry"
)

// fakePolicy is a miniature permission monitor: it records interaction
// notifications and answers queries by temporal proximity, with a 2 s
// threshold.
type fakePolicy struct {
	mu            sync.Mutex
	stamps        map[int]time.Time
	threshold     time.Duration
	notifications int
	queries       []monitor.Op
	failNotify    bool
}

func newFakePolicy() *fakePolicy {
	return &fakePolicy{stamps: make(map[int]time.Time), threshold: 2 * time.Second}
}

func (f *fakePolicy) NotifyInteraction(_ telemetry.SpanContext, pid int, t time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNotify {
		return errors.New("kernel unreachable")
	}
	f.notifications++
	if t.After(f.stamps[pid]) {
		f.stamps[pid] = t
	}
	return nil
}

func (f *fakePolicy) Query(_ telemetry.SpanContext, pid int, op monitor.Op, t time.Time) (monitor.Verdict, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queries = append(f.queries, op)
	stamp, ok := f.stamps[pid]
	if ok && !t.Before(stamp) && t.Sub(stamp) < f.threshold {
		return monitor.VerdictGrant, nil
	}
	return monitor.VerdictDeny, nil
}

func (f *fakePolicy) notificationCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.notifications
}

type xEnv struct {
	clk *clock.Simulated
	srv *Server
	pol *fakePolicy
}

func newXEnv(t *testing.T, protected bool) *xEnv {
	t.Helper()
	clk := clock.NewSimulated()
	var pol *fakePolicy
	var policy Policy
	if protected {
		pol = newFakePolicy()
		policy = pol
	}
	srv, err := NewServer(clk, policy, Config{AlertSecret: "tabby-cat"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return &xEnv{clk: clk, srv: srv, pol: pol}
}

// mapVisibleWindow creates, maps and ages a window past the visibility
// threshold so interaction notifications flow.
func (e *xEnv) mapVisibleWindow(t *testing.T, c *Client, x, y, w, h int) WindowID {
	t.Helper()
	id, err := c.CreateWindow(x, y, w, h)
	if err != nil {
		t.Fatalf("CreateWindow: %v", err)
	}
	if err := c.MapWindow(id); err != nil {
		t.Fatalf("MapWindow: %v", err)
	}
	e.clk.Advance(2 * DefaultVisibilityThreshold)
	return id
}

func (e *xEnv) connect(t *testing.T, pid int, name string) *Client {
	t.Helper()
	c, err := e.srv.Connect(pid, name)
	if err != nil {
		t.Fatalf("Connect(%s): %v", name, err)
	}
	return c
}

func TestHardwareClickDispatchAndNotify(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 100, "app")
	win := e.mapVisibleWindow(t, c, 10, 10, 200, 100)

	got := e.srv.HardwareClick(50, 50)
	if got != win {
		t.Fatalf("click dispatched to %d, want %d", got, win)
	}
	ev, ok := c.NextEvent()
	if !ok || ev.Type != ButtonPress || ev.Provenance != FromHardware {
		t.Fatalf("event = %+v, ok=%v", ev, ok)
	}
	if e.pol.notificationCount() != 1 {
		t.Fatalf("notifications = %d, want 1", e.pol.notificationCount())
	}
}

func TestHardwareClickOutsideWindows(t *testing.T) {
	e := newXEnv(t, true)
	if got := e.srv.HardwareClick(5, 5); got != Root {
		t.Fatalf("click on empty screen dispatched to %d", got)
	}
	if e.pol.notificationCount() != 0 {
		t.Fatal("notification generated for root click")
	}
}

func TestHardwareKeyGoesToFocus(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 100, "editor")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if err := c.SetFocus(win); err != nil {
		t.Fatalf("SetFocus: %v", err)
	}
	if got := e.srv.HardwareKey("ctrl+v"); got != win {
		t.Fatalf("key to %d, want %d", got, win)
	}
	ev, ok := c.NextEvent()
	if !ok || ev.Type != KeyPress || ev.Key != "ctrl+v" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestStackingTopmostWindowWins(t *testing.T) {
	e := newXEnv(t, true)
	bottom := e.connect(t, 1, "bottom")
	top := e.connect(t, 2, "top")
	bWin := e.mapVisibleWindow(t, bottom, 0, 0, 100, 100)
	tWin := e.mapVisibleWindow(t, top, 0, 0, 100, 100)

	if got := e.srv.HardwareClick(50, 50); got != tWin {
		t.Fatalf("click to %d, want topmost %d", got, tWin)
	}
	// Raising the bottom window flips the order.
	if err := bottom.RaiseWindow(bWin); err != nil {
		t.Fatalf("RaiseWindow: %v", err)
	}
	if got := e.srv.HardwareClick(50, 50); got != bWin {
		t.Fatalf("click to %d after raise, want %d", got, bWin)
	}
}

func TestClickjackingVisibilityThreshold(t *testing.T) {
	// A malicious client maps a window right before the user clicks:
	// the event is delivered, but no interaction notification may be
	// generated (S3).
	e := newXEnv(t, true)
	mal := e.connect(t, 666, "clickjacker")
	win, err := mal.CreateWindow(0, 0, 500, 500)
	if err != nil {
		t.Fatalf("CreateWindow: %v", err)
	}
	if err := mal.MapWindow(win); err != nil {
		t.Fatalf("MapWindow: %v", err)
	}
	e.clk.Advance(100 * time.Millisecond) // below the 1 s threshold

	if got := e.srv.HardwareClick(10, 10); got != win {
		t.Fatalf("click to %d, want %d", got, win)
	}
	if _, ok := mal.NextEvent(); !ok {
		t.Fatal("event not delivered")
	}
	if e.pol.notificationCount() != 0 {
		t.Fatal("notification generated for a freshly-mapped window")
	}

	// Once the window has been visible long enough, notifications flow.
	e.clk.Advance(2 * time.Second)
	e.srv.HardwareClick(10, 10)
	if e.pol.notificationCount() != 1 {
		t.Fatalf("notifications = %d, want 1", e.pol.notificationCount())
	}
}

func TestUnmapRemapResetsVisibilityClock(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 5, "flasher")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	// Hide, wait, pop up over the cursor, catch the click.
	if err := c.UnmapWindow(win); err != nil {
		t.Fatalf("UnmapWindow: %v", err)
	}
	e.clk.Advance(10 * time.Second)
	if err := c.MapWindow(win); err != nil {
		t.Fatalf("MapWindow: %v", err)
	}
	e.clk.Advance(50 * time.Millisecond)
	e.srv.HardwareClick(10, 10)
	if e.pol.notificationCount() != 0 {
		t.Fatal("pop-over window earned a notification")
	}
}

func TestSendEventForcedSynthetic(t *testing.T) {
	// S2: events injected via SendEvent carry the synthetic flag and
	// never produce interaction notifications.
	e := newXEnv(t, true)
	victim := e.connect(t, 10, "victim")
	mal := e.connect(t, 666, "malware")
	vWin := e.mapVisibleWindow(t, victim, 0, 0, 100, 100)

	if err := mal.SendEvent(vWin, Event{Type: KeyPress, Key: "a"}); err != nil {
		t.Fatalf("SendEvent: %v", err)
	}
	ev, ok := victim.NextEvent()
	if !ok {
		t.Fatal("no event delivered")
	}
	if !ev.Synthetic || ev.Provenance != FromSendEvent {
		t.Fatalf("event = %+v, want synthetic send-event", ev)
	}
	if e.pol.notificationCount() != 0 {
		t.Fatal("synthetic event produced an interaction notification")
	}
	if s := e.srv.StatsSnapshot(); s.SyntheticBlocked == 0 {
		t.Fatal("synthetic input not counted as blocked")
	}
}

func TestXTestTaggedNotTrusted(t *testing.T) {
	// S2: XTest carries no wire flag, so the server tags provenance.
	e := newXEnv(t, true)
	victim := e.connect(t, 10, "victim")
	mal := e.connect(t, 666, "malware")
	vWin := e.mapVisibleWindow(t, victim, 0, 0, 100, 100)

	got, err := mal.XTestFakeInput(Event{Type: ButtonPress, X: 10, Y: 10})
	if err != nil {
		t.Fatalf("XTestFakeInput: %v", err)
	}
	if got != vWin {
		t.Fatalf("xtest dispatched to %d, want %d", got, vWin)
	}
	ev, ok := victim.NextEvent()
	if !ok || ev.Provenance != FromXTest {
		t.Fatalf("event = %+v, want xtest provenance", ev)
	}
	if ev.Synthetic {
		t.Fatal("xtest events carry no wire-level synthetic flag")
	}
	if e.pol.notificationCount() != 0 {
		t.Fatal("xtest event produced an interaction notification")
	}
}

func TestXTestKeyToFocus(t *testing.T) {
	e := newXEnv(t, true)
	app := e.connect(t, 10, "app")
	win := e.mapVisibleWindow(t, app, 0, 0, 100, 100)
	if err := app.SetFocus(win); err != nil {
		t.Fatalf("SetFocus: %v", err)
	}
	mal := e.connect(t, 666, "malware")
	got, err := mal.XTestFakeInput(Event{Type: KeyPress, Key: "x"})
	if err != nil || got != win {
		t.Fatalf("XTestFakeInput = %d, %v", got, err)
	}
	if _, err := mal.XTestFakeInput(Event{Type: SelectionNotify}); err == nil {
		t.Fatal("non-input xtest event accepted")
	}
}

func TestNotifyFailureFailsClosed(t *testing.T) {
	e := newXEnv(t, true)
	e.pol.failNotify = true
	c := e.connect(t, 10, "app")
	e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	e.srv.HardwareClick(10, 10)
	// Event still delivered; notification did not count.
	if _, ok := c.NextEvent(); !ok {
		t.Fatal("event lost on kernel failure")
	}
	if s := e.srv.StatsSnapshot(); s.Notifications != 0 {
		t.Fatalf("Notifications = %d, want 0", s.Notifications)
	}
}

func TestVanillaServerNoNotifications(t *testing.T) {
	e := newXEnv(t, false)
	c := e.connect(t, 10, "app")
	e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	e.srv.HardwareClick(10, 10)
	if e.srv.Protected() {
		t.Fatal("vanilla server claims protection")
	}
	if s := e.srv.StatsSnapshot(); s.Notifications != 0 || s.Queries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWindowOwnershipEnforced(t *testing.T) {
	e := newXEnv(t, true)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	win := e.mapVisibleWindow(t, a, 0, 0, 100, 100)

	if err := b.MapWindow(win); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign MapWindow = %v", err)
	}
	if err := b.UnmapWindow(win); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign UnmapWindow = %v", err)
	}
	if err := b.RaiseWindow(win); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign RaiseWindow = %v", err)
	}
	if err := b.SetFocus(win); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign SetFocus = %v", err)
	}
	if err := b.Draw(win, []byte("x")); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign Draw = %v", err)
	}
}

func TestBadWindowErrors(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	if err := c.MapWindow(999); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("MapWindow(999) = %v", err)
	}
	if _, err := c.CreateWindow(0, 0, 0, 10); !errors.Is(err, ErrBadMatch) {
		t.Fatalf("zero-width CreateWindow = %v", err)
	}
}

func TestClientCloseCleansUp(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("double Close = %v", err)
	}
	if _, err := c.CreateWindow(0, 0, 1, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("CreateWindow after close = %v", err)
	}
	// The window is gone: clicks land on root.
	if got := e.srv.HardwareClick(10, 10); got != Root {
		t.Fatalf("click to %d after owner closed (win %d)", got, win)
	}
	if len(e.srv.WindowIDs()) != 0 {
		t.Fatal("window survived owner disconnect")
	}
}

func TestAlertsOverlay(t *testing.T) {
	e := newXEnv(t, true)
	a := e.srv.ShowAlert(monitor.AlertRequest{PID: 42, Op: monitor.OpMic, Time: e.clk.Now()})
	if a.Message == "" || a.Secret != "tabby-cat" {
		t.Fatalf("alert = %+v", a)
	}
	if !e.srv.AuthenticAlert(a) {
		t.Fatal("authentic alert rejected")
	}
	active := e.srv.ActiveAlerts()
	if len(active) != 1 {
		t.Fatalf("active = %d", len(active))
	}
	// Alerts expire after the configured duration.
	e.clk.Advance(DefaultAlertDuration + time.Second)
	if len(e.srv.ActiveAlerts()) != 0 {
		t.Fatal("alert did not expire")
	}
	if len(e.srv.AlertHistory()) != 1 {
		t.Fatal("history lost the alert")
	}
}

func TestForgedAlertLacksSecret(t *testing.T) {
	// A malicious client can draw a window that looks like an alert,
	// but it cannot know the visual shared secret.
	e := newXEnv(t, true)
	forged := Alert{Message: "Application [pid 1] is using the camera", Secret: "guess"}
	if e.srv.AuthenticAlert(forged) {
		t.Fatal("forged alert authenticated")
	}
}

func TestAlertMessageWording(t *testing.T) {
	tests := []struct {
		op   monitor.Op
		want string
	}{
		{monitor.OpMic, "Application [pid 7] is recording from the microphone"},
		{monitor.OpCam, "Application [pid 7] is using the camera"},
		{monitor.OpScreen, "Application [pid 7] captured the screen"},
		{monitor.OpCopy, "Application [pid 7] copied to the clipboard"},
		{monitor.OpPaste, "Application [pid 7] read the clipboard"},
		{monitor.OpOther, "Application [pid 7] accessed a protected device (dev)"},
	}
	for _, tt := range tests {
		if got := alertMessage(7, tt.op, false, false); got != tt.want {
			t.Errorf("alertMessage(%s) = %q, want %q", tt.op, got, tt.want)
		}
	}
	blocked := alertMessage(7, monitor.OpCam, true, false)
	if blocked != "Application [pid 7] was blocked from using the camera" {
		t.Errorf("blocked alertMessage = %q", blocked)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, Config{}); err == nil {
		t.Fatal("NewServer(nil clock) succeeded")
	}
	if _, err := NewServer(clock.NewSimulated(), nil, Config{Width: -1}); err == nil {
		t.Fatal("negative screen accepted")
	}
	if _, err := NewServer(clock.NewSimulated(), nil, Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	e := newXEnv(t, true)
	if _, err := e.srv.Connect(1, ""); err == nil {
		t.Fatal("empty client name accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if KeyPress.String() != "KeyPress" || SelectionNotify.String() != "SelectionNotify" {
		t.Fatal("event type strings wrong")
	}
	if FromHardware.String() != "hardware" || FromXTest.String() != "xtest" {
		t.Fatal("provenance strings wrong")
	}
	if EventType(99).String() == "" || Provenance(99).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}

func TestClientNamesSorted(t *testing.T) {
	e := newXEnv(t, true)
	e.connect(t, 1, "zeta")
	e.connect(t, 2, "alpha")
	names := e.srv.ClientNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestDrainEvents(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	_ = win
	e.srv.HardwareClick(10, 10)
	e.srv.HardwareClick(20, 20)
	if c.PendingEvents() != 2 {
		t.Fatalf("pending = %d", c.PendingEvents())
	}
	evs := c.DrainEvents()
	if len(evs) != 2 || c.PendingEvents() != 0 {
		t.Fatalf("drained %d, pending %d", len(evs), c.PendingEvents())
	}
}
