// Clipboard-guard: a password manager copies a credential; the user
// pastes it into an email client through the full X11 selection
// protocol; a background sniffer polling the clipboard is refused —
// the attack the paper demonstrates against password managers.
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
	"overhaul/internal/apps"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clipboard-guard:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := overhaul.New(overhaul.Config{Enforce: true, AlertSecret: "tabby-cat"})
	if err != nil {
		return err
	}

	pw, err := apps.NewEditor(sys, "keepassx")
	if err != nil {
		return err
	}
	mail, err := apps.NewEditor(sys, "thunderbird")
	if err != nil {
		return err
	}
	sys.Settle(2 * time.Second)

	// The user copies the password (ctrl+c in the password manager).
	if err := pw.Copy([]byte("correct horse battery staple")); err != nil {
		return err
	}
	fmt.Println("password manager: credential copied")

	// A background sniffer with no user input polls the clipboard.
	sniffer, err := sys.Launch("clipboard-sniffer")
	if err != nil {
		return err
	}
	sys.Settle(2 * time.Second)
	err = sniffer.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "LOOT", sniffer.Win)
	fmt.Println("sniffer poll    :", err)

	// The user pastes into the email client (ctrl+v): granted.
	got, err := mail.Paste(pw)
	if err != nil {
		return fmt.Errorf("legitimate paste should succeed: %w", err)
	}
	fmt.Printf("email client    : pasted %q\n", got)

	// The audit log shows the denied sniff and the granted copy/paste.
	fmt.Println("\naudit log:")
	for _, d := range sys.Audit() {
		fmt.Printf("  pid=%-3d op=%-5s verdict=%-5s %s\n", d.PID, d.Op, d.Verdict, d.Reason)
	}
	return nil
}
