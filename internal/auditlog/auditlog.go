// Package auditlog renders the permission monitor's decision log to the
// simulated filesystem, the way the paper's prototype logs to disk —
// §V-C verifies clipboard behaviour "by inspecting the logs produced by
// our system" and §V-D checks "OVERHAUL's logs to see which applications
// were granted access". The log file is superuser-owned and
// world-readable, like a syslog.
package auditlog

import (
	"errors"
	"fmt"
	"strings"

	"overhaul/internal/fs"
	"overhaul/internal/monitor"
)

// Path is the conventional log location.
const Path = "/var/log/overhaul.log"

// ErrNilArgs is returned for missing dependencies.
var ErrNilArgs = errors.New("auditlog: nil filesystem or monitor")

// Writer persists monitor decisions to the filesystem.
type Writer struct {
	fsys *fs.FS
	mon  *monitor.Monitor
	path string
}

// NewWriter builds a writer targeting the conventional path.
func NewWriter(fsys *fs.FS, mon *monitor.Monitor) (*Writer, error) {
	return NewWriterAt(fsys, mon, Path)
}

// NewWriterAt builds a writer targeting an explicit log path (chaos
// campaigns log per-run files alongside the conventional one).
func NewWriterAt(fsys *fs.FS, mon *monitor.Monitor, path string) (*Writer, error) {
	if fsys == nil || mon == nil {
		return nil, ErrNilArgs
	}
	if path == "" {
		path = Path
	}
	if err := fsys.MkdirAll("/var/log", 0o755, fs.Root); err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	return &Writer{fsys: fsys, mon: mon, path: path}, nil
}

// FormatDecision renders one audit record as a log line. Denials
// issued in degraded (fail-closed) mode carry an extra marker so the
// logs distinguish "policy said no" from "enforcement was broken, so
// everything said no"; ordinary records render exactly as before.
func FormatDecision(d monitor.Decision) string {
	line := fmt.Sprintf("%s overhaul: pid=%d op=%s verdict=%s stamp=%s reason=%q",
		d.OpTime.Format("2006-01-02T15:04:05.000Z07:00"),
		d.PID, d.Op, d.Verdict,
		d.Stamp.Format("15:04:05.000"),
		d.Reason)
	if d.Degraded {
		line += " degraded=1"
	}
	return line
}

// Flush writes the monitor's current audit log to the file, replacing
// previous content, and returns the number of records written.
func (w *Writer) Flush() (int, error) {
	decisions := w.mon.Audit()
	var b strings.Builder
	for _, d := range decisions {
		b.WriteString(FormatDecision(d))
		b.WriteByte('\n')
	}
	if err := w.fsys.WriteFile(w.path, []byte(b.String()), 0o644, fs.Root); err != nil {
		return 0, fmt.Errorf("auditlog: %w", err)
	}
	return len(decisions), nil
}

// Read returns the current log content (any user may read it).
func (w *Writer) Read(cred fs.Cred) ([]string, error) {
	data, err := w.fsys.ReadFile(w.path, cred)
	if err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	content := strings.TrimRight(string(data), "\n")
	if content == "" {
		return nil, nil
	}
	return strings.Split(content, "\n"), nil
}

// Grep returns log lines containing the substring.
func (w *Writer) Grep(cred fs.Cred, substr string) ([]string, error) {
	lines, err := w.Read(cred)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, l := range lines {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return out, nil
}
