// Package xproto implements a compact binary wire protocol for the
// display server — the request/reply framing an out-of-process X client
// would actually speak. The simulation's clients normally call the
// server's Go API directly; this codec exists so the protocol layer can
// be exercised the way the paper's modified X.Org is: byte streams
// arriving from untrusted clients, decoded, validated, and dispatched.
// It also gives the fuzzer a realistic attack surface.
//
// Framing: every message is
//
//	1 byte  opcode
//	4 bytes little-endian body length
//	body
//
// Strings are encoded as a 2-byte length followed by raw bytes; numeric
// fields are little-endian fixed width.
package xproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"overhaul/internal/xserver"
)

// Opcode identifies a request type.
type Opcode uint8

// Request opcodes.
const (
	OpCreateWindow Opcode = iota + 1
	OpMapWindow
	OpUnmapWindow
	OpConfigureWindow
	OpDraw
	OpSetSelection
	OpConvertSelection
	OpChangeProperty
	OpGetProperty
	OpDeleteProperty
	OpSendEvent
	OpGetImage
	OpCopyArea
)

// String names the opcode.
func (o Opcode) String() string {
	names := map[Opcode]string{
		OpCreateWindow:     "CreateWindow",
		OpMapWindow:        "MapWindow",
		OpUnmapWindow:      "UnmapWindow",
		OpConfigureWindow:  "ConfigureWindow",
		OpDraw:             "Draw",
		OpSetSelection:     "SetSelection",
		OpConvertSelection: "ConvertSelection",
		OpChangeProperty:   "ChangeProperty",
		OpGetProperty:      "GetProperty",
		OpDeleteProperty:   "DeleteProperty",
		OpSendEvent:        "SendEvent",
		OpGetImage:         "GetImage",
		OpCopyArea:         "CopyArea",
	}
	if n, ok := names[o]; ok {
		return n
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Codec errors.
var (
	ErrTruncated     = errors.New("xproto: truncated message")
	ErrBadOpcode     = errors.New("xproto: unknown opcode")
	ErrOversized     = errors.New("xproto: body exceeds limit")
	ErrTrailingBytes = errors.New("xproto: trailing bytes in body")
)

// MaxBody bounds a request body (64 KiB covers every legitimate use and
// stops allocation bombs).
const MaxBody = 64 * 1024

// Request is one decoded client request.
type Request struct {
	Op Opcode

	Window    xserver.WindowID // primary window operand
	Window2   xserver.WindowID // secondary (CopyArea dst, SendEvent dest)
	X, Y      int32
	W, H      int32
	Name      string // selection or property atom
	Target    string
	Property  string
	Data      []byte
	EventType uint8 // for SendEvent
}

// writeString encodes a length-prefixed string.
func writeString(b *bytes.Buffer, s string) {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	b.Write(l[:]) //overhaul:allow errdrop bytes.Buffer.Write cannot fail
	b.WriteString(s)
}

// readString decodes a length-prefixed string.
func readString(b *bytes.Reader) (string, error) {
	var l [2]byte
	if _, err := b.Read(l[:2]); err != nil {
		return "", ErrTruncated
	}
	n := int(binary.LittleEndian.Uint16(l[:]))
	if n > b.Len() {
		return "", ErrTruncated
	}
	buf := make([]byte, n)
	if _, err := b.Read(buf); err != nil {
		return "", ErrTruncated
	}
	return string(buf), nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:]) //overhaul:allow errdrop bytes.Buffer.Write cannot fail
}

func readU32(b *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := b.Read(tmp[:]); err != nil {
		return 0, ErrTruncated
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

// Encode serialises a request to wire format.
func Encode(req Request) []byte {
	var body bytes.Buffer
	writeU32(&body, uint32(req.Window))
	writeU32(&body, uint32(req.Window2))
	writeU32(&body, uint32(req.X))
	writeU32(&body, uint32(req.Y))
	writeU32(&body, uint32(req.W))
	writeU32(&body, uint32(req.H))
	writeString(&body, req.Name)
	writeString(&body, req.Target)
	writeString(&body, req.Property)
	body.WriteByte(req.EventType)
	writeU32(&body, uint32(len(req.Data)))
	body.Write(req.Data) //overhaul:allow errdrop bytes.Buffer.Write cannot fail

	out := make([]byte, 0, 5+body.Len())
	out = append(out, byte(req.Op))
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(body.Len()))
	out = append(out, l[:]...)
	return append(out, body.Bytes()...)
}

// Decode parses one wire message. It is total: any input yields either
// a valid Request or an error, never a panic.
func Decode(msg []byte) (Request, error) {
	if len(msg) < 5 {
		return Request{}, ErrTruncated
	}
	op := Opcode(msg[0])
	if op < OpCreateWindow || op > OpCopyArea {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOpcode, msg[0])
	}
	bodyLen := binary.LittleEndian.Uint32(msg[1:5])
	if bodyLen > MaxBody {
		return Request{}, fmt.Errorf("%w: %d bytes", ErrOversized, bodyLen)
	}
	if uint32(len(msg)-5) < bodyLen {
		return Request{}, ErrTruncated
	}
	body := bytes.NewReader(msg[5 : 5+bodyLen])

	var req Request
	req.Op = op
	win, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	win2, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	x, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	y, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	w, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	h, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	req.Window = xserver.WindowID(win)
	req.Window2 = xserver.WindowID(win2)
	req.X, req.Y, req.W, req.H = int32(x), int32(y), int32(w), int32(h)
	if req.Name, err = readString(body); err != nil {
		return Request{}, err
	}
	if req.Target, err = readString(body); err != nil {
		return Request{}, err
	}
	if req.Property, err = readString(body); err != nil {
		return Request{}, err
	}
	evType, err := body.ReadByte()
	if err != nil {
		return Request{}, ErrTruncated
	}
	req.EventType = evType
	dataLen, err := readU32(body)
	if err != nil {
		return Request{}, err
	}
	if int(dataLen) != body.Len() {
		return Request{}, fmt.Errorf("%w: data length %d vs %d remaining", ErrTrailingBytes, dataLen, body.Len())
	}
	req.Data = make([]byte, dataLen)
	if _, err := body.Read(req.Data); err != nil && dataLen > 0 {
		return Request{}, ErrTruncated
	}
	return req, nil
}
