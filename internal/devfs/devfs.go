// Package devfs implements the device filesystem layer: device classes,
// udev-style dynamic device naming, and the trusted helper that keeps
// the kernel's path→class mapping current.
//
// The paper (§IV-B, "Device mediation") notes that modern Linux assigns
// device names dynamically, so Overhaul relies on a trusted,
// superuser-owned helper that reacts to /dev changes and pushes the
// sensitive-device mapping to the kernel over an authenticated channel.
// This package reproduces that component: Attach/Detach simulate hotplug
// events, device names are allocated per-class exactly like udev's
// enumerated names (video0, video1, ...), and every mapping change is
// pushed to a MappingSink (the kernel's permission monitor in the full
// system).
package devfs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"overhaul/internal/faultinject"
	"overhaul/internal/fs"
)

// Class identifies a category of privacy-sensitive hardware.
type Class string

// Device classes protected by Overhaul. The paper's prototype protects
// the microphone and camera; the architecture supports arbitrary
// sensors, which we model with the extra classes.
const (
	ClassMicrophone Class = "microphone"
	ClassCamera     Class = "camera"
	ClassGPS        Class = "gps"
	ClassScanner    Class = "scanner"
)

// SensitiveClasses lists every class the helper treats as
// privacy-sensitive, in stable order.
func SensitiveClasses() []Class {
	return []Class{ClassCamera, ClassGPS, ClassMicrophone, ClassScanner}
}

// devDirFor returns the /dev subdirectory and name prefix udev would use
// for a class.
func devPrefixFor(c Class) (dir, prefix string) {
	switch c {
	case ClassMicrophone:
		return "/dev/snd", "pcmC"
	case ClassCamera:
		return "/dev", "video"
	case ClassGPS:
		return "/dev", "gps"
	case ClassScanner:
		return "/dev", "scanner"
	default:
		return "/dev", string(c)
	}
}

// Sentinel errors.
var (
	ErrUnknownDevice = errors.New("unknown device")
	ErrNotSensitive  = errors.New("class is not privacy-sensitive")
	// ErrHelperDown is returned while the trusted helper is crashed;
	// Restart brings it back.
	ErrHelperDown = errors.New("devfs: trusted helper is down")
)

// JournalPath is where the helper persists its device-class map (in
// the simulated filesystem) so a restart after a crash can rebuild it.
const JournalPath = "/var/run/overhaul-devd.journal"

// MappingSink receives path→class mapping updates from the trusted
// helper. In the assembled system the kernel permission monitor
// implements this; tests may use a fake.
type MappingSink interface {
	// UpdateMapping records that the device node at path belongs to
	// the given sensitive class.
	UpdateMapping(path string, class Class) error
	// RemoveMapping forgets the node at path.
	RemoveMapping(path string) error
}

// Helper is the trusted userspace helper: it owns device-node creation
// in /dev and mirrors the mapping into the kernel via the sink. It is
// safe for concurrent use.
type Helper struct {
	fsys *fs.FS
	sink MappingSink

	mu      sync.Mutex
	counter map[Class]int
	nodes   map[string]Class // path -> class
	down    bool             // crashed; Restart recovers
	faults  faultinject.Hook
}

// NewHelper creates the helper, ensuring the /dev hierarchy exists.
func NewHelper(fsys *fs.FS, sink MappingSink) (*Helper, error) {
	if fsys == nil {
		return nil, errors.New("devfs: nil filesystem")
	}
	if sink == nil {
		return nil, errors.New("devfs: nil mapping sink")
	}
	if err := fsys.MkdirAll("/dev/snd", 0o755, fs.Root); err != nil {
		return nil, fmt.Errorf("devfs: create /dev: %w", err)
	}
	if err := fsys.MkdirAll("/var/run", 0o755, fs.Root); err != nil {
		return nil, fmt.Errorf("devfs: create /var/run: %w", err)
	}
	return &Helper{
		fsys:    fsys,
		sink:    sink,
		counter: make(map[Class]int),
		nodes:   make(map[string]Class),
	}, nil
}

// SetFaultHook installs the fault-injection hook consulted at
// PointDevfsPush (mapping pushes to the kernel) and PointDevfsCrash
// (helper crash checkpoints mid-protocol). A nil hook disables
// injection.
func (h *Helper) SetFaultHook(hook faultinject.Hook) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults = hook
}

// crashLocked evaluates one crash checkpoint; if the fault fires the
// helper marks itself down and the caller must abort mid-operation,
// leaving whatever inconsistent state the checkpoint implies for
// Restart to reconcile. Requires h.mu held.
func (h *Helper) crashLocked(where string) error {
	if faultinject.Eval(h.faults, faultinject.PointDevfsCrash).Injected() {
		h.down = true
		return fmt.Errorf("%w: crashed %s", ErrHelperDown, where)
	}
	return nil
}

// push delivers one mapping update to the kernel through the wire
// codec, exercising encode → (fault point) → decode on every update
// exactly as the real helper's messages would traverse the channel.
// Requires h.mu held (the sink call is made while holding it; sinks
// must not call back into the helper).
func (h *Helper) pushLocked(m MappingMsg) error {
	wire, err := m.Encode()
	if err != nil {
		return err
	}
	if f := faultinject.Eval(h.faults, faultinject.PointDevfsPush); f.Kind == faultinject.KindError {
		return fmt.Errorf("devfs push %s %s: %w", m.Op, m.Path, f.Err)
	}
	decoded, err := DecodeMapping(wire)
	if err != nil {
		return err
	}
	if decoded.Op == OpMap {
		return h.sink.UpdateMapping(decoded.Path, decoded.Class)
	}
	return h.sink.RemoveMapping(decoded.Path)
}

// Down reports whether the helper is currently crashed.
func (h *Helper) Down() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// Crash forces the helper down (as if the process died), without
// touching any state. Used by chaos campaigns and tests.
func (h *Helper) Crash() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.down = true
}

// Attach simulates hotplug of a device of the given class: it allocates
// the next udev-style name, creates the device node (root-owned,
// world read/write like typical desktop audio/video nodes), and pushes
// the mapping to the kernel. It returns the allocated path.
func (h *Helper) Attach(class Class) (string, error) {
	if !isSensitive(class) {
		return "", fmt.Errorf("devfs attach %q: %w", class, ErrNotSensitive)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return "", fmt.Errorf("devfs attach %q: %w", class, ErrHelperDown)
	}
	if err := h.crashLocked("before mknod"); err != nil {
		return "", fmt.Errorf("devfs attach %q: %w", class, err)
	}

	dir, prefix := devPrefixFor(class)
	idx := h.counter[class]
	h.counter[class]++

	name := prefix + strconv.Itoa(idx)
	if class == ClassMicrophone {
		// ALSA capture-node convention: pcmC<card>D0c.
		name = prefix + strconv.Itoa(idx) + "D0c"
	}
	path := dir + "/" + name

	if err := h.fsys.Mknod(path, string(class), 0o666, fs.Root); err != nil {
		return "", fmt.Errorf("devfs attach %q: %w", class, err)
	}
	if err := h.crashLocked("after mknod, before push"); err != nil {
		// The node exists but the kernel was never told: Restart's
		// orphan scan will unlink it.
		return "", fmt.Errorf("devfs attach %q: %w", class, err)
	}
	if err := h.pushLocked(MappingMsg{Op: OpMap, Path: path, Class: class}); err != nil {
		// Roll back the node: a device the kernel does not know
		// about must not exist, or mediation would be bypassed.
		_ = h.fsys.Unlink(path, fs.Root)
		return "", fmt.Errorf("devfs attach %q: push mapping: %w", class, err)
	}
	if err := h.crashLocked("after push, before journal"); err != nil {
		// The kernel learned the mapping but the journal did not:
		// Restart treats the un-journaled node as untrusted and
		// removes both node and mapping (fail closed).
		return "", fmt.Errorf("devfs attach %q: %w", class, err)
	}
	h.nodes[path] = class
	if err := h.writeJournalLocked(); err != nil {
		// A mapping the journal cannot persist would silently vanish
		// across a restart; undo the whole attach instead.
		delete(h.nodes, path)
		_ = h.sink.RemoveMapping(path)
		_ = h.fsys.Unlink(path, fs.Root)
		return "", fmt.Errorf("devfs attach %q: journal: %w", class, err)
	}
	return path, nil
}

// Detach simulates removal of the device node at path.
func (h *Helper) Detach(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return fmt.Errorf("devfs detach %s: %w", path, ErrHelperDown)
	}

	if _, ok := h.nodes[path]; !ok {
		return fmt.Errorf("devfs detach %s: %w", path, ErrUnknownDevice)
	}
	if err := h.crashLocked("before unmap"); err != nil {
		// Nothing changed; after Restart the device is still attached
		// and mediated.
		return fmt.Errorf("devfs detach %s: %w", path, err)
	}
	if err := h.pushLocked(MappingMsg{Op: OpUnmap, Path: path}); err != nil {
		return fmt.Errorf("devfs detach %s: pull mapping: %w", path, err)
	}
	if err := h.crashLocked("after unmap, before unlink"); err != nil {
		// The kernel already dropped the mapping but the node and
		// journal entry remain; Restart re-pushes the journaled
		// mapping, so the device comes back mediated.
		return fmt.Errorf("devfs detach %s: %w", path, err)
	}
	if err := h.fsys.Unlink(path, fs.Root); err != nil {
		return fmt.Errorf("devfs detach %s: %w", path, err)
	}
	delete(h.nodes, path)
	if err := h.writeJournalLocked(); err != nil {
		return fmt.Errorf("devfs detach %s: journal: %w", path, err)
	}
	return nil
}

// ClassOf returns the class of the device node at path.
func (h *Helper) ClassOf(path string) (Class, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	c, ok := h.nodes[path]
	if !ok {
		return "", fmt.Errorf("devfs %s: %w", path, ErrUnknownDevice)
	}
	return c, nil
}

// Paths returns the currently attached device paths, sorted.
func (h *Helper) Paths() []string {
	h.mu.Lock()
	defer h.mu.Unlock()

	out := make([]string, 0, len(h.nodes))
	for p := range h.nodes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// writeJournalLocked persists the helper's state (name counters and
// the device-class map) to JournalPath. The journal is rewritten whole
// on every mutation; its size is bounded by the number of attached
// devices. Requires h.mu held.
func (h *Helper) writeJournalLocked() error {
	var b strings.Builder
	b.WriteString(ProtocolMagic + "\n")
	classes := make([]string, 0, len(h.counter))
	for c := range h.counter {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		b.WriteString("counter " + c + " " + strconv.Itoa(h.counter[Class(c)]) + "\n")
	}
	for _, p := range sortedPaths(h.nodes) {
		b.WriteString("node " + p + " " + string(h.nodes[p]) + "\n")
	}
	return h.fsys.WriteFile(JournalPath, []byte(b.String()), 0o600, fs.Root)
}

// sortedPaths returns the map's keys in lexical order; every
// journal-driven walk uses it so the helper's kernel pushes (and any
// fault-point evaluations they trigger) happen in a stable order.
func sortedPaths(nodes map[string]Class) []string {
	paths := make([]string, 0, len(nodes))
	for p := range nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// loadJournal parses the journal file; a missing journal yields empty
// state (first boot).
func (h *Helper) loadJournal() (map[Class]int, map[string]Class, error) {
	counter := make(map[Class]int)
	nodes := make(map[string]Class)
	data, err := h.fsys.ReadFile(JournalPath, fs.Root)
	if errors.Is(err, fs.ErrNotExist) {
		return counter, nodes, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("devfs journal: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != ProtocolMagic {
		return nil, nil, fmt.Errorf("devfs journal: bad magic")
	}
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		switch {
		case len(fields) == 3 && fields[0] == "counter":
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("devfs journal: bad counter %q", line)
			}
			counter[Class(fields[1])] = n
		case len(fields) == 3 && fields[0] == "node":
			if !isSensitive(Class(fields[2])) || !validDevicePath(fields[1]) {
				return nil, nil, fmt.Errorf("devfs journal: bad node %q", line)
			}
			nodes[fields[1]] = Class(fields[2])
		default:
			return nil, nil, fmt.Errorf("devfs journal: bad line %q", line)
		}
	}
	return counter, nodes, nil
}

// Restart recovers a crashed helper: it reloads the journal, resyncs
// the kernel's mapping from it, and reconciles /dev against it —
// journaled nodes that vanished are unmapped, and device nodes that
// carry a sensitive-class name but appear in no journal entry are
// removed along with any kernel mapping (fail closed: a node the
// trusted helper cannot vouch for must not exist). The device-class
// map therefore survives any crash point in Attach/Detach.
func (h *Helper) Restart() error {
	h.mu.Lock()
	defer h.mu.Unlock()

	counter, nodes, err := h.loadJournal()
	if err != nil {
		return err
	}

	// Drop journal entries whose node no longer exists, unmapping them
	// in the kernel. Paths are visited in sorted order so that the
	// sequence of fault-point evaluations is reproducible.
	for _, path := range sortedPaths(nodes) {
		if _, err := h.fsys.Stat(path); errors.Is(err, fs.ErrNotExist) {
			delete(nodes, path)
			if err := h.pushLocked(MappingMsg{Op: OpUnmap, Path: path}); err != nil {
				return fmt.Errorf("devfs restart: unmap vanished %s: %w", path, err)
			}
		} else if err != nil {
			return fmt.Errorf("devfs restart: %w", err)
		}
	}

	// Remove sensitive-looking nodes the journal does not vouch for
	// (e.g. created by an attach that crashed before journaling).
	for _, class := range SensitiveClasses() {
		dir, prefix := devPrefixFor(class)
		names, err := h.fsys.ReadDir(dir, fs.Root)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("devfs restart: scan %s: %w", dir, err)
		}
		for _, name := range names {
			if !strings.HasPrefix(name, prefix) {
				continue
			}
			path := dir + "/" + name
			st, err := h.fsys.Stat(path)
			if err != nil || st.Kind != fs.KindDevice {
				continue
			}
			if _, ok := nodes[path]; ok {
				continue
			}
			if err := h.fsys.Unlink(path, fs.Root); err != nil {
				return fmt.Errorf("devfs restart: remove orphan %s: %w", path, err)
			}
			if err := h.pushLocked(MappingMsg{Op: OpUnmap, Path: path}); err != nil {
				return fmt.Errorf("devfs restart: unmap orphan %s: %w", path, err)
			}
		}
	}

	// Resync the kernel's map from the surviving journal entries, in
	// sorted order (reproducible fault-evaluation sequence).
	for _, path := range sortedPaths(nodes) {
		if err := h.pushLocked(MappingMsg{Op: OpMap, Path: path, Class: nodes[path]}); err != nil {
			return fmt.Errorf("devfs restart: resync %s: %w", path, err)
		}
	}

	h.counter = counter
	h.nodes = nodes
	h.down = false
	return h.writeJournalLocked()
}

func isSensitive(c Class) bool {
	for _, s := range SensitiveClasses() {
		if s == c {
			return true
		}
	}
	return false
}
