package kernel

import (
	"fmt"
	"strconv"

	"overhaul/internal/devfs"
	"overhaul/internal/faultinject"
	"overhaul/internal/fs"
	"overhaul/internal/monitor"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

// opForClass maps a sensitive device class to the monitor's operation
// vocabulary (op ∈ {copy, paste, scr, mic, cam} plus a catch-all for
// other sensors).
func opForClass(c devfs.Class) monitor.Op {
	switch c {
	case devfs.ClassMicrophone:
		return monitor.OpMic
	case devfs.ClassCamera:
		return monitor.OpCam
	default:
		return monitor.OpOther
	}
}

// devForClass maps a sensitive device class to the probe-layer device
// vocabulary (same mapping as opForClass, interned).
func devForClass(c devfs.Class) probe.Dev {
	switch c {
	case devfs.ClassMicrophone:
		return probe.DevMic
	case devfs.ClassCamera:
		return probe.DevCam
	default:
		return probe.DevOther
	}
}

// emitOpen publishes a kernel.open probe event. Callers gate on
// k.probeOpen.Armed() so the unattached open path pays one atomic load
// and nothing else.
func (k *Kernel) emitOpen(pid int, class devfs.Class, sensitive bool, v probe.Verdict, reason probe.Reason) {
	ev := probe.Event{
		TimeNanos: k.clk.Now().UnixNano(),
		PID:       int64(pid),
		Kind:      probe.KindOpen,
		Reason:    reason,
	}
	if sensitive {
		ev.Dev = devForClass(class)
		ev.Verdict = v
	}
	k.probeOpen.Emit(ev)
}

// Open is the augmented open(2): normal UNIX access control first, then
// — iff the target is a mapped sensitive device — the Overhaul
// permission-monitor check correlating the open with the calling
// process's latest authentic interaction (paper §IV-B, "Device
// mediation"). Non-device files pay only a map lookup beyond stock
// semantics, which is why the Bonnie++ row of Table I shows ~0.1 %.
func (k *Kernel) Open(p *Process, path string, access fs.Access) (*fs.Handle, error) {
	if p == nil || !p.alive() {
		return nil, fmt.Errorf("open %s: %w", path, ErrDeadProcess)
	}

	h, err := k.fsys.Open(path, access, p.Cred())
	if err != nil {
		return nil, err
	}

	k.stats.opens.Add(1)
	class, sensitive := k.SensitiveClassOf(path)
	if sensitive {
		k.stats.deviceOpens.Add(1)
	}

	var span *telemetry.Span
	if sensitive {
		// The open span parents on the span that minted the caller's
		// interaction stamp, which is what connects this syscall to the
		// input event that enables it (or leaves it a fresh root when
		// no traced interaction preceded it).
		var ctx telemetry.SpanContext
		if k.tel.Enabled() {
			ctx = p.StampSpan()
		}
		span = k.tel.StartSpan(ctx, "kernel", "open")
		defer span.End()
		if k.tel.Enabled() {
			span.Annotate("path", path)
			span.Annotate("pid", strconv.Itoa(p.PID()))
			k.tel.Add("kernel", "device_opens", "class="+string(class), 1)
		}
	}

	if devRounds := k.devRounds; devRounds > 0 && h.Kind() == fs.KindDevice {
		// Simulated driver initialisation, paid by every device open
		// on both the baseline and the Overhaul kernel.
		deviceInitWork(devRounds)
	}

	if f := faultinject.Eval(k.faults, faultinject.PointKernelOpen); f.Kind == faultinject.KindError {
		// Transient I/O failure mid-open. Fail closed: the open does
		// not complete, and for a sensitive device the failure is
		// recorded as an audited denial rather than disappearing into
		// an opaque errno.
		k.stats.openFaults.Add(1)
		if sensitive {
			k.stats.denials.Add(1)
		}
		if k.tel.Enabled() {
			k.tel.Add("kernel", "open_faults", "", 1)
			k.tel.RecordEvent(span.Context(), "kernel", "fault",
				"injected fault at "+string(faultinject.PointKernelOpen)+" during open "+path)
		}
		if sensitive {
			k.mon.RecordDenialCtx(span.Context(), p.PID(), opForClass(class), k.clk.Now(),
				"transient open failure: fail closed")
		}
		if k.probeOpen.Wants(int64(p.PID())) {
			k.emitOpen(p.PID(), class, sensitive, probe.VerdictDeny, probe.ReasonFailClosed)
		}
		_ = h.Close()
		return nil, fmt.Errorf("open %s by pid %d: %w: %v", path, p.PID(), ErrTransientIO, f.Err)
	}

	if sensitive {
		verdict := k.mon.DecideCtx(span.Context(), p.PID(), opForClass(class), k.clk.Now())
		if verdict != monitor.VerdictGrant {
			k.stats.denials.Add(1)
			if k.probeOpen.Wants(int64(p.PID())) {
				k.emitOpen(p.PID(), class, sensitive, probe.VerdictDeny, probe.ReasonNone)
			}
			return nil, fmt.Errorf("open %s (%s) by pid %d: %w", path, class, p.PID(), ErrAccessDenied)
		}
	}
	if k.probeOpen.Wants(int64(p.PID())) {
		k.emitOpen(p.PID(), class, sensitive, probe.VerdictGrant, probe.ReasonNone)
	}
	return h, nil
}

// Create creates a regular file through the kernel on behalf of p. It
// exists so the filesystem benchmark exercises the same syscall layer
// as real programs.
func (k *Kernel) Create(p *Process, path string, mode fs.Mode) (*fs.Handle, error) {
	if p == nil || !p.alive() {
		return nil, fmt.Errorf("create %s: %w", path, ErrDeadProcess)
	}
	h, err := k.fsys.Create(path, mode, p.Cred())
	if err != nil {
		return nil, err
	}
	k.stats.opens.Add(1)
	// open(O_CREAT) runs through the same augmented open path as any
	// other open: the sensitive-device lookup happens here too, which
	// is the entire Overhaul cost Bonnie++'s file-creation phase sees.
	class, sensitive := k.SensitiveClassOf(path)
	if storRounds := k.storRounds; storRounds > 0 {
		// Simulated storage cost (journal + allocation), paid by both
		// the baseline and the Overhaul kernel.
		deviceInitWork(storRounds)
	}
	if sensitive {
		if verdict := k.mon.Decide(p.PID(), opForClass(class), k.clk.Now()); verdict != monitor.VerdictGrant {
			//overhaul:allow failclosedcheck Decide audits its own deny (stats, audit shard, flight recorder); RecordDenial here would double-count the denial
			return nil, fmt.Errorf("create %s (%s): %w", path, class, ErrAccessDenied)
		}
	}
	return h, nil
}

// Stat stats path on behalf of p. Overhaul does not interpose on stat,
// matching the paper (no measurable Bonnie++ overhead on stat).
func (k *Kernel) Stat(p *Process, path string) (fs.Stat, error) {
	if p == nil || !p.alive() {
		return fs.Stat{}, fmt.Errorf("stat %s: %w", path, ErrDeadProcess)
	}
	return k.fsys.Stat(path)
}

// Unlink removes path on behalf of p. Not interposed by Overhaul.
func (k *Kernel) Unlink(p *Process, path string) error {
	if p == nil || !p.alive() {
		return fmt.Errorf("unlink %s: %w", path, ErrDeadProcess)
	}
	return k.fsys.Unlink(path, p.Cred())
}
