package fleet

import (
	"testing"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/monitor"
)

// TestSessionAuditSink pins the durable-audit bridge: an attached sink
// sees every decision the session makes, in audit order, even after
// the bounded ring has started evicting — the sink is how a tenant's
// trail outlives the ring.
func TestSessionAuditSink(t *testing.T) {
	f := newTestFleet(t, Config{AuditCapacity: 4})
	s := f.CreateSession()
	var sunk []monitor.Decision
	s.SetAuditSink(func(d monitor.Decision) { sunk = append(sunk, d) })
	pid, err := s.Spawn()
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := s.Notify(pid, base); err != nil {
		t.Fatalf("Notify: %v", err)
	}

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := s.Decide(pid, monitor.OpMic, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("Decide %d: %v", i, err)
		}
	}

	if len(sunk) != n {
		t.Fatalf("sink saw %d decisions, want %d", len(sunk), n)
	}
	ring := s.Audit()
	if len(ring) != 4 {
		t.Fatalf("ring holds %d decisions, want 4 (capacity)", len(ring))
	}
	// The ring is the tail of the sink stream, element for element.
	for i, d := range ring {
		if sunk[n-4+i] != d {
			t.Fatalf("ring[%d] != sink[%d]:\n ring %+v\n sink %+v", i, n-4+i, d, sunk[n-4+i])
		}
	}
	// Sink order is decision order: op times ascend.
	for i := 1; i < len(sunk); i++ {
		if sunk[i].OpTime.Before(sunk[i-1].OpTime) {
			t.Fatalf("sink out of order at %d: %v after %v", i, sunk[i].OpTime, sunk[i-1].OpTime)
		}
	}
}

// TestSessionBatchSink wires sessions through the batching sink into a
// shared durable store — the overhaul-load -store path: every decision
// from every session lands durably, stamped with its session id, in
// that session's decision order, and the store commits them in grouped
// batches rather than one durable ack per decision.
func TestSessionBatchSink(t *testing.T) {
	f := newTestFleet(t, Config{})
	st, err := auditstore.Open(t.TempDir(), auditstore.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close() //overhaul:allow errdrop test cleanup

	const sessions = 3
	const perSession = 10
	var stats auditstore.SinkStats
	sinks := make([]*auditstore.BatchSink, sessions)
	ids := make([]uint64, sessions)
	for i := range sinks {
		s := f.CreateSession()
		ids[i] = s.ID()
		sinks[i] = auditstore.NewBatchSink(st, s.ID(), 4, &stats)
		s.SetAuditSink(sinks[i].Sink())
		pid, err := s.Spawn()
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		if err := s.Notify(pid, base); err != nil {
			t.Fatalf("Notify: %v", err)
		}
		for j := 0; j < perSession; j++ {
			if _, err := s.Decide(pid, monitor.OpMic, base.Add(time.Duration(j)*time.Second)); err != nil {
				t.Fatalf("Decide: %v", err)
			}
		}
	}
	for _, bs := range sinks {
		bs.Flush()
	}

	if n, err := st.Count(); err != nil || n != sessions*perSession {
		t.Fatalf("store holds %d records (err=%v), want %d", n, err, sessions*perSession)
	}
	if got := stats.Errors.Load(); got != 0 {
		t.Fatalf("sink dropped %d acks", got)
	}
	bstats := st.BatchStats()
	if bstats.MaxBatch < 4 {
		t.Fatalf("max batch %d, want >= 4 (sink batches of 4 never coalesced)", bstats.MaxBatch)
	}
	if bstats.Batches >= uint64(sessions*perSession) {
		t.Fatalf("%d batches for %d records: sink did not batch", bstats.Batches, sessions*perSession)
	}
	// Per session: perSession records, in decision (time) order.
	for _, id := range ids {
		recs, err := auditstore.ScanAll(st, auditstore.Query{Session: id})
		if err != nil {
			t.Fatalf("scan session %d: %v", id, err)
		}
		if len(recs) != perSession {
			t.Fatalf("session %d has %d records, want %d", id, len(recs), perSession)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time.Before(recs[i-1].Time) {
				t.Fatalf("session %d records out of order at %d", id, i)
			}
		}
	}
}
