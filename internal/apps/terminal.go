package apps

import (
	"fmt"
	"strings"
	"time"

	"overhaul/internal/core"
	"overhaul/internal/ipc"
	"overhaul/internal/kernel"
)

// Terminal is a terminal emulator (xterm-like) with a shell process
// behind a pseudo-terminal — the CLI interaction scenario of §IV-B. The
// emulator is an X client that receives keystrokes; the shell is a
// headless process reading the pty slave; tools the shell launches are
// fork/exec children of the shell.
type Terminal struct {
	sys   *core.System
	app   *core.App
	shell *kernel.Process
	pty   *ipc.Pty
}

// NewTerminal launches the emulator and its shell.
func NewTerminal(sys *core.System, name string) (*Terminal, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("terminal: %w", err)
	}
	shell, err := sys.LaunchHeadless("bash")
	if err != nil {
		return nil, fmt.Errorf("terminal: %w", err)
	}
	return &Terminal{sys: sys, app: app, shell: shell, pty: sys.Kernel.NewPty()}, nil
}

// App exposes the emulator's harness handle.
func (t *Terminal) App() *core.App { return t.app }

// Shell exposes the shell process.
func (t *Terminal) Shell() *kernel.Process { return t.shell }

// RunCommand simulates the user typing a command line into the emulator
// and the shell launching the named tool: each keystroke is hardware
// input to the emulator; the line travels over the pty (propagating the
// interaction stamp); the shell forks and execs the tool.
func (t *Terminal) RunCommand(cmdline string) (*kernel.Process, error) {
	for _, key := range strings.Split(cmdline, "") {
		if err := t.app.Type(key); err != nil {
			return nil, fmt.Errorf("terminal run %q: %w", cmdline, err)
		}
	}
	if err := t.app.Type("enter"); err != nil {
		return nil, fmt.Errorf("terminal run %q: %w", cmdline, err)
	}

	// The emulator writes the line to the pty master...
	if _, err := t.pty.Write(ipc.Master, t.app.Proc.PID(), []byte(cmdline+"\n")); err != nil {
		return nil, fmt.Errorf("terminal run %q: pty: %w", cmdline, err)
	}
	// ...and the shell reads it from the slave, adopting the stamp.
	buf := make([]byte, len(cmdline)+1)
	if _, err := t.pty.Read(ipc.Slave, t.shell.PID(), buf); err != nil {
		return nil, fmt.Errorf("terminal run %q: pty: %w", cmdline, err)
	}
	t.sys.Settle(30 * time.Millisecond)

	tool := strings.Fields(cmdline)[0]
	proc, err := t.shell.Fork()
	if err != nil {
		return nil, fmt.Errorf("terminal run %q: %w", cmdline, err)
	}
	if err := proc.Exec(tool, "/usr/bin/"+tool); err != nil {
		return nil, fmt.Errorf("terminal run %q: %w", cmdline, err)
	}
	return proc, nil
}
