package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// Snapshot is the full export form of a recorder, consumed by
// cmd/overhaul-top -json and by tests asserting reproducibility.
type Snapshot struct {
	Metrics      []MetricPoint `json:"metrics"`
	Spans        []SpanRecord  `json:"spans"`
	SpansDropped uint64        `json:"spans_dropped,omitempty"`
	Flight       []FlightEvent `json:"flight"`
	Dumps        []FlightDump  `json:"dumps,omitempty"`
}

// Snapshot exports everything the recorder holds, deterministically
// ordered.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return Snapshot{
		Metrics:      r.MetricsSnapshot(),
		Spans:        r.Spans(),
		SpansDropped: r.SpansDropped(),
		Flight:       r.FlightEvents(),
		Dumps:        r.FlightDumps(),
	}
}

const timeLayout = "15:04:05.000000"

// FormatMetrics renders a metrics snapshot as an aligned text table.
func FormatMetrics(points []MetricPoint) string {
	if len(points) == 0 {
		return "(no metrics)\n"
	}
	var b strings.Builder
	for _, p := range points {
		id := p.Subsystem + "." + p.Name
		if p.Labels != "" {
			id += "{" + p.Labels + "}"
		}
		switch p.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-52s hist  count=%-6d sum=%-12s buckets=%v\n",
				id, p.Count, p.Sum, p.Buckets)
		case "gauge":
			fmt.Fprintf(&b, "%-52s gauge %d\n", id, p.Value)
		default:
			fmt.Fprintf(&b, "%-52s count %d\n", id, p.Value)
		}
	}
	return b.String()
}

// FormatTrace renders the spans of one trace as an indented tree with
// virtual-clock timestamps. Spans whose parent is missing from the
// slice (evicted or foreign) render at the root.
func FormatTrace(spans []SpanRecord) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	children := make(map[SpanID][]SpanRecord)
	byID := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	var render func(s SpanRecord, depth int)
	render = func(s SpanRecord, depth int) {
		indent := strings.Repeat("  ", depth)
		dur := "open"
		if s.Ended {
			dur = s.End.Sub(s.Start).String()
		}
		fmt.Fprintf(&b, "%s%s  #%d %s.%s (%s)",
			indent, s.Start.UTC().Format(timeLayout), s.ID, s.Subsystem, s.Name, dur)
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}

// FormatFlight renders flight events as one line each, oldest first.
func FormatFlight(events []FlightEvent) string {
	if len(events) == 0 {
		return "(flight ring empty)\n"
	}
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%6d %s %-10s %-12s %s",
			ev.Seq, ev.Time.UTC().Format(timeLayout), ev.Subsystem, ev.Kind, ev.Detail)
		if ev.Trace != 0 {
			fmt.Fprintf(&b, " [trace=%d span=%d]", ev.Trace, ev.Span)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Elapsed is a small helper for histogram instrumentation: the
// duration from start to the recorder's current instant (zero on a nil
// recorder).
func (r *Recorder) Elapsed(start time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return r.now().Sub(start)
}
