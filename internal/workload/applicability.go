package workload

import (
	"errors"
	"fmt"
	"time"

	"overhaul/internal/apps"
	"overhaul/internal/core"
	"overhaul/internal/xserver"
)

// AppResult records one pool entry's behaviour under Overhaul.
type AppResult struct {
	Spec          AppSpec `json:"spec"`
	Worked        bool    `json:"worked"`        // the app's core function succeeded
	SpuriousAlert bool    `json:"spuriousAlert"` // an alert fired outside the expected flow
	Limitation    string  `json:"limitation"`    // non-empty for known unsupported features
}

// ApplicabilityReport aggregates the §V-C assessment.
type ApplicabilityReport struct {
	Results        []AppResult `json:"results"`
	Tested         int         `json:"tested"`
	Malfunctioning int         `json:"malfunctioning"`
	SpuriousAlerts int         `json:"spuriousAlerts"`
	Limitations    []string    `json:"limitations"`
}

// ErrPoolRun wraps environment failures while driving the pool.
var ErrPoolRun = errors.New("workload: pool run failed")

// RunApplicability drives every application in the device pool through
// its core flow on a fresh Overhaul machine and reports functional
// breakage, spurious alerts, and known limitations.
func RunApplicability() (ApplicabilityReport, error) {
	var rep ApplicabilityReport
	for _, spec := range DevicePool() {
		res, err := runDeviceApp(spec)
		if err != nil {
			return ApplicabilityReport{}, fmt.Errorf("%w: %s: %v", ErrPoolRun, spec.Name, err)
		}
		rep.Results = append(rep.Results, res)
		rep.Tested++
		if !res.Worked {
			rep.Malfunctioning++
		}
		if res.SpuriousAlert {
			rep.SpuriousAlerts++
		}
		if res.Limitation != "" {
			rep.Limitations = append(rep.Limitations, spec.Name+": "+res.Limitation)
		}
	}
	return rep, nil
}

// runDeviceApp exercises one device/screen application.
func runDeviceApp(spec AppSpec) (AppResult, error) {
	sys, mic, cam, err := core.BootDefault()
	if err != nil {
		return AppResult{}, err
	}
	res := AppResult{Spec: spec}

	switch spec.Category {
	case CatVideoConf:
		v, err := apps.NewVideoConf(sys, spec.Name, mic, cam, spec.AutostartProbe)
		if err != nil {
			return AppResult{}, err
		}
		if spec.AutostartProbe {
			// The startup probe was denied and produced a blocked-
			// access alert with no user interaction in sight: the one
			// "spurious" alert the paper reports for Skype.
			res.SpuriousAlert = len(sys.X.AlertHistory()) > 0
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)
		res.Worked = v.PlaceCall() == nil

	case CatAudioEditor, CatAudioRecorder:
		r, err := apps.NewRecorder(sys, spec.Name, mic)
		if err != nil {
			return AppResult{}, err
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)
		res.Worked = r.Record() == nil

	case CatVideoRecorder:
		r, err := apps.NewRecorder(sys, spec.Name, cam)
		if err != nil {
			return AppResult{}, err
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)
		res.Worked = r.Record() == nil

	case CatScreenshot:
		s, err := apps.NewScreenshot(sys, spec.Name)
		if err != nil {
			return AppResult{}, err
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)
		_, err = s.Capture()
		res.Worked = err == nil
		if spec.DelayedShot {
			if _, err := s.CaptureDelayed(10 * time.Second); err != nil {
				res.Limitation = "delayed screenshot expires the interaction (unsupported by design)"
			}
		}

	case CatScreencast:
		r, err := apps.NewRecorder(sys, spec.Name, "")
		if err != nil {
			return AppResult{}, err
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)
		res.Worked = r.Record() == nil

	case CatBrowser:
		b, err := apps.NewBrowser(sys, spec.Name)
		if err != nil {
			return AppResult{}, err
		}
		tab, ch, err := b.OpenTab()
		if err != nil {
			return AppResult{}, err
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)
		res.Worked = b.StartVideoChat(tab, ch, cam) == nil

	default:
		return AppResult{}, fmt.Errorf("unexpected category %v in device pool", spec.Category)
	}
	return res, nil
}

// ClipboardReport aggregates the clipboard assessment.
type ClipboardReport struct {
	Tested         int
	FalsePositives int // legitimate copy/paste operations denied
	Misbehaviour   int // wrong data or protocol failure
	AlertsShown    int // must stay zero: clipboard ops are silent
}

// RunClipboard drives every clipboard application pair through a
// user-initiated copy & paste and verifies no false positives and no
// alerts, inspecting the Overhaul logs as the paper does.
func RunClipboard() (ClipboardReport, error) {
	var rep ClipboardReport
	pool := ClipboardPool()
	for i := 0; i+1 < len(pool); i += 2 {
		srcSpec, dstSpec := pool[i], pool[i+1]
		sys, _, _, err := core.BootDefault()
		if err != nil {
			return ClipboardReport{}, fmt.Errorf("%w: %v", ErrPoolRun, err)
		}
		src, err := apps.NewEditor(sys, srcSpec.Name)
		if err != nil {
			return ClipboardReport{}, fmt.Errorf("%w: %v", ErrPoolRun, err)
		}
		dst, err := apps.NewEditor(sys, dstSpec.Name)
		if err != nil {
			return ClipboardReport{}, fmt.Errorf("%w: %v", ErrPoolRun, err)
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)

		payload := []byte("clipboard-" + srcSpec.Name)
		rep.Tested += 2
		if err := src.Copy(payload); err != nil {
			rep.FalsePositives++
			continue
		}
		got, err := dst.Paste(src)
		if err != nil {
			rep.FalsePositives++
			continue
		}
		if string(got) != string(payload) {
			rep.Misbehaviour++
		}
		rep.AlertsShown += len(sys.X.AlertHistory())
	}
	return rep, nil
}
