package probe

import (
	"math"
	"sync/atomic"
)

// Hook is one named attach point compiled into a hot path. The host
// subsystem holds the *Hook (resolved once from the Registry at
// construction) and guards every emission with Wants(pid):
//
//	if h := k.probeOpen; h.Wants(int64(pid)) {
//	    h.Emit(probe.Event{...})
//	}
//
// Wants on an unattached hook is one atomic pointer load (plus the nil
// check a nil registry compiles down to) — the entire cost the hot
// path pays when no probe is attached. When probes are attached, Wants
// is the first stage of predicate evaluation: the attach set carries
// the union of the attached specs' pid windows, precomputed at attach
// time, so a pid-scoped probe — the common shape of a live trace, and
// the shape the multiview report's attached-idle mode measures — is
// rejected with two integer compares before the caller pays to build
// the Event (clock reads, reason interning). Event construction and
// per-spec matching happen only behind it.
type Hook struct {
	name string
	// set holds the immutable attached-probe snapshot; nil when no
	// probe is attached. The Registry swaps whole snapshots
	// (copy-on-write), so Emit iterates without a lock.
	set atomic.Pointer[attachSet]
}

// attachSet is an immutable snapshot of the probes attached to a hook.
type attachSet struct {
	probes []*Probe
	// pidLo..pidHi is the union of the attached specs' pid windows (a
	// spec without a pid filter widens it to the full int64 range):
	// the aggregate first-stage filter behind Wants.
	pidLo, pidHi int64
}

// newAttachSet snapshots probes and precomputes the aggregate pid
// window.
func newAttachSet(probes []*Probe) *attachSet {
	s := &attachSet{probes: probes, pidLo: math.MaxInt64, pidHi: math.MinInt64}
	for _, p := range probes {
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		if p.spec.HasPID {
			lo, hi = p.spec.PIDLo, p.spec.PIDHi
		}
		if lo < s.pidLo {
			s.pidLo = lo
		}
		if hi > s.pidHi {
			s.pidHi = hi
		}
	}
	return s
}

// Name returns the attach-point name ("kernel.open", ...).
func (h *Hook) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Armed reports whether any probe is attached. Nil-safe: a nil hook
// (nil registry, or unknown name) is never armed.
func (h *Hook) Armed() bool {
	return h != nil && h.set.Load() != nil
}

// Wants reports whether an event carrying the given pid could match
// any attached probe: the cheap first stage of predicate evaluation,
// meant to guard Event construction at the emission site. Nil-safe and
// one atomic load when unattached; two extra integer compares when
// armed.
func (h *Hook) Wants(pid int64) bool {
	if h == nil {
		return false
	}
	set := h.set.Load()
	return set != nil && pid >= set.pidLo && pid <= set.pidHi
}

// Emit matches ev against every attached probe and publishes it to the
// rings of those that match. Call only when Armed() (calling unarmed
// is safe, just wasted work building ev). Emit never blocks and never
// allocates: the spec matcher is flat compares and a ring publish is a
// slot copy.
func (h *Hook) Emit(ev Event) {
	set := h.set.Load()
	if set == nil {
		return
	}
	for _, p := range set.probes {
		if p.spec.Match(&ev) {
			p.matched.Add(1)
			p.ring.Publish(ev)
		}
	}
}
