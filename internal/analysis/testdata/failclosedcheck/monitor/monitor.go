// Package monitor is the failclosedcheck fixture's decision service:
// the base handlers plus a helper whose FailsClosed fact must cross
// the package boundary into kernel.
package monitor

import "errors"

// ErrDenied is the canonical denial.
var ErrDenied = errors.New("denied")

// Monitor decides and audits.
type Monitor struct {
	denials int
	degrade string
}

// Decide evaluates pid and can fail.
func (m *Monitor) Decide(pid int) (bool, error) {
	if pid < 0 {
		return false, errors.New("bad pid")
	}
	return pid%2 == 0, nil
}

// RecordDenial is a base fail-closed handler.
func (m *Monitor) RecordDenial(pid int) {
	m.denials++
}

// SetDegraded is a base fail-closed handler.
func (m *Monitor) SetDegraded(why string) {
	m.degrade = why
}

// AuditAbort records the denial on behalf of callers; the FailsClosed
// fact it earns here is what kernel's helper path relies on.
func (m *Monitor) AuditAbort(pid int) {
	m.RecordDenial(pid)
}
