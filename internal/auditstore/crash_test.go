package auditstore_test

import (
	"errors"
	"testing"

	"overhaul/internal/auditstore"
	"overhaul/internal/faultinject"
)

// TestCrashRecoveryProperty is the crash-recovery property test: for
// every faultinject crash window — torn append, crash mid-rotation at
// either protocol window, crash mid-compaction at any of its four
// windows — reopening the directory yields a byte-identical prefix of
// the pre-crash stream. Acked records are never lost, unacked records
// never appear, and any discarded bytes are reported, never silent.
// The table is seeded and spans segment sizes so every window lands in
// differently-shaped directories.
func TestCrashRecoveryProperty(t *testing.T) {
	type faultSpec struct {
		name string
		rule faultinject.Rule
	}
	// After selects the exact window: appends evaluate PointStoreAppend
	// once per call, rotations evaluate PointStoreRotate at 2 windows,
	// compactions evaluate PointStoreCompact at 4.
	specs := []faultSpec{
		{"append-torn-early", faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, After: 3, Count: 1}},
		{"append-torn-mid", faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, After: 57, Count: 1}},
		{"append-torn-late", faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, After: 166, Count: 1}},
		{"append-crash", faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindCrash, After: 41, Count: 1}},
		{"append-torn-repeated", faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, Prob: 0.02}},
		{"rotate-crash-pre-seal", faultinject.Rule{Point: faultinject.PointStoreRotate, Kind: faultinject.KindCrash, Count: 1}},
		{"rotate-crash-post-seal", faultinject.Rule{Point: faultinject.PointStoreRotate, Kind: faultinject.KindCrash, After: 1, Count: 1}},
		{"rotate-crash-later", faultinject.Rule{Point: faultinject.PointStoreRotate, Kind: faultinject.KindCrash, After: 4, Count: 1}},
		{"compact-crash-begin", faultinject.Rule{Point: faultinject.PointStoreCompact, Kind: faultinject.KindCrash, Count: 1}},
		{"compact-crash-torn-tmp", faultinject.Rule{Point: faultinject.PointStoreCompact, Kind: faultinject.KindCrash, After: 1, Count: 1}},
		{"compact-crash-pre-rename", faultinject.Rule{Point: faultinject.PointStoreCompact, Kind: faultinject.KindCrash, After: 2, Count: 1}},
		{"compact-crash-pre-cleanup", faultinject.Rule{Point: faultinject.PointStoreCompact, Kind: faultinject.KindCrash, After: 3, Count: 1}},
	}
	segSizes := []int{1, 3, 8, 32}
	const total = 200

	for _, spec := range specs {
		for _, segRecs := range segSizes {
			spec, segRecs := spec, segRecs
			t.Run(spec.name+"/seg"+itoa(segRecs), func(t *testing.T) {
				dir := t.TempDir()
				inj, err := faultinject.New(int64(segRecs)*1000+int64(len(spec.name)), spec.rule)
				if err != nil {
					t.Fatalf("injector: %v", err)
				}
				st, err := auditstore.Open(dir, auditstore.Options{
					SegmentRecords: segRecs, CompactSealed: 3, Hook: inj.Hook(),
				})
				if err != nil {
					t.Fatalf("open: %v", err)
				}

				// Drive appends until the injected crash (or the end).
				acked := 0
				for i := 0; i < total; i++ {
					if _, err := st.Append(mkRecord(i)); err != nil {
						if !errors.Is(err, auditstore.ErrStoreFailed) {
							t.Fatalf("append %d: %v, want ErrStoreFailed", i, err)
						}
						break
					}
					acked++
				}
				if len(inj.Events()) == 0 {
					t.Fatalf("fault %s never fired in %d appends at segment size %d — dead table row", spec.name, total, segRecs)
				}
				if err := st.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}

				// Reopen: the recovered store must hold exactly the acked
				// prefix, byte-identical (checkPrefix compares encodings).
				st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: segRecs, CompactSealed: 3})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				checkPrefix(t, st2, acked)
				rec := st2.Recovery()
				if rec.DroppedBytes > 0 && (rec.Reason == "" || rec.TruncatedFile == "") {
					t.Fatalf("recovery dropped %d bytes silently: %+v", rec.DroppedBytes, rec)
				}
				if !rec.Clean && rec.Truncated && rec.Reason == "" {
					t.Fatalf("truncated recovery without a reason: %+v", rec)
				}

				// The recovered store is a working store: finish the
				// stream on it and verify the whole prefix again.
				for i := acked; i < total; i++ {
					if _, err := st2.Append(mkRecord(i)); err != nil {
						t.Fatalf("append %d after recovery: %v", i, err)
					}
				}
				checkPrefix(t, st2, total)
				if err := st2.Close(); err != nil {
					t.Fatalf("close recovered: %v", err)
				}

				// And a third open is clean: recovery normalized the
				// damage away instead of re-reporting it forever.
				st3, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: segRecs, CompactSealed: 3})
				if err != nil {
					t.Fatalf("third open: %v", err)
				}
				defer st3.Close() //overhaul:allow errdrop test cleanup
				if rec := st3.Recovery(); !rec.Clean {
					t.Fatalf("third open not clean: %+v", rec)
				}
				checkPrefix(t, st3, total)
			})
		}
	}
}

// TestCrashRecoveryRepeated drives a store through many consecutive
// crash/reopen cycles under a probabilistic fault mix — the sustained
// version of the single-window property.
func TestCrashRecoveryRepeated(t *testing.T) {
	dir := t.TempDir()
	rules := []faultinject.Rule{
		{Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, Prob: 0.03},
		{Point: faultinject.PointStoreAppend, Kind: faultinject.KindCrash, Prob: 0.01},
		{Point: faultinject.PointStoreRotate, Kind: faultinject.KindCrash, Prob: 0.05},
		{Point: faultinject.PointStoreCompact, Kind: faultinject.KindCrash, Prob: 0.10},
	}
	inj, err := faultinject.New(42, rules...)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	const total = 500
	acked, reopens := 0, 0
	opts := auditstore.Options{SegmentRecords: 4, CompactSealed: 3, Hook: inj.Hook()}
	st, err := auditstore.Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for acked < total {
		if _, err := st.Append(mkRecord(acked)); err != nil {
			if !errors.Is(err, auditstore.ErrStoreFailed) {
				t.Fatalf("append %d: %v", acked, err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("close after crash %d: %v", reopens, err)
			}
			st, err = auditstore.Open(dir, opts)
			if err != nil {
				t.Fatalf("reopen %d: %v", reopens, err)
			}
			reopens++
			checkPrefix(t, st, acked)
			continue
		}
		acked++
	}
	if reopens == 0 {
		t.Fatalf("no crashes in %d appends — fault mix too weak to test anything", total)
	}
	checkPrefix(t, st, total)
	if err := st.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	t.Logf("survived %d crash/reopen cycles over %d appends", reopens, total)
}

// itoa avoids importing strconv just for subtest names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
