package overhaul

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/kernel"
	"overhaul/internal/xserver"
)

func TestQuickstartFlow(t *testing.T) {
	sys, mic, cam, err := NewProtected("tabby-cat")
	if err != nil {
		t.Fatalf("NewProtected: %v", err)
	}
	if mic == "" || cam == "" {
		t.Fatal("device paths empty")
	}
	app, err := sys.Launch("recorder")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sys.Settle(2 * time.Second)

	// Before any input: denied.
	if _, err := app.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("pre-click open = %v, want deny", err)
	}
	// After a click: granted, and alerted.
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("post-click open = %v, want grant", err)
	}
	alerts := sys.ActiveAlerts()
	found := false
	for _, a := range alerts {
		if a.Op == OpMic && !a.Blocked {
			found = true
		}
	}
	if !found {
		t.Fatalf("alerts = %+v, want a granted mic alert", alerts)
	}
	// And audited.
	audit := sys.Audit()
	if len(audit) < 2 {
		t.Fatalf("audit = %+v", audit)
	}
}

func TestObserveOnlyConfig(t *testing.T) {
	sys, err := New(Config{Enforce: false})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mic, err := sys.AttachDevice(Microphone)
	if err != nil {
		t.Fatalf("AttachDevice: %v", err)
	}
	spy, err := sys.LaunchHeadless("spy")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	if _, err := sys.Kernel.Open(spy, mic, 1); err != nil {
		t.Fatalf("observe-only open = %v, want grant", err)
	}
	if len(sys.Audit()) != 1 {
		t.Fatal("observe-only open not audited")
	}
}

func TestCustomThreshold(t *testing.T) {
	sys, err := New(Config{Enforce: true, Threshold: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := sys.Kernel.Monitor().Threshold(); got != 300*time.Millisecond {
		t.Fatalf("threshold = %v", got)
	}
}

func TestRealTimeClock(t *testing.T) {
	sys, err := New(Config{Enforce: true, RealTime: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok := sys.SimClock(); ok {
		t.Fatal("RealTime system has a simulated clock")
	}
}

func TestDefaultThresholdConstant(t *testing.T) {
	if DefaultThreshold != 2*time.Second {
		t.Fatalf("DefaultThreshold = %v, paper uses 2 s", DefaultThreshold)
	}
	if xserver.DefaultVisibilityThreshold <= 0 {
		t.Fatal("visibility threshold must be positive")
	}
}
