// Package ablation quantifies the design choices DESIGN.md calls out:
// the temporal-proximity threshold δ, the shared-memory wait-list
// duration, the window-visibility clickjacking defence, the propagation
// policies P1 and P2, and the ptrace guard. Each experiment runs the
// relevant scenario on real assembled systems with the knob set both
// ways and reports the security/usability consequences the paper argues
// about (§IV-B: "less than 1 second could lead to falsely revoked
// permissions, but 2 seconds is sufficient").
package ablation

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"overhaul/internal/apps"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/xserver"
)

// ErrScenario wraps environment failures in ablation runs.
var ErrScenario = errors.New("ablation: scenario failed")

// ThresholdPoint is one δ setting's outcome.
type ThresholdPoint struct {
	Threshold time.Duration
	// FalseDenyRate is the fraction of legitimate input→access flows
	// denied because the app responded slower than δ.
	FalseDenyRate float64
	// AttackWindow is the fraction of background malware attempts that
	// land inside some app's still-open δ window. Malware gains
	// nothing from it directly (stamps are per-process), but it bounds
	// the exposure had a confused-deputy path existed; it grows
	// linearly with δ.
	AttackWindow float64
}

// legitLatencies models how long real applications take between
// receiving the input event and touching the device: most respond
// within a few hundred milliseconds, a tail (slow disk, plugin load)
// takes longer. Values chosen to reproduce the paper's finding that
// δ < 1 s misfires while δ = 2 s never does.
var legitLatencies = []time.Duration{
	50 * time.Millisecond, 80 * time.Millisecond, 120 * time.Millisecond,
	150 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond,
	300 * time.Millisecond, 400 * time.Millisecond, 500 * time.Millisecond,
	650 * time.Millisecond, 800 * time.Millisecond, 1100 * time.Millisecond,
	1400 * time.Millisecond, 1800 * time.Millisecond,
}

// ThresholdSweep measures false-deny rate and attack exposure across δ
// settings. trials legitimate flows are run per point.
func ThresholdSweep(thresholds []time.Duration, trials int, seed int64) ([]ThresholdPoint, error) {
	if len(thresholds) == 0 {
		thresholds = []time.Duration{
			250 * time.Millisecond, 500 * time.Millisecond, time.Second,
			2 * time.Second, 4 * time.Second, 8 * time.Second,
		}
	}
	if trials <= 0 {
		trials = 200
	}
	out := make([]ThresholdPoint, 0, len(thresholds))
	for _, th := range thresholds {
		rng := rand.New(rand.NewSource(seed))
		pt := ThresholdPoint{Threshold: th}

		sys, err := core.Boot(core.Options{Enforce: true, Threshold: th, AlertSecret: "a"})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		app, err := sys.Launch("app")
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		spy, err := sys.LaunchHeadless("spy")
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)

		denies, inWindow := 0, 0
		for i := 0; i < trials; i++ {
			if err := app.Click(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrScenario, err)
			}
			latency := legitLatencies[rng.Intn(len(legitLatencies))]
			sys.Settle(latency)
			if _, err := app.OpenDevice(mic); err != nil {
				denies++
			}

			// A background attempt at a uniformly random point in the
			// next 10 s: does it land inside the app's δ window? (The
			// attempt itself is always denied: the stamp belongs to
			// the app's PID, not the malware's.)
			attackDelay := time.Duration(rng.Int63n(int64(10 * time.Second)))
			if attackDelay < th {
				inWindow++
			}
			if _, err := sys.Kernel.Open(spy, mic, fs.AccessRead); err == nil {
				return nil, fmt.Errorf("%w: background open granted at δ=%v", ErrScenario, th)
			}
			sys.Settle(10 * time.Second) // let everything expire
		}
		pt.FalseDenyRate = float64(denies) / float64(trials)
		pt.AttackWindow = float64(inWindow) / float64(trials)
		out = append(out, pt)
	}
	return out, nil
}

// ShmWaitPoint is one wait-list duration's outcome.
type ShmWaitPoint struct {
	Wait time.Duration
	// MissedPropagation is the fraction of command handoffs whose
	// stamp arrived too late because the sending write landed in a
	// disarmed window and the interaction expired before re-arming.
	MissedPropagation float64
	// FaultsPerKiloWrite counts guard faults per 1000 streaming writes
	// (the overhead side of the trade-off).
	FaultsPerKiloWrite float64
}

// ShmWaitSweep reproduces §IV-B's wait-list trade-off: the browser
// streams writes into shared memory continuously; at a random moment the
// user clicks and the browser writes a command the tab must act on
// within δ. Long waits make the command write likelier to hit a
// disarmed window (stamp propagates only after re-arm — possibly too
// late); short waits multiply faults.
func ShmWaitSweep(waits []time.Duration, trials int, seed int64) ([]ShmWaitPoint, error) {
	if len(waits) == 0 {
		waits = []time.Duration{
			50 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
			time.Second, 1900 * time.Millisecond, 3 * time.Second,
		}
	}
	if trials <= 0 {
		trials = 300
	}
	out := make([]ShmWaitPoint, 0, len(waits))
	for _, wait := range waits {
		rng := rand.New(rand.NewSource(seed))
		sys, err := core.Boot(core.Options{Enforce: true, ShmWait: wait, AlertSecret: "a"})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		cam, err := sys.Helper.Attach(devfs.ClassCamera)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		browser, err := sys.Launch("browser")
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		tab, err := browser.Proc.Fork()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)

		missed := 0
		var faults, writes uint64
		for i := 0; i < trials; i++ {
			sys.Settle(10 * time.Second) // expire previous state
			shm, err := sys.Kernel.NewSharedMem(1)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrScenario, err)
			}
			bm := shm.Map(browser.Proc.PID())
			tm := shm.Map(tab.PID())

			// Streaming phase: writes every 20 ms for a random
			// duration, so the guard state at click time is random.
			streamFor := time.Duration(rng.Int63n(int64(2 * time.Second)))
			for t := time.Duration(0); t < streamFor; t += 20 * time.Millisecond {
				if err := bm.Write(0, []byte{1}); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrScenario, err)
				}
				writes++
				sys.Settle(20 * time.Millisecond)
			}

			// The user clicks; the browser keeps streaming (command
			// plus follow-up frames) and the tab keeps polling. The
			// stamp reaches the carrier at the browser's first
			// post-click fault and the tab at its first fault after
			// that — both gated by the wait-list duration. The tab
			// acts on the command just inside δ.
			if err := browser.Click(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrScenario, err)
			}
			for t := time.Duration(0); t < 1800*time.Millisecond; t += 20 * time.Millisecond {
				if err := bm.Write(0, []byte{2}); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrScenario, err)
				}
				writes++
				if _, err := tm.Read(0, 1); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrScenario, err)
				}
				sys.Settle(20 * time.Millisecond)
			}
			if _, err := sys.Kernel.Open(tab, cam, fs.AccessRead); err != nil {
				missed++
			}
			st := shm.StatsSnapshot()
			faults += st.Faults
		}
		out = append(out, ShmWaitPoint{
			Wait:               wait,
			MissedPropagation:  float64(missed) / float64(trials),
			FaultsPerKiloWrite: float64(faults) / float64(writes) * 1000,
		})
	}
	return out, nil
}

// ClickjackResult compares the visibility defence on and off.
type ClickjackResult struct {
	DefenceOn  HijackOutcome
	DefenceOff HijackOutcome
}

// HijackOutcome counts clickjacking attempts and stolen interactions.
type HijackOutcome struct {
	Attempts int
	Hijacked int // attacker received an interaction notification
}

// Clickjacking runs the pop-over attack: the malicious client maps its
// window milliseconds before the user's click lands, then immediately
// tries the microphone.
func Clickjacking(trials int) (ClickjackResult, error) {
	if trials <= 0 {
		trials = 50
	}
	run := func(defence bool) (HijackOutcome, error) {
		vis := time.Duration(0)
		if !defence {
			vis = -1 // disabled
		}
		sys, err := core.Boot(core.Options{Enforce: true, VisibilityThreshold: vis, AlertSecret: "a"})
		if err != nil {
			return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
		if err != nil {
			return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		victim, err := sys.Launch("victim")
		if err != nil {
			return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		_ = victim
		mal, err := sys.LaunchAt("clickjacker", 500, 500, 100, 100)
		if err != nil {
			return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		if err := mal.Client.UnmapWindow(mal.Win); err != nil {
			return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		sys.Settle(2 * xserver.DefaultVisibilityThreshold)

		out := HijackOutcome{Attempts: trials}
		for i := 0; i < trials; i++ {
			sys.Settle(5 * time.Second) // expire previous stamps
			// Pop over where the user is about to click.
			if err := mal.Client.MapWindow(mal.Win); err != nil {
				return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
			}
			sys.Settle(30 * time.Millisecond)
			if got := sys.X.HardwareClick(510, 510); got != mal.Win {
				return HijackOutcome{}, fmt.Errorf("%w: click missed the overlay", ErrScenario)
			}
			sys.Settle(50 * time.Millisecond)
			if _, err := sys.Kernel.Open(mal.Proc, mic, fs.AccessRead); err == nil {
				out.Hijacked++
			}
			if err := mal.Client.UnmapWindow(mal.Win); err != nil {
				return HijackOutcome{}, fmt.Errorf("%w: %v", ErrScenario, err)
			}
		}
		return out, nil
	}

	on, err := run(true)
	if err != nil {
		return ClickjackResult{}, err
	}
	off, err := run(false)
	if err != nil {
		return ClickjackResult{}, err
	}
	return ClickjackResult{DefenceOn: on, DefenceOff: off}, nil
}

// PropagationResult reports whether the multi-process scenarios function
// with a propagation policy ablated.
type PropagationResult struct {
	Policy         string
	Enabled        bool
	LauncherWorks  bool // Figure 3 (needs P1)
	BrowserWorks   bool // Figure 4 (needs P2)
	CLIToolWorks   bool // §IV-B pty scenario (needs P2 then P1)
	DirectAppsWork bool // plain click→open must always work
}

// PropagationAblation runs the three multi-process scenarios with the
// given policy switched off, demonstrating exactly which application
// architectures each policy carries.
func PropagationAblation(policy string, enabled bool) (PropagationResult, error) {
	opts := core.Options{Enforce: true, AlertSecret: "a"}
	switch policy {
	case "P1":
		opts.DisableP1 = !enabled
	case "P2":
		opts.DisableP2 = !enabled
	default:
		return PropagationResult{}, fmt.Errorf("%w: unknown policy %q", ErrScenario, policy)
	}
	sys, err := core.Boot(opts)
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	cam, err := sys.Helper.Attach(devfs.ClassCamera)
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	res := PropagationResult{Policy: policy, Enabled: enabled}

	// Direct flow.
	direct, err := sys.Launch("direct")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	if err := direct.Click(); err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(50 * time.Millisecond)
	_, err = direct.OpenDevice(mic)
	res.DirectAppsWork = err == nil

	// Launcher (P1).
	launcher, err := apps.NewLauncher(sys, "run")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	tool, err := launcher.Run("shot")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	toolClient, err := sys.X.Connect(tool.PID(), "shot")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	_, err = toolClient.GetImage(xserver.Root)
	res.LauncherWorks = err == nil

	// Browser (P2).
	browser, err := apps.NewBrowser(sys, "chromium")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	tab, ch, err := browser.OpenTab()
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(2*xserver.DefaultVisibilityThreshold + 5*time.Second)
	res.BrowserWorks = browser.StartVideoChat(tab, ch, cam) == nil

	// CLI (pty = P2, then fork = P1).
	term, err := apps.NewTerminal(sys, "xterm")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	cliTool, err := term.RunCommand("arecord")
	if err != nil {
		return PropagationResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	_, err = sys.Kernel.Open(cliTool, mic, fs.AccessRead)
	res.CLIToolWorks = err == nil

	return res, nil
}

// PtraceResult compares the inject-after-launch attack with the guard on
// and off.
type PtraceResult struct {
	GuardOn  bool
	Injected bool // attacker's traced child opened the device
}

// PtraceGuard runs the launch-then-inject attack: malware with a fresh
// interaction forks a child (which inherits the stamp via P1), ptraces
// it, and drives it to open the microphone.
func PtraceGuard(guardOn bool) (PtraceResult, error) {
	sys, err := core.Boot(core.Options{Enforce: true, DisablePtraceGuard: !guardOn, AlertSecret: "a"})
	if err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	mal, err := sys.Launch("trojan")
	if err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	if err := mal.Click(); err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	victim, err := mal.Proc.Fork()
	if err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if err := victim.Exec("legit-recorder", "/usr/bin/legit-recorder"); err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if err := mal.Proc.PtraceAttach(victim); err != nil {
		return PtraceResult{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sys.Settle(100 * time.Millisecond)
	_, err = sys.Kernel.Open(victim, mic, fs.AccessRead)
	return PtraceResult{GuardOn: guardOn, Injected: err == nil}, nil
}

// FormatThreshold renders a δ sweep table.
func FormatThreshold(points []ThresholdPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %16s %16s\n", "δ", "false-deny rate", "attack window")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10v %15.1f%% %15.1f%%\n", p.Threshold, p.FalseDenyRate*100, p.AttackWindow*100)
	}
	return b.String()
}

// FormatShmWait renders a wait-list sweep table.
func FormatShmWait(points []ShmWaitPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %20s %20s\n", "wait", "missed propagation", "faults/kilo-write")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10v %19.1f%% %20.2f\n", p.Wait, p.MissedPropagation*100, p.FaultsPerKiloWrite)
	}
	return b.String()
}
