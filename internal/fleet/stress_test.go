package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"overhaul/internal/monitor"
)

// TestFleetChurnUnderLoad is the -race stress test from the issue:
// sessions are created and destroyed concurrently while dispatch
// workers hammer the ingress and a config worker rolls the shared
// Tables snapshot. Every request must either succeed or fail with a
// clean lifecycle sentinel — never a race, never a verdict from a
// half-built or torn-down session.
func TestFleetChurnUnderLoad(t *testing.T) {
	f := newTestFleet(t, Config{AuditCapacity: 8})

	const (
		churners    = 4
		dispatchers = 4
		perWorker   = 2000
	)

	// Seed a stable population the dispatchers can always hit.
	stable := make([]uint64, 16)
	pids := make([]int, len(stable))
	for i := range stable {
		s, pid := mustSpawnStamped(f)
		stable[i], pids[i] = s.ID(), pid
	}

	var live sync.Map // ids created by churners, for dispatchers to target
	var unexpected atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint64
			for i := 0; i < perWorker; i++ {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					s := f.CreateSession()
					if _, err := s.Spawn(); err != nil && !errors.Is(err, ErrSessionClosed) {
						unexpected.Add(1)
					}
					live.Store(s.ID(), struct{}{})
					mine = append(mine, s.ID())
				} else {
					id := mine[rng.Intn(len(mine))]
					mine[0], mine = mine[len(mine)-1], mine[:len(mine)-1]
					live.Delete(id)
					if err := f.CloseSession(id); err != nil && !errors.Is(err, ErrNoSuchSession) {
						unexpected.Add(1)
					}
				}
			}
			for _, id := range mine {
				live.Delete(id)
				_ = f.CloseSession(id)
			}
		}(int64(100 + w))
	}

	opTime := base.Add(time.Second).UnixNano()
	for w := 0; w < dispatchers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				var id uint64
				var pid int
				if rng.Intn(2) == 0 {
					k := rng.Intn(len(stable))
					id, pid = stable[k], pids[k]
				} else {
					// Target a churning session: it may vanish mid-flight,
					// which must surface as a lifecycle sentinel only.
					live.Range(func(k, _ any) bool { id = k.(uint64); return rng.Intn(4) == 0 })
					pid = 1
				}
				kind := RequestDecide
				if i%8 == 0 {
					kind = RequestNotify
				}
				_, err := f.Dispatch(Request{SessionID: id, Kind: kind, PID: pid, Op: monitor.OpMic, Time: opTime})
				if err != nil && !errors.Is(err, ErrNoSuchSession) &&
					!errors.Is(err, ErrSessionClosed) && !errors.Is(err, ErrNoSuchProcess) {
					unexpected.Add(1)
				}
			}
		}(int64(200 + w))
	}

	// One writer rolls the shared snapshot for the whole run; it stops
	// once every churner and dispatcher has drained.
	stop := make(chan struct{})
	rollerDone := make(chan struct{})
	go func() {
		defer close(rollerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.UpdateTables(func(d *TablesDraft) { d.Policy.Enforce = i%2 == 0 })
		}
	}()

	wg.Wait()
	close(stop)
	<-rollerDone

	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d requests failed with non-lifecycle errors", n)
	}
	// The stable population must have survived the churn intact.
	for i, id := range stable {
		s, ok := f.Session(id)
		if !ok || s.Closed() {
			t.Fatalf("stable session %d (id %d) lost during churn", i, id)
		}
	}
}

func mustSpawnStamped(f *Fleet) (*Session, int) {
	s := f.CreateSession()
	pid, err := s.Spawn()
	if err != nil {
		panic(err)
	}
	if err := s.Notify(pid, base); err != nil {
		panic(err)
	}
	return s, pid
}
