package core_test

// Cross-cutting integration: one machine, every subsystem at once — GUI
// apps, a launcher, a terminal with a shell, a multi-process browser, a
// D-Bus service, and spyware — over a simulated working day, with the
// audit totals reconciled at the end. This is the "everything wired
// together" test; the per-scenario details live in each package.

import (
	"testing"
	"time"

	"overhaul/internal/apps"
	"overhaul/internal/auditlog"
	"overhaul/internal/core"
	"overhaul/internal/fs"
	"overhaul/internal/malware"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

func TestFullDayKitchenSink(t *testing.T) {
	sys, mic, cam, err := core.BootDefault()
	if err != nil {
		t.Fatalf("BootDefault: %v", err)
	}
	settle := func() { sys.Settle(2 * xserver.DefaultVisibilityThreshold) }
	wantGrants, wantDenials := 0, 0

	// 09:00 — the user places a video call.
	video, err := apps.NewVideoConf(sys, "jitsi", mic, cam, false)
	if err != nil {
		t.Fatalf("NewVideoConf: %v", err)
	}
	settle()
	if err := video.PlaceCall(); err != nil {
		t.Fatalf("PlaceCall: %v", err)
	}
	wantGrants += 2 // mic + cam

	// 10:00 — launcher starts a screenshot tool (P1).
	sys.Settle(time.Hour)
	launcher, err := apps.NewLauncher(sys, "run")
	if err != nil {
		t.Fatalf("NewLauncher: %v", err)
	}
	settle()
	shotProc, err := launcher.Run("shot")
	if err != nil {
		t.Fatalf("launcher.Run: %v", err)
	}
	shotClient, err := sys.X.Connect(shotProc.PID(), "shot")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := shotClient.GetImage(xserver.Root); err != nil {
		t.Fatalf("launcher-spawned capture: %v", err)
	}
	wantGrants++ // scr

	// 11:00 — terminal: the user records audio from the CLI (pty P2 + fork P1).
	sys.Settle(time.Hour)
	term, err := apps.NewTerminal(sys, "xterm")
	if err != nil {
		t.Fatalf("NewTerminal: %v", err)
	}
	settle()
	arecord, err := term.RunCommand("arecord meeting.wav")
	if err != nil {
		t.Fatalf("RunCommand: %v", err)
	}
	if _, err := sys.Kernel.Open(arecord, mic, fs.AccessRead); err != nil {
		t.Fatalf("CLI mic open: %v", err)
	}
	wantGrants++ // mic

	// 13:00 — browser video chat in a tab (shm P2).
	sys.Settle(2 * time.Hour)
	browser, err := apps.NewBrowser(sys, "chromium")
	if err != nil {
		t.Fatalf("NewBrowser: %v", err)
	}
	tab, ch, err := browser.OpenTab()
	if err != nil {
		t.Fatalf("OpenTab: %v", err)
	}
	settle()
	if err := browser.StartVideoChat(tab, ch, cam); err != nil {
		t.Fatalf("StartVideoChat: %v", err)
	}
	wantGrants++ // cam

	// 14:00 — a settings UI asks a media service over D-Bus to record.
	sys.Settle(time.Hour)
	bus, err := apps.NewBus(sys)
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	ui, err := sys.Launch("settings")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	svc, err := sys.LaunchHeadless("mediasvc")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	cUI, err := bus.Attach(ui.Proc, "org.ui")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cSvc, err := bus.Attach(svc, "org.media")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	settle()
	if err := ui.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	if err := cUI.Send("org.media", []byte("rec")); err != nil {
		t.Fatalf("bus Send: %v", err)
	}
	if _, err := cSvc.Recv(); err != nil {
		t.Fatalf("bus Recv: %v", err)
	}
	if _, err := sys.Kernel.Open(svc, mic, fs.AccessRead); err != nil {
		t.Fatalf("bus-driven mic open: %v", err)
	}
	wantGrants++ // mic

	// All day long — spyware polls everything and gets nothing.
	spy, err := malware.Install(sys, mic)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	for i := 0; i < 6; i++ {
		sys.Settle(30 * time.Minute)
		spy.StealScreen()
		spy.StealAudio()
		wantDenials += 2 // scr + mic attempts
	}
	if spy.Report().TotalStolen() != 0 {
		t.Fatalf("spyware stole %d records", spy.Report().TotalStolen())
	}

	// Reconcile the audit log with the day's expectations.
	grants, denials := 0, 0
	for _, d := range sys.Audit() {
		switch d.Verdict {
		case monitor.VerdictGrant:
			grants++
		case monitor.VerdictDeny:
			denials++
		}
	}
	if grants != wantGrants {
		t.Fatalf("audited grants = %d, want %d", grants, wantGrants)
	}
	if denials != wantDenials {
		t.Fatalf("audited denials = %d, want %d", denials, wantDenials)
	}

	// The persisted log agrees.
	w, err := auditlog.NewWriter(sys.FS, sys.Kernel.Monitor())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	n, err := w.Flush()
	if err != nil || n != grants+denials {
		t.Fatalf("Flush = %d, %v; want %d", n, err, grants+denials)
	}
	denyLines, err := w.Grep(fs.Root, "verdict=deny")
	if err != nil || len(denyLines) != wantDenials {
		t.Fatalf("log denials = %d, %v; want %d", len(denyLines), err, wantDenials)
	}
}
