// Videoconf: the Skype scenario from the paper's evaluation — a
// video-conferencing client that probes the camera on startup (denied,
// producing the one "spurious" alert §V-C reports) and then places a
// user-initiated call that opens both microphone and camera (granted).
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
	"overhaul/internal/apps"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "videoconf:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, mic, cam, err := overhaul.NewProtected("tabby-cat")
	if err != nil {
		return err
	}

	// Launch with the autostart camera probe enabled — Skype's exact
	// behaviour when configured to start on boot.
	skype, err := apps.NewVideoConf(sys, "skype", mic, cam, true)
	if err != nil {
		return err
	}
	fmt.Println("startup probe:")
	for _, d := range sys.Audit() {
		fmt.Printf("  pid=%d op=%s verdict=%s — %s\n", d.PID, d.Op, d.Verdict, d.Reason)
	}
	for _, a := range sys.ActiveAlerts() {
		fmt.Printf("  alert: %q\n", a.Message)
	}

	// The user arrives and places a call: the click unlocks both
	// devices, startup denial notwithstanding.
	sys.Settle(2 * time.Second)
	if err := skype.PlaceCall(); err != nil {
		return fmt.Errorf("call should succeed after the user clicks: %w", err)
	}
	fmt.Println("\ncall placed:")
	for _, a := range sys.ActiveAlerts() {
		fmt.Printf("  alert: %q\n", a.Message)
	}
	fmt.Println("\nno functional breakage: the startup denial did not affect the call (§V-C).")
	return nil
}
