package workload

import (
	"strings"
	"testing"
	"time"

	"overhaul/internal/malware"
	"overhaul/internal/monitor"
)

func TestPoolSizesMatchPaper(t *testing.T) {
	if got := len(DevicePool()); got != 58 {
		t.Fatalf("device pool = %d apps, paper tested 58", got)
	}
	if got := len(ClipboardPool()); got != 50 {
		t.Fatalf("clipboard pool = %d apps, paper tested 50", got)
	}
}

func TestPoolNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range append(DevicePool(), ClipboardPool()...) {
		if seen[s.Name] {
			t.Fatalf("duplicate pool entry %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestApplicabilityMatchesPaper(t *testing.T) {
	rep, err := RunApplicability()
	if err != nil {
		t.Fatalf("RunApplicability: %v", err)
	}
	if rep.Tested != 58 {
		t.Fatalf("tested = %d, want 58", rep.Tested)
	}
	// Paper: no malfunctioning applications.
	if rep.Malfunctioning != 0 {
		for _, r := range rep.Results {
			if !r.Worked {
				t.Logf("broken: %s (%s)", r.Spec.Name, r.Spec.Category)
			}
		}
		t.Fatalf("malfunctioning = %d, want 0", rep.Malfunctioning)
	}
	// Paper: exactly one spurious alert — Skype's startup camera probe.
	if rep.SpuriousAlerts != 1 {
		t.Fatalf("spurious alerts = %d, want 1 (skype autostart)", rep.SpuriousAlerts)
	}
	// Paper: delayed screenshots are a known limitation.
	if len(rep.Limitations) == 0 {
		t.Fatal("expected delayed-screenshot limitations")
	}
	for _, l := range rep.Limitations {
		if !strings.Contains(l, "delayed screenshot") {
			t.Fatalf("unexpected limitation: %s", l)
		}
	}
}

func TestClipboardAssessmentMatchesPaper(t *testing.T) {
	rep, err := RunClipboard()
	if err != nil {
		t.Fatalf("RunClipboard: %v", err)
	}
	if rep.Tested != 50 {
		t.Fatalf("tested = %d, want 50", rep.Tested)
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("false positives = %d, want 0", rep.FalsePositives)
	}
	if rep.Misbehaviour != 0 {
		t.Fatalf("misbehaviour = %d, want 0", rep.Misbehaviour)
	}
	if rep.AlertsShown != 0 {
		t.Fatalf("clipboard alerts = %d, want 0 (silent by design)", rep.AlertsShown)
	}
}

func TestEmpiricalMatchesPaper(t *testing.T) {
	rep, err := RunEmpirical(EmpiricalConfig{Days: 21, Seed: 42})
	if err != nil {
		t.Fatalf("RunEmpirical: %v", err)
	}
	p, u := rep.ProtectedMachine, rep.UnprotectedMachine

	// Protected machine: the malware collected nothing in 21 days.
	if got := p.Malware.TotalStolen(); got != 0 {
		t.Fatalf("protected machine leaked %d records", got)
	}
	// No legitimate application was ever blocked.
	if p.LegitDenials != 0 {
		t.Fatalf("protected machine false positives = %d, want 0", p.LegitDenials)
	}
	// Legitimate use kept working daily: mic/cam/screen/clipboard all
	// granted 21+ times.
	for _, op := range []monitor.Op{monitor.OpMic, monitor.OpCam, monitor.OpScreen, monitor.OpCopy, monitor.OpPaste} {
		if p.LegitGrants[op] < 21 {
			t.Fatalf("protected grants[%s] = %d, want >= 21", op, p.LegitGrants[op])
		}
	}

	// Unprotected machine: the same malware stole everything it tried.
	if u.Malware.TotalStolen() == 0 {
		t.Fatal("unprotected machine leaked nothing; the attack should succeed")
	}
	for _, a := range []struct {
		name string
		att  malware.Attempt
	}{
		{"clipboard", u.Malware.Clipboard},
		{"screen", u.Malware.Screen},
		{"audio", u.Malware.Audio},
	} {
		if a.att.Successes == 0 {
			t.Fatalf("unprotected %s thefts = 0, want > 0 (tries %d)", a.name, a.att.Tries)
		}
	}
	// Identical schedules: both machines saw the same number of tries.
	if p.Malware.Clipboard.Tries != u.Malware.Clipboard.Tries {
		t.Fatalf("schedules diverged: %d vs %d clipboard tries",
			p.Malware.Clipboard.Tries, u.Malware.Clipboard.Tries)
	}
	// The stolen clipboard data includes a copied password.
	foundPassword := false
	for _, l := range u.Malware.Loot {
		if l.Kind == malware.LootClipboard && strings.HasPrefix(string(l.Data), "pw-") {
			foundPassword = true
		}
	}
	if !foundPassword {
		t.Fatal("no password found in unprotected loot")
	}
}

func TestCategoryStrings(t *testing.T) {
	cats := []Category{CatVideoConf, CatAudioEditor, CatVideoRecorder, CatAudioRecorder,
		CatScreenshot, CatScreencast, CatBrowser, CatClipboard, Category(99)}
	for _, c := range cats {
		if c.String() == "" {
			t.Fatalf("empty name for category %d", c)
		}
	}
}

func TestEmpiricalDeterministicPerSeed(t *testing.T) {
	a, err := RunEmpirical(EmpiricalConfig{Days: 4, Seed: 9})
	if err != nil {
		t.Fatalf("RunEmpirical: %v", err)
	}
	b, err := RunEmpirical(EmpiricalConfig{Days: 4, Seed: 9})
	if err != nil {
		t.Fatalf("RunEmpirical: %v", err)
	}
	if a.UnprotectedMachine.Malware.TotalStolen() != b.UnprotectedMachine.Malware.TotalStolen() {
		t.Fatalf("same seed diverged: %d vs %d",
			a.UnprotectedMachine.Malware.TotalStolen(), b.UnprotectedMachine.Malware.TotalStolen())
	}
	if a.ProtectedMachine.Malware.Clipboard.Tries != b.ProtectedMachine.Malware.Clipboard.Tries {
		t.Fatal("schedules diverged across identical runs")
	}
}

func TestEmpiricalDifferentSeedsDiffer(t *testing.T) {
	a, err := RunEmpirical(EmpiricalConfig{Days: 4, Seed: 1})
	if err != nil {
		t.Fatalf("RunEmpirical: %v", err)
	}
	b, err := RunEmpirical(EmpiricalConfig{Days: 4, Seed: 2})
	if err != nil {
		t.Fatalf("RunEmpirical: %v", err)
	}
	// Different activity schedules (attempt counts are randomized per
	// day); it would be suspicious if they matched exactly.
	if a.UnprotectedMachine.Malware.Clipboard.Tries == b.UnprotectedMachine.Malware.Clipboard.Tries {
		t.Log("seeds produced equal try counts; acceptable but unusual")
	}
	// The security outcome is seed-independent.
	if a.ProtectedMachine.Malware.TotalStolen() != 0 || b.ProtectedMachine.Malware.TotalStolen() != 0 {
		t.Fatal("protected machine leaked under some seed")
	}
}

// TestFleetMixStreams checks the mix catalog: deterministic streams,
// sane arrival gaps, op distributions matching each profile, and the
// spyware mix replaying the stealer's exact poll cycle.
func TestFleetMixStreams(t *testing.T) {
	for _, mix := range Mixes() {
		if _, err := MixByName(mix.Name); err != nil {
			t.Errorf("MixByName(%q): %v", mix.Name, err)
		}
		a, b := mix.Stream(42), mix.Stream(42)
		var meanGap time.Duration
		notifies := 0
		const n = 5000
		for i := 0; i < n; i++ {
			ea, eb := a.Next(), b.Next()
			if ea != eb {
				t.Fatalf("%s: streams with equal seeds diverge at event %d: %+v vs %+v", mix.Name, i, ea, eb)
			}
			if ea.Gap < 0 {
				t.Fatalf("%s: negative gap %v", mix.Name, ea.Gap)
			}
			meanGap += ea.Gap
			if ea.Notify {
				notifies++
			} else if ea.Op == "" {
				t.Fatalf("%s: decision event with empty op", mix.Name)
			}
		}
		gotRatio := float64(notifies) / n
		if gotRatio < mix.NotifyRatio-0.05 || gotRatio > mix.NotifyRatio+0.05 {
			t.Errorf("%s: notify ratio %.3f, want ≈%.2f", mix.Name, gotRatio, mix.NotifyRatio)
		}
		if meanGap/n <= 0 {
			t.Errorf("%s: degenerate mean gap %v", mix.Name, meanGap/n)
		}
	}

	// The spyware mix must cycle the stealer's poll pattern verbatim.
	s := SpywareHeavy().Stream(7)
	want := malware.PollOps()
	idx := 0
	for i := 0; i < 100; i++ {
		ev := s.Next()
		if ev.Notify {
			continue
		}
		if ev.Op != want[idx%len(want)] {
			t.Fatalf("spyware op %d = %v, want %v (poll cycle)", i, ev.Op, want[idx%len(want)])
		}
		idx++
	}
	if _, err := MixByName("no-such-mix"); err == nil {
		t.Error("MixByName accepted an unknown mix")
	}
}
