package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"overhaul/internal/malware"
	"overhaul/internal/monitor"
)

// FleetMix is a named per-session traffic profile for fleet-scale load
// generation: how often events arrive (the arrival process) and what
// each event is (an interaction notification or a sensitive-device
// decision, and for decisions which op). Mixes are declarative and
// stateless; Stream instantiates one deterministic event stream per
// session, which is what lets an open-loop generator pre-schedule
// arrivals and lets two runs with the same seed produce the same
// traffic.
type FleetMix struct {
	// Name identifies the mix on the command line and in reports.
	Name string

	// Arrival selects the arrival process.
	Arrival ArrivalKind
	// Rate is the mean event rate per session, events/second.
	Rate float64
	// BurstLen is the mean burst length for ArrivalBursty (events per
	// burst, geometrically distributed).
	BurstLen int
	// BurstGap is the mean idle time between bursts for ArrivalBursty.
	BurstGap time.Duration

	// NotifyRatio is the probability that an event is a user
	// interaction N_{A,t} rather than a permission query Q_{A,t}.
	// Interactive desks sit near the empirical click rate; bot traffic
	// has almost none — which is exactly why the monitor denies it.
	NotifyRatio float64

	// Ops is the weighted op distribution for decision events. For
	// pattern mixes (OpPattern non-nil) it is ignored.
	Ops []OpWeight
	// OpPattern, when non-nil, cycles decision ops through a fixed
	// sequence instead of sampling Ops — the spyware mix replays the
	// stealer's poll cycle this way.
	OpPattern []monitor.Op
}

// OpWeight weights one op in a mix's decision distribution.
type OpWeight struct {
	Op     monitor.Op
	Weight int
}

// ArrivalKind selects an arrival process.
type ArrivalKind int

// Arrival processes.
const (
	// ArrivalPoisson models independent human-paced events:
	// exponential inter-arrival gaps with mean 1/Rate.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty models automated traffic: geometric bursts of
	// back-to-back events at Rate, separated by exponential idle gaps
	// with mean BurstGap.
	ArrivalBursty
)

// PoissonDesks is the baseline mix: independent interactive desktops.
// Users click and type (frequent notifications), and sensitive-device
// use follows interaction closely, so most decisions land inside the
// proximity window. Rates follow the paper's empirical workload
// (VI-B): a user interaction every few seconds while active.
func PoissonDesks() FleetMix {
	return FleetMix{
		Name:        "poisson-desks",
		Arrival:     ArrivalPoisson,
		Rate:        2.0,
		NotifyRatio: 0.7,
		Ops: []OpWeight{
			{Op: monitor.OpPaste, Weight: 4},
			{Op: monitor.OpCopy, Weight: 4},
			{Op: monitor.OpMic, Weight: 1},
			{Op: monitor.OpCam, Weight: 1},
			{Op: monitor.OpScreen, Weight: 1},
		},
	}
}

// BotStorm is the adversarial mix: automated sessions that burst
// sensitive-device queries with essentially no user interaction — the
// traffic shape of a mass-deployed bot probing devices. Nearly every
// decision is a denial, which stresses the deny path and the audit
// ring eviction.
func BotStorm() FleetMix {
	return FleetMix{
		Name:        "bot-storm",
		Arrival:     ArrivalBursty,
		Rate:        200.0,
		BurstLen:    32,
		BurstGap:    5 * time.Second,
		NotifyRatio: 0.01,
		Ops: []OpWeight{
			{Op: monitor.OpMic, Weight: 3},
			{Op: monitor.OpCam, Weight: 3},
			{Op: monitor.OpScreen, Weight: 2},
			{Op: monitor.OpOther, Weight: 2},
		},
	}
}

// SpywareHeavy replays the §V-D information stealer at fleet scale:
// steady background polling of clipboard, screen, and microphone (the
// exact malware.PollOps cycle) over a lightly-interacting user, so a
// realistic minority of steals lands inside the proximity window —
// the residual-vulnerability traffic shape.
func SpywareHeavy() FleetMix {
	return FleetMix{
		Name:        "spyware-heavy",
		Arrival:     ArrivalPoisson,
		Rate:        6.0,
		NotifyRatio: 0.15,
		OpPattern:   malware.PollOps(),
	}
}

// Mixes returns the named mix catalog.
func Mixes() []FleetMix {
	return []FleetMix{PoissonDesks(), BotStorm(), SpywareHeavy()}
}

// MixByName resolves a mix from its command-line name.
func MixByName(name string) (FleetMix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return FleetMix{}, fmt.Errorf("workload: unknown fleet mix %q", name)
}

// FleetEvent is one scheduled unit of session traffic.
type FleetEvent struct {
	// Gap is the inter-arrival time since the previous event.
	Gap time.Duration
	// Notify marks an interaction notification; otherwise the event is
	// a decision for Op.
	Notify bool
	// Op is the queried operation for decision events.
	Op monitor.Op
}

// MixStream is one session's deterministic event stream: a mix plus
// private arrival/pattern state. Not safe for concurrent use — each
// generator worker owns its streams.
type MixStream struct {
	mix       FleetMix
	rng       *rand.Rand
	totalW    int
	burstLeft int
	patIdx    int
}

// Stream instantiates the mix for one session. Streams with equal
// seeds produce identical traffic.
func (m FleetMix) Stream(seed int64) *MixStream {
	total := 0
	for _, w := range m.Ops {
		total += w.Weight
	}
	return &MixStream{mix: m, rng: rand.New(rand.NewSource(seed)), totalW: total}
}

// Next produces the session's next event.
func (s *MixStream) Next() FleetEvent {
	ev := FleetEvent{Gap: s.nextGap()}
	if s.rng.Float64() < s.mix.NotifyRatio {
		ev.Notify = true
		return ev
	}
	ev.Op = s.nextOp()
	return ev
}

// nextGap samples the inter-arrival time.
func (s *MixStream) nextGap() time.Duration {
	m := &s.mix
	switch m.Arrival {
	case ArrivalBursty:
		if s.burstLeft > 0 {
			s.burstLeft--
			return s.expGap(m.Rate)
		}
		// Start a new burst after an idle period; burst length is
		// geometric with mean BurstLen.
		n := 1
		for n < 4*m.BurstLen && s.rng.Float64() > 1.0/float64(m.BurstLen) {
			n++
		}
		s.burstLeft = n - 1
		idle := -math.Log(1-s.rng.Float64()) * float64(m.BurstGap)
		return time.Duration(idle)
	default: // ArrivalPoisson
		return s.expGap(m.Rate)
	}
}

// expGap samples an exponential gap with mean 1/rate seconds.
func (s *MixStream) expGap(rate float64) time.Duration {
	if rate <= 0 {
		return time.Second
	}
	gap := -math.Log(1-s.rng.Float64()) / rate
	return time.Duration(gap * float64(time.Second))
}

// nextOp samples or cycles the decision op.
func (s *MixStream) nextOp() monitor.Op {
	m := &s.mix
	if len(m.OpPattern) > 0 {
		op := m.OpPattern[s.patIdx]
		s.patIdx = (s.patIdx + 1) % len(m.OpPattern)
		return op
	}
	if s.totalW == 0 {
		return monitor.OpOther
	}
	r := s.rng.Intn(s.totalW)
	for _, w := range m.Ops {
		r -= w.Weight
		if r < 0 {
			return w.Op
		}
	}
	return m.Ops[len(m.Ops)-1].Op
}
