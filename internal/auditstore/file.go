package auditstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"overhaul/internal/faultinject"
)

// Segment files are named seg-<8 hex file id>.jsonl. The id is a
// monotonically increasing file counter, *not* a sequence number:
// compaction writes merged records into a fresh, higher id so its
// output can never collide with a source file, and recovery orders
// overlapping segments by (first sequence, id). Compaction staging
// uses a ".tmp" suffix; a leftover tmp file is a crashed compaction
// and is discarded on open.
const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
	tmpSuffix = ".tmp"
)

// Options parameterises a FileStore.
type Options struct {
	// SegmentRecords rotates the active segment after this many
	// records. Zero selects DefaultSegmentRecords.
	SegmentRecords int
	// CompactSealed compacts the sealed segments into one once their
	// count reaches this threshold. Zero selects DefaultCompactSealed;
	// negative disables automatic compaction.
	CompactSealed int
	// Hook is the fault-injection hook consulted at every write seam
	// (append, rotation, compaction). Nil never injects. Recovery
	// (Open) runs fault-free by construction: reopening is the repair
	// path, and a repair path that can be re-broken mid-repair would
	// turn every injected crash into an unbounded crash loop.
	Hook faultinject.Hook
	// Sync fsyncs segment data at rotation, compaction, and Close.
	Sync bool
}

// Defaults for Options.
const (
	DefaultSegmentRecords = 256
	DefaultCompactSealed  = 8
)

// Recovery reports what Open found and did. A store that came back
// with anything other than a clean, contiguous, CRC-verified stream
// says so here — never a silent gap.
type Recovery struct {
	// Segments is the number of segment files scanned.
	Segments int
	// Records is the size of the recovered consistent prefix.
	Records int
	// LastSeq is the last sequence number in the recovered prefix.
	LastSeq uint64
	// Clean reports a perfectly ordinary open: contiguous stream, no
	// torn bytes, no leftovers.
	Clean bool
	// Truncated reports that data present in the directory was
	// discarded to reach a consistent prefix.
	Truncated bool
	// TruncatedFile and TruncatedOffset locate the first discarded
	// byte when Truncated.
	TruncatedFile   string
	TruncatedOffset int
	// Reason says why the prefix ends where it does ("" when clean).
	Reason string
	// DroppedRecords counts decodable records discarded (beyond a
	// sequence gap); DroppedBytes counts undecodable tail bytes.
	DroppedRecords int
	DroppedBytes   int
	// RemovedFiles lists tmp leftovers and damaged or duplicate
	// segments that normalization rewrote away.
	RemovedFiles []string
}

// segmentInfo is one on-disk segment's bookkeeping.
type segmentInfo struct {
	id   uint64
	path string
	recs int
}

// FileStore is the durable backend: an append-only JSONL segment log
// with a MemStore in front of it as the query index. Writes go to the
// segment first and the index second, so the index only ever reflects
// durable records. After a torn write or an injected crash every
// operation fails with ErrStoreFailed until the directory is reopened:
// Open replays the segments to a consistent, CRC-verified prefix and
// reports the exact truncation point. It is safe for concurrent use.
type FileStore struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	mem      *MemStore
	cur      *os.File
	curID    uint64
	curRecs  int
	sealed   []segmentInfo
	nextID   uint64
	failed   error
	closed   bool
	recovery Recovery
}

// Open opens (creating if needed) a store directory, recovering it to
// a consistent state: tmp leftovers are discarded, segments are merged
// in sequence order with compaction overlaps deduplicated, and the
// stream is cut at the first torn frame, CRC mismatch, or sequence gap.
// When anything had to be discarded, the surviving prefix is rewritten
// into a fresh segment and the damaged files removed, so a second open
// is clean; the Recovery report (FileStore.Recovery) records exactly
// what was found.
func Open(dir string, opts Options) (*FileStore, error) {
	if opts.SegmentRecords == 0 {
		opts.SegmentRecords = DefaultSegmentRecords
	}
	if opts.SegmentRecords < 0 {
		return nil, fmt.Errorf("auditstore: negative segment size %d", opts.SegmentRecords)
	}
	if opts.CompactSealed == 0 {
		opts.CompactSealed = DefaultCompactSealed
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("auditstore: open %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir, opts: opts, mem: NewMemStore(), nextID: 1}
	if err := fs.recover(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Dir returns the store directory. dir is immutable after Open, but
// taking the lock keeps the guarded-field contract uniform.
func (fs *FileStore) Dir() string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dir
}

// Recovery returns the report of the Open that produced this store.
func (fs *FileStore) Recovery() Recovery {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.recovery
}

// segPath renders the segment file path for a file id.
func (fs *FileStore) segPath(id uint64) string {
	return filepath.Join(fs.dir, fmt.Sprintf("%s%08x%s", segPrefix, id, segSuffix))
}

// parseSegID extracts the file id from a segment file name.
func parseSegID(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexID := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexID) != 8 {
		return 0, false
	}
	id, err := strconv.ParseUint(hexID, 16, 64)
	return id, err == nil
}

// loadedSegment is one decoded segment during recovery.
type loadedSegment struct {
	id    uint64
	path  string
	recs  []Record
	offs  []int
	trunc *Truncation
	size  int
}

// recover scans the directory and rebuilds a consistent store state.
func (fs *FileStore) recover() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
	}
	rec := &fs.recovery
	var segs []loadedSegment
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crashed compaction's staging file: its contents were
			// never part of the published stream.
			path := filepath.Join(fs.dir, name)
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
			}
			rec.RemovedFiles = append(rec.RemovedFiles, name)
			continue
		}
		id, ok := parseSegID(name)
		if !ok {
			continue // not ours; leave foreign files alone
		}
		data, err := os.ReadFile(filepath.Join(fs.dir, name))
		if err != nil {
			return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
		}
		recs, offs, _, trunc := decodeSegmentOffsets(data)
		segs = append(segs, loadedSegment{
			id: id, path: filepath.Join(fs.dir, name),
			recs: recs, offs: offs, trunc: trunc, size: len(data),
		})
		if id >= fs.nextID {
			fs.nextID = id + 1
		}
	}
	rec.Segments = len(segs)
	// Order by (first sequence, file id): compaction output overlaps
	// its sources at the same sequences but carries a higher id.
	sort.Slice(segs, func(i, j int) bool {
		si, sj := firstSeq(segs[i]), firstSeq(segs[j])
		if si != sj {
			return si < sj
		}
		return segs[i].id < segs[j].id
	})

	// Merge into the longest contiguous, verified prefix.
	anomaly := len(rec.RemovedFiles) > 0
	var next uint64
	stopped := false
	for si, seg := range segs {
		for ri, r := range seg.recs {
			if stopped {
				rec.DroppedRecords++
				continue
			}
			if next == 0 {
				next = r.Seq // the stream starts wherever retention left it
			}
			if r.Seq < next {
				// Overlap from an interrupted compaction cleanup: the
				// record is already in the prefix.
				anomaly = true
				continue
			}
			if r.Seq > next {
				stopped = true
				anomaly = true
				rec.Truncated = true
				rec.TruncatedFile = filepath.Base(seg.path)
				rec.TruncatedOffset = seg.offs[ri]
				rec.Reason = fmt.Sprintf("sequence gap: have %d, next record is %d", next-1, r.Seq)
				rec.DroppedRecords++
				continue
			}
			if err := fs.mem.adopt(r); err != nil {
				return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
			}
			next = r.Seq + 1
		}
		if seg.trunc != nil {
			anomaly = true
			torn := seg.size - seg.trunc.Offset
			rec.DroppedBytes += torn
			if !stopped {
				// The first damage defines the truncation point; frames
				// beyond it (in later segments) fall to the gap rule.
				rec.Truncated = true
				rec.TruncatedFile = filepath.Base(seg.path)
				rec.TruncatedOffset = seg.trunc.Offset
				rec.Reason = seg.trunc.Reason
				if si < len(segs)-1 {
					stopped = true
				}
			}
		}
		if len(seg.recs) == 0 && seg.trunc == nil && si < len(segs)-1 {
			// An empty segment that is not the newest: a crash window
			// between creating the active file and first writing to it,
			// later superseded. Harmless, but normalize it away.
			anomaly = true
		}
	}
	n, err := fs.mem.Count()
	if err != nil {
		return err
	}
	rec.Records = n
	rec.LastSeq = fs.mem.LastSeq()
	rec.Clean = !anomaly

	if anomaly {
		return fs.normalize(segs)
	}
	// Clean open: adopt the layout as it stands. The newest segment
	// stays active if it has room; everything else is sealed.
	for i, seg := range segs {
		if i == len(segs)-1 && len(seg.recs) < fs.opts.SegmentRecords {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("auditstore: recover %s: %w", fs.dir, err)
			}
			fs.cur, fs.curID, fs.curRecs = f, seg.id, len(seg.recs)
			continue
		}
		fs.sealed = append(fs.sealed, segmentInfo{id: seg.id, path: seg.path, recs: len(seg.recs)})
	}
	return nil
}

// firstSeq returns the segment's first sequence number, or the maximum
// value for empty segments so they sort last among equals.
func firstSeq(s loadedSegment) uint64 {
	if len(s.recs) == 0 {
		return ^uint64(0)
	}
	return s.recs[0].Seq
}

// decodeSegmentOffsets is DecodeSegment plus the byte offset of every
// decoded record, for truncation reporting.
func decodeSegmentOffsets(data []byte) ([]Record, []int, int, *Truncation) {
	recs, n, trunc := DecodeSegment(data)
	offs := make([]int, len(recs))
	off := 0
	for i, r := range recs {
		offs[i] = off
		line, err := EncodeRecord(r)
		if err != nil {
			// Unreachable: r decoded from a frame, so it re-encodes.
			break
		}
		off += len(line)
	}
	return recs, offs, n, trunc
}

// normalize rewrites the recovered prefix into one fresh segment and
// removes every older file, so the directory decodes cleanly next
// time. Runs fault-free (see Options.Hook).
func (fs *FileStore) normalize(old []loadedSegment) error {
	n, err := fs.mem.Count()
	if err != nil {
		return err
	}
	if n > 0 {
		id := fs.nextID
		fs.nextID++
		path := fs.segPath(id)
		if err := fs.writeSegment(path, 0, n); err != nil {
			return fmt.Errorf("auditstore: normalize %s: %w", fs.dir, err)
		}
		fs.sealed = append(fs.sealed, segmentInfo{id: id, path: path, recs: n})
	}
	for _, seg := range old {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("auditstore: normalize %s: %w", fs.dir, err)
		}
		fs.recovery.RemovedFiles = append(fs.recovery.RemovedFiles, filepath.Base(seg.path))
	}
	return nil
}

// writeSegment stages records [from, to) of the index into path via a
// tmp file and an atomic rename.
func (fs *FileStore) writeSegment(path string, from, to int) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for i := from; i < to; i++ {
		r, ok, err := fs.mem.Get(fs.mem.base + uint64(i))
		if err != nil || !ok {
			f.Close() //overhaul:allow errdrop best-effort close before reporting the lookup failure
			return fmt.Errorf("segment stage: index record %d missing (%v)", i, err)
		}
		line, err := EncodeRecord(r)
		if err != nil {
			f.Close() //overhaul:allow errdrop best-effort close before reporting the encode failure
			return err
		}
		if _, err := f.Write(line); err != nil {
			f.Close() //overhaul:allow errdrop best-effort close before reporting the write failure
			return err
		}
	}
	if fs.opts.Sync {
		if err := f.Sync(); err != nil {
			f.Close() //overhaul:allow errdrop best-effort close before reporting the sync failure
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// fail marks the store broken and returns the wrapped error. Every
// later operation repeats it until the directory is reopened.
func (fs *FileStore) fail(context string, cause error) error {
	fs.failed = fmt.Errorf("%w: %s: %v", ErrStoreFailed, context, cause)
	if fs.cur != nil {
		fs.cur.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
		fs.cur = nil
	}
	return fs.failed
}

// check returns the standing failure, if any.
func (fs *FileStore) check() error {
	if fs.closed {
		return ErrClosed
	}
	return fs.failed
}

// Append implements Store: frame the record, evaluate the torn-write
// fault point, write it to the active segment, and only then index it
// — so the index never claims a record the log does not hold. A full
// active segment rotates *before* the write, so a crash mid-rotation
// never loses an acknowledged record.
func (fs *FileStore) Append(r Record) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(); err != nil {
		return 0, err
	}
	if fs.curRecs >= fs.opts.SegmentRecords && fs.cur != nil {
		if err := fs.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if fs.cur == nil {
		if err := fs.openActiveLocked(); err != nil {
			return 0, err
		}
	}
	seq := fs.mem.LastSeq() + 1
	if r.Seq != 0 && r.Seq != seq {
		return 0, ErrSeqMismatch
	}
	r.Seq = seq
	line, err := EncodeRecord(r)
	if err != nil {
		return 0, err
	}
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreAppend); f.Injected() {
		if f.Kind == faultinject.KindError {
			// Torn write: the process died (or the disk lied) mid-line.
			// Half the frame reaches the log; recovery must cut it.
			if _, werr := fs.cur.Write(line[:len(line)/2]); werr != nil {
				return 0, fs.fail("append (torn)", werr)
			}
		}
		return 0, fs.fail("append", f.Err)
	}
	if _, err := fs.cur.Write(line); err != nil {
		return 0, fs.fail("append", err)
	}
	if _, err := fs.mem.Append(r); err != nil {
		return 0, fs.fail("append index", err)
	}
	fs.curRecs++
	return seq, nil
}

// openActiveLocked creates a fresh active segment file.
func (fs *FileStore) openActiveLocked() error {
	id := fs.nextID
	path := fs.segPath(id)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fs.fail("create segment", err)
	}
	fs.nextID++
	fs.cur, fs.curID, fs.curRecs = f, id, 0
	return nil
}

// rotateLocked seals the active segment and opens a fresh one,
// evaluating the crash fault point at each protocol window (before and
// after the seal), then triggers compaction when enough sealed
// segments accumulated.
func (fs *FileStore) rotateLocked() error {
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreRotate); f.Injected() {
		return fs.fail("rotate (pre-seal)", f.Err)
	}
	if fs.opts.Sync {
		if err := fs.cur.Sync(); err != nil {
			return fs.fail("rotate sync", err)
		}
	}
	if err := fs.cur.Close(); err != nil {
		return fs.fail("rotate seal", err)
	}
	fs.sealed = append(fs.sealed, segmentInfo{id: fs.curID, path: fs.segPath(fs.curID), recs: fs.curRecs})
	fs.cur, fs.curRecs = nil, 0
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreRotate); f.Injected() {
		return fs.fail("rotate (post-seal)", f.Err)
	}
	if err := fs.openActiveLocked(); err != nil {
		return err
	}
	if fs.opts.CompactSealed > 0 && len(fs.sealed) >= fs.opts.CompactSealed {
		return fs.compactLocked()
	}
	return nil
}

// Compact merges every sealed segment into one. The active segment is
// left alone. Compaction never drops records — the audit trail is the
// product — it only reduces file count and normalizes ordering.
func (fs *FileStore) Compact() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(); err != nil {
		return err
	}
	if len(fs.sealed) < 2 {
		return nil
	}
	return fs.compactLocked()
}

// compactLocked merges the sealed segments into a fresh, higher file
// id via stage → fsync → rename → cleanup, evaluating the crash fault
// point at each window. Every window leaves a recoverable directory:
// a torn or unrenamed tmp is discarded on open, and a rename without
// cleanup leaves duplicates that recovery deduplicates by sequence.
func (fs *FileStore) compactLocked() error {
	if f := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); f.Injected() {
		return fs.fail("compact (begin)", f.Err)
	}
	total := 0
	for _, s := range fs.sealed {
		total += s.recs
	}
	id := fs.nextID
	path := fs.segPath(id)
	tmp := path + tmpSuffix

	// Stage in two halves with a torn-tmp crash window between them.
	half := total / 2
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fs.fail("compact stage", err)
	}
	if err := fs.writeRange(f, 0, half); err != nil {
		f.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
		return fs.fail("compact stage", err)
	}
	if fl := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); fl.Injected() {
		f.Close() //overhaul:allow errdrop the store is already failed; the torn tmp is the injected state under test
		return fs.fail("compact (torn tmp)", fl.Err)
	}
	if err := fs.writeRange(f, half, total); err != nil {
		f.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
		return fs.fail("compact stage", err)
	}
	if fs.opts.Sync {
		if err := f.Sync(); err != nil {
			f.Close() //overhaul:allow errdrop the store is already failed; the handle is released best-effort
			return fs.fail("compact sync", err)
		}
	}
	if err := f.Close(); err != nil {
		return fs.fail("compact stage", err)
	}
	if fl := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); fl.Injected() {
		return fs.fail("compact (pre-rename)", fl.Err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fs.fail("compact rename", err)
	}
	fs.nextID++
	if fl := faultinject.Eval(fs.opts.Hook, faultinject.PointStoreCompact); fl.Injected() {
		return fs.fail("compact (pre-cleanup)", fl.Err)
	}
	for _, s := range fs.sealed {
		if err := os.Remove(s.path); err != nil {
			return fs.fail("compact cleanup", err)
		}
	}
	fs.sealed = []segmentInfo{{id: id, path: path, recs: total}}
	return nil
}

// writeRange streams index records [from, to) (positions among the
// sealed records, which are always the oldest) into w.
func (fs *FileStore) writeRange(w *os.File, from, to int) error {
	for i := from; i < to; i++ {
		r, ok, err := fs.mem.Get(fs.mem.base + uint64(i))
		if err != nil || !ok {
			return fmt.Errorf("compact: index record %d missing (%v)", i, err)
		}
		line, err := EncodeRecord(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// SegmentCount returns (sealed, active) segment counts — observability
// for tests and the dashboard.
func (fs *FileStore) SegmentCount() (sealed int, active int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sealed = len(fs.sealed)
	if fs.cur != nil {
		active = 1
	}
	return sealed, active
}

// Get implements Store. Reads fail too once the store failed: a store
// that cannot vouch for its tail must not answer as if it could.
func (fs *FileStore) Get(seq uint64) (Record, bool, error) {
	fs.mu.Lock()
	err := fs.check()
	fs.mu.Unlock()
	if err != nil {
		return Record{}, false, err
	}
	return fs.mem.Get(seq)
}

// Scan implements Store.
func (fs *FileStore) Scan(q Query, yield func(Record) bool) error {
	fs.mu.Lock()
	err := fs.check()
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return fs.mem.Scan(q, yield)
}

// Count implements Store.
func (fs *FileStore) Count() (int, error) {
	fs.mu.Lock()
	err := fs.check()
	fs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return fs.mem.Count()
}

// Close implements Store: the active segment is flushed and released.
// Closing a failed store releases resources without clearing the
// failure (reopen recovers).
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	fs.closed = true
	if fs.cur != nil {
		if fs.opts.Sync {
			if err := fs.cur.Sync(); err != nil {
				fs.cur.Close() //overhaul:allow errdrop best-effort release after the sync failure being reported
				fs.cur = nil
				return err
			}
		}
		err := fs.cur.Close()
		fs.cur = nil
		return err
	}
	return nil
}
