package probe

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecMatchAll(t *testing.T) {
	s, err := ParseSpec("")
	if err != nil {
		t.Fatalf("ParseSpec(\"\"): %v", err)
	}
	if s != (Spec{}) {
		t.Fatalf("empty spec compiled to %+v, want zero Spec", s)
	}
	ev := Event{Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 42, Session: 7}
	if !s.Match(&ev) {
		t.Fatal("zero Spec must match every event")
	}
	if got := s.String(); got != "" {
		t.Fatalf("zero Spec renders %q, want \"\"", got)
	}
}

func TestParseSpecFields(t *testing.T) {
	s, err := ParseSpec("hook=kernel.decide op=decide,audit dev=mic,cam verdict=deny pid=10-20 session=3")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Hook != HookKernelDecide {
		t.Fatalf("hook %q", s.Hook)
	}
	match := Event{Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 15, Session: 3}
	if !s.Match(&match) {
		t.Fatalf("spec %q must match %+v", s.String(), match)
	}
	for name, ev := range map[string]Event{
		"wrong kind":    {Kind: KindOpen, Dev: DevMic, Verdict: VerdictDeny, PID: 15, Session: 3},
		"wrong dev":     {Kind: KindDecide, Dev: DevScreen, Verdict: VerdictDeny, PID: 15, Session: 3},
		"wrong verdict": {Kind: KindDecide, Dev: DevMic, Verdict: VerdictGrant, PID: 15, Session: 3},
		"pid low":       {Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 9, Session: 3},
		"pid high":      {Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 21, Session: 3},
		"wrong session": {Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 15, Session: 4},
	} {
		ev := ev
		if s.Match(&ev) {
			t.Errorf("%s: spec must not match %+v", name, ev)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"op",                       // no =
		"op=",                      // empty value
		"op=fishing",               // unknown kind
		"op=none",                  // none is not an emitted kind
		"dev=tape",                 // unknown device class
		"verdict=maybe",            // unknown verdict
		"hook=kernel.close",        // unknown hook
		"hook=a hook=b",            // duplicate hook
		"pid=1 pid=2",              // duplicate pid
		"session=1 session=2",      // duplicate session
		"pid=-4",                   // negative
		"pid=9-3",                  // inverted range
		"pid=abc",                  // not a number
		"pid=99999999999999999999", // overflow
		"color=red",                // unknown key
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, text := range []string{
		"",
		"op=open",
		"op=open,decide,dispatch",
		"dev=none,copy,dev",
		"verdict=none,grant,deny",
		"hook=netlink.send",
		"pid=5",
		"pid=5-500",
		"session=0",
		"session=2-9",
		"hook=kernel.decide op=decide dev=mic,cam verdict=deny pid=1-99 session=5",
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		rendered := s.String()
		s2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", rendered, text, err)
		}
		if s2 != s {
			t.Fatalf("round trip of %q: %+v != %+v", text, s2, s)
		}
	}
}

func TestSpecCanonicalString(t *testing.T) {
	// Merged repeats, reordered keys, and padded numbers all render
	// canonically.
	s, err := ParseSpec("verdict=deny op=decide op=open pid=007")
	if err != nil {
		t.Fatal(err)
	}
	want := "op=open,decide verdict=deny pid=7"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestReasonInternRoundTrip(t *testing.T) {
	fixed := []string{
		textForceGrant, textObserveOnly, textNoSuchProcess,
		textPtraceGuard, textNoInteraction, textStampAfterOp,
		textWithinDelta, textFailClosed,
	}
	for _, s := range fixed {
		code := ReasonOf(s)
		if code == ReasonOther || code == ReasonNone {
			t.Errorf("ReasonOf(%q) = %v, want a dedicated code", s, code)
		}
		ev := Event{Reason: code}
		if got := ev.ReasonText(2 * time.Second); got != s {
			t.Errorf("ReasonText(%v) = %q, want %q", code, got, s)
		}
	}
	if ReasonOf("protection degraded: channel dead") != ReasonDegraded {
		t.Error("degraded prefix not interned")
	}
	if ReasonOf("interaction stale by 3s (δ=2s)") != ReasonStale {
		t.Error("stale prefix not interned")
	}
	if ReasonOf("anything else") != ReasonOther {
		t.Error("unknown reason must intern to ReasonOther")
	}
}

func TestStaleReasonReconstruction(t *testing.T) {
	// The stale denial's dynamic staleness must be reconstructable from
	// the event's timestamps and δ, matching the policy's Sprintf.
	delta := 2 * time.Second
	stamp := time.Unix(100, 0)
	op := stamp.Add(5*time.Second + 250*time.Millisecond)
	ev := Event{
		Reason:     ReasonStale,
		TimeNanos:  op.UnixNano(),
		StampNanos: stamp.UnixNano(),
	}
	want := "interaction stale by 3.2s (δ=2s)"
	if got := ev.ReasonText(delta); got != want {
		t.Fatalf("ReasonText = %q, want %q", got, want)
	}
}

func TestEventFormat(t *testing.T) {
	ev := Event{
		TimeNanos: 1000, StampNanos: 0, Session: 3, PID: 42,
		Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny,
		Reason: ReasonNoInteraction,
	}
	got := ev.Format(2 * time.Second)
	want := "decide pid=42 session=3 dev=mic verdict=deny t=1000 stamp=0 reason=no recorded user interaction"
	if got != want {
		t.Fatalf("Format:\n got %q\nwant %q", got, want)
	}
	if !strings.HasPrefix(got, "decide ") {
		t.Fatal("format must lead with the kind")
	}
}
