package analysis

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Atomiccheck, Clockcheck, Errdrop, Failclosedcheck, Flowcheck, Lockcheck, Lockordercheck, Printcheck, Spancheck, Stampcheck}
}

// ByName resolves an analyzer by its Name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
