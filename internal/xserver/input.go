package xserver

import (
	"fmt"
	"strconv"
	"time"

	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

// notifyInteraction sends N_{A,t} for hardware input delivered to w, if
// the Overhaul policy is active and the window passes the visibility
// threshold (clickjacking defence). Requires s.mu held; the policy call
// itself happens with the lock held because the netlink round-trip is
// synchronous in the paper's design, and the policy layer must not call
// back into the server's input path.
//
// ctx is the span of the input event being dispatched; the notify span
// nests under it, and its ID crosses the channel with the timestamp.
func (s *Server) notifyInteraction(ctx telemetry.SpanContext, w *window, now time.Time) {
	if s.policy == nil {
		return
	}
	if !s.visibleLongEnough(w, now) {
		return
	}
	if s.obscured(w) {
		// The window is covered by another: input "to" it is not a
		// sighted interaction.
		return
	}
	span := s.tel.StartSpan(ctx, "xserver", "notify_interaction")
	defer span.End()
	if s.tel.Enabled() {
		span.Annotate("pid", strconv.Itoa(w.owner.pid))
		s.tel.Add("xserver", "notifications", "", 1)
	}
	if err := s.policy.NotifyInteraction(span.Context(), w.owner.pid, now); err != nil {
		// The kernel channel failing closed means no permission is
		// granted later; the input event itself still flows, and the
		// degraded banner tells the user why grants will stop.
		if s.tel.Enabled() {
			span.Annotate("error", err.Error())
		}
		s.degradeLocked("kernel channel unreachable")
		return
	}
	if s.degraded != "" {
		s.degraded = ""
	}
	s.stats.Notifications++
}

// HardwareClick injects a physical pointer button press at screen
// coordinates (x, y), dispatching it to the topmost mapped window there.
// It returns the window that received the event, or 0 when the click
// landed on the root.
func (s *Server) HardwareClick(x, y int) WindowID {
	now := s.clk.Now()
	// The input span is the root of the decision-path trace: everything
	// this click enables (notification, stamp, device open, alert)
	// links back to it.
	span := s.tel.StartSpan(telemetry.SpanContext{}, "xserver", "hardware_click")
	defer span.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.HardwareEvents++
	s.tel.Add("xserver", "hardware_events", "kind=click", 1)
	w := s.topWindowAt(x, y)
	if w == nil {
		return Root
	}
	if s.tel.Enabled() {
		span.Annotate("window", strconv.FormatUint(uint64(w.id), 10))
	}
	s.notifyInteraction(span.Context(), w, now)
	if s.probeInput.Wants(int64(w.owner.pid)) {
		s.probeInput.Emit(probe.Event{
			TimeNanos: now.UnixNano(),
			PID:       int64(w.owner.pid),
			Kind:      probe.KindInput,
		})
	}
	w.owner.deliver(Event{
		Type:       ButtonPress,
		Window:     w.id,
		Time:       now,
		Provenance: FromHardware,
		X:          x,
		Y:          y,
	})
	return w.id
}

// HardwareKey injects a physical key press, dispatched to the focus
// window. It returns the receiving window (0 if none is focused).
func (s *Server) HardwareKey(key string) WindowID {
	now := s.clk.Now()
	span := s.tel.StartSpan(telemetry.SpanContext{}, "xserver", "hardware_key")
	defer span.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.HardwareEvents++
	s.tel.Add("xserver", "hardware_events", "kind=key", 1)
	if s.focus == Root {
		return Root
	}
	w, err := s.lookupWindow(s.focus)
	if err != nil || !w.mapped {
		return Root
	}
	if s.tel.Enabled() {
		span.Annotate("window", strconv.FormatUint(uint64(w.id), 10))
	}
	s.notifyInteraction(span.Context(), w, now)
	if s.probeInput.Wants(int64(w.owner.pid)) {
		s.probeInput.Emit(probe.Event{
			TimeNanos: now.UnixNano(),
			PID:       int64(w.owner.pid),
			Kind:      probe.KindInput,
		})
	}
	w.owner.deliver(Event{
		Type:       KeyPress,
		Window:     w.id,
		Time:       now,
		Provenance: FromHardware,
		Key:        key,
	})
	return w.id
}

// SendEvent is the core X11 SendEvent request: the client asks the
// server to deliver an event to the destination window's owner. The
// protocol forces the synthetic flag on such events, so they can never
// produce interaction notifications (S2).
//
// Under Overhaul the request is additionally screened for
// protocol-breaking selection events (§IV-A): SelectionRequest may never
// be forged, and SelectionNotify is permitted only from the current
// selection owner to the pending requestor — the legitimate step (9) of
// the copy & paste protocol.
func (c *Client) SendEvent(dest WindowID, ev Event) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.wire()
	s.mu.Lock()
	defer s.mu.Unlock()

	w, err := s.lookupWindow(dest)
	if err != nil {
		return err
	}

	ev.Synthetic = true
	ev.Provenance = FromSendEvent
	ev.Window = dest
	ev.Time = s.clk.Now()

	if s.policy != nil {
		switch ev.Type {
		case SelectionRequest:
			// Forged SelectionRequests would trick the owner into
			// handing the clipboard to an eavesdropper.
			s.stats.SyntheticBlocked++
			return fmt.Errorf("send SelectionRequest: %w", ErrBadAccess)
		case SelectionNotify:
			if !s.isProtocolNotify(c, ev, w) {
				s.stats.SyntheticBlocked++
				return fmt.Errorf("send SelectionNotify outside transfer: %w", ErrBadAccess)
			}
		case KeyPress, KeyRelease, ButtonPress, ButtonRelease, MotionNotify:
			// Input events are delivered (applications may honour
			// them) but are synthetic: no interaction notification
			// is ever generated for them.
			s.stats.SyntheticBlocked++
		}
	}

	w.owner.deliver(ev)
	return nil
}

// isProtocolNotify reports whether ev is the legitimate SelectionNotify
// of an in-flight transfer: sender owns the selection and dest is the
// pending requestor's window. Requires s.mu held.
func (s *Server) isProtocolNotify(sender *Client, ev Event, dest *window) bool {
	sel, ok := s.selections[ev.Selection]
	if !ok || sel.owner != sender || sel.pending == nil {
		return false
	}
	return sel.pending.requestorWindow == dest.id
}

// XTestFakeInput injects a synthetic input event through the XTest
// extension. XTest requests carry no synthetic flag on the wire, so the
// paper modifies the server to tag them with their generating extension;
// the tag keeps them out of the trusted input path. The event is
// otherwise processed exactly like hardware input (dispatch by position
// or focus).
func (c *Client) XTestFakeInput(ev Event) (WindowID, error) {
	if !c.alive() {
		return Root, ErrDisconnected
	}
	s := c.srv
	if s.cfg.DisableXTest {
		return Root, fmt.Errorf("xtest: extension disabled: %w", ErrBadAccess)
	}
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	var w *window
	switch ev.Type {
	case ButtonPress, ButtonRelease, MotionNotify:
		w = s.topWindowAt(ev.X, ev.Y)
	case KeyPress, KeyRelease:
		if s.focus != Root {
			if fw, err := s.lookupWindow(s.focus); err == nil && fw.mapped {
				w = fw
			}
		}
	default:
		return Root, fmt.Errorf("xtest: event type %v: %w", ev.Type, ErrBadMatch)
	}
	if s.policy != nil {
		s.stats.SyntheticBlocked++
	}
	if w == nil {
		return Root, nil
	}
	ev.Window = w.id
	ev.Time = now
	ev.Provenance = FromXTest
	ev.Synthetic = false // XTest carries no wire flag; the tag is server-internal
	w.owner.deliver(ev)
	return w.id, nil
}
