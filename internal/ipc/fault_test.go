package ipc

import (
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
)

// hookFor returns a hook injecting kind at exactly one point.
func hookFor(point faultinject.Point, kind faultinject.Kind) faultinject.Hook {
	return func(p faultinject.Point) faultinject.Fault {
		if p == point {
			return faultinject.Fault{Point: p, Kind: kind}
		}
		return faultinject.Fault{Point: p}
	}
}

// TestFaultyStampsDropsWriteFailClosed: an injected stamp-store write
// failure loses the Adopt — the receiver keeps its older stamp. That
// direction is fail closed: a staler stamp can only turn a would-be
// grant into a denial, never mint a grant.
func TestFaultyStampsDropsWriteFailClosed(t *testing.T) {
	base := newFakeStamps()
	clk := clock.NewSimulated()
	old := clk.Now()
	base.set(receiver, old)

	faulty := FaultyStamps(base, hookFor(faultinject.PointStampWrite, faultinject.KindError))
	faulty.Adopt(receiver, old.Add(time.Second))
	if got := base.get(t, receiver); !got.Equal(old) {
		t.Fatalf("stamp moved to %v under write fault, want unchanged %v", got, old)
	}

	// Reads pass through untouched.
	if got, ok := faulty.Stamp(receiver); !ok || !got.Equal(old) {
		t.Fatalf("Stamp = (%v,%v), want (%v,true)", got, ok, old)
	}

	// Without the fault the same Adopt lands.
	healthy := FaultyStamps(base, func(p faultinject.Point) faultinject.Fault {
		return faultinject.Fault{Point: p}
	})
	healthy.Adopt(receiver, old.Add(time.Second))
	if got := base.get(t, receiver); !got.Equal(old.Add(time.Second)) {
		t.Fatalf("healthy Adopt did not land: %v", got)
	}
}

// TestFaultyStampsNilPassthrough: nil hook or store decorate to the
// original value.
func TestFaultyStampsNilPassthrough(t *testing.T) {
	base := newFakeStamps()
	if got := FaultyStamps(base, nil); got != Stamps(base) {
		t.Error("nil hook should return the store unchanged")
	}
	if got := FaultyStamps(nil, hookFor(faultinject.PointStampWrite, faultinject.KindError)); got != nil {
		t.Error("nil store should stay nil")
	}
}

// TestShmTimerMisfireFailsClosed: an injected wait-list timer misfire
// during the disarm window must take the fault path again — stamps
// re-propagate instead of the access riding an untrustworthy window.
func TestShmTimerMisfireFailsClosed(t *testing.T) {
	st := newFakeStamps()
	clk := clock.NewSimulated()
	st.set(sender, clk.Now()) // non-zero so propagation is observable
	st.set(receiver, time.Time{})

	seg, err := NewSharedMem(st, clk, 1, time.Second)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	m := seg.Map(receiver)

	// First access arms the window (ordinary fault path).
	if err := m.Write(0, []byte{1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	armFaults := seg.StatsSnapshot().Faults

	// Inside the window with a misfiring timer: the access must fault
	// again rather than ride the fast path.
	seg.SetFaultHook(hookFor(faultinject.PointShmTimer, faultinject.KindError))
	clk.Advance(10 * time.Millisecond)
	if _, err := m.Read(0, 1); err != nil {
		t.Fatalf("Read: %v", err)
	}
	stats := seg.StatsSnapshot()
	if stats.TimerMisfires != 1 {
		t.Fatalf("TimerMisfires = %d, want 1", stats.TimerMisfires)
	}
	if stats.Faults != armFaults+1 {
		t.Fatalf("Faults = %d, want %d (misfire must re-fault)", stats.Faults, armFaults+1)
	}
	if stats.FastAccesses != 0 {
		t.Fatalf("FastAccesses = %d, want 0 under misfires", stats.FastAccesses)
	}

	// With the hook healthy again the re-armed window serves the fast
	// path as usual.
	seg.SetFaultHook(nil)
	clk.Advance(10 * time.Millisecond)
	if _, err := m.Read(0, 1); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := seg.StatsSnapshot().FastAccesses; got != 1 {
		t.Fatalf("FastAccesses = %d, want 1 after recovery", got)
	}
}
