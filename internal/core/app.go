package core

import (
	"fmt"
	"time"

	"overhaul/internal/fs"
	"overhaul/internal/kernel"
	"overhaul/internal/xserver"
)

// userCred is the interactive user every launched application runs as.
var userCred = fs.Cred{UID: 1000, GID: 1000}

// App bundles a launched application: its kernel process, its X client
// connection, and its main window. It exists purely for harness
// convenience — applications themselves remain ignorant of Overhaul
// (design goal D1).
type App struct {
	sys    *System
	Proc   *kernel.Process
	Client *xserver.Client
	Win    xserver.WindowID
	x, y   int
	w, h   int
}

// nextLaunchSlot staggers window positions so windows don't fully
// overlap by default.
func (s *System) nextLaunchSlot() (int, int) {
	n := len(s.X.WindowIDs())
	return (n * 220) % 1600, ((n * 220) / 1600) * 220
}

// Launch spawns a user process, connects it to the display server, and
// maps its main window. The window is freshly mapped, so it has not yet
// passed the visibility threshold; call Settle (or advance the clock)
// before simulating clicks that should count as interactions.
func (s *System) Launch(name string) (*App, error) {
	return s.LaunchAt(name, -1, -1, 200, 200)
}

// LaunchAt is Launch with explicit window geometry. Negative x or y
// selects an automatic slot.
func (s *System) LaunchAt(name string, x, y, w, h int) (*App, error) {
	if x < 0 || y < 0 {
		x, y = s.nextLaunchSlot()
	}
	proc, err := s.Kernel.Spawn(kernel.SpawnSpec{
		Name: name,
		Exe:  "/usr/bin/" + name,
		Cred: userCred,
	})
	if err != nil {
		return nil, fmt.Errorf("launch %s: %w", name, err)
	}
	client, err := s.X.Connect(proc.PID(), name)
	if err != nil {
		return nil, fmt.Errorf("launch %s: %w", name, err)
	}
	win, err := client.CreateWindow(x, y, w, h)
	if err != nil {
		return nil, fmt.Errorf("launch %s: %w", name, err)
	}
	if err := client.MapWindow(win); err != nil {
		return nil, fmt.Errorf("launch %s: %w", name, err)
	}
	return &App{sys: s, Proc: proc, Client: client, Win: win, x: x, y: y, w: w, h: h}, nil
}

// LaunchHeadless spawns a user process with no X connection — the shape
// of a background daemon or CLI tool.
func (s *System) LaunchHeadless(name string) (*kernel.Process, error) {
	proc, err := s.Kernel.Spawn(kernel.SpawnSpec{
		Name: name,
		Exe:  "/usr/bin/" + name,
		Cred: userCred,
	})
	if err != nil {
		return nil, fmt.Errorf("launch %s: %w", name, err)
	}
	return proc, nil
}

// WrapApp builds an App handle around an already-created process, X
// client, and window (used by harness code that assembles processes
// manually, e.g. the spyware sample).
func (s *System) WrapApp(proc *kernel.Process, client *xserver.Client, win xserver.WindowID, x, y, w, h int) *App {
	return &App{sys: s, Proc: proc, Client: client, Win: win, x: x, y: y, w: w, h: h}
}

// Settle advances a simulated clock by d (no-op on real clocks, where
// time passes by itself).
func (s *System) Settle(d time.Duration) {
	if clk, ok := s.SimClock(); ok {
		clk.Advance(d)
	}
}

// Click simulates the user clicking inside the app's window (its
// top-left corner, which the harness keeps unobstructed).
func (a *App) Click() error {
	got := a.sys.X.HardwareClick(a.x, a.y)
	if got != a.Win {
		return fmt.Errorf("click on %s landed on window %d, want %d (obscured?)", a.Client.Name(), got, a.Win)
	}
	return nil
}

// Type simulates the user typing a key into the app (grabbing focus
// first).
func (a *App) Type(key string) error {
	if err := a.Client.SetFocus(a.Win); err != nil {
		return fmt.Errorf("type into %s: %w", a.Client.Name(), err)
	}
	got := a.sys.X.HardwareKey(key)
	if got != a.Win {
		return fmt.Errorf("key to %s landed on window %d, want %d", a.Client.Name(), got, a.Win)
	}
	return nil
}

// OpenDevice opens a sensitive device node through the kernel on behalf
// of the app's process.
func (a *App) OpenDevice(path string) (*fs.Handle, error) {
	return a.sys.Kernel.Open(a.Proc, path, fs.AccessRead)
}

// Exit terminates the app: X connection first, then the process.
func (a *App) Exit() error {
	if err := a.Client.Close(); err != nil {
		return fmt.Errorf("exit %s: %w", a.Client.Name(), err)
	}
	if err := a.Proc.Exit(); err != nil {
		return fmt.Errorf("exit %s: %w", a.Client.Name(), err)
	}
	return nil
}
