// Command overhaul-benchjson converts `go test -bench -benchmem`
// output into the machine-readable BENCH_overhaul.json the repository
// keeps at its root: a map from benchmark name to ns/op and allocs/op.
//
//	go test -bench=. -benchmem -run='^$' ./... > bench.out
//	overhaul-benchjson -in bench.out -out BENCH_overhaul.json
//
// The parse is strict: zero recognisable benchmark lines, or a line
// that starts like a benchmark but fails to parse, is an error — CI
// runs this to fail on malformed bench output rather than silently
// recording nothing. The -check mode validates an existing JSON file
// instead of writing one; the -diff mode compares parsed input against
// a committed baseline and fails on micro-benchmark regressions.
//
// Runs under `-cpu 1,2,4` print a trailing -N on the benchmark name.
// When the same parse also saw the bare name (as -cpu 1 prints it),
// the whole family is recognisably a CPU-scaling sweep and every
// member is rekeyed to Name/cpus=N (the bare row becomes /cpus=1), so
// the JSON records the scaling curve under stable, unambiguous keys. A
// lone -N name without its bare sibling is left verbatim: it may be a
// sub-benchmark like cap-256, which is syntactically identical.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded cost.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// BenchmarkDecideTelemetryDisabled-8  9416926  120.7 ns/op  0 B/op  0 allocs/op
// The name is kept verbatim (including any -GOMAXPROCS suffix):
// sub-benchmark names like cap-256 are indistinguishable from the
// suffix syntactically, and stripping would collide them.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op\s+(\d+) allocs/op)?`)

func main() {
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "-", "bench output to parse ('-' = stdin)")
	out := flag.String("out", "BENCH_overhaul.json", "JSON file to write")
	check := flag.String("check", "", "validate this existing JSON file and exit")
	diff := flag.String("diff", "", "baseline JSON to compare the parsed input against (regression gate)")
	flag.Parse()

	if *check != "" {
		if err := validate(*check); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
			return 1
		}
		return 0
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	entries, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
		return 1
	}

	if *diff != "" {
		baseline, err := readEntries(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
			return 1
		}
		if err := compare(baseline, entries, runtime.NumCPU(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
			return 1
		}
		return 0
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
		return 1
	}
	fmt.Printf("wrote %s: %d benchmarks\n", *out, len(entries))
	return 0
}

// parse extracts every benchmark line, keyed by the full benchmark
// name exactly as go test printed it. A name appearing more than once
// (go test -count=N) keeps the minimum ns/op and the maximum
// allocs/op: the minimum is the standard low-noise wall-clock
// statistic on a shared machine (noise only ever adds time), while
// allocs must be pessimistic — a single run that allocated more is a
// real behavior, not noise.
func parse(r io.Reader) (map[string]Entry, error) {
	entries := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// A bare "BenchmarkFoo" line (no fields yet) precedes the result
		// line in verbose output; skip it, but flag anything else that
		// looks like a result and does not parse.
		if !strings.Contains(line, "ns/op") {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed ns/op in %q: %v", line, err)
		}
		var allocs int64
		if m[3] != "" {
			if allocs, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, fmt.Errorf("malformed allocs/op in %q: %v", line, err)
			}
		}
		e := Entry{NsPerOp: ns, AllocsPerOp: allocs}
		if prev, ok := entries[m[1]]; ok {
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp > e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
		}
		entries[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines found: was the input produced by go test -bench -benchmem?")
	}
	return normalizeCPUFamilies(entries), nil
}

// cpuSuffix matches a trailing -N as printed by go test under -cpu.
var cpuSuffix = regexp.MustCompile(`^(Benchmark\S*?)-(\d+)$`)

// normalizeCPUFamilies rekeys CPU-scaling sweeps to Name/cpus=N. A
// suffixed name counts as part of a sweep only when its bare base name
// was parsed too — that is exactly what a `-cpu 1,...` run produces and
// what a same-named sub-benchmark cannot.
func normalizeCPUFamilies(entries map[string]Entry) map[string]Entry {
	out := make(map[string]Entry, len(entries))
	rebased := make(map[string]bool) // bare names that anchor a sweep
	for name := range entries {
		if m := cpuSuffix.FindStringSubmatch(name); m != nil {
			if _, ok := entries[m[1]]; ok {
				rebased[m[1]] = true
			}
		}
	}
	for name, e := range entries {
		if m := cpuSuffix.FindStringSubmatch(name); m != nil && rebased[m[1]] {
			out[m[1]+"/cpus="+m[2]] = e
			continue
		}
		if rebased[name] {
			out[name+"/cpus=1"] = e
			continue
		}
		out[name] = e
	}
	return out
}

// Regression-gate policy: the micro benchmarks below are the decision
// path's committed performance contract; anything slower than 25 % over
// baseline, or allocating more, fails the gate. The macro/ablation
// benchmarks are excluded — they measure simulated workloads whose
// ns/op are dominated by configured synthetic work.
//
// A relative budget is only signal above the timer's noise floor: on a
// sub-ns row (an unattached probe hook is one atomic load, ~0.6 ns) a
// 25 % budget is 0.15 ns — below what back-to-back runs on the same
// machine reproduce. Deltas under nsFloor are therefore not gated on
// ns/op (allocs/op still are), mirroring the multiview gate's
// pct-AND-absolute-floor rule.
const (
	maxNsRatio = 1.25
	nsFloor    = 10.0 // ns/op: absolute delta below this is noise, not regression
)

var gatedPrefixes = []string{"BenchmarkMicro", "BenchmarkDecide", "BenchmarkParallel", "BenchmarkFleet", "BenchmarkStore", "BenchmarkProbe"}

func gated(name string) bool {
	for _, p := range gatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// cpusKey matches the /cpus=N suffix normalizeCPUFamilies produces.
var cpusKey = regexp.MustCompile(`/cpus=(\d+)$`)

// oversubscribed reports whether the entry was measured with more
// GOMAXPROCS than the host has hardware threads. Such runs exist to
// show the hot path holds no lock to convoy on, but their wall clock
// is scheduler noise — N goroutines timeslicing one core — so the
// regression gate checks only their allocs.
func oversubscribed(name string, hostCPUs int) bool {
	m := cpusKey.FindStringSubmatch(name)
	if m == nil {
		return false
	}
	n, err := strconv.Atoi(m[1])
	return err == nil && n > hostCPUs
}

// allocsOnly reports whether the entry's wall clock is excluded from
// the gate. The per-scale store tables (BenchmarkStore*) record
// scaling shape, but their ops sit outside the band where a 25 % wall
// budget is signal on a shared runner: Get/Scan at small scales are
// tens of ns (below the frequency-scaling noise floor), Append is
// write()-syscall- and GC-bound. Their allocation contract is still
// gated strictly, as is ns/op for every decision-path benchmark.
func allocsOnly(name string) bool {
	return strings.HasPrefix(name, "BenchmarkStore")
}

// zeroAllocRequired names the benchmarks whose allocation count is an
// absolute contract, not merely no-worse-than-baseline: the v2 frame
// encoder runs once per record inside every group commit, so a single
// allocation there multiplies across everything the fleet ever
// appends. Gated in both validate (the committed JSON) and compare
// (fresh runs), so a regression cannot slip in by first regressing the
// baseline.
func zeroAllocRequired(name string) bool {
	return name == "BenchmarkStoreEncodeV2" ||
		strings.HasPrefix(name, "BenchmarkStoreEncodeV2/")
}

// compare prints a gated-benchmark comparison table and errors when any
// current entry regresses beyond the policy above. Only names present
// in both maps are compared: a freshly added benchmark has no baseline
// yet, and a retired one no longer has a current measurement.
func compare(baseline, current map[string]Entry, hostCPUs int, w io.Writer) error {
	var names []string
	for name := range current {
		if _, ok := baseline[name]; ok && gated(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no gated benchmarks in common with the baseline")
	}
	var bad []string
	for _, name := range names {
		b, c := baseline[name], current[name]
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		switch {
		case zeroAllocRequired(name) && c.AllocsPerOp != 0:
			status = fmt.Sprintf("REGRESSION: allocs/op %d, contract requires 0", c.AllocsPerOp)
			bad = append(bad, name)
		case c.AllocsPerOp > b.AllocsPerOp:
			status = fmt.Sprintf("REGRESSION: allocs/op %d > baseline %d", c.AllocsPerOp, b.AllocsPerOp)
			bad = append(bad, name)
		case ratio > maxNsRatio && oversubscribed(name, hostCPUs):
			status = "ok (ns/op not gated: oversubscribed on this host)"
		case ratio > maxNsRatio && allocsOnly(name):
			status = "ok (ns/op not gated: allocs-only row)"
		case ratio > maxNsRatio && c.NsPerOp-b.NsPerOp < nsFloor:
			status = fmt.Sprintf("ok (ns/op not gated: +%.1f ns delta below %.0f ns noise floor)", c.NsPerOp-b.NsPerOp, nsFloor)
		case ratio > maxNsRatio:
			status = fmt.Sprintf("REGRESSION: ns/op %.2fx > %.2fx budget", ratio, maxNsRatio)
			bad = append(bad, name)
		}
		fmt.Fprintf(w, "%-55s %9.1f -> %9.1f ns/op (%.2fx)  %d -> %d allocs/op  %s\n",
			name, b.NsPerOp, c.NsPerOp, ratio, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed: %s", len(bad), strings.Join(bad, ", "))
	}
	return nil
}

// readEntries loads a benchmark JSON file as written by this command.
func readEntries(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries map[string]Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return entries, nil
}

// StoreSection is the durable-store throughput report overhaul-load
// -store emits alongside its benchmarks (the wrapped JSON shape).
type StoreSection struct {
	RecordsPerSec float64           `json:"records_per_sec"`
	Records       int               `json:"records"`
	Batches       uint64            `json:"batches"`
	MaxBatch      int               `json:"max_batch"`
	BatchHist     map[string]uint64 `json:"batch_size_hist"`
	DroppedAcks   uint64            `json:"dropped_acks"`
}

// validate checks an existing JSON file: either the legacy flat map of
// benchmark entries, or the wrapped {"benchmarks": ..., "store": ...}
// shape overhaul-load -store emits, whose throughput section carries
// its own invariants — real throughput, a consistent batch histogram,
// and zero dropped acknowledgements (a dropped ack means a decision
// the fleet audited never became durable, which the group-commit ack
// contract forbids outside injected faults).
func validate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var wrapped struct {
		Benchmarks map[string]Entry `json:"benchmarks"`
		Store      *StoreSection    `json:"store"`
	}
	entries := make(map[string]Entry)
	if err := json.Unmarshal(data, &wrapped); err == nil && wrapped.Benchmarks != nil {
		entries = wrapped.Benchmarks
		if wrapped.Store != nil {
			if err := validateStore(path, wrapped.Store); err != nil {
				return err
			}
		}
	} else if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	for name, e := range entries {
		if !strings.HasPrefix(name, "Benchmark") {
			return fmt.Errorf("%s: entry %q does not name a benchmark", path, name)
		}
		if e.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s has non-positive ns/op %v", path, name, e.NsPerOp)
		}
		if e.AllocsPerOp < 0 {
			return fmt.Errorf("%s: %s has negative allocs/op %d", path, name, e.AllocsPerOp)
		}
		if zeroAllocRequired(name) && e.AllocsPerOp != 0 {
			return fmt.Errorf("%s: %s records %d allocs/op, contract requires 0", path, name, e.AllocsPerOp)
		}
	}
	return nil
}

// validateStore checks one throughput section's invariants.
func validateStore(path string, s *StoreSection) error {
	if s.Records <= 0 || s.RecordsPerSec <= 0 {
		return fmt.Errorf("%s: store section has no throughput (%d records, %.1f records/sec)", path, s.Records, s.RecordsPerSec)
	}
	if s.Batches == 0 {
		return fmt.Errorf("%s: store section has records but zero batches", path)
	}
	var histSum uint64
	for label, n := range s.BatchHist {
		if label == "" {
			return fmt.Errorf("%s: store batch histogram has an unlabeled bucket", path)
		}
		histSum += n
	}
	if histSum != s.Batches {
		return fmt.Errorf("%s: store batch histogram sums to %d, want %d batches", path, histSum, s.Batches)
	}
	if s.DroppedAcks != 0 {
		return fmt.Errorf("%s: store reports %d dropped acks, want 0 (acknowledged records must be durable)", path, s.DroppedAcks)
	}
	return nil
}
