package kernel

import (
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/fs"
	"overhaul/internal/monitor"
)

func newRecycleKernel(t *testing.T) *Kernel {
	t.Helper()
	clk := clock.NewSimulated()
	fsys := fs.New(clk)
	k, err := New(clk, fsys, Config{Monitor: monitor.Config{Enforce: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k
}

// TestProcessRecycleIdentity pins the type-stable task-struct contract:
// an exited process's struct may be reincarnated by the next spawn, but
// the new incarnation has a fresh pid (pids are never reused), a
// cleared interaction stamp, and the dead pid resolves to nothing — the
// lock-free read path can never attribute the new process's state to
// the old pid.
func TestProcessRecycleIdentity(t *testing.T) {
	k := newRecycleKernel(t)
	ts := (*taskStore)(k)

	p1, err := k.Spawn(SpawnSpec{Name: "first"})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	oldPID := p1.PID()
	stamp := k.Clock().Now()
	if err := ts.SetInteractionStamp(oldPID, stamp); err != nil {
		t.Fatalf("SetInteractionStamp: %v", err)
	}
	if err := p1.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}

	p2, err := k.Spawn(SpawnSpec{Name: "second"})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if p2.PID() == oldPID {
		t.Fatalf("pid %d reused; pids must be unique for recycle detection", oldPID)
	}
	if got := p2.InteractionStamp(); !got.IsZero() {
		t.Errorf("reincarnated process inherited stamp %v from its previous life", got)
	}
	if _, _, _, ok := ts.InteractionView(oldPID); ok {
		t.Errorf("InteractionView(%d) resolved a dead pid", oldPID)
	}
	if err := ts.SetInteractionStamp(oldPID, stamp.Add(time.Second)); err == nil {
		t.Errorf("SetInteractionStamp(%d) succeeded for a dead pid", oldPID)
	}
	if got := p2.InteractionStamp(); !got.IsZero() {
		t.Errorf("write to dead pid %d leaked onto the reincarnated struct (stamp %v)", oldPID, got)
	}
}

// TestForkExitSteadyStateAllocs asserts the free list does its job: a
// fork+exit cycle in steady state allocates (amortised) nothing — the
// child struct comes off the kernel's free list, the same claim
// BenchmarkMicroForkInheritance makes at the repo root. The tolerance
// below 0.5 absorbs the rare parent-children append growth and a GC
// emptying the pool mid-measurement.
func TestForkExitSteadyStateAllocs(t *testing.T) {
	k := newRecycleKernel(t)
	parent, err := k.Spawn(SpawnSpec{Name: "parent"})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	fork := func() {
		child, err := parent.Fork()
		if err != nil {
			t.Fatalf("Fork: %v", err)
		}
		if err := child.Exit(); err != nil {
			t.Fatalf("Exit: %v", err)
		}
	}
	for i := 0; i < 3000; i++ {
		fork() // warm the free list and grow the children array
	}
	if avg := testing.AllocsPerRun(200, fork); avg >= 0.5 {
		t.Errorf("fork+exit allocates %.2f times per op in steady state, want ~0", avg)
	}
}
