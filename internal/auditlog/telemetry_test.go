package auditlog

// Telemetry-parity and robustness tests: the audit log and the
// monitor.audit_appends counter are two views of the same event stream
// and must never disagree, NewWriterAt must reject broken wiring, and
// concurrent decision traffic must stay race-clean (the CI race step
// runs this package under -race).

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/monitor"
	"overhaul/internal/telemetry"
	"overhaul/internal/xserver"
)

func bootInstrumented(t *testing.T) (*core.System, *telemetry.Recorder, *Writer, string) {
	t.Helper()
	clk := clock.NewSimulated()
	tel := telemetry.New(clk)
	sys, err := core.Boot(core.Options{
		Clock:       clk,
		Enforce:     true,
		AlertSecret: "a",
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	w, err := NewWriter(sys.FS, sys.Kernel.Monitor())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	return sys, tel, w, mic
}

// TestAuditAppendsCounterMatchesLog pins the tentpole's counter
// vocabulary to the audit log: after a mix of grants and denials, the
// monitor.audit_appends counter, the Flush record count, and the number
// of rendered log lines are all the same number.
func TestAuditAppendsCounterMatchesLog(t *testing.T) {
	sys, tel, w, mic := bootInstrumented(t)
	app, err := sys.Launch("app")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)

	// Two denials (no interaction yet), then a grant inside δ.
	for i := 0; i < 2; i++ {
		if _, err := app.OpenDevice(mic); err == nil {
			t.Fatal("expected denial before any interaction")
		}
	}
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(100 * time.Millisecond)
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice after click: %v", err)
	}

	n, err := w.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines, err := w.Read(fs.Root)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	appends := tel.CounterValue("monitor", "audit_appends", "")
	if uint64(n) != appends || uint64(len(lines)) != appends {
		t.Fatalf("audit views disagree: counter=%d flushed=%d lines=%d",
			appends, n, len(lines))
	}
	if appends < 3 {
		t.Fatalf("audit_appends = %d, want at least the 3 decisions driven here", appends)
	}
}

// TestNewWriterAtErrorPaths covers every failure mode of the
// constructor: missing filesystem, missing monitor, and a filesystem
// where /var/log cannot be created because a regular file squats on
// the path. The empty-path case must fall back to the conventional
// location rather than error.
func TestNewWriterAtErrorPaths(t *testing.T) {
	sys, err := core.Boot(core.Options{Enforce: true, AlertSecret: "a"})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mon := sys.Kernel.Monitor()

	if _, err := NewWriterAt(nil, mon, Path); !errors.Is(err, ErrNilArgs) {
		t.Errorf("NewWriterAt(nil fs) = %v, want ErrNilArgs", err)
	}
	if _, err := NewWriterAt(sys.FS, nil, Path); !errors.Is(err, ErrNilArgs) {
		t.Errorf("NewWriterAt(nil monitor) = %v, want ErrNilArgs", err)
	}

	// Empty path defaults to the conventional location.
	w, err := NewWriterAt(sys.FS, mon, "")
	if err != nil {
		t.Fatalf("NewWriterAt(empty path): %v", err)
	}
	if _, err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, err := sys.FS.Stat(Path); err != nil {
		t.Errorf("empty path did not fall back to %s: %v", Path, err)
	}

	// A bare filesystem where a regular file squats on /var: creating
	// /var/log must fail inside MkdirAll (non-directory on the walk)
	// and the constructor must surface it.
	bare := fs.New(clock.NewSimulated())
	if err := bare.WriteFile("/var", []byte("not a directory"), 0o644, fs.Root); err != nil {
		t.Fatalf("WriteFile /var: %v", err)
	}
	if _, err := NewWriterAt(bare, mon, Path); err == nil {
		t.Error("NewWriterAt over a file at /var should fail")
	} else if !strings.Contains(err.Error(), "auditlog:") {
		t.Errorf("constructor error not wrapped with package prefix: %v", err)
	}
}

// TestConcurrentAppendRaceClean drives decisions from two goroutines at
// once. The audit ring and the telemetry counter sit behind the
// monitor's mutex, so every append must land exactly once; the CI race
// step makes -race the second assertion.
func TestConcurrentAppendRaceClean(t *testing.T) {
	sys, tel, w, _ := bootInstrumented(t)
	spy, err := sys.LaunchHeadless("spy")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	mon := sys.Kernel.Monitor()
	before := tel.CounterValue("monitor", "audit_appends", "")

	const perGoroutine = 200
	opTime := sys.Clock.Now()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				mon.Decide(spy.PID(), monitor.OpMic, opTime)
			}
		}()
	}
	wg.Wait()

	appends := tel.CounterValue("monitor", "audit_appends", "") - before
	if appends != 2*perGoroutine {
		t.Fatalf("audit_appends grew by %d, want %d", appends, 2*perGoroutine)
	}
	// The ring defaults to 1024 slots, so all 400 records must still be
	// present when flushed.
	n, err := w.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n < 2*perGoroutine {
		t.Fatalf("Flush = %d records, want at least %d", n, 2*perGoroutine)
	}
}
