package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Module is the parsed view of a scan root: every Go package found by
// walking the tree, sharing one file set.
type Module struct {
	// Root is the absolute path the scan started from. Diagnostic file
	// names are relative to it.
	Root string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Packages holds one entry per directory containing Go files, in
	// sorted directory order. Files of in-package and external test
	// packages live in the same entry: the analyzers scope themselves
	// by file name and directory, not by package identity.
	Packages []*Package

	errFuncs   map[string]bool // lazily built by ReturnsError
	arityFuncs map[string]int  // name -> result count, -1 when ambiguous

	// Lazily built type-checked view (typecheck.go) and the
	// interprocedural fact tables derived from it (facts.go).
	typeOnce   sync.Once
	typeInfo   map[string]*TypeInfo // by Package.Dir
	typeOrder  []string             // package dirs in dependency order
	modulePath string               // from go.mod, "" when absent
	typeClean  bool                 // no type errors anywhere

	factsOnce sync.Once
	facts     *moduleFacts
}

// Package is the set of Go files in one directory.
type Package struct {
	// Dir is the slash-separated directory path relative to the module
	// root; "." for the root itself.
	Dir   string
	Files []*File
}

// File is one parsed source file.
type File struct {
	// Name is the slash-separated path relative to the module root.
	Name string
	// Abs is the absolute on-disk path.
	Abs string
	AST *ast.File

	allows    map[int][]allow
	badAllows []Diagnostic
}

func (p *Package) fileByAbs(abs string) *File {
	for _, f := range p.Files {
		if f.Abs == abs {
			return f
		}
	}
	return nil
}

// skipDirs are directory names never descended into. testdata holds
// analyzer fixtures (scanned only when named as the root explicitly);
// the rest are conventional non-source trees.
var skipDirs = map[string]bool{
	"testdata":     true,
	"vendor":       true,
	"node_modules": true,
}

// Load parses every Go file under root into a Module. Files that fail
// to parse abort the load: the linter runs after the compiler in CI,
// so syntax errors are someone else's diagnostic.
func Load(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolve root %s: %w", root, err)
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("analysis: root %s is not a directory", root)
	}

	m := &Module{Root: abs, Fset: token.NewFileSet()}
	byDir := make(map[string]*Package)
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != abs && (skipDirs[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		astFile, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		dir := "."
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		pkg, ok := byDir[dir]
		if !ok {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
		}
		f := &File{Name: rel, Abs: path, AST: astFile}
		f.allows, f.badAllows = parseAllows(m.Fset, f)
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		pkg := byDir[dir]
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
		m.Packages = append(m.Packages, pkg)
	}
	return m, nil
}

// ReturnsError reports whether any function or method declared in the
// module with the given name carries an error among its results. It is
// the module-wide index behind the errdrop analyzer: without type
// information, a dropped call is suspicious exactly when some
// declaration of that name can return an error.
func (m *Module) ReturnsError(name string) bool {
	m.buildNameIndex()
	return m.errFuncs[name]
}

// ResultCount reports how many results every module declaration named
// name returns; ok is false when declarations disagree or none exist.
// It backs errdrop's suggested fix, which must know how many blanks to
// assign.
func (m *Module) ResultCount(name string) (int, bool) {
	m.buildNameIndex()
	n, found := m.arityFuncs[name]
	return n, found && n >= 0
}

// DeclaresFunc reports whether any module declaration carries the
// name (with results).
func (m *Module) DeclaresFunc(name string) bool {
	m.buildNameIndex()
	_, found := m.arityFuncs[name]
	return found
}

func (m *Module) buildNameIndex() {
	if m.errFuncs != nil {
		return
	}
	m.errFuncs = make(map[string]bool)
	m.arityFuncs = make(map[string]int)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Type.Results == nil {
					continue
				}
				count := 0
				for _, res := range fn.Type.Results.List {
					if len(res.Names) == 0 {
						count++
					} else {
						count += len(res.Names)
					}
					if id, ok := res.Type.(*ast.Ident); ok && id.Name == "error" {
						m.errFuncs[fn.Name.Name] = true
					}
				}
				if have, seen := m.arityFuncs[fn.Name.Name]; seen && have != count {
					m.arityFuncs[fn.Name.Name] = -1
				} else if !seen {
					m.arityFuncs[fn.Name.Name] = count
				}
			}
		}
	}
}
