package ipc

import (
	"time"

	"overhaul/internal/faultinject"
	"overhaul/internal/telemetry"
)

// faultyStamps decorates a Stamps store with injected write failures:
// when the PointStampWrite fault fires, Adopt silently loses the
// update. This models a transient failure of the kernel-side stamp
// store. The degradation is fail closed by construction — a lost
// Adopt means the receiving process keeps an *older* stamp, so a
// subsequent temporal-proximity check can only deny where it would
// otherwise have granted, never the reverse.
type faultyStamps struct {
	st   Stamps
	hook faultinject.Hook
}

// FaultyStamps wraps st so that stamp-store writes consult hook at
// PointStampWrite. A nil hook (or nil st) returns st unchanged.
func FaultyStamps(st Stamps, hook faultinject.Hook) Stamps {
	if st == nil || hook == nil {
		return st
	}
	return &faultyStamps{st: st, hook: hook}
}

// Stamp implements Stamps. Reads are never faulted: the threat model
// injects *write* failures (the store losing an update), and a faulted
// read would be indistinguishable from "no interaction", which Adopt
// faults already cover.
func (f *faultyStamps) Stamp(pid int) (time.Time, bool) { return f.st.Stamp(pid) }

// Adopt implements Stamps; an injected fault drops the write.
func (f *faultyStamps) Adopt(pid int, t time.Time) {
	if faultinject.Eval(f.hook, faultinject.PointStampWrite).Injected() {
		return // update lost; receiver keeps its older (staler) stamp
	}
	f.st.Adopt(pid, t)
}

// StampSpan implements SpanStamps when the wrapped store tracks spans;
// otherwise it reports no span (reads are never faulted).
func (f *faultyStamps) StampSpan(pid int) (telemetry.SpanContext, bool) {
	if ss, ok := f.st.(SpanStamps); ok {
		return ss.StampSpan(pid)
	}
	return telemetry.SpanContext{}, false
}

// AdoptSpan implements SpanStamps; the same injected fault drops the
// stamp and its span together (they travel as one unit).
func (f *faultyStamps) AdoptSpan(pid int, t time.Time, ctx telemetry.SpanContext) {
	if faultinject.Eval(f.hook, faultinject.PointStampWrite).Injected() {
		return
	}
	if ss, ok := f.st.(SpanStamps); ok {
		ss.AdoptSpan(pid, t, ctx)
		return
	}
	f.st.Adopt(pid, t)
}
