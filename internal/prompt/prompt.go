// Package prompt implements the alternative policy model the paper
// sketches in §IV-A ("Trusted output"): explicit permission prompts
// built from Overhaul's two primitives — the trusted output path renders
// an *unforgeable* prompt (overlay + visual shared secret), and the
// trusted input path verifies that the answering click is authentic
// hardware input, so no process can answer its own prompt
// programmatically.
//
// The paper implements and verifies this model but does not adopt it
// (popup prompts have well-documented usability failures, Motiee et al.);
// it ships here as the optional extension it is, default-off.
package prompt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

// Answer is the user's decision on a prompt.
type Answer int

// Answers.
const (
	AnswerAllow Answer = iota + 1
	AnswerDeny
)

// String names the answer.
func (a Answer) String() string {
	switch a {
	case AnswerAllow:
		return "allow"
	case AnswerDeny:
		return "deny"
	default:
		return fmt.Sprintf("Answer(%d)", int(a))
	}
}

// Sentinel errors.
var (
	ErrNoPendingPrompt = errors.New("prompt: no pending prompt")
	ErrPromptPending   = errors.New("prompt: another prompt is pending")
	ErrSyntheticAnswer = errors.New("prompt: answer was not authentic hardware input")
	ErrExpired         = errors.New("prompt: prompt expired unanswered")
)

// DefaultTimeout is how long a prompt waits for the user.
const DefaultTimeout = 30 * time.Second

// Prompt is one rendered permission question.
type Prompt struct {
	PID      int
	Op       monitor.Op
	Message  string
	Secret   string // visual shared secret: unforgeable, like alerts
	ShownAt  time.Time
	Deadline time.Time
}

// Record is a resolved prompt.
type Record struct {
	Prompt Prompt
	Answer Answer
	At     time.Time
}

// Manager renders prompts on the trusted overlay and accepts answers
// only through the trusted input path. It is safe for concurrent use.
type Manager struct {
	clk     clock.Clock
	secret  string
	timeout time.Duration

	mu      sync.Mutex
	pending *Prompt
	history []Record
}

// NewManager builds a prompt manager sharing the display server's
// visual secret.
func NewManager(clk clock.Clock, secret string, timeout time.Duration) (*Manager, error) {
	if clk == nil {
		return nil, errors.New("prompt: nil clock")
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Manager{clk: clk, secret: secret, timeout: timeout}, nil
}

// Ask renders an unforgeable prompt for pid's request to perform op.
// Only one prompt may be pending at a time (the overlay is modal).
func (m *Manager) Ask(pid int, op monitor.Op) (Prompt, error) {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()

	if m.pending != nil {
		if now.Before(m.pending.Deadline) {
			return Prompt{}, fmt.Errorf("%w (pid %d, op %s)", ErrPromptPending, m.pending.PID, m.pending.Op)
		}
		// The previous prompt expired unanswered: deny by default.
		m.history = append(m.history, Record{Prompt: *m.pending, Answer: AnswerDeny, At: now})
		m.pending = nil
	}
	p := Prompt{
		PID:      pid,
		Op:       op,
		Message:  fmt.Sprintf("Allow application [pid %d] to perform %q?", pid, op),
		Secret:   m.secret,
		ShownAt:  now,
		Deadline: now.Add(m.timeout),
	}
	m.pending = &p
	return p, nil
}

// Pending returns the currently displayed prompt, if any.
func (m *Manager) Pending() (Prompt, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending == nil {
		return Prompt{}, false
	}
	return *m.pending, true
}

// AnswerWith resolves the pending prompt using the given input event.
// The event must be authentic hardware input (provenance check — the
// trusted input path); synthetic events from SendEvent or XTest are
// rejected, which is precisely what makes the prompt meaningful.
func (m *Manager) AnswerWith(ev xserver.Event, allow bool) (Answer, error) {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()

	if m.pending == nil {
		return 0, ErrNoPendingPrompt
	}
	if now.After(m.pending.Deadline) {
		m.history = append(m.history, Record{Prompt: *m.pending, Answer: AnswerDeny, At: now})
		m.pending = nil
		return AnswerDeny, ErrExpired
	}
	if ev.Provenance != xserver.FromHardware || ev.Synthetic {
		return 0, fmt.Errorf("%w: provenance %s", ErrSyntheticAnswer, ev.Provenance)
	}

	ans := AnswerDeny
	if allow {
		ans = AnswerAllow
	}
	m.history = append(m.history, Record{Prompt: *m.pending, Answer: ans, At: now})
	m.pending = nil
	return ans, nil
}

// Authentic reports whether a rendered prompt carries the shared secret
// (how a user distinguishes it from a fake dialog drawn by malware).
func (m *Manager) Authentic(p Prompt) bool {
	return m.secret != "" && p.Secret == m.secret
}

// History returns a copy of resolved prompts.
func (m *Manager) History() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.history))
	copy(out, m.history)
	return out
}
