package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one causally connected decision path (e.g. one
// user interaction and every enforcement step it enables). IDs are
// sequential from 1, never random, so traces are stable across runs.
type TraceID uint64

// SpanID identifies one span. IDs are sequential from 1 in creation
// order across all traces.
type SpanID uint64

// SpanContext is the propagation token: enough to link a child span to
// its parent across a process, channel, or IPC boundary. The zero value
// means "no context" and starts a fresh trace.
//
// Contexts ride the same paths interaction timestamps do: the netlink
// message structs carry one alongside the stamp time, the kernel's
// task struct stores the context that minted the current stamp
// (inherited on fork, P1), and the IPC carriers embed it next to the
// stamp they propagate (P2).
type SpanContext struct {
	Trace TraceID `json:"trace"`
	Span  SpanID  `json:"span"`
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// maxSpanAttrs bounds per-span annotations. Fixed-size storage keeps
// Annotate allocation-free; the decision path uses four and no caller
// in the tree uses more than five, so six leaves headroom while
// keeping the Span small enough that recycling it stays cache-friendly.
const maxSpanAttrs = 6

// attrSlot is fixed-size annotation storage. Integer values are kept as
// numbers and rendered only when the span is snapshot, so annotating a
// pid costs no strconv allocation on the hot path.
type attrSlot struct {
	key   string
	str   string
	num   int64
	isNum bool
}

// tracerStore is the span ring. The mutex guards ID allocation and the
// ring slots; span contents after creation are immutable or atomic, so
// Annotate/End never take it.
type tracerStore struct {
	mu       sync.Mutex
	traceSeq uint64
	spanSeq  uint64
	ring     []*Span // creation order: ring[(head+i)%cap], bounded by spanCap
	head     int
	n        int
	dropped  uint64
	free     []*Span // recycled span storage, see StartSpan
}

// Span is one timed step on a decision path. Spans are created by
// Recorder.StartSpan and must be closed with End on every return path
// (the spancheck analyzer enforces this mechanically). All methods are
// no-ops on a nil receiver, so instrumented code needs no nil checks
// when telemetry is disabled.
//
// Identity, start time, and naming are fixed at creation; the end time
// and the annotations are atomics, so a span in the ring can be
// snapshot while its owner is still annotating it. Annotation slots are
// published with a per-slot ready flag: a writer reserves a slot,
// fills it, then flips the flag, and snapshots take the ready prefix.
type Span struct {
	rec       *Recorder
	ctx       SpanContext
	parent    SpanID
	subsystem string
	name      string
	start     time.Time

	endNanos    atomic.Int64 // 0 = still open
	attrReserve atomic.Int32
	attrReady   [maxSpanAttrs]atomic.Bool
	attrs       [maxSpanAttrs]attrSlot
}

// reset prepares recycled storage for a new span. Only the ready flags
// are lowered — snapshots read the published prefix, so stale slot
// contents behind a lowered flag are unobservable. The slots
// themselves are left as-is: they hold interned keys and short static
// values, so the retention until overwrite is bounded and tiny, and
// skipping the zeroing keeps the hot path short.
func (s *Span) reset(r *Recorder, parent SpanContext, subsystem, name string) {
	n := int(s.attrReserve.Load())
	if n > maxSpanAttrs {
		n = maxSpanAttrs
	}
	for i := 0; i < n; i++ {
		s.attrReady[i].Store(false)
	}
	s.attrReserve.Store(0)
	s.endNanos.Store(0)
	s.rec = r
	s.parent = parent.Span
	s.subsystem = subsystem
	s.name = name
	s.start = r.now()
}

// StartSpan opens a span under parent. A zero parent starts a new
// trace. Returns nil (a usable no-op span) on a nil recorder.
//
// Span storage is recycled through a free list owned by the tracer
// mutex: a span becomes eligible for reuse only once it is both ended
// and evicted from the ring, at which point it is unobservable
// (snapshots copy, nothing retains the pointer). An unended span at
// eviction is left for the garbage collector instead — its owner may
// still be annotating it. Once the ring has cycled, every StartSpan is
// served from the free list, so the steady-state decision path
// allocates nothing (a sync.Pool would reach the same steady state
// only between GC cycles; the explicit list survives them).
func (r *Recorder) StartSpan(parent SpanContext, subsystem, name string) *Span {
	if r == nil {
		return nil
	}
	t := &r.tracer
	t.mu.Lock()
	var s *Span
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		s = new(Span)
	}
	// Reset under the lock: the span is visible to snapshots the moment
	// it enters the ring, so its fields must be settled first.
	s.reset(r, parent, subsystem, name)
	t.spanSeq++
	trace := parent.Trace
	if trace == 0 {
		t.traceSeq++
		trace = TraceID(t.traceSeq)
	}
	s.ctx = SpanContext{Trace: trace, Span: SpanID(t.spanSeq)}
	if t.ring == nil {
		t.ring = make([]*Span, r.spanCap)
	}
	if t.n == r.spanCap {
		// Drop-oldest keeps the recorder bounded; the drop is counted so
		// a truncated trace is distinguishable from a complete one.
		if old := t.ring[t.head]; old.endNanos.Load() != 0 {
			t.free = append(t.free, old)
		}
		t.ring[t.head] = s
		t.head = (t.head + 1) % r.spanCap
		t.dropped++
	} else {
		t.ring[(t.head+t.n)%r.spanCap] = s
		t.n++
	}
	t.mu.Unlock()
	return s
}

// Context returns the span's propagation token (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// annotateSlot reserves the next attribute slot and publishes it.
// Annotations beyond maxSpanAttrs are dropped.
func (s *Span) annotateSlot(a attrSlot) {
	i := s.attrReserve.Add(1) - 1
	if int(i) >= maxSpanAttrs {
		return
	}
	s.attrs[i] = a
	s.attrReady[i].Store(true)
}

// Annotate attaches a key/value attribute to the span. Lock-free.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.annotateSlot(attrSlot{key: key, str: value})
}

// AnnotateInt attaches an integer attribute. The value is rendered in
// decimal only when the span is snapshot, keeping the caller
// allocation-free.
func (s *Span) AnnotateInt(key string, value int64) {
	if s == nil {
		return
	}
	s.annotateSlot(attrSlot{key: key, num: value, isNum: true})
}

// AnnotateDecision attaches the four canonical decision attributes —
// pid, op, verdict, reason — with a single slot reservation. It is
// the batched form of four Annotate calls for the decision hot path:
// one atomic reservation instead of four, same published-prefix
// visibility rules. Dropped whole if fewer than four slots remain.
func (s *Span) AnnotateDecision(pid int64, op, verdict, reason string) {
	if s == nil {
		return
	}
	i := int(s.attrReserve.Add(4)) - 4
	if i+4 > maxSpanAttrs {
		return
	}
	s.attrs[i] = attrSlot{key: "pid", num: pid, isNum: true}
	s.attrReady[i].Store(true)
	s.attrs[i+1] = attrSlot{key: "op", str: op}
	s.attrReady[i+1].Store(true)
	s.attrs[i+2] = attrSlot{key: "verdict", str: verdict}
	s.attrReady[i+2].Store(true)
	s.attrs[i+3] = attrSlot{key: "reason", str: reason}
	s.attrReady[i+3].Store(true)
}

// End closes the span at the recorder's current instant. Ending twice
// keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endNanos.CompareAndSwap(0, s.rec.nowNanos())
}

// SpanRecord is the immutable snapshot form of a span.
type SpanRecord struct {
	Trace     TraceID   `json:"trace"`
	ID        SpanID    `json:"id"`
	Parent    SpanID    `json:"parent,omitempty"`
	Subsystem string    `json:"subsystem"`
	Name      string    `json:"name"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end,omitempty"`
	Ended     bool      `json:"ended"`
	Attrs     []Attr    `json:"attrs,omitempty"`
}

// record snapshots one span. Safe to call concurrently with Annotate
// and End: it reads the published prefix of the attribute slots.
func (s *Span) record() SpanRecord {
	n := int(s.attrReserve.Load())
	if n > maxSpanAttrs {
		n = maxSpanAttrs
	}
	var attrs []Attr
	if n > 0 {
		attrs = make([]Attr, 0, n)
		for i := 0; i < n; i++ {
			if !s.attrReady[i].Load() {
				break
			}
			a := &s.attrs[i]
			v := a.str
			if a.isNum {
				v = strconv.FormatInt(a.num, 10)
			}
			attrs = append(attrs, Attr{Key: a.key, Value: v})
		}
	}
	rec := SpanRecord{
		Trace:     s.ctx.Trace,
		ID:        s.ctx.Span,
		Parent:    s.parent,
		Subsystem: s.subsystem,
		Name:      s.name,
		Start:     s.start,
		Attrs:     attrs,
	}
	if end := s.endNanos.Load(); end != 0 {
		rec.End = time.Unix(0, end).UTC()
		rec.Ended = true
	}
	return rec
}

// spansLocked appends a record for every retained span matching keep.
// Requires t.mu held.
func (t *tracerStore) spansLocked(ringCap int, keep func(*Span) bool) []SpanRecord {
	out := make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		s := t.ring[(t.head+i)%ringCap]
		if keep == nil || keep(s) {
			out = append(out, s.record())
		}
	}
	return out
}

// Spans returns every retained span in creation order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	t := &r.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansLocked(r.spanCap, nil)
}

// SpansDropped reports how many spans were evicted by the bound.
func (r *Recorder) SpansDropped() uint64 {
	if r == nil {
		return 0
	}
	t := &r.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceOf resolves the trace a span belongs to.
func (r *Recorder) TraceOf(id SpanID) (TraceID, bool) {
	if r == nil {
		return 0, false
	}
	t := &r.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.n; i++ {
		if s := t.ring[(t.head+i)%r.spanCap]; s.ctx.Span == id {
			return s.ctx.Trace, true
		}
	}
	return 0, false
}

// TraceSpans returns the retained spans of one trace, in creation
// order (which is also causal order: parents are created before their
// children).
func (r *Recorder) TraceSpans(tr TraceID) []SpanRecord {
	if r == nil {
		return nil
	}
	t := &r.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.spansLocked(r.spanCap, func(s *Span) bool { return s.ctx.Trace == tr })
	if len(out) == 0 {
		return nil
	}
	return out
}

// Subsystems returns the distinct subsystems appearing in the given
// records, sorted (diagnostics and acceptance checks).
func Subsystems(spans []SpanRecord) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range spans {
		if !seen[s.Subsystem] {
			seen[s.Subsystem] = true
			out = append(out, s.Subsystem)
		}
	}
	// Insertion order is creation order; sort for set semantics.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
