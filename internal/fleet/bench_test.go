package fleet

import (
	"fmt"
	"testing"
	"time"

	"overhaul/internal/monitor"
)

// BenchmarkFleetDecide measures one Dispatch'd decision while the
// fleet holds N live sessions, round-robining requests across all of
// them. Scaling N from 10 to 10k shows what session count itself costs
// the decision path (ingress routing plus cache pressure from 10k
// separate stamp tables) — per-decision work is constant, so the rows
// should stay near-flat and allocation-free. Gated by bench-compare
// via the BenchmarkFleet prefix.
func BenchmarkFleetDecide(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			f, err := New(Config{Policy: monitor.Policy{Enforce: true}})
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]Request, n)
			opNanos := base.Add(time.Second).UnixNano()
			for i := range reqs {
				s := f.CreateSession()
				pid, err := s.Spawn()
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Notify(pid, base); err != nil {
					b.Fatal(err)
				}
				reqs[i] = Request{SessionID: s.ID(), Kind: RequestDecide, PID: pid, Op: monitor.OpMic, Time: opNanos}
			}
			// Warm every session's audit ring so steady state is
			// allocation-free from the first measured iteration.
			for i := range reqs {
				if _, err := f.Dispatch(reqs[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Dispatch(reqs[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetDispatchParallel drives the ingress from all CPUs at
// once — the capacity-planning number: decisions per second one
// machine sustains across a full fleet.
func BenchmarkFleetDispatchParallel(b *testing.B) {
	const n = 1000
	f, err := New(Config{Policy: monitor.Policy{Enforce: true}})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]Request, n)
	opNanos := base.Add(time.Second).UnixNano()
	for i := range reqs {
		s := f.CreateSession()
		pid, err := s.Spawn()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Notify(pid, base); err != nil {
			b.Fatal(err)
		}
		reqs[i] = Request{SessionID: s.ID(), Kind: RequestDecide, PID: pid, Op: monitor.OpMic, Time: opNanos}
		if _, err := f.Dispatch(reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := f.Dispatch(reqs[i%n]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkFleetCreateSession measures session boot cost — the number
// that says how fast a fleet can absorb a login storm.
func BenchmarkFleetCreateSession(b *testing.B) {
	f, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.CreateSession()
		if _, err := s.Spawn(); err != nil {
			b.Fatal(err)
		}
	}
}
