package monitor

import (
	"math/rand"
	"testing"
	"time"
)

// Property-based checks of the temporal-proximity rule. The generator
// is seeded, so a failure reproduces exactly; each property prints the
// case that broke it.

// decideModel is the specification Decide must agree with in enforcing,
// non-degraded mode: grant iff the process has a recorded interaction
// stamp and the operation falls within δ of it (operations timestamped
// before the stamp count as immediate proximity).
func decideModel(stamp time.Time, opTime time.Time, threshold time.Duration) Verdict {
	if stamp.IsZero() {
		return VerdictDeny
	}
	if opTime.Sub(stamp) < threshold {
		return VerdictGrant
	}
	return VerdictDeny
}

// randomDelay spreads elapsed times across the interesting range:
// dense around ±δ, sparse tails out to minutes.
func randomDelay(rng *rand.Rand, threshold time.Duration) time.Duration {
	switch rng.Intn(4) {
	case 0: // tight around the boundary, including exactly δ
		return threshold + time.Duration(rng.Int63n(int64(20*time.Millisecond))) - 10*time.Millisecond
	case 1: // clearly fresh
		return time.Duration(rng.Int63n(int64(threshold)))
	case 2: // operation timestamped before the interaction
		return -time.Duration(rng.Int63n(int64(time.Second)))
	default: // clearly stale
		return threshold + time.Duration(rng.Int63n(int64(time.Minute)))
	}
}

// TestDecideMatchesModel: grant ⇔ now − stamp ≤ δ, for randomized
// stamps, operation times and thresholds.
func TestDecideMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for i := 0; i < 2000; i++ {
		threshold := time.Duration(1+rng.Int63n(int64(5*time.Second))) * 1
		m, tasks, clk := newTestMonitor(t, Config{Enforce: true, Threshold: threshold})
		pid := 100 + rng.Intn(50)
		tasks.add(pid)

		stamp := time.Time{}
		if rng.Intn(8) != 0 { // mostly stamped, sometimes never-interacted
			stamp = clk.Now().Add(time.Duration(rng.Int63n(int64(time.Hour))))
			if err := tasks.SetInteractionStamp(pid, stamp); err != nil {
				t.Fatalf("SetInteractionStamp: %v", err)
			}
		}
		opTime := stamp.Add(randomDelay(rng, threshold))
		if stamp.IsZero() {
			opTime = clk.Now().Add(time.Duration(rng.Int63n(int64(time.Hour))))
		}

		got := m.Decide(pid, OpMic, opTime)
		want := decideModel(stamp, opTime, threshold)
		if got != want {
			t.Fatalf("case %d: Decide=%v model=%v (stamp=%v opTime=%v δ=%v elapsed=%v)",
				i, got, want, stamp, opTime, threshold, opTime.Sub(stamp))
		}
	}
}

// TestDecideDenialMonotone: once an operation is stale it stays stale —
// for a fixed stamp, granting at elapsed e₂ implies granting at any
// e₁ ≤ e₂, and denying at e₁ implies denying at any e₂ ≥ e₁.
func TestDecideDenialMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	m, tasks, clk := newTestMonitor(t, Config{Enforce: true})
	pid := 7
	tasks.add(pid)
	stamp := clk.Now().Add(time.Hour)
	if err := tasks.SetInteractionStamp(pid, stamp); err != nil {
		t.Fatalf("SetInteractionStamp: %v", err)
	}
	for i := 0; i < 2000; i++ {
		e1 := randomDelay(rng, DefaultThreshold)
		e2 := randomDelay(rng, DefaultThreshold)
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		v1 := m.Decide(pid, OpCam, stamp.Add(e1))
		v2 := m.Decide(pid, OpCam, stamp.Add(e2))
		if v2 == VerdictGrant && v1 != VerdictGrant {
			t.Fatalf("case %d: grant at elapsed %v but deny at earlier %v", i, e2, e1)
		}
	}
}

// TestDecideHistoryIndependent: a decision depends only on the stamp
// and the operation time — not on which queries (or how many) came
// before it. The same query set evaluated in two different orders must
// produce the same verdict for every query.
func TestDecideHistoryIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	type query struct {
		pid    int
		op     Op
		opTime time.Time
	}
	ops := []Op{OpMic, OpCam, OpCopy, OpPaste, OpScreen}

	for trial := 0; trial < 50; trial++ {
		// Two monitors over identically-stamped task stores.
		m1, tasks1, clk := newTestMonitor(t, Config{Enforce: true})
		m2, tasks2, _ := newTestMonitor(t, Config{Enforce: true})
		base := clk.Now()

		pids := []int{10, 11, 12}
		for _, pid := range pids {
			tasks1.add(pid)
			tasks2.add(pid)
			if rng.Intn(4) != 0 {
				stamp := base.Add(time.Duration(rng.Int63n(int64(10 * time.Second))))
				if err := tasks1.SetInteractionStamp(pid, stamp); err != nil {
					t.Fatalf("SetInteractionStamp: %v", err)
				}
				if err := tasks2.SetInteractionStamp(pid, stamp); err != nil {
					t.Fatalf("SetInteractionStamp: %v", err)
				}
			}
		}

		queries := make([]query, 40)
		for i := range queries {
			queries[i] = query{
				pid:    pids[rng.Intn(len(pids))],
				op:     ops[rng.Intn(len(ops))],
				opTime: base.Add(time.Duration(rng.Int63n(int64(15 * time.Second)))),
			}
		}
		perm := rng.Perm(len(queries))

		verdicts1 := make([]Verdict, len(queries))
		for i, q := range queries {
			verdicts1[i] = m1.Decide(q.pid, q.op, q.opTime)
		}
		verdicts2 := make([]Verdict, len(queries))
		for _, i := range perm {
			q := queries[i]
			verdicts2[i] = m2.Decide(q.pid, q.op, q.opTime)
		}
		for i := range queries {
			if verdicts1[i] != verdicts2[i] {
				t.Fatalf("trial %d query %d: verdict %v in program order, %v shuffled (q=%+v)",
					trial, i, verdicts1[i], verdicts2[i], queries[i])
			}
		}
	}
}
