package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Facts are how analysis crosses package boundaries, modeled on
// go/analysis: while a package is analyzed, findings about its
// exported (and unexported) objects are recorded in a per-package
// FactSet; packages later in dependency order consume the facts of
// the packages they import. Facts are keyed by a stable string path
// for the object ("pkgpath.(Recv).Name" for methods,
// "pkgpath.Type.Field" for fields), which makes them serializable —
// the driver's cache persists them, and TestFactRoundTrip pins the
// round-trip.

// Taint is the flowcheck lattice: ⊥ < clock < stamp.
//
//	TaintNone:  not derived from any trusted time source
//	TaintClock: derived from the injected hardware clock
//	            (clock.Clock.Now) — authentic "now", but not yet
//	            evidence of user interaction
//	TaintStamp: read back from the interaction-stamp store — the
//	            hardware-input evidence a grant must rest on
type Taint int

// Taint levels, ordered: joining two taints takes the max.
const (
	TaintNone Taint = iota
	TaintClock
	TaintStamp
)

// String names the lattice level.
func (t Taint) String() string {
	switch t {
	case TaintClock:
		return "clock"
	case TaintStamp:
		return "stamp"
	default:
		return "none"
	}
}

// join is the lattice join (max).
func (t Taint) join(u Taint) Taint {
	if u > t {
		return u
	}
	return t
}

// FuncFact is everything the interprocedural analyzers know about one
// function or method.
type FuncFact struct {
	// Results holds the taint of each result value, in declaration
	// order. Missing/short means untainted.
	Results []Taint `json:"results,omitempty"`
	// FailsClosed marks a function that records fail-closed handling
	// (RecordDenial / SetDegraded, directly or transitively) on some
	// path — a call to such a function covers a nearby error return.
	FailsClosed bool `json:"fails_closed,omitempty"`
	// Acquires lists the lock classes this function may acquire,
	// directly or through calls, in sorted order.
	Acquires []string `json:"acquires,omitempty"`
	// LockEdges records held-while-acquiring pairs observed in the
	// function body: Held is locked when Acquired is taken.
	LockEdges []LockEdge `json:"lock_edges,omitempty"`
}

// LockEdge is one held→acquired pair in the lock-order graph.
type LockEdge struct {
	Held     string `json:"held"`
	Acquired string `json:"acquired"`
}

// FieldFact carries the taint of a struct field: the join of every
// value the module was seen storing into it (plain assignment or an
// atomic Store/CompareAndSwap/Swap on the field).
type FieldFact struct {
	Taint Taint `json:"taint"`
}

// ParamFact records, per method name and parameter index, the highest
// taint any call site passed. It is keyed by bare method name (not
// receiver type): interface dispatch — the display server notifying
// through xserver.Policy, IPC adopting through ipc.Stamps — is
// resolved by name across the module, the same convention the
// syntactic analyzers rely on. Over-approximating here only makes
// taint spread wider, which for flowcheck's polarity (findings fire
// on the *absence* of taint) can suppress findings, never fabricate
// them.
type ParamFact struct {
	Taint Taint `json:"taint"`
}

// FactSet is the per-package fact table.
type FactSet struct {
	// Funcs is keyed by objectKey of the *types.Func.
	Funcs map[string]*FuncFact `json:"funcs,omitempty"`
	// Fields is keyed by objectKey of the field's *types.Var.
	Fields map[string]*FieldFact `json:"fields,omitempty"`
	// Params is keyed by "methodName#index".
	Params map[string]*ParamFact `json:"params,omitempty"`
}

// NewFactSet returns an empty fact table.
func NewFactSet() *FactSet {
	return &FactSet{
		Funcs:  make(map[string]*FuncFact),
		Fields: make(map[string]*FieldFact),
		Params: make(map[string]*ParamFact),
	}
}

// EncodeFacts serializes a fact set deterministically (sorted keys via
// encoding/json's map ordering) for the driver's on-disk cache.
func EncodeFacts(fs *FactSet) ([]byte, error) {
	return json.Marshal(fs)
}

// DecodeFacts is the inverse of EncodeFacts.
func DecodeFacts(data []byte) (*FactSet, error) {
	fs := NewFactSet()
	if err := json.Unmarshal(data, fs); err != nil {
		return nil, fmt.Errorf("decode facts: %w", err)
	}
	if fs.Funcs == nil {
		fs.Funcs = make(map[string]*FuncFact)
	}
	if fs.Fields == nil {
		fs.Fields = make(map[string]*FieldFact)
	}
	if fs.Params == nil {
		fs.Params = make(map[string]*ParamFact)
	}
	return fs, nil
}

// objectKey builds the stable string path facts are keyed by. Methods
// include their receiver type; package-level functions and fields of
// named structs are pkgpath-qualified. Objects without a package
// (builtins) or without a name yield "".
func objectKey(obj types.Object) string {
	if obj == nil || obj.Name() == "" {
		return ""
	}
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return pkgPath + ".(" + recvTypeName(sig.Recv().Type()) + ")." + fn.Name()
		}
		return pkgPath + "." + fn.Name()
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Fields are keyed under their owning struct when it is a
		// named type; anonymous-struct fields fall back to a
		// pkg-qualified name (collisions there only merge taint,
		// which is safe for a may-analysis).
		return pkgPath + ".field." + fieldOwner(v) + "." + v.Name()
	}
	return pkgPath + "." + obj.Name()
}

// recvTypeName renders a receiver type as a bare name, through one
// pointer.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		return "*" + recvTypeName(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// fieldOwner maps a field object to its owning named type, consulting
// the index built while walking struct types (see registerOwner). A
// field not found there renders by position, which is still stable
// within one build of the module.
func fieldOwner(v *types.Var) string {
	fieldOwners.RLock()
	owner, ok := fieldOwners.index[v]
	fieldOwners.RUnlock()
	if ok {
		return owner
	}
	return fmt.Sprintf("anon@%d", v.Pos())
}

// fieldOwners is populated during fact computation (registerOwner). It
// is package-global because objectKey has no Module handle; keys only
// need to be stable within a process plus deterministic across
// processes for named owners (the cache hashes content, not object
// identity). The lock exists for callers loading several modules from
// concurrent goroutines.
var fieldOwners = struct {
	sync.RWMutex
	index map[*types.Var]string
}{index: map[*types.Var]string{}}

// registerOwner records that every field of struct type st belongs to
// the named type name.
func registerOwner(name string, st *types.Struct) {
	fieldOwners.Lock()
	for i := 0; i < st.NumFields(); i++ {
		fieldOwners.index[st.Field(i)] = name
	}
	fieldOwners.Unlock()
}

// moduleFacts aggregates the per-package fact sets plus the module
// call graph, built once per module by ComputeFacts.
type moduleFacts struct {
	byDir map[string]*FactSet // Package.Dir -> facts
	graph *CallGraph
	state *taintState // retained propagation state (taint queries)

	// merged lookup tables, union of all packages in dependency
	// order. Analyzing package P only ever *writes* P's own set; the
	// merged view is what analyzers read, which respects import
	// ordering because facts are computed in dependency order.
	funcs  map[string]*FuncFact
	fields map[string]*FieldFact
	params map[string]*ParamFact
}

// Facts computes (once) and returns the module's fact tables. Returns
// nil when type information is entirely unavailable.
func (m *Module) Facts() *ModuleFacts {
	m.factsOnce.Do(func() {
		m.TypeCheck()
		m.facts = computeFacts(m)
	})
	if m.facts == nil {
		return nil
	}
	return &ModuleFacts{m: m}
}

// ModuleFacts is the read API handed to analyzers.
type ModuleFacts struct{ m *Module }

// ForPackage returns the facts recorded while analyzing pkg (its own
// exports, not its imports').
func (mf *ModuleFacts) ForPackage(pkg *Package) *FactSet {
	return mf.m.facts.byDir[pkg.Dir]
}

// FuncFact resolves a function fact by object.
func (mf *ModuleFacts) FuncFact(obj types.Object) *FuncFact {
	return mf.m.facts.funcs[objectKey(obj)]
}

// FuncFactByKey resolves a function fact by its stable key.
func (mf *ModuleFacts) FuncFactByKey(key string) *FuncFact {
	return mf.m.facts.funcs[key]
}

// FieldFact resolves a field fact by object.
func (mf *ModuleFacts) FieldFact(obj types.Object) *FieldFact {
	return mf.m.facts.fields[objectKey(obj)]
}

// ParamTaint reports the strongest taint any call site passed for the
// named method's parameter index.
func (mf *ModuleFacts) ParamTaint(method string, index int) Taint {
	if f := mf.m.facts.params[paramKey(method, index)]; f != nil {
		return f.Taint
	}
	return TaintNone
}

// CallGraph returns the module call graph.
func (mf *ModuleFacts) CallGraph() *CallGraph {
	return mf.m.facts.graph
}

// ExprTaint evaluates the taint of an expression against the final
// fixpoint state. info must be the TypeInfo.Info of the package the
// expression belongs to.
func (mf *ModuleFacts) ExprTaint(info *types.Info, e ast.Expr) Taint {
	if mf.m.facts.state == nil {
		return TaintNone
	}
	return mf.m.facts.state.exprTaint(info, e)
}

// LockClasses exposes the module's lock classes (key → sharded) for
// lockordercheck.
func (mf *ModuleFacts) LockClasses() map[string]bool {
	out := make(map[string]bool)
	if mf.m.facts.state == nil {
		return out
	}
	for k, c := range mf.m.facts.state.classes {
		out[k] = c.sharded
	}
	return out
}

// EdgeSite reports where a lock edge was observed (package + position),
// for diagnostics. ok is false for edges the module never recorded.
func (mf *ModuleFacts) EdgeSite(e LockEdge) (pkg *Package, pos token.Pos, ok bool) {
	if mf.m.facts.state == nil {
		return nil, token.NoPos, false
	}
	site, found := mf.m.facts.state.edgePos[e]
	if !found {
		return nil, token.NoPos, false
	}
	return site.pkg, site.pos, true
}

// AllLockEdges returns every held→acquired edge recorded module-wide.
func (mf *ModuleFacts) AllLockEdges() []LockEdge {
	var out []LockEdge
	if mf.m.facts.state == nil {
		return out
	}
	for e := range mf.m.facts.state.edgePos {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Held != out[j].Held {
			return out[i].Held < out[j].Held
		}
		return out[i].Acquired < out[j].Acquired
	})
	return out
}

func paramKey(method string, index int) string {
	return fmt.Sprintf("%s#%d", method, index)
}

// sortedKeys is a test/debug helper: the fact keys of a set, sorted.
func (fs *FactSet) sortedKeys() []string {
	var keys []string
	for k := range fs.Funcs {
		keys = append(keys, "func:"+k)
	}
	for k := range fs.Fields {
		keys = append(keys, "field:"+k)
	}
	for k := range fs.Params {
		keys = append(keys, "param:"+k)
	}
	sort.Strings(keys)
	return keys
}
