package probe

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// The fixed attach-point vocabulary. Each name is compiled into one
// hot path; the Registry creates all of them up front so subsystems
// can resolve their hooks once at construction time.
const (
	// HookKernelOpen fires in the kernel's augmented open(2) for every
	// open that passes UNIX permission checks, with the mediation
	// outcome (grant/deny for sensitive devices, none otherwise).
	HookKernelOpen = "kernel.open"
	// HookKernelDecide fires for every permission decision record —
	// monitor decisions and externally-recorded fail-closed denials —
	// with full decision metadata. Its event stream is byte-equivalent
	// to the audit ring (the probe ≡ audit oracle property).
	HookKernelDecide = "kernel.decide"
	// HookMonitorEvaluate fires when the pure policy rule
	// (monitor.Policy.Evaluate) produces a verdict inside Decide.
	HookMonitorEvaluate = "monitor.evaluate"
	// HookMonitorAudit fires on every audit-ring append.
	HookMonitorAudit = "monitor.audit"
	// HookXServerInput fires for authentic hardware input dispatched
	// to a window (clicks and keys; synthetic input never fires it).
	HookXServerInput = "xserver.input"
	// HookNetlinkSend fires per kernel→user channel message.
	HookNetlinkSend = "netlink.send"
	// HookNetlinkRecv fires per user→kernel channel message.
	HookNetlinkRecv = "netlink.recv"
	// HookFleetDispatch fires per fleet ingress request routed to a
	// session, with the session ID and (for decides) the verdict.
	HookFleetDispatch = "fleet.dispatch"
)

// hookNames is the vocabulary in stable display order.
var hookNames = []string{
	HookKernelOpen,
	HookKernelDecide,
	HookMonitorEvaluate,
	HookMonitorAudit,
	HookXServerInput,
	HookNetlinkSend,
	HookNetlinkRecv,
	HookFleetDispatch,
}

// HookNames returns the attach-point vocabulary in stable order.
func HookNames() []string {
	out := make([]string, len(hookNames))
	copy(out, hookNames)
	return out
}

// KnownHook reports whether name is in the attach-point vocabulary.
func KnownHook(name string) bool {
	for _, n := range hookNames {
		if n == name {
			return true
		}
	}
	return false
}

// Probe is one attached predicate + sink pair.
type Probe struct {
	id      uint64
	spec    Spec
	ring    *Ring
	hooks   []string // attach-point names, in vocabulary order
	matched atomic.Uint64
}

// ID returns the registry-assigned probe ID.
func (p *Probe) ID() uint64 { return p.id }

// Spec returns the compiled predicate.
func (p *Probe) Spec() Spec { return p.spec }

// Ring returns the probe's event sink.
func (p *Probe) Ring() *Ring { return p.ring }

// Matched returns how many events satisfied the predicate (published
// plus dropped at the ring).
func (p *Probe) Matched() uint64 { return p.matched.Load() }

// Hooks returns the attach-point names the probe is bound to.
func (p *Probe) Hooks() []string {
	out := make([]string, len(p.hooks))
	copy(out, p.hooks)
	return out
}

// Info is the List view of one attached probe.
type Info struct {
	ID      uint64   `json:"id"`
	Spec    string   `json:"spec"`
	Hooks   []string `json:"hooks"`
	Matched uint64   `json:"matched"`
	Dropped uint64   `json:"dropped"`
}

// Registry owns the fixed hook set and the attach/detach surface. One
// registry instruments one system; passing it through the subsystem
// configs (monitor.Config.Probes, core.Options.Probes, ...) wires its
// hooks into the hot paths. Safe for concurrent use; attach/detach are
// copy-on-write swaps, so in-flight emissions always see a consistent
// snapshot.
type Registry struct {
	mu     sync.Mutex
	hooks  map[string]*Hook
	probes map[uint64]*Probe
	nextID uint64
}

// NewRegistry creates a registry with the full attach-point
// vocabulary, all hooks unarmed.
func NewRegistry() *Registry {
	r := &Registry{
		hooks:  make(map[string]*Hook, len(hookNames)),
		probes: make(map[uint64]*Probe),
	}
	for _, name := range hookNames {
		r.hooks[name] = &Hook{name: name}
	}
	return r
}

// Hook resolves an attach point by name. Nil-safe: a nil registry (the
// uninstrumented default) and an unknown name both return a nil hook,
// which is never armed — so subsystems resolve unconditionally.
func (r *Registry) Hook(name string) *Hook {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hooks[name]
}

// Attach binds a probe: events at the spec's hook (all hooks when
// spec.Hook is empty) that match the spec are published to ring.
func (r *Registry) Attach(spec Spec, ring *Ring) (*Probe, error) {
	if r == nil {
		return nil, fmt.Errorf("probe: attach on nil registry")
	}
	if ring == nil {
		return nil, fmt.Errorf("probe: attach with nil ring")
	}
	targets := hookNames
	if spec.Hook != "" {
		if !KnownHook(spec.Hook) {
			return nil, fmt.Errorf("probe: unknown hook %q", spec.Hook)
		}
		targets = []string{spec.Hook}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	p := &Probe{id: r.nextID, spec: spec, ring: ring}
	p.hooks = append(p.hooks, targets...)
	for _, name := range targets {
		h := r.hooks[name]
		var probes []*Probe
		if old := h.set.Load(); old != nil {
			probes = append(probes, old.probes...)
		}
		probes = append(probes, p)
		h.set.Store(newAttachSet(probes))
	}
	r.probes[p.id] = p
	return p, nil
}

// AttachSpec parses a textual spec and attaches it.
func (r *Registry) AttachSpec(text string, ring *Ring) (*Probe, error) {
	spec, err := ParseSpec(text)
	if err != nil {
		return nil, err
	}
	return r.Attach(spec, ring)
}

// Detach unbinds a probe from every hook it was attached to. Emissions
// in flight may still publish to its ring; after Detach returns, new
// emissions no longer see it.
func (r *Registry) Detach(id uint64) error {
	if r == nil {
		return fmt.Errorf("probe: detach on nil registry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.probes[id]
	if !ok {
		return fmt.Errorf("probe: no probe with id %d", id)
	}
	delete(r.probes, id)
	for _, name := range p.hooks {
		h := r.hooks[name]
		old := h.set.Load()
		if old == nil {
			continue
		}
		var kept []*Probe
		for _, q := range old.probes {
			if q != p {
				kept = append(kept, q)
			}
		}
		if len(kept) == 0 {
			h.set.Store(nil)
		} else {
			h.set.Store(newAttachSet(kept))
		}
	}
	return nil
}

// List snapshots the attached probes, ordered by ID.
func (r *Registry) List() []Info {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.probes))
	for _, p := range r.probes {
		out = append(out, Info{
			ID:      p.id,
			Spec:    p.spec.String(),
			Hooks:   p.Hooks(),
			Matched: p.Matched(),
			Dropped: p.ring.Dropped(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
