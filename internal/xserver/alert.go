package xserver

import (
	"errors"
	"fmt"
	"time"

	"overhaul/internal/faultinject"
	"overhaul/internal/monitor"
	"overhaul/internal/telemetry"
)

// Alert is one trusted-output overlay notification. Alerts render on a
// dedicated overlay stacked above every client window; clients have no
// request that can move, obscure, or close them, and each carries the
// user's visual shared secret so forged look-alike windows are
// distinguishable (paper Figure 5).
type Alert struct {
	Message string
	Secret  string // the visual shared secret (authentic alerts only)
	PID     int
	Op      Op
	Blocked bool // true when the alert reports a *blocked* attempt
	// Degraded marks alerts raised while protection is degraded —
	// either a denial issued by a degraded monitor or the banner
	// announcing the degradation itself. Their wording is distinct so
	// the user can tell "you were denied by policy" from "the system
	// cannot currently enforce policy and is blocking everything".
	Degraded bool
	// RenderFailed marks alerts whose overlay rendering failed (fault
	// injection): they never reached the screen but stay in the history
	// as evidence — a failure of the alert engine must not be silent.
	RenderFailed bool
	ShownAt      time.Time
	Expires      time.Time
}

// ErrUntrustedAlert is returned when something other than the kernel
// channel attempts to raise an alert.
var ErrUntrustedAlert = errors.New("xserver: alert source not the kernel channel")

// alertMessage renders the alert text the user sees.
func alertMessage(pid int, op Op, blocked, degraded bool) string {
	var what string
	switch op {
	case monitor.OpMic:
		what = "is recording from the microphone"
	case monitor.OpCam:
		what = "is using the camera"
	case monitor.OpScreen:
		what = "captured the screen"
	case monitor.OpCopy:
		what = "copied to the clipboard"
	case monitor.OpPaste:
		what = "read the clipboard"
	default:
		what = fmt.Sprintf("accessed a protected device (%s)", op)
	}
	if blocked {
		switch op {
		case monitor.OpMic:
			what = "was blocked from recording the microphone"
		case monitor.OpCam:
			what = "was blocked from using the camera"
		case monitor.OpScreen:
			what = "was blocked from capturing the screen"
		default:
			what = fmt.Sprintf("was blocked from a protected device (%s)", op)
		}
	}
	if degraded {
		what += " (OVERHAUL protection degraded)"
	}
	return fmt.Sprintf("Application [pid %d] %s", pid, what)
}

// ShowAlert renders a trusted alert for a granted sensitive access
// (V_{A,op}). It is invoked by the Overhaul core when the kernel's
// alert request arrives over the authenticated netlink channel; nothing
// reachable from a Client can call it.
func (s *Server) ShowAlert(req monitor.AlertRequest) Alert {
	// The alert render is the last span of the decision path: it nests
	// under the decide span whose context rode the kernel→user channel
	// inside the request.
	span := s.tel.StartSpan(req.Ctx, "xserver", "alert")
	defer span.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.showAlertLocked(req.PID, req.Op, req.Blocked, req.Degraded)
	if s.tel.Enabled() {
		span.Annotate("message", a.Message)
		if a.RenderFailed {
			span.Annotate("render_failed", "true")
		}
		s.tel.Add("xserver", "alerts", "op="+string(req.Op), 1)
	}
	return a
}

// showAlertLocked renders an alert with s.mu already held — used both by
// ShowAlert and by the capture path, where the display manager raises
// the alert itself because it can identify the requesting process
// without kernel assistance (§III-C).
func (s *Server) showAlertLocked(pid int, op Op, blocked, degraded bool) Alert {
	now := s.clk.Now()
	// Coalesce: an identical alert still on screen is extended rather
	// than re-rendered — the overlay shows one notification per
	// ongoing activity, not one per system call.
	if n := len(s.alerts); n > 0 {
		last := &s.alerts[n-1]
		if last.PID == pid && last.Op == op && last.Blocked == blocked &&
			last.Degraded == degraded && !last.RenderFailed && now.Before(last.Expires) {
			last.Expires = now.Add(s.cfg.AlertDuration)
			return *last
		}
	}
	return s.renderAlertLocked(Alert{
		Message:  alertMessage(pid, op, blocked, degraded),
		Secret:   s.cfg.AlertSecret,
		PID:      pid,
		Op:       op,
		Blocked:  blocked,
		Degraded: degraded,
		ShownAt:  now,
		Expires:  now.Add(s.cfg.AlertDuration),
	})
}

// renderAlertLocked runs the overlay render step (the fault point of
// the alert engine) and appends the alert to the history either way:
// a render failure keeps its record — with RenderFailed set and kept
// off the live overlay — so the failure is observable rather than
// silent. Requires s.mu held.
func (s *Server) renderAlertLocked(a Alert) Alert {
	if f := faultinject.Eval(s.cfg.FaultHook, faultinject.PointAlertRender); f.Kind == faultinject.KindError {
		a.RenderFailed = true
		s.stats.AlertRenderFailures++
		if s.tel.Enabled() {
			s.tel.Add("xserver", "alert_render_failures", "", 1)
			s.tel.RecordEvent(telemetry.SpanContext{}, "xserver", "fault",
				"injected fault at "+string(faultinject.PointAlertRender)+": alert not drawn: "+a.Message)
		}
	} else {
		s.stats.AlertsShown++
	}
	if len(s.alerts) >= maxAlertHistory {
		s.alerts = s.alerts[1:]
	}
	s.alerts = append(s.alerts, a)
	return a
}

// maxAlertHistory bounds the retained alert records; the on-screen
// overlay only ever shows the last few seconds anyway.
const maxAlertHistory = 4096

// ActiveAlerts returns the alerts currently on screen. The overlay sits
// above the entire stacking order: no window id exists for it, so no
// client request can address — let alone obscure — it.
func (s *Server) ActiveAlerts() []Alert {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, 0, len(s.alerts))
	for _, a := range s.alerts {
		if now.Before(a.Expires) && !a.RenderFailed {
			out = append(out, a)
		}
	}
	return out
}

// AlertHistory returns every alert ever shown.
func (s *Server) AlertHistory() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, len(s.alerts))
	copy(out, s.alerts)
	return out
}

// AuthenticAlert reports whether a rendered notification carries the
// user's visual shared secret — how a user (or a test) tells a real
// Overhaul alert from a client window mimicking one.
func (s *Server) AuthenticAlert(a Alert) bool {
	return s.cfg.AlertSecret != "" && a.Secret == s.cfg.AlertSecret
}
