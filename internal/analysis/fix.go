package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FixResult summarizes one ApplyFixes invocation.
type FixResult struct {
	// Files are the root-relative paths rewritten (or, in dry-run,
	// that would be), sorted.
	Files []string
	// Applied counts the fixes taken.
	Applied int
	// Skipped counts fixes dropped because their edits overlapped
	// with an already-accepted fix.
	Skipped int
	// Diff is the unified diff of the rewrite; only populated in
	// dry-run mode.
	Diff string
}

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one. Edits are grouped per file, sorted, and checked for
// overlap — a fix whose edits collide with an already-accepted fix is
// skipped whole, so the rewrite is always a consistent composition of
// complete fixes. In dry-run mode nothing is written and the unified
// diff is returned; otherwise each file is rewritten atomically
// (temp + rename in the same directory).
func ApplyFixes(root string, diags []Diagnostic, dryRun bool) (*FixResult, error) {
	type fileEdits struct {
		edits []TextEdit
	}
	perFile := make(map[string]*fileEdits)
	res := &FixResult{}

	// Accept fixes in diagnostic order; diags arrive sorted by
	// position, so earlier findings win collisions deterministically.
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		if len(fix.Edits) == 0 {
			continue
		}
		collides := false
		for _, e := range fix.Edits {
			fe := perFile[e.File]
			if fe == nil {
				continue
			}
			for _, have := range fe.edits {
				if overlaps(have, e) {
					collides = true
					break
				}
			}
			if collides {
				break
			}
		}
		if collides {
			res.Skipped++
			continue
		}
		for _, e := range fix.Edits {
			fe := perFile[e.File]
			if fe == nil {
				fe = &fileEdits{}
				perFile[e.File] = fe
			}
			fe.edits = append(fe.edits, e)
		}
		res.Applied++
	}

	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var diff strings.Builder
	for _, rel := range files {
		abs := filepath.Join(root, filepath.FromSlash(rel))
		src, err := os.ReadFile(abs)
		if err != nil {
			return nil, fmt.Errorf("apply fixes: %w", err)
		}
		out, err := applyEdits(src, perFile[rel].edits)
		if err != nil {
			return nil, fmt.Errorf("apply fixes: %s: %w", rel, err)
		}
		res.Files = append(res.Files, rel)
		if dryRun {
			diff.WriteString(unifiedDiff(rel, string(src), string(out)))
			continue
		}
		if err := atomicWrite(abs, out); err != nil {
			return nil, fmt.Errorf("apply fixes: %w", err)
		}
	}
	res.Diff = diff.String()
	return res, nil
}

// overlaps reports whether two edits touch intersecting ranges. Two
// pure insertions at the same offset count as overlapping — their
// order would be ambiguous.
func overlaps(a, b TextEdit) bool {
	if a.File != b.File {
		return false
	}
	if a.Start == b.Start {
		return true
	}
	if a.Start < b.Start {
		return a.End > b.Start
	}
	return b.End > a.Start
}

// applyEdits rewrites src, validating offsets.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of range (file is %d bytes)", e.Start, e.End, len(src))
		}
		if i > 0 && sorted[i-1].End > e.Start {
			return nil, fmt.Errorf("overlapping edits at %d", e.Start)
		}
	}
	// Apply back to front so earlier offsets stay valid.
	out := append([]byte(nil), src...)
	for i := len(sorted) - 1; i >= 0; i-- {
		e := sorted[i]
		out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out, nil
}

// atomicWrite replaces path's contents via a temp file and rename,
// preserving the original mode.
func atomicWrite(path string, data []byte) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".overhaul-fix-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName) //overhaul:allow errdrop best-effort cleanup of a temp file after a failed write
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Chmod(tmpName, info.Mode()); err != nil {
		os.Remove(tmpName) //overhaul:allow errdrop best-effort cleanup of a temp file after a failed chmod
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //overhaul:allow errdrop best-effort cleanup of a temp file after a failed rename
		return err
	}
	return nil
}

// unifiedDiff renders a minimal unified diff between two versions of
// one file: full-context hunks around each changed line run, enough
// for a human to review a dry-run.
func unifiedDiff(name, before, after string) string {
	if before == after {
		return ""
	}
	a := strings.SplitAfter(before, "\n")
	b := strings.SplitAfter(after, "\n")
	// Trim common prefix and suffix; the edits are local, so one hunk
	// with the differing middle is a faithful rendering.
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	s := 0
	for s < len(a)-p && s < len(b)-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", name, name)
	fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", p+1, len(a)-s-p, p+1, len(b)-s-p)
	for _, line := range a[p : len(a)-s] {
		sb.WriteString("-" + strings.TrimSuffix(line, "\n") + "\n")
	}
	for _, line := range b[p : len(b)-s] {
		sb.WriteString("+" + strings.TrimSuffix(line, "\n") + "\n")
	}
	return sb.String()
}
