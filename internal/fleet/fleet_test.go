package fleet

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/monitor"
	"overhaul/internal/workload"
)

// base is the test time origin: simulated clocks in this tree start at
// the 2016 epoch, and the fleet only ever sees instants, so any fixed
// post-2016 base works.
var base = time.Date(2016, time.March, 1, 9, 0, 0, 0, time.UTC)

func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	if cfg.Policy == (monitor.Policy{}) {
		cfg.Policy = monitor.Policy{Enforce: true}
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// spawnStamped creates a session with one process stamped at base.
func spawnStamped(t *testing.T, f *Fleet) (*Session, int) {
	t.Helper()
	s := f.CreateSession()
	pid, err := s.Spawn()
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := s.Notify(pid, base); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	return s, pid
}

func TestSessionDecideTemporalProximity(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)

	v, err := s.Decide(pid, monitor.OpMic, base.Add(time.Second))
	if err != nil || v != monitor.VerdictGrant {
		t.Errorf("within δ: verdict %v err %v, want grant", v, err)
	}
	v, err = s.Decide(pid, monitor.OpMic, base.Add(3*time.Second))
	if err != nil || v != monitor.VerdictDeny {
		t.Errorf("stale: verdict %v err %v, want deny", v, err)
	}
	audit := s.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit has %d records, want 2", len(audit))
	}
	if audit[0].Reason != monitor.ReasonWithinDelta {
		t.Errorf("grant reason %q, want %q", audit[0].Reason, monitor.ReasonWithinDelta)
	}
}

func TestSessionForkInheritsStamp(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)
	child, err := s.Fork(pid)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if v, _ := s.Decide(child, monitor.OpCam, base.Add(time.Second)); v != monitor.VerdictGrant {
		t.Errorf("child denied despite inherited stamp (P1)")
	}
	orphan, err := s.Spawn()
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if v, _ := s.Decide(orphan, monitor.OpCam, base.Add(time.Second)); v != monitor.VerdictDeny {
		t.Errorf("fresh process granted without interaction")
	}
}

func TestSessionExitAndMissingProcess(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)
	if err := s.Exit(pid); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	if err := s.Exit(pid); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("double exit error = %v, want ErrNoSuchProcess", err)
	}
	v, err := s.Decide(pid, monitor.OpMic, base.Add(time.Second))
	if err != nil || v != monitor.VerdictDeny {
		t.Errorf("decide on exited pid: verdict %v err %v, want deny", v, err)
	}
	if a := s.Audit(); a[len(a)-1].Reason != monitor.ReasonNoSuchProcess {
		t.Errorf("reason %q, want %q", a[len(a)-1].Reason, monitor.ReasonNoSuchProcess)
	}
	if err := s.Notify(pid, base); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("notify exited pid error = %v, want ErrNoSuchProcess", err)
	}
}

func TestSessionDegradedFailClosed(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)
	s.SetDegraded("netlink channel lost")
	v, err := s.Decide(pid, monitor.OpMic, base.Add(time.Second))
	if err != nil || v != monitor.VerdictDeny {
		t.Fatalf("degraded decide: verdict %v err %v, want deny", v, err)
	}
	a := s.Audit()
	last := a[len(a)-1]
	if !last.Degraded || last.Reason != "protection degraded: netlink channel lost" {
		t.Errorf("degraded record %+v", last)
	}
	s.ClearDegraded()
	if v, _ := s.Decide(pid, monitor.OpMic, base.Add(time.Second)); v != monitor.VerdictGrant {
		t.Errorf("still denying after ClearDegraded")
	}
}

func TestSessionDegradationIsPartitioned(t *testing.T) {
	f := newTestFleet(t, Config{})
	sick, sickPid := spawnStamped(t, f)
	healthy, healthyPid := spawnStamped(t, f)
	sick.SetDegraded("tenant channel down")
	if v, _ := sick.Decide(sickPid, monitor.OpMic, base.Add(time.Second)); v != monitor.VerdictDeny {
		t.Errorf("sick session granted while degraded")
	}
	if v, _ := healthy.Decide(healthyPid, monitor.OpMic, base.Add(time.Second)); v != monitor.VerdictGrant {
		t.Errorf("healthy session denied by another tenant's degradation")
	}
}

func TestFleetDispatchRouting(t *testing.T) {
	f := newTestFleet(t, Config{})
	s1, pid1 := spawnStamped(t, f)
	s2, pid2 := spawnStamped(t, f)

	// Stamp only session 1's pid freshly; session 2 decides stale.
	if _, err := f.Dispatch(Request{SessionID: s1.ID(), Kind: RequestNotify, PID: pid1, Time: base.Add(5 * time.Second).UnixNano()}); err != nil {
		t.Fatalf("Dispatch notify: %v", err)
	}
	v, err := f.Dispatch(Request{SessionID: s1.ID(), Kind: RequestDecide, PID: pid1, Op: monitor.OpMic, Time: base.Add(6 * time.Second).UnixNano()})
	if err != nil || v != monitor.VerdictGrant {
		t.Errorf("session 1 decide: verdict %v err %v, want grant", v, err)
	}
	v, err = f.Dispatch(Request{SessionID: s2.ID(), Kind: RequestDecide, PID: pid2, Op: monitor.OpMic, Time: base.Add(6 * time.Second).UnixNano()})
	if err != nil || v != monitor.VerdictDeny {
		t.Errorf("session 2 decide: verdict %v err %v, want deny (stale)", v, err)
	}
	if _, err := f.Dispatch(Request{SessionID: 999999, Kind: RequestDecide, PID: 1, Op: monitor.OpMic, Time: base.UnixNano()}); !errors.Is(err, ErrNoSuchSession) {
		t.Errorf("unknown session error = %v, want ErrNoSuchSession", err)
	}
}

func TestCloseSession(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)
	if got := f.Size(); got != 1 {
		t.Fatalf("Size = %d, want 1", got)
	}
	if err := f.CloseSession(s.ID()); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if got := f.Size(); got != 0 {
		t.Errorf("Size after close = %d, want 0", got)
	}
	if err := f.CloseSession(s.ID()); !errors.Is(err, ErrNoSuchSession) {
		t.Errorf("double close error = %v, want ErrNoSuchSession", err)
	}
	if _, err := s.Decide(pid, monitor.OpMic, base); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("decide on closed session error = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Spawn(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("spawn on closed session error = %v, want ErrSessionClosed", err)
	}
}

func TestUpdateTablesCopyOnWrite(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)
	before := f.Tables()
	if before.Generation() != 1 {
		t.Fatalf("initial generation %d, want 1", before.Generation())
	}

	// Publish an observe-only policy; the old snapshot must be intact.
	f.UpdateTables(func(d *TablesDraft) { d.Policy.Enforce = false })
	after := f.Tables()
	if after.Generation() != 2 {
		t.Errorf("generation %d after update, want 2", after.Generation())
	}
	if !before.Policy().Enforce || after.Policy().Enforce {
		t.Errorf("snapshots corrupted: before %+v after %+v", before.Policy(), after.Policy())
	}
	// A stale decision (no fresh stamp) now grants with the
	// observe-only reason — the session picked up the new snapshot.
	v, err := s.Decide(pid, monitor.OpMic, base.Add(time.Hour))
	if err != nil || v != monitor.VerdictGrant {
		t.Fatalf("observe-only decide: verdict %v err %v", v, err)
	}
	a := s.Audit()
	if got := a[len(a)-1].Reason; got != monitor.ReasonObserveOnly {
		t.Errorf("reason %q, want %q", got, monitor.ReasonObserveOnly)
	}
}

func TestStandaloneTablesAreIsolated(t *testing.T) {
	f := newTestFleet(t, Config{})
	iso := f.NewStandalone()
	pid, err := iso.Spawn()
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := iso.Notify(pid, base); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	// Mutating the shared fleet's tables must not leak into the clone.
	f.UpdateTables(func(d *TablesDraft) { d.Policy.Enforce = false })
	v, err := iso.Decide(pid, monitor.OpMic, base.Add(time.Hour))
	if err != nil || v != monitor.VerdictDeny {
		t.Errorf("standalone decide: verdict %v err %v, want deny (still enforcing)", v, err)
	}
}

func TestAuditRingDrops(t *testing.T) {
	f := newTestFleet(t, Config{AuditCapacity: 4})
	s, pid := spawnStamped(t, f)
	for i := 0; i < 10; i++ {
		if _, err := s.Decide(pid, monitor.OpMic, base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatalf("Decide: %v", err)
		}
	}
	a := s.Audit()
	if len(a) != 4 {
		t.Fatalf("audit has %d records, want cap 4", len(a))
	}
	if got := s.DroppedAudit(); got != 6 {
		t.Errorf("DroppedAudit = %d, want 6", got)
	}
	if a[0].OpTime != base.Add(6*time.Millisecond) {
		t.Errorf("oldest surviving record at %v, want the 7th decision", a[0].OpTime)
	}
}

func TestFleetStatsAggregation(t *testing.T) {
	f := newTestFleet(t, Config{})
	for i := 0; i < 3; i++ {
		s, pid := spawnStamped(t, f)
		if _, err := s.Decide(pid, monitor.OpMic, base.Add(time.Second)); err != nil { // grant
			t.Fatalf("Decide: %v", err)
		}
		if _, err := s.Decide(pid, monitor.OpMic, base.Add(time.Hour)); err != nil { // deny
			t.Fatalf("Decide: %v", err)
		}
	}
	st := f.StatsSnapshot()
	if st.Sessions != 3 || st.Grants != 3 || st.Denials != 3 || st.Notifications != 3 || st.Spawns != 3 {
		t.Errorf("fleet stats %+v", st)
	}
}

func TestSharedAppCatalog(t *testing.T) {
	f := newTestFleet(t, Config{})
	spec, ok := f.Tables().App("skype")
	if !ok || !spec.AutostartProbe {
		t.Errorf("shared catalog missing skype autostart probe: %+v ok=%v", spec, ok)
	}
	f2 := newTestFleet(t, Config{Apps: []workload.AppSpec{{Name: "only", Category: workload.CatBrowser}}})
	if _, ok := f2.Tables().App("skype"); ok {
		t.Errorf("custom catalog leaked the default pool")
	}
}

// TestDecideSteadyStateZeroAlloc pins the fleet hot path: once the
// audit ring is warm, a Dispatch'd Decide allocates nothing — the
// property that lets one machine push millions of decisions without
// allocator pressure scaling with session count.
func TestDecideSteadyStateZeroAlloc(t *testing.T) {
	f := newTestFleet(t, Config{})
	s, pid := spawnStamped(t, f)
	req := Request{SessionID: s.ID(), Kind: RequestDecide, PID: pid, Op: monitor.OpMic, Time: base.Add(time.Second).UnixNano()}
	for i := 0; i < 2*DefaultAuditCapacity; i++ {
		if _, err := f.Dispatch(req); err != nil {
			t.Fatalf("Dispatch: %v", err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := f.Dispatch(req); err != nil {
			t.Fatalf("Dispatch: %v", err)
		}
	}); avg != 0 {
		t.Errorf("fleet Decide allocates %.2f times per op, want 0", avg)
	}
}
