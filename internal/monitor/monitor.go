// Package monitor implements Overhaul's kernel permission monitor.
//
// The permission monitor (paper §III-B, §IV-B) is the component that
// makes every access-control decision. It records *interaction
// notifications* — "process P received authentic hardware input at time
// T" — pushed by the display manager over the authenticated channel, and
// answers *permission queries* by correlating a privileged operation's
// timestamp with the target process's most recent interaction: the
// operation is granted iff it falls within a configurable temporal
// proximity threshold δ of the interaction (the paper empirically
// settles on δ = 2 s).
//
// Following the paper's implementation, interaction timestamps live in
// the process table itself (the task_struct analogue), so the monitor
// operates on a TaskStore interface implemented by the kernel; the
// monitor owns the decision logic, the audit log, and alert dispatch.
package monitor

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/telemetry"
)

// DefaultThreshold is δ, the temporal proximity window. The paper found
// <1 s causes false denials while 2 s never broke legitimate programs
// over a 21-day deployment.
const DefaultThreshold = 2 * time.Second

// Op names a privileged operation class, matching the paper's
// op ∈ {copy, paste, scr, mic, cam}.
type Op string

// Privileged operations mediated by Overhaul.
const (
	OpCopy   Op = "copy"
	OpPaste  Op = "paste"
	OpScreen Op = "scr"
	OpMic    Op = "mic"
	OpCam    Op = "cam"
	OpOther  Op = "dev" // any other sensitive device class
)

// Verdict is the outcome of a permission query.
type Verdict int

// Verdicts. Enums start at one so the zero value is invalid.
const (
	VerdictGrant Verdict = iota + 1
	VerdictDeny
)

// String returns "grant" or "deny".
func (v Verdict) String() string {
	switch v {
	case VerdictGrant:
		return "grant"
	case VerdictDeny:
		return "deny"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// TaskStore is the kernel-side process table view the monitor needs:
// where interaction stamps live and whether a process's permissions are
// administratively disabled (the ptrace guard).
type TaskStore interface {
	// InteractionStamp returns the most recent authentic-interaction
	// time for pid. ok is false if the process does not exist.
	InteractionStamp(pid int) (stamp time.Time, ok bool)
	// SetInteractionStamp records an interaction time for pid,
	// only if newer than the currently stored stamp.
	SetInteractionStamp(pid int, t time.Time) error
	// PermissionsDisabled reports whether pid's sensitive-resource
	// permissions are force-disabled (e.g. it is being ptraced).
	PermissionsDisabled(pid int) bool
}

// SpanTaskStore is an optional extension of TaskStore for stores that
// can remember which trace span minted each interaction stamp, so that
// a later permission query can be linked to the interaction that
// enables it. Stores that do not implement it still work; traces then
// break at the stamp boundary instead of connecting through it.
type SpanTaskStore interface {
	TaskStore
	// SetInteractionStampSpan records an interaction time for pid
	// together with the span that delivered it, only if newer than the
	// currently stored stamp (the span travels with the stamp,
	// newest-wins as one unit).
	SetInteractionStampSpan(pid int, t time.Time, ctx telemetry.SpanContext) error
	// InteractionSpan returns the span context stored alongside pid's
	// current interaction stamp. ok is false if the process does not
	// exist.
	InteractionSpan(pid int) (telemetry.SpanContext, bool)
}

// AlertRequest asks the display manager to show a trusted-output visual
// alert: "process PID performed Op" (V_{A,op} in the paper), or — for
// Blocked requests — that an undesired access attempt was stopped (the
// §V-B user-study scenario: a hidden camera access is blocked *and* the
// user is alerted). Degraded requests carry the distinct
// protection-degraded wording: the denial happened because the
// mediation path itself is broken, not because the stamp was stale.
type AlertRequest struct {
	PID      int
	Op       Op
	Time     time.Time
	Blocked  bool
	Degraded bool
	// Ctx is the decision span that raised the alert; the display
	// manager parents the render span on it so one trace covers input →
	// decision → alert. Zero when telemetry is disabled.
	Ctx telemetry.SpanContext
}

// AlertFunc delivers an AlertRequest to the display manager. It is
// called synchronously from Decide; implementations route it over the
// authenticated netlink channel.
type AlertFunc func(AlertRequest)

// Decision records one permission query and its outcome.
type Decision struct {
	PID     int
	Op      Op
	OpTime  time.Time
	Stamp   time.Time // interaction stamp consulted (zero if none)
	Verdict Verdict
	Reason  string
	// Degraded marks denials issued while the monitor was in degraded
	// (fail-closed) mode rather than by the temporal-proximity rule.
	Degraded bool
}

// ErrNoSuchProcess is returned by Notify for unknown PIDs.
var ErrNoSuchProcess = errors.New("no such process")

// Config parameterises the monitor.
type Config struct {
	// Threshold is δ. Zero means DefaultThreshold.
	Threshold time.Duration
	// ForceGrant short-circuits every decision to grant while still
	// exercising the full decision path. The paper enables this mode
	// for the Table I performance measurements so that benchmarks
	// measure the complete grant path without real user input.
	ForceGrant bool
	// Enforce controls whether deny verdicts are produced at all.
	// When false the monitor runs in observe-only mode: decisions and
	// audit records are produced but everything is granted. Used by
	// the unprotected baseline machine in the §V-D experiment.
	Enforce bool
	// AlertOps lists operations whose grants raise a visual alert
	// *from the kernel side* (V_{A,op} over the netlink channel).
	// That covers kernel-mediated hardware devices; for
	// display-manager-mediated resources the display manager raises
	// the alert itself (screen capture) or stays silent by design
	// (clipboard — usability, §V-C). Nil selects that default.
	AlertOps []Op
	// AuditCapacity bounds the in-memory audit log (oldest entries
	// are dropped). Zero means 1024.
	AuditCapacity int
	// Telemetry, when non-nil, receives metrics, decision spans, and
	// flight-recorder events. Nil disables instrumentation entirely
	// (zero allocations on the Decide hot path).
	Telemetry *telemetry.Recorder
}

// defaultAlertOps covers the kernel-mediated device operations. Screen
// capture alerts are raised by the display manager directly (it can
// identify the requesting process without kernel assistance, §III-C),
// and clipboard operations are silent but logged.
func defaultAlertOps() map[Op]bool {
	return map[Op]bool{OpMic: true, OpCam: true, OpOther: true}
}

// Monitor is the kernel permission monitor. It is safe for concurrent
// use.
type Monitor struct {
	clk       clock.Clock
	tasks     TaskStore
	threshold time.Duration
	force     bool
	enforce   bool
	alertOps  map[Op]bool
	auditCap  int
	tel       *telemetry.Recorder // nil-safe; nil means disabled

	mu        sync.Mutex
	alertFn   AlertFunc
	audit     []Decision // ring buffer, capacity auditCap
	auditHead int        // index of the oldest record
	auditLen  int
	dropped   uint64
	degraded  string // non-empty: fail-closed degraded mode, with reason
	stats     Stats
}

// Stats aggregates monitor activity.
type Stats struct {
	Notifications   uint64
	Queries         uint64
	Grants          uint64
	Denials         uint64
	AlertsSent      uint64
	DegradedDenials uint64
}

// New constructs a Monitor over the given task store.
func New(clk clock.Clock, tasks TaskStore, cfg Config) (*Monitor, error) {
	if clk == nil {
		return nil, errors.New("monitor: nil clock")
	}
	if tasks == nil {
		return nil, errors.New("monitor: nil task store")
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold < 0 {
		return nil, fmt.Errorf("monitor: negative threshold %v", threshold)
	}
	alertOps := defaultAlertOps()
	if cfg.AlertOps != nil {
		alertOps = make(map[Op]bool, len(cfg.AlertOps))
		for _, op := range cfg.AlertOps {
			alertOps[op] = true
		}
	}
	auditCap := cfg.AuditCapacity
	if auditCap == 0 {
		auditCap = 1024
	}
	return &Monitor{
		clk:       clk,
		tasks:     tasks,
		threshold: threshold,
		force:     cfg.ForceGrant,
		enforce:   cfg.Enforce,
		alertOps:  alertOps,
		auditCap:  auditCap,
		tel:       cfg.Telemetry,
	}, nil
}

// Telemetry returns the monitor's recorder (nil when disabled).
func (m *Monitor) Telemetry() *telemetry.Recorder { return m.tel }

// Threshold returns δ.
func (m *Monitor) Threshold() time.Duration { return m.threshold }

// SetAlertFunc installs the trusted-output alert sink. Passing nil
// disables alert dispatch.
func (m *Monitor) SetAlertFunc(fn AlertFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alertFn = fn
}

// Notify records an interaction notification N_{A,t}: authentic user
// input was delivered to pid at time t. Only the display manager may
// invoke this (enforced by channel authentication one layer up).
func (m *Monitor) Notify(pid int, t time.Time) error {
	return m.NotifyCtx(telemetry.SpanContext{}, pid, t)
}

// NotifyCtx is Notify carrying the trace context of the input event
// that caused the notification. The notify span is stored in the task
// struct alongside the stamp it mints (when the store supports it), so
// a later permission query within δ links back to this interaction.
func (m *Monitor) NotifyCtx(ctx telemetry.SpanContext, pid int, t time.Time) error {
	span := m.tel.StartSpan(ctx, "monitor", "notify")
	defer span.End()
	var err error
	if st, ok := m.tasks.(SpanTaskStore); ok {
		err = st.SetInteractionStampSpan(pid, t, span.Context())
	} else {
		err = m.tasks.SetInteractionStamp(pid, t)
	}
	if err != nil {
		if m.tel.Enabled() {
			span.Annotate("error", err.Error())
			m.tel.Add("monitor", "notify_errors", "", 1)
		}
		return fmt.Errorf("monitor notify pid %d: %w", pid, err)
	}
	m.mu.Lock()
	m.stats.Notifications++
	m.mu.Unlock()
	if m.tel.Enabled() {
		span.Annotate("pid", strconv.Itoa(pid))
		m.tel.Add("monitor", "notifications", "", 1)
	}
	return nil
}

// SetDegraded switches the monitor into fail-closed degraded mode:
// every subsequent decision denies with a distinct
// "protection degraded" reason until ClearDegraded. The core flips
// this when a trusted component the decision path depends on — in
// practice the netlink channel — is detected dead: a monitor that
// cannot reach its sensors' user must block the sensors.
func (m *Monitor) SetDegraded(reason string) {
	if reason == "" {
		reason = "trusted component failure"
	}
	m.mu.Lock()
	m.degraded = reason
	m.mu.Unlock()
	if m.tel.Enabled() {
		m.tel.Add("monitor", "degradations", "", 1)
		// A degradation is a flight-recorder trip: snapshot the ring so
		// the events leading up to the trusted-component failure are
		// preserved even if the ring keeps rolling afterwards.
		m.tel.TripFlight(telemetry.SpanContext{}, "monitor", "protection degraded: "+reason)
	}
}

// ClearDegraded returns the monitor to normal operation (the channel
// was re-established).
func (m *Monitor) ClearDegraded() {
	m.mu.Lock()
	m.degraded = ""
	m.mu.Unlock()
	m.tel.RecordEvent(telemetry.SpanContext{}, "monitor", "recovery", "degraded mode cleared")
}

// DegradedReason returns the degradation reason and whether the
// monitor is currently degraded.
func (m *Monitor) DegradedReason() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded, m.degraded != ""
}

// appendAuditLocked appends one decision to the audit ring. Requires
// m.mu held.
func (m *Monitor) appendAuditLocked(d Decision) {
	// Every audit append is mirrored to a telemetry counter so the
	// audit log and overhaul-top can never silently disagree.
	m.tel.Add("monitor", "audit_appends", "", 1)
	if m.audit == nil {
		// Grown lazily but allocated once: the ring must not churn
		// the allocator on the hot decision path.
		m.audit = make([]Decision, m.auditCap)
	}
	if m.auditLen == m.auditCap {
		m.audit[m.auditHead] = d
		m.auditHead = (m.auditHead + 1) % m.auditCap
		m.dropped++
	} else {
		m.audit[(m.auditHead+m.auditLen)%m.auditCap] = d
		m.auditLen++
	}
}

// Decide answers a permission query Q_{A,t}: may pid perform op at
// opTime? It consults the process's interaction stamp, applies the
// temporal-proximity rule, appends an audit record, and — for granted
// operations in the alert set — dispatches a visual alert request.
// While the monitor is degraded, every query denies (fail closed) with
// the distinct protection-degraded reason.
func (m *Monitor) Decide(pid int, op Op, opTime time.Time) Verdict {
	return m.DecideCtx(telemetry.SpanContext{}, pid, op, opTime)
}

// DecideCtx is Decide carrying the trace context of the event that
// triggered the query (typically the kernel open span, itself parented
// on the interaction that minted the process's stamp). With telemetry
// disabled it is exactly the Decide hot path: zero extra allocations,
// verified by BenchmarkDecideTelemetryDisabled.
func (m *Monitor) DecideCtx(ctx telemetry.SpanContext, pid int, op Op, opTime time.Time) Verdict {
	if m.tel.Enabled() && !ctx.Valid() {
		// No explicit parent: join the trace of the interaction that
		// minted the process's current stamp, if the store tracks it.
		// This is what connects a bare Decide to its enabling input.
		if st, ok := m.tasks.(SpanTaskStore); ok {
			if sc, found := st.InteractionSpan(pid); found {
				ctx = sc
			}
		}
	}
	span := m.tel.StartSpan(ctx, "monitor", "decide")
	defer span.End()
	stamp, exists := m.tasks.InteractionStamp(pid)

	m.mu.Lock()
	degraded := m.degraded
	m.mu.Unlock()

	verdict := VerdictDeny
	reason := ""
	switch {
	case m.force:
		verdict, reason = VerdictGrant, "force-grant (benchmark mode)"
	case !m.enforce:
		verdict, reason = VerdictGrant, "observe-only mode"
	case degraded != "":
		// Fail closed: a decision path whose trusted substrate is
		// broken must deny, whatever the stamps say.
		reason = "protection degraded: " + degraded
	case !exists:
		reason = "no such process"
	case m.tasks.PermissionsDisabled(pid):
		reason = "permissions disabled (ptrace guard)"
	case stamp.IsZero():
		reason = "no recorded user interaction"
	case opTime.Before(stamp):
		// An operation "before" the interaction can only happen
		// through clock misuse; treat as immediate proximity.
		verdict, reason = VerdictGrant, "interaction at or after operation"
	case opTime.Sub(stamp) < m.threshold:
		verdict, reason = VerdictGrant, "within temporal proximity threshold"
	default:
		reason = fmt.Sprintf("interaction stale by %v (δ=%v)", opTime.Sub(stamp)-m.threshold, m.threshold)
	}

	isDegraded := degraded != "" && !m.force && m.enforce
	d := Decision{PID: pid, Op: op, OpTime: opTime, Stamp: stamp, Verdict: verdict, Reason: reason, Degraded: isDegraded}

	m.mu.Lock()
	m.stats.Queries++
	if verdict == VerdictGrant {
		m.stats.Grants++
	} else {
		m.stats.Denials++
		if isDegraded {
			m.stats.DegradedDenials++
		}
	}
	m.appendAuditLocked(d)
	alertFn := m.alertFn
	sendAlert := m.alertOps[op] && alertFn != nil
	if sendAlert {
		m.stats.AlertsSent++
	}
	m.mu.Unlock()

	if m.tel.Enabled() {
		span.Annotate("pid", strconv.Itoa(pid))
		span.Annotate("op", string(op))
		span.Annotate("verdict", verdict.String())
		span.Annotate("reason", reason)
		m.tel.Add("monitor", "decisions", "op="+string(op)+" verdict="+verdict.String(), 1)
		if !stamp.IsZero() {
			// Distribution of stamp ages at decision time: the paper's δ
			// sweep (§V-A) in histogram form.
			m.tel.Observe("monitor", "stamp_age", "op="+string(op), opTime.Sub(stamp))
		}
		detail := "pid=" + strconv.Itoa(pid) + " op=" + string(op) + " " + verdict.String() + ": " + reason
		m.tel.RecordEvent(span.Context(), "monitor", "decision", detail)
		if verdict == VerdictDeny {
			// Every denial trips the flight recorder: the dump's final
			// events carry the deny reason plus whatever preceded it
			// (injected faults, channel loss, stale stamps).
			m.tel.TripFlight(span.Context(), "monitor",
				"deny pid="+strconv.Itoa(pid)+" op="+string(op)+": "+reason)
		}
	}

	if sendAlert {
		alertFn(AlertRequest{PID: pid, Op: op, Time: opTime, Blocked: verdict == VerdictDeny, Degraded: isDegraded, Ctx: span.Context()})
	}
	return verdict
}

// RecordDenial appends an audit record for a denial decided *outside*
// the monitor — e.g. a sensitive-device open aborted by a transient
// kernel error. The fail-closed policy turns such failures into
// denials, and this method keeps them from being silent: every denial
// along the decision path leaves an audit record.
func (m *Monitor) RecordDenial(pid int, op Op, opTime time.Time, reason string) {
	m.RecordDenialCtx(telemetry.SpanContext{}, pid, op, opTime, reason)
}

// RecordDenialCtx is RecordDenial carrying the trace context of the
// failed operation.
func (m *Monitor) RecordDenialCtx(ctx telemetry.SpanContext, pid int, op Op, opTime time.Time, reason string) {
	stamp, _ := m.tasks.InteractionStamp(pid)
	d := Decision{PID: pid, Op: op, OpTime: opTime, Stamp: stamp, Verdict: VerdictDeny, Reason: reason}
	m.mu.Lock()
	m.stats.Queries++
	m.stats.Denials++
	m.appendAuditLocked(d)
	m.mu.Unlock()
	if m.tel.Enabled() {
		m.tel.Add("monitor", "decisions", "op="+string(op)+" verdict=deny", 1)
		m.tel.Add("monitor", "denials_recorded", "", 1)
		m.tel.TripFlight(ctx, "monitor",
			"deny pid="+strconv.Itoa(pid)+" op="+string(op)+": "+reason)
	}
}

// Audit returns a copy of the audit log, oldest first.
func (m *Monitor) Audit() []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Decision, m.auditLen)
	for i := 0; i < m.auditLen; i++ {
		out[i] = m.audit[(m.auditHead+i)%m.auditCap]
	}
	return out
}

// AuditFor returns the audit records for one PID, oldest first.
func (m *Monitor) AuditFor(pid int) []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Decision
	for i := 0; i < m.auditLen; i++ {
		d := m.audit[(m.auditHead+i)%m.auditCap]
		if d.PID == pid {
			out = append(out, d)
		}
	}
	return out
}

// DroppedAudit reports how many audit records were evicted by the ring.
func (m *Monitor) DroppedAudit() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// StatsSnapshot returns a copy of the activity counters.
func (m *Monitor) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetAudit clears the audit log (used between experiment phases).
func (m *Monitor) ResetAudit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.auditHead = 0
	m.auditLen = 0
	m.dropped = 0
}
