// Package telemetry is the observability subsystem for the Overhaul
// enforcement stack: metrics, decision-path tracing, and a flight
// recorder.
//
// The paper's evaluation (§V) rests on reading Overhaul's logs to see
// which applications were granted access; a production deployment of
// the same architecture additionally needs rates, latencies, and — for
// any single decision — the causal chain that produced it (input →
// notification → syscall → decision → alert). This package provides the
// three instruments the enforcement seams thread through:
//
//   - a metrics registry: counters, gauges, and fixed-bucket latency
//     histograms keyed by (subsystem, name, labels), timestamped on the
//     injected clock so snapshots are deterministic under the
//     simulated clock;
//   - a decision-path tracer: spans with parent/child links whose IDs
//     are sequential (never random), propagated across the kernel↔X
//     netlink channel and the IPC stamp-carrying paths the same way
//     interaction timestamps already propagate;
//   - a flight recorder: a bounded ring of recent events that is
//     snapshot-dumped whenever a denial, a degradation, or a
//     chaos-invariant violation fires, so every fail-closed event is
//     explainable after the fact.
//
// A nil *Recorder is the disabled state: every method is a no-op and
// the instrumented hot paths (monitor.Decide in particular) add zero
// allocations, verified by BenchmarkDecideTelemetryDisabled.
//
// The recorder is built for multicore hot paths: the registry, the
// tracer, and the flight recorder each sit behind their own lock, and
// metric updates through pre-resolved handles (Counter/Histogram) are
// plain atomic operations that take no lock at all.
package telemetry

import (
	"sync/atomic"
	"time"

	"overhaul/internal/clock"
)

// Defaults for the bounded stores. They are deliberately generous for
// interactive use and small enough that a runaway campaign cannot
// exhaust memory. The span ring is additionally sized so that the
// recycled-span working set (capacity × span size, ~0.25 MB) stays
// cache-resident: the ring is a diagnostic window onto recent
// decisions, not an archive, and measurements show a ring that
// outgrows the cache taxes every StartSpan with memory stalls.
const (
	DefaultSpanCapacity   = 512
	DefaultFlightCapacity = 256
	DefaultDumpCapacity   = 8
)

// Options bounds the recorder's stores. Zero fields select the
// defaults.
type Options struct {
	// SpanCapacity bounds retained spans (oldest evicted).
	SpanCapacity int
	// FlightCapacity bounds the flight-recorder ring.
	FlightCapacity int
	// DumpCapacity bounds retained flight dumps (oldest evicted).
	DumpCapacity int
}

// Recorder is the telemetry sink shared by every instrumented
// subsystem. It is safe for concurrent use; all methods are no-ops on a
// nil receiver, which is how telemetry is disabled.
//
// Each instrument guards its own state, so a decision span never
// contends with an unrelated metric update.
type Recorder struct {
	clk clock.Clock

	spanCap   int
	flightCap int
	dumpCap   int

	metrics metricsStore
	tracer  tracerStore
	flight  flightStore

	// tick caches the most recent clock reading (unix nanos), refreshed
	// at span boundaries. Metric freshness stamps read it instead of
	// the clock: a counter bumped inside an operation is "updated" at
	// that operation's instant, and skipping the per-Add clock
	// conversion keeps handle updates to two atomic stores.
	tick atomic.Int64
}

// New constructs an enabled recorder on the given clock with default
// capacities.
func New(clk clock.Clock) *Recorder {
	return NewWithOptions(clk, Options{})
}

// NewWithOptions constructs an enabled recorder with explicit bounds.
// A nil clock selects a fresh simulated clock (deterministic output).
func NewWithOptions(clk clock.Clock, opts Options) *Recorder {
	if clk == nil {
		clk = clock.NewSimulated()
	}
	if opts.SpanCapacity <= 0 {
		opts.SpanCapacity = DefaultSpanCapacity
	}
	if opts.FlightCapacity <= 0 {
		opts.FlightCapacity = DefaultFlightCapacity
	}
	if opts.DumpCapacity <= 0 {
		opts.DumpCapacity = DefaultDumpCapacity
	}
	r := &Recorder{
		clk:       clk,
		spanCap:   opts.SpanCapacity,
		flightCap: opts.FlightCapacity,
		dumpCap:   opts.DumpCapacity,
	}
	r.metrics.init()
	return r
}

// Enabled reports whether the recorder records anything. Instrumented
// code may use it to skip label construction on hot paths; every method
// is nil-safe regardless.
func (r *Recorder) Enabled() bool { return r != nil }

// now returns the recorder's current instant. Callers must hold no
// assumption about monotonicity beyond what the injected clock gives.
func (r *Recorder) now() time.Time { return r.clk.Now() }

// nowNanos is the instant as unix nanos, the representation the atomic
// handle paths store. The clocks in this tree never report the zero
// instant (the simulated epoch is 2016), so 0 doubles as "never".
func (r *Recorder) nowNanos() int64 {
	n := r.clk.Now().UnixNano()
	r.tick.Store(n)
	return n
}

// coarseNanos returns a recently observed clock reading for freshness
// stamps: exact when no span is in flight (first use reads the clock),
// otherwise as fresh as the latest span boundary. Precise instants
// belong to spans and flight events; metric Updated stamps only feed
// staleness displays.
func (r *Recorder) coarseNanos() int64 {
	if n := r.tick.Load(); n != 0 {
		return n
	}
	return r.nowNanos()
}
