package multiview

import (
	"encoding/json"
	"fmt"
	"html/template"
	"strings"
)

// Measurement is one benchmark's cost in one mode, in the same shape
// cmd/overhaul-benchjson records (ns_per_op, allocs_per_op).
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// merge folds another repetition in, keeping the minimum of each
// metric (libMicro convention: the minimum is the least-disturbed
// run). A zero NsPerOp marks the slot as not yet measured.
func (s *Measurement) merge(m Measurement) {
	if s.NsPerOp == 0 {
		*s = m
		return
	}
	if m.NsPerOp < s.NsPerOp {
		s.NsPerOp = m.NsPerOp
	}
	if m.AllocsPerOp < s.AllocsPerOp {
		s.AllocsPerOp = m.AllocsPerOp
	}
}

// Row is one benchmark's three-mode comparison.
type Row struct {
	Name  string      `json:"name"`
	Off   Measurement `json:"off"`
	Idle  Measurement `json:"idle"`
	Match Measurement `json:"match"`
}

// mode returns the slot for the given mode.
func (r *Row) mode(m Mode) *Measurement {
	switch m {
	case ModeIdle:
		return &r.Idle
	case ModeMatch:
		return &r.Match
	}
	return &r.Off
}

// IdleDeltaNs is the absolute off→idle cost per op: what arming
// never-matching probes on every hook adds.
func (r Row) IdleDeltaNs() float64 { return r.Idle.NsPerOp - r.Off.NsPerOp }

// IdlePct is the off→idle overhead in percent. This is the gated
// number.
func (r Row) IdlePct() float64 {
	if r.Off.NsPerOp == 0 {
		return 0
	}
	return 100 * r.IdleDeltaNs() / r.Off.NsPerOp
}

// MatchPct is the off→match overhead in percent: predicate + ring
// publish + batched drain + full telemetry. Reported, not gated.
func (r Row) MatchPct() float64 {
	if r.Off.NsPerOp == 0 {
		return 0
	}
	return 100 * (r.Match.NsPerOp - r.Off.NsPerOp) / r.Off.NsPerOp
}

// OverBudget reports whether this row fails the off→idle gate: the
// relative overhead exceeds budgetPct AND the absolute delta exceeds
// floorNs. The floor keeps sub-noise absolute regressions on very
// short benchmarks from tripping a purely relative budget.
func (r Row) OverBudget(budgetPct, floorNs float64) bool {
	return r.IdlePct() > budgetPct && r.IdleDeltaNs() > floorNs
}

// Report is the full multiview matrix: per-mode minima over K
// repetitions of Ops operations each.
type Report struct {
	K    int   `json:"k"`
	Ops  int   `json:"ops"`
	Rows []Row `json:"rows"`
}

// Gate returns one failure line per benchmark whose off→idle overhead
// exceeds both the percentage budget and the absolute floor; an empty
// slice means the report passes.
func (rep *Report) Gate(budgetPct, floorNs float64) []string {
	var fails []string
	for _, r := range rep.Rows {
		if r.OverBudget(budgetPct, floorNs) {
			fails = append(fails, fmt.Sprintf(
				"%s: off→idle +%.1f%% (+%.1f ns/op) exceeds %.0f%% budget",
				r.Name, r.IdlePct(), r.IdleDeltaNs(), budgetPct))
		}
	}
	return fails
}

// BenchJSON renders the report as the map[name]Entry document
// cmd/overhaul-benchjson reads and validates: one entry per
// (benchmark, mode), keyed BenchmarkMultiview<Name>/mode=<mode>.
func (rep *Report) BenchJSON() ([]byte, error) {
	entries := make(map[string]Measurement, 3*len(rep.Rows))
	for _, r := range rep.Rows {
		entries["BenchmarkMultiview"+r.Name+"/mode=off"] = r.Off
		entries["BenchmarkMultiview"+r.Name+"/mode=idle"] = r.Idle
		entries["BenchmarkMultiview"+r.Name+"/mode=match"] = r.Match
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Text renders the fixed-width comparison table printed to stdout.
func (rep *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multiview: %d benchmarks × 3 modes, min of %d × %d ops\n",
		len(rep.Rows), rep.K, rep.Ops)
	fmt.Fprintf(&b, "%-14s %12s %12s %9s %12s %9s %12s\n",
		"benchmark", "off ns/op", "idle ns/op", "idle", "match ns/op", "match", "allocs o/i/m")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-14s %12.1f %12.1f %+8.1f%% %12.1f %+8.1f%% %6d/%d/%d\n",
			r.Name, r.Off.NsPerOp, r.Idle.NsPerOp, r.IdlePct(),
			r.Match.NsPerOp, r.MatchPct(),
			r.Off.AllocsPerOp, r.Idle.AllocsPerOp, r.Match.AllocsPerOp)
	}
	return b.String()
}

// htmlRow is one template row with the gate verdict precomputed.
type htmlRow struct {
	Row
	Fail bool
}

type htmlData struct {
	K, Ops    int
	BudgetPct float64
	FloorNs   float64
	Rows      []htmlRow
	Failures  []string
}

var htmlTmpl = template.Must(template.New("multiview").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Overhaul probe multiview report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #1a1a1a; }
table { border-collapse: collapse; margin-top: 1rem; }
th, td { padding: 0.35rem 0.9rem; border-bottom: 1px solid #ddd; text-align: right; }
th { border-bottom: 2px solid #888; }
td:first-child, th:first-child { text-align: left; font-family: ui-monospace, monospace; }
tr.fail td { background: #fde8e8; }
tr.pass td.gated { background: #e8f5e9; }
.note { color: #555; max-width: 48rem; }
.fails { color: #b00020; }
</style>
</head>
<body>
<h1>Probe multiview overhead report</h1>
<p class="note">Each benchmark ran in three modes — <b>off</b> (no probe
registry), <b>idle</b> (never-matching probe armed on every attach
point), <b>match</b> (match-all probe, drained perf ring, full
telemetry) — {{.K}}× at {{.Ops}} ops each; minima reported. The gated
column is off→idle: budget {{printf "%.0f" .BudgetPct}}%, absolute
floor {{printf "%.0f" .FloorNs}} ns/op. Match mode is reported, not
gated.</p>
<table>
<tr><th>benchmark</th><th>off ns/op</th><th>idle ns/op</th><th>off→idle</th>
<th>match ns/op</th><th>off→match</th><th>allocs off/idle/match</th></tr>
{{range .Rows}}<tr class="{{if .Fail}}fail{{else}}pass{{end}}">
<td>{{.Name}}</td>
<td>{{printf "%.1f" .Off.NsPerOp}}</td>
<td>{{printf "%.1f" .Idle.NsPerOp}}</td>
<td class="gated">{{printf "%+.1f" .IdlePct}}%</td>
<td>{{printf "%.1f" .Match.NsPerOp}}</td>
<td>{{printf "%+.1f" .MatchPct}}%</td>
<td>{{.Off.AllocsPerOp}}/{{.Idle.AllocsPerOp}}/{{.Match.AllocsPerOp}}</td>
</tr>
{{end}}</table>
{{if .Failures}}<h2 class="fails">Gate failures</h2><ul class="fails">
{{range .Failures}}<li>{{.}}</li>{{end}}</ul>
{{else}}<p>All benchmarks within budget.</p>{{end}}
</body>
</html>
`))

// HTML renders the standalone comparison page, coloring rows by the
// off→idle gate verdict.
func (rep *Report) HTML(budgetPct, floorNs float64) ([]byte, error) {
	data := htmlData{
		K: rep.K, Ops: rep.Ops,
		BudgetPct: budgetPct, FloorNs: floorNs,
		Failures: rep.Gate(budgetPct, floorNs),
	}
	for _, r := range rep.Rows {
		data.Rows = append(data.Rows, htmlRow{Row: r, Fail: r.OverBudget(budgetPct, floorNs)})
	}
	var b strings.Builder
	if err := htmlTmpl.Execute(&b, data); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}
