package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cpuSweepOutput = `goos: linux
BenchmarkParallelDecide         	 1000000	       120.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelDecide-2       	 2000000	        70.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelDecide-4       	 4000000	        40.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSpanRing/cap-256       	  500000	       300.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkMicroMonitorDecide     	  500000	       700.0 ns/op	       8 B/op	       1 allocs/op
PASS
`

func TestParseRekeysCPUSweeps(t *testing.T) {
	entries, err := parse(strings.NewReader(cpuSweepOutput))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for name, ns := range map[string]float64{
		"BenchmarkParallelDecide/cpus=1": 120.0,
		"BenchmarkParallelDecide/cpus=2": 70.0,
		"BenchmarkParallelDecide/cpus=4": 40.0,
	} {
		e, ok := entries[name]
		if !ok {
			t.Fatalf("missing rekeyed entry %q in %v", name, entries)
		}
		if e.NsPerOp != ns {
			t.Errorf("%s ns/op = %v, want %v", name, e.NsPerOp, ns)
		}
	}
	if _, ok := entries["BenchmarkParallelDecide"]; ok {
		t.Error("bare sweep name survived rekeying")
	}
	// A numeric sub-benchmark without a bare sibling stays verbatim.
	if _, ok := entries["BenchmarkSpanRing/cap-256"]; !ok {
		t.Errorf("sub-benchmark name was rewritten: %v", entries)
	}
	if _, ok := entries["BenchmarkMicroMonitorDecide"]; !ok {
		t.Error("plain benchmark missing")
	}
}

func TestParseMergesRepeatedRuns(t *testing.T) {
	// go test -count=3 repeats every benchmark line; the converter must
	// keep the minimum ns/op (noise only adds time) and the maximum
	// allocs/op (an extra alloc in any run is real).
	entries, err := parse(strings.NewReader(`
BenchmarkMicroMonitorDecide  500000  700.0 ns/op  8 B/op  1 allocs/op
BenchmarkMicroMonitorDecide  500000  430.0 ns/op  8 B/op  2 allocs/op
BenchmarkMicroMonitorDecide  500000  950.0 ns/op  8 B/op  1 allocs/op
PASS
`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, ok := entries["BenchmarkMicroMonitorDecide"]
	if !ok {
		t.Fatalf("missing entry: %v", entries)
	}
	if e.NsPerOp != 430.0 {
		t.Errorf("ns/op = %v, want min 430.0", e.NsPerOp)
	}
	if e.AllocsPerOp != 2 {
		t.Errorf("allocs/op = %v, want max 2", e.AllocsPerOp)
	}
}

func TestParseKeepsLoneSuffixVerbatim(t *testing.T) {
	// Without the bare sibling, -8 is indistinguishable from a
	// sub-benchmark name and must not be rewritten.
	entries, err := parse(strings.NewReader(
		"BenchmarkDecideTelemetryDisabled-8  9416926  120.7 ns/op  0 B/op  0 allocs/op\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := entries["BenchmarkDecideTelemetryDisabled-8"]; !ok {
		t.Fatalf("lone suffixed name rewritten: %v", entries)
	}
}

func TestCompareAcceptsWithinBudget(t *testing.T) {
	baseline := map[string]Entry{
		"BenchmarkMicroMonitorDecide":    {NsPerOp: 700, AllocsPerOp: 1},
		"BenchmarkParallelDecide/cpus=2": {NsPerOp: 70, AllocsPerOp: 0},
		"BenchmarkAblation/forkskew":     {NsPerOp: 100, AllocsPerOp: 5},
	}
	current := map[string]Entry{
		"BenchmarkMicroMonitorDecide":    {NsPerOp: 850, AllocsPerOp: 1}, // +21 %: inside budget
		"BenchmarkParallelDecide/cpus=2": {NsPerOp: 60, AllocsPerOp: 0},
		"BenchmarkAblation/forkskew":     {NsPerOp: 900, AllocsPerOp: 9}, // not gated
	}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err != nil {
		t.Fatalf("compare: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "Ablation") {
		t.Errorf("non-gated benchmark in comparison table:\n%s", out.String())
	}
}

func TestCompareFailsOnNsRegression(t *testing.T) {
	baseline := map[string]Entry{"BenchmarkDecideTelemetryEnabled": {NsPerOp: 200, AllocsPerOp: 1}}
	current := map[string]Entry{"BenchmarkDecideTelemetryEnabled": {NsPerOp: 300, AllocsPerOp: 1}}
	var out strings.Builder
	err := compare(baseline, current, 8, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("compare = %v, want ns/op regression failure", err)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	baseline := map[string]Entry{"BenchmarkMicroForkInheritance": {NsPerOp: 400, AllocsPerOp: 1}}
	current := map[string]Entry{"BenchmarkMicroForkInheritance": {NsPerOp: 380, AllocsPerOp: 2}}
	var out strings.Builder
	err := compare(baseline, current, 8, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("compare = %v, want allocs/op regression failure", err)
	}
}

func TestCompareOversubscribedGatesAllocsOnly(t *testing.T) {
	// On a 1-CPU host a /cpus=4 run timeslices one core, so its wall
	// clock is scheduler noise: ns/op regressions pass, allocs still
	// gate. The in-budget /cpus=1 row keeps the gate satisfiable.
	baseline := map[string]Entry{
		"BenchmarkParallelDecide/cpus=1": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkParallelDecide/cpus=4": {NsPerOp: 100, AllocsPerOp: 0},
	}
	current := map[string]Entry{
		"BenchmarkParallelDecide/cpus=1": {NsPerOp: 110, AllocsPerOp: 0},
		"BenchmarkParallelDecide/cpus=4": {NsPerOp: 300, AllocsPerOp: 0},
	}
	var out strings.Builder
	if err := compare(baseline, current, 1, &out); err != nil {
		t.Fatalf("compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "oversubscribed") {
		t.Errorf("oversubscribed row not marked:\n%s", out.String())
	}
	// The same 3x on a host that genuinely has 4 CPUs is a regression.
	if err := compare(baseline, current, 4, &out); err == nil {
		t.Error("3x ns/op on a 4-CPU host passed, want regression")
	}
	// An alloc regression gates regardless of oversubscription.
	current["BenchmarkParallelDecide/cpus=4"] = Entry{NsPerOp: 300, AllocsPerOp: 1}
	if err := compare(baseline, current, 1, &out); err == nil {
		t.Error("alloc regression on oversubscribed row passed, want failure")
	}
}

func TestCompareStoreRowsGateAllocsOnly(t *testing.T) {
	// The per-scale store tables are wall-clock-exempt: Get/Scan at
	// small scales are tens of ns and Append is syscall/GC-bound, so
	// only their allocation contract gates.
	baseline := map[string]Entry{"BenchmarkStoreAppend/jsonl/100": {NsPerOp: 2500, AllocsPerOp: 5}}
	current := map[string]Entry{"BenchmarkStoreAppend/jsonl/100": {NsPerOp: 4500, AllocsPerOp: 5}}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err != nil {
		t.Fatalf("compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "allocs-only") {
		t.Errorf("store row not marked allocs-only:\n%s", out.String())
	}
	current["BenchmarkStoreAppend/jsonl/100"] = Entry{NsPerOp: 2400, AllocsPerOp: 6}
	if err := compare(baseline, current, 8, &out); err == nil {
		t.Error("alloc regression on store row passed, want failure")
	}
}

func TestCompareRequiresOverlap(t *testing.T) {
	baseline := map[string]Entry{"BenchmarkMicroOld": {NsPerOp: 100}}
	current := map[string]Entry{"BenchmarkMicroNew": {NsPerOp: 100}}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err == nil {
		t.Fatal("compare with disjoint benchmark sets succeeded, want error")
	}
}

func TestCompareZeroAllocContract(t *testing.T) {
	// The v2 frame encoder's 0-alloc contract is absolute: it fails
	// even when the baseline itself had regressed to a nonzero count.
	baseline := map[string]Entry{"BenchmarkStoreEncodeV2": {NsPerOp: 90, AllocsPerOp: 1}}
	current := map[string]Entry{"BenchmarkStoreEncodeV2": {NsPerOp: 90, AllocsPerOp: 1}}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err == nil {
		t.Error("nonzero allocs on the encode bench passed, want failure")
	}
	current["BenchmarkStoreEncodeV2"] = Entry{NsPerOp: 95, AllocsPerOp: 0}
	out.Reset()
	if err := compare(baseline, current, 8, &out); err != nil {
		t.Errorf("0-alloc encode bench failed: %v\n%s", err, out.String())
	}
}

func TestValidateWrappedStoreReport(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "report.json")
		if err := os.WriteFile(p, []byte(body), 0o600); err != nil {
			t.Fatalf("write: %v", err)
		}
		return p
	}
	bench := `"benchmarks": {"BenchmarkFleetLoad/metric=p50": {"ns_per_op": 1000, "allocs_per_op": 0}}`
	good := `{` + bench + `, "store": {"records_per_sec": 5000, "records": 100,
		"batches": 10, "max_batch": 32, "batch_size_hist": {"1": 4, "le32": 6}, "dropped_acks": 0}}`
	if err := validate(write(t, good)); err != nil {
		t.Fatalf("valid wrapped report rejected: %v", err)
	}
	// Legacy flat maps must keep validating.
	if err := validate(write(t, `{"BenchmarkMicroDecide": {"ns_per_op": 100, "allocs_per_op": 0}}`)); err != nil {
		t.Fatalf("legacy flat map rejected: %v", err)
	}
	bad := map[string]string{
		"dropped acks": `{` + bench + `, "store": {"records_per_sec": 5000, "records": 100,
			"batches": 10, "batch_size_hist": {"le32": 10}, "dropped_acks": 3}}`,
		"hist mismatch": `{` + bench + `, "store": {"records_per_sec": 5000, "records": 100,
			"batches": 10, "batch_size_hist": {"le32": 7}, "dropped_acks": 0}}`,
		"no throughput": `{` + bench + `, "store": {"records_per_sec": 0, "records": 0,
			"batches": 0, "batch_size_hist": {}, "dropped_acks": 0}}`,
		"zero batches": `{` + bench + `, "store": {"records_per_sec": 5000, "records": 100,
			"batches": 0, "batch_size_hist": {}, "dropped_acks": 0}}`,
	}
	for name, body := range bad {
		if err := validate(write(t, body)); err == nil {
			t.Errorf("%s: invalid store section passed validation", name)
		}
	}
}

func TestValidateEncodeBenchZeroAlloc(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bench.json")
	body := `{"BenchmarkStoreEncodeV2": {"ns_per_op": 90, "allocs_per_op": 2}}`
	if err := os.WriteFile(p, []byte(body), 0o600); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := validate(p); err == nil {
		t.Error("committed JSON with allocating encode bench passed validation")
	}
}
