// Package netlink simulates the Linux netlink facility as used by
// Overhaul: a duplex kernel↔userspace message channel with kernel-side
// peer authentication.
//
// The paper (§IV-B, "Secure communication channel") establishes a
// netlink channel between the kernel permission monitor and the X
// server. Netlink itself does not authenticate; Overhaul's kernel
// instead *introspects* the connecting userspace process — checking that
// its executable is loaded from the well-known, superuser-owned path of
// the X binaries — before trusting it. This package reproduces that
// structure: a Hub lives on the kernel side, userspace processes Connect
// with their PID, and the Hub consults an Authenticator before admitting
// them. Both directions are synchronous calls, mirroring the
// request/response use in the paper (interaction notifications and
// permission queries upward, alert requests downward).
package netlink

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors.
var (
	ErrAuthFailed   = errors.New("netlink: peer authentication failed")
	ErrClosed       = errors.New("netlink: connection closed")
	ErrNoHandler    = errors.New("netlink: no handler installed")
	ErrNotConnected = errors.New("netlink: peer not connected")
	ErrDuplicate    = errors.New("netlink: pid already connected")
)

// Handler processes one message and returns a reply.
type Handler func(msg any) (any, error)

// Authenticator decides whether the process with the given PID may
// connect. The kernel's implementation introspects the process's
// executable path and owner, per the paper.
type Authenticator interface {
	AuthenticatePeer(pid int) error
}

// AuthenticatorFunc adapts a function to the Authenticator interface.
type AuthenticatorFunc func(pid int) error

var _ Authenticator = AuthenticatorFunc(nil)

// AuthenticatePeer implements Authenticator.
func (f AuthenticatorFunc) AuthenticatePeer(pid int) error { return f(pid) }

// Stats counts channel activity.
type Stats struct {
	Connects     uint64
	AuthFailures uint64
	UserToKernel uint64
	KernelToUser uint64
}

// Hub is the kernel endpoint of a netlink family. It is safe for
// concurrent use.
type Hub struct {
	auth Authenticator

	mu            sync.Mutex
	kernelHandler Handler
	conns         map[int]*Conn
	stats         Stats
}

// NewHub creates a hub whose connections are vetted by auth.
func NewHub(auth Authenticator) (*Hub, error) {
	if auth == nil {
		return nil, errors.New("netlink: nil authenticator")
	}
	return &Hub{auth: auth, conns: make(map[int]*Conn)}, nil
}

// SetKernelHandler installs the handler for userspace→kernel messages.
func (h *Hub) SetKernelHandler(fn Handler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kernelHandler = fn
}

// Connect authenticates the peer and returns its connection. A given
// PID may hold at most one connection at a time.
func (h *Hub) Connect(pid int, userHandler Handler) (*Conn, error) {
	if err := h.auth.AuthenticatePeer(pid); err != nil {
		h.mu.Lock()
		h.stats.AuthFailures++
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: pid %d: %v", ErrAuthFailed, pid, err)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.conns[pid]; ok {
		return nil, fmt.Errorf("%w: pid %d", ErrDuplicate, pid)
	}
	c := &Conn{hub: h, pid: pid, userHandler: userHandler}
	h.conns[pid] = c
	h.stats.Connects++
	return c, nil
}

// CallUser sends a kernel→userspace message to the connection held by
// pid and returns its reply.
func (h *Hub) CallUser(pid int, msg any) (any, error) {
	h.mu.Lock()
	c, ok := h.conns[pid]
	var fn Handler
	if ok {
		fn = c.userHandler
	}
	h.stats.KernelToUser++
	h.mu.Unlock()

	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNotConnected, pid)
	}
	if fn == nil {
		return nil, fmt.Errorf("%w: pid %d has no user handler", ErrNoHandler, pid)
	}
	return fn(msg)
}

// Connected reports whether pid holds a live connection.
func (h *Hub) Connected(pid int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.conns[pid]
	return ok
}

// StatsSnapshot returns a copy of the hub's counters.
func (h *Hub) StatsSnapshot() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

func (h *Hub) drop(pid int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, pid)
}

// Conn is a userspace endpoint.
type Conn struct {
	hub *Hub
	pid int

	mu          sync.Mutex
	userHandler Handler
	closed      bool
}

// PID returns the peer PID this connection was authenticated as.
func (c *Conn) PID() int { return c.pid }

// Call sends a userspace→kernel message and returns the kernel's reply.
func (c *Conn) Call(msg any) (any, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}

	c.hub.mu.Lock()
	fn := c.hub.kernelHandler
	c.hub.stats.UserToKernel++
	c.hub.mu.Unlock()

	if fn == nil {
		return nil, ErrNoHandler
	}
	return fn(msg)
}

// Close tears the connection down. Closing twice returns ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.hub.drop(c.pid)
	return nil
}
