package probe

import (
	"sync"
	"testing"

	"overhaul/internal/faultinject"
)

func TestRingPublishReadOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		if !r.Publish(Event{PID: int64(i)}) {
			t.Fatalf("publish %d refused on a non-full ring", i)
		}
	}
	buf := make([]Event, 16)
	n := r.ReadBatch(buf)
	if n != 5 {
		t.Fatalf("ReadBatch = %d, want 5", n)
	}
	for i := 0; i < n; i++ {
		if buf[i].PID != int64(i) {
			t.Fatalf("event %d has pid %d, want %d (FIFO order)", i, buf[i].PID, i)
		}
		if buf[i].Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, buf[i].Seq, i+1)
		}
	}
	if n := r.ReadBatch(buf); n != 0 {
		t.Fatalf("drained ring returned %d more events", n)
	}
}

func TestRingDropOnOverflow(t *testing.T) {
	r := NewRing(8)
	if r.Capacity() != 8 {
		t.Fatalf("capacity %d, want 8", r.Capacity())
	}
	for i := 0; i < 8; i++ {
		if !r.Publish(Event{PID: int64(i)}) {
			t.Fatalf("publish %d refused before full", i)
		}
	}
	for i := 0; i < 3; i++ {
		if r.Publish(Event{PID: 99}) {
			t.Fatal("publish accepted on a full ring")
		}
	}
	st := r.Stats()
	if st.Published != 8 || st.Dropped != 3 || st.Pending != 8 {
		t.Fatalf("stats %+v, want published=8 dropped=3 pending=8", st)
	}
	// Draining reopens capacity.
	buf := make([]Event, 8)
	if n := r.ReadBatch(buf); n != 8 {
		t.Fatalf("ReadBatch = %d, want 8", n)
	}
	if !r.Publish(Event{PID: 100}) {
		t.Fatal("publish refused after drain")
	}
	if got := r.Stats(); got.Published != 9 || got.Read != 8 {
		t.Fatalf("stats after drain %+v", got)
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		if got := NewRing(tc.ask).Capacity(); got != tc.want {
			t.Errorf("NewRing(%d).Capacity() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingReaderStallFault(t *testing.T) {
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointProbeRing, Kind: faultinject.KindError, Count: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRing(8)
	r.SetFaultHook(inj.Hook())
	for i := 0; i < 4; i++ {
		r.Publish(Event{PID: int64(i)})
	}
	buf := make([]Event, 8)
	// Two stalled reads: nothing consumed, stall counted.
	for i := 0; i < 2; i++ {
		if n := r.ReadBatch(buf); n != 0 {
			t.Fatalf("stalled read %d returned %d events", i, n)
		}
	}
	if st := r.Stats(); st.Stalls != 2 || st.Read != 0 || st.Pending != 4 {
		t.Fatalf("stats under stall %+v", st)
	}
	// The rule is exhausted: the next read drains normally.
	if n := r.ReadBatch(buf); n != 4 {
		t.Fatalf("post-stall read = %d, want 4", n)
	}
}

func TestRingConcurrentPublish(t *testing.T) {
	const (
		publishers = 8
		perPub     = 5000
		ringSize   = 256
	)
	r := NewRing(ringSize)
	var wg sync.WaitGroup
	var readerWG sync.WaitGroup
	stop := make(chan struct{})
	var read uint64
	perPIDMax := make([]int64, publishers)
	for i := range perPIDMax {
		perPIDMax[i] = -1
	}

	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		buf := make([]Event, 64)
		consume := func(n int) bool {
			for i := 0; i < n; i++ {
				ev := buf[i]
				// Per-publisher payloads must arrive in their publish
				// order: each publisher's TimeNanos is monotone.
				if ev.TimeNanos <= perPIDMax[ev.PID] {
					t.Errorf("publisher %d: event %d after %d", ev.PID, ev.TimeNanos, perPIDMax[ev.PID])
					return false
				}
				perPIDMax[ev.PID] = ev.TimeNanos
				read++
			}
			return true
		}
		for {
			n := r.ReadBatch(buf)
			if !consume(n) {
				return
			}
			if n == 0 {
				select {
				case <-stop:
					// Publishers are done; one final drain empties the ring.
					if m := r.ReadBatch(buf); m > 0 {
						if !consume(m) {
							return
						}
						continue
					}
					return
				default:
				}
			}
		}
	}()

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				r.Publish(Event{PID: int64(p), TimeNanos: int64(i)})
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	st := r.Stats()
	if st.Published+st.Dropped != publishers*perPub {
		t.Fatalf("published %d + dropped %d != attempts %d", st.Published, st.Dropped, publishers*perPub)
	}
	if read != st.Published || st.Read != st.Published || st.Pending != 0 {
		t.Fatalf("read %d (stats read %d, pending %d), want every published event (%d) consumed",
			read, st.Read, st.Pending, st.Published)
	}
}
