package probe

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a compiled probe predicate: the flat, allocation-free form
// of a textual spec like "op=open dev=mic verdict=deny pid=1-99". A
// zero Spec matches every event. Fields are plain bitsets and ranges,
// so Match is a handful of compares with no loops, no allocation, and
// no user code — the "safe program" contract of an eBPF predicate,
// reduced to the fragment this system needs.
type Spec struct {
	// Hook restricts the attach points the probe binds to ("" = all).
	Hook string
	// Kinds is a bitset over Kind (bit i set ⇒ Kind(i) matches);
	// 0 means any kind. Devs and Verdicts follow the same convention.
	Kinds    uint16
	Devs     uint16
	Verdicts uint8
	// HasPID arms the inclusive [PIDLo, PIDHi] range filter.
	HasPID       bool
	PIDLo, PIDHi int64
	// HasSession arms the inclusive [SessionLo, SessionHi] filter.
	HasSession           bool
	SessionLo, SessionHi uint64
}

// Match reports whether ev satisfies the predicate. It is the probe
// hot path: flat field compares only.
func (s *Spec) Match(ev *Event) bool {
	if s.Kinds != 0 && s.Kinds&(1<<ev.Kind) == 0 {
		return false
	}
	if s.Devs != 0 && s.Devs&(1<<ev.Dev) == 0 {
		return false
	}
	if s.Verdicts != 0 && s.Verdicts&(1<<ev.Verdict) == 0 {
		return false
	}
	if s.HasPID && (ev.PID < s.PIDLo || ev.PID > s.PIDHi) {
		return false
	}
	if s.HasSession && (ev.Session < s.SessionLo || ev.Session > s.SessionHi) {
		return false
	}
	return true
}

// ParseSpec compiles a textual probe spec. The grammar is
// whitespace-separated key=value tokens:
//
//	hook=NAME          attach point (see HookNames); omit for all
//	op=K[,K...]        event kinds: open decide evaluate audit input
//	                   send recv dispatch
//	dev=D[,D...]       device classes: copy paste scr mic cam dev none
//	verdict=V[,V...]   verdicts: grant deny none
//	pid=N | pid=N-M    pid or inclusive pid range
//	session=N | N-M    session ID or inclusive range
//
// Repeated op/dev/verdict keys merge; repeated hook/pid/session keys
// are an error. The empty spec matches everything.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	for _, tok := range strings.Fields(text) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Spec{}, fmt.Errorf("probe: spec token %q: want key=value", tok)
		}
		if val == "" {
			return Spec{}, fmt.Errorf("probe: spec token %q: empty value", tok)
		}
		switch key {
		case "hook":
			if s.Hook != "" {
				return Spec{}, fmt.Errorf("probe: duplicate hook= in spec")
			}
			if !KnownHook(val) {
				return Spec{}, fmt.Errorf("probe: unknown hook %q", val)
			}
			s.Hook = val
		case "op":
			for _, name := range strings.Split(val, ",") {
				k := KindOf(name)
				if k == KindNone {
					return Spec{}, fmt.Errorf("probe: unknown op kind %q", name)
				}
				s.Kinds |= 1 << k
			}
		case "dev":
			for _, name := range strings.Split(val, ",") {
				if name == "none" {
					s.Devs |= 1 << DevNone
					continue
				}
				d := DevOf(name)
				if d == DevNone {
					return Spec{}, fmt.Errorf("probe: unknown device class %q", name)
				}
				s.Devs |= 1 << d
			}
		case "verdict":
			for _, name := range strings.Split(val, ",") {
				if name == "none" {
					s.Verdicts |= 1 << VerdictNone
					continue
				}
				v := VerdictOf(name)
				if v == VerdictNone {
					return Spec{}, fmt.Errorf("probe: unknown verdict %q", name)
				}
				s.Verdicts |= 1 << v
			}
		case "pid":
			if s.HasPID {
				return Spec{}, fmt.Errorf("probe: duplicate pid= in spec")
			}
			lo, hi, err := parseRange(val)
			if err != nil {
				return Spec{}, fmt.Errorf("probe: pid=%s: %w", val, err)
			}
			s.HasPID, s.PIDLo, s.PIDHi = true, lo, hi
		case "session":
			if s.HasSession {
				return Spec{}, fmt.Errorf("probe: duplicate session= in spec")
			}
			lo, hi, err := parseRange(val)
			if err != nil {
				return Spec{}, fmt.Errorf("probe: session=%s: %w", val, err)
			}
			s.HasSession, s.SessionLo, s.SessionHi = true, uint64(lo), uint64(hi)
		default:
			return Spec{}, fmt.Errorf("probe: unknown spec key %q", key)
		}
	}
	return s, nil
}

// parseRange parses "N" or "N-M" with 0 <= N <= M.
func parseRange(val string) (lo, hi int64, err error) {
	loS, hiS, isRange := strings.Cut(val, "-")
	if lo, err = strconv.ParseInt(loS, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad number %q", loS)
	}
	hi = lo
	if isRange {
		if hi, err = strconv.ParseInt(hiS, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad number %q", hiS)
		}
	}
	if lo < 0 {
		return 0, 0, fmt.Errorf("negative bound %d", lo)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %d-%d is inverted", lo, hi)
	}
	return lo, hi, nil
}

// String renders the spec canonically: fields in hook, op, dev,
// verdict, pid, session order; list values in enum order; single-value
// ranges collapsed. ParseSpec(s.String()) reproduces s exactly (the
// round-trip property FuzzProbeSpec pins); the zero Spec renders "".
func (s *Spec) String() string {
	var parts []string
	if s.Hook != "" {
		parts = append(parts, "hook="+s.Hook)
	}
	if s.Kinds != 0 {
		var names []string
		for k := KindOpen; k < kindCount; k++ {
			if s.Kinds&(1<<k) != 0 {
				names = append(names, kindNames[k])
			}
		}
		parts = append(parts, "op="+strings.Join(names, ","))
	}
	if s.Devs != 0 {
		var names []string
		for d := DevNone; d < devCount; d++ {
			if s.Devs&(1<<d) != 0 {
				names = append(names, devNames[d])
			}
		}
		parts = append(parts, "dev="+strings.Join(names, ","))
	}
	if s.Verdicts != 0 {
		var names []string
		for v := VerdictNone; v < verdictCount; v++ {
			if s.Verdicts&(1<<v) != 0 {
				names = append(names, verdictNames[v])
			}
		}
		parts = append(parts, "verdict="+strings.Join(names, ","))
	}
	if s.HasPID {
		parts = append(parts, "pid="+formatRange(s.PIDLo, s.PIDHi))
	}
	if s.HasSession {
		parts = append(parts, "session="+formatRange(int64(s.SessionLo), int64(s.SessionHi)))
	}
	return strings.Join(parts, " ")
}

func formatRange(lo, hi int64) string {
	if lo == hi {
		return strconv.FormatInt(lo, 10)
	}
	return strconv.FormatInt(lo, 10) + "-" + strconv.FormatInt(hi, 10)
}
