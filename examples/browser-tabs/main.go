// Browser-tabs: Figure 4 end to end — a Chromium-like multi-process
// browser whose tab processes are driven over shared memory. The user
// clicks in the *browser* window; the *tab* opens the camera. Without
// propagation policy P2 the tab would have no interaction record and the
// camera would stay locked.
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
	"overhaul/internal/apps"
	"overhaul/internal/fs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "browser-tabs:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, _, cam, err := overhaul.NewProtected("tabby-cat")
	if err != nil {
		return err
	}

	browser, err := apps.NewBrowser(sys, "chromium")
	if err != nil {
		return err
	}
	tab, ch, err := browser.OpenTab()
	if err != nil {
		return err
	}
	fmt.Printf("browser pid=%d, tab pid=%d (forked + exec, shared-memory channel)\n",
		browser.App().Proc.PID(), tab.Proc.PID())
	sys.Settle(2 * time.Second)

	// Before any click, the tab cannot open the camera.
	if _, err := sys.Kernel.Open(tab.Proc, cam, fs.AccessRead); err != nil {
		fmt.Println("tab without click:", err)
	}

	// The user clicks "start video chat" in the browser window; the
	// command travels over shared memory, carrying the interaction
	// stamp (P2), and the tab's camera open succeeds.
	if err := browser.StartVideoChat(tab, ch, cam); err != nil {
		return fmt.Errorf("video chat should start: %w", err)
	}
	fmt.Println("tab after click  : camera opened via P2 propagation")

	for _, a := range sys.ActiveAlerts() {
		fmt.Printf("alert overlay    : %q\n", a.Message)
	}
	return nil
}
