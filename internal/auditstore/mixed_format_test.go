package auditstore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/faultinject"
)

// writeV1Segments hand-writes legacy JSONL segment files holding
// records start..start+count-1 of the mkRecord stream (seqs start+1..),
// perSeg records per file, exactly as a pre-upgrade store left them.
func writeV1Segments(t *testing.T, dir string, count, perSeg int) {
	t.Helper()
	id := uint64(1)
	for at := 0; at < count; at += perSeg {
		var data []byte
		for i := at; i < at+perSeg && i < count; i++ {
			r := mkRecord(i)
			r.Seq = uint64(i + 1)
			line, err := auditstore.EncodeRecord(r)
			if err != nil {
				t.Fatalf("encode v1 record %d: %v", i, err)
			}
			data = append(data, line...)
		}
		name := filepath.Join(dir, fmt.Sprintf("seg-%08x.jsonl", id))
		if err := os.WriteFile(name, data, 0o600); err != nil {
			t.Fatalf("write v1 segment: %v", err)
		}
		id++
	}
}

// TestMixedFormatRecovery opens a directory of legacy v1 JSONL
// segments, appends through the v2 path, and checks both formats
// coexist across reopen with the stream intact.
func TestMixedFormatRecovery(t *testing.T) {
	dir := t.TempDir()
	writeV1Segments(t, dir, 20, 5)

	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 5, CompactSealed: -1})
	if err != nil {
		t.Fatalf("open v1 dir: %v", err)
	}
	rec := st.Recovery()
	if rec.SegmentsV1 != 4 || rec.SegmentsV2 != 0 || rec.Records != 20 || !rec.Clean {
		t.Fatalf("v1 recovery = %+v, want 4 v1 segments, 20 records, clean", rec)
	}
	checkPrefix(t, st, 20)
	for i := 20; i < 40; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 5, CompactSealed: -1})
	if err != nil {
		t.Fatalf("reopen mixed dir: %v", err)
	}
	rec = st2.Recovery()
	if rec.SegmentsV1 == 0 || rec.SegmentsV2 == 0 {
		t.Fatalf("mixed recovery = %+v, want both formats present", rec)
	}
	if !rec.Clean || rec.Records != 40 {
		t.Fatalf("mixed recovery = %+v, want clean 40 records", rec)
	}
	checkPrefix(t, st2, 40)
	if err := st2.Close(); err != nil {
		t.Fatalf("close mixed: %v", err)
	}
}

// TestMixedFormatCompactionUpgrade pins the upgrade path: Compact on a
// mixed directory rewrites every v1 segment into v2 without changing a
// single record, and the upgraded directory opens clean.
func TestMixedFormatCompactionUpgrade(t *testing.T) {
	dir := t.TempDir()
	writeV1Segments(t, dir, 20, 5)

	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 5, CompactSealed: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 20; i < 33; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	before, err := auditstore.ScanAll(st, auditstore.Query{})
	if err != nil {
		t.Fatalf("scan before: %v", err)
	}

	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	v1Left, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(v1Left) != 0 {
		t.Fatalf("%d v1 segments survive compaction: %v", len(v1Left), v1Left)
	}

	after, err := auditstore.ScanAll(st, auditstore.Query{})
	if err != nil {
		t.Fatalf("scan after: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed record count: %d -> %d", len(before), len(after))
	}
	for i := range before {
		b, err1 := auditstore.EncodeRecord(before[i])
		a, err2 := auditstore.EncodeRecord(after[i])
		if err1 != nil || err2 != nil {
			t.Fatalf("encode: %v / %v", err1, err2)
		}
		if string(a) != string(b) {
			t.Fatalf("record %d changed across upgrade:\n before %s\n after %s", i, b, a)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 5, CompactSealed: -1})
	if err != nil {
		t.Fatalf("reopen upgraded: %v", err)
	}
	rec := st2.Recovery()
	if !rec.Clean || rec.SegmentsV1 != 0 || rec.Records != 33 {
		t.Fatalf("upgraded recovery = %+v, want clean all-v2 with 33 records", rec)
	}
	checkPrefix(t, st2, 33)
	if err := st2.Close(); err != nil {
		t.Fatalf("close upgraded: %v", err)
	}
}

// TestMixedFormatCrash runs a deterministic batch-window crash against
// a directory that still holds v1 segments: the exact-acked-prefix
// contract must hold across formats.
func TestMixedFormatCrash(t *testing.T) {
	dir := t.TempDir()
	writeV1Segments(t, dir, 20, 5)

	inj, err := faultinject.New(7, faultinject.Rule{
		Point: faultinject.PointStoreBatch, Kind: faultinject.KindCrash, After: 10, Count: 1,
	})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	st, err := auditstore.Open(dir, auditstore.Options{
		SegmentRecords: 5, CompactSealed: -1, Hook: inj.Hook(),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	acked := 20
	for i := 20; i < 40; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			if !errors.Is(err, auditstore.ErrStoreFailed) {
				t.Fatalf("append %d: %v", i, err)
			}
			break
		}
		acked++
	}
	if acked != 25 { // 5 v2 appends acked before the 6th hits window A
		t.Fatalf("acked %d, want 25", acked)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 5, CompactSealed: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	checkPrefix(t, st2, acked)
	if err := st2.Close(); err != nil {
		t.Fatalf("close recovered: %v", err)
	}
}

// coldQueries is the grid both the cold scanner and the iterator are
// checked against — every planner shape: full scan, single posting,
// intersection, time bounds, residual filters, limits.
func coldQueries() []auditstore.Query {
	mid := testBase.Add(700 * time.Millisecond)
	late := testBase.Add(1500 * time.Millisecond)
	return []auditstore.Query{
		{},
		{Verdict: "deny"},
		{Verdict: "grant"},
		{PID: 101},
		{PID: 103, Verdict: "deny"},
		{PID: 9999},
		{Since: mid},
		{Since: mid, Verdict: "deny"},
		{Until: mid},
		{Since: mid, Until: late, PID: 102},
		{Reason: "recent"},
		{Verdict: "deny", Reason: "recent"},
		{Session: 2},
		{Session: 3, Verdict: "grant"},
		{Limit: 7},
		{Verdict: "deny", Limit: 3},
		{Since: mid, Limit: 5},
	}
}

// TestColdScanMatchesStore pins ScanSegments against the warm path:
// for a mixed-format directory with sealed and active segments, every
// query in the grid returns byte-identical records in both paths.
func TestColdScanMatchesStore(t *testing.T) {
	dir := t.TempDir()
	writeV1Segments(t, dir, 10, 4)
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8, CompactSealed: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 10; i < 45; i++ { // sealed v2 segments plus a partial active one
		if _, err := st.Append(mkRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	for qi, q := range coldQueries() {
		warm, err := auditstore.ScanAll(st, q)
		if err != nil {
			t.Fatalf("query %d warm scan: %v", qi, err)
		}
		var cold []auditstore.Record
		stats, err := auditstore.ScanSegments(dir, q, func(r auditstore.Record) bool {
			cold = append(cold, r)
			return true
		})
		if err != nil {
			t.Fatalf("query %d cold scan: %v", qi, err)
		}
		if stats.Truncated {
			t.Fatalf("query %d cold scan reports truncation on a healthy dir: %+v", qi, stats)
		}
		if len(cold) != len(warm) {
			t.Fatalf("query %d: cold %d records, warm %d", qi, len(cold), len(warm))
		}
		for i := range warm {
			w, err1 := auditstore.EncodeRecord(warm[i])
			c, err2 := auditstore.EncodeRecord(cold[i])
			if err1 != nil || err2 != nil {
				t.Fatalf("encode: %v / %v", err1, err2)
			}
			if string(w) != string(c) {
				t.Fatalf("query %d record %d diverged:\n warm %s\n cold %s", qi, i, w, c)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestColdScanSkipsSegments checks the footer fast path: a late -since
// bound must skip whole sealed segments without decoding them.
func TestColdScanSkipsSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8, CompactSealed: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fillStore(t, st, 80) // 10 sealed v2 segments
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	q := auditstore.Query{Since: testBase.Add(3 * time.Second)} // records 60+
	var got []auditstore.Record
	stats, err := auditstore.ScanSegments(dir, q, func(r auditstore.Record) bool {
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatalf("cold scan: %v", err)
	}
	if stats.SkippedSegments == 0 {
		t.Fatalf("no segments skipped for a late since bound: %+v", stats)
	}
	if len(got) != 20 {
		t.Fatalf("got %d records, want 20 (stats %+v)", len(got), stats)
	}
	for i, r := range got {
		if want := uint64(61 + i); r.Seq != want {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, want)
		}
	}
}

// TestColdScanReportsTruncation checks a torn tail surfaces in the
// cold stats with its file and reason, while the consistent prefix
// still streams.
func TestColdScanReportsTruncation(t *testing.T) {
	dir := t.TempDir()
	inj, err := faultinject.New(3, faultinject.Rule{
		Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, After: 12, Count: 1,
	})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	st, err := auditstore.Open(dir, auditstore.Options{
		SegmentRecords: 64, CompactSealed: -1, Hook: inj.Hook(),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	acked := 0
	for i := 0; i < 30; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			break
		}
		acked++
	}
	if acked == 0 || acked == 30 {
		t.Fatalf("torn fault never fired usefully (acked %d)", acked)
	}
	_ = st.Close() // the store is failed; Close only releases it

	var got []auditstore.Record
	stats, err := auditstore.ScanSegments(dir, auditstore.Query{}, func(r auditstore.Record) bool {
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatalf("cold scan: %v", err)
	}
	if !stats.Truncated || stats.TruncatedFile == "" || stats.Reason == "" {
		t.Fatalf("torn tail not reported: %+v", stats)
	}
	if len(got) != acked {
		t.Fatalf("cold scan streamed %d records, want the %d acked", len(got), acked)
	}
}

// TestSegmentsNewest pins the relative -since anchor: the newest
// record instant across all segments, straight from footers where
// available.
func TestSegmentsNewest(t *testing.T) {
	dir := t.TempDir()
	writeV1Segments(t, dir, 10, 4)
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8, CompactSealed: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 10; i < 30; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	newest, err := auditstore.SegmentsNewest(dir)
	if err != nil {
		t.Fatalf("newest: %v", err)
	}
	want := mkRecord(29).Time
	if !newest.Equal(want) {
		t.Fatalf("newest = %v, want %v", newest, want)
	}
}
