package auditstore_test

import (
	"testing"

	"overhaul/internal/auditstore"
)

// iterStores builds the two Iterable backends preloaded with n records.
func iterStores(t *testing.T, n int) map[string]auditstore.Store {
	t.Helper()
	mem := auditstore.NewMemStore()
	fillStore(t, mem, n)
	fs, err := auditstore.Open(t.TempDir(), auditstore.Options{SegmentRecords: 32})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { fs.Close() }) //overhaul:allow errdrop test cleanup
	fillStore(t, fs, n)
	return map[string]auditstore.Store{"mem": mem, "file": fs}
}

// TestIterMatchesScan pins the pull iterator against the push scan:
// for every backend and every planner shape in the query grid, Iter +
// Next yields exactly the Scan result set, in order.
func TestIterMatchesScan(t *testing.T) {
	for name, st := range iterStores(t, 60) {
		it, ok := st.(auditstore.Iterable)
		if !ok {
			t.Fatalf("%s store is not Iterable", name)
		}
		for qi, q := range coldQueries() {
			want, err := auditstore.ScanAll(st, q)
			if err != nil {
				t.Fatalf("%s query %d scan: %v", name, qi, err)
			}
			iter, err := it.Iter(q)
			if err != nil {
				t.Fatalf("%s query %d iter: %v", name, qi, err)
			}
			var got []auditstore.Record
			var r auditstore.Record
			for iter.Next(&r) {
				got = append(got, r)
			}
			if len(got) != len(want) {
				t.Fatalf("%s query %d: iter %d records, scan %d", name, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %d record %d diverged:\n iter %+v\n scan %+v",
						name, qi, i, got[i], want[i])
				}
			}
			// An exhausted iterator stays exhausted.
			if iter.Next(&r) {
				t.Fatalf("%s query %d: Next true after exhaustion", name, qi)
			}
		}
	}
}

// TestIterNextZeroAlloc pins the streaming claim: advancing a live
// iterator into a caller-owned Record allocates nothing.
func TestIterNextZeroAlloc(t *testing.T) {
	mem := auditstore.NewMemStore()
	fillStore(t, mem, 10000)
	for _, q := range []auditstore.Query{
		{},
		{Verdict: "deny"},
		{Verdict: "deny", Reason: "recent"},
		{PID: 101, Verdict: "grant"},
	} {
		iter, err := mem.Iter(q)
		if err != nil {
			t.Fatalf("iter: %v", err)
		}
		var r auditstore.Record
		if !iter.Next(&r) { // warm: first advance may touch the plan
			t.Fatalf("query %+v matched nothing", q)
		}
		if n := testing.AllocsPerRun(100, func() {
			if !iter.Next(&r) {
				t.Fatal("iterator exhausted mid-measurement")
			}
		}); n != 0 {
			t.Fatalf("query %+v: Next allocates %v/op, want 0", q, n)
		}
	}
}

// TestIterResumable checks an iterator can be drained incrementally —
// the cursor holds across calls, which is what lets the CLI stream
// records without materialising the result set.
func TestIterResumable(t *testing.T) {
	mem := auditstore.NewMemStore()
	fillStore(t, mem, 30)
	iter, err := mem.Iter(auditstore.Query{Verdict: "deny"})
	if err != nil {
		t.Fatalf("iter: %v", err)
	}
	want, err := auditstore.ScanAll(mem, auditstore.Query{Verdict: "deny"})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var got []auditstore.Record
	for {
		// Pull in uneven chunks.
		var r auditstore.Record
		pulled := 0
		for pulled < 1+len(got)%3 && iter.Next(&r) {
			got = append(got, r)
			pulled++
		}
		if pulled == 0 {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("chunked drain: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d diverged", i)
		}
	}
}
