# Local workflow mirroring .github/workflows/ci.yml: `make ci` is the
# full tier-1 gate a PR must pass.

GO ?= go

.PHONY: all build fmt vet lint test race bench fuzz ci

all: build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Domain-invariant static analysis (clockcheck, lockcheck, stampcheck,
# printcheck, errdrop). See DESIGN.md "Invariants & static analysis".
lint:
	$(GO) run ./cmd/overhaul-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Short fuzz pass over the stamp-propagation invariants.
fuzz:
	$(GO) test ./internal/ipc -run='^$$' -fuzz='^FuzzMsgQueueStampPropagation$$' -fuzztime=10s
	$(GO) test ./internal/ipc -run='^$$' -fuzz='^FuzzShmStampPropagation$$' -fuzztime=10s

ci: fmt build vet lint race fuzz
