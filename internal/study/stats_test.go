package study

import "testing"

// TestShapeHoldsAcrossSeeds runs the study under many seeds and checks
// that the aggregate reproduces the paper's proportions — the claim is
// about the distribution, not one lucky draw.
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed study in -short mode")
	}
	var interrupted, noticed, missed, total int
	for seed := int64(1); seed <= 8; seed++ {
		res, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("Run(seed %d): %v", seed, err)
		}
		interrupted += res.Interrupted
		noticed += res.Noticed
		missed += res.Missed
		total += res.Participants
		// Transparency is deterministic: always 46/46.
		for _, s := range res.LikertScores {
			if s != 1 {
				t.Fatalf("seed %d: Likert %d", seed, s)
			}
		}
	}
	// Paper proportions: 52 % / 35 % / 13 %. Allow generous sampling
	// slack around them.
	fInterrupted := float64(interrupted) / float64(total)
	fNoticed := float64(noticed) / float64(total)
	fMissed := float64(missed) / float64(total)
	if fInterrupted < 0.42 || fInterrupted > 0.62 {
		t.Fatalf("interrupted fraction = %.2f, paper 0.52", fInterrupted)
	}
	if fNoticed < 0.25 || fNoticed > 0.45 {
		t.Fatalf("noticed fraction = %.2f, paper 0.35", fNoticed)
	}
	if fMissed < 0.05 || fMissed > 0.22 {
		t.Fatalf("missed fraction = %.2f, paper 0.13", fMissed)
	}
}

func TestPromptFatigueComparison(t *testing.T) {
	res, err := RunPromptFatigue(FatigueConfig{Prompts: 60, MaliciousFraction: 0.25, Seed: 3})
	if err != nil {
		t.Fatalf("RunPromptFatigue: %v", err)
	}
	if res.Malicious == 0 {
		t.Fatal("no malicious prompts generated")
	}
	// The headline comparison: under the prompt model a habituated user
	// waves malware through; under the alert model misgrants are
	// structurally impossible.
	if res.PromptMisgrants == 0 {
		t.Fatalf("prompt model misgrants = 0; habituation should leak: %+v", res)
	}
	if res.AlertMisgrants != 0 {
		t.Fatalf("alert model misgrants = %d, want 0 by construction", res.AlertMisgrants)
	}
	// Missed notices are a privacy-awareness loss, not a data loss, and
	// should track the §V-B missing rate (~13%).
	if res.AlertMissedNotices >= res.Malicious/2 {
		t.Fatalf("missed notices = %d of %d, too many", res.AlertMissedNotices, res.Malicious)
	}
}

func TestPromptFatigueDeterministic(t *testing.T) {
	a, err := RunPromptFatigue(FatigueConfig{Seed: 5})
	if err != nil {
		t.Fatalf("RunPromptFatigue: %v", err)
	}
	b, err := RunPromptFatigue(FatigueConfig{Seed: 5})
	if err != nil {
		t.Fatalf("RunPromptFatigue: %v", err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
