# Local workflow mirroring .github/workflows/ci.yml: `make ci` is the
# full tier-1 gate a PR must pass.

GO ?= go

.PHONY: all build fmt vet lint lint-baseline test race bench bench-compare fleet fuzz chaos store multiview ci

all: build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Domain-invariant static analysis: the syntactic suite (atomiccheck,
# clockcheck, errdrop, lockcheck, printcheck, spancheck, stampcheck)
# plus the interprocedural analyzers (flowcheck, failclosedcheck,
# lockordercheck). Gated against the committed baseline: known
# findings are tolerated, new ones fail. See DESIGN.md "Invariants &
# static analysis" and "Interprocedural analysis".
lint:
	$(GO) run ./cmd/overhaul-lint -baseline lint-baseline.json ./...

# Re-triage: regenerate the committed baseline from the current tree.
# Only run this after deciding the new findings are tolerable debt —
# the diff of lint-baseline.json is the reviewable record of that call.
lint-baseline:
	$(GO) run ./cmd/overhaul-lint -baseline lint-baseline.json -write-baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Benchmarks, recorded machine-readably: the run and the conversion
# are separate steps so a bench failure is not masked by a pipe.
# 2000 iterations so the recorded numbers are steady-state: at 100x
# the ring-backed paths are still warming (every span allocates until
# the ring fills) and the JSON would record the cold path. -count=3
# because a shared machine's wall clock is one-sided noisy: the
# converter keeps the minimum ns/op (and the maximum allocs/op) across
# the repeats, which is far more stable than any single run. The
# parallel decision-path benchmarks additionally sweep -cpu 1,2,4 so
# BENCH_overhaul.json records the scaling curve (as Name/cpus=N keys).
BENCHFLAGS = -benchtime=2000x -count=5 -benchmem -run='^$$'

bench:
	$(GO) test -bench=. $(BENCHFLAGS) ./... > bench.out
	$(GO) test -bench='^BenchmarkParallel' -cpu=1,2,4 $(BENCHFLAGS) ./internal/kernel >> bench.out
	@cat bench.out
	$(GO) run ./cmd/overhaul-benchjson -in bench.out -out BENCH_overhaul.json
	@rm -f bench.out

# Regression gate: re-measure and compare against the committed
# baseline. Fails on >25 % ns/op or any allocs/op regression on the
# gated benchmarks (see overhaul-benchjson -diff). Blocking in CI:
# the noise a shared runner adds is absorbed by min-of-count=5 wall
# clock, the 25 % ns budget, a 10 ns absolute noise floor (a relative
# budget on a sub-ns row like an unattached probe hook gates timer
# jitter, not code), and alloc-only gating of oversubscribed -cpu rows
# and the sub-100ns / syscall-bound BenchmarkStore rows.
# A PR that deliberately trades decision-path performance carries the
# `skip-bench-gate` label and refreshes the baseline via `make bench`
# in the same change.
bench-compare:
	$(GO) test -bench=. $(BENCHFLAGS) ./... > bench.out
	$(GO) test -bench='^BenchmarkParallel' -cpu=1,2,4 $(BENCHFLAGS) ./internal/kernel >> bench.out
	$(GO) run ./cmd/overhaul-benchjson -in bench.out -diff BENCH_overhaul.json
	@rm -f bench.out

# Fleet smoke: a short open-loop load run over 256 sessions whose
# JSON report must satisfy the same checker that gates
# BENCH_overhaul.json, plus one render of the fleet dashboard.
fleet:
	$(GO) run ./cmd/overhaul-load -sessions 256 -duration 2s -json > fleet-load.json
	$(GO) run ./cmd/overhaul-benchjson -check fleet-load.json
	@rm -f fleet-load.json
	$(GO) run ./cmd/overhaul-top -fleet 64 -mix bot-storm > /dev/null

# Short fuzz pass over the stamp-propagation invariants, the devfs
# helper protocol codec, the audit-store segment codecs (v1 JSONL and
# v2 binary frames), and the probe spec compiler (parse → String →
# parse round trip).
fuzz:
	$(GO) test ./internal/ipc -run='^$$' -fuzz='^FuzzMsgQueueStampPropagation$$' -fuzztime=10s
	$(GO) test ./internal/ipc -run='^$$' -fuzz='^FuzzShmStampPropagation$$' -fuzztime=10s
	$(GO) test ./internal/devfs -run='^$$' -fuzz='^FuzzMappingCodec$$' -fuzztime=10s
	$(GO) test ./internal/auditstore -run='^$$' -fuzz='^FuzzSegmentDecode$$' -fuzztime=10s
	$(GO) test ./internal/auditstore -run='^$$' -fuzz='^FuzzBinarySegmentDecode$$' -fuzztime=10s
	$(GO) test ./internal/probe -run='^$$' -fuzz='^FuzzProbeSpec$$' -fuzztime=10s

# Seeded chaos campaigns: all fault kinds armed, plus the mid-session
# channel-kill scenario. Deterministic — a failure reproduces from the
# seed printed in the output.
chaos:
	$(GO) run ./cmd/overhaul-chaos -seed 42 -steps 250 -faults default
	$(GO) run ./cmd/overhaul-chaos -seed 42 -steps 160 -faults default -kill 80
	$(GO) run ./cmd/overhaul-chaos -seed 7 -steps 160 -faults default -kill 40 -reconnect 90

# Durable-store smoke: a chaos campaign appends its audit stream into a
# store while store faults tear writes and crash rotations/compactions,
# then overhaul-top reopens the directory cold and queries it — the
# full append-under-chaos → kill → reopen → query loop. Deterministic:
# the seed fixes the fault schedule and the expected record count.
STOREDIR = /tmp/overhaul-store-smoke
store:
	rm -rf $(STOREDIR)
	$(GO) run ./cmd/overhaul-chaos -seed 11 -steps 200 -store $(STOREDIR) \
		-faults 'default,auditstore.append:error:prob=0.05,auditstore.batch:error:prob=0.02,auditstore.batch:crash:prob=0.01,auditstore.rotate:crash:after=3:count=1,auditstore.compact:crash:after=1:count=1'
	$(GO) run ./cmd/overhaul-top -store $(STOREDIR) -verdict deny -limit 10
	$(GO) run ./cmd/overhaul-top -store $(STOREDIR) -cold -verdict deny -limit 10
	$(GO) run ./cmd/overhaul-top -store $(STOREDIR) -since 5m -json > /dev/null
	rm -rf $(STOREDIR)
	$(GO) run ./cmd/overhaul-load -sessions 128 -duration 2s -store $(STOREDIR) -json > store-load.json
	$(GO) run ./cmd/overhaul-benchjson -check store-load.json
	@rm -f store-load.json
	rm -rf $(STOREDIR)

# Probe multiview overhead report: every probe-hooked hot path timed in
# three modes (probes off, attached-idle, attached-matching + full
# telemetry). -gate fails if any benchmark's off→idle overhead exceeds
# the 10% budget (with a 10ns/op absolute floor for sub-noise deltas);
# the JSON must satisfy the same checker that gates BENCH_overhaul.json.
multiview:
	$(GO) run ./cmd/overhaul-multiview -k 3 -ops 5000 -json multiview.json -html multiview.html -gate
	$(GO) run ./cmd/overhaul-benchjson -check multiview.json
	@rm -f multiview.json multiview.html

ci: fmt build vet lint race bench fleet fuzz chaos store multiview
	$(GO) run ./cmd/overhaul-benchjson -check BENCH_overhaul.json
