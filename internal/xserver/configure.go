package xserver

import "fmt"

// Geometry describes a window's position and size.
type Geometry struct {
	X, Y, W, H int
}

// ConfigureWindow moves and/or resizes a window (the core X
// ConfigureWindow request). Movement does not reset the visibility
// clock: the clickjacking defence keys on how long the window has been
// *visible*, and a moving window stays visible — but it does let a
// malicious client teleport a long-mapped window under the cursor, which
// is why the defence alone cannot stop all interaction stealing (the
// paper's residual mimicry caveat, §III-E).
func (c *Client) ConfigureWindow(id WindowID, g Geometry) error {
	if !c.alive() {
		return ErrDisconnected
	}
	if g.W <= 0 || g.H <= 0 {
		return fmt.Errorf("configure window %d: %dx%d: %w", id, g.W, g.H, ErrBadMatch)
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("configure window %d: %w", id, ErrBadAccess)
	}
	w.x, w.y, w.w, w.h = g.X, g.Y, g.W, g.H
	return nil
}

// WindowGeometry returns a window's current geometry (any client may
// query it, as in X).
func (c *Client) WindowGeometry(id WindowID) (Geometry, error) {
	if !c.alive() {
		return Geometry{}, ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return Geometry{}, err
	}
	return Geometry{X: w.x, Y: w.y, W: w.w, H: w.h}, nil
}

// HardwareMotion injects physical pointer motion at (x, y). Motion is
// dispatched like clicks but — following the paper's prototype, which
// correlates *discrete* interactions (clicks, key presses) — it produces
// no interaction notification: hovering is not intent.
func (s *Server) HardwareMotion(x, y int) WindowID {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.HardwareEvents++
	w := s.topWindowAt(x, y)
	if w == nil {
		return Root
	}
	w.owner.deliver(Event{
		Type:       MotionNotify,
		Window:     w.id,
		Time:       now,
		Provenance: FromHardware,
		X:          x,
		Y:          y,
	})
	return w.id
}

// HardwareKeyRelease injects a physical key release to the focus window.
// Releases complete the press-release pair but only the press counts as
// the interaction.
func (s *Server) HardwareKeyRelease(key string) WindowID {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.HardwareEvents++
	if s.focus == Root {
		return Root
	}
	w, err := s.lookupWindow(s.focus)
	if err != nil || !w.mapped {
		return Root
	}
	w.owner.deliver(Event{
		Type:       KeyRelease,
		Window:     w.id,
		Time:       now,
		Provenance: FromHardware,
		Key:        key,
	})
	return w.id
}
