package auditstore

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Cold segment scans: query a store directory without opening a
// FileStore (no in-memory index is built, no active segment is
// adopted). The sealed-segment footers drive two prunings a warm Scan
// gets from the memory index: a whole segment whose sentinel
// prefix-maximum time predates a Since bound is skipped without
// decoding a single frame, and within the first segment that straddles
// the bound the block index seeks the starting frame. This is the
// forensics path — overhaul-top -store -cold — where a trail is read
// once and building the full index first would dominate the query.

// ColdStats reports what a ScanSegments pass did.
type ColdStats struct {
	// Segments is the number of segment files seen; SegmentsV1 and
	// SegmentsV2 split them by format.
	Segments   int `json:"segments"`
	SegmentsV1 int `json:"segments_v1"`
	SegmentsV2 int `json:"segments_v2"`
	// SkippedSegments counts segments pruned whole by their footer's
	// time bound; SeekedSegments counts segments entered mid-stream
	// through the block index.
	SkippedSegments int `json:"skipped_segments"`
	SeekedSegments  int `json:"seeked_segments"`
	// Records is the number of records decoded (not the number
	// matched); Matched counts records handed to yield.
	Records int `json:"records"`
	Matched int `json:"matched"`
	// Truncated reports damage in the newest-seen file, mirroring the
	// warm path's Recovery report.
	Truncated     bool   `json:"truncated,omitempty"`
	TruncatedFile string `json:"truncated_file,omitempty"`
	Reason        string `json:"reason,omitempty"`
}

// coldSeg is one segment's lazily-decoded cold-scan state.
type coldSeg struct {
	name string
	id   uint64
	v1   bool

	data    []byte       // raw v2 bytes, kept when the footer lets us stream
	entries []blockEntry // intact footer index, nil otherwise
	recs    []Record     // eagerly decoded records (v1, or v2 without footer)
	trunc   *Truncation

	first, last uint64 // sequence range (valid when count > 0)
	count       int
	maxT        int64 // max record-time nanos, math.MinInt64 when unknown/none
}

// loadColdSeg reads one segment file and extracts merge metadata as
// cheaply as the format allows: a sealed v2 segment yields its range
// and time bound from the footer alone; everything else is decoded.
func loadColdSeg(path string, id uint64, v1 bool) (coldSeg, error) {
	s := coldSeg{name: filepath.Base(path), id: id, v1: v1, maxT: math.MinInt64}
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if !v1 && len(data) >= len(segMagicV2) && string(data[:len(segMagicV2)]) == segMagicV2 {
		if entries := parseFooter(data); len(entries) >= 2 {
			// Sentinel entry: seq is one past the last record, maxBefore
			// is the whole-segment prefix maximum. Intra-segment
			// sequences are contiguous, so the footer alone gives the
			// range without touching a frame.
			sent := entries[len(entries)-1]
			s.data = data
			s.entries = entries
			s.first = entries[0].seq
			s.last = sent.seq - 1
			s.count = int(s.last - s.first + 1)
			s.maxT = sent.maxBefore
			return s, nil
		}
	}
	if v1 {
		s.recs, _, s.trunc = DecodeSegment(data)
	} else {
		s.recs, _, s.trunc = DecodeBinarySegment(data)
	}
	if n := len(s.recs); n > 0 {
		s.first, s.last, s.count = s.recs[0].Seq, s.recs[n-1].Seq, n
		for i := range s.recs {
			if tn, ok, err := timeNanos(s.recs[i].Time); ok && err == nil && tn > s.maxT {
				s.maxT = tn
			}
		}
	}
	return s, nil
}

// ScanSegments streams the records of a store directory matching q
// into yield without opening the store, using sealed-segment footers
// to prune and seek (see the package comment above). Merge semantics
// mirror recovery: segments are visited in ascending first-sequence
// order, overlapping records deduplicate to their first occurrence,
// and a sequence gap ends the readable prefix. yield returning false
// stops the scan early.
func ScanSegments(dir string, q Query, yield func(Record) bool) (ColdStats, error) {
	var stats ColdStats
	names, err := os.ReadDir(dir)
	if err != nil {
		return stats, fmt.Errorf("auditstore: cold scan: %w", err)
	}
	var segs []coldSeg
	for _, de := range names {
		id, v1, ok := parseSegID(de.Name())
		if !ok {
			continue
		}
		s, err := loadColdSeg(filepath.Join(dir, de.Name()), id, v1)
		if err != nil {
			return stats, fmt.Errorf("auditstore: cold scan: %w", err)
		}
		stats.Segments++
		if v1 {
			stats.SegmentsV1++
		} else {
			stats.SegmentsV2++
		}
		if s.count > 0 || s.trunc != nil {
			segs = append(segs, s)
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		a, b := segs[i], segs[j]
		if a.first != b.first {
			return a.first < b.first
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.v1 && !b.v1
	})

	sinceN, sinceSet, err := timeNanos(q.Since)
	if err != nil {
		sinceSet = false // out-of-range bound: fall back to plain filtering
	}
	var (
		nextSeq uint64
		stop    bool
	)
	emit := func(r *Record) bool {
		if nextSeq != 0 && r.Seq < nextSeq {
			return true // overlap: first occurrence already emitted
		}
		if nextSeq != 0 && r.Seq > nextSeq {
			stop = true // gap: the trail ends at the last contiguous record
			return false
		}
		nextSeq = r.Seq + 1
		stats.Records++
		if !q.Matches(*r) {
			return true
		}
		stats.Matched++
		if !yield(*r) {
			stop = true
			return false
		}
		if q.Limit > 0 && stats.Matched >= q.Limit {
			stop = true
			return false
		}
		return true
	}
	for _, s := range segs {
		if stop {
			break
		}
		if s.count == 0 {
			if s.trunc != nil {
				stats.Truncated = true
				stats.TruncatedFile = s.name
				stats.Reason = s.trunc.Reason
			}
			continue
		}
		if nextSeq != 0 && s.last < nextSeq {
			continue // fully duplicated by an earlier segment
		}
		if nextSeq != 0 && s.first > nextSeq {
			break // gap between segments: the readable prefix ends
		}
		first := s.first
		if nextSeq != 0 {
			first = nextSeq
		}
		if sinceSet && s.entries != nil && s.maxT < sinceN {
			// Every record in this sealed segment predates the bound:
			// skip it whole, no frame decoded.
			stats.SkippedSegments++
			nextSeq = s.last + 1
			continue
		}
		if s.recs != nil {
			for i := range s.recs {
				if !emit(&s.recs[i]) {
					break
				}
			}
		} else {
			start := len(segMagicV2)
			if sinceSet {
				if off, ok := seekBlock(s.entries, q.Since); ok {
					// The skipped prefix provably predates Since; account
					// for it in the dedup cursor without decoding it.
					start = int(off)
					stats.SeekedSegments++
					// Only ever raise the dedup cursor: an overlapping
					// earlier segment may already have emitted past the
					// block boundary we seeked to.
					if bs := blockFirstSeq(s.entries, off, first); bs > nextSeq {
						nextSeq = bs
					}
				}
			}
			_, trunc := streamFrames(s.data, start, func(r *Record, _ int) bool {
				return emit(r)
			})
			if trunc != nil {
				// A sealed footer was intact at load time; damage here
				// means the file changed under us. Surface it.
				stats.Truncated = true
				stats.TruncatedFile = s.name
				stats.Reason = trunc.Reason
				break
			}
		}
		if !stop && s.trunc != nil {
			stats.Truncated = true
			stats.TruncatedFile = s.name
			stats.Reason = s.trunc.Reason
		}
	}
	return stats, nil
}

// blockFirstSeq returns the sequence number of the first frame at byte
// offset off per the block index, falling back to first when the
// offset is not an indexed block boundary.
func blockFirstSeq(entries []blockEntry, off uint64, first uint64) uint64 {
	for _, e := range entries {
		if e.off == off {
			return e.seq
		}
	}
	return first
}

// SegmentsNewest returns the newest record time in a store directory,
// reading only footers where possible — what a relative -since bound
// (e.g. "5m") is anchored to on the cold path.
func SegmentsNewest(dir string) (time.Time, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return time.Time{}, fmt.Errorf("auditstore: cold scan: %w", err)
	}
	newest := int64(math.MinInt64)
	for _, de := range names {
		id, v1, ok := parseSegID(de.Name())
		if !ok {
			continue
		}
		s, err := loadColdSeg(filepath.Join(dir, de.Name()), id, v1)
		if err != nil {
			return time.Time{}, fmt.Errorf("auditstore: cold scan: %w", err)
		}
		if s.maxT > newest {
			newest = s.maxT
		}
	}
	if newest == math.MinInt64 {
		return time.Time{}, nil
	}
	return time.Unix(0, newest).UTC(), nil
}
