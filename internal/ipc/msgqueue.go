package ipc

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// QueueFlavor selects the message-queue semantics.
type QueueFlavor int

// Queue flavors. POSIX queues deliver highest-priority-first; SysV
// queues deliver FIFO with an optional receive-by-type filter.
const (
	FlavorPOSIX QueueFlavor = iota + 1
	FlavorSysV
)

// String names the flavor.
func (f QueueFlavor) String() string {
	switch f {
	case FlavorPOSIX:
		return "posix"
	case FlavorSysV:
		return "sysv"
	default:
		return fmt.Sprintf("QueueFlavor(%d)", int(f))
	}
}

// DefaultQueueCapacity bounds queued messages, mirroring msg_max.
const DefaultQueueCapacity = 1024

// queuedMsg is one message in flight.
type queuedMsg struct {
	key  int // POSIX priority or SysV mtype
	data []byte
	seq  uint64
}

// MsgQueue is a POSIX or SysV message queue with Overhaul stamp
// propagation. It is safe for concurrent use.
type MsgQueue struct {
	st     Stamps
	flavor QueueFlavor

	// ts synchronizes itself with atomics; it is not guarded by mu.
	ts carrier

	mu      sync.Mutex
	msgs    []queuedMsg
	nextSeq uint64
	cap     int
	removed bool
}

// NewMsgQueue creates a queue of the given flavor. capacity <= 0 selects
// DefaultQueueCapacity.
func NewMsgQueue(st Stamps, flavor QueueFlavor, capacity int) *MsgQueue {
	if capacity <= 0 {
		capacity = DefaultQueueCapacity
	}
	return &MsgQueue{st: st, flavor: flavor, cap: capacity}
}

// Flavor returns the queue's semantics flavor.
func (q *MsgQueue) Flavor() QueueFlavor { return q.flavor }

// Send enqueues a message on behalf of pid. key is the POSIX priority
// or the SysV mtype (must be positive for SysV, as for msgsnd).
func (q *MsgQueue) Send(pid int, key int, data []byte) error {
	if q.flavor == FlavorSysV && key <= 0 {
		return fmt.Errorf("msgsnd: mtype %d must be positive", key)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.removed {
		return fmt.Errorf("msg send: %w", ErrClosedPipe)
	}
	if len(q.msgs) >= q.cap {
		return fmt.Errorf("msg send: %w", ErrFull)
	}
	q.ts.onSend(q.st, pid)
	msg := queuedMsg{key: key, seq: q.nextSeq, data: make([]byte, len(data))}
	copy(msg.data, data)
	q.nextSeq++
	q.msgs = append(q.msgs, msg)
	return nil
}

// Recv dequeues a message on behalf of pid.
//
// POSIX flavor: filter is ignored; the highest-priority message (FIFO
// within a priority) is returned with its priority.
// SysV flavor: filter == 0 returns the oldest message; filter > 0
// returns the oldest message of exactly that mtype.
func (q *MsgQueue) Recv(pid int, filter int) (key int, data []byte, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.msgs) == 0 {
		if q.removed {
			return 0, nil, fmt.Errorf("msg recv: %w", ErrClosedPipe)
		}
		return 0, nil, fmt.Errorf("msg recv: %w", ErrEmpty)
	}

	idx := -1
	switch q.flavor {
	case FlavorPOSIX:
		best := -1
		for i, m := range q.msgs {
			if best == -1 || m.key > q.msgs[best].key ||
				(m.key == q.msgs[best].key && m.seq < q.msgs[best].seq) {
				best = i
			}
		}
		idx = best
	case FlavorSysV:
		for i, m := range q.msgs {
			if filter == 0 || m.key == filter {
				idx = i
				break
			}
		}
	}
	if idx == -1 {
		return 0, nil, fmt.Errorf("msg recv mtype %d: %w", filter, ErrEmpty)
	}

	msg := q.msgs[idx]
	q.msgs = append(q.msgs[:idx], q.msgs[idx+1:]...)
	q.ts.onRecv(q.st, pid)
	return msg.key, msg.data, nil
}

// Len returns the number of queued messages.
func (q *MsgQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}

// Remove marks the queue removed (msgctl IPC_RMID / mq_unlink). Pending
// messages are discarded.
func (q *MsgQueue) Remove() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.removed {
		return ErrClosedPipe
	}
	q.removed = true
	q.msgs = nil
	return nil
}

// Keys returns the distinct keys currently queued, sorted (diagnostics).
func (q *MsgQueue) Keys() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	seen := make(map[int]bool)
	for _, m := range q.msgs {
		seen[m.key] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// EmbeddedStamp exposes the queue's carried timestamp.
func (q *MsgQueue) EmbeddedStamp() time.Time { return q.ts.stampValue() }
