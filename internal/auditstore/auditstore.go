// Package auditstore is the durable, queryable audit trail behind the
// Overhaul enforcement stack. The monitor's audit ring and the
// telemetry flight recorder are bounded in-memory structures that
// vanish on restart; at production scale the audit trail *is* the
// product — the record of what was granted, denied, and why is what
// turns an access-control monitor into something that can be
// investigated after the fact.
//
// The package offers one Store interface over two backends:
//
//   - MemStore — an indexed in-memory store ordered by sequence number
//     with secondary pid/verdict/time indexes. Cheap, volatile, and
//     the query engine the durable backend reuses.
//   - FileStore — append-only JSONL segments with length+CRC framing,
//     segment rotation, and compaction of sealed segments. Recovery is
//     fail-closed in the repository's established sense: Open always
//     replays to a consistent, CRC-verified prefix of the pre-crash
//     stream and reports the exact truncation point — never a silent
//     gap.
//
// Records use the same decision schema the flight recorder dumps and
// the auditlog renders (pid, op, verdict, reason, stamp, times), so
// the durable trail, the black-box dump, and the log file cannot
// drift; TestRecordSchemaShared pins the encoding.
//
// Every write seam of the durable backend consults a
// faultinject.Hook: torn segment writes (PointStoreAppend), crashes
// mid-rotation (PointStoreRotate) and mid-compaction
// (PointStoreCompact) are injectable, and the crash-recovery property
// test replays every window.
package auditstore

import (
	"errors"
	"strconv"
	"strings"
	"time"

	"overhaul/internal/monitor"
)

// Sentinel errors.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("auditstore: store closed")
	// ErrSeqMismatch is returned by Append when the record carries a
	// non-zero sequence number that is not the next in the stream.
	ErrSeqMismatch = errors.New("auditstore: append out of sequence")
	// ErrStoreFailed wraps the fault that broke a durable store. Every
	// operation after a torn write or an injected crash fails with it —
	// fail closed — until the directory is reopened and recovered.
	ErrStoreFailed = errors.New("auditstore: store failed, reopen to recover")
)

// Record is one audit-trail entry: the decision schema shared with the
// flight recorder's JSONL dumps and the auditlog rendering. Time is
// the operation time, Stamp the interaction stamp consulted (zero if
// none), Session the fleet tenant that produced the decision (0 for a
// single-desktop monitor).
type Record struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Session  uint64    `json:"session,omitempty"`
	PID      int       `json:"pid"`
	Op       string    `json:"op"`
	Verdict  string    `json:"verdict"`
	Reason   string    `json:"reason"`
	Stamp    time.Time `json:"stamp"` // zero time = no stamp consulted
	Degraded bool      `json:"degraded,omitempty"`
}

// FromDecision converts a monitor decision into the shared record
// schema. Seq is left zero: the store assigns it on append.
func FromDecision(d monitor.Decision, session uint64) Record {
	return Record{
		Time:     d.OpTime,
		Session:  session,
		PID:      d.PID,
		Op:       string(d.Op),
		Verdict:  d.Verdict.String(),
		Reason:   d.Reason,
		Stamp:    d.Stamp,
		Degraded: d.Degraded,
	}
}

// Decision converts the record back to the monitor's decision type.
// Unknown verdict strings yield the zero (invalid) verdict.
func (r Record) Decision() monitor.Decision {
	var v monitor.Verdict
	switch r.Verdict {
	case monitor.VerdictGrant.String():
		v = monitor.VerdictGrant
	case monitor.VerdictDeny.String():
		v = monitor.VerdictDeny
	}
	return monitor.Decision{
		PID:      r.PID,
		Op:       monitor.Op(r.Op),
		OpTime:   r.Time,
		Stamp:    r.Stamp,
		Verdict:  v,
		Reason:   r.Reason,
		Degraded: r.Degraded,
	}
}

// Detail renders the record's decision fields exactly as the flight
// recorder renders a "decision" event — "pid=N op=X verdict: reason".
// TestRecordSchemaShared pins the two byte-for-byte so the durable
// trail and the black-box dump cannot drift.
func (r Record) Detail() string {
	return "pid=" + strconv.Itoa(r.PID) + " op=" + r.Op +
		" " + r.Verdict + ": " + r.Reason
}

// Query selects records from a store. The zero value matches
// everything; Scan always yields in ascending sequence order.
type Query struct {
	// Since keeps records with Time >= Since (zero = unbounded).
	Since time.Time
	// Until keeps records with Time < Until (zero = unbounded).
	Until time.Time
	// PID keeps records for one process (0 = any; pids are >= 1).
	PID int
	// Verdict keeps one verdict class, "grant" or "deny" ("" = any).
	Verdict string
	// Reason keeps records whose reason contains this substring.
	Reason string
	// Session keeps one fleet session's records (0 = any).
	Session uint64
	// Limit caps the number of records yielded (0 = unlimited).
	Limit int
}

// Matches reports whether the record satisfies every filter except
// Limit (which is positional, applied by Scan).
func (q Query) Matches(r Record) bool {
	if !q.Since.IsZero() && r.Time.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !r.Time.Before(q.Until) {
		return false
	}
	if q.PID != 0 && r.PID != q.PID {
		return false
	}
	if q.Verdict != "" && r.Verdict != q.Verdict {
		return false
	}
	if q.Reason != "" && !strings.Contains(r.Reason, q.Reason) {
		return false
	}
	if q.Session != 0 && r.Session != q.Session {
		return false
	}
	return true
}

// Store is the backend-neutral audit-trail interface: the monitor, a
// fleet session, and the chaos runner all sink into it, and the query
// path reads from it, without knowing which backend is behind.
type Store interface {
	// Append adds one record to the stream and returns its assigned
	// sequence number (sequences are contiguous from 1). A record
	// carrying a non-zero Seq must carry exactly the next sequence
	// number, or the append fails with ErrSeqMismatch.
	Append(Record) (uint64, error)
	// Get returns the record with the given sequence number; ok is
	// false if it is not in the store.
	Get(seq uint64) (Record, bool, error)
	// Scan yields every record matching q in ascending sequence order
	// until the query is exhausted or yield returns false.
	Scan(q Query, yield func(Record) bool) error
	// Count returns the number of records in the store.
	Count() (int, error)
	// Close releases the store. Further operations fail with ErrClosed.
	Close() error
}

// ScanAll collects every record matching q into a slice.
func ScanAll(st Store, q Query) ([]Record, error) {
	var out []Record
	err := st.Scan(q, func(r Record) bool {
		out = append(out, r)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
