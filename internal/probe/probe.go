// Package probe is Overhaul's attachable instrumentation layer,
// modeled on the tracepoint + ring-buffer design of eBPF tracers.
//
// The repository's performance story (ROADMAP item 3, the libMicro
// multiview methodology of SNIPPETS.md Snippet 1) requires observing
// the decision path without taxing it. The probe layer delivers that
// with three pieces:
//
//   - Hook: a named attach point compiled into a hot path (kernel
//     open/decide, monitor evaluate/audit, xserver input, netlink
//     send/recv, fleet dispatch). An unattached hook costs its caller
//     exactly one atomic pointer load; event construction happens only
//     behind an Armed() check.
//
//   - Spec: a small, safe predicate program — match on op kind, pid
//     range, device class, verdict, session ID — compiled from a
//     textual spec ("op=open dev=mic verdict=deny") into a flat,
//     allocation-free matcher. There are no loops and no user code:
//     a probe cannot block, recurse into, or perturb the hot path.
//
//   - Ring: a perf-buffer-like bounded MPSC ring. Publishing is
//     lock-free and never blocks; a full ring drops the event and
//     counts the drop, exactly like a perf buffer under a slow
//     reader. One batched consumer drains it.
//
// A Registry owns the fixed set of hooks and the runtime
// attach/detach/list surface (overhaul-top -probe, overhaul-multiview).
package probe

import (
	"strconv"
	"strings"
	"time"
)

// Kind names the attach point class an event was emitted from.
type Kind uint8

// Event kinds, one per attach point.
const (
	KindNone     Kind = iota
	KindOpen          // kernel.open: the augmented open(2) path
	KindDecide        // kernel.decide: a permission decision record
	KindEvaluate      // monitor.evaluate: the pure policy rule ran
	KindAudit         // monitor.audit: an audit-ring append
	KindInput         // xserver.input: authentic hardware input
	KindSend          // netlink.send: a kernel→user channel message
	KindRecv          // netlink.recv: a user→kernel channel message
	KindDispatch      // fleet.dispatch: one ingress request routed

	kindCount
)

var kindNames = [kindCount]string{
	KindNone: "none", KindOpen: "open", KindDecide: "decide",
	KindEvaluate: "evaluate", KindAudit: "audit", KindInput: "input",
	KindSend: "send", KindRecv: "recv", KindDispatch: "dispatch",
}

// String names the kind ("open", "decide", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// KindOf parses a kind name; KindNone for unknown names ("none" is not
// a parseable kind: every emitted event has one).
func KindOf(s string) Kind {
	for k := KindOpen; k < kindCount; k++ {
		if kindNames[k] == s {
			return k
		}
	}
	return KindNone
}

// Dev names the sensitive-device class of a decision event, mirroring
// the monitor's operation vocabulary op ∈ {copy, paste, scr, mic, cam}
// plus the catch-all device class.
type Dev uint8

// Device classes.
const (
	DevNone   Dev = iota
	DevCopy       // clipboard copy
	DevPaste      // clipboard paste
	DevScreen     // screen capture
	DevMic        // microphone
	DevCam        // camera
	DevOther      // any other sensitive device class

	devCount
)

var devNames = [devCount]string{
	DevNone: "none", DevCopy: "copy", DevPaste: "paste",
	DevScreen: "scr", DevMic: "mic", DevCam: "cam", DevOther: "dev",
}

// String names the device class with the monitor's op spelling.
func (d Dev) String() string {
	if int(d) < len(devNames) {
		return devNames[d]
	}
	return "Dev(" + strconv.Itoa(int(d)) + ")"
}

// DevOf parses a monitor op name ("copy", "paste", "scr", "mic",
// "cam", "dev") into its device class; DevNone for anything else.
func DevOf(s string) Dev {
	for d := DevCopy; d < devCount; d++ {
		if devNames[d] == s {
			return d
		}
	}
	return DevNone
}

// Verdict is a decision outcome carried by an event. VerdictNone marks
// events from attach points that carry no decision (input, send, recv).
type Verdict uint8

// Verdicts.
const (
	VerdictNone Verdict = iota
	VerdictGrant
	VerdictDeny

	verdictCount
)

var verdictNames = [verdictCount]string{
	VerdictNone: "none", VerdictGrant: "grant", VerdictDeny: "deny",
}

// String names the verdict.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "Verdict(" + strconv.Itoa(int(v)) + ")"
}

// VerdictOf parses a verdict name; VerdictNone for anything else.
func VerdictOf(s string) Verdict {
	switch s {
	case "grant":
		return VerdictGrant
	case "deny":
		return VerdictDeny
	default:
		return VerdictNone
	}
}

// Reason is an interned decision-reason code. Events are fixed-size and
// pointer-free so a ring publish is one flat copy; the monitor's reason
// strings are therefore interned to a code at emission time and
// re-rendered by ReasonText. The fixed policy reasons and the stale
// denial round-trip byte-exactly (the stale staleness is recomputed
// from the event's timestamps and δ); only the degraded denial's
// free-form cause is elided.
type Reason uint8

// Reason codes. The text constants below each code are the exact
// monitor strings they intern; the probe ≡ audit oracle property test
// in internal/monitor pins them against the policy's exported
// constants so they cannot drift.
const (
	ReasonNone          Reason = iota
	ReasonForceGrant           // "force-grant (benchmark mode)"
	ReasonObserveOnly          // "observe-only mode"
	ReasonDegraded             // "protection degraded: <cause>" (cause elided)
	ReasonNoSuchProcess        // "no such process"
	ReasonPtraceGuard          // "permissions disabled (ptrace guard)"
	ReasonNoInteraction        // "no recorded user interaction"
	ReasonStampAfterOp         // "interaction at or after operation"
	ReasonWithinDelta          // "within temporal proximity threshold"
	ReasonStale                // "interaction stale by <s> (δ=<d>)"
	ReasonFailClosed           // "transient open failure: fail closed"
	ReasonOther                // any reason string not interned above
)

// The monitor reason vocabulary, duplicated here because the monitor
// imports this package (the oracle test asserts the strings match).
const (
	textForceGrant     = "force-grant (benchmark mode)"
	textObserveOnly    = "observe-only mode"
	textDegradedPrefix = "protection degraded: "
	textNoSuchProcess  = "no such process"
	textPtraceGuard    = "permissions disabled (ptrace guard)"
	textNoInteraction  = "no recorded user interaction"
	textStampAfterOp   = "interaction at or after operation"
	textWithinDelta    = "within temporal proximity threshold"
	textStalePrefix    = "interaction stale by "
	textFailClosed     = "transient open failure: fail closed"
)

// quantizeStale mirrors monitor.QuantizeStale — staleness rounded down
// to two significant figures, the resolution the policy's interned
// stale reasons report. Duplicated for the same reason as the text
// vocabulary above; the oracle test pins the two implementations
// together.
func quantizeStale(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	q := time.Duration(1)
	for d/q >= 100 {
		q *= 10
	}
	return d - d%q
}

// ReasonOf interns a monitor reason string. Fixed reasons map to their
// code; the dynamic degraded and stale reasons map by prefix; anything
// else is ReasonOther. The switch is a handful of length-bucketed
// string compares — cheap enough for an armed hot path, and never run
// on an unarmed one.
func ReasonOf(s string) Reason {
	switch s {
	case "":
		return ReasonNone
	case textForceGrant:
		return ReasonForceGrant
	case textObserveOnly:
		return ReasonObserveOnly
	case textNoSuchProcess:
		return ReasonNoSuchProcess
	case textPtraceGuard:
		return ReasonPtraceGuard
	case textNoInteraction:
		return ReasonNoInteraction
	case textStampAfterOp:
		return ReasonStampAfterOp
	case textWithinDelta:
		return ReasonWithinDelta
	case textFailClosed:
		return ReasonFailClosed
	}
	if strings.HasPrefix(s, textDegradedPrefix) {
		return ReasonDegraded
	}
	if strings.HasPrefix(s, textStalePrefix) {
		return ReasonStale
	}
	return ReasonOther
}

// Event is one probe record: fixed-size and pointer-free, so a ring
// publish is a single flat copy and matching allocates nothing.
//
// TimeNanos and StampNanos are coarse unix-nanosecond timestamps; a
// zero StampNanos means "no interaction stamp" (the zero time.Time is
// normalised to 0 at emission, not to its out-of-range UnixNano).
// Session is 0 outside fleet dispatch. Seq is assigned by the ring at
// publish time (position order), 0 before publication.
type Event struct {
	Seq        uint64
	TimeNanos  int64
	StampNanos int64
	Session    uint64
	PID        int64
	Kind       Kind
	Dev        Dev
	Verdict    Verdict
	Reason     Reason
}

// ReasonText renders the event's interned reason back into the
// monitor's string vocabulary. threshold is δ, needed to reconstruct
// the stale denial's formatted staleness; events whose reason carries
// no dynamic part ignore it.
func (ev Event) ReasonText(threshold time.Duration) string {
	switch ev.Reason {
	case ReasonNone:
		return ""
	case ReasonForceGrant:
		return textForceGrant
	case ReasonObserveOnly:
		return textObserveOnly
	case ReasonDegraded:
		return textDegradedPrefix + "(cause elided)"
	case ReasonNoSuchProcess:
		return textNoSuchProcess
	case ReasonPtraceGuard:
		return textPtraceGuard
	case ReasonNoInteraction:
		return textNoInteraction
	case ReasonStampAfterOp:
		return textStampAfterOp
	case ReasonWithinDelta:
		return textWithinDelta
	case ReasonStale:
		stale := quantizeStale(time.Duration(ev.TimeNanos-ev.StampNanos) - threshold)
		return textStalePrefix + stale.String() + " (δ=" + threshold.String() + ")"
	case ReasonFailClosed:
		return textFailClosed
	default:
		return "(unknown reason)"
	}
}

// Format renders the event as one canonical line:
//
//	<kind> pid=P session=S dev=D verdict=V t=NANOS stamp=NANOS reason=TEXT
//
// This is the byte-comparable form the probe ≡ audit oracle test
// diffs against the audit ring.
func (ev Event) Format(threshold time.Duration) string {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(ev.Kind.String())
	b.WriteString(" pid=")
	b.WriteString(strconv.FormatInt(ev.PID, 10))
	b.WriteString(" session=")
	b.WriteString(strconv.FormatUint(ev.Session, 10))
	b.WriteString(" dev=")
	b.WriteString(ev.Dev.String())
	b.WriteString(" verdict=")
	b.WriteString(ev.Verdict.String())
	b.WriteString(" t=")
	b.WriteString(strconv.FormatInt(ev.TimeNanos, 10))
	b.WriteString(" stamp=")
	b.WriteString(strconv.FormatInt(ev.StampNanos, 10))
	b.WriteString(" reason=")
	b.WriteString(ev.ReasonText(threshold))
	return b.String()
}
