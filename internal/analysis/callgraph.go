package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is the module's static call graph, built from type
// information. Static calls (package functions, concrete methods)
// resolve to their *types.Func; interface calls resolve by method
// name to every module method with that name — the same
// over-approximation the fact tables use, which is the right polarity
// for may-analyses (taint spreads wider, lock-acquisition sets grow,
// findings that depend on the *absence* of a property stay sound).
type CallGraph struct {
	// calls maps a caller's objectKey to the objectKeys of its
	// (resolved) callees, deduplicated.
	calls map[string]map[string]bool
	// methodsByName indexes every module function/method key by bare
	// name, for interface-dispatch resolution.
	methodsByName map[string][]string
	// bodies maps objectKey to the function declaration, so analyzers
	// can walk a resolved callee.
	bodies map[string]*ast.FuncDecl
	// owner maps objectKey to the Package the declaration lives in.
	owner map[string]*Package
}

func newCallGraph() *CallGraph {
	return &CallGraph{
		calls:         make(map[string]map[string]bool),
		methodsByName: make(map[string][]string),
		bodies:        make(map[string]*ast.FuncDecl),
		owner:         make(map[string]*Package),
	}
}

// Callees returns the resolved callee keys of the function with the
// given key.
func (g *CallGraph) Callees(key string) []string {
	var out []string
	for k := range g.calls[key] {
		out = append(out, k)
	}
	return out
}

// Body returns the declaration of a module function by key, or nil
// for functions outside the module.
func (g *CallGraph) Body(key string) *ast.FuncDecl { return g.bodies[key] }

// addDecl registers a declaration under its key.
func (g *CallGraph) addDecl(key string, pkg *Package, fn *ast.FuncDecl) {
	if key == "" {
		return
	}
	g.bodies[key] = fn
	g.owner[key] = pkg
	name := fn.Name.Name
	g.methodsByName[name] = append(g.methodsByName[name], key)
}

// addCall records caller → callee.
func (g *CallGraph) addCall(caller, callee string) {
	if caller == "" || callee == "" {
		return
	}
	set := g.calls[caller]
	if set == nil {
		set = make(map[string]bool)
		g.calls[caller] = set
	}
	set[callee] = true
}

// calleeObject resolves the called function object of a call
// expression using type info: direct calls and concrete method calls
// resolve exactly; calls through interface values return the
// interface method (abstract). ok is false for calls through function
// values, builtins, and type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) (fn *types.Func, abstract bool, ok bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, isFn := info.Uses[fun].(*types.Func); isFn {
			return f, false, true
		}
	case *ast.SelectorExpr:
		if sel, found := info.Selections[fun]; found && sel.Kind() == types.MethodVal {
			f, isFn := sel.Obj().(*types.Func)
			if !isFn {
				return nil, false, false
			}
			_, isIface := sel.Recv().Underlying().(*types.Interface)
			return f, isIface, true
		}
		// Qualified call pkg.F: the selector has no Selection entry,
		// but Uses resolves the Sel ident.
		if f, isFn := info.Uses[fun.Sel].(*types.Func); isFn {
			return f, false, true
		}
	}
	return nil, false, false
}

// resolveCall maps a call expression to the objectKeys of its possible
// module targets: the static target when concrete, or every
// same-named module method for interface dispatch. Non-module targets
// (stdlib) resolve to their key too, so callers can still consult
// facts that will simply be absent.
func (g *CallGraph) resolveCall(info *types.Info, call *ast.CallExpr) []string {
	fn, abstract, ok := calleeObject(info, call)
	if !ok {
		return nil
	}
	if !abstract {
		return []string{objectKey(fn)}
	}
	// Interface dispatch: all module methods sharing the name. The
	// interface method's own key rides along so facts attached to the
	// abstract method (none today) would still resolve.
	targets := append([]string(nil), g.methodsByName[fn.Name()]...)
	return append(targets, objectKey(fn))
}

// buildCallGraph walks every typed package and records declarations
// and resolved calls.
func buildCallGraph(m *Module) *CallGraph {
	g := newCallGraph()
	// Pass 1: declarations, so name-based dispatch sees the whole
	// module before any call resolves.
	for _, pkg := range m.PackagesInDependencyOrder() {
		ti := m.TypeInfoFor(pkg)
		if ti == nil || ti.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			if isTestFile(f.Name) {
				continue
			}
			for _, decl := range f.AST.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, found := ti.Info.Defs[fn.Name]; found {
					g.addDecl(objectKey(obj), pkg, fn)
				}
			}
		}
	}
	// Pass 2: calls.
	for _, pkg := range m.PackagesInDependencyOrder() {
		ti := m.TypeInfoFor(pkg)
		if ti == nil || ti.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			if isTestFile(f.Name) {
				continue
			}
			for _, decl := range f.AST.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, found := ti.Info.Defs[fn.Name]
				if !found {
					continue
				}
				caller := objectKey(obj)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, isCall := n.(*ast.CallExpr)
					if !isCall {
						return true
					}
					for _, callee := range g.resolveCall(ti.Info, call) {
						g.addCall(caller, callee)
					}
					return true
				})
			}
		}
	}
	return g
}
