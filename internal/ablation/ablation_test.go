package ablation

import (
	"testing"
	"time"
)

func TestThresholdSweepPaperFinding(t *testing.T) {
	points, err := ThresholdSweep([]time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second,
	}, 60, 7)
	if err != nil {
		t.Fatalf("ThresholdSweep: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Paper §IV-B: sub-second thresholds falsely revoke permissions;
	// 2 s never does.
	if points[0].FalseDenyRate == 0 {
		t.Fatalf("δ=500ms false-deny = 0, expected misfires: %+v", points[0])
	}
	if points[1].FalseDenyRate == 0 {
		t.Fatalf("δ=1s false-deny = 0, expected some misfires: %+v", points[1])
	}
	if points[2].FalseDenyRate != 0 {
		t.Fatalf("δ=2s false-deny = %.2f, paper saw none", points[2].FalseDenyRate)
	}
	// False-deny rate decreases monotonically with δ; attack window
	// grows with δ.
	if points[0].FalseDenyRate < points[1].FalseDenyRate {
		t.Fatalf("false-deny not decreasing: %+v", points)
	}
	if points[0].AttackWindow > points[2].AttackWindow {
		t.Fatalf("attack window not growing: %+v", points)
	}
}

func TestShmWaitSweepTradeOff(t *testing.T) {
	points, err := ShmWaitSweep([]time.Duration{
		50 * time.Millisecond, 500 * time.Millisecond, 3 * time.Second,
	}, 40, 11)
	if err != nil {
		t.Fatalf("ShmWaitSweep: %v", err)
	}
	// Short waits: more faults, no missed propagation.
	if points[0].FaultsPerKiloWrite <= points[1].FaultsPerKiloWrite {
		t.Fatalf("fault rate not decreasing with wait: %+v", points)
	}
	if points[0].MissedPropagation != 0 {
		t.Fatalf("wait=50ms missed propagation = %.2f, want 0", points[0].MissedPropagation)
	}
	// The paper's 500 ms choice: no missed propagation either.
	if points[1].MissedPropagation != 0 {
		t.Fatalf("wait=500ms missed propagation = %.2f, want 0 (paper's setting)", points[1].MissedPropagation)
	}
	// Waits beyond δ start missing handoffs.
	if points[2].MissedPropagation == 0 {
		t.Fatalf("wait=3s missed propagation = 0, expected misses beyond δ: %+v", points[2])
	}
}

func TestClickjackingDefence(t *testing.T) {
	res, err := Clickjacking(20)
	if err != nil {
		t.Fatalf("Clickjacking: %v", err)
	}
	if res.DefenceOn.Hijacked != 0 {
		t.Fatalf("defence on: %d/%d hijacked, want 0",
			res.DefenceOn.Hijacked, res.DefenceOn.Attempts)
	}
	if res.DefenceOff.Hijacked != res.DefenceOff.Attempts {
		t.Fatalf("defence off: %d/%d hijacked, expected all",
			res.DefenceOff.Hijacked, res.DefenceOff.Attempts)
	}
}

func TestPropagationAblation(t *testing.T) {
	tests := []struct {
		policy  string
		enabled bool
		// expectations
		launcher, browser, cli bool
	}{
		{policy: "P1", enabled: true, launcher: true, browser: true, cli: true},
		{policy: "P2", enabled: true, launcher: true, browser: true, cli: true},
		// Without P1, anything spawned loses its authority: the
		// launcher tool and the CLI tool (fork after pty) break.
		{policy: "P1", enabled: false, launcher: false, browser: true, cli: false},
		// Without P2, IPC carries nothing: the browser tab and the
		// CLI tool (pty before fork) break; the launcher still works.
		{policy: "P2", enabled: false, launcher: true, browser: false, cli: false},
	}
	for _, tt := range tests {
		name := tt.policy + "-on"
		if !tt.enabled {
			name = tt.policy + "-off"
		}
		t.Run(name, func(t *testing.T) {
			res, err := PropagationAblation(tt.policy, tt.enabled)
			if err != nil {
				t.Fatalf("PropagationAblation: %v", err)
			}
			if !res.DirectAppsWork {
				t.Fatal("direct click->open broke; ablation must not affect it")
			}
			if res.LauncherWorks != tt.launcher {
				t.Fatalf("launcher works = %v, want %v", res.LauncherWorks, tt.launcher)
			}
			if res.BrowserWorks != tt.browser {
				t.Fatalf("browser works = %v, want %v", res.BrowserWorks, tt.browser)
			}
			if res.CLIToolWorks != tt.cli {
				t.Fatalf("CLI works = %v, want %v", res.CLIToolWorks, tt.cli)
			}
		})
	}
}

func TestPtraceGuardAblation(t *testing.T) {
	on, err := PtraceGuard(true)
	if err != nil {
		t.Fatalf("PtraceGuard(on): %v", err)
	}
	if on.Injected {
		t.Fatal("guard on: launch-then-inject succeeded")
	}
	off, err := PtraceGuard(false)
	if err != nil {
		t.Fatalf("PtraceGuard(off): %v", err)
	}
	if !off.Injected {
		t.Fatal("guard off: launch-then-inject failed; the attack should work")
	}
}

func TestFormatters(t *testing.T) {
	tp := []ThresholdPoint{{Threshold: time.Second, FalseDenyRate: 0.1, AttackWindow: 0.2}}
	if out := FormatThreshold(tp); out == "" {
		t.Fatal("empty threshold table")
	}
	sp := []ShmWaitPoint{{Wait: time.Second, MissedPropagation: 0.1, FaultsPerKiloWrite: 2}}
	if out := FormatShmWait(sp); out == "" {
		t.Fatal("empty shm table")
	}
}
