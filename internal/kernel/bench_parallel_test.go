package kernel

// Parallel decision-path benchmarks: the sharded process table and the
// monitor's lock-free stamp reads exist so Decide throughput scales
// with cores instead of serializing behind one kernel mutex. Run with
// `-cpu 1,2,4` (make bench does) so BENCH_overhaul.json records the
// scaling curve, not just the single-core cost.

import (
	"sync/atomic"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/fs"
	"overhaul/internal/monitor"
)

// benchProcs is sized well above GOMAXPROCS so concurrent goroutines
// spread across the process-table shards instead of all hammering one.
const benchProcs = 64

// benchKernel boots a bare enforcing kernel with benchProcs stamped
// processes, every one inside δ of the returned operation time.
func benchKernel(b *testing.B) (*Kernel, []int, time.Time) {
	b.Helper()
	clk := clock.NewSimulated()
	k, err := New(clk, fs.New(clk), Config{Monitor: monitor.Config{Enforce: true}})
	if err != nil {
		b.Fatalf("kernel.New: %v", err)
	}
	now := clk.Now()
	pids := make([]int, benchProcs)
	for i := range pids {
		p, err := k.Spawn(SpawnSpec{Name: "bench", Exe: "/usr/bin/bench", Cred: fs.Cred{UID: 1000, GID: 1000}})
		if err != nil {
			b.Fatalf("Spawn: %v", err)
		}
		if err := k.Monitor().Notify(p.PID(), now); err != nil {
			b.Fatalf("Notify: %v", err)
		}
		pids[i] = p.PID()
	}
	return k, pids, now.Add(time.Millisecond)
}

func BenchmarkParallelDecide(b *testing.B) {
	k, pids, opTime := benchKernel(b)
	mon := k.Monitor()
	// Warm every audit shard so the lazily allocated rings don't count.
	for _, pid := range pids {
		mon.Decide(pid, monitor.OpMic, opTime)
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger each goroutine's starting pid so they walk different
		// shards instead of marching in lockstep.
		i := int(next.Add(1)) * 17
		for pb.Next() {
			pid := pids[i%benchProcs]
			i++
			if v := mon.Decide(pid, monitor.OpMic, opTime); v != monitor.VerdictGrant {
				b.Errorf("Decide(%d) = %v, want grant", pid, v)
				return
			}
		}
	})
}

func BenchmarkParallelNotifyDecide(b *testing.B) {
	k, pids, opTime := benchKernel(b)
	mon := k.Monitor()
	for _, pid := range pids {
		mon.Decide(pid, monitor.OpMic, opTime)
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 17
		for pb.Next() {
			pid := pids[i%benchProcs]
			// A strictly increasing notify time per iteration keeps the
			// CAS-max install path live instead of devolving into the
			// "stale stamp, no write" fast path.
			t := opTime.Add(time.Duration(i) * time.Nanosecond)
			i++
			if err := mon.Notify(pid, t); err != nil {
				b.Errorf("Notify(%d): %v", pid, err)
				return
			}
			if v := mon.Decide(pid, monitor.OpMic, t); v != monitor.VerdictGrant {
				b.Errorf("Decide(%d) = %v, want grant", pid, v)
				return
			}
		}
	})
}
