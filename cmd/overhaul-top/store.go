package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"overhaul/internal/auditstore"
)

// storeQuery carries the parsed -since/-pid/-verdict/-reason/-session/
// -limit flags of a store query.
type storeQuery struct {
	since   string
	pid     int
	verdict string
	reason  string
	session uint64
	limit   int
}

// runStoreQuery opens a durable audit store directory and prints the
// records matching the query — the forensics path: no live system, no
// clock, just whatever the store recovered, with the recovery report
// up front when the directory did not decode cleanly.
func runStoreQuery(dir string, q storeQuery, jsonOut bool) int {
	st, err := auditstore.Open(dir, auditstore.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	defer st.Close() //overhaul:allow errdrop read-only query session; nothing to flush

	query := auditstore.Query{
		PID:     q.pid,
		Verdict: q.verdict,
		Reason:  q.reason,
		Session: q.session,
		Limit:   q.limit,
	}
	if q.since != "" {
		since, err := parseSince(st, q.since)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		query.Since = since
	}

	recs, err := auditstore.ScanAll(st, query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Recovery auditstore.Recovery `json:"recovery"`
			Records  []auditstore.Record `json:"records"`
		}{st.Recovery(), recs}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		return 0
	}

	rec := st.Recovery()
	total, err := st.Count()
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	fmt.Printf("== store %s (%d records", dir, total)
	if rec.LastSeq > 0 {
		fmt.Printf(", last seq %d", rec.LastSeq)
	}
	if rec.SegmentsV1 > 0 {
		fmt.Printf(", %d v1 + %d v2 segments", rec.SegmentsV1, rec.SegmentsV2)
	}
	fmt.Print(") ==\n")
	if !rec.Clean {
		fmt.Printf("recovery: truncated at %s:%d (%s); dropped %d records, %d bytes\n",
			rec.TruncatedFile, rec.TruncatedOffset, rec.Reason, rec.DroppedRecords, rec.DroppedBytes)
	}
	for _, r := range recs {
		printRecord(r)
	}
	fmt.Printf("(%d matched)\n", len(recs))
	return 0
}

// runColdQuery answers a store query straight off the sealed segments
// — no FileStore is opened and no in-memory index is built. Footers
// prune whole segments behind a -since bound and seek within the
// segment that straddles it, so a narrow time window over a long trail
// reads a fraction of the frames the warm path would decode.
func runColdQuery(dir string, q storeQuery, jsonOut bool) int {
	query := auditstore.Query{
		PID:     q.pid,
		Verdict: q.verdict,
		Reason:  q.reason,
		Session: q.session,
		Limit:   q.limit,
	}
	if q.since != "" {
		since, err := parseColdSince(dir, q.since)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		query.Since = since
	}

	var recs []auditstore.Record
	stats, err := auditstore.ScanSegments(dir, query, func(r auditstore.Record) bool {
		recs = append(recs, r)
		return true
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Cold    auditstore.ColdStats `json:"cold"`
			Records []auditstore.Record  `json:"records"`
		}{stats, recs}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
		return 0
	}

	fmt.Printf("== store %s (cold: %d segments = %d v1 + %d v2, %d skipped, %d seeked) ==\n",
		dir, stats.Segments, stats.SegmentsV1, stats.SegmentsV2, stats.SkippedSegments, stats.SeekedSegments)
	if stats.Truncated {
		fmt.Printf("truncated: %s (%s)\n", stats.TruncatedFile, stats.Reason)
	}
	for _, r := range recs {
		printRecord(r)
	}
	fmt.Printf("(%d matched of %d decoded)\n", stats.Matched, stats.Records)
	return 0
}

// parseColdSince is parseSince for the cold path: a relative bound is
// anchored to the newest record time found via segment footers.
func parseColdSince(dir, s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return time.Time{}, fmt.Errorf("-since %q: not an RFC3339 time or a duration", s)
	}
	newest, err := auditstore.SegmentsNewest(dir)
	if err != nil {
		return time.Time{}, err
	}
	if newest.IsZero() {
		return time.Time{}, nil // empty store: match nothing either way
	}
	return newest.Add(-d), nil
}

// printRecord renders one record as a console line.
func printRecord(r auditstore.Record) {
	verdict := "DENY "
	if r.Verdict == "grant" {
		verdict = "GRANT"
	}
	sess := ""
	if r.Session != 0 {
		sess = fmt.Sprintf(" session=%d", r.Session)
	}
	degraded := ""
	if r.Degraded {
		degraded = " degraded=1"
	}
	fmt.Printf("  %6d %s %s pid=%d op=%s%s %s%s\n",
		r.Seq, r.Time.Format("15:04:05.000"), verdict, r.PID, r.Op, sess, r.Reason, degraded)
}

// parseSince interprets -since as either an absolute RFC3339 instant
// or a duration counted back from the newest record in the store (the
// store's own timeline — there is no wall clock in a replayed trail).
func parseSince(st auditstore.Store, s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return time.Time{}, fmt.Errorf("-since %q: not an RFC3339 time or a duration", s)
	}
	var newest time.Time
	err = st.Scan(auditstore.Query{}, func(r auditstore.Record) bool {
		if r.Time.After(newest) {
			newest = r.Time
		}
		return true
	})
	if err != nil {
		return time.Time{}, err
	}
	if newest.IsZero() {
		return time.Time{}, nil // empty store: match nothing either way
	}
	return newest.Add(-d), nil
}
