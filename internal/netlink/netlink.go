// Package netlink simulates the Linux netlink facility as used by
// Overhaul: a duplex kernel↔userspace message channel with kernel-side
// peer authentication.
//
// The paper (§IV-B, "Secure communication channel") establishes a
// netlink channel between the kernel permission monitor and the X
// server. Netlink itself does not authenticate; Overhaul's kernel
// instead *introspects* the connecting userspace process — checking that
// its executable is loaded from the well-known, superuser-owned path of
// the X binaries — before trusting it. This package reproduces that
// structure: a Hub lives on the kernel side, userspace processes Connect
// with their PID, and the Hub consults an Authenticator before admitting
// them. Both directions are synchronous calls, mirroring the
// request/response use in the paper (interaction notifications and
// permission queries upward, alert requests downward).
package netlink

import (
	"errors"
	"fmt"
	"sync"

	"overhaul/internal/faultinject"
	"overhaul/internal/telemetry"
)

// Sentinel errors.
var (
	ErrAuthFailed   = errors.New("netlink: peer authentication failed")
	ErrClosed       = errors.New("netlink: connection closed")
	ErrNoHandler    = errors.New("netlink: no handler installed")
	ErrNotConnected = errors.New("netlink: peer not connected")
	ErrDuplicate    = errors.New("netlink: pid already connected")
	// ErrChannelFault marks a message lost to an injected channel
	// fault. Callers treat it like any transport failure: the message
	// did not arrive, and the affected decision path must fail closed.
	ErrChannelFault = errors.New("netlink: channel fault")
)

// Handler processes one message and returns a reply.
type Handler func(msg any) (any, error)

// Authenticator decides whether the process with the given PID may
// connect. The kernel's implementation introspects the process's
// executable path and owner, per the paper.
type Authenticator interface {
	AuthenticatePeer(pid int) error
}

// AuthenticatorFunc adapts a function to the Authenticator interface.
type AuthenticatorFunc func(pid int) error

var _ Authenticator = AuthenticatorFunc(nil)

// AuthenticatePeer implements Authenticator.
func (f AuthenticatorFunc) AuthenticatePeer(pid int) error { return f(pid) }

// Stats counts channel activity.
type Stats struct {
	Connects     uint64
	AuthFailures uint64
	UserToKernel uint64
	KernelToUser uint64
	// Fault-injection accounting (zero without an armed hook).
	Dropped    uint64
	Delayed    uint64
	Duplicated uint64
}

// Hub is the kernel endpoint of a netlink family. It is safe for
// concurrent use.
type Hub struct {
	auth Authenticator

	mu            sync.Mutex
	kernelHandler Handler
	conns         map[int]*Conn
	faults        faultinject.Hook
	tel           *telemetry.Recorder
	stats         Stats
}

// NewHub creates a hub whose connections are vetted by auth.
func NewHub(auth Authenticator) (*Hub, error) {
	if auth == nil {
		return nil, errors.New("netlink: nil authenticator")
	}
	return &Hub{auth: auth, conns: make(map[int]*Conn)}, nil
}

// SetKernelHandler installs the handler for userspace→kernel messages.
func (h *Hub) SetKernelHandler(fn Handler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kernelHandler = fn
}

// SetFaultHook installs the fault-injection hook consulted on every
// message in both directions (PointNetlinkUserToKernel and
// PointNetlinkKernelToUser). A nil hook disables injection.
func (h *Hub) SetFaultHook(hook faultinject.Hook) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults = hook
}

// SetTelemetry installs the telemetry recorder consulted for channel
// message counters and fault flight-recorder events. A nil recorder
// (the default) disables instrumentation.
func (h *Hub) SetTelemetry(tel *telemetry.Recorder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tel = tel
}

// applyFault evaluates the channel fault point for one message and
// updates the fault counters. The returned fault tells the caller
// whether to drop (KindError) or double-deliver (KindDuplicate) the
// message; delays have already been realised on the virtual clock by
// the injector.
func (h *Hub) applyFault(p faultinject.Point) faultinject.Fault {
	h.mu.Lock()
	hook := h.faults
	h.mu.Unlock()

	f := faultinject.Eval(hook, p)
	if !f.Injected() {
		return f
	}
	h.mu.Lock()
	tel := h.tel
	switch f.Kind {
	case faultinject.KindError:
		h.stats.Dropped++
	case faultinject.KindDelay:
		h.stats.Delayed++
	case faultinject.KindDuplicate:
		h.stats.Duplicated++
	}
	h.mu.Unlock()
	if tel.Enabled() {
		tel.Add("netlink", "faults", "point="+string(p)+" kind="+f.Kind.String(), 1)
		if f.Kind == faultinject.KindError {
			// A dropped channel message is exactly the failure the
			// enforcement stack must survive closed; leave the fault
			// point's name in the flight ring so a post-mortem dump
			// shows what the channel lost.
			tel.RecordEvent(telemetry.SpanContext{}, "netlink", "fault",
				"injected fault at "+string(p)+": message dropped")
		}
	}
	return f
}

// Connect authenticates the peer and returns its connection. A given
// PID may hold at most one connection at a time.
func (h *Hub) Connect(pid int, userHandler Handler) (*Conn, error) {
	if err := h.auth.AuthenticatePeer(pid); err != nil {
		h.mu.Lock()
		h.stats.AuthFailures++
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: pid %d: %v", ErrAuthFailed, pid, err)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.conns[pid]; ok {
		return nil, fmt.Errorf("%w: pid %d", ErrDuplicate, pid)
	}
	c := &Conn{hub: h, pid: pid, userHandler: userHandler}
	h.conns[pid] = c
	h.stats.Connects++
	return c, nil
}

// CallUser sends a kernel→userspace message to the connection held by
// pid and returns its reply.
func (h *Hub) CallUser(pid int, msg any) (any, error) {
	h.mu.Lock()
	c, ok := h.conns[pid]
	var fn Handler
	if ok {
		fn = c.userHandler
	}
	h.stats.KernelToUser++
	tel := h.tel
	h.mu.Unlock()
	tel.Add("netlink", "messages", "dir=kernel_to_user", 1)

	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNotConnected, pid)
	}
	if fn == nil {
		return nil, fmt.Errorf("%w: pid %d has no user handler", ErrNoHandler, pid)
	}
	switch f := h.applyFault(faultinject.PointNetlinkKernelToUser); f.Kind {
	case faultinject.KindError:
		return nil, fmt.Errorf("%w: kernel→user pid %d: %w", ErrChannelFault, pid, f.Err)
	case faultinject.KindDuplicate:
		// The message arrives twice; the reply to the first copy is
		// lost in favour of the retransmission's.
		_, _ = fn(msg)
	}
	return fn(msg)
}

// Connected reports whether pid holds a live connection.
func (h *Hub) Connected(pid int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.conns[pid]
	return ok
}

// StatsSnapshot returns a copy of the hub's counters.
func (h *Hub) StatsSnapshot() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

func (h *Hub) drop(pid int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, pid)
}

// Conn is a userspace endpoint.
type Conn struct {
	hub *Hub
	pid int

	mu          sync.Mutex
	userHandler Handler
	closed      bool
}

// PID returns the peer PID this connection was authenticated as.
func (c *Conn) PID() int { return c.pid }

// Call sends a userspace→kernel message and returns the kernel's reply.
func (c *Conn) Call(msg any) (any, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}

	c.hub.mu.Lock()
	fn := c.hub.kernelHandler
	c.hub.stats.UserToKernel++
	tel := c.hub.tel
	c.hub.mu.Unlock()
	tel.Add("netlink", "messages", "dir=user_to_kernel", 1)

	if fn == nil {
		return nil, ErrNoHandler
	}
	switch f := c.hub.applyFault(faultinject.PointNetlinkUserToKernel); f.Kind {
	case faultinject.KindError:
		return nil, fmt.Errorf("%w: user→kernel pid %d: %w", ErrChannelFault, c.pid, f.Err)
	case faultinject.KindDuplicate:
		// Double delivery: the kernel handler runs twice (the monitor's
		// newest-wins stamp semantics make notifications idempotent;
		// duplicated queries simply audit twice). The first reply is
		// superseded by the retransmission's.
		_, _ = fn(msg)
	}
	return fn(msg)
}

// Close tears the connection down. Closing twice returns ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.hub.drop(c.pid)
	return nil
}
