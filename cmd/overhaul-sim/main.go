// Command overhaul-sim runs a scripted desktop session on a freshly
// booted Overhaul machine and prints the resulting timeline: a compact
// demonstration of input-driven access control across devices, screen,
// and clipboard, including an attempted background theft.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"overhaul/internal/auditlog"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	showLog := flag.Bool("log", false, "print /var/log/overhaul.log after the session")
	flag.Parse()

	r, err := scenario.NewRunner()
	if err != nil {
		return err
	}
	res, err := r.Run([]scenario.Step{
		// A normal morning: the user records a voice memo.
		{Kind: scenario.StepLaunch, App: "voice-memo"},
		{Kind: scenario.StepAdvance, D: 2 * time.Second},
		{Kind: scenario.StepClick, App: "voice-memo"},
		{Kind: scenario.StepAdvance, D: 150 * time.Millisecond},
		{Kind: scenario.StepOpenDevice, App: "voice-memo", Device: devfs.ClassMicrophone, Expect: scenario.ExpectGrant},

		// A screenshot, user-initiated.
		{Kind: scenario.StepLaunch, App: "screenshot"},
		{Kind: scenario.StepAdvance, D: 2 * time.Second},
		{Kind: scenario.StepClick, App: "screenshot"},
		{Kind: scenario.StepCapture, App: "screenshot", Expect: scenario.ExpectGrant},

		// Copy in one app, paste in another — both keyboard-driven.
		{Kind: scenario.StepLaunch, App: "editor"},
		{Kind: scenario.StepLaunch, App: "terminal"},
		{Kind: scenario.StepAdvance, D: 2 * time.Second},
		{Kind: scenario.StepType, App: "editor", Key: "ctrl+c"},
		{Kind: scenario.StepCopy, App: "editor", Expect: scenario.ExpectGrant},
		{Kind: scenario.StepType, App: "terminal", Key: "ctrl+v"},
		{Kind: scenario.StepPaste, App: "terminal", Expect: scenario.ExpectGrant},

		// Meanwhile, a background process tries everything and fails.
		{Kind: scenario.StepLaunchHeadless, App: "update-helper"},
		{Kind: scenario.StepAdvance, D: 30 * time.Second},
		{Kind: scenario.StepOpenDevice, App: "update-helper", Device: devfs.ClassMicrophone, Expect: scenario.ExpectDeny},
		{Kind: scenario.StepOpenDevice, App: "update-helper", Device: devfs.ClassCamera, Expect: scenario.ExpectDeny},
		{Kind: scenario.StepExpectAlerts, Alerts: 2}, // two blocked-attempt alerts

		// The voice memo's permission has long expired too.
		{Kind: scenario.StepOpenDevice, App: "voice-memo", Device: devfs.ClassMicrophone, Expect: scenario.ExpectDeny},
	})
	fmt.Print(scenario.FormatTimeline(res))
	if err != nil {
		return err
	}
	fmt.Println("\nall expectations held: input-driven access control behaves as published.")

	if *showLog {
		w, err := auditlog.NewWriter(r.System().FS, r.System().Kernel.Monitor())
		if err != nil {
			return err
		}
		if _, err := w.Flush(); err != nil {
			return err
		}
		lines, err := w.Read(fs.Root)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", auditlog.Path)
		for _, l := range lines {
			fmt.Println(" ", l)
		}
	}
	return nil
}
