// Package faultinject provides deterministic, seeded fault injection
// for the trust seams of the Overhaul system.
//
// The paper's security argument (§III, S1–S4) silently assumes the
// trusted components — the kernel permission monitor, the netlink
// channel, the devfs helper, the alert engine — never fail. A
// production deployment cannot assume that, and the repository's
// answer to component failure is pinned here: every seam must *fail
// closed* (a decision path that cannot complete denies; a broken
// channel blocks devices rather than unguarding them) and every
// degradation must be observable (a distinct alert, an audit record).
//
// The package is deliberately dependency-light: it knows nothing about
// the components it breaks. Components declare named fault Points at
// their seams and consult an injected Hook; the seeded Injector decides
// — deterministically, given the seed and the evaluation order — which
// evaluations actually inject. Campaigns driven by a virtual clock are
// therefore fully reproducible from their seed: the same seed yields a
// byte-identical fault schedule, decision log, and audit log (see
// internal/faultinject/chaos).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"overhaul/internal/clock"
)

// Point names one fault point at a trust seam. The constants below are
// the complete vocabulary; components evaluate exactly one point per
// seam crossing so schedules stay interpretable.
type Point string

// Fault points threaded through the system's trust seams.
const (
	// PointNetlinkUserToKernel covers userspace→kernel netlink
	// messages (interaction notifications, permission queries).
	// Injectable: drop, delay, duplicate.
	PointNetlinkUserToKernel Point = "netlink.user_to_kernel"
	// PointNetlinkKernelToUser covers kernel→userspace netlink
	// messages (alert requests). Injectable: drop, delay, duplicate.
	PointNetlinkKernelToUser Point = "netlink.kernel_to_user"
	// PointDevfsPush covers the trusted helper's mapping pushes to the
	// kernel. Injectable: error (push fails; the helper rolls the
	// device node back — an unmapped node must not exist).
	PointDevfsPush Point = "devfs.push_mapping"
	// PointDevfsCrash covers the helper process itself, evaluated
	// between protocol steps of Attach/Detach. Injectable: crash (the
	// helper dies mid-protocol and must be restarted).
	PointDevfsCrash Point = "devfs.helper_crash"
	// PointStampWrite covers interaction-stamp writes performed by the
	// IPC propagation protocol. Injectable: error (the write is lost;
	// the receiver keeps its older stamp — fail closed).
	PointStampWrite Point = "ipc.stamp_write"
	// PointShmTimer covers the shared-memory wait-list timer.
	// Injectable: error (timer misfire: the window is treated as
	// already expired, forcing an extra fault — never a skipped one).
	PointShmTimer Point = "ipc.shm_timer"
	// PointAlertRender covers the display server's alert overlay
	// renderer. Injectable: error (the alert cannot be drawn; it is
	// still recorded in the history with RenderFailed set).
	PointAlertRender Point = "xserver.alert_render"
	// PointKernelOpen covers the kernel's open(2) path. Injectable:
	// error (transient I/O error; sensitive-device opens additionally
	// record an audit denial so the failure is never silent).
	PointKernelOpen Point = "kernel.open"
	// PointStoreAppend covers the durable audit store's segment write.
	// Injectable: error (torn write: half the framed line reaches the
	// segment) and crash (the process dies before any byte lands).
	// Either way the store fails closed until reopened.
	PointStoreAppend Point = "auditstore.append"
	// PointStoreRotate covers segment rotation, evaluated at each
	// protocol window (before sealing the active segment; after the
	// seal, before the fresh segment exists). Injectable: crash.
	PointStoreRotate Point = "auditstore.rotate"
	// PointStoreCompact covers compaction of sealed segments, evaluated
	// at each protocol window (before staging; mid-stage with a torn
	// tmp; staged but not renamed; renamed but sources not yet
	// removed). Injectable: crash.
	PointStoreCompact Point = "auditstore.compact"
	// PointStoreBatch covers the audit store's group commit, evaluated
	// at each batch window (drained but not written; written but not
	// acknowledged). Injectable: error (torn mid-batch write: half the
	// batch buffer reaches the segment) and crash (pre-write: the whole
	// batch is lost; post-write: the batch is durable but its appenders
	// never see the acknowledgement). Either way the store fails closed
	// until reopened and no acknowledged record is ever lost.
	PointStoreBatch Point = "auditstore.batch"
	// PointProbeRing covers the probe perf-ring's batched reader.
	// Injectable: error (reader stall: one batch read returns nothing
	// and consumes nothing, so publishers keep filling the ring until
	// overflow turns into counted drops — never into blocking).
	PointProbeRing Point = "probe.ring"
)

// Points returns every known fault point, in stable order.
func Points() []Point {
	return []Point{
		PointNetlinkUserToKernel,
		PointNetlinkKernelToUser,
		PointDevfsPush,
		PointDevfsCrash,
		PointStampWrite,
		PointShmTimer,
		PointAlertRender,
		PointKernelOpen,
		PointStoreAppend,
		PointStoreRotate,
		PointStoreCompact,
		PointStoreBatch,
		PointProbeRing,
	}
}

// knownPoint reports whether p is in the vocabulary.
func knownPoint(p Point) bool {
	for _, q := range Points() {
		if q == p {
			return true
		}
	}
	return false
}

// Kind classifies what an armed fault point injects.
type Kind int

// Fault kinds.
const (
	// KindNone is the zero value: no fault.
	KindNone Kind = iota
	// KindError makes the seam operation fail (message dropped, write
	// lost, render failed, transient I/O error).
	KindError
	// KindDelay delivers the operation late: the injector advances the
	// virtual clock by the rule's Delay before the seam proceeds.
	KindDelay
	// KindDuplicate delivers a message twice (netlink seams only).
	KindDuplicate
	// KindCrash kills a component mid-protocol (devfs helper).
	KindCrash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindCrash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a kind name ("drop" and "fail" alias "error",
// "dup" aliases "duplicate").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "error", "drop", "fail":
		return KindError, nil
	case "delay":
		return KindDelay, nil
	case "duplicate", "dup":
		return KindDuplicate, nil
	case "crash":
		return KindCrash, nil
	default:
		return KindNone, fmt.Errorf("faultinject: unknown fault kind %q", s)
	}
}

// ErrInjected is the base error carried by every injected failure, so
// callers can distinguish injected faults from organic ones with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault is the outcome of evaluating a fault point. The zero value
// means "no fault: proceed".
type Fault struct {
	Point Point
	Kind  Kind
	Err   error         // non-nil for KindError and KindCrash
	Delay time.Duration // KindDelay only
}

// Injected reports whether the evaluation armed a fault.
func (f Fault) Injected() bool { return f.Kind != KindNone }

// Hook evaluates a fault point. Components hold a Hook (usually
// Injector.Eval) and consult it at each seam crossing; a nil Hook never
// injects.
type Hook func(Point) Fault

// Eval evaluates hook nil-safely.
func Eval(h Hook, p Point) Fault {
	if h == nil {
		return Fault{}
	}
	return h(p)
}

// Rule arms one fault point. A point may carry several rules; they are
// evaluated in the order given and the first that fires wins.
type Rule struct {
	Point Point
	Kind  Kind
	// Prob is the per-evaluation injection probability. Values <= 0 or
	// >= 1 mean "always" (deterministic rules never consume RNG).
	Prob float64
	// After skips the first After evaluations of this rule's point.
	After int
	// Count caps the number of injections (0 = unlimited).
	Count int
	// Delay is the virtual-clock delay for KindDelay rules.
	Delay time.Duration
}

// String renders the rule in the ParseRules grammar.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", r.Point, r.Kind)
	if r.Prob > 0 && r.Prob < 1 {
		fmt.Fprintf(&b, ":prob=%g", r.Prob)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ":after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ":count=%d", r.Count)
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ":delay=%s", r.Delay)
	}
	return b.String()
}

// Validate checks the rule against the point vocabulary.
func (r Rule) Validate() error {
	if !knownPoint(r.Point) {
		return fmt.Errorf("faultinject: unknown fault point %q", r.Point)
	}
	if r.Kind == KindNone {
		return fmt.Errorf("faultinject: rule for %s has no fault kind", r.Point)
	}
	if r.Kind == KindDelay && r.Delay <= 0 {
		return fmt.Errorf("faultinject: delay rule for %s needs delay > 0", r.Point)
	}
	if r.After < 0 || r.Count < 0 {
		return fmt.Errorf("faultinject: rule for %s has negative after/count", r.Point)
	}
	return nil
}

// Event records one injection, in evaluation order. Seq is the global
// evaluation sequence number (covering non-injecting evaluations too),
// so schedules from the same seed are comparable position by position.
type Event struct {
	Seq   int           `json:"seq"`
	Point Point         `json:"point"`
	Kind  string        `json:"kind"`
	Delay time.Duration `json:"delay,omitempty"`
}

// String renders "seq point kind [delay]".
func (e Event) String() string {
	if e.Delay > 0 {
		return fmt.Sprintf("%06d %s %s %s", e.Seq, e.Point, e.Kind, e.Delay)
	}
	return fmt.Sprintf("%06d %s %s", e.Seq, e.Point, e.Kind)
}

// ruleState is a Rule plus its evaluation counters.
type ruleState struct {
	Rule
	evals    int
	injected int
}

// Injector is the seeded fault engine. It is safe for concurrent use,
// but determinism additionally requires a deterministic evaluation
// order — single-goroutine campaigns on a virtual clock, as run by the
// chaos package.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rng   *rand.Rand
	clk   *clock.Simulated
	rules map[Point][]*ruleState
	seq   int
	log   []Event
}

// New constructs an injector from a seed and a rule set. Invalid rules
// are rejected.
func New(seed int64, rules ...Rule) (*Injector, error) {
	in := &Injector{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Point][]*ruleState),
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		in.rules[r.Point] = append(in.rules[r.Point], &ruleState{Rule: r})
	}
	return in, nil
}

// Seed returns the injector's seed (for "reproduce with" messages).
func (in *Injector) Seed() int64 { return in.seed }

// SetClock attaches the virtual clock that KindDelay injections
// advance. Without one, delays are recorded but not realised.
func (in *Injector) SetClock(clk *clock.Simulated) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.clk = clk
}

// Eval evaluates the fault point and returns the armed fault, if any.
// It is the Hook components consume. A nil injector never injects.
func (in *Injector) Eval(p Point) Fault {
	if in == nil {
		return Fault{}
	}
	in.mu.Lock()
	in.seq++
	var f Fault
	for _, rs := range in.rules[p] {
		rs.evals++
		if rs.evals <= rs.After {
			continue
		}
		if rs.Count > 0 && rs.injected >= rs.Count {
			continue
		}
		if rs.Prob > 0 && rs.Prob < 1 && in.rng.Float64() >= rs.Prob {
			continue
		}
		rs.injected++
		f = Fault{Point: p, Kind: rs.Kind, Delay: rs.Delay}
		if rs.Kind == KindError || rs.Kind == KindCrash {
			f.Err = fmt.Errorf("%s: %w", p, ErrInjected)
		}
		break
	}
	var clk *clock.Simulated
	if f.Injected() {
		in.log = append(in.log, Event{Seq: in.seq, Point: p, Kind: f.Kind.String(), Delay: f.Delay})
		clk = in.clk
	}
	in.mu.Unlock()

	if f.Kind == KindDelay && clk != nil && f.Delay > 0 {
		// Realise the delay on the virtual clock: the operation
		// completes, late.
		clk.Advance(f.Delay)
	}
	return f
}

// Hook returns in.Eval as a Hook (nil receiver yields a nil Hook).
func (in *Injector) Hook() Hook {
	if in == nil {
		return nil
	}
	return in.Eval
}

// Events returns a copy of the injection log, in evaluation order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// Evaluations returns the total number of fault-point evaluations.
func (in *Injector) Evaluations() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Schedule renders the injection log one event per line — the
// byte-comparable artifact the determinism tests diff.
func (in *Injector) Schedule() string {
	events := in.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountByPoint aggregates injections per point (diagnostics).
func (in *Injector) CountByPoint() map[Point]int {
	events := in.Events()
	out := make(map[Point]int)
	for _, e := range events {
		out[e.Point]++
	}
	return out
}

// FormatCounts renders CountByPoint in stable point order.
func FormatCounts(counts map[Point]int) string {
	keys := make([]string, 0, len(counts))
	for p := range counts {
		keys = append(keys, string(p))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, counts[Point(k)])
	}
	return strings.TrimSpace(b.String())
}

// ParseRules parses a comma-separated rule list, one rule per entry:
//
//	point:kind[:prob=F][:after=N][:count=N][:delay=D]
//
// A bare float option is shorthand for prob (e.g.
// "netlink.user_to_kernel:drop:0.2"). Kind names accept the ParseKind
// aliases. An empty spec yields no rules.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Rule
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("faultinject: rule %q: want point:kind[:options]", entry)
		}
		kind, err := ParseKind(parts[1])
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", entry, err)
		}
		r := Rule{Point: Point(parts[0]), Kind: kind}
		for _, opt := range parts[2:] {
			key, val, found := strings.Cut(opt, "=")
			if !found {
				// Bare float: prob shorthand.
				p, perr := strconv.ParseFloat(opt, 64)
				if perr != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad option %q", entry, opt)
				}
				r.Prob = p
				continue
			}
			switch key {
			case "prob":
				if r.Prob, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad prob %q", entry, val)
				}
			case "after":
				if r.After, err = strconv.Atoi(val); err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad after %q", entry, val)
				}
			case "count":
				if r.Count, err = strconv.Atoi(val); err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad count %q", entry, val)
				}
			case "delay":
				if r.Delay, err = time.ParseDuration(val); err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad delay %q", entry, val)
				}
			default:
				return nil, fmt.Errorf("faultinject: rule %q: unknown option %q", entry, key)
			}
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", entry, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultRules is the standard chaos mix: every fault point armed at a
// moderate probability, the helper crashing once mid-campaign.
func DefaultRules() []Rule {
	return []Rule{
		{Point: PointNetlinkUserToKernel, Kind: KindError, Prob: 0.05},
		{Point: PointNetlinkUserToKernel, Kind: KindDelay, Prob: 0.05, Delay: 30 * time.Millisecond},
		{Point: PointNetlinkUserToKernel, Kind: KindDuplicate, Prob: 0.03},
		{Point: PointNetlinkKernelToUser, Kind: KindError, Prob: 0.05},
		{Point: PointDevfsPush, Kind: KindError, Prob: 0.25},
		{Point: PointDevfsCrash, Kind: KindCrash, After: 2, Count: 1},
		{Point: PointStampWrite, Kind: KindError, Prob: 0.10},
		{Point: PointShmTimer, Kind: KindError, Prob: 0.10},
		{Point: PointAlertRender, Kind: KindError, Prob: 0.10},
		{Point: PointKernelOpen, Kind: KindError, Prob: 0.05},
		{Point: PointProbeRing, Kind: KindError, Prob: 0.25},
	}
}
