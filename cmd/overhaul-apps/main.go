// Command overhaul-apps reproduces the §V-C applicability and
// false-positive assessment: it drives the 58-application device/screen
// pool and the 50-application clipboard pool through their core flows on
// Overhaul machines, reporting breakage, spurious alerts, and known
// limitations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"overhaul/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-apps:", err)
		os.Exit(1)
	}
}

func run() error {
	verbose := flag.Bool("v", false, "print every application result")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	rep, err := workload.RunApplicability()
	if err != nil {
		return err
	}
	if *asJSON {
		clip, err := workload.RunClipboard()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"devicePool": rep, "clipboardPool": clip})
	}

	fmt.Println("Applicability & false-positive assessment (§V-C)")
	fmt.Println()
	if *verbose {
		for _, r := range rep.Results {
			status := "ok"
			if !r.Worked {
				status = "BROKEN"
			}
			extra := ""
			if r.SpuriousAlert {
				extra += " [spurious alert]"
			}
			if r.Limitation != "" {
				extra += " [limitation]"
			}
			fmt.Printf("  %-24s %-20s %s%s\n", r.Spec.Name, r.Spec.Category, status, extra)
		}
		fmt.Println()
	}
	fmt.Printf("Device/screen pool: %d applications tested   (paper: 58)\n", rep.Tested)
	fmt.Printf("  malfunctioning:  %d   (paper: 0)\n", rep.Malfunctioning)
	fmt.Printf("  spurious alerts: %d   (paper: 1 — Skype's camera probe on startup)\n", rep.SpuriousAlerts)
	fmt.Printf("  known limitations (%d):\n", len(rep.Limitations))
	for _, l := range rep.Limitations {
		fmt.Printf("    - %s\n", l)
	}
	fmt.Println()

	clip, err := workload.RunClipboard()
	if err != nil {
		return err
	}
	fmt.Printf("Clipboard pool: %d applications tested   (paper: 50)\n", clip.Tested)
	fmt.Printf("  false positives: %d   (paper: 0)\n", clip.FalsePositives)
	fmt.Printf("  misbehaviour:    %d   (paper: 0)\n", clip.Misbehaviour)
	fmt.Printf("  alerts shown:    %d   (clipboard operations are silent by design)\n", clip.AlertsShown)
	return nil
}
