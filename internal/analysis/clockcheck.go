package analysis

import (
	"go/ast"
)

// clockFuncs are the package time entry points that read or depend on
// the wall clock. Pure constructors (time.Date, time.Duration
// arithmetic, parsing, formatting) are fine: they are deterministic.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// clockExemptDirs may touch the wall clock: internal/clock is the one
// place the clock.Clock interface is implemented over time.Now.
var clockExemptDirs = map[string]bool{
	"internal/clock": true,
}

// Clockcheck enforces the single-clock invariant: Overhaul's access
// decisions compare interaction timestamps against "now" within the
// δ=2 s window (paper §III-C), which is only meaningful when every
// subsystem reads the same clock. Any direct time.Now/Sleep/After/...
// call outside internal/clock bypasses the injectable clock.Clock and
// makes simulations nondeterministic, so it is flagged. Wall-clock
// benchmark timing is legitimate but must be explicitly allowlisted
// with //overhaul:allow clockcheck <reason>.
var Clockcheck = &Analyzer{
	Name: "clockcheck",
	Doc: "direct wall-clock reads outside internal/clock break simulation " +
		"determinism; inject a clock.Clock instead",
	Run: runClockcheck,
}

func runClockcheck(pass *Pass) {
	if clockExemptDirs[pass.Pkg.Dir] {
		return
	}
	for _, f := range pass.Pkg.Files {
		timeName := importName(f.AST, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qual, name, ok := selectorCall(call)
			if !ok || qual != timeName || !clockFuncs[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to time.%s outside internal/clock: route through an injected clock.Clock (or annotate benchmark timing with %s)",
				name, AllowPrefix)
			return true
		})
	}
}
