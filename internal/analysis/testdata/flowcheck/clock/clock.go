// Package clock is the fixture's single injectable time source,
// mirroring overhaul/internal/clock.
package clock

import "time"

// Clock is the only sanctioned way to read time.
type Clock interface {
	Now() time.Time
}

// Simulated is a trivial deterministic clock.
type Simulated struct {
	T time.Time
}

// Now returns the simulated instant.
func (s *Simulated) Now() time.Time { return s.T }
