// Spyware-blocked: the §V-D malware sample on both machines — on the
// Overhaul machine every theft attempt fails and blocked device grabs
// raise alerts; on the unmodified machine the same sample steals the
// clipboard, the screen, and microphone audio.
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
	"overhaul/internal/apps"
	"overhaul/internal/malware"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spyware-blocked:", err)
		os.Exit(1)
	}
}

// desktop sets up a victim machine: an editor with a password on the
// clipboard and pixels on screen, plus the installed spyware.
func desktop(enforce bool) (*overhaul.System, *malware.Spyware, *apps.Editor, error) {
	sys, err := overhaul.New(overhaul.Config{Enforce: enforce, AlertSecret: "tabby-cat"})
	if err != nil {
		return nil, nil, nil, err
	}
	mic, err := sys.AttachDevice(overhaul.Microphone)
	if err != nil {
		return nil, nil, nil, err
	}
	ed, err := apps.NewEditor(sys, "editor")
	if err != nil {
		return nil, nil, nil, err
	}
	sys.Settle(2 * time.Second)
	if err := ed.App().Client.Draw(ed.App().Win, []byte("e-banking pixels")); err != nil {
		return nil, nil, nil, err
	}
	if enforce {
		err = ed.Copy([]byte("p@ssw0rd"))
	} else {
		if err = ed.App().Client.SetSelection("CLIPBOARD", ed.App().Win); err == nil {
			err = ed.App().Client.ChangeProperty(ed.App().Win, "_COPY_BUFFER", []byte("p@ssw0rd"))
		}
	}
	if err != nil {
		return nil, nil, nil, err
	}
	spy, err := malware.Install(sys, mic)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, spy, ed, nil
}

func spyRound(sys *overhaul.System, spy *malware.Spyware, ed *apps.Editor) {
	for i := 0; i < 4; i++ {
		spy.StealClipboard(ed.ServePaste)
		spy.StealScreen()
		spy.StealAudio()
		sys.Settle(time.Minute)
	}
}

func run() error {
	fmt.Println("=== Overhaul machine ===")
	sys, spy, ed, err := desktop(true)
	if err != nil {
		return err
	}
	spyRound(sys, spy, ed)
	r := spy.Report()
	fmt.Printf("clipboard %d/%d, screen %d/%d, audio %d/%d stolen\n",
		r.Clipboard.Successes, r.Clipboard.Tries,
		r.Screen.Successes, r.Screen.Tries,
		r.Audio.Successes, r.Audio.Tries)
	for _, a := range sys.X.AlertHistory() {
		fmt.Printf("alert: %q\n", a.Message)
	}

	fmt.Println("\n=== Unmodified machine ===")
	sys2, spy2, ed2, err := desktop(false)
	if err != nil {
		return err
	}
	spyRound(sys2, spy2, ed2)
	r2 := spy2.Report()
	fmt.Printf("clipboard %d/%d, screen %d/%d, audio %d/%d stolen\n",
		r2.Clipboard.Successes, r2.Clipboard.Tries,
		r2.Screen.Successes, r2.Screen.Tries,
		r2.Audio.Successes, r2.Audio.Tries)
	for _, l := range r2.Loot[:3] {
		fmt.Printf("loot: %-10s %q\n", l.Kind, truncate(l.Data, 24))
	}
	return nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
