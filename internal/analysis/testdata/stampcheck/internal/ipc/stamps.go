// Package ipc is a stampcheck fixture mirroring the real internal/ipc
// layout: stamps.go declares the propagation helpers whose names the
// analyzer's reachability search targets.
package ipc

// carrier mimics the real stamp carrier.
type carrier struct{}

func (c *carrier) onSend(pid int)   {}
func (c *carrier) onRecv(pid int)   {}
func (c *carrier) onAccess(pid int) {}
