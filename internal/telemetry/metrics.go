package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metricKey addresses one metric. Labels is a single pre-formed string
// (e.g. "op=mic verdict=grant") rather than a map so that lookups never
// allocate and snapshots order deterministically.
type metricKey struct {
	Subsystem string
	Name      string
	Labels    string
}

// metricsStore is the registry. The mutex guards only the maps (handle
// resolution); the values inside every handle are atomics, so updates
// through an already-resolved handle never touch the lock.
type metricsStore struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*gauge
	hists    map[metricKey]*Histogram
}

func (m *metricsStore) init() {
	m.counters = make(map[metricKey]*Counter)
	m.gauges = make(map[metricKey]*gauge)
	m.hists = make(map[metricKey]*Histogram)
}

// Counter is a pre-resolved handle to one monotonically increasing
// count: the (subsystem, name, labels) map lookup is paid once at
// resolution and every Add after that is two atomic stores. A nil
// handle is a no-op, mirroring the nil-Recorder convention.
type Counter struct {
	rec     *Recorder
	value   atomic.Uint64
	updated atomic.Int64 // unix nanos of last Add; 0 = never
}

// Add increments the counter by delta. Lock-free.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.value.Add(delta)
	// Store-if-changed: under a steady clock the freshness stamp is
	// already right, and skipping the store keeps the cache line clean
	// for concurrent updaters of the same counter.
	if n := c.rec.coarseNanos(); c.updated.Load() != n {
		c.updated.Store(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.value.Load()
}

// gauge is a set-to-latest value.
type gauge struct {
	value   atomic.Int64
	updated atomic.Int64
}

// HistogramBuckets is the fixed latency ladder every histogram uses.
// Fixed buckets keep snapshots comparable across runs and subsystems;
// on the simulated clock most observations land in the first bucket
// unless injected delays or retry backoff advanced virtual time.
var HistogramBuckets = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// histBuckets fixes the ladder length at compile time so handles can
// embed their counts without a per-histogram slice allocation.
const histBuckets = 6

func init() {
	if len(HistogramBuckets) != histBuckets {
		panic("telemetry: histBuckets out of sync with HistogramBuckets")
	}
}

// Histogram is a pre-resolved handle to one fixed-bucket latency
// histogram; Observe is lock-free. counts has one slot per
// HistogramBuckets bound plus a final overflow bucket.
// The observation total is not stored: every Observe lands in exactly
// one bucket, so snapshots derive it by summing the buckets and the
// hot path saves an atomic increment.
type Histogram struct {
	rec     *Recorder
	counts  [histBuckets + 1]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	updated atomic.Int64
}

// Observe records one latency observation. Negative durations clamp to
// zero. Lock-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	idx := len(HistogramBuckets) // overflow
	for i, bound := range HistogramBuckets {
		if d <= bound {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(int64(d))
	if n := h.rec.coarseNanos(); h.updated.Load() != n {
		h.updated.Store(n)
	}
}

// Counter resolves (and on first use creates) the handle for one
// counter. Hot paths should resolve once and hold the handle; the
// resolution itself takes the registry lock.
func (r *Recorder) Counter(subsystem, name, labels string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{Subsystem: subsystem, Name: name, Labels: labels}
	m := &r.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[k]
	if c == nil {
		c = &Counter{rec: r}
		m.counters[k] = c
	}
	return c
}

// Histogram resolves (and on first use creates) the handle for one
// histogram, like Counter.
func (r *Recorder) Histogram(subsystem, name, labels string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{Subsystem: subsystem, Name: name, Labels: labels}
	m := &r.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[k]
	if h == nil {
		h = &Histogram{rec: r}
		m.hists[k] = h
	}
	return h
}

// Add increments the (subsystem, name, labels) counter by delta. The
// string-keyed form for cold paths; hot paths hold a Counter handle.
func (r *Recorder) Add(subsystem, name, labels string, delta uint64) {
	r.Counter(subsystem, name, labels).Add(delta)
}

// Gauge sets the (subsystem, name, labels) gauge to v.
func (r *Recorder) Gauge(subsystem, name, labels string, v int64) {
	if r == nil {
		return
	}
	k := metricKey{Subsystem: subsystem, Name: name, Labels: labels}
	m := &r.metrics
	m.mu.Lock()
	g := m.gauges[k]
	if g == nil {
		g = &gauge{}
		m.gauges[k] = g
	}
	m.mu.Unlock()
	g.value.Store(v)
	g.updated.Store(r.nowNanos())
}

// Observe records one latency observation into the (subsystem, name,
// labels) histogram. Negative durations clamp to zero.
func (r *Recorder) Observe(subsystem, name, labels string, d time.Duration) {
	r.Histogram(subsystem, name, labels).Observe(d)
}

// CounterValue returns the current value of a counter (0 when absent).
func (r *Recorder) CounterValue(subsystem, name, labels string) uint64 {
	if r == nil {
		return 0
	}
	m := &r.metrics
	m.mu.Lock()
	c := m.counters[metricKey{Subsystem: subsystem, Name: name, Labels: labels}]
	m.mu.Unlock()
	return c.Value()
}

// MetricPoint is one metric in a snapshot.
type MetricPoint struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Labels    string `json:"labels,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value carries the counter value or the gauge value.
	Value int64 `json:"value,omitempty"`
	// Histogram fields (Kind "histogram" only). Buckets aligns with
	// HistogramBuckets plus one trailing overflow bucket.
	Buckets []uint64      `json:"buckets,omitempty"`
	Sum     time.Duration `json:"sum_ns,omitempty"`
	Count   uint64        `json:"count,omitempty"`
	// Updated is the (virtual-clock) instant of the last update.
	Updated time.Time `json:"updated"`
}

// updatedTime converts a stored unix-nano timestamp back to an instant.
func updatedTime(n int64) time.Time {
	return time.Unix(0, n).UTC()
}

// MetricsSnapshot returns every metric, sorted by subsystem, name,
// labels, kind — a deterministic order under the simulated clock.
// Handles that were resolved but never updated are omitted: resolving a
// handle up front (as the monitor does for every op×verdict pair) must
// not surface zero-valued series.
func (r *Recorder) MetricsSnapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	m := &r.metrics
	m.mu.Lock()
	out := make([]MetricPoint, 0, len(m.counters)+len(m.gauges)+len(m.hists))
	for k, c := range m.counters {
		up := c.updated.Load()
		if up == 0 {
			continue
		}
		out = append(out, MetricPoint{
			Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
			Kind: "counter", Value: int64(c.value.Load()), Updated: updatedTime(up),
		})
	}
	for k, g := range m.gauges {
		up := g.updated.Load()
		if up == 0 {
			continue
		}
		out = append(out, MetricPoint{
			Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
			Kind: "gauge", Value: g.value.Load(), Updated: updatedTime(up),
		})
	}
	for k, h := range m.hists {
		up := h.updated.Load()
		if up == 0 {
			continue
		}
		buckets := make([]uint64, len(h.counts))
		var total uint64
		for i := range h.counts {
			buckets[i] = h.counts[i].Load()
			total += buckets[i]
		}
		out = append(out, MetricPoint{
			Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
			Kind: "histogram", Buckets: buckets,
			Sum: time.Duration(h.sum.Load()), Count: total,
			Updated: updatedTime(up),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Subsystem != b.Subsystem {
			return a.Subsystem < b.Subsystem
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Labels != b.Labels {
			return a.Labels < b.Labels
		}
		return a.Kind < b.Kind
	})
	return out
}
