package ipc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors shared by the IPC families.
var (
	ErrEmpty      = errors.New("ipc: nothing to read")
	ErrClosedPipe = errors.New("ipc: pipe closed")
	ErrFull       = errors.New("ipc: resource full")
)

// DefaultPipeCapacity matches the Linux default pipe buffer (64 KiB).
const DefaultPipeCapacity = 64 * 1024

// Pipe is an anonymous pipe (also the kernel object behind a FIFO).
// Reads and writes are non-blocking: a write beyond capacity returns
// ErrFull, a read from an empty pipe returns ErrEmpty while the write
// end is open and ErrClosedPipe after it closes. It is safe for
// concurrent use.
type Pipe struct {
	st Stamps

	// ts synchronizes itself with atomics; it is not guarded by mu.
	ts carrier

	mu     sync.Mutex
	buf    []byte
	cap    int
	closed bool
}

// NewPipe creates a pipe. capacity <= 0 selects DefaultPipeCapacity.
func NewPipe(st Stamps, capacity int) *Pipe {
	if capacity <= 0 {
		capacity = DefaultPipeCapacity
	}
	return &Pipe{st: st, cap: capacity}
}

// Write appends data to the pipe on behalf of pid, embedding pid's
// interaction stamp into the pipe (P2 sender half).
func (p *Pipe) Write(pid int, data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, fmt.Errorf("pipe write: %w", ErrClosedPipe)
	}
	if len(p.buf)+len(data) > p.cap {
		return 0, fmt.Errorf("pipe write %d bytes: %w", len(data), ErrFull)
	}
	p.ts.onSend(p.st, pid)
	p.buf = append(p.buf, data...)
	return len(data), nil
}

// Read drains up to len(dst) bytes on behalf of pid, adopting the
// pipe's stamp (P2 receiver half).
func (p *Pipe) Read(pid int, dst []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		if p.closed {
			return 0, fmt.Errorf("pipe read: %w", ErrClosedPipe)
		}
		return 0, fmt.Errorf("pipe read: %w", ErrEmpty)
	}
	n := copy(dst, p.buf)
	p.buf = p.buf[n:]
	p.ts.onRecv(p.st, pid)
	return n, nil
}

// Close closes the write end. Pending data remains readable.
func (p *Pipe) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosedPipe
	}
	p.closed = true
	return nil
}

// Buffered returns the number of unread bytes.
func (p *Pipe) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// EmbeddedStamp exposes the channel's carried timestamp for tests and
// protocol traces.
func (p *Pipe) EmbeddedStamp() time.Time { return p.ts.stampValue() }
