// Command overhaul-chaos runs a seeded fault-injection campaign
// against a freshly booted Overhaul system and reports whether the
// fail-closed invariants held: no grant without a fresh hardware-input
// stamp, and no silent denial without an audit record or a
// protection-degraded alert.
//
// The run is fully deterministic: the seed fixes the fault schedule,
// the operation script and (through the virtual clock) every
// timestamp, so any failure reproduces exactly from the printed seed.
//
// Exit status: 0 when every invariant held, 1 on violations, 2 on
// harness errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"overhaul/internal/faultinject"
	"overhaul/internal/faultinject/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "campaign seed (fault schedule, op script, clock)")
	steps := flag.Int("steps", chaos.DefaultSteps, "number of scripted operations")
	kill := flag.Int("kill", 0, "sever the kernel-X channel before this step (0 = never)")
	reconnect := flag.Int("reconnect", 0, "re-establish the channel before this step (0 = never)")
	faults := flag.String("faults", "default",
		"fault rules: 'default', 'none', or a spec like 'netlink.user_to_kernel:drop:prob=0.1,devfs.helper_crash:crash:after=3'")
	threshold := flag.Duration("threshold", 0, "grant window δ (0 = monitor default)")
	storeDir := flag.String("store", "", "sink the audit stream into a durable store at this directory (queryable with overhaul-top -store)")
	storeSegment := flag.Int("store-segment", 0, "store segment size in records (0 = campaign default)")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON")
	verbose := flag.Bool("v", false, "print the per-step event log")
	flag.Parse()

	rules, err := parseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-chaos:", err)
		return 2
	}

	res, err := chaos.Run(chaos.Campaign{
		Seed:          *seed,
		Steps:         *steps,
		Rules:         rules,
		KillChannelAt: *kill,
		ReconnectAt:   *reconnect,
		Threshold:     *threshold,
		StoreDir:      *storeDir,
		StoreSegment:  *storeSegment,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-chaos:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-chaos:", err)
			return 2
		}
	} else {
		report(res, *verbose)
	}
	if !res.Ok() {
		return 1
	}
	return 0
}

// parseFaults expands the -faults spec. "none" (or empty) arms
// nothing; a "default" entry anywhere in the comma-separated list
// splices in the standard mix, so extra rules can ride along:
// "default,auditstore.append:error:prob=0.05".
func parseFaults(spec string) ([]faultinject.Rule, error) {
	if spec == "none" || spec == "" {
		return nil, nil
	}
	var rules []faultinject.Rule
	var rest []string
	for _, entry := range strings.Split(spec, ",") {
		if strings.TrimSpace(entry) == "default" {
			rules = append(rules, faultinject.DefaultRules()...)
			continue
		}
		rest = append(rest, entry)
	}
	parsed, err := faultinject.ParseRules(strings.Join(rest, ","))
	if err != nil {
		return nil, err
	}
	return append(rules, parsed...), nil
}

func report(res *chaos.Result, verbose bool) {
	fmt.Printf("chaos campaign: seed=%d steps=%d\n", res.Seed, res.Steps)
	if verbose {
		for _, e := range res.Events {
			fmt.Println(e)
		}
		fmt.Println("fault schedule:")
		fmt.Print(res.Schedule)
	}
	fmt.Printf("monitor: %d queries, %d grants, %d denials (%d degraded)\n",
		res.Monitor.Queries, res.Monitor.Grants, res.Monitor.Denials,
		res.Monitor.DegradedDenials)
	fmt.Printf("faults:  %d injected; alerts: %d shown, %d render failures\n",
		injected(res.Schedule), res.X.AlertsShown, res.X.AlertRenderFailures)
	if res.Degraded {
		fmt.Println("state:   monitor DEGRADED (fail closed) at end of run")
	}
	if res.StoreRecords > 0 || res.StoreFaults > 0 {
		fmt.Printf("store:   %d records durable; %d injected faults, %d recoveries by reopen\n",
			res.StoreRecords, res.StoreFaults, res.StoreReopens)
	}
	if len(res.Flight) > 0 && (verbose || !res.Ok()) {
		fmt.Printf("flight:  %d dump(s); last dump:\n", res.FlightDumps)
		for _, l := range res.Flight {
			fmt.Println("  " + l)
		}
	}
	if res.Ok() {
		fmt.Println("result:  OK — all fail-closed invariants held")
		return
	}
	fmt.Printf("result:  %d INVARIANT VIOLATION(S)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  step %d [%s]: %s\n", v.Step, v.Invariant, v.Detail)
	}
	fmt.Printf("reproduce with: overhaul-chaos -seed %d -steps %d\n", res.Seed, res.Steps)
}

// injected counts schedule lines, each of which is one fault event.
func injected(schedule string) int {
	n := 0
	for _, c := range schedule {
		if c == '\n' {
			n++
		}
	}
	return n
}
