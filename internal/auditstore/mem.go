package auditstore

import (
	"sync"
)

// MemStore is the indexed in-memory backend: records ordered by
// sequence number in one contiguous slice, with secondary posting-list
// indexes by pid and verdict and a monotone-time fast path for Since
// queries. It is safe for concurrent use and is also the query index
// the FileStore keeps in front of its segments, so the two backends
// answer every query through identical code.
type MemStore struct {
	mu     sync.RWMutex
	closed bool
	base   uint64   // sequence number of recs[0]; 1 for a fresh store
	recs   []Record // recs[i].Seq == base + i
	// byPID and byVerdict are posting lists of positions into recs,
	// naturally ascending because appends only ever push back.
	byPID     map[int][]int
	byVerdict map[string][]int
	// timeOrdered tracks whether record times are non-decreasing in
	// sequence order; while true, Since queries binary-search their
	// starting position instead of scanning.
	timeOrdered bool
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		base:        1,
		byPID:       make(map[int][]int),
		byVerdict:   make(map[string][]int),
		timeOrdered: true,
	}
}

// Append implements Store.
func (m *MemStore) Append(r Record) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	return m.appendLocked(r)
}

// appendLocked assigns the next sequence number and indexes the record.
func (m *MemStore) appendLocked(r Record) (uint64, error) {
	next := m.base + uint64(len(m.recs))
	if r.Seq != 0 && r.Seq != next {
		return 0, ErrSeqMismatch
	}
	r.Seq = next
	if n := len(m.recs); n > 0 && r.Time.Before(m.recs[n-1].Time) {
		m.timeOrdered = false
	}
	pos := len(m.recs)
	m.recs = append(m.recs, r)
	m.byPID[r.PID] = append(m.byPID[r.PID], pos)
	m.byVerdict[r.Verdict] = append(m.byVerdict[r.Verdict], pos)
	return next, nil
}

// adopt seeds the store with an already-sequenced record during
// recovery replay. The first adopted record fixes the base sequence.
func (m *MemStore) adopt(r Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recs) == 0 {
		m.base = r.Seq
	}
	_, err := m.appendLocked(r)
	return err
}

// Get implements Store.
func (m *MemStore) Get(seq uint64) (Record, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return Record{}, false, ErrClosed
	}
	if seq < m.base || seq >= m.base+uint64(len(m.recs)) {
		return Record{}, false, nil
	}
	return m.recs[seq-m.base], true, nil
}

// Count implements Store.
func (m *MemStore) Count() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, ErrClosed
	}
	return len(m.recs), nil
}

// LastSeq returns the highest assigned sequence number (0 when empty).
func (m *MemStore) LastSeq() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.recs) == 0 {
		return 0
	}
	return m.base + uint64(len(m.recs)) - 1
}

// Scan implements Store. The narrowest applicable secondary index
// drives the iteration: a pid or verdict posting list when the query
// pins one, their galloping-merge intersection when it pins both,
// else the sequence-ordered slice itself, entered by binary search on
// time when the stream is time-ordered and Since is set. Candidates
// are filtered in place — no Record is copied until it is actually
// yielded.
func (m *MemStore) Scan(q Query, yield func(Record) bool) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	var it Iterator
	it.q = q
	m.planLocked(q, &it)
	it.drain(yield)
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.closed = true
	return nil
}
