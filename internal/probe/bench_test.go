package probe

import (
	"testing"
)

// benchEvent is a representative hot-path emission: a mic denial.
var benchEvent = Event{
	TimeNanos: 1_000_000, StampNanos: 500_000, Session: 1, PID: 42,
	Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny,
	Reason: ReasonNoInteraction,
}

func BenchmarkProbeAttach(b *testing.B) {
	r := NewRegistry()
	ring := NewRing(64)
	spec, err := ParseSpec("hook=kernel.decide verdict=deny")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := r.Attach(spec, ring)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Detach(p.ID()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeDispatch measures the canonical emission-site pattern
// (if h.Wants(pid) { h.Emit(ev) }) at its three cost levels.
func BenchmarkProbeDispatch(b *testing.B) {
	b.Run("unattached", func(b *testing.B) {
		// The cost every instrumented hot path pays when nothing is
		// attached: one atomic load.
		r := NewRegistry()
		h := r.Hook(HookKernelDecide)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if h.Wants(benchEvent.PID) {
				h.Emit(benchEvent)
			}
		}
	})
	b.Run("idle", func(b *testing.B) {
		// Attached but pid-scoped elsewhere: the aggregate pid window
		// rejects the event before it is even constructed.
		r := NewRegistry()
		ring := NewRing(64)
		if _, err := r.AttachSpec("hook=kernel.decide pid=1099511627776", ring); err != nil {
			b.Fatal(err)
		}
		h := r.Hook(HookKernelDecide)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if h.Wants(benchEvent.PID) {
				h.Emit(benchEvent)
			}
		}
	})
	b.Run("nomatch", func(b *testing.B) {
		// Attached, pid window passes, the full predicate rejects: the
		// second-stage cost (flat field compares, no publish).
		r := NewRegistry()
		ring := NewRing(64)
		if _, err := r.AttachSpec("hook=kernel.decide dev=cam", ring); err != nil {
			b.Fatal(err)
		}
		h := r.Hook(HookKernelDecide)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if h.Wants(benchEvent.PID) {
				h.Emit(benchEvent)
			}
		}
	})
	b.Run("match", func(b *testing.B) {
		// Attached and matching: predicate plus a ring publish, with a
		// batched reader draining like a live collector.
		r := NewRegistry()
		ring := NewRing(4096)
		if _, err := r.AttachSpec("hook=kernel.decide verdict=deny", ring); err != nil {
			b.Fatal(err)
		}
		h := r.Hook(HookKernelDecide)
		buf := make([]Event, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if h.Wants(benchEvent.PID) {
				h.Emit(benchEvent)
			}
			if i&511 == 511 {
				ring.ReadBatch(buf)
			}
		}
	})
}

func BenchmarkProbeRingPublish(b *testing.B) {
	ring := NewRing(4096)
	buf := make([]Event, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Publish(benchEvent)
		if i&511 == 511 {
			ring.ReadBatch(buf)
		}
	}
}

// The attach points' hard cost contracts: no allocation whether the
// hook is unattached, attached-idle, or attached-and-matching.
func TestProbeDispatchZeroAlloc(t *testing.T) {
	r := NewRegistry()
	unarmed := r.Hook(HookKernelOpen)
	if allocs := testing.AllocsPerRun(200, func() {
		if unarmed.Wants(benchEvent.PID) {
			unarmed.Emit(benchEvent)
		}
	}); allocs != 0 {
		t.Fatalf("unattached dispatch allocates %v per op, want 0", allocs)
	}

	ring := NewRing(64)
	if _, err := r.AttachSpec("hook=kernel.decide pid=1099511627776", ring); err != nil {
		t.Fatal(err)
	}
	idle := r.Hook(HookKernelDecide)
	if allocs := testing.AllocsPerRun(200, func() {
		if idle.Wants(benchEvent.PID) {
			idle.Emit(benchEvent)
		}
	}); allocs != 0 {
		t.Fatalf("attached-idle dispatch allocates %v per op, want 0", allocs)
	}

	matchRing := NewRing(64)
	if _, err := r.AttachSpec("hook=monitor.audit", matchRing); err != nil {
		t.Fatal(err)
	}
	match := r.Hook(HookMonitorAudit)
	buf := make([]Event, 64)
	if allocs := testing.AllocsPerRun(200, func() {
		if match.Wants(0) {
			match.Emit(Event{Kind: KindAudit})
		}
		matchRing.ReadBatch(buf)
	}); allocs != 0 {
		t.Fatalf("matching dispatch allocates %v per op, want 0", allocs)
	}
}
