// Package clock provides the time source used by every simulated
// subsystem in the repository.
//
// Overhaul's access-control decisions are *temporal*: a privileged
// operation is granted only if it occurs within a threshold δ of an
// authentic user input event. Reproducing the paper's behaviour
// deterministically therefore requires full control over time. The
// Clock interface abstracts "now"; Simulated is a manually advanced
// clock used by tests, the study simulations, and the 21-day empirical
// experiment, while System wraps the wall clock for the performance
// benchmarks where real elapsed time is what we measure.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a source of the current instant. Implementations must be
// safe for concurrent use.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
}

// System is a Clock backed by the operating system's wall clock.
// Its zero value is ready to use.
type System struct{}

var _ Clock = System{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Epoch is the instant at which every Simulated clock starts. A fixed,
// recognisable epoch keeps traces and golden test outputs stable.
var Epoch = time.Date(2016, time.June, 28, 9, 0, 0, 0, time.UTC) // DSN 2016 week

// Simulated is a deterministic, manually advanced clock.
//
// The zero value starts at Epoch. Advance moves time forward; Set jumps
// to an absolute instant (never backwards). All methods are safe for
// concurrent use; Now is a single atomic load, so the decision hot
// paths that read virtual time never serialize behind the writers.
type Simulated struct {
	// cur is the current instant; nil means the clock has never been
	// advanced and sits at Epoch. Writers swap in a fresh pointer, so
	// readers see a consistent time.Time without taking mu.
	cur atomic.Pointer[time.Time]
	mu  sync.Mutex // serializes Advance/Set
}

var _ Clock = (*Simulated)(nil)

// NewSimulated returns a Simulated clock positioned at Epoch.
func NewSimulated() *Simulated {
	return NewSimulatedAt(Epoch)
}

// NewSimulatedAt returns a Simulated clock positioned at start.
func NewSimulatedAt(start time.Time) *Simulated {
	c := &Simulated{}
	c.cur.Store(&start)
	return c
}

// Now implements Clock.
func (c *Simulated) Now() time.Time {
	if p := c.cur.Load(); p != nil {
		return *p
	}
	return Epoch
}

// Advance moves the clock forward by d and returns the new instant.
// Negative durations are ignored: simulated time never runs backwards.
func (c *Simulated) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := c.Now()
	if d > 0 {
		now = now.Add(d)
	}
	c.cur.Store(&now)
	return now
}

// Set jumps the clock to t if t is not before the current instant.
// It returns the clock's instant after the call.
func (c *Simulated) Set(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := c.Now()
	if t.After(now) {
		now = t
	}
	c.cur.Store(&now)
	return now
}
