package fleet

import (
	"testing"
	"time"

	"overhaul/internal/monitor"
)

// TestSessionAuditSink pins the durable-audit bridge: an attached sink
// sees every decision the session makes, in audit order, even after
// the bounded ring has started evicting — the sink is how a tenant's
// trail outlives the ring.
func TestSessionAuditSink(t *testing.T) {
	f := newTestFleet(t, Config{AuditCapacity: 4})
	s := f.CreateSession()
	var sunk []monitor.Decision
	s.SetAuditSink(func(d monitor.Decision) { sunk = append(sunk, d) })
	pid, err := s.Spawn()
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := s.Notify(pid, base); err != nil {
		t.Fatalf("Notify: %v", err)
	}

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := s.Decide(pid, monitor.OpMic, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("Decide %d: %v", i, err)
		}
	}

	if len(sunk) != n {
		t.Fatalf("sink saw %d decisions, want %d", len(sunk), n)
	}
	ring := s.Audit()
	if len(ring) != 4 {
		t.Fatalf("ring holds %d decisions, want 4 (capacity)", len(ring))
	}
	// The ring is the tail of the sink stream, element for element.
	for i, d := range ring {
		if sunk[n-4+i] != d {
			t.Fatalf("ring[%d] != sink[%d]:\n ring %+v\n sink %+v", i, n-4+i, d, sunk[n-4+i])
		}
	}
	// Sink order is decision order: op times ascend.
	for i := 1; i < len(sunk); i++ {
		if sunk[i].OpTime.Before(sunk[i-1].OpTime) {
			t.Fatalf("sink out of order at %d: %v after %v", i, sunk[i].OpTime, sunk[i-1].OpTime)
		}
	}
}
