// Package chaos runs seeded fault-injection campaigns against a fully
// assembled Overhaul system and checks its fail-closed invariants
// online.
//
// A Campaign is completely determined by its seed: the fault schedule
// comes from a seeded faultinject.Injector, the operation script from a
// second seeded generator, and time from a virtual clock — two runs of
// the same campaign produce byte-identical transcripts (fault events,
// decisions, audit records and alerts). After every step the runner
// asserts the two invariants the paper's security argument rests on,
// extended to component failure:
//
//  1. No grant without a fresh hardware-input stamp: every granted
//     decision in the audit log carries a non-zero stamp within δ of
//     the operation.
//  2. No silent denial: every mediated operation that failed left
//     evidence — a deny record in the audit log, or the distinct
//     "protection degraded" alert announcing that enforcement itself
//     is down.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"overhaul/internal/auditlog"
	"overhaul/internal/auditstore"
	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/faultinject"
	"overhaul/internal/fs"
	"overhaul/internal/ipc"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
	"overhaul/internal/xserver"
)

// DefaultSteps is the campaign length when none is given.
const DefaultSteps = 200

// Campaign describes one seeded chaos run.
type Campaign struct {
	// Seed determines the fault schedule and the operation script.
	Seed int64
	// Steps is the number of scripted operations. Zero selects
	// DefaultSteps.
	Steps int
	// Rules arm the fault injector. Nil runs a fault-free campaign
	// (the invariants must hold there too).
	Rules []faultinject.Rule
	// KillChannelAt, when positive, severs the kernel↔X netlink
	// connection before the given (1-based) step — the mid-session
	// channel-death scenario.
	KillChannelAt int
	// ReconnectAt, when positive, re-establishes the channel before
	// the given step (must be after KillChannelAt to matter).
	ReconnectAt int
	// Threshold is δ. Zero selects monitor.DefaultThreshold.
	Threshold time.Duration
	// StoreDir, when non-empty, attaches a durable audit store in that
	// directory: after every step the runner syncs the audit stream
	// into it, and any auditstore.* fault rules get a live store to
	// break. On a store fault the runner reopens (recovering the
	// CRC-verified prefix) and resumes; at the end of the run the store
	// must hold exactly the full audit stream — divergence is an
	// invariant violation.
	StoreDir string
	// StoreSegment is the store's segment size in records. Zero
	// selects a small campaign-friendly size (32) so rotation and
	// compaction actually happen within a default-length run.
	StoreSegment int
	// ProbeRing is the capacity of the campaign's observer probe ring
	// (a match-all probe attached to kernel.decide). Zero selects 1024;
	// small values force overflow under probe.ring reader-stall faults,
	// which must only ever increment the drop counter — never block or
	// perturb a decision.
	ProbeRing int
}

// Violation is one invariant breach found by the online checker.
type Violation struct {
	Step      int    `json:"step"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Result is the deterministic outcome of a campaign.
type Result struct {
	Seed       int64         `json:"seed"`
	Steps      int           `json:"steps"`
	Events     []string      `json:"events"`
	Schedule   string        `json:"schedule"`
	AuditLines []string      `json:"audit"`
	AlertLines []string      `json:"alerts"`
	Violations []Violation   `json:"violations"`
	Monitor    monitor.Stats `json:"monitor_stats"`
	Kernel     kernel.Stats  `json:"kernel_stats"`
	X          xserver.Stats `json:"x_stats"`
	Degraded   bool          `json:"degraded"`
	// Flight holds the JSONL lines of the campaign's last flight-
	// recorder dump — the black-box snapshot taken at the final denial,
	// degradation, or invariant violation. Empty when nothing tripped.
	Flight []string `json:"flight,omitempty"`
	// FlightDumps counts every dump taken across the campaign.
	FlightDumps int `json:"flight_dumps"`
	// StoreRecords is the durable store's final record count (0 when
	// no StoreDir was set); StoreFaults counts injected store failures
	// and StoreReopens the recoveries that followed.
	StoreRecords int `json:"store_records,omitempty"`
	StoreFaults  int `json:"store_faults,omitempty"`
	StoreReopens int `json:"store_reopens,omitempty"`
	// Probe accounting for the campaign's kernel.decide observer probe:
	// events matched at the hook, consumed by the batched reader,
	// dropped on ring overflow, and reader stalls injected.
	ProbeMatched uint64 `json:"probe_matched"`
	ProbeRead    uint64 `json:"probe_read"`
	ProbeDropped uint64 `json:"probe_dropped"`
	ProbeStalls  uint64 `json:"probe_stalls"`
}

// Ok reports whether every invariant held.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Transcript renders the full deterministic record of the run; two
// runs with the same campaign must produce byte-identical transcripts.
func (r *Result) Transcript() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("chaos campaign seed=%d steps=%d\n", r.Seed, r.Steps))
	b.WriteString("== events ==\n")
	for _, e := range r.Events {
		b.WriteString(e + "\n")
	}
	b.WriteString("== fault schedule ==\n")
	b.WriteString(r.Schedule)
	b.WriteString("== audit ==\n")
	for _, l := range r.AuditLines {
		b.WriteString(l + "\n")
	}
	b.WriteString("== alerts ==\n")
	for _, l := range r.AlertLines {
		b.WriteString(l + "\n")
	}
	b.WriteString("== violations ==\n")
	for _, v := range r.Violations {
		b.WriteString(fmt.Sprintf("step %d [%s]: %s\n", v.Step, v.Invariant, v.Detail))
	}
	b.WriteString("== flight ==\n")
	for _, l := range r.Flight {
		b.WriteString(l + "\n")
	}
	return b.String()
}

// runner carries the campaign's live state.
type runner struct {
	c         Campaign
	threshold time.Duration
	sys       *core.System
	inj       *faultinject.Injector
	rng       *rand.Rand
	armed     bool
	mic, cam  string
	apps      []*core.App
	shmA      *ipc.Mapping
	shmB      *ipc.Mapping
	scanners  []string
	tel       *telemetry.Recorder
	res       *Result
	store     *auditstore.FileStore
	tail      *auditstore.Tail

	// The observer probe: a match-all predicate on kernel.decide whose
	// ring is drained once per step. Its fault injector is a SEPARATE
	// seeded stream from the main one, so probe.ring reader stalls
	// consume no randomness from the fault schedule the system under
	// test sees — a probed and an unprobed campaign with the same seed
	// make byte-identical decisions.
	probeInj  *faultinject.Injector
	probeRing *probe.Ring
	probeObs  *probe.Probe
	probeBuf  []probe.Event
	probeRead uint64
}

// hook gates the injector behind r.armed so that the setup and the
// end-of-run probes run fault-free; only scripted steps inject. The
// campaign is single-goroutine, so the flag needs no lock.
func (r *runner) hook() faultinject.Hook {
	return func(p faultinject.Point) faultinject.Fault {
		if !r.armed {
			return faultinject.Fault{Point: p}
		}
		return r.inj.Eval(p)
	}
}

func (r *runner) event(step int, format string, args ...any) {
	prefix := fmt.Sprintf("step %03d ", step)
	if step == 0 {
		prefix = "setup    "
	}
	r.res.Events = append(r.res.Events, prefix+fmt.Sprintf(format, args...))
}

func (r *runner) violate(step int, invariant, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	r.res.Violations = append(r.res.Violations, Violation{
		Step:      step,
		Invariant: invariant,
		Detail:    detail,
	})
	// An invariant breach is exactly what the flight recorder exists
	// for: snapshot the recent-event ring at the moment of violation.
	r.tel.TripFlight(telemetry.SpanContext{}, "chaos",
		"invariant violation ["+invariant+"]: "+detail)
}

// Run executes the campaign and returns its deterministic result. The
// returned error covers only harness failures (bad rules, boot
// failure); invariant breaches are reported in Result.Violations.
func Run(c Campaign) (*Result, error) {
	if c.Steps <= 0 {
		c.Steps = DefaultSteps
	}
	// probe.ring rules drive the observer's reader stalls and are
	// evaluated on their own injector stream; everything else feeds the
	// system under test. The partition keeps the main fault schedule —
	// and therefore every decision — independent of whether a probe is
	// watching.
	var mainRules, probeRules []faultinject.Rule
	for _, rule := range c.Rules {
		if rule.Point == faultinject.PointProbeRing {
			probeRules = append(probeRules, rule)
		} else {
			mainRules = append(mainRules, rule)
		}
	}
	inj, err := faultinject.New(c.Seed, mainRules...)
	if err != nil {
		return nil, err
	}
	probeInj, err := faultinject.New(c.Seed^0x9b0be5eed, probeRules...)
	if err != nil {
		return nil, err
	}
	clk := clock.NewSimulated()
	inj.SetClock(clk)

	threshold := c.Threshold
	if threshold == 0 {
		threshold = monitor.DefaultThreshold
	}

	r := &runner{
		c:         c,
		threshold: threshold,
		inj:       inj,
		probeInj:  probeInj,
		// The recorder rides the campaign's virtual clock, so its
		// output — like the rest of the transcript — is a pure function
		// of the seed.
		tel: telemetry.New(clk),
		// A distinct stream from the injector's: faults and script are
		// independent dimensions of the same seed.
		rng: rand.New(rand.NewSource(c.Seed ^ 0x5eed0fca0515)),
		res: &Result{Seed: c.Seed, Steps: c.Steps},
	}

	reg := probe.NewRegistry()
	sys, err := core.Boot(core.Options{
		Clock:       clk,
		Enforce:     true,
		Threshold:   c.Threshold,
		AlertSecret: "chaos-cat",
		FaultHook:   r.hook(),
		Telemetry:   r.tel,
		Probes:      reg,
		// Large enough that the checker never loses records to ring
		// eviction mid-campaign.
		AuditCapacity: 1 << 16,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: boot: %w", err)
	}
	r.sys = sys

	// The observer probe sees every decision record the audit log
	// sees; the end-of-run check asserts the two streams never
	// diverge in count, whatever faults the ring reader ate.
	ringCap := c.ProbeRing
	if ringCap == 0 {
		ringCap = 1024
	}
	r.probeRing = probe.NewRing(ringCap)
	r.probeRing.SetFaultHook(func(p faultinject.Point) faultinject.Fault {
		if !r.armed {
			return faultinject.Fault{Point: p}
		}
		return r.probeInj.Eval(p)
	})
	r.probeBuf = make([]probe.Event, 256)
	if r.probeObs, err = reg.AttachSpec("hook=kernel.decide", r.probeRing); err != nil {
		return nil, fmt.Errorf("chaos: attach probe: %w", err)
	}

	if err := r.setup(); err != nil {
		return nil, err
	}
	if c.StoreDir != "" {
		segment := c.StoreSegment
		if segment == 0 {
			segment = 32 // small enough that a default run rotates and compacts
		}
		// The store shares the campaign hook, so auditstore.* rules
		// inject only during armed steps; Open itself never evaluates
		// fault points (recovery is fault-free by construction).
		st, err := auditstore.Open(c.StoreDir, auditstore.Options{
			SegmentRecords: segment, Hook: r.hook(),
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: open store: %w", err)
		}
		r.store = st
		if r.tail, err = auditstore.NewTail(st, 0); err != nil {
			return nil, fmt.Errorf("chaos: store tail: %w", err)
		}
	}

	r.armed = true
	for step := 1; step <= c.Steps; step++ {
		if step == c.KillChannelAt {
			_ = sys.DisconnectX()
			r.event(step, "kill-channel")
		}
		if step == c.ReconnectAt && c.ReconnectAt > c.KillChannelAt {
			if err := sys.ReconnectX(); err != nil {
				r.event(step, "reconnect-channel: %v", err)
			} else {
				r.event(step, "reconnect-channel")
			}
		}
		r.step(step)
		r.drainProbe()
		r.syncStore(step)
	}
	r.armed = false

	r.finish()
	r.finishStore()
	r.finishProbe()

	r.res.Schedule = inj.Schedule()
	for _, d := range sys.Audit() {
		r.res.AuditLines = append(r.res.AuditLines, auditlog.FormatDecision(d))
	}
	for _, a := range sys.X.AlertHistory() {
		r.res.AlertLines = append(r.res.AlertLines, formatAlert(a))
	}
	r.res.Monitor = sys.Kernel.Monitor().StatsSnapshot()
	r.res.Kernel = sys.Kernel.StatsSnapshot()
	r.res.X = sys.X.StatsSnapshot()
	_, r.res.Degraded = sys.Kernel.Monitor().DegradedReason()
	r.res.FlightDumps = len(r.tel.FlightDumps())
	if dump, ok := r.tel.LastFlightDump(); ok {
		if raw, err := dump.JSONL(); err == nil {
			r.res.Flight = strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
		}
	}
	return r.res, nil
}

func formatAlert(a xserver.Alert) string {
	return fmt.Sprintf("%s alert pid=%d op=%s blocked=%v degraded=%v renderfailed=%v msg=%q",
		a.ShownAt.Format("15:04:05.000"),
		a.PID, a.Op, a.Blocked, a.Degraded, a.RenderFailed, a.Message)
}

// setup boots the fixed scenario: microphone and camera attached, two
// GUI applications launched and settled past the visibility threshold,
// and a shared-memory segment mapped into both.
func (r *runner) setup() error {
	sys := r.sys
	var err error
	if r.mic, err = sys.Helper.Attach(devfs.ClassMicrophone); err != nil {
		return fmt.Errorf("chaos: attach mic: %w", err)
	}
	if r.cam, err = sys.Helper.Attach(devfs.ClassCamera); err != nil {
		return fmt.Errorf("chaos: attach cam: %w", err)
	}
	for _, name := range []string{"alpha", "beta"} {
		app, err := sys.Launch(name)
		if err != nil {
			return fmt.Errorf("chaos: launch %s: %w", name, err)
		}
		r.apps = append(r.apps, app)
	}
	seg, err := sys.Kernel.ShmGet(1, 4)
	if err != nil {
		return fmt.Errorf("chaos: shmget: %w", err)
	}
	r.shmA = seg.Map(r.apps[0].Proc.PID())
	r.shmB = seg.Map(r.apps[1].Proc.PID())
	sys.Settle(1500 * time.Millisecond)
	r.event(0, "mic=%s cam=%s apps=alpha,beta", r.mic, r.cam)
	return nil
}

// step runs one scripted operation and then the invariant checks.
func (r *runner) step(step int) {
	app := r.apps[r.rng.Intn(len(r.apps))]
	before := len(r.sys.Audit())
	deniedOp := ""

	switch op := r.rng.Intn(10); op {
	case 0: // user clicks
		r.event(step, "click %s: %s", app.Client.Name(), outcome(app.Click()))
	case 1: // time passes
		d := time.Duration(100+r.rng.Intn(800)) * time.Millisecond
		r.sys.Settle(d)
		r.event(step, "advance %v", d)
	case 2, 3: // device opens
		path := r.mic
		if op == 3 {
			path = r.cam
		}
		h, err := app.OpenDevice(path)
		if err == nil {
			_ = h.Close()
		}
		if mediatedDenial(err) {
			deniedOp = fmt.Sprintf("open %s", path)
		}
		r.event(step, "open %s by %s: %s", path, app.Client.Name(), outcome(err))
	case 4: // clipboard copy
		err := app.Client.SetSelection("CLIPBOARD", app.Win)
		if errors.Is(err, xserver.ErrBadAccess) {
			deniedOp = "copy"
		}
		r.event(step, "copy by %s: %s", app.Client.Name(), outcome(err))
	case 5: // screen capture
		_, err := app.Client.GetImage(xserver.Root)
		if errors.Is(err, xserver.ErrBadAccess) {
			deniedOp = "capture"
		}
		r.event(step, "capture by %s: %s", app.Client.Name(), outcome(err))
	case 6: // shared-memory traffic (P2 propagation under timer faults)
		err := r.shmA.Write(0, []byte{byte(step)})
		if err == nil {
			_, err = r.shmB.Read(0, 1)
		}
		r.event(step, "shm traffic: %s", outcome(err))
	case 7: // fork + inherited-stamp device open (P1 under faults)
		child, err := app.Proc.Fork()
		if err != nil {
			r.event(step, "fork %s: %s", app.Client.Name(), outcome(err))
			break
		}
		h, err := r.sys.Kernel.Open(child, r.mic, fs.AccessRead)
		if err == nil {
			_ = h.Close()
		}
		if mediatedDenial(err) {
			deniedOp = "forked open"
		}
		r.event(step, "fork+open by %s: %s", app.Client.Name(), outcome(err))
		_ = child.Exit()
	case 8: // hotplug churn through the (crashable) trusted helper
		if p, err := r.sys.Helper.Attach(devfs.ClassScanner); err != nil {
			r.event(step, "attach scanner: %s", outcome(err))
		} else {
			r.scanners = append(r.scanners, p)
			r.event(step, "attach scanner: %s", p)
		}
		if n := len(r.scanners); n > 0 {
			p := r.scanners[n-1]
			if err := r.sys.Helper.Detach(p); err == nil {
				r.scanners = r.scanners[:n-1]
				r.event(step, "detach scanner %s: ok", p)
			} else {
				r.event(step, "detach scanner %s: %s", p, outcome(err))
			}
		}
	case 9: // helper restart (protocol recovery)
		if r.sys.Helper.Down() {
			err := r.sys.Helper.Restart()
			r.event(step, "helper restart: %s", outcome(err))
			if err == nil {
				r.checkHelperMap(step)
			}
		} else {
			r.event(step, "helper up")
		}
	}

	r.checkGrants(step, before)
	if deniedOp != "" {
		r.checkDenialEvidence(step, before, deniedOp)
	}
}

// outcome renders an operation result deterministically.
func outcome(err error) string {
	if err == nil {
		return "ok"
	}
	return "ERR " + err.Error()
}

// mediatedDenial reports whether err is the kernel refusing a
// sensitive-device open — by policy or by fail-closed conversion of an
// injected fault.
func mediatedDenial(err error) bool {
	return errors.Is(err, kernel.ErrAccessDenied) || errors.Is(err, kernel.ErrTransientIO)
}

// checkGrants asserts invariant 1 on every audit record the step
// appended: a grant must rest on a fresh hardware-input stamp.
func (r *runner) checkGrants(step, before int) {
	audit := r.sys.Audit()
	for _, d := range audit[min(before, len(audit)):] {
		if d.Verdict != monitor.VerdictGrant {
			continue
		}
		if d.Stamp.IsZero() {
			r.violate(step, "grant-without-stamp",
				"pid %d op %s granted with zero stamp (reason %q)", d.PID, d.Op, d.Reason)
			continue
		}
		if d.OpTime.Sub(d.Stamp) >= r.threshold {
			r.violate(step, "grant-stale-stamp",
				"pid %d op %s granted %v after stamp (δ=%v)", d.PID, d.Op, d.OpTime.Sub(d.Stamp), r.threshold)
		}
	}
}

// checkDenialEvidence asserts invariant 2 for a denial the script just
// observed: a deny audit record from this step, or the recorded
// protection-degraded alert.
func (r *runner) checkDenialEvidence(step, before int, what string) {
	audit := r.sys.Audit()
	for _, d := range audit[min(before, len(audit)):] {
		if d.Verdict == monitor.VerdictDeny {
			return
		}
	}
	for _, a := range r.sys.X.AlertHistory() {
		if a.Degraded {
			return
		}
	}
	r.violate(step, "silent-denial", "%s denied with no audit record and no degraded alert", what)
}

// checkHelperMap asserts that a successful helper restart preserved
// the kernel's device-class map for the fixed sensors.
func (r *runner) checkHelperMap(step int) {
	for _, want := range []struct {
		path  string
		class devfs.Class
	}{{r.mic, devfs.ClassMicrophone}, {r.cam, devfs.ClassCamera}} {
		if got, ok := r.sys.Kernel.SensitiveClassOf(want.path); !ok || got != want.class {
			r.violate(step, "helper-map-lost",
				"after restart %s maps to (%q,%v), want %s", want.path, got, ok, want.class)
		}
	}
}

// finish runs the end-of-run assertions. After a mid-session channel
// kill (with no reconnect) the system must be visibly degraded: every
// device access denies, and the distinct protection-degraded alert is
// on record. After a reconnect the system must be healthy again.
func (r *runner) finish() {
	killed := r.c.KillChannelAt > 0 && r.c.KillChannelAt <= r.c.Steps
	reconnected := killed && r.c.ReconnectAt > r.c.KillChannelAt && r.c.ReconnectAt <= r.c.Steps
	step := r.c.Steps + 1

	if killed && !reconnected {
		// One more user interaction forces the channel loss to be
		// detected even if no call failed since the kill.
		_ = r.apps[0].Click()
		before := len(r.sys.Audit())
		for _, app := range r.apps {
			for _, path := range []string{r.mic, r.cam} {
				h, err := app.OpenDevice(path)
				if err == nil {
					_ = h.Close()
					r.violate(step, "grant-after-channel-death",
						"pid %d opened %s with the channel dead", app.Proc.PID(), path)
				}
			}
		}
		r.checkGrants(step, before)
		degradedAlert := false
		for _, a := range r.sys.X.AlertHistory() {
			if a.Degraded && strings.Contains(a.Message, "protection degraded") {
				degradedAlert = true
				break
			}
		}
		if !degradedAlert {
			r.violate(step, "missing-degraded-alert",
				"channel died at step %d but no protection-degraded alert was recorded", r.c.KillChannelAt)
		}
		if _, down := r.sys.Kernel.Monitor().DegradedReason(); !down {
			r.violate(step, "monitor-not-degraded",
				"channel dead but the monitor is not in degraded mode")
		}
		r.event(step, "post-kill probes done")
		return
	}

	if reconnected {
		if _, down := r.sys.Kernel.Monitor().DegradedReason(); down {
			r.violate(step, "degraded-after-reconnect",
				"channel reconnected at step %d but the monitor is still degraded", r.c.ReconnectAt)
		}
		before := len(r.sys.Audit())
		if err := r.apps[0].Click(); err == nil {
			r.sys.Settle(50 * time.Millisecond)
			if h, err := r.apps[0].OpenDevice(r.mic); err != nil {
				r.violate(step, "deny-after-reconnect",
					"fresh interaction after reconnect still denied: %v", err)
			} else {
				_ = h.Close()
			}
		}
		r.checkGrants(step, before)
		r.event(step, "post-reconnect probes done")
	}
}

// drainProbe batch-reads the observer ring after a step. An injected
// reader stall consumes nothing this step; the backlog (and any
// overflow drops it causes) is picked up on a later drain. The drain
// never blocks the system under test — that is the point.
func (r *runner) drainProbe() {
	for {
		n := r.probeRing.ReadBatch(r.probeBuf)
		if n == 0 {
			return
		}
		r.probeRead += uint64(n)
	}
}

// finishProbe runs the probe layer's end-of-run invariants, fault-free
// (armed is false, so the final drain cannot stall):
//
//  1. Accounting closes: every matched event was either read or
//     counted as an overflow drop — nothing vanished.
//  2. Probe ≡ audit: the observer matched exactly one event per audit
//     record. A stalled or overflowing ring loses events, never
//     decisions.
func (r *runner) finishProbe() {
	step := r.c.Steps + 1
	r.drainProbe()
	st := r.probeRing.Stats()
	matched := r.probeObs.Matched()
	r.res.ProbeMatched = matched
	r.res.ProbeRead = r.probeRead
	r.res.ProbeDropped = st.Dropped
	r.res.ProbeStalls = st.Stalls
	if r.probeRead != st.Published || st.Published+st.Dropped != matched {
		r.violate(step, "probe-accounting",
			"matched %d != published %d (read %d) + dropped %d",
			matched, st.Published, r.probeRead, st.Dropped)
	}
	if audit := r.sys.Audit(); matched != uint64(len(audit)) {
		r.violate(step, "probe-audit-divergence",
			"observer matched %d decide events, audit log has %d records", matched, len(audit))
	}
}

// syncStore tails the audit stream into the durable store after a
// step. An injected store fault fails the store closed; the runner
// reopens the directory — recovering the CRC-verified prefix — and
// resumes syncing from wherever recovery landed. A few attempts per
// step bound the work; any remaining lag is picked up next step.
func (r *runner) syncStore(step int) {
	if r.store == nil {
		return
	}
	audit := r.sys.Audit()
	for attempt := 0; attempt < 3; attempt++ {
		_, err := r.tail.Sync(audit)
		if err == nil {
			return
		}
		r.res.StoreFaults++
		r.event(step, "store fault: %v", err)
		if err := r.reopenStore(); err != nil {
			r.violate(step, "store-unrecoverable", "reopen after fault: %v", err)
			return
		}
		r.event(step, "store reopened: %d records recovered", r.store.Recovery().Records)
	}
}

// reopenStore closes the failed store and opens the directory again,
// re-anchoring the tail at the recovered prefix.
func (r *runner) reopenStore() error {
	if err := r.store.Close(); err != nil && !errors.Is(err, auditstore.ErrClosed) {
		return err
	}
	st, err := auditstore.Open(r.store.Dir(), auditstore.Options{
		SegmentRecords: r.storeSegment(), Hook: r.hook(),
	})
	if err != nil {
		return err
	}
	r.store = st
	r.res.StoreReopens++
	return r.tail.Rebind(st)
}

func (r *runner) storeSegment() int {
	if r.c.StoreSegment != 0 {
		return r.c.StoreSegment
	}
	return 32
}

// finishStore runs fault-free (armed is false): the final sync must
// succeed, and the store must then hold exactly the audit stream — the
// durable trail and the in-memory log cannot diverge.
func (r *runner) finishStore() {
	if r.store == nil {
		return
	}
	step := r.c.Steps + 1
	audit := r.sys.Audit()
	if _, err := r.tail.Sync(audit); err != nil {
		// The store may still be failed from the last armed fault.
		if rerr := r.reopenStore(); rerr != nil {
			r.violate(step, "store-unrecoverable", "final reopen: %v", rerr)
			return
		}
		if _, err := r.tail.Sync(audit); err != nil {
			r.violate(step, "store-divergence", "fault-free final sync failed: %v", err)
			return
		}
	}
	recs, err := auditstore.ScanAll(r.store, auditstore.Query{})
	if err != nil {
		r.violate(step, "store-divergence", "final scan: %v", err)
		return
	}
	r.res.StoreRecords = len(recs)
	if len(recs) != len(audit) {
		r.violate(step, "store-divergence",
			"store holds %d records, audit stream has %d", len(recs), len(audit))
		return
	}
	for i, rec := range recs {
		if rec.Decision() != audit[i] {
			r.violate(step, "store-divergence",
				"record %d diverged:\n store %+v\n audit %+v", i+1, rec.Decision(), audit[i])
			return
		}
	}
	if err := r.store.Close(); err != nil {
		r.violate(step, "store-divergence", "final close: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
