package chaos

import (
	"testing"

	"overhaul/internal/faultinject"
)

// TestCampaignProbeAccountingFaultFree: with no faults the observer
// probe must see exactly the audit stream — matched == read, zero
// drops, zero stalls — and the accounting invariants must hold.
func TestCampaignProbeAccountingFaultFree(t *testing.T) {
	res, err := Run(Campaign{Seed: 3, Steps: 120})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.Transcript())
	}
	if res.ProbeMatched == 0 {
		t.Fatal("observer probe matched nothing; hook not armed?")
	}
	if res.ProbeMatched != res.ProbeRead || res.ProbeDropped != 0 || res.ProbeStalls != 0 {
		t.Fatalf("fault-free probe accounting: matched=%d read=%d dropped=%d stalls=%d",
			res.ProbeMatched, res.ProbeRead, res.ProbeDropped, res.ProbeStalls)
	}
	if res.ProbeMatched != uint64(len(res.AuditLines)) {
		t.Fatalf("probe matched %d, audit has %d lines", res.ProbeMatched, len(res.AuditLines))
	}
}

// TestCampaignProbeOverflowNeverPerturbsDecisions is the satellite's
// chaos invariant, twin-campaign form: the same seed is run once
// untouched and once with a tiny observer ring under a 90% reader
// stall — forcing overflow — and the two campaigns' audit streams must
// be byte-identical. A watching probe that is starving can only lose
// its own events (counted in the drop counter); it can never block a
// decision or shift the fault schedule.
func TestCampaignProbeOverflowNeverPerturbsDecisions(t *testing.T) {
	base := Campaign{Seed: 42, Steps: 200, Rules: faultinject.DefaultRules()}
	clean, err := Run(base)
	if err != nil {
		t.Fatalf("Run clean: %v", err)
	}

	stalled := base
	stalled.ProbeRing = 8
	stalled.Rules = append(append([]faultinject.Rule{}, base.Rules...), faultinject.Rule{
		Point: faultinject.PointProbeRing,
		Kind:  faultinject.KindError,
		Prob:  0.9,
	})
	starved, err := Run(stalled)
	if err != nil {
		t.Fatalf("Run stalled: %v", err)
	}

	if !clean.Ok() {
		t.Fatalf("clean campaign violations:\n%s", clean.Transcript())
	}
	if !starved.Ok() {
		t.Fatalf("starved campaign violations:\n%s", starved.Transcript())
	}
	if starved.ProbeStalls == 0 {
		t.Fatal("stall rule at prob=0.9 never fired")
	}
	if starved.ProbeDropped == 0 {
		t.Fatal("8-slot ring under 90% reader stall never overflowed; the scenario is not exercising drop-on-full")
	}
	if got, want := starved.ProbeRead+starved.ProbeDropped, starved.ProbeMatched; got != want {
		t.Fatalf("starved accounting: read %d + dropped %d != matched %d",
			starved.ProbeRead, starved.ProbeDropped, want)
	}

	// The decision streams are byte-identical: overflow cost the
	// observer its events, not the system its behaviour.
	if len(clean.AuditLines) != len(starved.AuditLines) {
		t.Fatalf("audit diverged: %d vs %d records", len(clean.AuditLines), len(starved.AuditLines))
	}
	for i := range clean.AuditLines {
		if clean.AuditLines[i] != starved.AuditLines[i] {
			t.Fatalf("audit record %d diverged:\nclean   %s\nstarved %s",
				i, clean.AuditLines[i], starved.AuditLines[i])
		}
	}
	if clean.Schedule != starved.Schedule {
		t.Fatal("main fault schedule shifted when probe.ring rules were added; the probe injector is not isolated")
	}
}
