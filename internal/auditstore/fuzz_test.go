package auditstore_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overhaul/internal/auditstore"
)

// FuzzSegmentDecode pins the codec's safety contract: DecodeSegment
// never panics on arbitrary bytes, never reads past its input, and is
// idempotent — re-encoding whatever it decoded and decoding again
// yields the same records. Torn, bit-flipped, and random inputs all
// land here.
func FuzzSegmentDecode(f *testing.F) {
	// Seeds: valid streams, a torn tail, a flipped CRC, random junk.
	var valid []byte
	for i := 0; i < 5; i++ {
		r := mkRecord(i)
		r.Seq = uint64(i + 1)
		line, err := auditstore.EncodeRecord(r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		valid = append(valid, line...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-7])           // torn payload
	f.Add(valid[:9])                      // torn header
	f.Add([]byte{})                       // empty
	f.Add([]byte("not a segment at all")) // junk
	f.Add([]byte("00000002ffffffff{}\n")) // crc mismatch
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0x40
	f.Add(flipped) // bit rot mid-payload

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, trunc := auditstore.DecodeSegment(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if trunc == nil && consumed != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", consumed, len(data))
		}
		if trunc != nil {
			if trunc.Offset != consumed {
				t.Fatalf("truncation offset %d != consumed %d", trunc.Offset, consumed)
			}
			if trunc.Reason == "" {
				t.Fatalf("truncation without a reason")
			}
		}
		// Idempotence: what decoded once decodes identically again.
		var reenc []byte
		for _, r := range recs {
			line, err := auditstore.EncodeRecord(r)
			if err != nil {
				// A decoded record always re-encodes unless its payload
				// held values JSON can parse but not marshal (times
				// outside year range); those can't round-trip.
				t.Skipf("decoded record does not re-encode: %v", err)
			}
			reenc = append(reenc, line...)
		}
		again, consumed2, trunc2 := auditstore.DecodeSegment(reenc)
		if trunc2 != nil {
			t.Fatalf("re-encoded stream truncated at %d: %s", trunc2.Offset, trunc2.Reason)
		}
		if consumed2 != len(reenc) || len(again) != len(recs) {
			t.Fatalf("re-decode: %d records %d bytes, want %d records %d bytes",
				len(again), consumed2, len(recs), len(reenc))
		}
	})
}

// FuzzBinarySegmentDecode pins the v2 binary codec's safety contract:
// DecodeBinarySegment never panics on arbitrary bytes, never reads
// past its input, reports truncation exactly at the consumed offset,
// and whatever it decodes round-trips through the v2 encoder — and
// converges through the v1 JSONL codec, so a mixed-format directory
// can be upgraded without changing a single record.
func FuzzBinarySegmentDecode(f *testing.F) {
	// Seeds: a valid frame stream, a real sealed segment with footer
	// (written by the store itself), torn tails, flipped bytes, junk.
	valid := append([]byte(nil), auditstore.BinarySegmentMagic()...)
	for i := 0; i < 5; i++ {
		r := mkRecord(i)
		r.Seq = uint64(i + 1)
		frame, err := auditstore.EncodeBinaryRecord(r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		valid = append(valid, frame...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn CRC
	f.Add(valid[:9])            // torn first frame
	f.Add(valid[:4])            // torn magic
	f.Add([]byte{})
	f.Add([]byte("not a segment at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(valid)/2] ^= 0x40
	f.Add(flipped) // bit rot mid-stream
	f.Add(sealedSegmentBytes(f))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, trunc := auditstore.DecodeBinarySegment(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if trunc == nil && consumed != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", consumed, len(data))
		}
		if trunc != nil {
			if trunc.Offset != consumed {
				t.Fatalf("truncation offset %d != consumed %d", trunc.Offset, consumed)
			}
			if trunc.Reason == "" {
				t.Fatal("truncation without a reason")
			}
		}

		// v2 round trip: everything decoded re-frames to an identical
		// stream of records.
		reenc := append([]byte(nil), auditstore.BinarySegmentMagic()...)
		for _, r := range recs {
			frame, err := auditstore.EncodeBinaryRecord(r)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			reenc = append(reenc, frame...)
		}
		again, consumed2, trunc2 := auditstore.DecodeBinarySegment(reenc)
		if trunc2 != nil || consumed2 != len(reenc) || len(again) != len(recs) {
			t.Fatalf("v2 re-decode: %d records %d/%d bytes trunc=%v",
				len(again), consumed2, len(reenc), trunc2)
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("v2 round trip diverged at %d:\n got %+v\nwant %+v", i, again[i], recs[i])
			}
		}

		// Cross-codec convergence: a v2-decoded record carried through
		// the v1 JSONL codec reaches a fixed point (strings with invalid
		// UTF-8 are sanitised by JSON on the first pass, like
		// FuzzRecordRoundTrip documents), and that fixed point carries
		// identical scalar fields and instants.
		for _, r := range recs {
			line, err := auditstore.EncodeRecord(r)
			if err != nil {
				t.Fatalf("v1 encode of v2-decoded record: %v", err)
			}
			v1recs, _, v1trunc := auditstore.DecodeSegment(line)
			if v1trunc != nil || len(v1recs) != 1 {
				t.Fatalf("v1 decode: %d records trunc=%v", len(v1recs), v1trunc)
			}
			got := v1recs[0]
			if got.Seq != r.Seq || got.PID != r.PID || got.Degraded != r.Degraded ||
				!got.Time.Equal(r.Time) || !got.Stamp.Equal(r.Stamp) || got.Session != r.Session {
				t.Fatalf("v1 convergence lost scalars: got %+v want %+v", got, r)
			}
			frame2, err := auditstore.EncodeBinaryRecord(got)
			if err != nil {
				t.Fatalf("v2 re-encode of v1 fixed point: %v", err)
			}
			back, _, backTrunc := auditstore.DecodeBinarySegment(append(auditstore.BinarySegmentMagic(), frame2...))
			if backTrunc != nil || len(back) != 1 || back[0] != got {
				t.Fatalf("v2 decode of converged record diverged: %+v vs %+v", back, got)
			}
		}
	})
}

// sealedSegmentBytes writes a small store whose first segment gets
// sealed (footer included) and returns that segment's raw bytes.
func sealedSegmentBytes(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 4, CompactSealed: -1})
	if err != nil {
		f.Fatalf("open: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			f.Fatalf("append: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		f.Fatalf("close: %v", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(names) == 0 {
		f.Fatalf("glob: %v (%d segments)", err, len(names))
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatalf("read sealed segment: %v", err)
	}
	return data
}

// FuzzRecordRoundTrip pins the encode→decode identity for every valid
// record: whatever fields a record carries, one framed line comes back
// as exactly that record.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(0), uint64(0), 100, "open_device", "grant", "interaction 1s ago", int64(0), false)
	f.Add(uint64(1<<40), int64(1456822800), uint64(7), -5, "", "deny", "reason with \"quotes\" and \n newline", int64(-12345), true)
	f.Add(uint64(0), int64(1), uint64(1), 0, "читать", "?", "", int64(1), false)

	f.Fuzz(func(t *testing.T, seq uint64, tsec int64, session uint64, pid int, op, verdict, reason string, stampSec int64, degraded bool) {
		r := auditstore.Record{
			Seq:      seq,
			Time:     time.Unix(tsec%(1<<33), 0).UTC(),
			Session:  session,
			PID:      pid,
			Op:       op,
			Verdict:  verdict,
			Reason:   reason,
			Stamp:    time.Unix(stampSec%(1<<33), 0).UTC(),
			Degraded: degraded,
		}
		line, err := auditstore.EncodeRecord(r)
		if err != nil {
			// Strings JSON cannot carry (invalid UTF-8 is replaced, not
			// rejected) don't error; only oversized payloads do.
			if len(op)+len(verdict)+len(reason) < auditstore.MaxPayload/2 {
				t.Fatalf("encode rejected a plausible record: %v", err)
			}
			return
		}
		recs, consumed, trunc := auditstore.DecodeSegment(line)
		if trunc != nil || consumed != len(line) || len(recs) != 1 {
			t.Fatalf("decode of one line: %d records, %d/%d bytes, trunc=%v", len(recs), consumed, len(line), trunc)
		}
		got := recs[0]
		// Invalid UTF-8 input is sanitised to U+FFFD by the JSON
		// encoder (escaped on the first pass, literal afterwards), so
		// the invariant is convergence: from the first decode on,
		// encode→decode is the identity and the encoding is stable.
		line2, err := auditstore.EncodeRecord(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		recs2, consumed2, trunc2 := auditstore.DecodeSegment(line2)
		if trunc2 != nil || consumed2 != len(line2) || len(recs2) != 1 {
			t.Fatalf("re-decode of one line: %d records, %d/%d bytes, trunc=%v", len(recs2), consumed2, len(line2), trunc2)
		}
		if recs2[0] != got {
			t.Fatalf("decoded record not a fixed point:\n first %+v\nsecond %+v", got, recs2[0])
		}
		line3, err := auditstore.EncodeRecord(recs2[0])
		if err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(line2, line3) {
			t.Fatalf("encoding did not converge:\n second %q\n third %q", line2, line3)
		}
		if got.Seq != r.Seq || got.PID != r.PID || got.Degraded != r.Degraded ||
			!got.Time.Equal(r.Time) || !got.Stamp.Equal(r.Stamp) || got.Session != r.Session {
			t.Fatalf("scalar fields diverged: got %+v want %+v", got, r)
		}
	})
}
