package xserver

import (
	"errors"
	"testing"
	"time"
)

const clipboard = "CLIPBOARD"

// interactWith clicks on the client's window so the fake policy records
// an interaction for it.
func (e *xEnv) interactWith(t *testing.T, win WindowID) {
	t.Helper()
	// Click at the window's origin; assume test geometry puts it on top
	// there. The caller arranged geometry so the click hits.
	s := e.srv
	s.mu.Lock()
	w, err := s.lookupWindow(win)
	if err != nil {
		s.mu.Unlock()
		t.Fatalf("lookupWindow: %v", err)
	}
	x, y := w.x, w.y
	s.mu.Unlock()
	if got := e.srv.HardwareClick(x, y); got != win {
		t.Fatalf("interaction click landed on %d, want %d", got, win)
	}
}

// nextProtocolEvent pops events until one that is not an input event,
// since interaction clicks enqueue ButtonPress events ahead of the
// protocol traffic tests care about.
func nextProtocolEvent(c *Client) (Event, bool) {
	for {
		ev, ok := c.NextEvent()
		if !ok {
			return Event{}, false
		}
		switch ev.Type {
		case KeyPress, KeyRelease, ButtonPress, ButtonRelease, MotionNotify:
			continue
		default:
			return ev, true
		}
	}
}

// runCopy performs the copy half of Figure 6 for src on window win.
func runCopy(t *testing.T, e *xEnv, src *Client, win WindowID) {
	t.Helper()
	e.interactWith(t, win) // step 1: user input
	if err := src.SetSelection(clipboard, win); err != nil {
		t.Fatalf("SetSelection: %v", err) // step 2
	}
	owner, err := src.GetSelectionOwner(clipboard) // steps 3-4
	if err != nil || owner != win {
		t.Fatalf("GetSelectionOwner = %d, %v", owner, err)
	}
}

// runPaste performs the paste half: returns the pasted data.
func runPaste(t *testing.T, e *xEnv, src *Client, tgt *Client, tgtWin WindowID, data []byte) []byte {
	t.Helper()
	e.interactWith(t, tgtWin) // step 5: paste keystroke
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "XSEL_DATA", tgtWin); err != nil {
		t.Fatalf("ConvertSelection: %v", err) // step 6
	}
	req, ok := nextProtocolEvent(src) // step 7
	if !ok || req.Type != SelectionRequest {
		t.Fatalf("owner got %+v, want SelectionRequest", req)
	}
	if err := src.ChangeProperty(req.Requestor, req.Property, data); err != nil {
		t.Fatalf("ChangeProperty: %v", err) // step 8
	}
	notify := Event{
		Type:      SelectionNotify,
		Selection: clipboard,
		Target:    req.Target,
		Property:  req.Property,
	}
	if err := src.SendEvent(req.Requestor, notify); err != nil {
		t.Fatalf("SendEvent(SelectionNotify): %v", err) // step 9
	}
	got, ok := nextProtocolEvent(tgt) // step 10
	if !ok || got.Type != SelectionNotify {
		t.Fatalf("target got %+v, want SelectionNotify", got)
	}
	out, err := tgt.GetProperty(req.Requestor, req.Property) // steps 11-12
	if err != nil {
		t.Fatalf("GetProperty: %v", err)
	}
	if err := tgt.DeleteProperty(req.Requestor, req.Property); err != nil {
		t.Fatalf("DeleteProperty: %v", err) // step 13
	}
	return out
}

func TestFullCopyPasteProtocol(t *testing.T) {
	for _, protected := range []bool{true, false} {
		name := "overhaul"
		if !protected {
			name = "vanilla"
		}
		t.Run(name, func(t *testing.T) {
			e := newXEnv(t, protected)
			src := e.connect(t, 1, "editor")
			tgt := e.connect(t, 2, "terminal")
			srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
			tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)

			runCopy(t, e, src, srcWin)
			got := runPaste(t, e, src, tgt, tgtWin, []byte("hunter2"))
			if string(got) != "hunter2" {
				t.Fatalf("pasted %q", got)
			}
		})
	}
}

func TestCopyWithoutInteractionDenied(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "sniffer")
	win := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	// No click: SetSelection must be refused with BadAccess.
	if err := src.SetSelection(clipboard, win); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("SetSelection = %v, want ErrBadAccess", err)
	}
}

func TestPasteWithoutInteractionDenied(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "editor")
	sniffer := e.connect(t, 2, "sniffer")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	snifWin := e.mapVisibleWindow(t, sniffer, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)

	// Background sniffer (no user input) polls the clipboard.
	if err := sniffer.ConvertSelection(clipboard, "UTF8_STRING", "P", snifWin); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("ConvertSelection = %v, want ErrBadAccess", err)
	}
}

func TestPasteInteractionExpires(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "editor")
	tgt := e.connect(t, 2, "pastebin")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)

	e.interactWith(t, tgtWin)
	e.clk.Advance(3 * time.Second) // beyond δ = 2 s
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "P", tgtWin); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("stale ConvertSelection = %v, want ErrBadAccess", err)
	}
}

func TestVanillaClipboardSniffingSucceeds(t *testing.T) {
	// The attack the paper defends against, demonstrated on the
	// unmodified server: a background process with zero user input
	// reads the clipboard.
	e := newXEnv(t, false)
	src := e.connect(t, 1, "passwordmanager")
	sniffer := e.connect(t, 2, "sniffer")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	snifWin := e.mapVisibleWindow(t, sniffer, 200, 0, 100, 100)

	if err := src.SetSelection(clipboard, srcWin); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	if err := sniffer.ConvertSelection(clipboard, "UTF8_STRING", "P", snifWin); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	req, ok := src.NextEvent()
	if !ok || req.Type != SelectionRequest {
		t.Fatalf("owner got %+v", req)
	}
	if err := src.ChangeProperty(req.Requestor, req.Property, []byte("s3cret")); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}
	got, err := sniffer.GetProperty(req.Requestor, req.Property)
	if err != nil || string(got) != "s3cret" {
		t.Fatalf("vanilla sniff = %q, %v — expected the attack to succeed", got, err)
	}
}

func TestForgedSelectionRequestBlocked(t *testing.T) {
	// §IV-A attack: malware SendEvents a SelectionRequest directly to
	// the owner to receive the copied data.
	e := newXEnv(t, true)
	src := e.connect(t, 1, "editor")
	mal := e.connect(t, 2, "malware")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	malWin := e.mapVisibleWindow(t, mal, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)

	forged := Event{
		Type:      SelectionRequest,
		Selection: clipboard,
		Target:    "UTF8_STRING",
		Property:  "LOOT",
		Requestor: malWin,
	}
	if err := mal.SendEvent(srcWin, forged); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("forged SelectionRequest = %v, want ErrBadAccess", err)
	}
	if ev, ok := nextProtocolEvent(src); ok {
		t.Fatalf("forged request reached the selection owner: %+v", ev)
	}
}

func TestForgedSelectionRequestWorksOnVanilla(t *testing.T) {
	e := newXEnv(t, false)
	src := e.connect(t, 1, "editor")
	mal := e.connect(t, 2, "malware")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	malWin := e.mapVisibleWindow(t, mal, 200, 0, 100, 100)
	if err := src.SetSelection(clipboard, srcWin); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	forged := Event{Type: SelectionRequest, Selection: clipboard, Property: "LOOT", Requestor: malWin}
	if err := mal.SendEvent(srcWin, forged); err != nil {
		t.Fatalf("vanilla forged request = %v, expected delivery", err)
	}
	if ev, ok := nextProtocolEvent(src); !ok || ev.Type != SelectionRequest {
		t.Fatalf("owner got %+v", ev)
	}
}

func TestForgedSelectionNotifyBlocked(t *testing.T) {
	// Malware cannot fake a SelectionNotify to make a victim read a
	// property of the attacker's choosing.
	e := newXEnv(t, true)
	victim := e.connect(t, 1, "victim")
	mal := e.connect(t, 2, "malware")
	vWin := e.mapVisibleWindow(t, victim, 0, 0, 100, 100)
	if err := mal.SendEvent(vWin, Event{Type: SelectionNotify, Selection: clipboard, Property: "EVIL"}); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("forged SelectionNotify = %v, want ErrBadAccess", err)
	}
}

func TestPropertySnoopingBlockedInFlight(t *testing.T) {
	// §IV-A attack: a third client subscribes to property events on the
	// requestor window and races GetProperty before the paste target
	// deletes the data.
	e := newXEnv(t, true)
	src := e.connect(t, 1, "editor")
	tgt := e.connect(t, 2, "terminal")
	snoop := e.connect(t, 3, "snooper")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)

	if err := snoop.SelectPropertyEvents(tgtWin); err != nil {
		t.Fatalf("SelectPropertyEvents: %v", err)
	}
	if err := tgt.SelectPropertyEvents(tgtWin); err != nil {
		t.Fatalf("SelectPropertyEvents: %v", err)
	}

	runCopy(t, e, src, srcWin)
	e.interactWith(t, tgtWin)
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "XSEL_DATA", tgtWin); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	req, _ := nextProtocolEvent(src)
	if err := src.ChangeProperty(req.Requestor, req.Property, []byte("in-flight")); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}

	// The paste target hears about its property; the snooper does not.
	if ev, ok := nextProtocolEvent(tgt); !ok || ev.Type != PropertyNotify {
		t.Fatalf("target got %+v, want PropertyNotify", ev)
	}
	if ev, ok := nextProtocolEvent(snoop); ok {
		t.Fatalf("snooper received %+v for in-flight clipboard data", ev)
	}
	// Nor can the snooper read the property directly.
	if _, err := snoop.GetProperty(req.Requestor, req.Property); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("snooper GetProperty = %v, want ErrBadAccess", err)
	}
	// The legitimate target still can.
	if got, err := tgt.GetProperty(req.Requestor, req.Property); err != nil || string(got) != "in-flight" {
		t.Fatalf("target GetProperty = %q, %v", got, err)
	}
}

func TestPropertySnoopingSucceedsOnVanilla(t *testing.T) {
	e := newXEnv(t, false)
	src := e.connect(t, 1, "editor")
	tgt := e.connect(t, 2, "terminal")
	snoop := e.connect(t, 3, "snooper")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	if err := snoop.SelectPropertyEvents(tgtWin); err != nil {
		t.Fatalf("SelectPropertyEvents: %v", err)
	}
	if err := src.SetSelection(clipboard, srcWin); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "XSEL_DATA", tgtWin); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	req, _ := nextProtocolEvent(src)
	if err := src.ChangeProperty(req.Requestor, req.Property, []byte("loot")); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}
	if ev, ok := nextProtocolEvent(snoop); !ok || ev.Type != PropertyNotify {
		t.Fatalf("snooper got %+v, want PropertyNotify (vanilla)", ev)
	}
	if got, err := snoop.GetProperty(req.Requestor, req.Property); err != nil || string(got) != "loot" {
		t.Fatalf("vanilla snoop = %q, %v", got, err)
	}
}

func TestConvertUnownedSelection(t *testing.T) {
	e := newXEnv(t, true)
	tgt := e.connect(t, 1, "t")
	win := e.mapVisibleWindow(t, tgt, 0, 0, 100, 100)
	e.interactWith(t, win)
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "P", win); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	ev, ok := nextProtocolEvent(tgt)
	if !ok || ev.Type != SelectionNotify || ev.Property != "" {
		t.Fatalf("event = %+v, want empty-property SelectionNotify", ev)
	}
}

func TestSelectionClearOnNewOwner(t *testing.T) {
	e := newXEnv(t, true)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	aWin := e.mapVisibleWindow(t, a, 0, 0, 100, 100)
	bWin := e.mapVisibleWindow(t, b, 200, 0, 100, 100)
	runCopy(t, e, a, aWin)
	runCopy(t, e, b, bWin)
	ev, ok := nextProtocolEvent(a)
	if !ok || ev.Type != SelectionClear {
		t.Fatalf("old owner got %+v, want SelectionClear", ev)
	}
}

func TestConcurrentTransferRejected(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "src")
	tgt := e.connect(t, 2, "tgt")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)
	e.interactWith(t, tgtWin)
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "P1", tgtWin); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "P2", tgtWin); !errors.Is(err, ErrBadMatch) {
		t.Fatalf("second ConvertSelection = %v, want ErrBadMatch", err)
	}
}

func TestChangePropertyOnForeignWindowBlocked(t *testing.T) {
	e := newXEnv(t, true)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	aWin := e.mapVisibleWindow(t, a, 0, 0, 100, 100)
	if err := b.ChangeProperty(aWin, "SPAM", []byte("x")); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign ChangeProperty = %v, want ErrBadAccess", err)
	}
}

func TestPropertyRoundTripOnOwnWindow(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if err := c.ChangeProperty(win, "WM_NAME", []byte("title")); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}
	got, err := c.GetProperty(win, "WM_NAME")
	if err != nil || string(got) != "title" {
		t.Fatalf("GetProperty = %q, %v", got, err)
	}
	if err := c.DeleteProperty(win, "WM_NAME"); err != nil {
		t.Fatalf("DeleteProperty: %v", err)
	}
	if _, err := c.GetProperty(win, "WM_NAME"); !errors.Is(err, ErrBadAtom) {
		t.Fatalf("GetProperty deleted = %v", err)
	}
	if err := c.DeleteProperty(win, "WM_NAME"); !errors.Is(err, ErrBadAtom) {
		t.Fatalf("double DeleteProperty = %v", err)
	}
}

func TestSelectionAtomValidation(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)
	if err := c.SetSelection("", win); !errors.Is(err, ErrBadAtom) {
		t.Fatalf("empty selection = %v", err)
	}
	if err := c.ConvertSelection("", "T", "P", win); !errors.Is(err, ErrBadAtom) {
		t.Fatalf("empty convert = %v", err)
	}
	if err := c.ConvertSelection(clipboard, "T", "", win); !errors.Is(err, ErrBadAtom) {
		t.Fatalf("empty property = %v", err)
	}
	if err := c.ChangeProperty(win, "", nil); !errors.Is(err, ErrBadAtom) {
		t.Fatalf("empty property change = %v", err)
	}
}

func TestSetSelectionForeignWindow(t *testing.T) {
	e := newXEnv(t, true)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	aWin := e.mapVisibleWindow(t, a, 0, 0, 100, 100)
	if err := b.SetSelection(clipboard, aWin); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("foreign SetSelection = %v", err)
	}
}

// --- screen capture ----------------------------------------------------------

func TestScreenCaptureRequiresInteraction(t *testing.T) {
	e := newXEnv(t, true)
	app := e.connect(t, 1, "app")
	shot := e.connect(t, 2, "shot")
	appWin := e.mapVisibleWindow(t, app, 0, 0, 100, 100)
	shotWin := e.mapVisibleWindow(t, shot, 200, 0, 100, 100)
	if err := app.Draw(appWin, []byte("bank-statement")); err != nil {
		t.Fatalf("Draw: %v", err)
	}

	// Background capture: denied.
	if _, err := shot.GetImage(Root); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("background GetImage = %v, want ErrBadAccess", err)
	}
	if _, err := shot.XShmGetImage(appWin); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("background XShmGetImage = %v, want ErrBadAccess", err)
	}

	// With user interaction: granted.
	e.interactWith(t, shotWin)
	img, err := shot.GetImage(Root)
	if err != nil {
		t.Fatalf("GetImage after click: %v", err)
	}
	if string(img) == "" {
		t.Fatal("empty screen capture")
	}
	s := e.srv.StatsSnapshot()
	if s.CaptureRequests < 3 || s.CaptureDenied != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRootCaptureComposesWindows(t *testing.T) {
	e := newXEnv(t, false)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	aWin := e.mapVisibleWindow(t, a, 0, 0, 100, 100)
	bWin := e.mapVisibleWindow(t, b, 200, 0, 100, 100)
	if err := a.Draw(aWin, []byte("AAA")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	if err := b.Draw(bWin, []byte("BBB")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	img, err := a.GetImage(Root)
	if err != nil {
		t.Fatalf("GetImage: %v", err)
	}
	if string(img) != "AAABBB" {
		t.Fatalf("root capture = %q", img)
	}
}

func TestOwnWindowCaptureUnmediated(t *testing.T) {
	e := newXEnv(t, true)
	app := e.connect(t, 1, "app")
	win := e.mapVisibleWindow(t, app, 0, 0, 100, 100)
	if err := app.Draw(win, []byte("mine")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	// No interaction needed to read your own pixels.
	img, err := app.GetImage(win)
	if err != nil || string(img) != "mine" {
		t.Fatalf("own GetImage = %q, %v", img, err)
	}
	if s := e.srv.StatsSnapshot(); s.Queries != 0 {
		t.Fatalf("own-window capture queried the monitor: %+v", s)
	}
}

func TestCopyAreaOwnershipRules(t *testing.T) {
	e := newXEnv(t, true)
	app := e.connect(t, 1, "app")
	spy := e.connect(t, 2, "spy")
	src := e.mapVisibleWindow(t, app, 0, 0, 100, 100)
	dstOwn := e.mapVisibleWindow(t, app, 0, 200, 100, 100)
	spyDst := e.mapVisibleWindow(t, spy, 200, 0, 100, 100)
	if err := app.Draw(src, []byte("pixels")); err != nil {
		t.Fatalf("Draw: %v", err)
	}

	// Same-owner copy: allowed with no monitor query.
	if err := app.CopyArea(src, dstOwn); err != nil {
		t.Fatalf("same-owner CopyArea: %v", err)
	}
	if s := e.srv.StatsSnapshot(); s.Queries != 0 {
		t.Fatalf("same-owner copy queried the monitor: %+v", s)
	}
	got, err := app.GetImage(dstOwn)
	if err != nil || string(got) != "pixels" {
		t.Fatalf("copied content = %q, %v", got, err)
	}

	// Cross-owner copy without interaction: denied.
	if err := spy.CopyArea(src, spyDst); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("cross-owner CopyArea = %v, want ErrBadAccess", err)
	}
	// Copy to a window you don't own: always denied.
	if err := spy.CopyArea(src, dstOwn); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("CopyArea to foreign dst = %v", err)
	}
	// With interaction, cross-owner copying is granted.
	e.interactWith(t, spyDst)
	if err := spy.CopyArea(src, spyDst); err != nil {
		t.Fatalf("interactive CopyArea: %v", err)
	}
	// CopyPlane behaves the same.
	if err := spy.CopyPlane(src, spyDst); err != nil {
		t.Fatalf("interactive CopyPlane: %v", err)
	}
}

func TestVanillaScreenCaptureUnrestricted(t *testing.T) {
	e := newXEnv(t, false)
	app := e.connect(t, 1, "app")
	spy := e.connect(t, 2, "spy")
	win := e.mapVisibleWindow(t, app, 0, 0, 100, 100)
	if err := app.Draw(win, []byte("secret-pixels")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	img, err := spy.GetImage(win)
	if err != nil || string(img) != "secret-pixels" {
		t.Fatalf("vanilla spy capture = %q, %v", img, err)
	}
}

func TestCaptureBadWindow(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	if _, err := c.GetImage(12345); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("GetImage(bad) = %v", err)
	}
	win := e.mapVisibleWindow(t, c, 0, 0, 10, 10)
	if err := c.CopyArea(12345, win); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("CopyArea(bad src) = %v", err)
	}
}

func TestPrimaryAndClipboardIndependent(t *testing.T) {
	// X has multiple selection atoms (PRIMARY, CLIPBOARD, SECONDARY);
	// each is an independent object with its own owner and transfers.
	e := newXEnv(t, true)
	a := e.connect(t, 1, "a")
	b := e.connect(t, 2, "b")
	aWin := e.mapVisibleWindow(t, a, 0, 0, 100, 100)
	bWin := e.mapVisibleWindow(t, b, 200, 0, 100, 100)

	e.interactWith(t, aWin)
	if err := a.SetSelection("PRIMARY", aWin); err != nil {
		t.Fatalf("SetSelection(PRIMARY): %v", err)
	}
	e.interactWith(t, bWin)
	if err := b.SetSelection("CLIPBOARD", bWin); err != nil {
		t.Fatalf("SetSelection(CLIPBOARD): %v", err)
	}
	pOwner, err := a.GetSelectionOwner("PRIMARY")
	if err != nil || pOwner != aWin {
		t.Fatalf("PRIMARY owner = %d, %v", pOwner, err)
	}
	cOwner, err := a.GetSelectionOwner("CLIPBOARD")
	if err != nil || cOwner != bWin {
		t.Fatalf("CLIPBOARD owner = %d, %v", cOwner, err)
	}
	// Claiming CLIPBOARD did not clear PRIMARY: no SelectionClear for a.
	if ev, ok := nextProtocolEvent(a); ok {
		t.Fatalf("a received %+v, want nothing", ev)
	}
}

func TestSelfPasteWithinOneApplication(t *testing.T) {
	// Copy and paste inside the same application (the most common
	// clipboard flow of all) must work: the owner and the requestor are
	// the same client and window.
	e := newXEnv(t, true)
	ed := e.connect(t, 1, "editor")
	win := e.mapVisibleWindow(t, ed, 0, 0, 100, 100)

	runCopy(t, e, ed, win)
	e.interactWith(t, win)
	if err := ed.ConvertSelection(clipboard, "UTF8_STRING", "SELF", win); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	req, ok := nextProtocolEvent(ed)
	if !ok || req.Type != SelectionRequest {
		t.Fatalf("got %+v, want SelectionRequest", req)
	}
	if err := ed.ChangeProperty(req.Requestor, req.Property, []byte("dup")); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}
	notify := Event{Type: SelectionNotify, Selection: clipboard, Target: req.Target, Property: req.Property}
	if err := ed.SendEvent(req.Requestor, notify); err != nil {
		t.Fatalf("SendEvent: %v", err)
	}
	got, err := ed.GetProperty(win, req.Property)
	if err != nil || string(got) != "dup" {
		t.Fatalf("GetProperty = %q, %v", got, err)
	}
	if err := ed.DeleteProperty(win, req.Property); err != nil {
		t.Fatalf("DeleteProperty: %v", err)
	}
}
