package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"overhaul/internal/analysis"
)

func diag(file, analyzer, msg string, line int) analysis.Diagnostic {
	return analysis.Diagnostic{File: file, Line: line, Col: 1, Analyzer: analyzer, Message: msg}
}

// TestBaselineFilter pins the ratchet semantics: keys are
// line-insensitive, and each entry absorbs at most Count findings.
func TestBaselineFilter(t *testing.T) {
	known := []analysis.Diagnostic{
		diag("a.go", "errdrop", "result of f is dropped", 10),
	}
	b := analysis.NewBaseline(known)

	// Same finding on a different line: still known.
	fresh, covered := b.Filter([]analysis.Diagnostic{diag("a.go", "errdrop", "result of f is dropped", 99)})
	if len(fresh) != 0 || covered != 1 {
		t.Errorf("line move should stay baselined: fresh=%d known=%d", len(fresh), covered)
	}

	// A second instance of a baselined finding is a regression.
	fresh, covered = b.Filter([]analysis.Diagnostic{
		diag("a.go", "errdrop", "result of f is dropped", 10),
		diag("a.go", "errdrop", "result of f is dropped", 20),
	})
	if len(fresh) != 1 || covered != 1 {
		t.Errorf("count growth should be fresh: fresh=%d known=%d", len(fresh), covered)
	}

	// Different file, analyzer, or message: fresh.
	for _, d := range []analysis.Diagnostic{
		diag("b.go", "errdrop", "result of f is dropped", 10),
		diag("a.go", "printcheck", "result of f is dropped", 10),
		diag("a.go", "errdrop", "result of g is dropped", 10),
	} {
		if fresh, _ := b.Filter([]analysis.Diagnostic{d}); len(fresh) != 1 {
			t.Errorf("diagnostic %v should not be covered by the baseline", d)
		}
	}
}

// TestBaselineRoundTrip writes and reloads a baseline and checks the
// reloaded ratchet covers exactly the findings it was built from.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []analysis.Diagnostic{
		diag("a.go", "errdrop", "m1", 1),
		diag("a.go", "errdrop", "m1", 2),
		diag("z.go", "lockcheck", "m2", 3),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := analysis.NewBaseline(diags).WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, known := b.Filter(diags)
	if len(fresh) != 0 || known != len(diags) {
		t.Errorf("round-tripped baseline should cover its own findings: fresh=%d known=%d", len(fresh), known)
	}
	if len(b.Entries) != 2 {
		t.Errorf("entries = %d, want 2 (duplicate finding collapses to count=2)", len(b.Entries))
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file must be an error (the driver maps it to exit 2)")
	}
	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadBaseline(bad); err == nil {
		t.Error("corrupt baseline file must be an error")
	}
}
