// Package fleet scales Overhaul from one desktop to a machine hosting
// tens of thousands of concurrent sessions — the ROADMAP's "heavy
// traffic from millions of users" target, approached the way a
// multi-tenant deployment would run it: one orchestrator process, one
// ingress, N independent Overhaul sessions.
//
// The design splits every piece of state along one axis:
//
//   - Immutable, identical across tenants → shared. The decision rule
//     (monitor.Policy), the sensitive-device/alert table, and the
//     application catalog live in a Tables snapshot behind an atomic
//     pointer. Updates copy the whole snapshot and swap the pointer
//     (copy-on-write), so readers never lock and never observe a
//     half-updated table. Sharing is safe precisely because the data
//     never mutates in place: a read-only page cannot become a
//     cross-tenant side channel through its *contents*.
//
//   - Mutable, per-tenant → partitioned. Interaction stamps, the audit
//     ring, activity counters, and the optional telemetry recorder are
//     owned by their Session and touched by no other. This is the
//     "time protection" rule (Ge et al., PAPERS.md): shared *writable*
//     state is a timing probe between tenants, so one tenant hammering
//     its decision path must not dirty a cache line another tenant's
//     decision latency depends on.
//
// Sessions are plain structs — no goroutine, no channel, no clock —
// so booting 100k of them costs only memory (a few hundred bytes each
// until their lazily-allocated audit ring first fills). Traffic
// enters through Fleet.Dispatch, which routes by session ID across a
// lock-striped session table.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"overhaul/internal/monitor"
	"overhaul/internal/probe"
	"overhaul/internal/workload"
)

// Sentinel errors.
var (
	ErrNoSuchSession = errors.New("fleet: no such session")
	ErrSessionClosed = errors.New("fleet: session closed")
	ErrNoSuchProcess = monitor.ErrNoSuchProcess
)

// Tables is one immutable copy-on-write snapshot of everything all
// sessions share: the decision policy, the alert-op table, and the
// application catalog. A Tables value is never mutated after
// construction — Fleet.UpdateTables builds a fresh copy and swaps the
// pointer — so any number of sessions may read it concurrently without
// coordination.
type Tables struct {
	policy   monitor.Policy
	alertOps map[monitor.Op]bool
	apps     map[string]workload.AppSpec
	gen      uint64 // snapshot generation, bumped on every swap
}

// Policy returns the shared decision rule.
func (t *Tables) Policy() monitor.Policy { return t.policy }

// Generation returns the snapshot's generation number.
func (t *Tables) Generation() uint64 { return t.gen }

// AlertOp reports whether a granted op raises a visual alert.
func (t *Tables) AlertOp(op monitor.Op) bool { return t.alertOps[op] }

// App looks up an application spec in the shared catalog.
func (t *Tables) App(name string) (workload.AppSpec, bool) {
	s, ok := t.apps[name]
	return s, ok
}

// clone deep-copies the snapshot so a draft can be edited without
// touching the published version.
func (t *Tables) clone() *Tables {
	nt := &Tables{policy: t.policy, gen: t.gen}
	nt.alertOps = make(map[monitor.Op]bool, len(t.alertOps))
	for k, v := range t.alertOps {
		nt.alertOps[k] = v
	}
	nt.apps = make(map[string]workload.AppSpec, len(t.apps))
	for k, v := range t.apps {
		nt.apps[k] = v
	}
	return nt
}

// TablesDraft is a mutable copy handed to UpdateTables mutators.
type TablesDraft struct {
	// Policy is the decision rule to publish.
	Policy monitor.Policy
	// AlertOps is the op → raises-alert table.
	AlertOps map[monitor.Op]bool
	// Apps is the application catalog.
	Apps map[string]workload.AppSpec
}

// Config parameterises a Fleet.
type Config struct {
	// Policy is the shared decision rule. A zero Threshold selects
	// monitor.DefaultThreshold.
	Policy monitor.Policy
	// AlertOps lists ops whose grants raise alerts; nil selects the
	// monitor's kernel-side default (mic, cam, other devices).
	AlertOps []monitor.Op
	// Apps seeds the shared application catalog; nil selects
	// workload.DevicePool().
	Apps []workload.AppSpec
	// AuditCapacity bounds each session's audit ring. Sessions are
	// numerous, so the default is deliberately small: 64 records.
	AuditCapacity int
	// Probes, when non-nil, arms the fleet.dispatch attach point,
	// fired for every ingress request routed to a session.
	Probes *probe.Registry
}

// DefaultAuditCapacity is the per-session audit ring size. 64 records
// × ~10k sessions ≈ tens of MB worst case, and a session is one
// desktop: its recent decision history, not a datacenter log.
const DefaultAuditCapacity = 64

// sessionShards stripes the session table. Power of two; 64 stripes
// keep create/destroy of unrelated sessions off each other's locks
// even with hundreds of concurrent tenants churning.
const sessionShards = 64

type sessionShard struct {
	mu sync.RWMutex
	m  map[uint64]*Session
}

// Fleet is the orchestrator: the shared Tables snapshot, the session
// table, and the ingress. Safe for concurrent use.
type Fleet struct {
	tables   atomic.Pointer[Tables]
	auditCap int // immutable after New
	// probeDispatch is the fleet.dispatch attach point, resolved once
	// at New; one atomic load per ingress request while unattached.
	probeDispatch *probe.Hook

	shards [sessionShards]sessionShard
	nextID atomic.Uint64
	live   atomic.Int64

	// updateMu serializes UpdateTables writers only; every read of the
	// snapshot goes through the atomic pointer, never this lock.
	updateMu sync.Mutex
}

// New boots an empty fleet.
func New(cfg Config) (*Fleet, error) {
	pol := cfg.Policy
	if pol.Threshold == 0 {
		pol.Threshold = monitor.DefaultThreshold
	}
	if pol.Threshold < 0 {
		return nil, fmt.Errorf("fleet: negative threshold %v", pol.Threshold)
	}
	alertOps := map[monitor.Op]bool{monitor.OpMic: true, monitor.OpCam: true, monitor.OpOther: true}
	if cfg.AlertOps != nil {
		alertOps = make(map[monitor.Op]bool, len(cfg.AlertOps))
		for _, op := range cfg.AlertOps {
			alertOps[op] = true
		}
	}
	appList := cfg.Apps
	if appList == nil {
		appList = workload.DevicePool()
	}
	apps := make(map[string]workload.AppSpec, len(appList))
	for _, s := range appList {
		apps[s.Name] = s
	}
	auditCap := cfg.AuditCapacity
	if auditCap == 0 {
		auditCap = DefaultAuditCapacity
	}
	if auditCap < 0 {
		return nil, fmt.Errorf("fleet: negative audit capacity %d", auditCap)
	}
	f := &Fleet{auditCap: auditCap}
	f.probeDispatch = cfg.Probes.Hook(probe.HookFleetDispatch)
	f.tables.Store(&Tables{policy: pol, alertOps: alertOps, apps: apps, gen: 1})
	for i := range f.shards {
		f.shards[i].m = make(map[uint64]*Session)
	}
	return f, nil
}

// Tables returns the current shared snapshot. The pointer is safe to
// hold: the snapshot it addresses never changes, it only stops being
// current.
func (f *Fleet) Tables() *Tables { return f.tables.Load() }

// UpdateTables publishes a new shared snapshot: mutate receives a deep
// copy of the current tables as a draft, and the edited draft replaces
// the snapshot atomically. Sessions pick it up on their next decision;
// in-flight decisions finish against the snapshot they started with —
// the copy-on-write rule that makes a policy rollout safe under load.
func (f *Fleet) UpdateTables(mutate func(*TablesDraft)) {
	f.updateMu.Lock()
	defer f.updateMu.Unlock()
	cur := f.tables.Load()
	c := cur.clone()
	draft := TablesDraft{Policy: c.policy, AlertOps: c.alertOps, Apps: c.apps}
	mutate(&draft)
	next := &Tables{
		policy:   draft.Policy,
		alertOps: draft.AlertOps,
		apps:     draft.Apps,
		gen:      cur.gen + 1,
	}
	f.tables.Store(next)
}

func (f *Fleet) shard(id uint64) *sessionShard {
	return &f.shards[id&(sessionShards-1)]
}

// CreateSession boots one new session and returns it. Cost: one struct
// allocation and one striped-map insert — no goroutine, no clock, no
// pre-sized buffers.
func (f *Fleet) CreateSession() *Session {
	s := &Session{
		id:       f.nextID.Add(1),
		fleet:    f,
		auditCap: f.auditCap,
	}
	sh := f.shard(s.id)
	sh.mu.Lock()
	sh.m[s.id] = s
	sh.mu.Unlock()
	f.live.Add(1)
	return s
}

// Session resolves a live session by ID.
func (f *Fleet) Session(id uint64) (*Session, bool) {
	sh := f.shard(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// CloseSession tears a session down: it is removed from the ingress
// and every subsequent operation on it fails with ErrSessionClosed.
// Its partitioned state goes away with it — nothing a departed tenant
// wrote survives where a future tenant could read it.
func (f *Fleet) CloseSession(id uint64) error {
	sh := f.shard(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("close session %d: %w", id, ErrNoSuchSession)
	}
	s.closed.Store(true)
	f.live.Add(-1)
	return nil
}

// Size returns the number of live sessions.
func (f *Fleet) Size() int { return int(f.live.Load()) }

// SessionIDs returns the live session IDs in unspecified order.
func (f *Fleet) SessionIDs() []uint64 {
	out := make([]uint64, 0, f.Size())
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// ForEachSession visits every live session. The visit runs without the
// shard lock held, so visitors may call back into the fleet.
func (f *Fleet) ForEachSession(visit func(*Session)) {
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		batch := make([]*Session, 0, len(sh.m))
		for _, s := range sh.m {
			batch = append(batch, s)
		}
		sh.mu.RUnlock()
		for _, s := range batch {
			visit(s)
		}
	}
}

// FleetStats aggregates activity across every live session.
type FleetStats struct {
	Sessions      int
	Notifications uint64
	Grants        uint64
	Denials       uint64
	Spawns        uint64
	Exits         uint64
	DroppedAudit  uint64
}

// StatsSnapshot sums the per-session counters into a fleet-wide view.
func (f *Fleet) StatsSnapshot() FleetStats {
	out := FleetStats{Sessions: f.Size()}
	f.ForEachSession(func(s *Session) {
		st := s.StatsSnapshot()
		out.Notifications += st.Notifications
		out.Grants += st.Grants
		out.Denials += st.Denials
		out.Spawns += st.Spawns
		out.Exits += st.Exits
		out.DroppedAudit += st.DroppedAudit
	})
	return out
}

// NewStandalone boots a fresh single-session fleet whose Tables are a
// private deep copy of f's current snapshot, and returns its one
// session. This is the "duplicated-tables" twin of a shared-snapshot
// session: the equivalence property test drives both with the same
// script and requires byte-identical audit and decision streams, which
// is what proves the copy-on-write sharing is semantically invisible.
func (f *Fleet) NewStandalone() *Session {
	nf := &Fleet{auditCap: f.auditCap}
	nf.tables.Store(f.tables.Load().clone())
	for i := range nf.shards {
		nf.shards[i].m = make(map[uint64]*Session)
	}
	return nf.CreateSession()
}

// RequestKind selects the ingress operation.
type RequestKind int

// Ingress operations: the two message classes of the netlink protocol,
// N_{A,t} and Q_{A,t}, addressed by session.
const (
	RequestNotify RequestKind = iota + 1
	RequestDecide
)

// Request is one unit of ingress traffic, routed by SessionID.
type Request struct {
	SessionID uint64
	Kind      RequestKind
	PID       int
	Op        monitor.Op
	Time      int64 // unix nanoseconds (stamp time for Notify, op time for Decide)
}

// Dispatch routes one request to its session: the fleet's single
// ingress. Decide requests return the verdict; Notify requests return
// verdict 0. Dispatch performs no allocation on the Decide hot path,
// which is what BenchmarkFleetDecide pins.
func (f *Fleet) Dispatch(req Request) (monitor.Verdict, error) {
	s, ok := f.Session(req.SessionID)
	if !ok {
		return 0, ErrNoSuchSession
	}
	var (
		v   monitor.Verdict
		err error
	)
	switch req.Kind {
	case RequestNotify:
		err = s.NotifyNanos(req.PID, req.Time)
	case RequestDecide:
		v, err = s.DecideNanos(req.PID, req.Op, req.Time)
	default:
		return 0, fmt.Errorf("fleet: unknown request kind %d", req.Kind)
	}
	if f.probeDispatch.Wants(int64(req.PID)) {
		ev := probe.Event{
			TimeNanos: req.Time,
			Session:   req.SessionID,
			PID:       int64(req.PID),
			Kind:      probe.KindDispatch,
			Dev:       probe.DevOf(string(req.Op)),
		}
		switch v {
		case monitor.VerdictGrant:
			ev.Verdict = probe.VerdictGrant
		case monitor.VerdictDeny:
			ev.Verdict = probe.VerdictDeny
		}
		f.probeDispatch.Emit(ev)
	}
	return v, err
}
