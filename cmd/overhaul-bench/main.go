// Command overhaul-bench reproduces Table I of the paper: the
// performance overhead of Overhaul on device access, clipboard, screen
// capture, shared memory, and filesystem (Bonnie++-style) workloads,
// comparing an unmodified baseline against the full Overhaul system in
// force-grant mode.
//
// Usage:
//
//	overhaul-bench [-scale quick|default|paper] [-runs n]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"overhaul/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.String("scale", "default", "iteration counts: quick, default, or paper")
	runs := flag.Int("runs", 1, "number of full table runs")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	var counts bench.Counts
	switch *scale {
	case "quick":
		counts = bench.Quick()
	case "default":
		counts = bench.Default()
	case "paper":
		counts = bench.Paper()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	if *asJSON {
		type jsonRow struct {
			bench.Row
			OverheadPct float64 `json:"overheadPct"`
		}
		var all [][]jsonRow
		for i := 0; i < *runs; i++ {
			rows, err := bench.TableI(counts)
			if err != nil {
				return err
			}
			jr := make([]jsonRow, len(rows))
			for j, r := range rows {
				jr[j] = jsonRow{Row: r, OverheadPct: r.OverheadPct()}
			}
			all = append(all, jr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	}

	fmt.Println("Table I — Performance overhead of Overhaul (simulated substrate)")
	fmt.Printf("counts: %+v\n\n", counts)
	for i := 0; i < *runs; i++ {
		rows, err := bench.TableI(counts)
		if err != nil {
			return err
		}
		fmt.Print(bench.Format(rows))
		if *runs > 1 {
			fmt.Println()
		}
	}
	fmt.Println("\nPaper (i7-930, real kernel + X.Org):")
	for _, r := range bench.PaperTableI() {
		fmt.Printf("  %-16s %12s -> %-12s %5.2f %%\n", r.Name, r.Baseline, r.Overhaul, r.OverheadPct)
	}
	return nil
}
