package probe

import (
	"sync/atomic"

	"overhaul/internal/faultinject"
)

// Ring is a perf-buffer-like bounded MPSC event ring: any number of
// concurrent publishers (armed hooks on hot paths), one batched
// consumer. Publishing is lock-free — a CAS claims the next slot — and
// never blocks: when the consumer falls behind and the ring fills,
// the event is dropped and counted, exactly like a perf buffer under
// a slow reader. The decision path is therefore never perturbed by a
// stalled observer; the chaos invariant in internal/faultinject/chaos
// pins that property under injected reader stalls.
//
// Slot protocol (single consumer): a publisher CASes tail from t to
// t+1 (claiming slot t&mask), writes the event, then stores the slot's
// sequence as t+1 — the publication barrier. The consumer reads a slot
// only when its sequence equals position+1, then advances head. A slot
// is reclaimed only after head has passed it, and a publisher can only
// claim a slot once head has passed its previous occupant (the
// full-check reads head before the CAS and head is monotone), so a
// slot is never overwritten while the consumer may still copy it.
type Ring struct {
	mask  uint64
	slots []ringSlot

	head    atomic.Uint64 // next unread position (consumer-owned)
	tail    atomic.Uint64 // next claim position == events published
	dropped atomic.Uint64 // publishes refused on a full ring
	read    atomic.Uint64 // events handed to the consumer
	stalls  atomic.Uint64 // injected reader stalls observed

	// faults is consulted by the batched reader at PointProbeRing
	// (reader stall → overflow). Set before the ring is shared; nil
	// never injects.
	faults faultinject.Hook
}

type ringSlot struct {
	seq atomic.Uint64 // 0 empty; position+1 once the event is visible
	ev  Event
}

// minRingSize keeps the claim/reclaim reasoning trivial even for
// degenerate test rings.
const minRingSize = 8

// NewRing creates a ring with at least the given capacity, rounded up
// to a power of two (minimum 8).
func NewRing(capacity int) *Ring {
	size := minRingSize
	for size < capacity {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]ringSlot, size)}
}

// SetFaultHook installs the fault-injection hook the batched reader
// consults at PointProbeRing. Install before the ring is shared with
// publishers or the consumer; a nil hook (the default) never injects.
func (r *Ring) SetFaultHook(h faultinject.Hook) { r.faults = h }

// Capacity returns the slot count.
func (r *Ring) Capacity() int { return len(r.slots) }

// Publish copies ev into the ring, assigning its Seq (1-based
// publication order). It reports false — counting a drop — when the
// ring is full. Safe for any number of concurrent publishers; never
// blocks, never allocates.
func (r *Ring) Publish(ev Event) bool {
	for {
		t := r.tail.Load()
		h := r.head.Load()
		if t-h >= uint64(len(r.slots)) {
			r.dropped.Add(1)
			return false
		}
		if r.tail.CompareAndSwap(t, t+1) {
			s := &r.slots[t&r.mask]
			ev.Seq = t + 1
			s.ev = ev
			s.seq.Store(t + 1)
			return true
		}
	}
}

// ReadBatch copies up to len(buf) pending events into buf, in
// publication order, and returns the count. Single consumer only. An
// injected PointProbeRing error models a stalled reader: the batch
// returns nothing and consumes nothing, so publishers keep filling the
// ring and eventually overflow into counted drops.
func (r *Ring) ReadBatch(buf []Event) int {
	if f := faultinject.Eval(r.faults, faultinject.PointProbeRing); f.Kind == faultinject.KindError {
		r.stalls.Add(1)
		return 0
	}
	h := r.head.Load()
	n := 0
	for n < len(buf) {
		s := &r.slots[h&r.mask]
		if s.seq.Load() != h+1 {
			break
		}
		buf[n] = s.ev
		n++
		h++
	}
	if n > 0 {
		r.head.Store(h)
		r.read.Add(uint64(n))
	}
	return n
}

// RingStats is a snapshot of the ring's accounting. Published counts
// successful publishes; Dropped counts refused ones; Read counts
// events delivered to the consumer; Pending is what sits in the ring
// right now (Published - Read); Stalls counts injected reader stalls.
// Published + Dropped equals the number of matched events the
// publishers attempted — the accounting identity the chaos invariant
// checks.
type RingStats struct {
	Capacity  int
	Published uint64
	Dropped   uint64
	Read      uint64
	Pending   uint64
	Stalls    uint64
}

// Stats snapshots the counters.
func (r *Ring) Stats() RingStats {
	published := r.tail.Load()
	read := r.read.Load()
	return RingStats{
		Capacity:  len(r.slots),
		Published: published,
		Dropped:   r.dropped.Load(),
		Read:      read,
		Pending:   published - read,
		Stalls:    r.stalls.Load(),
	}
}

// Dropped returns the drop count.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }
