package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/netlink"
)

// ErrChannelDown is returned once the kernel↔X channel has been
// declared dead: retries were exhausted (or the failure was
// permanent), the monitor has been switched into fail-closed degraded
// mode, and every mediated path denies until ReconnectX.
var ErrChannelDown = errors.New("core: netlink channel down")

// Channel retry defaults: a transient fault is retried a couple of
// times with doubling backoff before the channel is declared dead.
const (
	DefaultChannelRetries = 2
	DefaultChannelBackoff = 5 * time.Millisecond
)

// channel wraps the netlink connection between the display server and
// the kernel with the degradation policy both of its users share:
// bounded retry with backoff for transient faults, then a one-way
// transition to "down" that flips the permission monitor into
// fail-closed degraded mode. Backoff is realised on the simulated
// clock — the channel never sleeps on a wall clock.
type channel struct {
	hub     *netlink.Hub
	clk     clock.Clock
	pid     int // the X server's PID (the peer of every message)
	retries int
	backoff time.Duration
	onDown  func(reason string)

	mu   sync.Mutex
	conn *netlink.Conn
	down bool
}

// permanent reports whether err can never be cured by retrying the
// same call (the peer is gone, not glitching).
func permanent(err error) bool {
	return errors.Is(err, netlink.ErrClosed) ||
		errors.Is(err, netlink.ErrNotConnected) ||
		errors.Is(err, netlink.ErrNoHandler)
}

// pause realises one backoff step (attempt ≥ 1) by advancing the
// simulated clock; with a real clock the retry is immediate, since
// blocking the decision path on a wall-clock sleep would be worse
// than the fault.
func (ch *channel) pause(attempt int) {
	if sim, ok := ch.clk.(*clock.Simulated); ok {
		sim.Advance(ch.backoff << (attempt - 1))
	}
}

// state snapshots the guarded fields.
func (ch *channel) state() (*netlink.Conn, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.conn, ch.down
}

// markDown performs the one-way down transition, notifying onDown
// exactly once per outage. The callback runs without ch.mu held; it
// must not call back into the channel.
func (ch *channel) markDown() {
	ch.mu.Lock()
	already := ch.down
	ch.down = true
	onDown := ch.onDown
	ch.mu.Unlock()
	if !already && onDown != nil {
		onDown("netlink channel down")
	}
}

// reset installs a fresh connection and clears the down state
// (ReconnectX).
func (ch *channel) reset(conn *netlink.Conn) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.conn = conn
	ch.down = false
}

// call sends one userspace→kernel message with the retry policy.
func (ch *channel) call(msg any) (any, error) {
	conn, down := ch.state()
	if down || conn == nil {
		return nil, ErrChannelDown
	}
	var lastErr error
	for attempt := 0; attempt <= ch.retries; attempt++ {
		if attempt > 0 {
			ch.pause(attempt)
		}
		reply, err := conn.Call(msg)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if permanent(err) {
			break
		}
	}
	ch.markDown()
	return nil, fmt.Errorf("%w: %v", ErrChannelDown, lastErr)
}

// callUser sends one kernel→userspace message with the retry policy.
func (ch *channel) callUser(msg any) (any, error) {
	_, down := ch.state()
	if down {
		return nil, ErrChannelDown
	}
	var lastErr error
	for attempt := 0; attempt <= ch.retries; attempt++ {
		if attempt > 0 {
			ch.pause(attempt)
		}
		reply, err := ch.hub.CallUser(ch.pid, msg)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if permanent(err) {
			break
		}
	}
	ch.markDown()
	return nil, fmt.Errorf("%w: %v", ErrChannelDown, lastErr)
}
