// Package devfs implements the device filesystem layer: device classes,
// udev-style dynamic device naming, and the trusted helper that keeps
// the kernel's path→class mapping current.
//
// The paper (§IV-B, "Device mediation") notes that modern Linux assigns
// device names dynamically, so Overhaul relies on a trusted,
// superuser-owned helper that reacts to /dev changes and pushes the
// sensitive-device mapping to the kernel over an authenticated channel.
// This package reproduces that component: Attach/Detach simulate hotplug
// events, device names are allocated per-class exactly like udev's
// enumerated names (video0, video1, ...), and every mapping change is
// pushed to a MappingSink (the kernel's permission monitor in the full
// system).
package devfs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"overhaul/internal/fs"
)

// Class identifies a category of privacy-sensitive hardware.
type Class string

// Device classes protected by Overhaul. The paper's prototype protects
// the microphone and camera; the architecture supports arbitrary
// sensors, which we model with the extra classes.
const (
	ClassMicrophone Class = "microphone"
	ClassCamera     Class = "camera"
	ClassGPS        Class = "gps"
	ClassScanner    Class = "scanner"
)

// SensitiveClasses lists every class the helper treats as
// privacy-sensitive, in stable order.
func SensitiveClasses() []Class {
	return []Class{ClassCamera, ClassGPS, ClassMicrophone, ClassScanner}
}

// devDirFor returns the /dev subdirectory and name prefix udev would use
// for a class.
func devPrefixFor(c Class) (dir, prefix string) {
	switch c {
	case ClassMicrophone:
		return "/dev/snd", "pcmC"
	case ClassCamera:
		return "/dev", "video"
	case ClassGPS:
		return "/dev", "gps"
	case ClassScanner:
		return "/dev", "scanner"
	default:
		return "/dev", string(c)
	}
}

// Sentinel errors.
var (
	ErrUnknownDevice = errors.New("unknown device")
	ErrNotSensitive  = errors.New("class is not privacy-sensitive")
)

// MappingSink receives path→class mapping updates from the trusted
// helper. In the assembled system the kernel permission monitor
// implements this; tests may use a fake.
type MappingSink interface {
	// UpdateMapping records that the device node at path belongs to
	// the given sensitive class.
	UpdateMapping(path string, class Class) error
	// RemoveMapping forgets the node at path.
	RemoveMapping(path string) error
}

// Helper is the trusted userspace helper: it owns device-node creation
// in /dev and mirrors the mapping into the kernel via the sink. It is
// safe for concurrent use.
type Helper struct {
	fsys *fs.FS
	sink MappingSink

	mu      sync.Mutex
	counter map[Class]int
	nodes   map[string]Class // path -> class
}

// NewHelper creates the helper, ensuring the /dev hierarchy exists.
func NewHelper(fsys *fs.FS, sink MappingSink) (*Helper, error) {
	if fsys == nil {
		return nil, errors.New("devfs: nil filesystem")
	}
	if sink == nil {
		return nil, errors.New("devfs: nil mapping sink")
	}
	if err := fsys.MkdirAll("/dev/snd", 0o755, fs.Root); err != nil {
		return nil, fmt.Errorf("devfs: create /dev: %w", err)
	}
	return &Helper{
		fsys:    fsys,
		sink:    sink,
		counter: make(map[Class]int),
		nodes:   make(map[string]Class),
	}, nil
}

// Attach simulates hotplug of a device of the given class: it allocates
// the next udev-style name, creates the device node (root-owned,
// world read/write like typical desktop audio/video nodes), and pushes
// the mapping to the kernel. It returns the allocated path.
func (h *Helper) Attach(class Class) (string, error) {
	if !isSensitive(class) {
		return "", fmt.Errorf("devfs attach %q: %w", class, ErrNotSensitive)
	}

	h.mu.Lock()
	defer h.mu.Unlock()

	dir, prefix := devPrefixFor(class)
	idx := h.counter[class]
	h.counter[class]++

	name := prefix + strconv.Itoa(idx)
	if class == ClassMicrophone {
		// ALSA capture-node convention: pcmC<card>D0c.
		name = prefix + strconv.Itoa(idx) + "D0c"
	}
	path := dir + "/" + name

	if err := h.fsys.Mknod(path, string(class), 0o666, fs.Root); err != nil {
		return "", fmt.Errorf("devfs attach %q: %w", class, err)
	}
	if err := h.sink.UpdateMapping(path, class); err != nil {
		// Roll back the node: a device the kernel does not know
		// about must not exist, or mediation would be bypassed.
		_ = h.fsys.Unlink(path, fs.Root)
		return "", fmt.Errorf("devfs attach %q: push mapping: %w", class, err)
	}
	h.nodes[path] = class
	return path, nil
}

// Detach simulates removal of the device node at path.
func (h *Helper) Detach(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()

	if _, ok := h.nodes[path]; !ok {
		return fmt.Errorf("devfs detach %s: %w", path, ErrUnknownDevice)
	}
	if err := h.sink.RemoveMapping(path); err != nil {
		return fmt.Errorf("devfs detach %s: pull mapping: %w", path, err)
	}
	if err := h.fsys.Unlink(path, fs.Root); err != nil {
		return fmt.Errorf("devfs detach %s: %w", path, err)
	}
	delete(h.nodes, path)
	return nil
}

// ClassOf returns the class of the device node at path.
func (h *Helper) ClassOf(path string) (Class, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	c, ok := h.nodes[path]
	if !ok {
		return "", fmt.Errorf("devfs %s: %w", path, ErrUnknownDevice)
	}
	return c, nil
}

// Paths returns the currently attached device paths, sorted.
func (h *Helper) Paths() []string {
	h.mu.Lock()
	defer h.mu.Unlock()

	out := make([]string, 0, len(h.nodes))
	for p := range h.nodes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func isSensitive(c Class) bool {
	for _, s := range SensitiveClasses() {
		if s == c {
			return true
		}
	}
	return false
}
