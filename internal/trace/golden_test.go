package trace

import (
	"strings"
	"testing"
)

// The simulated clock and PID allocation are deterministic, so the
// rendered figures are reproducible byte for byte. Pinning Figure 1
// catches any drift in the protocol, the clock, or the renderer.
const goldenFigure1 = `Figure 1 — Dynamic access control over privacy-sensitive hardware devices
Scenario: application A (pid 2) turns on the microphone after a button click

   ( 1) user           -> display mgr     E_{A,t}: hardware click at t=09:00:02.000
 * ( 2) display mgr    -> kernel PM       N_{A,t}: interaction notification (pid 2, t=09:00:02.000) over netlink
   ( 3) display mgr    -> A               E_{A,t} forwarded to its destination window
 * ( 4) A              -> kernel PM       mic_{t+n}: open(/dev/snd/pcmC0D0c) intercepted at t+n=09:00:02.120
 * ( 5) kernel PM      -> A               grant: n=120ms < δ=2s
 * ( 6) kernel PM      -> display mgr     V_{A,mic}: visual alert request over netlink

Outcome: microphone opened; alert shown: "Application [pid 2] is recording from the microphone"
(* = step added or modified by Overhaul)
`

func TestFigure1Golden(t *testing.T) {
	tr, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	got := tr.Render()
	if got != goldenFigure1 {
		t.Fatalf("Figure 1 drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", got, goldenFigure1)
	}
}

func TestAllFiguresDeterministic(t *testing.T) {
	first, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	second, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for i := range first {
		if first[i].Render() != second[i].Render() {
			t.Fatalf("figure %d not deterministic", i+1)
		}
	}
}

func TestModifiedStepsMatchPaperBolding(t *testing.T) {
	// Figures 1, 2 and 4: the Overhaul-added steps are the kernel
	// notifications, queries, checks and alerts; user input and plain
	// forwarding stay unmodified.
	checks := map[int][]int{ // figure -> 1-based modified step numbers
		1: {2, 4, 5, 6},
		2: {2, 5, 6, 7},
		4: {2, 4, 5, 6, 7},
	}
	traces, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for _, tr := range traces {
		want, ok := checks[tr.Figure]
		if !ok {
			continue
		}
		wantSet := make(map[int]bool, len(want))
		for _, n := range want {
			wantSet[n] = true
		}
		for _, s := range tr.Steps {
			if s.Modified != wantSet[s.Seq] {
				t.Errorf("figure %d step %d modified=%v, want %v (%s)",
					tr.Figure, s.Seq, s.Modified, wantSet[s.Seq], s.Message)
			}
		}
	}
}

func TestRenderNeverEmptyFields(t *testing.T) {
	traces, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for _, tr := range traces {
		for _, s := range tr.Steps {
			if s.From == "" || s.To == "" || strings.TrimSpace(s.Message) == "" {
				t.Fatalf("figure %d step %d has empty fields: %+v", tr.Figure, s.Seq, s)
			}
		}
	}
}
