package core_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/telemetry"
)

// traceRun boots an instrumented system, replays the canonical
// interaction — click → mic open → grant → alert — and returns the
// recorder plus the rendered trace of that interaction.
func traceRun(t *testing.T) (*telemetry.Recorder, string) {
	t.Helper()
	clk := clock.NewSimulated()
	tel := telemetry.New(clk)
	sys, err := core.Boot(core.Options{
		Clock:       clk,
		Enforce:     true,
		AlertSecret: "tabby-cat",
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	app, err := sys.Launch("recorder")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sys.Settle(1500 * time.Millisecond)
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	h, err := app.OpenDevice(mic)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	_ = h.Close()
	if n := len(sys.ActiveAlerts()); n == 0 {
		t.Fatalf("granted open raised no alert")
	}

	spans := tel.Spans()
	if len(spans) == 0 {
		t.Fatalf("no spans recorded")
	}
	return tel, telemetry.FormatTrace(tel.TraceSpans(spans[0].Trace))
}

// TestInteractionTraceConnected is the tentpole acceptance criterion:
// a single simulated interaction produces one connected trace with at
// least five spans crossing at least three subsystems, stamped on the
// virtual clock.
func TestInteractionTraceConnected(t *testing.T) {
	tel, _ := traceRun(t)

	spans := tel.Spans()
	root := spans[0].Trace
	for _, s := range spans {
		if s.Trace != root {
			t.Errorf("span #%d (%s.%s) on trace %d, want every span on trace %d — the path is disconnected",
				s.ID, s.Subsystem, s.Name, s.Trace, root)
		}
	}
	trace := tel.TraceSpans(root)
	if len(trace) < 5 {
		t.Errorf("trace has %d spans, want >= 5", len(trace))
	}
	subs := telemetry.Subsystems(trace)
	if len(subs) < 3 {
		t.Errorf("trace crosses %d subsystems (%v), want >= 3", len(subs), subs)
	}
	// The path must reach from the hardware click all the way to the
	// rendered alert, via the kernel-side decision.
	names := map[string]bool{}
	for _, s := range trace {
		names[s.Subsystem+"."+s.Name] = true
		if s.Start.Before(clock.Epoch) {
			t.Errorf("span %s.%s starts %v, before the virtual epoch", s.Subsystem, s.Name, s.Start)
		}
		if !s.Ended {
			t.Errorf("span %s.%s never ended", s.Subsystem, s.Name)
		}
	}
	for _, want := range []string{
		"xserver.hardware_click", "xserver.notify_interaction",
		"monitor.notify", "kernel.open", "monitor.decide", "xserver.alert",
	} {
		if !names[want] {
			t.Errorf("trace is missing span %s; got %v", want, names)
		}
	}
}

// TestInteractionTraceReproducible: the decision-path trace — IDs,
// timestamps, annotations — is a pure function of the script. Two
// identical runs must render byte-identical traces and snapshots.
func TestInteractionTraceReproducible(t *testing.T) {
	telA, traceA := traceRun(t)
	telB, traceB := traceRun(t)
	if traceA != traceB {
		t.Fatalf("traces differ between identical runs:\n--- A ---\n%s--- B ---\n%s", traceA, traceB)
	}
	ja, err := json.Marshal(telA.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	jb, err := json.Marshal(telB.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ between identical runs")
	}
	if !strings.Contains(traceA, "verdict=grant") {
		t.Errorf("trace does not record the grant:\n%s", traceA)
	}
}

// TestUninstrumentedBootStillWorks: a system booted without a recorder
// (the default) must behave identically — nil-recorder telemetry is a
// no-op, not a crash.
func TestUninstrumentedBootStillWorks(t *testing.T) {
	sys, mic, _, err := core.BootDefault()
	if err != nil {
		t.Fatalf("BootDefault: %v", err)
	}
	if sys.Telemetry() != nil {
		t.Fatalf("default boot has a recorder; want nil")
	}
	app, err := sys.Launch("recorder")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sys.Settle(1500 * time.Millisecond)
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	h, err := app.OpenDevice(mic)
	if err != nil {
		t.Fatalf("OpenDevice without telemetry: %v", err)
	}
	_ = h.Close()
}
