package kernel

// S3 of the sharding issue: the lock-striped process table plus atomic
// stamp storage must be observationally equivalent to the obvious
// single-lock map it replaced. A seeded random op sequence drives both
// side by side, and a separate stress test hammers the same pids from
// many goroutines so `go test -race ./internal/kernel` patrols the
// lock-free paths.

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"overhaul/internal/monitor"
)

// modelTable is the single-lock reference implementation: one map, one
// mutex, newest-wins stamps.
type modelTable struct {
	mu     sync.Mutex
	stamps map[int]time.Time // live pid → stamp (zero = none)
	kids   map[int][]int
}

func newModelTable() *modelTable {
	return &modelTable{stamps: make(map[int]time.Time), kids: make(map[int][]int)}
}

func (m *modelTable) spawn(pid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stamps[pid] = time.Time{}
}

func (m *modelTable) fork(parent, child int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stamps[child] = m.stamps[parent]
	m.kids[parent] = append(m.kids[parent], child)
}

func (m *modelTable) exit(pid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.stamps, pid)
}

func (m *modelTable) notify(pid int, t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.stamps[pid]; ok && t.After(cur) {
		m.stamps[pid] = t
	}
}

func (m *modelTable) pids() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.stamps))
	for pid := range m.stamps {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

func TestShardedTableMatchesModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, enforcing())
		model := newModelTable()

		base := e.clk.Now()
		live := make(map[int]*Process)
		var livePids []int // parallel slice for random choice
		pick := func() (*Process, bool) {
			if len(livePids) == 0 {
				return nil, false
			}
			return live[livePids[rng.Intn(len(livePids))]], true
		}
		add := func(p *Process) {
			live[p.PID()] = p
			livePids = append(livePids, p.PID())
		}
		drop := func(pid int) {
			delete(live, pid)
			for i, v := range livePids {
				if v == pid {
					livePids = append(livePids[:i], livePids[i+1:]...)
					break
				}
			}
		}

		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 2 || len(livePids) == 0: // spawn
				p := e.spawnUser(t, "prop")
				add(p)
				model.spawn(p.PID())
			case op < 4: // fork
				p, _ := pick()
				child, err := p.Fork()
				if err != nil {
					t.Errorf("seed %d step %d: Fork: %v", seed, step, err)
					return false
				}
				add(child)
				model.fork(p.PID(), child.PID())
			case op < 5 && len(livePids) > 1: // exit
				p, _ := pick()
				if err := p.Exit(); err != nil {
					t.Errorf("seed %d step %d: Exit: %v", seed, step, err)
					return false
				}
				drop(p.PID())
				model.exit(p.PID())
			case op < 8: // notify, sometimes with a stale time
				p, _ := pick()
				ts := base.Add(time.Duration(rng.Intn(5000)) * time.Millisecond)
				if err := e.k.Monitor().Notify(p.PID(), ts); err != nil {
					t.Errorf("seed %d step %d: Notify: %v", seed, step, err)
					return false
				}
				model.notify(p.PID(), ts)
			default: // read-only probe happens below for every step
			}

			// Observational equivalence after every step.
			if got, want := e.k.PIDs(), model.pids(); len(got) != len(want) {
				t.Errorf("seed %d step %d: PIDs() = %v, model %v", seed, step, got, want)
				return false
			}
			for pid, p := range live {
				model.mu.Lock()
				want := model.stamps[pid]
				model.mu.Unlock()
				if got := p.InteractionStamp(); !got.Equal(want) {
					t.Errorf("seed %d step %d: stamp(%d) = %v, model %v", seed, step, pid, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentNotifyDecideFork hammers the lock-free decision path
// while the process table churns underneath it. It asserts only
// invariants that hold under any interleaving — the race detector
// supplies the rest.
func TestConcurrentNotifyDecideFork(t *testing.T) {
	e := newEnv(t, enforcing())
	mon := e.k.Monitor()
	base := e.clk.Now()

	const nProcs = 16
	procs := make([]*Process, nProcs)
	for i := range procs {
		procs[i] = e.spawnUser(t, "stress")
		e.interact(t, procs[i])
	}

	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := procs[(w+i)%nProcs]
				switch i % 4 {
				case 0:
					// Newest-wins: errors only for unknown pids, which
					// never exit here.
					if err := mon.Notify(p.PID(), base.Add(time.Duration(w*iters+i)*time.Microsecond)); err != nil {
						t.Errorf("Notify: %v", err)
						return
					}
				case 1:
					// Every proc was stamped at base and all op times
					// stay inside δ, so a deny is a lost update.
					if v := mon.Decide(p.PID(), monitor.OpMic, base.Add(time.Millisecond)); v != monitor.VerdictGrant {
						t.Errorf("Decide(%d) = %v, want grant", p.PID(), v)
						return
					}
				case 2:
					child, err := p.Fork()
					if err != nil {
						t.Errorf("Fork: %v", err)
						return
					}
					// P1: the child's stamp must never be zero — the
					// parent was stamped before the workers started.
					if child.InteractionStamp().IsZero() {
						t.Errorf("forked child %d has no inherited stamp", child.PID())
						return
					}
					if err := child.Exit(); err != nil {
						t.Errorf("child Exit: %v", err)
						return
					}
				case 3:
					_ = e.k.PIDs()
					_, _ = e.k.Process(p.PID())
				}
			}
		}(w)
	}
	wg.Wait()

	// The table converges to exactly the original processes (every
	// forked child exited), each carrying some non-zero stamp.
	if got := e.k.PIDs(); len(got) != nProcs {
		t.Fatalf("PIDs() = %v, want %d live processes", got, nProcs)
	}
	for _, p := range procs {
		if p.InteractionStamp().IsZero() {
			t.Errorf("pid %d lost its stamp", p.PID())
		}
	}
}
