package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHist is a lock-free log-bucketed latency histogram built for
// high-volume open-loop load measurement (cmd/overhaul-load and the
// fleet benchmarks), where the fixed six-bucket ladder of Histogram is
// far too coarse to report p99/p999.
//
// Buckets are HdrHistogram-style: one octave (power of two of
// nanoseconds) per block, split into 16 linear sub-buckets, giving a
// worst-case value error of ~6% across the full range from 1 ns to
// ~73 min. Observe is a couple of shifts plus two atomic adds, safe
// for any number of concurrent recorders; there is no lock anywhere,
// so one tenant hammering its histogram cannot serialize against
// another's — the same partitioning-for-time-protection rule the fleet
// applies to all per-session state.
//
// The zero value is ready to use. A nil *LatencyHist no-ops, mirroring
// the nil-Recorder convention.
type LatencyHist struct {
	counts [latBucketCount]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// latSubBits splits each octave into 2^latSubBits linear sub-buckets.
const latSubBits = 4

const (
	latSub = 1 << latSubBits
	// latBucketCount covers exps 0..62 (int64 nanoseconds): values
	// below latSub land in exact unit buckets, every later octave
	// contributes latSub sub-buckets.
	latBucketCount = latSub + (63-latSubBits)*latSub
)

// latBucket maps a non-negative nanosecond value to its bucket index.
func latBucket(n int64) int {
	if n < latSub {
		return int(n) // exact buckets for tiny values
	}
	exp := bits.Len64(uint64(n)) - 1 // floor log2, >= latSubBits
	mant := int((uint64(n) >> (uint(exp) - latSubBits)) & (latSub - 1))
	return (exp-latSubBits+1)*latSub + mant
}

// latBucketLow returns the inclusive lower bound of bucket idx — the
// value Quantile reports, so quantiles are always conservative (never
// above the true value by more than one sub-bucket width).
func latBucketLow(idx int) int64 {
	if idx < latSub {
		return int64(idx)
	}
	block := idx/latSub - 1
	mant := int64(idx % latSub)
	exp := uint(block + latSubBits)
	return int64(1)<<exp + mant<<(exp-latSubBits)
}

// Observe records one latency observation. Negative durations clamp to
// zero. Lock-free.
func (h *LatencyHist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.counts[latBucket(n)].Add(1)
	h.sum.Add(n)
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *LatencyHist) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Merge adds src's observations into h — how fleet-wide latency is
// aggregated from per-session partitions without the sessions ever
// sharing a live cache line. src keeps its contents.
func (h *LatencyHist) Merge(src *LatencyHist) {
	if h == nil || src == nil {
		return
	}
	for i := range src.counts {
		if c := src.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(src.sum.Load())
	for {
		cur, sm := h.max.Load(), src.max.Load()
		if sm <= cur || h.max.CompareAndSwap(cur, sm) {
			break
		}
	}
}

// Quantile returns the q-quantile (0 < q <= 1) as the lower bound of
// the bucket holding the rank-th observation; q=1 reports the exact
// observed maximum. Zero observations yield zero. Quantile walks the
// bucket array without stopping concurrent recorders, so under load it
// is a consistent-enough estimate, exact once recording has stopped.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max.Load())
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(latBucketLow(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observed latency.
func (h *LatencyHist) Mean() time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / total)
}

// Max returns the largest observed latency.
func (h *LatencyHist) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// LatencySummary is a point-in-time digest of a LatencyHist.
type LatencySummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary digests the histogram into the standard quantile set.
func (h *LatencyHist) Summary() LatencySummary {
	if h == nil {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}
