// Package timeutil exists to carry taint across a package boundary:
// FromClock's result summary (clock taint) is a fact monitor consumes.
package timeutil

import (
	"time"

	"flowfix/clock"
)

// FromClock reads the hardware clock through one indirection.
func FromClock(c clock.Clock) time.Time {
	return c.Now()
}

// Forged fabricates a timestamp from thin air.
func Forged() time.Time {
	return time.Unix(0, 42)
}
