package analysis_test

import (
	"testing"

	"overhaul/internal/analysis"
	"overhaul/internal/analysis/analysistest"
)

// TestAnalyzersGolden runs every analyzer against its fixture tree
// under testdata/. Expectations live in the fixtures as
// // want "substring" comments.
func TestAnalyzersGolden(t *testing.T) {
	for _, a := range analysis.All() {
		t.Run(a.Name, func(t *testing.T) {
			diags := analysistest.Run(t, "testdata/"+a.Name, a)
			if len(diags) == 0 {
				t.Fatalf("fixture for %s produced no diagnostics; the golden harness is not exercising it", a.Name)
			}
			for _, d := range diags {
				if d.Analyzer != a.Name {
					t.Errorf("diagnostic from unexpected analyzer: %s", d)
				}
				if d.File == "" || d.Line == 0 {
					t.Errorf("diagnostic missing position: %s", d)
				}
			}
		})
	}
}

// TestRegistry pins the suite composition the CI gate depends on.
func TestRegistry(t *testing.T) {
	want := []string{"atomiccheck", "clockcheck", "errdrop", "failclosedcheck", "flowcheck", "lockcheck", "lockordercheck", "printcheck", "spancheck", "stampcheck"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, name)
		}
		if analysis.ByName(name) != all[i] {
			t.Errorf("ByName(%s) does not resolve to the registered analyzer", name)
		}
		if all[i].Doc == "" {
			t.Errorf("analyzer %s has no Doc", name)
		}
	}
	if analysis.ByName("nonesuch") != nil {
		t.Error("ByName(nonesuch) should be nil")
	}
}
