package analysis

import (
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression annotation:
//
//	//overhaul:allow <analyzer> <reason>
//
// The annotation silences <analyzer> on the line the comment sits on
// and on the line immediately below it, covering both the trailing
// form (code //overhaul:allow ...) and the standalone form (comment on
// its own line above the code). The reason is mandatory and is what a
// reviewer reads instead of the diagnostic, so an allow without one is
// reported under the pseudo-analyzer "allow".
const AllowPrefix = "//overhaul:allow"

// allow is one parsed suppression annotation.
type allow struct {
	analyzer string
	reason   string
}

// parseAllow splits a raw comment into its annotation parts. ok is
// false when the comment is not an allow annotation at all; a present
// annotation with missing fields returns ok true and empty parts.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, AllowPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, AllowPrefix)
	// Require a separator so e.g. //overhaul:allowx is not an allow.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// parseAllows extracts the suppression table of one file: line number
// of the annotation -> allows declared there. Malformed annotations
// come back as ready-made diagnostics.
func parseAllows(fset *token.FileSet, f *File) (map[int][]allow, []Diagnostic) {
	var allows map[int][]allow
	var bad []Diagnostic
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			analyzer, reason, ok := parseAllow(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if analyzer == "" || reason == "" {
				bad = append(bad, Diagnostic{
					File:     f.Name,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: "allow",
					Message:  "malformed suppression: want //overhaul:allow <analyzer> <reason>",
				})
				continue
			}
			if allows == nil {
				allows = make(map[int][]allow)
			}
			allows[pos.Line] = append(allows[pos.Line], allow{analyzer: analyzer, reason: reason})
		}
	}
	return allows, bad
}

// suppressed reports whether a diagnostic from analyzer at line is
// covered by an annotation on the same line or the line above.
func (f *File) suppressed(analyzer string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, a := range f.allows[l] {
			if a.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}
