package analysis

import (
	"go/ast"
	"go/types"
)

// Lockcheck enforces the locking discipline of the simulated kernel's
// shared structures. Two rules:
//
//  1. Pairing: within a function, every X.Lock() must have a matching
//     X.Unlock() (deferred or explicit) on the same receiver
//     expression, and likewise RLock/RUnlock. The codebase uses both
//     the defer idiom and short explicit critical sections that
//     release before blocking work; what is never acceptable is a
//     lock with no release in sight.
//
//  2. Guarded fields: the repository convention (documented in
//     internal/ipc and internal/kernel) declares a struct's mutex
//     before the fields it guards. An exported method of a
//     lock-bearing type that reads or writes a field declared after
//     the mutex without ever acquiring it is flagged. Fields whose
//     own (local) type carries a mutex — the ipc carrier, the
//     kernel's ipcTables — are exempt: such fields are immutable
//     pointers or values whose state is guarded by their own lock,
//     which this rule checks at their methods instead.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "locks must be released in the same function, and exported methods " +
		"of lock-bearing types must lock before touching guarded fields",
	Run: runLockcheck,
	// Typed since the interprocedural engine landed: guarded-field
	// resolution uses real type info, falling back to the syntactic
	// convention scan when the tree does not type-check.
	NeedsTypes: true,
}

// lockInfo describes one lock-bearing struct type.
type lockInfo struct {
	mutexField string // field name; "Mutex"/"RWMutex" when embedded
	embedded   bool
	guarded    []string          // fields declared after the mutex, in order
	fieldType  map[string]string // guarded field name -> local named type ("" if other)
	// selfGuarded marks guarded fields whose own type carries a mutex
	// (resolved through real type information, so cross-package
	// lock-bearing types count too). Only populated on the typed path;
	// the syntactic path approximates through fieldType + locked.
	selfGuarded map[string]bool
}

func (li *lockInfo) isGuarded(name string) bool {
	for _, g := range li.guarded {
		if g == name {
			return true
		}
	}
	return false
}

func runLockcheck(pass *Pass) {
	// Guarded-field resolution prefers real type information: mutex
	// fields are matched by type identity (alias-proof), and the
	// field-guards-itself exemption sees through pointers and package
	// boundaries. Trees that do not type-check (broken fixtures) fall
	// back to the original syntactic convention scan.
	locked := collectLockInfoTyped(pass)
	if locked == nil {
		locked = collectLockInfo(pass.Pkg)
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockPairing(pass, fn)
			if !isTestFile(f.Name) {
				checkGuardedFields(pass, fn, locked)
			}
		}
	}
}

// collectLockInfoTyped builds the lock-bearing type table from the
// package's type information: the first field of type sync.Mutex or
// sync.RWMutex (by type identity, not spelling) starts the guarded
// region, and a guarded field is exempt when its own type — resolved
// through pointers and across packages — carries a mutex of its own.
// Returns nil when the package has no usable type information.
func collectLockInfoTyped(pass *Pass) map[string]*lockInfo {
	ti := pass.TypeInfo()
	if ti == nil || ti.Pkg == nil || len(ti.Errors) > 0 {
		return nil
	}
	out := make(map[string]*lockInfo)
	scope := ti.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		_, st := namedStructOf(tn.Type())
		if st == nil {
			continue
		}
		info := &lockInfo{fieldType: make(map[string]string), selfGuarded: make(map[string]bool)}
		seenMutex := false
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !seenMutex {
				if isMutexType(field.Type()) {
					info.mutexField = field.Name()
					info.embedded = field.Embedded()
					seenMutex = true
				}
				continue
			}
			info.guarded = append(info.guarded, field.Name())
			if fn, fst := namedStructOf(field.Type()); fst != nil {
				info.fieldType[field.Name()] = fn.Obj().Name()
				info.selfGuarded[field.Name()] = structHasMutex(fst)
			}
		}
		if seenMutex {
			out[tn.Name()] = info
		}
	}
	return out
}

// collectLockInfo scans the package's struct declarations for
// sync.Mutex / sync.RWMutex fields and records which sibling fields
// they guard (everything declared after the mutex, by convention).
func collectLockInfo(pkg *Package) map[string]*lockInfo {
	out := make(map[string]*lockInfo)
	for _, f := range pkg.Files {
		syncName := importName(f.AST, "sync")
		if syncName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			info := &lockInfo{fieldType: make(map[string]string)}
			seenMutex := false
			for _, field := range st.Fields.List {
				if !seenMutex {
					if name, embedded, ok := mutexFieldName(field, syncName); ok {
						info.mutexField, info.embedded = name, embedded
						seenMutex = true
					}
					continue
				}
				tname := localTypeName(field.Type)
				for _, id := range field.Names {
					info.guarded = append(info.guarded, id.Name)
					info.fieldType[id.Name] = tname
				}
			}
			if seenMutex {
				out[ts.Name.Name] = info
			}
			return true
		})
	}
	return out
}

// mutexFieldName matches a struct field of type sync.Mutex or
// sync.RWMutex, named or embedded.
func mutexFieldName(field *ast.Field, syncName string) (name string, embedded, ok bool) {
	sel, isSel := field.Type.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	qual, isIdent := sel.X.(*ast.Ident)
	if !isIdent || qual.Name != syncName {
		return "", false, false
	}
	if sel.Sel.Name != "Mutex" && sel.Sel.Name != "RWMutex" {
		return "", false, false
	}
	if len(field.Names) == 0 {
		return sel.Sel.Name, true, true
	}
	return field.Names[0].Name, false, true
}

// localTypeName extracts the bare local type identifier of a field
// type, through one level of pointer.
func localTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lockVerbs pairs each acquisition method with its release.
var lockVerbs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairing flags acquisitions with no release on the same
// receiver expression anywhere in the function (nested function
// literals included, so defer-in-closure releases count).
func checkLockPairing(pass *Pass, fn *ast.FuncDecl) {
	type acquisition struct {
		recv string
		verb string
		node *ast.CallExpr
	}
	var acquired []acquisition
	released := make(map[string]bool) // "recv\x00verb"
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		recv := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquired = append(acquired, acquisition{recv: recv, verb: sel.Sel.Name, node: call})
		case "Unlock", "RUnlock":
			released[recv+"\x00"+sel.Sel.Name] = true
		}
		return true
	})
	for _, a := range acquired {
		if !released[a.recv+"\x00"+lockVerbs[a.verb]] {
			pass.ReportFix(a.node.Pos(), pairingFix(pass, a.recv, lockVerbs[a.verb], a.node),
				"%s.%s() is never released in this function: pair it with defer %s.%s()",
				a.recv, a.verb, a.recv, lockVerbs[a.verb])
		}
	}
}

// pairingFix proposes inserting `defer recv.Unlock()` directly after
// the unpaired acquisition, indented to the acquisition's column.
func pairingFix(pass *Pass, recv, release string, call *ast.CallExpr) []SuggestedFix {
	col := pass.Position(call.Pos()).Column
	indent := "\n"
	for i := 1; i < col; i++ {
		indent += "\t"
	}
	return []SuggestedFix{{
		Message: "release on exit with defer " + recv + "." + release + "()",
		Edits:   []TextEdit{pass.Edit(call.End(), call.End(), indent+"defer "+recv+"."+release+"()")},
	}}
}

// checkGuardedFields flags exported methods of lock-bearing types that
// touch guarded fields without acquiring the type's own mutex.
func checkGuardedFields(pass *Pass, fn *ast.FuncDecl, locked map[string]*lockInfo) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
		return
	}
	tname := localTypeName(fn.Recv.List[0].Type)
	info := locked[tname]
	if info == nil || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fn.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return
	}

	// The method's own acquisition expression: r.mu for a named field,
	// r itself for an embedded mutex.
	ownLock := recvName + "." + info.mutexField
	if info.embedded {
		ownLock = recvName
	}
	acquires := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && types.ExprString(sel.X) == ownLock {
			acquires = true
			return false
		}
		return true
	})
	if acquires {
		return
	}
	reported := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName || !info.isGuarded(sel.Sel.Name) {
			return true
		}
		// A field whose own type is lock-bearing guards itself; the
		// pointer/value read here is construction-time immutable. On
		// the typed path the exemption is resolved by type identity
		// (selfGuarded); syntactically it falls back to same-package
		// name lookup.
		if info.selfGuarded != nil {
			if info.selfGuarded[sel.Sel.Name] {
				return true
			}
		} else if ftype := info.fieldType[sel.Sel.Name]; ftype != "" && locked[ftype] != nil {
			return true
		}
		mutex := "the " + info.mutexField + " lock"
		if info.embedded {
			mutex = "the embedded " + info.mutexField
		}
		pass.Reportf(sel.Pos(), "exported method %s.%s reads %s.%s, guarded by %s, without acquiring it",
			tname, fn.Name.Name, recvName, sel.Sel.Name, mutex)
		reported = true
		return false
	})
}
