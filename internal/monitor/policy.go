package monitor

import (
	"fmt"
	"sync"
	"time"
)

// Policy is the pure temporal-proximity decision rule D(Q_{A,t}) (paper
// §III-B), extracted from the Monitor so that it can be shared: the
// Monitor applies it on the single-desktop decision path, and
// internal/fleet applies the same value across thousands of sessions
// from one immutable copy-on-write snapshot. Policy is a small value
// type with no pointers — comparing, copying, and embedding it are all
// free — and Evaluate is a pure function of its inputs, which is what
// makes the fleet ≡ standalone equivalence property testable
// byte-for-byte.
type Policy struct {
	// Threshold is δ, the temporal proximity window. Must be positive;
	// the Monitor constructor defaults it to DefaultThreshold.
	Threshold time.Duration
	// Force short-circuits every decision to grant (benchmark mode,
	// paper Table I).
	Force bool
	// Enforce turns blocking on; false is observe-only mode.
	Enforce bool
}

// Query carries everything one decision needs: the process view read
// from the task store plus the operation timestamp. It is passed by
// value — building one performs no allocation.
type Query struct {
	// OpTime is the privileged operation's timestamp.
	OpTime time.Time
	// Stamp is the process's most recent authentic-interaction time
	// (zero if it has never received input).
	Stamp time.Time
	// Degraded is the fail-closed reason when the mediation substrate
	// is broken; empty means healthy.
	Degraded string
	// Exists reports whether the process is alive in the task store.
	Exists bool
	// Disabled reports whether the process's permissions are
	// force-disabled (the ptrace guard).
	Disabled bool
}

// Fixed decision reasons. Exported so tests and the fleet equivalence
// property can assert on the exact strings; the dynamic reasons
// (degraded, stale) are produced by Evaluate itself.
const (
	ReasonForceGrant     = "force-grant (benchmark mode)"
	ReasonObserveOnly    = "observe-only mode"
	ReasonNoSuchProcess  = "no such process"
	ReasonPtraceGuard    = "permissions disabled (ptrace guard)"
	ReasonNoInteraction  = "no recorded user interaction"
	ReasonStampAfterOp   = "interaction at or after operation"
	ReasonWithinDelta    = "within temporal proximity threshold"
	reasonDegradedPrefix = "protection degraded: "
)

// Evaluate applies the rule to one query and returns the verdict with
// its human-readable reason. Every path is allocation-free in steady
// state: the stale-stamp denial quantizes its staleness to two
// significant figures and hands out an interned string, so a fleet
// denying at rate does not allocate one reason per denial — and equal
// (staleness, δ) pairs produce the identical string value across all
// sessions, which the fleet ≡ standalone equivalence property relies
// on.
func (p Policy) Evaluate(q Query) (Verdict, string) {
	switch {
	case p.Force:
		//overhaul:allow flowcheck force-grant deliberately bypasses freshness: benchmark mode measures mediation overhead with the verdict pinned
		return VerdictGrant, ReasonForceGrant
	case !p.Enforce:
		//overhaul:allow flowcheck observe-only mode grants by policy while still recording stamp age; enforcement is the ablation axis
		return VerdictGrant, ReasonObserveOnly
	case q.Degraded != "":
		// Fail closed: a decision path whose trusted substrate is
		// broken must deny, whatever the stamps say.
		return VerdictDeny, reasonDegradedPrefix + q.Degraded
	case !q.Exists:
		return VerdictDeny, ReasonNoSuchProcess
	case q.Disabled:
		return VerdictDeny, ReasonPtraceGuard
	case q.Stamp.IsZero():
		return VerdictDeny, ReasonNoInteraction
	case q.OpTime.Before(q.Stamp):
		// An operation "before" the interaction can only happen
		// through clock misuse; treat as immediate proximity.
		return VerdictGrant, ReasonStampAfterOp
	case q.OpTime.Sub(q.Stamp) < p.Threshold:
		return VerdictGrant, ReasonWithinDelta
	default:
		return VerdictDeny, staleReason(q.OpTime.Sub(q.Stamp)-p.Threshold, p.Threshold)
	}
}

// QuantizeStale rounds a staleness down to two significant figures
// (3.25s → 3.2s, 987ms → 980ms), the resolution the stale-denial
// reason reports. Coarsening the dynamic part is what makes the reason
// cacheable: a session denying continuously produces a handful of
// distinct reasons instead of one per nanosecond. Exported so the
// probe layer's ReasonText (which cannot import this package) is
// pinned against it by test.
func QuantizeStale(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	q := time.Duration(1)
	for d/q >= 100 {
		q *= 10
	}
	return d - d%q
}

// staleKey identifies one interned stale reason.
type staleKey struct {
	stale, threshold time.Duration
}

// staleReasons caches formatted stale-denial reasons. Bounded: δ is
// per-policy constant and quantized stalenesses cluster, so the cache
// saturates at a few dozen entries in practice; the cap only guards
// against an adversarial spread of thresholds.
var staleReasons struct {
	sync.RWMutex
	m map[staleKey]string
}

const staleReasonCacheCap = 4096

// staleReason returns the interned reason string for a stale denial,
// formatting and caching it on first sight of the (staleness, δ) pair.
func staleReason(stale, threshold time.Duration) string {
	k := staleKey{QuantizeStale(stale), threshold}
	staleReasons.RLock()
	s, ok := staleReasons.m[k]
	staleReasons.RUnlock()
	if ok {
		return s
	}
	s = fmt.Sprintf("interaction stale by %v (δ=%v)", k.stale, threshold)
	staleReasons.Lock()
	if staleReasons.m == nil {
		staleReasons.m = make(map[staleKey]string, 64)
	}
	if len(staleReasons.m) < staleReasonCacheCap {
		staleReasons.m[k] = s
	}
	staleReasons.Unlock()
	return s
}

// DegradedDenial reports whether a decision under this policy counts as
// a degraded (fail-closed) denial rather than a temporal-proximity one:
// degraded mode only bites when the policy actually enforces.
func (p Policy) DegradedDenial(degraded string) bool {
	return degraded != "" && !p.Force && p.Enforce
}

// Policy returns the monitor's decision rule as a shareable value.
func (m *Monitor) Policy() Policy {
	return Policy{Threshold: m.threshold, Force: m.force, Enforce: m.enforce}
}
