// Command overhaul-top is the observability console for a simulated
// Overhaul system: it boots the default enforcing machine with a
// telemetry recorder attached, replays a deterministic interaction
// workload (clicks, sensitive-device opens, a stale open that denies),
// and renders what the enforcement stack recorded — metrics, decision-
// path traces, and the flight recorder's post-mortem dumps.
//
// Because the whole system runs on a virtual clock with sequential
// trace IDs, the output is byte-for-byte reproducible: two invocations
// with the same flags print the same bytes.
//
//	overhaul-top           # dashboard: metrics, traces, flight dumps
//	overhaul-top -json     # the full telemetry snapshot as JSON
//	overhaul-top -trace 4  # the span tree of the trace containing span 4
//	overhaul-top -watch    # re-render the dashboard after each round
//
// Probe mode attaches an eBPF-style probe before the workload runs and
// prints the matched event stream afterwards — the live-tracing path:
//
//	overhaul-top -probe ""                          # match-all firehose
//	overhaul-top -probe "hook=kernel.decide verdict=deny"
//	overhaul-top -probe "op=open dev=mic"           # device opens only
//
// Fleet mode aggregates across many sessions instead of tracing one
// system: it boots a fleet, replays a deterministic traffic mix into
// every session, and prints fleet-wide totals plus the sessions with
// the most denials (the malware signature an operator hunts for).
//
//	overhaul-top -fleet 64                # fleet totals + top sessions
//	overhaul-top -fleet 64 -mix bot-storm # a hostile mix
//	overhaul-top -fleet 64 -session 7     # one session's counters + audit
//	overhaul-top -fleet 64 -json          # the whole aggregation as JSON
//
// Store mode queries a durable audit store directory (written by
// overhaul-chaos -store, or by fleet mode with -store) with no live
// system at all — the post-incident forensics path:
//
//	overhaul-top -store DIR                          # the whole recovered trail
//	overhaul-top -store DIR -verdict deny -limit 20  # recent denials
//	overhaul-top -store DIR -since 5m -pid 42        # one process, recent window
//	overhaul-top -fleet 64 -store DIR -session 7     # a session's durable trail
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/monitor"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit the full telemetry snapshot as JSON")
	traceSpan := flag.Uint64("trace", 0, "print the span tree of the trace containing this span ID")
	watch := flag.Bool("watch", false, "render the dashboard after every workload round")
	rounds := flag.Int("rounds", 3, "number of interaction rounds to replay")
	fleetN := flag.Int("fleet", 0, "fleet mode: boot this many sessions and aggregate across them")
	fleetEvents := flag.Int("events", 200, "fleet mode: mix events replayed per session")
	fleetMix := flag.String("mix", "poisson-desks", "fleet mode: traffic mix to replay")
	session := flag.Uint64("session", 0, "fleet/store mode: restrict to this one session")
	storeDir := flag.String("store", "", "query a durable audit store directory (with -fleet: sink every session into it first)")
	cold := flag.Bool("cold", false, "store query: stream sealed segments directly (footer seek, no index build)")
	since := flag.String("since", "", "store query: RFC3339 instant, or a duration back from the newest record (e.g. 5m)")
	pid := flag.Int("pid", 0, "store query: only this pid")
	verdict := flag.String("verdict", "", "store query: only this verdict (grant|deny)")
	reason := flag.String("reason", "", "store query: only reasons containing this substring")
	limit := flag.Int("limit", 0, "store query: cap the records printed (0 = all)")
	probeSpec := flag.String("probe", "-", `attach a probe spec (e.g. "hook=kernel.decide verdict=deny"; "" = match all) and print its events after the workload`)
	flag.Parse()
	probeOn := *probeSpec != "-"

	q := storeQuery{
		since: *since, pid: *pid, verdict: *verdict,
		reason: *reason, session: *session, limit: *limit,
	}
	if *fleetN > 0 {
		return runFleet(*fleetN, *fleetEvents, *fleetMix, *session, *jsonOut, *storeDir)
	}
	if *storeDir != "" {
		if *cold {
			return runColdQuery(*storeDir, q, *jsonOut)
		}
		return runStoreQuery(*storeDir, q, *jsonOut)
	}
	if *session != 0 {
		fmt.Fprintln(os.Stderr, "overhaul-top: -session requires -fleet or -store")
		return 2
	}

	clk := clock.NewSimulated()
	tel := telemetry.New(clk)
	var (
		reg       *probe.Registry
		probeRing *probe.Ring
	)
	if probeOn {
		reg = probe.NewRegistry()
		probeRing = probe.NewRing(4096)
		if _, err := reg.AttachSpec(*probeSpec, probeRing); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
	}
	sys, err := core.Boot(core.Options{
		Clock:       clk,
		Enforce:     true,
		AlertSecret: "tabby-cat",
		Telemetry:   tel,
		Probes:      reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	app, err := sys.Launch("recorder")
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-top:", err)
		return 2
	}
	sys.Settle(1500 * time.Millisecond)

	for i := 1; i <= *rounds; i++ {
		round(sys, app, mic)
		if *watch && !*jsonOut && *traceSpan == 0 {
			fmt.Printf("── round %d/%d ──\n", i, *rounds)
			dashboard(tel)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tel.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-top:", err)
			return 2
		}
	case *traceSpan != 0:
		id, ok := tel.TraceOf(telemetry.SpanID(*traceSpan))
		if !ok {
			fmt.Fprintf(os.Stderr, "overhaul-top: no span %d recorded\n", *traceSpan)
			return 1
		}
		fmt.Printf("trace %d (via span %d):\n", id, *traceSpan)
		fmt.Print(telemetry.FormatTrace(tel.TraceSpans(id)))
	case !*watch:
		dashboard(tel)
	}
	if probeOn && !*jsonOut && *traceSpan == 0 {
		printProbes(reg, probeRing)
	}
	return 0
}

// printProbes renders the attached probes and the event stream their
// rings captured during the workload.
func printProbes(reg *probe.Registry, ring *probe.Ring) {
	fmt.Println("== probes ==")
	for _, info := range reg.List() {
		spec := info.Spec
		if spec == "" {
			spec = "(match all)"
		}
		fmt.Printf("probe %d %s hooks=%d matched=%d dropped=%d\n",
			info.ID, spec, len(info.Hooks), info.Matched, info.Dropped)
	}
	buf := make([]probe.Event, 256)
	for {
		n := ring.ReadBatch(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			fmt.Println(buf[i].Format(monitor.DefaultThreshold))
		}
	}
}

// round replays one deterministic interaction sequence: a click that
// stamps the process, a microphone open inside δ (grant + alert), then
// a second open after the stamp went stale (deny + flight dump).
func round(sys *core.System, app *core.App, mic string) {
	_ = app.Click()
	sys.Settle(50 * time.Millisecond)
	if h, err := app.OpenDevice(mic); err == nil {
		_ = h.Close()
	}
	sys.Settle(3 * time.Second) // δ expires: the stamp is stale now
	if h, err := app.OpenDevice(mic); err == nil {
		_ = h.Close()
	}
	sys.Settle(5 * time.Second) // let the alerts expire between rounds
}

// dashboard renders the human-readable console view.
func dashboard(tel *telemetry.Recorder) {
	snap := tel.Snapshot()
	fmt.Println("== metrics ==")
	fmt.Print(telemetry.FormatMetrics(snap.Metrics))
	fmt.Println("== traces ==")
	printTraces(tel, snap)
	fmt.Println("== flight ==")
	if len(snap.Dumps) == 0 {
		fmt.Println("(no dumps)")
		return
	}
	for _, d := range snap.Dumps {
		fmt.Printf("dump %d at %s: %s\n", d.Seq, d.Time.Format("15:04:05.000000"), d.Reason)
	}
	last := snap.Dumps[len(snap.Dumps)-1]
	fmt.Printf("last dump (%d events):\n", len(last.Events))
	fmt.Print(telemetry.FormatFlight(last.Events))
}

// printTraces lists every recorded trace as an indented span tree.
func printTraces(tel *telemetry.Recorder, snap telemetry.Snapshot) {
	seen := map[telemetry.TraceID]bool{}
	for _, s := range snap.Spans {
		if seen[s.Trace] {
			continue
		}
		seen[s.Trace] = true
		spans := tel.TraceSpans(s.Trace)
		fmt.Printf("trace %d (%d spans, subsystems %v):\n",
			s.Trace, len(spans), telemetry.Subsystems(spans))
		fmt.Print(telemetry.FormatTrace(spans))
	}
	if len(seen) == 0 {
		fmt.Println("(no traces)")
	}
	if snap.SpansDropped > 0 {
		fmt.Printf("(%d spans dropped)\n", snap.SpansDropped)
	}
}
