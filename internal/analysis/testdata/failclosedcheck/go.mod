module failfix

go 1.22
