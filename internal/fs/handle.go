package fs

import (
	"fmt"
	"io"
	"sync"
)

// Handle is an open file descriptor. Reads and writes act on the
// underlying inode; the handle carries its own offset, like a UNIX file
// description. Handles are safe for concurrent use.
type Handle struct {
	fs     *FS
	node   *node
	path   string
	access Access

	mu     sync.Mutex
	offset int
	closed bool
}

var (
	_ io.Reader = (*Handle)(nil)
	_ io.Writer = (*Handle)(nil)
	_ io.Closer = (*Handle)(nil)
)

// Path returns the path the handle was opened with.
func (h *Handle) Path() string { return h.path }

// Kind returns the kind of the underlying inode.
func (h *Handle) Kind() NodeKind { return h.node.kind }

// DeviceClass returns the device class for device nodes, or "".
func (h *Handle) DeviceClass() string { return h.node.device }

// Read implements io.Reader.
func (h *Handle) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	if h.closed {
		return 0, fmt.Errorf("read %s: %w", h.path, ErrClosed)
	}
	if h.access == AccessWrite {
		return 0, fmt.Errorf("read %s: %w", h.path, ErrWriteOnly)
	}

	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()

	if h.offset >= len(h.node.data) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.offset:])
	h.offset += n
	return n, nil
}

// Write implements io.Writer, appending at the handle's offset and
// extending the file as needed.
func (h *Handle) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	if h.closed {
		return 0, fmt.Errorf("write %s: %w", h.path, ErrClosed)
	}
	if h.access == AccessRead {
		return 0, fmt.Errorf("write %s: %w", h.path, ErrReadOnly)
	}

	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()

	if grow := h.offset + len(p) - len(h.node.data); grow > 0 {
		h.node.data = append(h.node.data, make([]byte, grow)...)
	}
	copy(h.node.data[h.offset:], p)
	h.offset += len(p)
	h.node.mod = h.fs.clk.Now()
	return len(p), nil
}

// ReadAll returns the remaining content from the current offset.
func (h *Handle) ReadAll() ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	if h.closed {
		return nil, fmt.Errorf("read %s: %w", h.path, ErrClosed)
	}
	if h.access == AccessWrite {
		return nil, fmt.Errorf("read %s: %w", h.path, ErrWriteOnly)
	}

	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()

	out := make([]byte, len(h.node.data)-h.offset)
	copy(out, h.node.data[h.offset:])
	h.offset = len(h.node.data)
	return out, nil
}

// Seek moves the handle's offset to an absolute position.
func (h *Handle) Seek(offset int) error {
	h.mu.Lock()
	defer h.mu.Unlock()

	if h.closed {
		return fmt.Errorf("seek %s: %w", h.path, ErrClosed)
	}
	if offset < 0 {
		return fmt.Errorf("seek %s: %w: negative offset", h.path, ErrInvalidPath)
	}
	h.offset = offset
	return nil
}

// Close implements io.Closer. Closing twice is an error.
func (h *Handle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()

	if h.closed {
		return fmt.Errorf("close %s: %w", h.path, ErrClosed)
	}
	h.closed = true
	return nil
}
