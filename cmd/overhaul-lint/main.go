// Command overhaul-lint runs the domain-specific static analyzers of
// internal/analysis over a source tree and reports invariant
// violations.
//
// Usage:
//
//	overhaul-lint [flags] [root ...]
//
// Each root is a directory scanned recursively (a trailing /... is
// accepted and ignored, so ./... works); the default is the current
// directory. Diagnostics print as file:line:col: analyzer: message,
// or as a JSON array with -json.
//
// Exit status is part of the contract:
//
//	0  clean — no findings, or every finding is covered by -baseline
//	1  fresh findings (regressions relative to the baseline, if any)
//	2  driver error: bad usage, unloadable tree, unreadable baseline
//
// A committed baseline (-baseline lint-baseline.json) turns the gate
// into a ratchet: known findings are tolerated, new ones fail.
// Regenerate it with -write-baseline after triage. -fix applies each
// diagnostic's suggested rewrite in place (-diff previews the same
// rewrite as a unified diff without touching files). -sarif emits the
// full finding set as SARIF 2.1.0 for CI artifact upload. -cachedir
// reuses a previous run's results when no input file changed.
//
// Findings are suppressed in source with
//
//	//overhaul:allow <analyzer> <reason>
//
// on or directly above the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"overhaul/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("overhaul-lint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit diagnostics as JSON")
	list := flags.Bool("list", false, "list analyzers and exit")
	enable := flags.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flags.String("disable", "", "comma-separated analyzers to skip")
	fix := flags.Bool("fix", false, "apply suggested fixes in place (single root only)")
	diff := flags.Bool("diff", false, "print suggested fixes as a unified diff without writing")
	sarifPath := flags.String("sarif", "", "write findings as SARIF 2.1.0 to this file (- for stdout)")
	baselinePath := flags.String("baseline", "", "baseline file of known findings; only fresh findings fail")
	writeBaseline := flags.Bool("write-baseline", false, "regenerate the -baseline file from current findings and exit 0")
	cacheDir := flags.String("cachedir", "", "cache directory; identical inputs reuse the previous run")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *fix && *diff {
		fmt.Fprintln(stderr, "overhaul-lint: -fix and -diff are mutually exclusive")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "overhaul-lint: -write-baseline requires -baseline <file>")
		return 2
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
		return 2
	}

	// The baseline is loaded before any analysis so a misconfigured
	// gate (flag pointing at a missing or corrupt file) fails fast as a
	// driver error, never as a silently-empty baseline.
	var baseline *analysis.Baseline
	if *baselinePath != "" && !*writeBaseline {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
	}

	roots := flags.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	if (*fix || *diff) && len(roots) > 1 {
		fmt.Fprintln(stderr, "overhaul-lint: -fix/-diff accept a single root (fix paths are root-relative)")
		return 2
	}

	var diags []analysis.Diagnostic
	var fixRoot string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		fixRoot = root
		mod, err := analysis.Load(root)
		if err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
		diags = append(diags, runWithCache(mod, analyzers, *cacheDir, stderr)...)
	}

	if *writeBaseline {
		b := analysis.NewBaseline(diags)
		if err := b.WriteBaseline(*baselinePath); err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s: %d finding(s) in %d entr(ies)\n", *baselinePath, len(diags), len(b.Entries))
		return 0
	}

	// SARIF carries the full finding set, baselined ones included: the
	// artifact is a report of everything the analyzers believe, while
	// the exit code gates only on regressions.
	if *sarifPath != "" {
		data, err := analysis.SARIF(diags, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
		if *sarifPath == "-" {
			fmt.Fprintln(stdout, string(data))
		} else if err := os.WriteFile(*sarifPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: sarif: %v\n", err)
			return 2
		}
	}

	fresh, known := diags, 0
	if baseline != nil {
		fresh, known = baseline.Filter(diags)
	}

	if *fix || *diff {
		res, err := analysis.ApplyFixes(fixRoot, fresh, *diff)
		if err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
		if *diff {
			fmt.Fprint(stdout, res.Diff)
		}
		if *fix {
			for _, f := range res.Files {
				fmt.Fprintf(stdout, "fixed %s\n", f)
			}
		}
		if res.Skipped > 0 {
			fmt.Fprintf(stderr, "overhaul-lint: %d fix(es) skipped due to overlapping edits; re-run after applying\n", res.Skipped)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analysis.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d)
		}
		if len(fresh) > 0 {
			fmt.Fprintf(stdout, "%d finding(s)\n", len(fresh))
		}
		if known > 0 {
			fmt.Fprintf(stdout, "%d known finding(s) suppressed by baseline\n", known)
		}
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// runWithCache runs the analyzers, consulting the run cache when a
// cache directory was given. Cache failures degrade to a live run (a
// stale or unwritable cache must never change results), with store
// errors surfaced as warnings.
func runWithCache(mod *analysis.Module, analyzers []*analysis.Analyzer, cacheDir string, stderr io.Writer) []analysis.Diagnostic {
	if cacheDir == "" {
		return analysis.Run(mod, analyzers)
	}
	key, err := analysis.CacheKey(mod, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "overhaul-lint: warning: %v (running uncached)\n", err)
		return analysis.Run(mod, analyzers)
	}
	if diags, ok := analysis.LoadCachedRun(cacheDir, key); ok {
		return diags
	}
	diags := analysis.Run(mod, analyzers)
	if err := analysis.StoreCachedRun(cacheDir, key, mod, diags); err != nil {
		fmt.Fprintf(stderr, "overhaul-lint: warning: %v\n", err)
	}
	return diags
}

// selectAnalyzers applies the -enable / -disable flags to the suite.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	chosen := analysis.All()
	if enable != "" {
		chosen = nil
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			chosen = append(chosen, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			skip[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range chosen {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return chosen, nil
}
