package probe

import (
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	h := r.Hook(HookKernelDecide)
	if h != nil {
		t.Fatal("nil registry must resolve nil hooks")
	}
	if h.Armed() {
		t.Fatal("nil hook must never be armed")
	}
	if h.Wants(1) {
		t.Fatal("nil hook must never want an event")
	}
	// Emitting on a nil-resolved hook must be a no-op, not a panic
	// (subsystems always guard with Armed, but the contract holds).
	if h.Name() != "" {
		t.Fatal("nil hook name")
	}
	if r.List() != nil {
		t.Fatal("nil registry List must be nil")
	}
	if _, err := r.Attach(Spec{}, NewRing(8)); err == nil {
		t.Fatal("attach on nil registry must error")
	}
	if err := r.Detach(1); err == nil {
		t.Fatal("detach on nil registry must error")
	}
}

func TestRegistryHookVocabulary(t *testing.T) {
	r := NewRegistry()
	names := HookNames()
	if len(names) != 8 {
		t.Fatalf("vocabulary has %d hooks, want 8", len(names))
	}
	for _, name := range names {
		h := r.Hook(name)
		if h == nil {
			t.Fatalf("hook %q missing", name)
		}
		if h.Name() != name {
			t.Fatalf("hook %q reports name %q", name, h.Name())
		}
		if h.Armed() {
			t.Fatalf("fresh hook %q armed", name)
		}
		if !KnownHook(name) {
			t.Fatalf("KnownHook(%q) = false", name)
		}
	}
	if r.Hook("kernel.close") != nil {
		t.Fatal("unknown hook name must resolve nil")
	}
}

func TestAttachDetachLifecycle(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(64)

	// Single-hook attach arms exactly that hook.
	p1, err := r.AttachSpec("hook=kernel.decide verdict=deny", ring)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hook(HookKernelDecide).Armed() {
		t.Fatal("kernel.decide not armed after attach")
	}
	if r.Hook(HookKernelOpen).Armed() {
		t.Fatal("kernel.open armed by a kernel.decide attach")
	}

	// Hook-less attach arms everything.
	p2, err := r.AttachSpec("op=input", ring)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range HookNames() {
		if !r.Hook(name).Armed() {
			t.Fatalf("hook %q not armed by match-all attach", name)
		}
	}

	// Emission: deny decide matches p1; input matches p2 only.
	deny := Event{Kind: KindDecide, Verdict: VerdictDeny}
	r.Hook(HookKernelDecide).Emit(deny)
	input := Event{Kind: KindInput}
	r.Hook(HookXServerInput).Emit(input)
	if p1.Matched() != 1 {
		t.Fatalf("p1 matched %d, want 1", p1.Matched())
	}
	if p2.Matched() != 1 {
		t.Fatalf("p2 matched %d, want 1 (input only)", p2.Matched())
	}

	infos := r.List()
	if len(infos) != 2 || infos[0].ID != p1.ID() || infos[1].ID != p2.ID() {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Spec != "op=decide verdict=deny" && infos[0].Spec != "hook=kernel.decide op=decide verdict=deny" {
		// p1's spec had no op filter; just sanity-check the hook field.
		if infos[0].Hooks[0] != HookKernelDecide {
			t.Fatalf("p1 hooks %v", infos[0].Hooks)
		}
	}

	// Detach p2: only kernel.decide stays armed (p1).
	if err := r.Detach(p2.ID()); err != nil {
		t.Fatal(err)
	}
	if !r.Hook(HookKernelDecide).Armed() {
		t.Fatal("kernel.decide disarmed by detaching the other probe")
	}
	if r.Hook(HookXServerInput).Armed() {
		t.Fatal("xserver.input still armed after detach")
	}
	if err := r.Detach(p2.ID()); err == nil {
		t.Fatal("double detach must error")
	}
	if err := r.Detach(p1.ID()); err != nil {
		t.Fatal(err)
	}
	for _, name := range HookNames() {
		if r.Hook(name).Armed() {
			t.Fatalf("hook %q armed after all probes detached", name)
		}
	}
	if len(r.List()) != 0 {
		t.Fatal("List non-empty after full detach")
	}
}

func TestAttachErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Attach(Spec{}, nil); err == nil {
		t.Fatal("nil ring must be rejected")
	}
	if _, err := r.Attach(Spec{Hook: "bogus"}, NewRing(8)); err == nil {
		t.Fatal("unknown hook must be rejected")
	}
	if _, err := r.AttachSpec("op=???", NewRing(8)); err == nil {
		t.Fatal("bad spec must be rejected")
	}
}

func TestEmitRespectsSpec(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(64)
	if _, err := r.AttachSpec("hook=kernel.decide dev=mic verdict=deny pid=1-50", ring); err != nil {
		t.Fatal(err)
	}
	h := r.Hook(HookKernelDecide)
	h.Emit(Event{Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 10})  // match
	h.Emit(Event{Kind: KindDecide, Dev: DevCam, Verdict: VerdictDeny, PID: 10})  // dev mismatch
	h.Emit(Event{Kind: KindDecide, Dev: DevMic, Verdict: VerdictGrant, PID: 10}) // verdict mismatch
	h.Emit(Event{Kind: KindDecide, Dev: DevMic, Verdict: VerdictDeny, PID: 99})  // pid mismatch
	buf := make([]Event, 8)
	if n := ring.ReadBatch(buf); n != 1 {
		t.Fatalf("ring received %d events, want 1", n)
	}
	if buf[0].PID != 10 || buf[0].Dev != DevMic {
		t.Fatalf("wrong event published: %+v", buf[0])
	}
}

// TestWantsPidWindow pins the first-stage filter: Wants is the union
// of the attached specs' pid windows, recomputed on attach and detach.
func TestWantsPidWindow(t *testing.T) {
	r := NewRegistry()
	h := r.Hook(HookKernelDecide)
	if h.Wants(7) {
		t.Fatal("unattached hook must not want any pid")
	}

	narrow, err := r.AttachSpec("hook=kernel.decide pid=100-200", NewRing(8))
	if err != nil {
		t.Fatal(err)
	}
	for pid, want := range map[int64]bool{99: false, 100: true, 200: true, 201: false} {
		if got := h.Wants(pid); got != want {
			t.Errorf("narrow window: Wants(%d) = %v, want %v", pid, got, want)
		}
	}

	// A second probe with no pid filter widens the union to everything.
	wide, err := r.AttachSpec("hook=kernel.decide dev=cam", NewRing(8))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Wants(7) || !h.Wants(1<<40) {
		t.Fatal("unfiltered probe must widen the window to all pids")
	}

	// Detaching it narrows the window back.
	if err := r.Detach(wide.ID()); err != nil {
		t.Fatal(err)
	}
	if h.Wants(7) || !h.Wants(150) {
		t.Fatal("detach must recompute the pid window")
	}
	if err := r.Detach(narrow.ID()); err != nil {
		t.Fatal(err)
	}
	if h.Wants(150) {
		t.Fatal("fully detached hook must not want any pid")
	}
}
