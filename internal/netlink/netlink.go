// Package netlink simulates the Linux netlink facility as used by
// Overhaul: a duplex kernel↔userspace message channel with kernel-side
// peer authentication.
//
// The paper (§IV-B, "Secure communication channel") establishes a
// netlink channel between the kernel permission monitor and the X
// server. Netlink itself does not authenticate; Overhaul's kernel
// instead *introspects* the connecting userspace process — checking that
// its executable is loaded from the well-known, superuser-owned path of
// the X binaries — before trusting it. This package reproduces that
// structure: a Hub lives on the kernel side, userspace processes Connect
// with their PID, and the Hub consults an Authenticator before admitting
// them. Both directions are synchronous calls, mirroring the
// request/response use in the paper (interaction notifications and
// permission queries upward, alert requests downward).
package netlink

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"overhaul/internal/faultinject"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

// Sentinel errors.
var (
	ErrAuthFailed   = errors.New("netlink: peer authentication failed")
	ErrClosed       = errors.New("netlink: connection closed")
	ErrNoHandler    = errors.New("netlink: no handler installed")
	ErrNotConnected = errors.New("netlink: peer not connected")
	ErrDuplicate    = errors.New("netlink: pid already connected")
	// ErrChannelFault marks a message lost to an injected channel
	// fault. Callers treat it like any transport failure: the message
	// did not arrive, and the affected decision path must fail closed.
	ErrChannelFault = errors.New("netlink: channel fault")
)

// Handler processes one message and returns a reply.
type Handler func(msg any) (any, error)

// Authenticator decides whether the process with the given PID may
// connect. The kernel's implementation introspects the process's
// executable path and owner, per the paper.
type Authenticator interface {
	AuthenticatePeer(pid int) error
}

// AuthenticatorFunc adapts a function to the Authenticator interface.
type AuthenticatorFunc func(pid int) error

var _ Authenticator = AuthenticatorFunc(nil)

// AuthenticatePeer implements Authenticator.
func (f AuthenticatorFunc) AuthenticatePeer(pid int) error { return f(pid) }

// Stats counts channel activity.
type Stats struct {
	Connects     uint64
	AuthFailures uint64
	UserToKernel uint64
	KernelToUser uint64
	// Fault-injection accounting (zero without an armed hook).
	Dropped    uint64
	Delayed    uint64
	Duplicated uint64
}

// hubStats is the hub's live counter block. Every field is an atomic
// so the per-message paths never take the hub lock just to count.
type hubStats struct {
	connects     atomic.Uint64
	authFailures atomic.Uint64
	userToKernel atomic.Uint64
	kernelToUser atomic.Uint64
	dropped      atomic.Uint64
	delayed      atomic.Uint64
	duplicated   atomic.Uint64
}

// Hub is the kernel endpoint of a netlink family. It is safe for
// concurrent use.
type Hub struct {
	auth Authenticator

	// stats synchronizes itself with atomics; it is not guarded by mu.
	stats hubStats

	mu            sync.RWMutex
	kernelHandler Handler
	conns         map[int]*Conn
	faults        faultinject.Hook
	tel           *telemetry.Recorder
	// mUserToKernel and mKernelToUser are pre-resolved message counters,
	// interned once in SetTelemetry so the per-message paths skip the
	// metric-key lookup (nil and nil-safe when telemetry is off).
	mUserToKernel *telemetry.Counter
	mKernelToUser *telemetry.Counter
	// probeSend/probeRecv are the netlink.send (kernel→user) and
	// netlink.recv (user→kernel) attach points, resolved in SetProbes.
	probeSend *probe.Hook
	probeRecv *probe.Hook
}

// NewHub creates a hub whose connections are vetted by auth.
func NewHub(auth Authenticator) (*Hub, error) {
	if auth == nil {
		return nil, errors.New("netlink: nil authenticator")
	}
	return &Hub{auth: auth, conns: make(map[int]*Conn)}, nil
}

// SetKernelHandler installs the handler for userspace→kernel messages.
func (h *Hub) SetKernelHandler(fn Handler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kernelHandler = fn
}

// SetFaultHook installs the fault-injection hook consulted on every
// message in both directions (PointNetlinkUserToKernel and
// PointNetlinkKernelToUser). A nil hook disables injection.
func (h *Hub) SetFaultHook(hook faultinject.Hook) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults = hook
}

// SetTelemetry installs the telemetry recorder consulted for channel
// message counters and fault flight-recorder events. A nil recorder
// (the default) disables instrumentation.
func (h *Hub) SetTelemetry(tel *telemetry.Recorder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tel = tel
	if tel.Enabled() {
		h.mUserToKernel = tel.Counter("netlink", "messages", "dir=user_to_kernel")
		h.mKernelToUser = tel.Counter("netlink", "messages", "dir=kernel_to_user")
	} else {
		h.mUserToKernel, h.mKernelToUser = nil, nil
	}
}

// SetProbes resolves the hub's probe attach points from reg. A nil
// registry (the default) leaves the channel uninstrumented.
func (h *Hub) SetProbes(reg *probe.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probeSend = reg.Hook(probe.HookNetlinkSend)
	h.probeRecv = reg.Hook(probe.HookNetlinkRecv)
}

// applyFault evaluates the channel fault point for one message and
// updates the fault counters. The returned fault tells the caller
// whether to drop (KindError) or double-deliver (KindDuplicate) the
// message; delays have already been realised on the virtual clock by
// the injector.
func (h *Hub) applyFault(p faultinject.Point) faultinject.Fault {
	h.mu.RLock()
	hook := h.faults
	tel := h.tel
	h.mu.RUnlock()

	f := faultinject.Eval(hook, p)
	if !f.Injected() {
		return f
	}
	switch f.Kind {
	case faultinject.KindError:
		h.stats.dropped.Add(1)
	case faultinject.KindDelay:
		h.stats.delayed.Add(1)
	case faultinject.KindDuplicate:
		h.stats.duplicated.Add(1)
	}
	if tel.Enabled() {
		tel.Add("netlink", "faults", "point="+string(p)+" kind="+f.Kind.String(), 1)
		if f.Kind == faultinject.KindError {
			// A dropped channel message is exactly the failure the
			// enforcement stack must survive closed; leave the fault
			// point's name in the flight ring so a post-mortem dump
			// shows what the channel lost.
			tel.RecordEvent(telemetry.SpanContext{}, "netlink", "fault",
				"injected fault at "+string(p)+": message dropped")
		}
	}
	return f
}

// Connect authenticates the peer and returns its connection. A given
// PID may hold at most one connection at a time.
func (h *Hub) Connect(pid int, userHandler Handler) (*Conn, error) {
	if err := h.auth.AuthenticatePeer(pid); err != nil {
		h.stats.authFailures.Add(1)
		return nil, fmt.Errorf("%w: pid %d: %v", ErrAuthFailed, pid, err)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.conns[pid]; ok {
		return nil, fmt.Errorf("%w: pid %d", ErrDuplicate, pid)
	}
	c := &Conn{hub: h, pid: pid, userHandler: userHandler}
	h.conns[pid] = c
	h.stats.connects.Add(1)
	return c, nil
}

// CallUser sends a kernel→userspace message to the connection held by
// pid and returns its reply.
func (h *Hub) CallUser(pid int, msg any) (any, error) {
	h.mu.RLock()
	c, ok := h.conns[pid]
	var fn Handler
	if ok {
		fn = c.userHandler
	}
	m := h.mKernelToUser
	pb := h.probeSend
	h.mu.RUnlock()
	h.stats.kernelToUser.Add(1)
	m.Add(1)
	if pb.Wants(int64(pid)) {
		pb.Emit(probe.Event{PID: int64(pid), Kind: probe.KindSend})
	}

	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNotConnected, pid)
	}
	if fn == nil {
		return nil, fmt.Errorf("%w: pid %d has no user handler", ErrNoHandler, pid)
	}
	switch f := h.applyFault(faultinject.PointNetlinkKernelToUser); f.Kind {
	case faultinject.KindError:
		return nil, fmt.Errorf("%w: kernel→user pid %d: %w", ErrChannelFault, pid, f.Err)
	case faultinject.KindDuplicate:
		// The message arrives twice; the reply to the first copy is
		// lost in favour of the retransmission's.
		_, _ = fn(msg)
	}
	return fn(msg)
}

// Connected reports whether pid holds a live connection.
func (h *Hub) Connected(pid int) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.conns[pid]
	return ok
}

// StatsSnapshot returns a copy of the hub's counters.
func (h *Hub) StatsSnapshot() Stats {
	return Stats{
		Connects:     h.stats.connects.Load(),
		AuthFailures: h.stats.authFailures.Load(),
		UserToKernel: h.stats.userToKernel.Load(),
		KernelToUser: h.stats.kernelToUser.Load(),
		Dropped:      h.stats.dropped.Load(),
		Delayed:      h.stats.delayed.Load(),
		Duplicated:   h.stats.duplicated.Load(),
	}
}

func (h *Hub) drop(pid int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, pid)
}

// Conn is a userspace endpoint.
type Conn struct {
	hub *Hub
	pid int

	mu          sync.Mutex
	userHandler Handler
	closed      bool
}

// PID returns the peer PID this connection was authenticated as.
func (c *Conn) PID() int { return c.pid }

// Call sends a userspace→kernel message and returns the kernel's reply.
func (c *Conn) Call(msg any) (any, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}

	c.hub.mu.RLock()
	fn := c.hub.kernelHandler
	m := c.hub.mUserToKernel
	pb := c.hub.probeRecv
	c.hub.mu.RUnlock()
	c.hub.stats.userToKernel.Add(1)
	m.Add(1)
	if pb.Wants(int64(c.pid)) {
		pb.Emit(probe.Event{PID: int64(c.pid), Kind: probe.KindRecv})
	}

	if fn == nil {
		return nil, ErrNoHandler
	}
	switch f := c.hub.applyFault(faultinject.PointNetlinkUserToKernel); f.Kind {
	case faultinject.KindError:
		return nil, fmt.Errorf("%w: user→kernel pid %d: %w", ErrChannelFault, c.pid, f.Err)
	case faultinject.KindDuplicate:
		// Double delivery: the kernel handler runs twice (the monitor's
		// newest-wins stamp semantics make notifications idempotent;
		// duplicated queries simply audit twice). The first reply is
		// superseded by the retransmission's.
		_, _ = fn(msg)
	}
	return fn(msg)
}

// Close tears the connection down. Closing twice returns ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.hub.drop(c.pid)
	return nil
}
