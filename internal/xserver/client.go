package xserver

import (
	"fmt"
	"sync"
)

// Client is one X client connection, bound to a process.
type Client struct {
	srv  *Server
	conn int
	pid  int
	name string

	mu     sync.Mutex
	queue  []Event
	closed bool
}

// PID returns the process the connection belongs to.
func (c *Client) PID() int { return c.pid }

// Name returns the client's name.
func (c *Client) Name() string { return c.name }

// deliver appends an event to the client queue.
func (c *Client) deliver(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.queue = append(c.queue, ev)
}

// NextEvent pops the oldest pending event; ok is false when the queue
// is empty.
func (c *Client) NextEvent() (ev Event, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return Event{}, false
	}
	ev = c.queue[0]
	c.queue = c.queue[1:]
	return ev, true
}

// PendingEvents returns the number of queued events.
func (c *Client) PendingEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// DrainEvents pops and returns all pending events.
func (c *Client) DrainEvents() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.queue
	c.queue = nil
	return out
}

// Close disconnects the client. Its windows are unmapped and destroyed
// and any selections it owns are cleared.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrDisconnected
	}
	c.closed = true
	c.mu.Unlock()

	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.clients, c.conn)
	for id, w := range s.windows {
		if w.owner == c {
			delete(s.windows, id)
			for i, wid := range s.stacking {
				if wid == id {
					s.stacking = append(s.stacking[:i], s.stacking[i+1:]...)
					break
				}
			}
			if s.focus == id {
				s.focus = Root
			}
		}
	}
	for name, sel := range s.selections {
		if sel.owner == c {
			delete(s.selections, name)
		}
	}
	return nil
}

func (c *Client) alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed
}

// --- window management -------------------------------------------------------

// CreateWindow creates an unmapped window with the given geometry.
func (c *Client) CreateWindow(x, y, w, h int) (WindowID, error) {
	if !c.alive() {
		return 0, ErrDisconnected
	}
	if w <= 0 || h <= 0 {
		return 0, fmt.Errorf("create window %dx%d: %w", w, h, ErrBadMatch)
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextWindow
	s.nextWindow++
	s.windows[id] = &window{
		id:       id,
		owner:    c,
		x:        x,
		y:        y,
		w:        w,
		h:        h,
		props:    make(map[string][]byte),
		inFlight: make(map[string]bool),
	}
	s.stacking = append(s.stacking, id)
	return id, nil
}

// MapWindow makes the window visible and raises it. The map time starts
// the visibility-threshold clock used by the clickjacking defence.
func (c *Client) MapWindow(id WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("map window %d: %w", id, ErrBadAccess)
	}
	if !w.mapped {
		w.mapped = true
		w.mappedAt = s.clk.Now()
	}
	s.raise(id)
	if s.focus == Root {
		s.focus = id
	}
	return nil
}

// UnmapWindow hides the window.
func (c *Client) UnmapWindow(id WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("unmap window %d: %w", id, ErrBadAccess)
	}
	w.mapped = false
	if s.focus == id {
		s.focus = Root
	}
	return nil
}

// RaiseWindow brings the window to the top of the stacking order.
// Remapping resets the visibility clock only when the window was hidden;
// raising does not.
func (c *Client) RaiseWindow(id WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("raise window %d: %w", id, ErrBadAccess)
	}
	s.raise(id)
	return nil
}

// SetFocus gives keyboard focus to the window.
func (c *Client) SetFocus(id WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("focus window %d: %w", id, ErrBadAccess)
	}
	if !w.mapped {
		return fmt.Errorf("focus window %d: not mapped: %w", id, ErrBadMatch)
	}
	s.focus = id
	return nil
}

// Draw replaces the window's content (its "pixels").
func (c *Client) Draw(id WindowID, content []byte) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.lookupWindow(id)
	if err != nil {
		return err
	}
	if w.owner != c {
		return fmt.Errorf("draw window %d: %w", id, ErrBadAccess)
	}
	w.content = make([]byte, len(content))
	copy(w.content, content)
	return nil
}
