package chaos

import (
	"testing"

	"overhaul/internal/faultinject"
)

// storeRules arms every auditstore fault point hard enough that a
// default-length campaign hits torn appends, group-commit window
// faults, a rotation crash, and a compaction crash.
func storeRules() []faultinject.Rule {
	return append(faultinject.DefaultRules(),
		faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindError, Prob: 0.02},
		faultinject.Rule{Point: faultinject.PointStoreAppend, Kind: faultinject.KindCrash, Prob: 0.01},
		faultinject.Rule{Point: faultinject.PointStoreBatch, Kind: faultinject.KindError, Prob: 0.01},
		faultinject.Rule{Point: faultinject.PointStoreBatch, Kind: faultinject.KindCrash, Prob: 0.005},
		faultinject.Rule{Point: faultinject.PointStoreRotate, Kind: faultinject.KindCrash, After: 2, Count: 1},
		faultinject.Rule{Point: faultinject.PointStoreCompact, Kind: faultinject.KindCrash, After: 1, Count: 1},
	)
}

// TestCampaignStorePrefix is the end-to-end durable-trail property: a
// campaign that syncs its audit stream into a store while store faults
// tear writes and crash rotations/compactions must still end with the
// store holding exactly the full audit stream — every fault recovered
// by reopen, never a silent gap. The fault mix also keeps the original
// invariants under load, so the store cannot buy durability by
// breaking enforcement.
func TestCampaignStorePrefix(t *testing.T) {
	res, err := Run(Campaign{
		Seed:     21,
		Steps:    250,
		Rules:    storeRules(),
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("violations in store campaign:\n%s", res.Transcript())
	}
	if res.StoreFaults == 0 {
		t.Fatalf("store fault rules never fired (%d evaluations) — the property was not tested", res.StoreRecords)
	}
	if res.StoreReopens == 0 {
		t.Fatalf("store faulted %d times but never recovered by reopen", res.StoreFaults)
	}
	if res.StoreRecords == 0 || res.StoreRecords != len(res.AuditLines) {
		t.Fatalf("store holds %d records, audit stream has %d", res.StoreRecords, len(res.AuditLines))
	}
}

// TestCampaignStoreFaultFree pins the cheap case: with a store
// attached and no store faults, the final store is the audit stream
// and no reopens happened.
func TestCampaignStoreFaultFree(t *testing.T) {
	res, err := Run(Campaign{Seed: 3, Steps: 150, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.Transcript())
	}
	if res.StoreFaults != 0 || res.StoreReopens != 0 {
		t.Fatalf("fault-free campaign reported %d store faults, %d reopens", res.StoreFaults, res.StoreReopens)
	}
	if res.StoreRecords != len(res.AuditLines) {
		t.Fatalf("store holds %d records, audit stream has %d", res.StoreRecords, len(res.AuditLines))
	}
}

// TestCampaignStoreDeterminism requires byte-identical transcripts —
// and identical store outcomes — from two runs of the same store
// campaign: the durable trail is part of the reproducibility story.
func TestCampaignStoreDeterminism(t *testing.T) {
	run := func(dir string) *Result {
		t.Helper()
		res, err := Run(Campaign{Seed: 99, Steps: 200, Rules: storeRules(), StoreDir: dir})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(t.TempDir()), run(t.TempDir())
	if a.Transcript() != b.Transcript() {
		t.Fatalf("store campaign not deterministic: transcripts differ")
	}
	if a.StoreRecords != b.StoreRecords || a.StoreFaults != b.StoreFaults || a.StoreReopens != b.StoreReopens {
		t.Fatalf("store outcomes differ: (%d,%d,%d) vs (%d,%d,%d)",
			a.StoreRecords, a.StoreFaults, a.StoreReopens,
			b.StoreRecords, b.StoreFaults, b.StoreReopens)
	}
}
