package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overhaul/internal/analysis"
)

const printcheckFixture = "../../internal/analysis/testdata/printcheck"

// golden compares got against the file, so output format changes are
// deliberate diffs.
func golden(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", printcheckFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, errb.String())
	}
	golden(t, "testdata/printcheck.json", out.Bytes())

	// The golden must round-trip as the documented machine format.
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("-json output decoded to zero diagnostics")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic in JSON output: %+v", d)
		}
	}
}

func TestHumanGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{printcheckFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	golden(t, "testdata/printcheck.txt", out.Bytes())
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	// The analysistest package has no violations and no fixtures.
	code := run([]string{"../../internal/analysis/analysistest"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run should print nothing, got: %s", out.String())
	}
}

func TestJSONCleanTreeEmitsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "../../internal/analysis/analysistest"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json run = %q, want []", out.String())
	}
}

func TestEnableDisableFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "printcheck", printcheckFixture}, &out, &errb); code != 0 {
		t.Errorf("disabling printcheck should leave the fixture clean, exit = %d: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-enable", "clockcheck", printcheckFixture}, &out, &errb); code != 0 {
		t.Errorf("enabling only clockcheck should leave the fixture clean, exit = %d: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-enable", "printcheck", printcheckFixture}, &out, &errb); code != 1 {
		t.Errorf("enabling printcheck should find the fixture violations, exit = %d", code)
	}
	if code := run([]string{"-enable", "nonesuch", printcheckFixture}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer should be a usage error, exit = %d", code)
	}
	if code := run([]string{"-disable", "nonesuch", printcheckFixture}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer in -disable should be a usage error, exit = %d", code)
	}
}

func TestMissingRootIsLoadError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/does-not-exist"}, &out, &errb); code != 2 {
		t.Errorf("missing root should exit 2, got %d", code)
	}
	if errb.Len() == 0 {
		t.Error("load error should be reported on stderr")
	}
}

// copyTree clones a fixture directory into dst so -fix can rewrite it.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
}

// TestExitCodeSemantics pins the documented contract: 0 when clean or
// fully baselined, 1 on fresh findings, 2 on driver errors — including
// a baseline flag that points at a missing or corrupt file.
func TestExitCodeSemantics(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	var out, errb bytes.Buffer

	// Findings with no baseline: 1.
	if code := run([]string{printcheckFixture}, &out, &errb); code != 1 {
		t.Fatalf("findings should exit 1, got %d", code)
	}

	// -write-baseline records them and exits 0 regardless of findings.
	out.Reset()
	if code := run([]string{"-baseline", baseline, "-write-baseline", printcheckFixture}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline should exit 0, got %d; stderr: %s", code, errb.String())
	}

	// Fully baselined run: 0, with the suppression reported.
	out.Reset()
	if code := run([]string{"-baseline", baseline, printcheckFixture}, &out, &errb); code != 0 {
		t.Fatalf("baselined findings should exit 0, got %d; stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "known finding(s) suppressed by baseline") {
		t.Errorf("baselined run should report suppression, got: %s", out.String())
	}

	// -json with a covering baseline emits an empty array and exits 0.
	out.Reset()
	if code := run([]string{"-json", "-baseline", baseline, printcheckFixture}, &out, &errb); code != 0 {
		t.Fatalf("-json baselined run should exit 0, got %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-json baselined run = %q, want []", out.String())
	}

	// Missing or corrupt baseline is a driver error, never an empty
	// baseline: a misconfigured gate must not silently pass everything.
	errb.Reset()
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), printcheckFixture}, &out, &errb); code != 2 {
		t.Fatalf("missing baseline should exit 2, got %d", code)
	}
	if errb.Len() == 0 {
		t.Error("missing baseline should be reported on stderr")
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", corrupt, printcheckFixture}, &out, &errb); code != 2 {
		t.Fatalf("corrupt baseline should exit 2, got %d", code)
	}

	// Flag misuse: 2.
	if code := run([]string{"-write-baseline", printcheckFixture}, &out, &errb); code != 2 {
		t.Errorf("-write-baseline without -baseline should exit 2, got %d", code)
	}
	if code := run([]string{"-fix", "-diff", printcheckFixture}, &out, &errb); code != 2 {
		t.Errorf("-fix with -diff should exit 2, got %d", code)
	}
}

// TestFixRoundTrip applies errdrop's suggested fixes to a scratch copy
// of its fixture and checks the rewritten tree lints clean — the
// acceptance property for -fix.
func TestFixRoundTrip(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, "../../internal/analysis/testdata/errdrop", dir)
	var out, errb bytes.Buffer

	// -diff previews without writing.
	if code := run([]string{"-enable", "errdrop", "-diff", dir}, &out, &errb); code != 1 {
		t.Fatalf("-diff run should still exit 1, got %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "+++ ") || !strings.Contains(out.String(), "_ = ") {
		t.Errorf("-diff should print a unified diff with the discard fix, got: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-enable", "errdrop", dir}, &out, &errb); code != 1 {
		t.Fatal("-diff must not modify the tree")
	}

	// -fix rewrites, and the rewritten tree is clean.
	out.Reset()
	if code := run([]string{"-enable", "errdrop", "-fix", dir}, &out, &errb); code != 1 {
		t.Fatalf("-fix run reports the findings it fixed, got exit %d", code)
	}
	if !strings.Contains(out.String(), "fixed ") {
		t.Errorf("-fix should report rewritten files, got: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-enable", "errdrop", dir}, &out, &errb); code != 0 {
		t.Fatalf("tree should lint clean after -fix, got exit %d: %s", code, out.String())
	}
}

// TestSARIFOutput checks -sarif emits a parseable 2.1.0 log carrying
// every finding, without changing the exit code.
func TestSARIFOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.sarif")
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", path, printcheckFixture}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("sarif output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected sarif shape: version=%s runs=%d", log.Version, len(log.Runs))
	}
	if log.Runs[0].Tool.Driver.Name != "overhaul-lint" {
		t.Errorf("driver name = %s", log.Runs[0].Tool.Driver.Name)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Error("sarif log carries no results for a fixture with findings")
	}
	if len(log.Runs[0].Tool.Driver.Rules) < len(analysis.All()) {
		t.Errorf("sarif rules = %d, want one per analyzer (%d)", len(log.Runs[0].Tool.Driver.Rules), len(analysis.All()))
	}
}

// TestCacheReuse runs the same root twice through -cachedir and checks
// the second (cached) run reproduces the first byte for byte.
func TestCacheReuse(t *testing.T) {
	cache := t.TempDir()
	var first, second, errb bytes.Buffer
	if code := run([]string{"-cachedir", cache, printcheckFixture}, &first, &errb); code != 1 {
		t.Fatalf("first run exit = %d; stderr: %s", code, errb.String())
	}
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) == 0 {
		t.Fatalf("first run should populate the cache directory (err=%v, entries=%d)", err, len(entries))
	}
	if code := run([]string{"-cachedir", cache, printcheckFixture}, &second, &errb); code != 1 {
		t.Fatalf("cached run exit = %d", code)
	}
	if first.String() != second.String() {
		t.Errorf("cached run output differs:\nfirst:  %s\nsecond: %s", first.String(), second.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}
