// Package ipc implements the inter-process communication facilities of
// the simulated kernel, each retrofitted with Overhaul's interaction
// timestamp propagation (policy P2 of the paper, §III-D and §IV-B).
//
// Every IPC resource carries an embedded interaction timestamp,
// initialised to "expired". When a process sends data through a channel
// it embeds its own stamp unless the channel already holds a more recent
// one; when a process receives data it adopts the channel's stamp if it
// is newer than its own. Chains of arbitrary length and topology
// therefore propagate interaction evidence without any knowledge of the
// application-level protocol. Supported families, matching the paper's
// prototype: anonymous pipes, FIFOs, UNIX domain sockets, POSIX and
// SysV message queues, POSIX and SysV shared memory (via simulated
// page-fault interception), and pseudo-terminals.
package ipc

import (
	"sync/atomic"
	"time"

	"overhaul/internal/telemetry"
)

// Stamps is the kernel-side view of per-process interaction timestamps
// used by IPC propagation. The kernel implements it over its process
// table.
type Stamps interface {
	// Stamp returns pid's current interaction timestamp; ok is false
	// for unknown processes.
	Stamp(pid int) (t time.Time, ok bool)
	// Adopt installs t as pid's stamp if t is newer than the current
	// one. Unknown processes are ignored.
	Adopt(pid int, t time.Time)
}

// SpanStamps is an optional extension of Stamps for stores that track
// the trace span that minted each stamp. When the store supports it,
// IPC propagation carries the span alongside the timestamp, so a
// permission grant enabled by a stamp that travelled through a pipe or
// a shared-memory segment still traces back to the original input
// event. Plain Stamps stores propagate timestamps only.
type SpanStamps interface {
	Stamps
	// StampSpan returns the span context stored with pid's stamp; ok
	// is false for unknown processes.
	StampSpan(pid int) (ctx telemetry.SpanContext, ok bool)
	// AdoptSpan installs t and its minting span as pid's stamp if t is
	// newer than the current one. Unknown processes are ignored.
	AdoptSpan(pid int, t time.Time, ctx telemetry.SpanContext)
}

// stampSpanOf fetches pid's stamp span when the store tracks spans.
func stampSpanOf(st Stamps, pid int) telemetry.SpanContext {
	if ss, ok := st.(SpanStamps); ok {
		if ctx, found := ss.StampSpan(pid); found {
			return ctx
		}
	}
	return telemetry.SpanContext{}
}

// adoptWithSpan installs a stamp, carrying its span when the store
// tracks spans.
func adoptWithSpan(st Stamps, pid int, t time.Time, ctx telemetry.SpanContext) {
	if ss, ok := st.(SpanStamps); ok {
		ss.AdoptSpan(pid, t, ctx)
		return
	}
	st.Adopt(pid, t)
}

// carrier is the timestamp embedded in an IPC resource's kernel data
// structure. The stamp is unix nanoseconds with 0 meaning "expired"
// (the paper's step (1)); every clock in this tree reports instants at
// or after clock.Epoch, so 0 is unambiguous. Writes go through a
// CAS-max loop and reads are single atomic loads, so carriers add no
// lock to the IPC data paths they ride.
type carrier struct {
	stamp atomic.Int64
	// span is the trace span that minted stamp (nil when telemetry is
	// off or the stamp arrived without context); the CAS winner stores
	// it, keeping stamp and span a unit on the uncontended path. Under
	// a send race the span may briefly describe the other authentic
	// write — trace-linkage skew only, never a verdict input.
	span atomic.Pointer[telemetry.SpanContext]
}

// carrierNanos encodes a stamp time (zero time → 0 = expired).
func carrierNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// carrierTime decodes a stored stamp (0 → zero time).
func carrierTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// onSend runs the sender half of the propagation protocol: embed the
// sender's stamp unless the resource already holds a more recent one.
func (c *carrier) onSend(st Stamps, pid int) {
	if st == nil {
		return
	}
	sender, ok := st.Stamp(pid)
	if !ok {
		return
	}
	n := carrierNanos(sender)
	if n == 0 || n <= c.stamp.Load() {
		// Fast path: nothing to embed, and no span lookup either.
		return
	}
	span := stampSpanOf(st, pid)
	for {
		cur := c.stamp.Load()
		if n <= cur {
			return
		}
		if c.stamp.CompareAndSwap(cur, n) {
			if span == (telemetry.SpanContext{}) {
				c.span.Store(nil)
			} else {
				s := span
				c.span.Store(&s)
			}
			return
		}
	}
}

// onRecv runs the receiver half: adopt the resource's stamp if it is
// more recent than the receiver's own.
func (c *carrier) onRecv(st Stamps, pid int) {
	if st == nil {
		return
	}
	n := c.stamp.Load()
	if n == 0 {
		return
	}
	span := telemetry.SpanContext{}
	if p := c.span.Load(); p != nil {
		span = *p
	}
	adoptWithSpan(st, pid, carrierTime(n), span)
}

// onAccess runs both halves. Shared-memory faults cannot distinguish a
// read from a write above the hardware level, so the fault handler
// propagates in both directions.
func (c *carrier) onAccess(st Stamps, pid int) {
	c.onSend(st, pid)
	c.onRecv(st, pid)
}

// stampValue returns the embedded stamp (for tests and tracing).
func (c *carrier) stampValue() time.Time {
	return carrierTime(c.stamp.Load())
}
