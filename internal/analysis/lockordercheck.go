package analysis

import (
	"strings"
)

// Lockordercheck builds the module's lock-acquisition partial order
// from the interprocedural lock facts (lockfacts.go): every
// held→acquired pair observed in a function body, directly or through
// callee Acquires facts, is an edge. Two shapes are findings:
//
//   - A self-edge on a *sharded* class (the kernel's 16 process-table
//     shards, the monitor's 8 audit rings): acquiring another instance
//     of a sharded class while one is held is a cross-shard
//     acquisition, which deadlocks against a concurrent holder going
//     the other way unless shard indices are globally ordered — a
//     convention this codebase deliberately does not rely on (shards
//     are locked one at a time; see DESIGN.md §12). A self-edge on an
//     unsharded class is a plain recursive-lock self-deadlock.
//
//   - A cycle among distinct classes: A held while acquiring B
//     somewhere, B held while acquiring A elsewhere (possibly through
//     longer paths and across packages). Each edge participating in a
//     cycle is reported at the position it was observed.
//
// Because the underlying call graph over-approximates interface
// dispatch by method name, an edge can be spurious; suppress with
// //overhaul:allow lockordercheck and a reason explaining why the
// dispatch cannot happen.
var Lockordercheck = &Analyzer{
	Name:       "lockordercheck",
	NeedsTypes: true,
	Doc: "lock acquisitions must follow a consistent partial order: no " +
		"cross-shard nesting on sharded classes, no cycles between classes",
	Run: runLockordercheck,
}

func runLockordercheck(pass *Pass) {
	facts := pass.Facts()
	if facts == nil {
		return
	}
	classes := facts.LockClasses()
	edges := facts.AllLockEdges()

	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.Held] = append(adj[e.Held], e.Acquired)
	}

	for _, e := range edges {
		pkg, pos, ok := facts.EdgeSite(e)
		if !ok || pkg == nil || pkg.Dir != pass.Pkg.Dir {
			// Each edge is reported once, in the package that records
			// it; this run only owns its own package's sites.
			continue
		}
		if e.Held == e.Acquired {
			if classes[e.Held] {
				pass.Reportf(pos,
					"cross-shard acquisition: %s is acquired while another instance of the same sharded class is held; shards are locked one at a time",
					shortClass(e.Held))
			} else {
				pass.Reportf(pos,
					"recursive acquisition: %s is acquired while already held (self-deadlock)",
					shortClass(e.Held))
			}
			continue
		}
		if cycle := findPath(adj, e.Acquired, e.Held); cycle != nil {
			pass.Reportf(pos,
				"lock-order cycle: %s is held while acquiring %s, but %s is also reachable (%s)",
				shortClass(e.Held), shortClass(e.Acquired), shortClass(e.Held),
				renderCycle(append([]string{e.Held}, cycle...)))
		}
	}
}

// findPath returns a path from → to along edges (excluding trivial
// zero-length paths), or nil.
func findPath(adj map[string][]string, from, to string) []string {
	seen := map[string]bool{}
	var dfs func(node string) []string
	dfs = func(node string) []string {
		if node == to {
			return []string{node}
		}
		if seen[node] {
			return nil
		}
		seen[node] = true
		for _, next := range adj[node] {
			if next == node {
				continue
			}
			if p := dfs(next); p != nil {
				return append([]string{node}, p...)
			}
		}
		return nil
	}
	return dfs(from)
}

// renderCycle joins class names with arrows.
func renderCycle(classes []string) string {
	short := make([]string, len(classes))
	for i, c := range classes {
		short[i] = shortClass(c)
	}
	return strings.Join(short, " -> ")
}

// shortClass strips the module-path prefix for readable messages:
// "overhaul/internal/kernel.procShard" -> "kernel.procShard".
func shortClass(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
