package overhaul

// Build-and-run smoke coverage for every runnable main in the
// repository: each example must exit 0, and each experiment CLI must
// produce its expected headline output. These run real subprocesses, so
// they are skipped in -short mode.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runMain executes `go run ./<dir>` with the given args and returns its
// combined output.
func runMain(t *testing.T, dir string, args ...string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("Getwd: %v", err)
	}
	cmdArgs := append([]string{"run", "./" + filepath.ToSlash(dir)}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = wd
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v failed: %v\n%s", dir, args, err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke tests in -short mode")
	}
	tests := []struct {
		dir  string
		want string // substring the example must print
	}{
		{dir: "examples/quickstart", want: "microphone opened"},
		{dir: "examples/videoconf", want: "no functional breakage"},
		{dir: "examples/clipboard-guard", want: "bad access"},
		{dir: "examples/browser-tabs", want: "camera opened via P2 propagation"},
		{dir: "examples/spyware-blocked", want: "clipboard 0/4"},
		{dir: "examples/cli-capture", want: "microphone opened"},
		{dir: "examples/prompt-mode", want: "user click : allow"},
	}
	for _, tt := range tests {
		t.Run(tt.dir, func(t *testing.T) {
			out := runMain(t, tt.dir)
			if !strings.Contains(out, tt.want) {
				t.Fatalf("output missing %q:\n%s", tt.want, out)
			}
		})
	}
}

func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke tests in -short mode")
	}
	tests := []struct {
		dir  string
		args []string
		want string
	}{
		{dir: "cmd/overhaul-trace", args: []string{"-figure", "6"}, want: "DeleteProperty: transfer complete"},
		{dir: "cmd/overhaul-study", args: []string{"-n", "8", "-seed", "2"}, want: "Task 2"},
		{dir: "cmd/overhaul-empirical", args: []string{"-days", "2"}, want: "Reproduction outcome matches the paper."},
		{dir: "cmd/overhaul-sim", args: []string{"-log"}, want: "all expectations held"},
		{dir: "cmd/overhaul-bench", args: []string{"-scale", "quick"}, want: "Paper overhead"},
	}
	for _, tt := range tests {
		t.Run(tt.dir, func(t *testing.T) {
			out := runMain(t, tt.dir, tt.args...)
			if !strings.Contains(out, tt.want) {
				t.Fatalf("output missing %q:\n%s", tt.want, out)
			}
		})
	}
}
