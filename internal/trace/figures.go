package trace

import (
	"errors"
	"fmt"
	"time"

	"overhaul/internal/apps"
	"overhaul/internal/core"
	"overhaul/internal/xserver"
)

// ErrScenario wraps a figure scenario that did not behave as published.
var ErrScenario = errors.New("trace: scenario deviated from the paper")

// settle ages windows past the visibility threshold.
func settle(sys *core.System) {
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
}

// Figure1 regenerates the hardware-device access sequence: dynamic
// access control over the microphone.
func Figure1() (*Trace, error) {
	sys, mic, _, err := core.BootDefault()
	if err != nil {
		return nil, err
	}
	app, err := sys.Launch("A")
	if err != nil {
		return nil, err
	}
	settle(sys)

	if err := app.Click(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	clickT := sys.Clock.Now()
	sys.Settle(120 * time.Millisecond)
	if _, err := app.OpenDevice(mic); err != nil {
		return nil, fmt.Errorf("%w: mic open denied: %v", ErrScenario, err)
	}
	openT := sys.Clock.Now()
	alerts := sys.X.ActiveAlerts()
	if len(alerts) != 1 {
		return nil, fmt.Errorf("%w: %d alerts", ErrScenario, len(alerts))
	}

	tr := &Trace{
		Figure:   1,
		Title:    "Dynamic access control over privacy-sensitive hardware devices",
		Scenario: fmt.Sprintf("application A (pid %d) turns on the microphone after a button click", app.Proc.PID()),
	}
	pid := app.Proc.PID()
	tr.add("user", "display mgr", fmt.Sprintf("E_{A,t}: hardware click at t=%s", fmtTime(clickT)), false)
	tr.add("display mgr", "kernel PM", fmt.Sprintf("N_{A,t}: interaction notification (pid %d, t=%s) over netlink", pid, fmtTime(clickT)), true)
	tr.add("display mgr", "A", "E_{A,t} forwarded to its destination window", false)
	tr.add("A", "kernel PM", fmt.Sprintf("mic_{t+n}: open(%s) intercepted at t+n=%s", mic, fmtTime(openT)), true)
	tr.add("kernel PM", "A", fmt.Sprintf("grant: n=%v < δ=%v", openT.Sub(clickT), sys.Kernel.Monitor().Threshold()), true)
	tr.add("kernel PM", "display mgr", "V_{A,mic}: visual alert request over netlink", true)
	tr.Outcome = fmt.Sprintf("microphone opened; alert shown: %q", alerts[0].Message)
	return tr, nil
}

// Figure2 regenerates the clipboard-paste mediation sequence.
func Figure2() (*Trace, error) {
	sys, _, _, err := core.BootDefault()
	if err != nil {
		return nil, err
	}
	src, err := apps.NewEditor(sys, "source")
	if err != nil {
		return nil, err
	}
	tgt, err := apps.NewEditor(sys, "A")
	if err != nil {
		return nil, err
	}
	settle(sys)
	if err := src.Copy([]byte("copied data")); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	pasteStart := sys.Clock.Now()
	data, err := tgt.Paste(src)
	if err != nil {
		return nil, fmt.Errorf("%w: paste denied: %v", ErrScenario, err)
	}
	if string(data) != "copied data" {
		return nil, fmt.Errorf("%w: pasted %q", ErrScenario, data)
	}
	pid := tgt.App().Proc.PID()

	tr := &Trace{
		Figure:   2,
		Title:    "Protecting copy & paste operations against clipboard sniffing",
		Scenario: fmt.Sprintf("application A (pid %d) pastes from the clipboard after the paste keystroke", pid),
	}
	tr.add("user", "display mgr", fmt.Sprintf("E_{A,t}: paste keystrokes at t=%s", fmtTime(pasteStart)), false)
	tr.add("display mgr", "kernel PM", fmt.Sprintf("N_{A,t}: interaction notification (pid %d)", pid), true)
	tr.add("display mgr", "A", "key event forwarded", false)
	tr.add("A", "display mgr", "paste_{t+n}: ConvertSelection request", false)
	tr.add("display mgr", "kernel PM", fmt.Sprintf("Q_{A,t+n}: permission query (pid %d, op=paste)", pid), true)
	tr.add("kernel PM", "display mgr", "R_{A,t+n} = grant (n < δ)", true)
	tr.add("display mgr", "A", "clipboard data returned", true)
	tr.Outcome = fmt.Sprintf("paste served %q; a background sniffer issuing the same request is denied", data)
	return tr, nil
}

// Figure3 regenerates the launcher scenario: interaction with Run must
// authorise the Shot process it spawns (propagation policy P1).
func Figure3() (*Trace, error) {
	sys, _, _, err := core.BootDefault()
	if err != nil {
		return nil, err
	}
	victim, err := sys.Launch("desktop")
	if err != nil {
		return nil, err
	}
	if err := victim.Client.Draw(victim.Win, []byte("pixels")); err != nil {
		return nil, err
	}
	run, err := apps.NewLauncher(sys, "Run")
	if err != nil {
		return nil, err
	}
	settle(sys)

	typeT := sys.Clock.Now()
	shotProc, err := run.Run("Shot")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	shotClient, err := sys.X.Connect(shotProc.PID(), "Shot")
	if err != nil {
		return nil, err
	}
	if _, err := shotClient.GetImage(xserver.Root); err != nil {
		return nil, fmt.Errorf("%w: capture denied despite P1: %v", ErrScenario, err)
	}
	capT := sys.Clock.Now()

	tr := &Trace{
		Figure:   3,
		Title:    "A program launcher executing a screen capture program (P1)",
		Scenario: fmt.Sprintf("Run (pid %d) spawns Shot (pid %d); Shot captures the screen", run.App().Proc.PID(), shotProc.PID()),
	}
	tr.add("user", "display mgr", fmt.Sprintf("E_{Run,t}: keystrokes \"Shot\"+enter at t=%s", fmtTime(typeT)), false)
	tr.add("display mgr", "kernel PM", fmt.Sprintf("N_{Run,t}: interaction notification (pid %d)", run.App().Proc.PID()), true)
	tr.add("display mgr", "Run", "key events forwarded", false)
	tr.add("Run", "Shot", fmt.Sprintf("fork+exec: task struct duplicated, stamp inherited (pid %d)", shotProc.PID()), true)
	tr.add("Shot", "display mgr", fmt.Sprintf("scr_{t+n}: GetImage(root) at t+n=%s", fmtTime(capT)), false)
	tr.add("display mgr", "kernel PM", fmt.Sprintf("Q_{Shot,t+n}: permission query (pid %d, op=scr)", shotProc.PID()), true)
	tr.add("kernel PM", "display mgr", "R = grant: Shot inherited Run's interaction via P1", true)
	tr.Outcome = "screen captured by the spawned process; without P1 the query would have found no interaction record"
	return tr, nil
}

// Figure4 regenerates the multi-process browser scenario (propagation
// policy P2 over shared memory).
func Figure4() (*Trace, error) {
	sys, _, cam, err := core.BootDefault()
	if err != nil {
		return nil, err
	}
	b, err := apps.NewBrowser(sys, "Browser")
	if err != nil {
		return nil, err
	}
	tab, ch, err := b.OpenTab()
	if err != nil {
		return nil, err
	}
	settle(sys)
	clickT := sys.Clock.Now()
	if err := b.StartVideoChat(tab, ch, cam); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}

	tr := &Trace{
		Figure:   4,
		Title:    "A multi-process browser communicating via shared memory IPC (P2)",
		Scenario: fmt.Sprintf("Browser (pid %d) commands Tab (pid %d) to start a video conference", b.App().Proc.PID(), tab.Proc.PID()),
	}
	tr.add("user", "display mgr", fmt.Sprintf("E_{Browser,t}: click at t=%s", fmtTime(clickT)), false)
	tr.add("display mgr", "kernel PM", fmt.Sprintf("N_{Browser,t}: interaction notification (pid %d)", b.App().Proc.PID()), true)
	tr.add("display mgr", "Browser", "click forwarded", false)
	tr.add("Browser", "Tab", "\"start camera\" over shared memory; page fault propagates the stamp sender->receiver", true)
	tr.add("Tab", "kernel PM", fmt.Sprintf("cam_{t+n}: open(%s) intercepted", cam), true)
	tr.add("kernel PM", "Tab", "grant: Tab adopted Browser's interaction via P2", true)
	tr.add("kernel PM", "display mgr", "V_{Tab,cam}: visual alert request", true)
	tr.Outcome = "camera opened by the tab process; the shm write/read pair carried the interaction stamp"
	return tr, nil
}

// Figure5 regenerates the visual alerts: one granted access and one
// blocked attempt, each carrying the visual shared secret.
func Figure5() (*Trace, error) {
	sys, mic, _, err := core.BootDefault()
	if err != nil {
		return nil, err
	}
	app, err := sys.Launch("recorder")
	if err != nil {
		return nil, err
	}
	settle(sys)
	if err := app.Click(); err != nil {
		return nil, err
	}
	if _, err := app.OpenDevice(mic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	spy, err := sys.LaunchHeadless("spyware")
	if err != nil {
		return nil, err
	}
	if _, err := sys.Kernel.Open(spy, mic, 1); err == nil {
		return nil, fmt.Errorf("%w: spyware open granted", ErrScenario)
	}
	alerts := sys.X.AlertHistory()
	if len(alerts) != 2 {
		return nil, fmt.Errorf("%w: %d alerts", ErrScenario, len(alerts))
	}

	tr := &Trace{
		Figure:   5,
		Title:    "Sample visual alerts shown by Overhaul",
		Scenario: "a granted microphone access and a blocked background attempt",
	}
	for i, a := range alerts {
		authentic := "with shared secret"
		if !sys.X.AuthenticAlert(a) {
			authentic = "MISSING SECRET (forged?)"
		}
		tr.add("kernel PM", "overlay", fmt.Sprintf("alert %d: %q [%s]", i+1, a.Message, authentic), true)
	}
	tr.Outcome = fmt.Sprintf("both alerts rendered on the unobscurable overlay with secret %q", alerts[0].Secret)
	return tr, nil
}

// Figure6 regenerates the full ICCCM copy & paste protocol with the
// Overhaul-modified steps marked, by running it between two clients.
func Figure6() (*Trace, error) {
	sys, _, _, err := core.BootDefault()
	if err != nil {
		return nil, err
	}
	src, err := apps.NewEditor(sys, "source")
	if err != nil {
		return nil, err
	}
	tgt, err := apps.NewEditor(sys, "target")
	if err != nil {
		return nil, err
	}
	settle(sys)
	if err := src.Copy([]byte("the data")); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	data, err := tgt.Paste(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if string(data) != "the data" {
		return nil, fmt.Errorf("%w: pasted %q", ErrScenario, data)
	}
	srcPID, tgtPID := src.App().Proc.PID(), tgt.App().Proc.PID()

	tr := &Trace{
		Figure:   6,
		Title:    "Protocol diagram for the X11 copy & paste operation",
		Scenario: fmt.Sprintf("source client pid %d copies; target client pid %d pastes", srcPID, tgtPID),
	}
	tr.add("user", "source", "copy initiated by hardware input (verified authentic)", true)
	tr.add("source", "X server", "SetSelection (permission query op=copy precedes service)", true)
	tr.add("source", "X server", "GetSelectionOwner", false)
	tr.add("X server", "source", "owner confirmed", false)
	tr.add("user", "target", "paste initiated by hardware input (verified authentic)", true)
	tr.add("target", "X server", "ConvertSelection (permission query op=paste precedes service)", true)
	tr.add("X server", "source", "SelectionRequest", false)
	tr.add("source", "X server", "ChangeProperty: data stored on requestor window (in-flight)", false)
	tr.add("source", "X server", "SendEvent(SelectionNotify) — allowed only owner->pending requestor", true)
	tr.add("X server", "target", "SelectionNotify delivered", false)
	tr.add("target", "X server", "GetProperty (in-flight property readable only by the paste target)", true)
	tr.add("X server", "target", "data returned", false)
	tr.add("target", "X server", "DeleteProperty: transfer complete", false)
	tr.Outcome = fmt.Sprintf("transfer completed, %q pasted; forged SelectionRequest / property snooping paths return BadAccess", data)
	return tr, nil
}

// All returns every figure trace in order.
func All() ([]*Trace, error) {
	figs := []func() (*Trace, error){Figure1, Figure2, Figure3, Figure4, Figure5, Figure6}
	out := make([]*Trace, 0, len(figs))
	for i, f := range figs {
		tr, err := f()
		if err != nil {
			return nil, fmt.Errorf("figure %d: %w", i+1, err)
		}
		out = append(out, tr)
	}
	return out, nil
}
