// Package apps implements simulated desktop applications with the
// multi-process architectures the paper's evaluation exercises: a
// Skype-like video-conferencing client (including its
// camera-probe-on-startup quirk), a Chromium-like multi-process browser
// whose tabs are driven over shared memory, a program launcher, a
// terminal emulator with a shell behind a pseudo-terminal, screenshot
// and recording tools (including delayed-shot mode), and clipboard
// applications.
//
// None of these applications knows Overhaul exists: they use only the
// ordinary kernel and display-server interfaces, which is the
// transparency property (D1) the paper claims — and which these
// simulations demonstrate.
package apps

import (
	"errors"
	"fmt"
	"time"

	"overhaul/internal/core"
	"overhaul/internal/fs"
	"overhaul/internal/ipc"
	"overhaul/internal/kernel"
)

// ErrBlocked wraps resource denials observed by an application.
var ErrBlocked = errors.New("apps: resource access blocked")

// VideoConf is a Skype-like video conferencing client.
type VideoConf struct {
	sys *core.System
	app *core.App
	mic string
	cam string
	// ProbeCameraOnStartup reproduces the Skype behaviour from §V-C:
	// the client touches the camera as soon as it starts, before any
	// user interaction.
	ProbeCameraOnStartup bool
}

// NewVideoConf launches the client. If probeOnStartup is set, the
// camera probe happens immediately — under Overhaul it is denied and
// raises no functional error (Skype retries on the real call), but the
// denial is visible in the audit log.
func NewVideoConf(sys *core.System, name, mic, cam string, probeOnStartup bool) (*VideoConf, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("videoconf: %w", err)
	}
	v := &VideoConf{sys: sys, app: app, mic: mic, cam: cam, ProbeCameraOnStartup: probeOnStartup}
	if probeOnStartup {
		// Fire-and-forget probe; a denial is swallowed exactly like
		// Skype tolerates a busy camera.
		if h, err := app.OpenDevice(cam); err == nil {
			_ = h.Close()
		}
	}
	return v, nil
}

// App exposes the underlying harness handle.
func (v *VideoConf) App() *core.App { return v.app }

// PlaceCall simulates the user clicking the call button and the client
// opening microphone and camera in response.
func (v *VideoConf) PlaceCall() error {
	if err := v.app.Click(); err != nil {
		return fmt.Errorf("videoconf call: %w", err)
	}
	v.sys.Settle(150 * time.Millisecond) // human-scale UI latency, well under δ
	hm, err := v.app.OpenDevice(v.mic)
	if err != nil {
		return fmt.Errorf("videoconf call: mic: %w: %v", ErrBlocked, err)
	}
	defer func() { _ = hm.Close() }()
	hc, err := v.app.OpenDevice(v.cam)
	if err != nil {
		return fmt.Errorf("videoconf call: cam: %w: %v", ErrBlocked, err)
	}
	return hc.Close()
}

// Browser is a multi-process browser: the main window receives user
// input; each tab is a forked process commanded over shared memory.
type Browser struct {
	sys *core.System
	app *core.App
}

// Tab is one browser tab process.
type Tab struct {
	Proc *kernel.Process
}

// TabChannel is the shared-memory command channel between the
// browser main process and a tab.
type TabChannel struct {
	browserMap *ipc.Mapping
	tabMap     *ipc.Mapping
}

// NewBrowser launches the browser main process.
func NewBrowser(sys *core.System, name string) (*Browser, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("browser: %w", err)
	}
	return &Browser{sys: sys, app: app}, nil
}

// App exposes the underlying harness handle.
func (b *Browser) App() *core.App { return b.app }

// OpenTab forks a tab process and attaches a fresh shared-memory
// command channel, mirroring Figure 4's architecture.
func (b *Browser) OpenTab() (*Tab, *TabChannel, error) {
	proc, err := b.app.Proc.Fork()
	if err != nil {
		return nil, nil, fmt.Errorf("browser tab: %w", err)
	}
	if err := proc.Exec("tab", b.app.Proc.Executable()); err != nil {
		return nil, nil, fmt.Errorf("browser tab: %w", err)
	}
	shm, err := b.sys.Kernel.NewSharedMem(4)
	if err != nil {
		return nil, nil, fmt.Errorf("browser tab: %w", err)
	}
	ch := &TabChannel{
		browserMap: shm.Map(b.app.Proc.PID()),
		tabMap:     shm.Map(proc.PID()),
	}
	return &Tab{Proc: proc}, ch, nil
}

// StartVideoChat simulates the user clicking in the browser window; the
// browser commands the tab via shared memory, and the tab opens the
// camera (Figure 4 end to end).
func (b *Browser) StartVideoChat(tab *Tab, ch *TabChannel, cam string) error {
	if err := b.app.Click(); err != nil {
		return fmt.Errorf("browser video chat: %w", err)
	}
	b.sys.Settle(50 * time.Millisecond)
	cmd := []byte("start-camera")
	if err := ch.browserMap.Write(0, cmd); err != nil {
		return fmt.Errorf("browser video chat: shm: %w", err)
	}
	if _, err := ch.tabMap.Read(0, len(cmd)); err != nil {
		return fmt.Errorf("browser video chat: shm: %w", err)
	}
	b.sys.Settle(100 * time.Millisecond)
	h, err := b.sys.Kernel.Open(tab.Proc, cam, fs.AccessRead)
	if err != nil {
		return fmt.Errorf("browser video chat: cam: %w: %v", ErrBlocked, err)
	}
	return h.Close()
}

// Launcher is a graphical program launcher (the Run application of
// Figure 3).
type Launcher struct {
	sys *core.System
	app *core.App
}

// NewLauncher launches the launcher.
func NewLauncher(sys *core.System, name string) (*Launcher, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("launcher: %w", err)
	}
	return &Launcher{sys: sys, app: app}, nil
}

// App exposes the underlying harness handle.
func (l *Launcher) App() *core.App { return l.app }

// Run simulates the user typing a program name and pressing enter; the
// launcher forks and execs the tool, which inherits the interaction
// stamp (P1).
func (l *Launcher) Run(tool string) (*kernel.Process, error) {
	if err := l.app.Type(tool); err != nil {
		return nil, fmt.Errorf("launcher run %s: %w", tool, err)
	}
	if err := l.app.Type("enter"); err != nil {
		return nil, fmt.Errorf("launcher run %s: %w", tool, err)
	}
	l.sys.Settle(50 * time.Millisecond)
	proc, err := l.app.Proc.Fork()
	if err != nil {
		return nil, fmt.Errorf("launcher run %s: %w", tool, err)
	}
	if err := proc.Exec(tool, "/usr/bin/"+tool); err != nil {
		return nil, fmt.Errorf("launcher run %s: %w", tool, err)
	}
	return proc, nil
}
