package core

import (
	"sync"
	"time"

	"overhaul/internal/telemetry"
)

// notifyBatcher coalesces interaction notifications into batched
// netlink messages (Options.NotifyBatch). Bursty input — a drag, a
// key-repeat run — produces many notifications for the same pid within
// one δ window; only the newest matters, because the monitor's
// newest-wins Notify makes earlier ones redundant. The batcher keeps
// one pending item per pid (newest-wins, mirroring the kernel rule) and
// ships them in a single interactionBatchMsg when the batch fills, when
// a permission query is about to cross the channel, or on an explicit
// flush. Coalescing therefore changes *when* a stamp lands, never
// *what* value it converges to.
type notifyBatcher struct {
	ch    *channel
	limit int
	tel   *telemetry.Recorder // nil-safe

	mu      sync.Mutex
	pending []interactionItem
	index   map[int]int // pid → position in pending
}

func newNotifyBatcher(ch *channel, limit int, tel *telemetry.Recorder) *notifyBatcher {
	return &notifyBatcher{ch: ch, limit: limit, tel: tel, index: make(map[int]int)}
}

// buffer coalesces one notification, coalescing per pid (newest-wins). When
// the buffer reaches the batch limit it flushes synchronously; the
// returned error is that flush's outcome (nil when only buffered).
func (b *notifyBatcher) buffer(ctx telemetry.SpanContext, pid int, t time.Time) error {
	b.mu.Lock()
	if i, ok := b.index[pid]; ok {
		if t.After(b.pending[i].Time) {
			b.pending[i].Time = t
			b.pending[i].Ctx = ctx
		}
	} else {
		b.index[pid] = len(b.pending)
		b.pending = append(b.pending, interactionItem{PID: pid, Time: t, Ctx: ctx})
	}
	var batch []interactionItem
	if len(b.pending) >= b.limit {
		batch = b.takeLocked()
	}
	b.mu.Unlock()
	return b.send(batch)
}

// takeLocked detaches the pending batch. Caller holds b.mu.
func (b *notifyBatcher) takeLocked() []interactionItem {
	batch := b.pending
	b.pending = nil
	b.index = make(map[int]int, b.limit)
	return batch
}

// flush delivers everything buffered. A no-op when nothing is pending.
func (b *notifyBatcher) flush() error {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	return b.send(batch)
}

// send ships one detached batch over the channel.
func (b *notifyBatcher) send(batch []interactionItem) error {
	if len(batch) == 0 {
		return nil
	}
	span := b.tel.StartSpan(telemetry.SpanContext{}, "netlink", "notify_batch_call")
	defer span.End()
	if b.tel.Enabled() {
		span.AnnotateInt("items", int64(len(batch)))
	}
	_, err := b.ch.call(interactionBatchMsg{Items: batch})
	if err != nil && b.tel.Enabled() {
		span.Annotate("error", err.Error())
	}
	return err
}
