// Package counters is an atomiccheck fixture: hits is updated through
// sync/atomic in one method but read and reset plainly in others; the
// plain sites are the findings. misses is consistently atomic and pos
// is consistently plain — neither is flagged — and Gauge shows the
// receiver keying: its same-named hits field is never atomic.
package counters

import "sync/atomic"

// Stats mixes access styles on hits.
type Stats struct {
	hits   uint64
	misses uint64
	pos    int
}

// Add updates hits atomically.
func (s *Stats) Add() {
	atomic.AddUint64(&s.hits, 1)
}

// Hits reads the same field plainly: this races with Add.
func (s *Stats) Hits() uint64 {
	return s.hits // want "mixed atomic/plain access"
}

// Reset writes it plainly: also a race.
func (s *Stats) Reset() {
	s.hits = 0 // want "mixed atomic/plain access"
	s.pos = 0
}

// Miss and Misses are consistent — both sides atomic, no finding.
func (s *Stats) Miss() {
	atomic.AddUint64(&s.misses, 1)
}

// Misses loads atomically, no finding.
func (s *Stats) Misses() uint64 {
	return atomic.LoadUint64(&s.misses)
}

// Pos is consistently plain (the caller synchronizes), no finding.
func (s *Stats) Pos() int {
	return s.pos
}

// Gauge has a field named like Stats.hits but never touches atomics:
// receiver keying must keep it clean.
type Gauge struct {
	hits uint64
}

// Inc is a plain increment on a plain-only type, no finding.
func (g *Gauge) Inc() {
	g.hits++
}
