package monitor

import (
	"testing"
	"time"

	"overhaul/internal/probe"
)

func staleQuery(base time.Time, stale, threshold time.Duration) Query {
	return Query{
		Stamp:  base,
		OpTime: base.Add(threshold + stale),
		Exists: true,
	}
}

func TestStaleReasonQuantized(t *testing.T) {
	p := Policy{Threshold: 2 * time.Second, Enforce: true}
	base := time.Unix(100, 0)
	cases := []struct {
		stale time.Duration
		want  string
	}{
		{3250 * time.Millisecond, "interaction stale by 3.2s (δ=2s)"},
		{3 * time.Second, "interaction stale by 3s (δ=2s)"},
		{987 * time.Millisecond, "interaction stale by 980ms (δ=2s)"},
		{0, "interaction stale by 0s (δ=2s)"},
		{99 * time.Nanosecond, "interaction stale by 99ns (δ=2s)"},
		// Two significant decimal figures of nanoseconds: 12345h is
		// 4.4442e16ns, which floors to 4.4e16ns.
		{12345 * time.Hour, "interaction stale by 12222h13m20s (δ=2s)"},
	}
	for _, tc := range cases {
		v, reason := p.Evaluate(staleQuery(base, tc.stale, p.Threshold))
		if v != VerdictDeny || reason != tc.want {
			t.Errorf("stale %v: got (%v, %q), want (deny, %q)", tc.stale, v, reason, tc.want)
		}
	}
}

func TestQuantizeStale(t *testing.T) {
	cases := []struct{ in, want time.Duration }{
		{-time.Second, 0},
		{0, 0},
		{99, 99},   // two digits pass through
		{100, 100}, // exactly two significant figures
		{101, 100},
		{999, 990},
		{3250 * time.Millisecond, 3200 * time.Millisecond},
		{1234567 * time.Microsecond, 1200 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := QuantizeStale(tc.in); got != tc.want {
			t.Errorf("QuantizeStale(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestStaleReasonZeroAlloc pins the satellite claim: a warm stale
// denial allocates nothing — the reason is interned, not Sprintf'd per
// decision.
func TestStaleReasonZeroAlloc(t *testing.T) {
	p := Policy{Threshold: 2 * time.Second, Enforce: true}
	base := time.Unix(100, 0)
	q := staleQuery(base, 3250*time.Millisecond, p.Threshold)
	p.Evaluate(q) // warm the cache
	if n := testing.AllocsPerRun(100, func() {
		if v, _ := p.Evaluate(q); v != VerdictDeny {
			t.Fatal("expected deny")
		}
	}); n != 0 {
		t.Fatalf("warm stale denial allocates %v/op, want 0", n)
	}
}

// TestStaleReasonInterned pins that equal (staleness, δ) pairs produce
// the identical string value — what fleet-wide exact-string
// equivalence and the audit scan's reason memo rely on.
func TestStaleReasonInterned(t *testing.T) {
	p := Policy{Threshold: 2 * time.Second, Enforce: true}
	base := time.Unix(100, 0)
	_, a := p.Evaluate(staleQuery(base, 3250*time.Millisecond, p.Threshold))
	// A different raw staleness quantizing to the same bucket must
	// yield the same reason.
	_, b := p.Evaluate(staleQuery(base.Add(time.Hour), 3299*time.Millisecond, p.Threshold))
	if a != b {
		t.Fatalf("same bucket, different reasons: %q vs %q", a, b)
	}
}

// TestProbeStaleQuantizerMatchesPolicy pins the probe layer's
// duplicated quantizer to the policy's: for a sweep of stalenesses the
// event-reconstructed reason must equal the policy-formatted one
// byte for byte.
func TestProbeStaleQuantizerMatchesPolicy(t *testing.T) {
	p := Policy{Threshold: 2 * time.Second, Enforce: true}
	base := time.Unix(100, 0)
	sweep := []time.Duration{
		0, 1, 99, 100, 101, 999,
		time.Microsecond, 987 * time.Microsecond,
		time.Millisecond, 3250 * time.Millisecond, 3299 * time.Millisecond,
		time.Second, 59 * time.Second, time.Hour, 12345 * time.Hour,
	}
	for _, stale := range sweep {
		q := staleQuery(base, stale, p.Threshold)
		_, want := p.Evaluate(q)
		ev := probe.Event{
			Reason:     probe.ReasonStale,
			TimeNanos:  q.OpTime.UnixNano(),
			StampNanos: q.Stamp.UnixNano(),
		}
		if got := ev.ReasonText(p.Threshold); got != want {
			t.Errorf("stale %v: probe %q != policy %q", stale, got, want)
		}
	}
}
