package app

import xtime "time"

// renamed imports of package time are still the wall clock.
func renamed() xtime.Time {
	return xtime.Now() // want "time.Now"
}
