package fs

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"
	"time"

	"overhaul/internal/clock"
)

func newTestFS(t *testing.T) (*FS, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated()
	return New(clk), clk
}

func TestMkdirAndStat(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.Mkdir("/home", 0o755, Root); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	st, err := f.Stat("/home")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Kind != KindDirectory {
		t.Fatalf("Kind = %v, want directory", st.Kind)
	}
	if st.Mode != 0o755 {
		t.Fatalf("Mode = %o, want 755", st.Mode)
	}
}

func TestMkdirAllCreatesChain(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.MkdirAll("/a/b/c", 0o755, Root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if _, err := f.Stat(p); err != nil {
			t.Fatalf("Stat(%s): %v", p, err)
		}
	}
	// Idempotent.
	if err := f.MkdirAll("/a/b/c", 0o755, Root); err != nil {
		t.Fatalf("MkdirAll twice: %v", err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	f, _ := newTestFS(t)
	h, err := f.Create("/note.txt", 0o644, Root)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := h.Write([]byte("hello overhaul")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := f.ReadFile("/note.txt", Root)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "hello overhaul" {
		t.Fatalf("content = %q", data)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.WriteFile("/x", []byte("long content"), 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := f.WriteFile("/x", []byte("s"), 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := f.ReadFile("/x", Root)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "s" {
		t.Fatalf("content = %q, want truncated to %q", data, "s")
	}
}

func TestPermissionChecks(t *testing.T) {
	alice := Cred{UID: 1000, GID: 1000}
	bob := Cred{UID: 1001, GID: 1001}
	groupmate := Cred{UID: 1002, GID: 1000}

	tests := []struct {
		name    string
		mode    Mode
		cred    Cred
		access  Access
		wantErr bool
	}{
		{name: "owner read allowed", mode: 0o600, cred: alice, access: AccessRead},
		{name: "owner write allowed", mode: 0o600, cred: alice, access: AccessWrite},
		{name: "other read denied", mode: 0o600, cred: bob, access: AccessRead, wantErr: true},
		{name: "other read allowed with 644", mode: 0o644, cred: bob, access: AccessRead},
		{name: "other write denied with 644", mode: 0o644, cred: bob, access: AccessWrite, wantErr: true},
		{name: "group read allowed with 640", mode: 0o640, cred: groupmate, access: AccessRead},
		{name: "group write denied with 640", mode: 0o640, cred: groupmate, access: AccessWrite, wantErr: true},
		{name: "root bypasses", mode: 0o000, cred: Root, access: AccessReadWrite},
		{name: "readwrite needs both", mode: 0o400, cred: alice, access: AccessReadWrite, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, _ := newTestFS(t)
			if err := f.Chmod("/", 0o777, Root); err != nil {
				t.Fatalf("Chmod /: %v", err)
			}
			h, err := f.Create("/f", 0o666, alice)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := f.Chmod("/f", tt.mode, alice); err != nil {
				t.Fatalf("Chmod: %v", err)
			}
			_, err = f.Open("/f", tt.access, tt.cred)
			if tt.wantErr {
				if !errors.Is(err, ErrPermission) {
					t.Fatalf("Open = %v, want ErrPermission", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
		})
	}
}

func TestMknodRootOnly(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.MkdirAll("/dev", 0o755, Root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	user := Cred{UID: 1000, GID: 1000}
	if err := f.Mknod("/dev/mic", "microphone", 0o666, user); !errors.Is(err, ErrPermission) {
		t.Fatalf("Mknod as user = %v, want ErrPermission", err)
	}
	if err := f.Mknod("/dev/mic", "microphone", 0o666, Root); err != nil {
		t.Fatalf("Mknod as root: %v", err)
	}
	st, err := f.Stat("/dev/mic")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Kind != KindDevice || st.Device != "microphone" {
		t.Fatalf("Stat = %+v, want device node of class microphone", st)
	}
}

func TestUnlink(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.WriteFile("/gone", nil, 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := f.Unlink("/gone", Root); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := f.Stat("/gone"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat after unlink = %v, want ErrNotExist", err)
	}
}

func TestUnlinkNonEmptyDirectory(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.MkdirAll("/d/sub", 0o755, Root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := f.Unlink("/d", Root); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Unlink = %v, want ErrNotEmpty", err)
	}
	if err := f.Unlink("/d/sub", Root); err != nil {
		t.Fatalf("Unlink sub: %v", err)
	}
	if err := f.Unlink("/d", Root); err != nil {
		t.Fatalf("Unlink empty dir: %v", err)
	}
}

func TestInvalidPaths(t *testing.T) {
	f, _ := newTestFS(t)
	for _, p := range []string{"", "relative", "/a//b", "/a/./b", "/a/../b"} {
		if _, err := f.Stat(p); !errors.Is(err, ErrInvalidPath) && !errors.Is(err, ErrNotExist) {
			t.Errorf("Stat(%q) = %v, want invalid-path or not-exist", p, err)
		}
		if err := f.Mkdir(p, 0o755, Root); err == nil {
			t.Errorf("Mkdir(%q) succeeded, want error", p)
		}
	}
}

func TestReadDirSorted(t *testing.T) {
	f, _ := newTestFS(t)
	for _, name := range []string{"/c", "/a", "/b"} {
		if err := f.WriteFile(name, nil, 0o644, Root); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
	}
	names, err := f.ReadDir("/", Root)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	want := []string{"a", "b", "c"}
	if len(names) != len(want) {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
}

func TestHandleOffsetSemantics(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.WriteFile("/f", []byte("abcdef"), 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	h, err := f.Open("/f", AccessRead, Root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(h, buf); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if string(buf) != "abc" {
		t.Fatalf("first read = %q", buf)
	}
	rest, err := h.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(rest) != "def" {
		t.Fatalf("rest = %q", rest)
	}
	if _, err := h.Read(buf); err != io.EOF {
		t.Fatalf("read at EOF = %v, want io.EOF", err)
	}
	if err := h.Seek(1); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	rest, err = h.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll after seek: %v", err)
	}
	if string(rest) != "bcdef" {
		t.Fatalf("after seek = %q", rest)
	}
}

func TestHandleAccessEnforcement(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.WriteFile("/f", []byte("x"), 0o666, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ro, err := f.Open("/f", AccessRead, Root)
	if err != nil {
		t.Fatalf("Open ro: %v", err)
	}
	if _, err := ro.Write([]byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Write on ro handle = %v, want ErrReadOnly", err)
	}
	wo, err := f.Open("/f", AccessWrite, Root)
	if err != nil {
		t.Fatalf("Open wo: %v", err)
	}
	if _, err := wo.Read(make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("Read on wo handle = %v, want ErrWriteOnly", err)
	}
}

func TestHandleDoubleClose(t *testing.T) {
	f, _ := newTestFS(t)
	h, err := f.Create("/f", 0o644, Root)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := h.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := h.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after close = %v, want ErrClosed", err)
	}
}

func TestChownRootOnly(t *testing.T) {
	f, _ := newTestFS(t)
	alice := Cred{UID: 1000, GID: 1000}
	if err := f.Chmod("/", 0o777, Root); err != nil {
		t.Fatalf("Chmod /: %v", err)
	}
	if err := f.WriteFile("/f", nil, 0o644, alice); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := f.Chown("/f", Root, alice); !errors.Is(err, ErrPermission) {
		t.Fatalf("Chown as user = %v, want ErrPermission", err)
	}
	if err := f.Chown("/f", Cred{UID: 5, GID: 5}, Root); err != nil {
		t.Fatalf("Chown as root: %v", err)
	}
	st, err := f.Stat("/f")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Owner.UID != 5 {
		t.Fatalf("owner = %+v, want uid 5", st.Owner)
	}
}

func TestModTimeAdvances(t *testing.T) {
	f, clk := newTestFS(t)
	if err := f.WriteFile("/f", []byte("a"), 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	st1, err := f.Stat("/f")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	clk.Advance(time.Minute)
	h, err := f.Open("/f", AccessWrite, Root)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := h.Write([]byte("b")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	st2, err := f.Stat("/f")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if !st2.Mod.After(st1.Mod) {
		t.Fatalf("mod time did not advance: %v -> %v", st1.Mod, st2.Mod)
	}
}

func TestInodeNumbersUnique(t *testing.T) {
	f, _ := newTestFS(t)
	seen := make(map[uint64]string)
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := f.WriteFile(p, nil, 0o644, Root); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		st, err := f.Stat(p)
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		if prev, dup := seen[st.Ino]; dup {
			t.Fatalf("inode %d reused for %s and %s", st.Ino, prev, p)
		}
		seen[st.Ino] = p
	}
}

// Property: a write followed by a full read returns the written bytes,
// for arbitrary content.
func TestWriteReadRoundTripProperty(t *testing.T) {
	f, _ := newTestFS(t)
	i := 0
	roundTrip := func(data []byte) bool {
		i++
		p := fmt.Sprintf("/prop%d", i)
		if err := f.WriteFile(p, data, 0o644, Root); err != nil {
			return false
		}
		got, err := f.ReadFile(p, Root)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for j := range data {
			if got[j] != data[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadFile never aliases the inode's buffer — mutating the
// returned slice must not corrupt the file (copy-at-boundary).
func TestReadFileReturnsCopy(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.WriteFile("/f", []byte("immutable"), 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := f.ReadFile("/f", Root)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for i := range got {
		got[i] = 'X'
	}
	again, err := f.ReadFile("/f", Root)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(again) != "immutable" {
		t.Fatalf("file corrupted by caller mutation: %q", again)
	}
}

func TestNodeKindString(t *testing.T) {
	tests := []struct {
		kind NodeKind
		want string
	}{
		{KindRegular, "regular"},
		{KindDirectory, "directory"},
		{KindDevice, "device"},
		{KindFIFO, "fifo"},
		{NodeKind(99), "NodeKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestOpenDirectoryFails(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.Mkdir("/d", 0o755, Root); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := f.Open("/d", AccessRead, Root); !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("Open dir = %v, want ErrIsDirectory", err)
	}
}

func TestLookupThroughFileFails(t *testing.T) {
	f, _ := newTestFS(t)
	if err := f.WriteFile("/f", nil, 0o644, Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := f.Stat("/f/child"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("Stat through file = %v, want ErrNotDirectory", err)
	}
}
