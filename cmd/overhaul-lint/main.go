// Command overhaul-lint runs the domain-specific static analyzers of
// internal/analysis over a source tree and reports invariant
// violations.
//
// Usage:
//
//	overhaul-lint [flags] [root ...]
//
// Each root is a directory scanned recursively (a trailing /... is
// accepted and ignored, so ./... works); the default is the current
// directory. Diagnostics print as file:line:col: analyzer: message,
// or as a JSON array with -json. The exit status is 0 when clean, 1
// when findings were reported, 2 on usage or load errors.
//
// Findings are suppressed in source with
//
//	//overhaul:allow <analyzer> <reason>
//
// on or directly above the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"overhaul/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("overhaul-lint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit diagnostics as JSON")
	list := flags.Bool("list", false, "list analyzers and exit")
	enable := flags.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flags.String("disable", "", "comma-separated analyzers to skip")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
		return 2
	}

	roots := flags.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var diags []analysis.Diagnostic
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		mod, err := analysis.Load(root)
		if err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
		diags = append(diags, analysis.Run(mod, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "overhaul-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "%d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies the -enable / -disable flags to the suite.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	chosen := analysis.All()
	if enable != "" {
		chosen = nil
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			chosen = append(chosen, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			skip[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range chosen {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return chosen, nil
}
