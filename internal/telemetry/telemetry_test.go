package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"overhaul/internal/clock"
)

// TestNilRecorderIsSafe exercises every public method on a nil
// recorder and nil span: the disabled state must be a total no-op.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Add("m", "c", "", 1)
	r.Gauge("m", "g", "", 7)
	r.Observe("m", "h", "", time.Millisecond)
	if got := r.CounterValue("m", "c", ""); got != 0 {
		t.Fatalf("CounterValue on nil = %d", got)
	}
	s := r.StartSpan(SpanContext{}, "m", "op")
	if s != nil {
		t.Fatal("StartSpan on nil recorder returned non-nil span")
	}
	s.Annotate("k", "v")
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span has valid context")
	}
	r.RecordEvent(SpanContext{}, "m", "k", "d")
	r.TripFlight(SpanContext{}, "m", "reason")
	if r.Spans() != nil || r.FlightEvents() != nil || r.FlightDumps() != nil {
		t.Fatal("nil recorder returned non-nil data")
	}
	if _, ok := r.LastFlightDump(); ok {
		t.Fatal("nil recorder has a dump")
	}
	if r.MetricsSnapshot() != nil {
		t.Fatal("nil recorder returned metrics")
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
	if r.Elapsed(time.Time{}) != 0 {
		t.Fatal("nil recorder Elapsed != 0")
	}
}

func TestMetrics(t *testing.T) {
	clk := clock.NewSimulated()
	r := New(clk)
	r.Add("monitor", "decisions", "verdict=grant", 1)
	r.Add("monitor", "decisions", "verdict=grant", 2)
	r.Add("monitor", "decisions", "verdict=deny", 1)
	if got := r.CounterValue("monitor", "decisions", "verdict=grant"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("netlink", "conns", "", 2)
	r.Gauge("netlink", "conns", "", 1)
	r.Observe("monitor", "decide_latency", "", 5*time.Microsecond)
	r.Observe("monitor", "decide_latency", "", 2*time.Second) // overflow
	r.Observe("monitor", "decide_latency", "", -time.Second)  // clamps to 0

	points := r.MetricsSnapshot()
	if len(points) != 4 {
		t.Fatalf("snapshot has %d points, want 4", len(points))
	}
	// Sorted by subsystem/name/labels: monitor.decide_latency first.
	h := points[0]
	if h.Kind != "histogram" || h.Count != 3 {
		t.Fatalf("histogram point = %+v", h)
	}
	if h.Buckets[0] != 2 || h.Buckets[len(h.Buckets)-1] != 1 {
		t.Fatalf("bucket spread = %v", h.Buckets)
	}
	for _, p := range points {
		if !p.Updated.Equal(clock.Epoch) {
			t.Fatalf("metric %s.%s not stamped on virtual clock: %v", p.Subsystem, p.Name, p.Updated)
		}
	}
	g := points[3]
	if g.Kind != "gauge" || g.Value != 1 {
		t.Fatalf("gauge point = %+v", g)
	}
}

func TestSpansDeterministicIDs(t *testing.T) {
	clk := clock.NewSimulated()
	r := New(clk)
	root := r.StartSpan(SpanContext{}, "xserver", "input")
	clk.Advance(time.Millisecond)
	child := r.StartSpan(root.Context(), "netlink", "notify")
	child.Annotate("pid", "41")
	child.End()
	root.End()
	root.End() // idempotent

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Trace != 1 || spans[0].ID != 1 || spans[0].Parent != 0 {
		t.Fatalf("root record = %+v", spans[0])
	}
	if spans[1].Trace != 1 || spans[1].ID != 2 || spans[1].Parent != 1 {
		t.Fatalf("child record = %+v", spans[1])
	}
	if !spans[1].Start.Equal(clock.Epoch.Add(time.Millisecond)) {
		t.Fatalf("child start = %v", spans[1].Start)
	}
	if !spans[0].Ended || !spans[0].End.Equal(clock.Epoch.Add(time.Millisecond)) {
		t.Fatalf("root end = %+v", spans[0])
	}
	if tr, ok := r.TraceOf(2); !ok || tr != 1 {
		t.Fatalf("TraceOf(2) = %d, %v", tr, ok)
	}
	if got := r.TraceSpans(1); len(got) != 2 {
		t.Fatalf("TraceSpans = %d spans", len(got))
	}
	// A second interaction starts a new trace.
	other := r.StartSpan(SpanContext{}, "xserver", "input")
	defer other.End()
	if other.Context().Trace != 2 {
		t.Fatalf("second trace id = %d", other.Context().Trace)
	}
	if subs := Subsystems(spans); len(subs) != 2 || subs[0] != "netlink" || subs[1] != "xserver" {
		t.Fatalf("Subsystems = %v", subs)
	}
}

func TestSpanEviction(t *testing.T) {
	r := NewWithOptions(clock.NewSimulated(), Options{SpanCapacity: 3})
	for i := 0; i < 5; i++ {
		s := r.StartSpan(SpanContext{}, "m", "op")
		s.End()
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	if spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("retained IDs %d..%d, want 3..5", spans[0].ID, spans[2].ID)
	}
	if r.SpansDropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.SpansDropped())
	}
}

func TestFlightRingAndDumps(t *testing.T) {
	clk := clock.NewSimulated()
	r := NewWithOptions(clk, Options{FlightCapacity: 4, DumpCapacity: 2})
	for i := 0; i < 6; i++ {
		r.RecordEvent(SpanContext{}, "kernel", "decision", "grant mic")
		clk.Advance(time.Millisecond)
	}
	events := r.FlightEvents()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	if events[0].Seq != 3 || events[3].Seq != 6 {
		t.Fatalf("ring seqs %d..%d, want 3..6", events[0].Seq, events[3].Seq)
	}

	r.TripFlight(SpanContext{Trace: 9, Span: 9}, "monitor", "protection degraded: channel down")
	dump, ok := r.LastFlightDump()
	if !ok {
		t.Fatal("no dump after trip")
	}
	last := dump.Events[len(dump.Events)-1]
	if last.Kind != "trip" || !strings.Contains(last.Detail, "protection degraded") {
		t.Fatalf("last dump event = %+v", last)
	}
	if dump.Reason != "protection degraded: channel down" {
		t.Fatalf("dump reason = %q", dump.Reason)
	}

	// Dumps are bounded, oldest evicted.
	r.TripFlight(SpanContext{}, "monitor", "two")
	r.TripFlight(SpanContext{}, "monitor", "three")
	dumps := r.FlightDumps()
	if len(dumps) != 2 {
		t.Fatalf("retained %d dumps, want 2", len(dumps))
	}
	if dumps[0].Reason != "two" || dumps[1].Reason != "three" {
		t.Fatalf("dump reasons = %q, %q", dumps[0].Reason, dumps[1].Reason)
	}

	jsonl, err := dumps[1].JSONL()
	if err != nil {
		t.Fatalf("JSONL: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(jsonl), []byte("\n"))
	if len(lines) != 1+len(dumps[1].Events) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), 1+len(dumps[1].Events))
	}
	if !bytes.Contains(lines[0], []byte(`"reason":"three"`)) {
		t.Fatalf("JSONL header = %s", lines[0])
	}
}

// TestSnapshotReproducible asserts that two identical runs produce
// byte-identical formatted output — the property overhaul-top relies
// on.
func TestSnapshotReproducible(t *testing.T) {
	run := func() (string, string) {
		clk := clock.NewSimulated()
		r := New(clk)
		root := r.StartSpan(SpanContext{}, "xserver", "hardware_click")
		clk.Advance(250 * time.Microsecond)
		child := r.StartSpan(root.Context(), "monitor", "decide")
		child.Annotate("verdict", "grant")
		r.Add("monitor", "decisions", "verdict=grant", 1)
		clk.Advance(50 * time.Microsecond)
		child.End()
		root.End()
		return FormatTrace(r.TraceSpans(root.Context().Trace)), FormatMetrics(r.MetricsSnapshot())
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 {
		t.Fatalf("trace output differs:\n%s\n---\n%s", t1, t2)
	}
	if m1 != m2 {
		t.Fatalf("metrics output differs:\n%s\n---\n%s", m1, m2)
	}
	if !strings.Contains(t1, "09:00:00.000250") {
		t.Fatalf("trace missing virtual-clock timestamp:\n%s", t1)
	}
	if !strings.Contains(t1, "verdict=grant") {
		t.Fatalf("trace missing annotation:\n%s", t1)
	}
	// Child indented under root.
	if !strings.Contains(t1, "\n  09:00:00.000250") {
		t.Fatalf("child span not nested:\n%s", t1)
	}
}

func TestFormatTraceOrphanSpans(t *testing.T) {
	r := New(clock.NewSimulated())
	parent := r.StartSpan(SpanContext{}, "a", "p")
	child := r.StartSpan(parent.Context(), "b", "c")
	child.End()
	parent.End()
	// Render only the child: its parent is missing, so it roots.
	out := FormatTrace(r.Spans()[1:])
	if !strings.HasPrefix(out, "09:00:00.000000") {
		t.Fatalf("orphan did not render at root:\n%s", out)
	}
	if FormatTrace(nil) != "(no spans)\n" {
		t.Fatal("empty trace rendering changed")
	}
	if FormatFlight(nil) != "(flight ring empty)\n" {
		t.Fatal("empty flight rendering changed")
	}
	if FormatMetrics(nil) != "(no metrics)\n" {
		t.Fatal("empty metrics rendering changed")
	}
}

// TestConcurrentUse hammers one recorder from several goroutines; run
// with -race in CI per the issue's satellite task.
func TestConcurrentUse(t *testing.T) {
	r := NewWithOptions(clock.NewSimulated(), Options{SpanCapacity: 64, FlightCapacity: 32, DumpCapacity: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add("m", "ops", "", 1)
				r.Observe("m", "lat", "", time.Microsecond)
				s := r.StartSpan(SpanContext{}, "m", "op")
				s.Annotate("i", "x")
				s.End()
				r.RecordEvent(s.Context(), "m", "k", "d")
				if i%50 == 0 {
					r.TripFlight(s.Context(), "m", "trip")
				}
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("m", "ops", ""); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	if len(r.FlightDumps()) != 2 {
		t.Fatalf("dumps = %d, want 2", len(r.FlightDumps()))
	}
}
