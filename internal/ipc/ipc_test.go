package ipc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"overhaul/internal/clock"
)

// fakeStamps is an in-memory Stamps implementation.
type fakeStamps struct {
	mu     sync.Mutex
	stamps map[int]time.Time
}

func newFakeStamps() *fakeStamps {
	return &fakeStamps{stamps: make(map[int]time.Time)}
}

func (f *fakeStamps) Stamp(pid int) (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.stamps[pid]
	return t, ok
}

func (f *fakeStamps) Adopt(pid int, t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur, ok := f.stamps[pid]
	if !ok {
		return
	}
	if t.After(cur) {
		f.stamps[pid] = t
	}
}

func (f *fakeStamps) set(pid int, t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stamps[pid] = t
}

func (f *fakeStamps) get(t *testing.T, pid int) time.Time {
	t.Helper()
	st, ok := f.Stamp(pid)
	if !ok {
		t.Fatalf("pid %d unknown", pid)
	}
	return st
}

const (
	sender   = 1
	receiver = 2
)

// stampedPair returns stamps where the sender interacted at Epoch+1s and
// the receiver has never interacted.
func stampedPair() (*fakeStamps, time.Time) {
	st := newFakeStamps()
	interaction := clock.Epoch.Add(time.Second)
	st.set(sender, interaction)
	st.set(receiver, time.Time{})
	return st, interaction
}

// --- Pipe ------------------------------------------------------------------

func TestPipeWriteReadPropagatesStamp(t *testing.T) {
	st, interaction := stampedPair()
	p := NewPipe(st, 0)

	if _, err := p.Write(sender, []byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := p.EmbeddedStamp(); !got.Equal(interaction) {
		t.Fatalf("embedded stamp = %v, want %v", got, interaction)
	}
	buf := make([]byte, 16)
	n, err := p.Read(receiver, buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("read %q", buf[:n])
	}
	// P2: the receiver adopted the sender's interaction stamp.
	if got := st.get(t, receiver); !got.Equal(interaction) {
		t.Fatalf("receiver stamp = %v, want %v", got, interaction)
	}
}

func TestPipeDoesNotRegressNewerReceiverStamp(t *testing.T) {
	st, interaction := stampedPair()
	newer := interaction.Add(time.Minute)
	st.set(receiver, newer)

	p := NewPipe(st, 0)
	if _, err := p.Write(sender, []byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := p.Read(receiver, make([]byte, 1)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := st.get(t, receiver); !got.Equal(newer) {
		t.Fatalf("receiver stamp regressed to %v", got)
	}
}

func TestPipeSenderWithoutStampLeavesCarrierExpired(t *testing.T) {
	st := newFakeStamps()
	st.set(sender, time.Time{})
	st.set(receiver, time.Time{})
	p := NewPipe(st, 0)
	if _, err := p.Write(sender, []byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !p.EmbeddedStamp().IsZero() {
		t.Fatal("carrier got a stamp from a never-interacted sender")
	}
	if _, err := p.Read(receiver, make([]byte, 1)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := st.get(t, receiver); !got.IsZero() {
		t.Fatalf("receiver gained stamp %v from expired carrier", got)
	}
}

func TestPipeEmptyAndClosed(t *testing.T) {
	st, _ := stampedPair()
	p := NewPipe(st, 0)
	if _, err := p.Read(receiver, make([]byte, 1)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Read empty = %v, want ErrEmpty", err)
	}
	if _, err := p.Write(sender, []byte("ab")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := p.Write(sender, []byte("x")); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Write after close = %v, want ErrClosedPipe", err)
	}
	// Pending data remains readable after close.
	buf := make([]byte, 4)
	if n, err := p.Read(receiver, buf); err != nil || n != 2 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if _, err := p.Read(receiver, buf); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Read drained closed = %v, want ErrClosedPipe", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("double Close = %v", err)
	}
}

func TestPipeCapacity(t *testing.T) {
	st, _ := stampedPair()
	p := NewPipe(st, 4)
	if _, err := p.Write(sender, []byte("abcd")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := p.Write(sender, []byte("e")); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Write = %v, want ErrFull", err)
	}
	if p.Buffered() != 4 {
		t.Fatalf("Buffered = %d", p.Buffered())
	}
}

// --- SocketPair --------------------------------------------------------------

func TestSocketPairPropagation(t *testing.T) {
	st, interaction := stampedPair()
	a, b := NewSocketPair(st).Ends()

	if err := a.Send(sender, []byte("dbus-msg")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv(receiver)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(got) != "dbus-msg" {
		t.Fatalf("payload = %q", got)
	}
	if s := st.get(t, receiver); !s.Equal(interaction) {
		t.Fatalf("receiver stamp = %v, want %v", s, interaction)
	}
}

func TestSocketPairBothDirectionsShareCarrier(t *testing.T) {
	st, interaction := stampedPair()
	a, b := NewSocketPair(st).Ends()

	// Sender talks a->b; later a *reply* b->a with payload from the
	// never-interacted receiver must not erase the carrier stamp, and a
	// third process reading from either end adopts it.
	if err := a.Send(sender, []byte("req")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Recv(receiver); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := b.Send(receiver, []byte("resp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	const third = 3
	st.set(third, time.Time{})
	if _, err := a.Recv(third); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if s := st.get(t, third); !s.Equal(interaction) {
		t.Fatalf("third stamp = %v, want %v (chained propagation)", s, interaction)
	}
}

func TestSocketDatagramBoundaries(t *testing.T) {
	st, _ := stampedPair()
	a, b := NewSocketPair(st).Ends()
	for _, m := range []string{"one", "two", "three"} {
		if err := a.Send(sender, []byte(m)); err != nil {
			t.Fatalf("Send(%s): %v", m, err)
		}
	}
	if b.Pending() != 3 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	for _, want := range []string{"one", "two", "three"} {
		got, err := b.Recv(receiver)
		if err != nil || string(got) != want {
			t.Fatalf("Recv = %q, %v; want %q", got, err, want)
		}
	}
	if _, err := b.Recv(receiver); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Recv empty = %v", err)
	}
}

func TestSocketPeerClose(t *testing.T) {
	st, _ := stampedPair()
	a, b := NewSocketPair(st).Ends()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(sender, []byte("x")); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("Send to closed peer = %v, want ErrPeerClosed", err)
	}
	if err := b.Close(); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("double Close = %v", err)
	}
}

func TestSocketSendCopiesPayload(t *testing.T) {
	st, _ := stampedPair()
	a, b := NewSocketPair(st).Ends()
	payload := []byte("fragile")
	if err := a.Send(sender, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	payload[0] = 'X'
	got, err := b.Recv(receiver)
	if err != nil || string(got) != "fragile" {
		t.Fatalf("Recv = %q, %v (payload aliased?)", got, err)
	}
}

// --- MsgQueue ----------------------------------------------------------------

func TestMsgQueuePOSIXPriorityOrder(t *testing.T) {
	st, _ := stampedPair()
	q := NewMsgQueue(st, FlavorPOSIX, 0)
	send := func(prio int, body string) {
		t.Helper()
		if err := q.Send(sender, prio, []byte(body)); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	send(1, "low")
	send(9, "high-1")
	send(9, "high-2")
	send(5, "mid")

	wants := []struct {
		prio int
		body string
	}{{9, "high-1"}, {9, "high-2"}, {5, "mid"}, {1, "low"}}
	for _, w := range wants {
		prio, body, err := q.Recv(receiver, 0)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if prio != w.prio || string(body) != w.body {
			t.Fatalf("Recv = (%d, %q), want (%d, %q)", prio, body, w.prio, w.body)
		}
	}
}

func TestMsgQueueSysVTypeFilter(t *testing.T) {
	st, _ := stampedPair()
	q := NewMsgQueue(st, FlavorSysV, 0)
	for _, m := range []struct {
		mtype int
		body  string
	}{{1, "a1"}, {2, "b1"}, {1, "a2"}} {
		if err := q.Send(sender, m.mtype, []byte(m.body)); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Filter by type 2.
	mtype, body, err := q.Recv(receiver, 2)
	if err != nil || mtype != 2 || string(body) != "b1" {
		t.Fatalf("Recv(2) = (%d,%q,%v)", mtype, body, err)
	}
	// Filter 0: FIFO order of what remains.
	mtype, body, err = q.Recv(receiver, 0)
	if err != nil || mtype != 1 || string(body) != "a1" {
		t.Fatalf("Recv(0) = (%d,%q,%v)", mtype, body, err)
	}
	// No message of type 7.
	if _, _, err := q.Recv(receiver, 7); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Recv(7) = %v, want ErrEmpty", err)
	}
}

func TestMsgQueueSysVRejectsNonPositiveType(t *testing.T) {
	st, _ := stampedPair()
	q := NewMsgQueue(st, FlavorSysV, 0)
	if err := q.Send(sender, 0, []byte("x")); err == nil {
		t.Fatal("Send(mtype=0) succeeded")
	}
}

func TestMsgQueuePropagation(t *testing.T) {
	for _, flavor := range []QueueFlavor{FlavorPOSIX, FlavorSysV} {
		t.Run(flavor.String(), func(t *testing.T) {
			st, interaction := stampedPair()
			q := NewMsgQueue(st, flavor, 0)
			if err := q.Send(sender, 1, []byte("m")); err != nil {
				t.Fatalf("Send: %v", err)
			}
			if _, _, err := q.Recv(receiver, 0); err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if s := st.get(t, receiver); !s.Equal(interaction) {
				t.Fatalf("receiver stamp = %v, want %v", s, interaction)
			}
		})
	}
}

func TestMsgQueueCapacityAndRemove(t *testing.T) {
	st, _ := stampedPair()
	q := NewMsgQueue(st, FlavorSysV, 2)
	if err := q.Send(sender, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := q.Send(sender, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := q.Send(sender, 1, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("Send over capacity = %v, want ErrFull", err)
	}
	if err := q.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := q.Send(sender, 1, nil); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Send after remove = %v", err)
	}
	if _, _, err := q.Recv(receiver, 0); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Recv after remove = %v", err)
	}
}

func TestMsgQueueKeys(t *testing.T) {
	st, _ := stampedPair()
	q := NewMsgQueue(st, FlavorSysV, 0)
	for _, k := range []int{3, 1, 3, 2} {
		if err := q.Send(sender, k, nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	keys := q.Keys()
	want := []int{1, 2, 3}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

// --- SharedMem ---------------------------------------------------------------

func TestShmFirstAccessFaultsAndPropagates(t *testing.T) {
	st, interaction := stampedPair()
	clk := clock.NewSimulatedAt(interaction)
	shm, err := NewSharedMem(st, clk, 1, 0)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}

	wmap := shm.Map(sender)
	if err := wmap.Write(0, []byte("secret")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	rmap := shm.Map(receiver)
	got, err := rmap.Read(0, 6)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "secret" {
		t.Fatalf("Read = %q", got)
	}
	if s := st.get(t, receiver); !s.Equal(interaction) {
		t.Fatalf("receiver stamp = %v, want %v", s, interaction)
	}
	stats := shm.StatsSnapshot()
	if stats.Faults != 2 || stats.FastAccesses != 0 {
		t.Fatalf("stats = %+v, want 2 faults", stats)
	}
}

func TestShmWaitListFastPath(t *testing.T) {
	st, interaction := stampedPair()
	clk := clock.NewSimulatedAt(interaction)
	shm, err := NewSharedMem(st, clk, 1, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	m := shm.Map(sender)

	if err := m.Write(0, []byte{1}); err != nil { // fault
		t.Fatalf("Write: %v", err)
	}
	for i := 0; i < 10; i++ { // all inside the 500 ms window
		clk.Advance(10 * time.Millisecond)
		if err := m.Write(0, []byte{2}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	stats := shm.StatsSnapshot()
	if stats.Faults != 1 || stats.FastAccesses != 10 {
		t.Fatalf("stats = %+v, want 1 fault + 10 fast", stats)
	}

	// After the window expires the guard re-arms.
	clk.Advance(time.Second)
	if err := m.Write(0, []byte{3}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if stats := shm.StatsSnapshot(); stats.Faults != 2 {
		t.Fatalf("stats = %+v, want re-armed fault", stats)
	}
}

func TestShmMissedPropagationInsideWaitWindow(t *testing.T) {
	// The paper's caveat: stamps arriving during the disarmed window
	// are not propagated until the guard re-arms. This test pins that
	// (intentional) behaviour.
	st := newFakeStamps()
	st.set(sender, time.Time{})
	st.set(receiver, time.Time{})
	clk := clock.NewSimulated()
	shm, err := NewSharedMem(st, clk, 1, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	m := shm.Map(sender)
	if err := m.Write(0, []byte{1}); err != nil { // fault, but sender had no stamp
		t.Fatalf("Write: %v", err)
	}
	// Sender now interacts...
	interaction := clk.Now().Add(100 * time.Millisecond)
	clk.Advance(100 * time.Millisecond)
	st.set(sender, interaction)
	// ...and writes inside the window: fast path, no embedding.
	if err := m.Write(0, []byte{2}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !shm.EmbeddedStamp().IsZero() {
		t.Fatal("stamp embedded on the fast path")
	}
	// After re-arm, the next write embeds.
	clk.Advance(time.Second)
	if err := m.Write(0, []byte{3}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := shm.EmbeddedStamp(); !got.Equal(interaction) {
		t.Fatalf("embedded = %v, want %v", got, interaction)
	}
}

func TestShmBounds(t *testing.T) {
	st, _ := stampedPair()
	shm, err := NewSharedMem(st, clock.NewSimulated(), 1, 0)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	m := shm.Map(sender)
	if err := m.Write(PageSize-1, []byte{1}); err != nil {
		t.Fatalf("Write at end: %v", err)
	}
	if err := m.Write(PageSize, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Write past end = %v, want ErrOutOfRange", err)
	}
	if _, err := m.Read(-1, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read(-1) = %v", err)
	}
	if _, err := m.Read(0, PageSize+1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oversized Read = %v", err)
	}
}

func TestShmRemove(t *testing.T) {
	st, _ := stampedPair()
	shm, err := NewSharedMem(st, clock.NewSimulated(), 2, 0)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	if shm.Size() != 2*PageSize {
		t.Fatalf("Size = %d", shm.Size())
	}
	m := shm.Map(sender)
	if err := shm.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := m.Write(0, []byte{1}); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Write after remove = %v", err)
	}
	if _, err := m.Read(0, 1); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Read after remove = %v", err)
	}
	if err := shm.Remove(); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("double Remove = %v", err)
	}
}

func TestShmInvalidConstruction(t *testing.T) {
	st, _ := stampedPair()
	if _, err := NewSharedMem(st, clock.NewSimulated(), 0, 0); err == nil {
		t.Fatal("0 pages accepted")
	}
	if _, err := NewSharedMem(st, nil, 1, 0); err == nil {
		t.Fatal("nil clock accepted")
	}
}

// --- Pty ----------------------------------------------------------------------

func TestPtyTerminalToShellPropagation(t *testing.T) {
	// The CLI scenario from §IV-B: xterm (pid=sender, has interaction)
	// writes "shot\n" at the master; bash (pid=receiver) reads at the
	// slave and adopts the stamp.
	st, interaction := stampedPair()
	pty := NewPty(st)

	if _, err := pty.Write(Master, sender, []byte("shot\n")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := pty.Read(Slave, receiver, buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(buf[:n]) != "shot\n" {
		t.Fatalf("Read = %q", buf[:n])
	}
	if s := st.get(t, receiver); !s.Equal(interaction) {
		t.Fatalf("shell stamp = %v, want %v", s, interaction)
	}
}

func TestPtyEchoDirection(t *testing.T) {
	st, _ := stampedPair()
	pty := NewPty(st)
	if _, err := pty.Write(Slave, receiver, []byte("output")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := pty.Read(Master, sender, buf)
	if err != nil || string(buf[:n]) != "output" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
}

func TestPtyCloseAndErrors(t *testing.T) {
	st, _ := stampedPair()
	pty := NewPty(st)
	if _, err := pty.Read(Slave, receiver, make([]byte, 1)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty Read = %v", err)
	}
	if err := pty.CloseEnd(Master); err != nil {
		t.Fatalf("CloseEnd: %v", err)
	}
	if _, err := pty.Write(Master, sender, []byte("x")); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("Write closed = %v", err)
	}
	if err := pty.CloseEnd(Master); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("double CloseEnd = %v", err)
	}
	if _, err := pty.Write(PtyEnd(9), sender, nil); err == nil {
		t.Fatal("invalid end accepted")
	}
}

func TestQueueFlavorAndPtyEndStrings(t *testing.T) {
	if FlavorPOSIX.String() != "posix" || FlavorSysV.String() != "sysv" {
		t.Fatal("flavor strings wrong")
	}
	if Master.String() != "master" || Slave.String() != "slave" {
		t.Fatal("pty end strings wrong")
	}
}

// --- cross-family chain --------------------------------------------------------

func TestStampChainsAcrossFamilies(t *testing.T) {
	// sender -> pipe -> pidB -> socket -> pidC -> msgqueue -> pidD.
	// Propagation must survive a chain of arbitrary length (paper §III-D).
	st, interaction := stampedPair()
	const (
		pidB = 10
		pidC = 11
		pidD = 12
	)
	for _, pid := range []int{pidB, pidC, pidD} {
		st.set(pid, time.Time{})
	}

	pipe := NewPipe(st, 0)
	if _, err := pipe.Write(sender, []byte("1")); err != nil {
		t.Fatalf("pipe Write: %v", err)
	}
	if _, err := pipe.Read(pidB, make([]byte, 1)); err != nil {
		t.Fatalf("pipe Read: %v", err)
	}

	a, b := NewSocketPair(st).Ends()
	if err := a.Send(pidB, []byte("2")); err != nil {
		t.Fatalf("socket Send: %v", err)
	}
	if _, err := b.Recv(pidC); err != nil {
		t.Fatalf("socket Recv: %v", err)
	}

	q := NewMsgQueue(st, FlavorPOSIX, 0)
	if err := q.Send(pidC, 1, []byte("3")); err != nil {
		t.Fatalf("queue Send: %v", err)
	}
	if _, _, err := q.Recv(pidD, 0); err != nil {
		t.Fatalf("queue Recv: %v", err)
	}

	if s := st.get(t, pidD); !s.Equal(interaction) {
		t.Fatalf("end-of-chain stamp = %v, want %v", s, interaction)
	}
}
